//===- tests/fenerj_parser_test.cpp - FEnerJ parser tests -----------------===//

#include "fenerj/parser.h"

#include <gtest/gtest.h>

using namespace enerj::fenerj;

namespace {

Program parseOk(std::string_view Source) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = parseProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  return Prog ? std::move(*Prog) : Program{};
}

void parseFails(std::string_view Source) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = parseProgram(Source, Diags);
  EXPECT_FALSE(Prog.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace

TEST(FenerjParser, MinimalProgram) {
  Program Prog = parseOk("42");
  ASSERT_TRUE(Prog.Main);
  EXPECT_EQ(Prog.Main->kind(), ExprKind::IntLit);
  EXPECT_TRUE(Prog.Classes.empty());
}

TEST(FenerjParser, ClassWithFieldsAndMethods) {
  Program Prog = parseOk(R"(
    class IntPair {
      @context int x;
      @context int y;
      @approx int numAdditions;
      int addToBoth(@context int amount) {
        this.x := this.x + amount;
        this.y := this.y + amount;
        this.numAdditions := this.numAdditions + 1;
        0;
      }
    }
    { let IntPair p = new IntPair(); p.addToBoth(3); }
  )");
  ASSERT_EQ(Prog.Classes.size(), 1u);
  const ClassDecl &Cls = Prog.Classes[0];
  EXPECT_EQ(Cls.Name, "IntPair");
  EXPECT_EQ(Cls.SuperName, "Object");
  ASSERT_EQ(Cls.Fields.size(), 3u);
  EXPECT_EQ(Cls.Fields[0].DeclaredType.Q, Qual::Context);
  EXPECT_EQ(Cls.Fields[2].DeclaredType.Q, Qual::Approx);
  ASSERT_EQ(Cls.Methods.size(), 1u);
  EXPECT_EQ(Cls.Methods[0].Params.size(), 1u);
  EXPECT_EQ(Cls.Methods[0].ReceiverPrecision, Qual::Context);
}

TEST(FenerjParser, ApproxReceiverMethod) {
  // The _APPROX convention: a second overload marked 'approx' after the
  // parameter list is selected on approximate receivers.
  Program Prog = parseOk(R"(
    class FloatSet {
      @context float total;
      @context float get() { this.total; }
      float mean() precise { this.total; }
      @approx float mean() approx { this.total; }
    }
    { 0; }
  )");
  ASSERT_EQ(Prog.Classes[0].Methods.size(), 3u);
  // Unmarked methods are context-polymorphic; marked ones carry their
  // receiver precision.
  EXPECT_EQ(Prog.Classes[0].Methods[0].ReceiverPrecision, Qual::Context);
  EXPECT_EQ(Prog.Classes[0].Methods[1].ReceiverPrecision, Qual::Precise);
  EXPECT_EQ(Prog.Classes[0].Methods[2].ReceiverPrecision, Qual::Approx);
}

TEST(FenerjParser, Inheritance) {
  Program Prog = parseOk(R"(
    class A { int f; }
    class B extends A { @approx int g; }
    { 0; }
  )");
  EXPECT_EQ(Prog.Classes[1].SuperName, "A");
}

TEST(FenerjParser, ExpressionPrecedence) {
  Program Prog = parseOk("1 + 2 * 3");
  const auto &Add = static_cast<const BinaryExpr &>(*Prog.Main);
  EXPECT_EQ(Add.Op, BinaryOp::Add);
  const auto &Mul = static_cast<const BinaryExpr &>(*Add.Rhs);
  EXPECT_EQ(Mul.Op, BinaryOp::Mul);
}

TEST(FenerjParser, ComparisonAndLogical) {
  Program Prog = parseOk("1 < 2 && 3 >= 2 || false");
  EXPECT_EQ(static_cast<const BinaryExpr &>(*Prog.Main).Op, BinaryOp::Or);
}

TEST(FenerjParser, UnaryOperators) {
  Program Prog = parseOk("-5 + !true");
  const auto &Add = static_cast<const BinaryExpr &>(*Prog.Main);
  EXPECT_EQ(Add.Lhs->kind(), ExprKind::Unary);
  EXPECT_EQ(Add.Rhs->kind(), ExprKind::Unary);
}

TEST(FenerjParser, NewArrayAndSubscripts) {
  Program Prog = parseOk(R"({
    let @approx float[] a = new @approx float[100];
    a[0] := 1.5;
    a[1] := a[0] + 2.0;
    a.length;
  })");
  const auto &Block = static_cast<const BlockExpr &>(*Prog.Main);
  ASSERT_EQ(Block.Items.size(), 4u);
  EXPECT_TRUE(Block.Items[0].IsLet);
  EXPECT_TRUE(Block.Items[0].LetType.isArray());
  EXPECT_EQ(Block.Items[0].LetType.ElemQual, Qual::Approx);
  EXPECT_EQ(Block.Items[1].Value->kind(), ExprKind::ArrayWrite);
  EXPECT_EQ(Block.Items[3].Value->kind(), ExprKind::ArrayLength);
}

TEST(FenerjParser, EndorseAndCast) {
  Program Prog = parseOk(R"({
    let @approx int a = 5;
    let int p = endorse(a);
    cast<@approx float>(1.5);
  })");
  const auto &Block = static_cast<const BlockExpr &>(*Prog.Main);
  EXPECT_EQ(Block.Items[1].Value->kind(), ExprKind::Endorse);
  EXPECT_EQ(Block.Items[2].Value->kind(), ExprKind::Cast);
}

TEST(FenerjParser, IfWhile) {
  Program Prog = parseOk(R"({
    let int i = 0;
    while (i < 10) { i = i + 1; };
    if (i == 10) { 1; } else { 0; };
  })");
  const auto &Block = static_cast<const BlockExpr &>(*Prog.Main);
  EXPECT_EQ(Block.Items[1].Value->kind(), ExprKind::While);
  EXPECT_EQ(Block.Items[2].Value->kind(), ExprKind::If);
}

TEST(FenerjParser, FieldChain) {
  Program Prog = parseOk(R"(
    class A { @approx int v; }
    class Holder { A inner; }
    { let Holder h = new Holder(); h.inner.v; }
  )");
  const auto &Block = static_cast<const BlockExpr &>(*Prog.Main);
  EXPECT_EQ(Block.Items[1].Value->kind(), ExprKind::FieldRead);
}

TEST(FenerjParser, MethodCallWithArgs) {
  Program Prog = parseOk(R"(
    class M { int f(int a, @approx float b) { a; } }
    { let M m = new M(); m.f(1, 2.5); }
  )");
  const auto &Block = static_cast<const BlockExpr &>(*Prog.Main);
  const auto &Call = static_cast<const MethodCallExpr &>(*Block.Items[1].Value);
  EXPECT_EQ(Call.Args.size(), 2u);
}

TEST(FenerjParser, NewWithQualifier) {
  Program Prog = parseOk(R"(
    class C { int f; }
    { new @approx C(); new @precise C(); new C(); }
  )");
  const auto &Block = static_cast<const BlockExpr &>(*Prog.Main);
  EXPECT_EQ(static_cast<const NewExpr &>(*Block.Items[0].Value).Q,
            Qual::Approx);
  EXPECT_EQ(static_cast<const NewExpr &>(*Block.Items[1].Value).Q,
            Qual::Precise);
  EXPECT_EQ(static_cast<const NewExpr &>(*Block.Items[2].Value).Q,
            Qual::Precise);
}

TEST(FenerjParser, SyntaxErrors) {
  parseFails("");                       // No main expression.
  parseFails("class {}");               // Missing class name.
  parseFails("class C { int }");        // Missing field name.
  parseFails("{ let int = 5; 0; }");    // Missing variable name.
  parseFails("1 +");                    // Dangling operator.
  parseFails("if (1) { 2 }");           // if without else, missing main.
  parseFails("{ 1; } trailing");        // Trailing tokens.
  parseFails("new @approx Foo[10]");    // Class arrays unsupported.
  parseFails("{ let @approx Foo[] a = null; 0; }");
}

TEST(FenerjParser, TrailingSemicolonOptional) {
  parseOk("{ 1; 2 }");
  parseOk("{ 1; 2; }");
}

TEST(FenerjParser, LocationsAttached) {
  Program Prog = parseOk("\n  41 + 1");
  EXPECT_EQ(Prog.Main->loc().Line, 2);
}
