#!/usr/bin/env python3
"""Validate `fenerj_tool lint --json` output (schema v1).

Like the eval/infer/profile validators, this checks structure, key
presence, key order, and cross-field invariants — the per-pass counts
must equal the number of findings attributed to that pass, severities
and pass names must come from the documented sets, and the ISA section
must be internally consistent (a skipped ISA check carries a reason and
no errors; a clean check carries neither). It does NOT pin finding
messages: wording belongs to the C++ lint tests.

Usage:
  fenerj_tool lint file.fej --json | python3 tests/validate_lint_json.py

Exits 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

TOP_KEYS = ["tool", "version", "file", "findings", "counts", "isa"]
FINDING_KEYS = ["pass", "severity", "line", "column", "message"]
COUNT_KEYS = ["endorsement", "precision-slack", "dead-value", "isa-flow",
              "interproc-flow"]
ISA_KEYS = ["checked", "skipReason", "errors"]
SEVERITIES = {"warning", "suggestion"}


def fail(message):
    print(f"validate_lint_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect_keys(obj, keys, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected an object, got {type(obj).__name__}")
    if list(obj.keys()) != keys:
        fail(f"{where}: keys {list(obj.keys())} != expected {keys}")


def expect_count(obj, key, where):
    if not isinstance(obj[key], int) or isinstance(obj[key], bool) \
            or obj[key] < 0:
        fail(f"{where}.{key}: not a non-negative integer")


def validate_lint(doc):
    expect_keys(doc, TOP_KEYS, "top level")
    if doc["tool"] != "enerj-lint":
        fail(f"tool: {doc['tool']!r} != 'enerj-lint'")
    if doc["version"] != 1:
        fail(f"version: {doc['version']!r} != 1")
    if not isinstance(doc["file"], str) or not doc["file"]:
        fail("file: not a non-empty string")

    if not isinstance(doc["findings"], list):
        fail("findings: not a list")
    seen = {key: 0 for key in COUNT_KEYS}
    for index, finding in enumerate(doc["findings"]):
        where = f"findings[{index}]"
        expect_keys(finding, FINDING_KEYS, where)
        if finding["pass"] not in COUNT_KEYS:
            fail(f"{where}.pass: unknown pass {finding['pass']!r}")
        if finding["severity"] not in SEVERITIES:
            fail(f"{where}.severity: {finding['severity']!r} not in "
                 f"{sorted(SEVERITIES)}")
        expect_count(finding, "line", where)
        expect_count(finding, "column", where)
        if not isinstance(finding["message"], str) or not finding["message"]:
            fail(f"{where}.message: not a non-empty string")
        seen[finding["pass"]] += 1

    expect_keys(doc["counts"], COUNT_KEYS, "counts")
    for key in COUNT_KEYS:
        expect_count(doc["counts"], key, "counts")
        if doc["counts"][key] != seen[key]:
            fail(f"counts.{key}: {doc['counts'][key]} != "
                 f"{seen[key]} findings attributed to that pass")

    isa = doc["isa"]
    expect_keys(isa, ISA_KEYS, "isa")
    if not isinstance(isa["checked"], bool):
        fail("isa.checked: not a boolean")
    if not isinstance(isa["skipReason"], str):
        fail("isa.skipReason: not a string")
    expect_count(isa, "errors", "isa")
    if isa["checked"] and isa["skipReason"]:
        fail("isa: checked but carries a skipReason")
    if not isa["checked"] and not isa["skipReason"]:
        fail("isa: skipped without a skipReason")
    if not isa["checked"] and isa["errors"]:
        fail("isa: skipped but reports errors")


def main():
    try:
        doc = json.load(sys.stdin)
    except json.JSONDecodeError as error:
        fail(f"not valid JSON: {error}")
    validate_lint(doc)
    print("validate_lint_json: OK")


if __name__ == "__main__":
    main()
