//===- tests/cli_bound_test.cpp - fenerj_tool bound CLI contract ----------===//
//
// Black-box tests of the bound subcommand: the JSON report (schema v1)
// is pinned byte-for-byte against goldens, is bytewise stable across
// runs, level None reports every bound as exactly 1.0, argv validation
// exits 2, and the per-site text view lists endorsement sites. The
// binary path comes from ENERJ_FENERJ_TOOL, kernels from ENERJ_FEJ_DIR.
//
//===----------------------------------------------------------------------===//

#include <array>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>

#ifndef ENERJ_FENERJ_TOOL
#error "ENERJ_FENERJ_TOOL must point at the fenerj_tool binary"
#endif
#ifndef ENERJ_FEJ_DIR
#error "ENERJ_FEJ_DIR must point at examples/fej"
#endif

namespace {

int runTool(const std::string &Args, std::string &Output) {
  std::string Command =
      std::string("\"") + ENERJ_FENERJ_TOOL + "\" " + Args + " 2>&1";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return -1;
  Output.clear();
  std::array<char, 4096> Buffer;
  size_t Read;
  while ((Read = fread(Buffer.data(), 1, Buffer.size(), Pipe)) > 0)
    Output.append(Buffer.data(), Read);
  int Status = pclose(Pipe);
  if (Status == -1)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

int runTool(const std::string &Args) {
  std::string Discard;
  return runTool(Args, Discard);
}

std::string isaKernel(const char *Name) {
  return std::string(ENERJ_FEJ_DIR) + "/isa/" + Name;
}

} // namespace

TEST(CliBound, JsonMatchesGoldenAtMedium) {
  // The full schema-v1 report for fft at medium, pinned byte for byte.
  // A change here is a change to the analysis result or the schema and
  // must be deliberate.
  std::string Output;
  ASSERT_EQ(runTool("bound " + isaKernel("fft.fej") + " --level medium "
                    "--json",
                    Output),
            0);
  std::string Expected =
      std::string("{\"tool\": \"fenerj-bound\", \"version\": 1, "
                  "\"file\": \"") +
      isaKernel("fft.fej") +
      "\", \"level\": \"medium\", \"conservative\": false, "
      "\"pathBound\": 1, \"intOutputBound\": 1, \"fpOutputBound\": 0, "
      "\"programBound\": 0, \"preciseMemBound\": 1, "
      "\"approxMemBound\": 0, \"loops\": 6, \"loopsUnrolled\": 5, "
      "\"loopsWidened\": 1, \"blockEvals\": 51, \"sites\": "
      "[{\"block\": 18, \"index\": 2, \"line\": 210, \"op\": "
      "\"fendorse\", \"srcReg\": \"f16\", \"bound\": 0, \"visits\": "
      "1}]}\n";
  EXPECT_EQ(Output, Expected);
}

TEST(CliBound, JsonIsBytewiseStableAcrossRuns) {
  std::string First, Second;
  std::string Args =
      "bound " + isaKernel("sor.fej") + " --level aggressive --json";
  ASSERT_EQ(runTool(Args, First), 0);
  ASSERT_EQ(runTool(Args, Second), 0);
  EXPECT_EQ(First, Second);
  EXPECT_NE(First.find("\"tool\": \"fenerj-bound\""), std::string::npos);
  EXPECT_NE(First.find("\"version\": 1"), std::string::npos);
}

TEST(CliBound, NoneLevelReportsEveryBoundAsOne) {
  for (const char *Name : {"fft.fej", "sor.fej", "montecarlo.fej"}) {
    std::string Output;
    ASSERT_EQ(runTool("bound " + isaKernel(Name) + " --level none --json",
                      Output),
              0)
        << Name;
    EXPECT_NE(Output.find("\"pathBound\": 1,"), std::string::npos) << Name;
    EXPECT_NE(Output.find("\"intOutputBound\": 1,"), std::string::npos)
        << Name;
    EXPECT_NE(Output.find("\"fpOutputBound\": 1,"), std::string::npos)
        << Name;
    EXPECT_NE(Output.find("\"programBound\": 1,"), std::string::npos)
        << Name;
    EXPECT_NE(Output.find("\"conservative\": false"), std::string::npos)
        << Name;
  }
}

TEST(CliBound, DefaultLevelIsMedium) {
  std::string Output;
  ASSERT_EQ(runTool("bound " + isaKernel("fft.fej"), Output), 0);
  EXPECT_NE(Output.find("@ medium"), std::string::npos);
}

TEST(CliBound, PerSiteTextListsEndorsementSites) {
  std::string Output;
  ASSERT_EQ(runTool("bound " + isaKernel("fft.fej") + " --per-site",
                    Output),
            0);
  EXPECT_NE(Output.find("endorsement sites"), std::string::npos);
  EXPECT_NE(Output.find("fendorse"), std::string::npos);
  EXPECT_NE(Output.find("line 210"), std::string::npos);
}

TEST(CliBound, FlagOrderDoesNotMatter) {
  std::string A, B;
  ASSERT_EQ(runTool("bound " + isaKernel("lu.fej") +
                    " --json --level mild",
                    A),
            0);
  ASSERT_EQ(runTool("bound " + isaKernel("lu.fej") +
                    " --level mild --json",
                    B),
            0);
  EXPECT_EQ(A, B);
}

TEST(CliBound, ArgvValidation) {
  std::string Output;
  EXPECT_EQ(runTool("bound " + isaKernel("fft.fej") + " --frobnicate",
                    Output),
            2);
  EXPECT_NE(Output.find("frobnicate"), std::string::npos);
  EXPECT_EQ(runTool("bound " + isaKernel("fft.fej") + " --level warp"), 2);
  EXPECT_EQ(runTool("bound " + isaKernel("fft.fej") + " --level"), 2);
  EXPECT_EQ(runTool("bound /nonexistent/missing.fej"), 1);
  EXPECT_EQ(runTool("bound"), 2);
}
