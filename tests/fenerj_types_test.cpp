//===- tests/fenerj_types_test.cpp - Qualifier lattice tests --------------===//

#include "fenerj/types.h"

#include <gtest/gtest.h>

#include <vector>

using namespace enerj::fenerj;

namespace {

const std::vector<Qual> AllQuals = {Qual::Precise, Qual::Approx, Qual::Top,
                                    Qual::Context, Qual::Lost};

/// A trivial class hierarchy: B <: A <: Object, C <: Object.
class TestOracle : public SubclassOracle {
public:
  bool isSubclassOf(const std::string &Sub,
                    const std::string &Super) const override {
    if (Sub == Super || Super == "Object")
      return true;
    if (Sub == "B" && Super == "A")
      return true;
    return false;
  }
};

} // namespace

TEST(QualLattice, Reflexive) {
  for (Qual Q : AllQuals)
    EXPECT_TRUE(subQual(Q, Q)) << qualName(Q);
}

TEST(QualLattice, TopIsTop) {
  for (Qual Q : AllQuals)
    EXPECT_TRUE(subQual(Q, Qual::Top)) << qualName(Q);
  EXPECT_FALSE(subQual(Qual::Top, Qual::Precise));
  EXPECT_FALSE(subQual(Qual::Top, Qual::Approx));
  EXPECT_FALSE(subQual(Qual::Top, Qual::Lost));
}

TEST(QualLattice, EverythingButTopBelowLost) {
  // "Every qualifier other than top is below lost" (Section 3.1).
  EXPECT_TRUE(subQual(Qual::Precise, Qual::Lost));
  EXPECT_TRUE(subQual(Qual::Approx, Qual::Lost));
  EXPECT_TRUE(subQual(Qual::Context, Qual::Lost));
  EXPECT_TRUE(subQual(Qual::Lost, Qual::Lost));
  EXPECT_FALSE(subQual(Qual::Top, Qual::Lost));
}

TEST(QualLattice, PreciseAndApproxUnrelated) {
  // "Note that the precise and approx qualifiers are not related."
  EXPECT_FALSE(subQual(Qual::Precise, Qual::Approx));
  EXPECT_FALSE(subQual(Qual::Approx, Qual::Precise));
  EXPECT_FALSE(subQual(Qual::Context, Qual::Precise));
  EXPECT_FALSE(subQual(Qual::Approx, Qual::Context));
}

TEST(QualLattice, Transitive) {
  // Property: the ordering is transitive over all triples.
  for (Qual A : AllQuals)
    for (Qual B : AllQuals)
      for (Qual C : AllQuals)
        if (subQual(A, B) && subQual(B, C)) {
          EXPECT_TRUE(subQual(A, C))
              << qualName(A) << " <: " << qualName(B) << " <: "
              << qualName(C);
        }
}

TEST(QualLattice, Antisymmetric) {
  for (Qual A : AllQuals)
    for (Qual B : AllQuals)
      if (subQual(A, B) && subQual(B, A)) {
        EXPECT_EQ(A, B);
      }
}

TEST(ContextAdaptation, NonContextUnchanged) {
  // q |> q' = q' when q' != context.
  for (Qual Receiver : AllQuals)
    for (Qual Declared : {Qual::Precise, Qual::Approx, Qual::Top, Qual::Lost})
      EXPECT_EQ(adaptQual(Receiver, Declared), Declared);
}

TEST(ContextAdaptation, ContextTakesReceiver) {
  EXPECT_EQ(adaptQual(Qual::Precise, Qual::Context), Qual::Precise);
  EXPECT_EQ(adaptQual(Qual::Approx, Qual::Context), Qual::Approx);
  EXPECT_EQ(adaptQual(Qual::Context, Qual::Context), Qual::Context);
}

TEST(ContextAdaptation, TopAndLostLose) {
  // "context adapts to lost when the left-hand-side qualifier is top
  // because the appropriate qualifier cannot be determined."
  EXPECT_EQ(adaptQual(Qual::Top, Qual::Context), Qual::Lost);
  EXPECT_EQ(adaptQual(Qual::Lost, Qual::Context), Qual::Lost);
}

TEST(ContextAdaptation, AdaptTypeCoversArrays) {
  Type Arr = Type::makeArray(Qual::Context, BaseKind::Float);
  Type Adapted = adaptType(Qual::Approx, Arr);
  EXPECT_EQ(Adapted.ElemQual, Qual::Approx);
  EXPECT_EQ(Adapted.Q, Qual::Precise); // Array references stay precise.
}

TEST(Subtyping, PrimitivePreciseFlowsAnywhere) {
  TestOracle Oracle;
  for (Qual Super : AllQuals)
    EXPECT_TRUE(isSubtype(Type::makePrim(Qual::Precise, BaseKind::Int),
                          Type::makePrim(Super, BaseKind::Int), Oracle))
        << qualName(Super);
}

TEST(Subtyping, ApproxPrimitiveNotBelowPrecise) {
  TestOracle Oracle;
  EXPECT_FALSE(isSubtype(Type::makePrim(Qual::Approx, BaseKind::Int),
                         Type::makePrim(Qual::Precise, BaseKind::Int),
                         Oracle));
  EXPECT_FALSE(isSubtype(Type::makePrim(Qual::Top, BaseKind::Float),
                         Type::makePrim(Qual::Approx, BaseKind::Float),
                         Oracle));
}

TEST(Subtyping, BaseTypesDontMix) {
  TestOracle Oracle;
  EXPECT_FALSE(isSubtype(Type::makePrim(Qual::Precise, BaseKind::Int),
                         Type::makePrim(Qual::Precise, BaseKind::Float),
                         Oracle));
}

TEST(Subtyping, ClassSubtypingNeedsBothDimensions) {
  TestOracle Oracle;
  // B <: A with the same qualifier: ok.
  EXPECT_TRUE(isSubtype(Type::makeClass(Qual::Approx, "B"),
                        Type::makeClass(Qual::Approx, "A"), Oracle));
  // Qualifier upcast to top: ok.
  EXPECT_TRUE(isSubtype(Type::makeClass(Qual::Precise, "B"),
                        Type::makeClass(Qual::Top, "A"), Oracle));
  // precise C is NOT a subtype of approx C (mutable references,
  // Section 2.1).
  EXPECT_FALSE(isSubtype(Type::makeClass(Qual::Precise, "A"),
                         Type::makeClass(Qual::Approx, "A"), Oracle));
  // Wrong class direction.
  EXPECT_FALSE(isSubtype(Type::makeClass(Qual::Approx, "A"),
                         Type::makeClass(Qual::Approx, "B"), Oracle));
}

TEST(Subtyping, NullBelowReferences) {
  TestOracle Oracle;
  EXPECT_TRUE(isSubtype(Type::makeNull(),
                        Type::makeClass(Qual::Approx, "A"), Oracle));
  EXPECT_TRUE(isSubtype(Type::makeNull(),
                        Type::makeArray(Qual::Approx, BaseKind::Int),
                        Oracle));
  EXPECT_FALSE(isSubtype(Type::makeNull(),
                         Type::makePrim(Qual::Precise, BaseKind::Int),
                         Oracle));
}

TEST(Subtyping, ArraysInvariant) {
  TestOracle Oracle;
  Type ApproxArr = Type::makeArray(Qual::Approx, BaseKind::Float);
  Type PreciseArr = Type::makeArray(Qual::Precise, BaseKind::Float);
  EXPECT_TRUE(isSubtype(ApproxArr, ApproxArr, Oracle));
  EXPECT_FALSE(isSubtype(PreciseArr, ApproxArr, Oracle));
  EXPECT_FALSE(isSubtype(ApproxArr, PreciseArr, Oracle));
}

TEST(Subtyping, TransitiveOverPrimitives) {
  TestOracle Oracle;
  std::vector<Type> Types;
  for (Qual Q : AllQuals)
    Types.push_back(Type::makePrim(Q, BaseKind::Int));
  for (const Type &A : Types)
    for (const Type &B : Types)
      for (const Type &C : Types)
        if (isSubtype(A, B, Oracle) && isSubtype(B, C, Oracle)) {
          EXPECT_TRUE(isSubtype(A, C, Oracle))
              << A.str() << " <: " << B.str() << " <: " << C.str();
        }
}

TEST(Types, Printing) {
  EXPECT_EQ(Type::makePrim(Qual::Approx, BaseKind::Int).str(),
            "@approx int");
  EXPECT_EQ(Type::makeClass(Qual::Context, "Vec").str(), "@context Vec");
  EXPECT_EQ(Type::makeArray(Qual::Approx, BaseKind::Float).str(),
            "@approx float[]");
  EXPECT_EQ(Type::makeNull().str(), "null");
}

TEST(Types, MentionsLostAndContext) {
  EXPECT_TRUE(Type::makePrim(Qual::Lost, BaseKind::Int).mentionsLost());
  EXPECT_TRUE(Type::makeArray(Qual::Lost, BaseKind::Int).mentionsLost());
  EXPECT_FALSE(Type::makePrim(Qual::Approx, BaseKind::Int).mentionsLost());
  EXPECT_TRUE(Type::makePrim(Qual::Context, BaseKind::Int).mentionsContext());
  EXPECT_TRUE(
      Type::makeArray(Qual::Context, BaseKind::Int).mentionsContext());
}
