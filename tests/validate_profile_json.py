#!/usr/bin/env python3
"""Validate `fenerj_tool profile --json` output (schema v1), and
optionally a Chrome/Perfetto trace file written by `profile --trace`.

Like validate_eval_json.py, this checks structure, key presence, key
order, and cross-field invariants — including the attribution
invariant: the per-site energy shares must sum to the total energy
factor within 1e-9, and the ledger and registry tick counts must agree.
It deliberately does NOT compare metric values against goldens (QoS
numbers depend on libm); the byte-level contracts live in the C++ obs
tests.

Usage:
  fenerj_tool profile app --json | python3 tests/validate_profile_json.py
  python3 tests/validate_profile_json.py --trace out.json

Exits 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

TOP_KEYS = ["tool", "version", "app", "level", "seeds", "topK", "qos",
            "energy", "shareSum", "ticks", "ops", "faults", "flippedBits",
            "sites", "dramGaps"]
STATS_KEYS = ["count", "mean", "stddev", "min", "max", "ci95"]
ENERGY_KEYS = ["instruction", "sram", "dram", "cpu", "total"]
TICKS_KEYS = ["ledger", "registry"]
SITE_KEYS = ["region", "item", "class", "storage", "ops", "faults",
             "flippedBits", "preciseByteCycles", "approxByteCycles",
             "energyShare", "qosDelta"]
OP_ITEMS = {"preciseInt", "approxInt", "preciseFp", "approxFp",
            "sramRead", "sramWrite", "dramLoad", "dramStore"}
STORAGE_ITEMS = {"sramStorage", "dramStorage"}
SITE_CLASSES = {"alu", "sram", "dram"}
LEVELS = {"none", "mild", "medium", "aggressive"}
DRAM_GAP_BUCKETS = 32
SHARE_TOLERANCE = 1e-9


def fail(message):
    print(f"validate_profile_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect_keys(obj, keys, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected an object, got {type(obj).__name__}")
    if list(obj.keys()) != keys:
        fail(f"{where}: keys {list(obj.keys())} != expected {keys}")


def expect_count(obj, key, where):
    if not isinstance(obj[key], int) or isinstance(obj[key], bool) \
            or obj[key] < 0:
        fail(f"{where}.{key}: not a non-negative integer")


def validate_profile(doc):
    expect_keys(doc, TOP_KEYS, "top level")
    if doc["tool"] != "enerj-profile":
        fail(f"tool is {doc['tool']!r}, expected 'enerj-profile'")
    if doc["version"] != 1:
        fail(f"version is {doc['version']!r}, expected 1")
    if doc["level"] not in LEVELS:
        fail(f"level {doc['level']!r}: unknown")
    for key in ("seeds", "ops", "faults", "flippedBits"):
        expect_count(doc, key, "top level")
    if doc["seeds"] < 1:
        fail("seeds: must be positive")

    expect_keys(doc["qos"], STATS_KEYS, "qos")
    if doc["qos"]["count"] != doc["seeds"]:
        fail(f"qos.count {doc['qos']['count']} != seeds {doc['seeds']}")

    expect_keys(doc["energy"], ENERGY_KEYS, "energy")
    for key in ENERGY_KEYS:
        if not isinstance(doc["energy"][key], (int, float)):
            fail(f"energy.{key}: not a number")

    expect_keys(doc["ticks"], TICKS_KEYS, "ticks")
    for key in TICKS_KEYS:
        expect_count(doc["ticks"], key, "ticks")
    if doc["ticks"]["ledger"] != doc["ticks"]["registry"]:
        fail(f"tick mismatch: ledger {doc['ticks']['ledger']} != "
             f"registry {doc['ticks']['registry']} — the op-coverage "
             f"audit failed")
    if doc["ticks"]["registry"] > doc["ops"]:
        fail("ticks exceed total ops")

    if not isinstance(doc["sites"], list) or not doc["sites"]:
        fail("sites: empty or not a list")
    share_sum = 0.0
    op_sum = 0
    fault_sum = 0
    last_share = None
    residual_seen = False
    for index, site in enumerate(doc["sites"]):
        where = f"sites[{index}]"
        expect_keys(site, SITE_KEYS, where)
        if site["class"] not in SITE_CLASSES:
            fail(f"{where}.class: unknown class {site['class']!r}")
        if not isinstance(site["storage"], bool):
            fail(f"{where}.storage: not a bool")
        if residual_seen:
            fail(f"{where}: rows after the residual row")
        if site["item"] == "-":
            residual_seen = True
        elif site["storage"]:
            if site["item"] not in STORAGE_ITEMS:
                fail(f"{where}.item: unknown storage item "
                     f"{site['item']!r}")
        elif site["item"] not in OP_ITEMS:
            fail(f"{where}.item: unknown op kind {site['item']!r}")
        for key in ("ops", "faults", "flippedBits"):
            expect_count(site, key, where)
        if site["faults"] > site["ops"]:
            fail(f"{where}: faults exceed ops")
        if not isinstance(site["energyShare"], (int, float)):
            fail(f"{where}.energyShare: not a number")
        if site["energyShare"] < 0:
            fail(f"{where}.energyShare: negative")
        if site["qosDelta"] is not None \
                and not isinstance(site["qosDelta"], (int, float)):
            fail(f"{where}.qosDelta: not a number or null")
        # Sorted by share descending (the residual row exempt).
        if last_share is not None and site["item"] != "-" \
                and site["energyShare"] > last_share + SHARE_TOLERANCE:
            fail(f"{where}: shares not sorted descending")
        if site["item"] != "-":
            last_share = site["energyShare"]
        share_sum += site["energyShare"]
        op_sum += site["ops"]
        fault_sum += site["faults"]

    # The attribution invariant.
    if abs(share_sum - doc["energy"]["total"]) > SHARE_TOLERANCE:
        fail(f"energy shares sum to {share_sum!r}, not total factor "
             f"{doc['energy']['total']!r}")
    if abs(doc["shareSum"] - doc["energy"]["total"]) > SHARE_TOLERANCE:
        fail(f"shareSum {doc['shareSum']!r} != total factor "
             f"{doc['energy']['total']!r}")
    if op_sum != doc["ops"]:
        fail(f"site ops sum to {op_sum}, not ops={doc['ops']}")
    if fault_sum != doc["faults"]:
        fail(f"site faults sum to {fault_sum}, not faults={doc['faults']}")

    if not isinstance(doc["dramGaps"], list) \
            or len(doc["dramGaps"]) != DRAM_GAP_BUCKETS:
        fail(f"dramGaps: expected {DRAM_GAP_BUCKETS} buckets")
    for bucket in doc["dramGaps"]:
        if not isinstance(bucket, int) or bucket < 0:
            fail("dramGaps: bucket not a non-negative integer")

    print(f"validate_profile_json: OK (v1, app {doc['app']!r} at "
          f"{doc['level']}, seeds={doc['seeds']}, "
          f"{len(doc['sites'])} site(s))")


def validate_trace(doc):
    if list(doc.keys()) != ["traceEvents", "displayTimeUnit"]:
        fail(f"trace: keys {list(doc.keys())}")
    if doc["displayTimeUnit"] != "ms":
        fail("trace: displayTimeUnit is not 'ms'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("trace: traceEvents empty or not a list")
    open_spans = {}
    seen_process_name = False
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in ("M", "B", "E", "i"):
            fail(f"{where}: unknown phase {phase!r}")
        if not isinstance(event.get("name"), str):
            fail(f"{where}: missing name")
        if event.get("pid") != 1:
            fail(f"{where}: pid is not 1")
        if not isinstance(event.get("tid"), int):
            fail(f"{where}: missing tid")
        if phase == "M":
            if event["name"] == "process_name":
                seen_process_name = True
            continue
        if not isinstance(event.get("ts"), int) or event["ts"] < 0:
            fail(f"{where}: ts not a non-negative integer")
        if phase == "B":
            open_spans.setdefault(event["tid"], []).append(event["name"])
        elif phase == "E":
            stack = open_spans.get(event["tid"])
            if not stack:
                fail(f"{where}: E without a matching B")
            top = stack.pop()
            if top != event["name"]:
                fail(f"{where}: E {event['name']!r} closes B {top!r}")
        elif event.get("s") != "t":
            fail(f"{where}: instant without thread scope")
    if not seen_process_name:
        fail("trace: no process_name metadata")
    dangling = sum(len(stack) for stack in open_spans.values())
    if dangling:
        fail(f"trace: {dangling} unclosed region span(s)")
    print(f"validate_profile_json: trace OK ({len(events)} event(s))")


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--trace":
        try:
            with open(sys.argv[2]) as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            fail(f"cannot read trace: {err}")
        validate_trace(doc)
        return
    if len(sys.argv) != 1:
        fail(f"usage: validate_profile_json.py [--trace file] "
             f"(got {sys.argv[1:]})")
    try:
        doc = json.load(sys.stdin)
    except json.JSONDecodeError as err:
        fail(f"not valid JSON: {err}")
    validate_profile(doc)


if __name__ == "__main__":
    main()
