//===- tests/fenerj_bidir_test.cpp - Bidirectional typing (Section 2.3) ---===//
//
// EnerJ applies approximate arithmetic operators when the *result* type
// is approximate — on the right-hand side of assignments and in method
// arguments — even if both operands are precise. These tests verify the
// checker's side table, the interpreter's operator selection (counted
// and perturbable), and that the optimization cannot break
// non-interference.
//
//===----------------------------------------------------------------------===//

#include "fenerj/fenerj.h"

#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::fenerj;

namespace {

struct Compiled {
  Program Prog;
  ClassTable Table;
  CheckResult Check;
};

Compiled compileWith(std::string_view Source, bool Bidirectional) {
  DiagnosticEngine Diags;
  Compiled Out;
  std::optional<Program> Prog = parseProgram(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  if (!Prog)
    return Out;
  Out.Prog = std::move(*Prog);
  EXPECT_TRUE(Out.Table.build(Out.Prog, Diags)) << Diags.str();
  CheckOptions Options;
  Options.Bidirectional = Bidirectional;
  Out.Check = typeCheckEx(Out.Prog, Out.Table, Diags, Options);
  EXPECT_TRUE(Out.Check.Ok) << Diags.str();
  return Out;
}

OperationStats opsOf(const Compiled &C, Perturber *Perturb = nullptr) {
  InterpOptions Options;
  Options.ContextApproxOps = &C.Check.ContextApproxOps;
  Options.Perturb = Perturb;
  Interpreter Interp(C.Prog, C.Table, Options);
  EvalResult Result = Interp.run();
  EXPECT_FALSE(Result.Trapped) << Result.TrapMessage;
  return Interp.opStats();
}

} // namespace

TEST(Bidirectional, PaperExample) {
  // "Consider a = b + c where a is approximate but b and c are precise":
  // the addition runs approximately without any extra annotation.
  const char *Source = R"({
    let int b = 2;
    let int c = 3;
    let @approx int a = 0;
    a = b + c;
  })";
  Compiled With = compileWith(Source, true);
  EXPECT_EQ(With.Check.ContextApproxOps.size(), 1u);
  Compiled Without = compileWith(Source, false);
  EXPECT_TRUE(Without.Check.ContextApproxOps.empty());

  OperationStats WithOps = opsOf(With);
  EXPECT_EQ(WithOps.ApproxInt, 1u);
  OperationStats WithoutOps = opsOf(Without);
  EXPECT_EQ(WithoutOps.ApproxInt, 0u);
  EXPECT_EQ(WithoutOps.PreciseInt, WithOps.PreciseInt + 1);
}

TEST(Bidirectional, WholeExpressionTreeSelected) {
  // The approximate expectation flows into nested arithmetic.
  Compiled C = compileWith(R"({
    let @approx float x = 1.0 * 2.0 + 3.0 * 4.0;
    x;
  })",
                           true);
  // The two multiplies are recorded; the add then sees approximate
  // operand *types*, so the ordinary overloading rule already selects
  // the approximate operator for it — dynamically all three ops run
  // approximately.
  EXPECT_EQ(C.Check.ContextApproxOps.size(), 2u);
  EXPECT_EQ(opsOf(C).ApproxFp, 3u);
}

TEST(Bidirectional, InitializersAssignsWritesAndArgs) {
  Compiled C = compileWith(R"(
    class Box {
      @approx float v;
      int put(@approx float x) { this.v := x; 0; }
    }
    {
      let Box b = new Box();
      b.put(1.0 + 2.0);          // argument context
      b.v := 3.0 * 4.0;          // field-write context
      let @approx float[] a = new @approx float[2];
      a[0] := 5.0 - 6.0;         // array-store context
      let @approx float l = 7.0 / 8.0; // initializer context
      l = 9.0 + 1.0;             // assignment context
    }
  )",
                           true);
  EXPECT_EQ(C.Check.ContextApproxOps.size(), 5u);
}

TEST(Bidirectional, PreciseContextsUntouched) {
  Compiled C = compileWith(R"({
    let int p = 1 + 2;           // precise initializer
    let @approx int a = 0;
    if (p > 2) { a = 1 + 1; } else { a = 2 + 2; };  // only these two
    p;
  })",
                           true);
  // The condition and the precise initializer stay precise.
  EXPECT_EQ(C.Check.ContextApproxOps.size(), 2u);
  OperationStats Ops = opsOf(C);
  EXPECT_EQ(Ops.ApproxInt, 1u); // One branch executes.
}

TEST(Bidirectional, AlreadyApproxOperandsNotDoubleCounted) {
  Compiled C = compileWith(R"({
    let @approx int a = 1;
    let @approx int b = 0;
    b = a + 1;  // operand already approximate: normal overloading rule
  })",
                           true);
  EXPECT_TRUE(C.Check.ContextApproxOps.empty());
  EXPECT_EQ(opsOf(C).ApproxInt, 1u);
}

TEST(Bidirectional, SelectedOpsArePerturbable) {
  // The selected operations really run on the approximate unit: a
  // full-strength perturber changes their results...
  const char *Source = R"({
    let @approx int a = 0;
    a = 10 + 20;
    endorse(a);
  })";
  Compiled C = compileWith(Source, true);
  RandomPerturber Perturb(3, 1.0);
  InterpOptions Options;
  Options.ContextApproxOps = &C.Check.ContextApproxOps;
  Options.Perturb = &Perturb;
  Interpreter Interp(C.Prog, C.Table, Options);
  EvalResult Result = Interp.run();
  ASSERT_FALSE(Result.Trapped);
  EXPECT_NE(Result.Result.I, 30);

  // ...while without the side table the addition itself executes
  // precisely (the value still lands in approximate storage, so reads of
  // 'a' remain perturbable — but the op count proves which unit ran it).
  Compiled Plain = compileWith(Source, false);
  RandomPerturber Perturb2(3, 1.0);
  InterpOptions PlainOptions;
  PlainOptions.ContextApproxOps = &Plain.Check.ContextApproxOps;
  PlainOptions.Perturb = &Perturb2;
  Interpreter PlainInterp(Plain.Prog, Plain.Table, PlainOptions);
  EvalResult PlainResult = PlainInterp.run();
  ASSERT_FALSE(PlainResult.Trapped);
  EXPECT_EQ(PlainInterp.opStats().ApproxInt, 0u);
  EXPECT_EQ(PlainInterp.opStats().PreciseInt, Interp.opStats().PreciseInt + 1);
}

TEST(Bidirectional, NonInterferenceStillHolds) {
  // The optimization only reclassifies ops whose results flow to
  // approximate storage, so the precise projection stays invariant.
  for (uint64_t Seed = 100; Seed < 120; ++Seed) {
    GeneratorOptions GenOptions;
    GenOptions.Seed = Seed;
    std::string Source = generateProgram(GenOptions);
    DiagnosticEngine Diags;
    ClassTable Table;
    std::optional<Program> Prog = parseProgram(Source, Diags);
    ASSERT_TRUE(Prog.has_value());
    ASSERT_TRUE(Table.build(*Prog, Diags));
    CheckOptions Options;
    Options.Bidirectional = true;
    CheckResult Check = typeCheckEx(*Prog, Table, Diags, Options);
    ASSERT_TRUE(Check.Ok) << Diags.str();

    Interpreter Ref(*Prog, Table, {});
    EvalResult RefResult = Ref.run();
    ASSERT_FALSE(RefResult.Trapped);

    RandomPerturber Perturb(Seed, 1.0);
    InterpOptions RunOptions;
    RunOptions.ContextApproxOps = &Check.ContextApproxOps;
    RunOptions.Perturb = &Perturb;
    Interpreter Run(*Prog, Table, RunOptions);
    EvalResult Result = Run.run();
    ASSERT_FALSE(Result.Trapped) << Result.TrapMessage;
    EXPECT_EQ(Run.preciseProjection(Result),
              Ref.preciseProjection(RefResult))
        << "seed " << Seed;
  }
}

TEST(Bidirectional, OpStatsFeedTheEnergyModel) {
  // The FEnerJ-to-energy bridge: more approximate ops, more savings.
  const char *Source = R"({
    let @approx float acc = 0.0;
    let int i = 0;
    while (i < 100) {
      acc = acc + 1.5 * 2.5;
      i = i + 1;
    };
    endorse(acc);
  })";
  Compiled With = compileWith(Source, true);
  Compiled Without = compileWith(Source, false);
  OperationStats WithOps = opsOf(With);
  OperationStats WithoutOps = opsOf(Without);
  EXPECT_GT(WithOps.ApproxFp, WithoutOps.ApproxFp);
  EXPECT_EQ(WithOps.total(), WithoutOps.total());
  EXPECT_GT(WithOps.approxFpFraction(), WithoutOps.approxFpFraction());
}
