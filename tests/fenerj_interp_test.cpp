//===- tests/fenerj_interp_test.cpp - Interpreter tests -------------------===//

#include "fenerj/interp.h"
#include "fenerj/typecheck.h"

#include <gtest/gtest.h>

using namespace enerj::fenerj;

namespace {

struct Compiled {
  Program Prog;
  ClassTable Table;
};

Compiled compileOk(std::string_view Source) {
  DiagnosticEngine Diags;
  Compiled Out;
  std::optional<Program> Prog = compile(Source, Out.Table, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  if (Prog)
    Out.Prog = std::move(*Prog);
  return Out;
}

EvalResult runOk(const Compiled &C, InterpOptions Options = {}) {
  Interpreter Interp(C.Prog, C.Table, Options);
  EvalResult Result = Interp.run();
  EXPECT_FALSE(Result.Trapped) << Result.TrapMessage;
  return Result;
}

int64_t evalInt(std::string_view Source) {
  Compiled C = compileOk(Source);
  EvalResult R = runOk(C);
  EXPECT_EQ(R.Result.K, Value::Kind::Int);
  return R.Result.I;
}

double evalFloat(std::string_view Source) {
  Compiled C = compileOk(Source);
  EvalResult R = runOk(C);
  EXPECT_EQ(R.Result.K, Value::Kind::Float);
  return R.Result.F;
}

} // namespace

TEST(FenerjInterp, Arithmetic) {
  EXPECT_EQ(evalInt("1 + 2 * 3"), 7);
  EXPECT_EQ(evalInt("(1 + 2) * 3"), 9);
  EXPECT_EQ(evalInt("10 / 3"), 3);
  EXPECT_EQ(evalInt("10 % 3"), 1);
  EXPECT_EQ(evalInt("-5 + 2"), -3);
  EXPECT_DOUBLE_EQ(evalFloat("1.5 * 2.0"), 3.0);
  EXPECT_DOUBLE_EQ(evalFloat("7.0 / 2.0"), 3.5);
}

TEST(FenerjInterp, Booleans) {
  EXPECT_EQ(evalInt("if (1 < 2 && 2 < 3) { 1; } else { 0; }"), 1);
  EXPECT_EQ(evalInt("if (false || true) { 1; } else { 0; }"), 1);
  EXPECT_EQ(evalInt("if (!(1 == 2)) { 1; } else { 0; }"), 1);
}

TEST(FenerjInterp, LetAndAssign) {
  EXPECT_EQ(evalInt("{ let int x = 5; x = x + 1; x * 2; }"), 12);
}

TEST(FenerjInterp, WhileLoop) {
  EXPECT_EQ(evalInt(R"({
    let int i = 0;
    let int sum = 0;
    while (i < 10) { sum = sum + i; i = i + 1; };
    sum;
  })"),
            45);
}

TEST(FenerjInterp, ObjectsAndFields) {
  EXPECT_EQ(evalInt(R"(
    class Counter {
      int count;
      int inc() { this.count := this.count + 1; }
    }
    {
      let Counter c = new Counter();
      c.inc();
      c.inc();
      c.inc();
      c.count;
    }
  )"),
            3);
}

TEST(FenerjInterp, InheritanceAndFieldDefaults) {
  EXPECT_EQ(evalInt(R"(
    class A { int x; }
    class B extends A { int y; }
    {
      let B b = new B();
      b.x := 4;
      b.y := 5;
      b.x + b.y;
    }
  )"),
            9);
}

TEST(FenerjInterp, MethodDispatchByInstancePrecision) {
  // The FloatSet pattern: the approx variant computes a cheaper mean.
  const char *Source = R"(
    class S {
      @context float v;
      float get() precise { this.v + 100.0; }
      @approx float get() approx { this.v + 200.0; }
    }
    {
      let @precise S p = new @precise S();
      let @approx S a = new @approx S();
      PROBE;
    }
  )";
  std::string PreciseProbe = Source;
  PreciseProbe.replace(PreciseProbe.find("PROBE"), 5, "p.get()");
  EXPECT_DOUBLE_EQ(evalFloat(PreciseProbe), 100.0);

  std::string ApproxProbe = Source;
  ApproxProbe.replace(ApproxProbe.find("PROBE"), 5, "endorse(a.get())");
  EXPECT_DOUBLE_EQ(evalFloat(ApproxProbe), 200.0);
}

TEST(FenerjInterp, Arrays) {
  EXPECT_EQ(evalInt(R"({
    let int[] a = new int[5];
    let int i = 0;
    while (i < a.length) { a[i] := i * i; i = i + 1; };
    a[0] + a[1] + a[2] + a[3] + a[4];
  })"),
            30);
}

TEST(FenerjInterp, ApproxArraysWithEndorse) {
  EXPECT_EQ(evalInt(R"({
    let @approx int[] a = new @approx int[3];
    a[0] := 7;
    a[1] := 8;
    endorse(a[0] + a[1]);
  })"),
            15);
}

TEST(FenerjInterp, EndorsedComparisonControlsFlow) {
  EXPECT_EQ(evalInt(R"({
    let @approx int v = 5;
    if (endorse(v == 5)) { 1; } else { 0; };
  })"),
            1);
}

TEST(FenerjInterp, CastsAtRuntime) {
  EXPECT_DOUBLE_EQ(evalFloat("cast<float>(3)"), 3.0);
  EXPECT_EQ(evalInt("cast<int>(3.9)"), 3);
  EXPECT_EQ(evalInt(R"(
    class A { int f; }
    class B extends A { int g; }
    {
      let A a = new B();
      let B b = cast<B>(a);
      b.g := 5;
      b.g;
    }
  )"),
            5);
}

TEST(FenerjInterp, BadDowncastTraps) {
  Compiled C = compileOk(R"(
    class A { int f; }
    class B extends A { int g; }
    {
      let A a = new A();
      cast<B>(a);
    }
  )");
  Interpreter Interp(C.Prog, C.Table, {});
  EvalResult R = Interp.run();
  EXPECT_TRUE(R.Trapped);
}

TEST(FenerjInterp, PreciseDivisionByZeroTraps) {
  Compiled C = compileOk("{ 1 / 0; }");
  Interpreter Interp(C.Prog, C.Table, {});
  EXPECT_TRUE(Interp.run().Trapped);
}

TEST(FenerjInterp, ApproxDivisionByZeroYieldsZero) {
  // Section 5.2: approximate functional units never raise divide-by-zero.
  EXPECT_EQ(evalInt(R"({
    let @approx int a = 5;
    let @approx int z = 0;
    endorse(a / z);
  })"),
            0);
}

TEST(FenerjInterp, ArrayBoundsTrap) {
  Compiled C = compileOk("{ let int[] a = new int[2]; a[5]; }");
  Interpreter Interp(C.Prog, C.Table, {});
  EXPECT_TRUE(Interp.run().Trapped);
}

TEST(FenerjInterp, FuelBoundsInfiniteLoops) {
  Compiled C = compileOk("{ while (true) { 1; }; }");
  InterpOptions Options;
  Options.Fuel = 10000;
  Interpreter Interp(C.Prog, C.Table, Options);
  EvalResult R = Interp.run();
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapMessage.find("fuel"), std::string::npos);
}

TEST(FenerjInterp, PerturberChangesOnlyApproxValues) {
  Compiled C = compileOk(R"({
    let @approx float noisy = 1.0;
    let float clean = 2.0;
    let @approx float sum = noisy + noisy;
    clean;
  })");
  RandomPerturber Perturb(7, 1.0); // Perturb every approximate value.
  InterpOptions Options;
  Options.Perturb = &Perturb;
  Interpreter Interp(C.Prog, C.Table, Options);
  EvalResult R = Interp.run();
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  // The precise result is untouched even under total perturbation.
  EXPECT_DOUBLE_EQ(R.Result.F, 2.0);
}

TEST(FenerjInterp, PerturberVisiblyCorruptsApproxResults) {
  Compiled C = compileOk(R"({
    let @approx float noisy = 1.0;
    endorse(noisy + noisy);
  })");
  RandomPerturber Perturb(7, 1.0);
  InterpOptions Options;
  Options.Perturb = &Perturb;
  Interpreter Interp(C.Prog, C.Table, Options);
  EvalResult R = Interp.run();
  ASSERT_FALSE(R.Trapped);
  EXPECT_NE(R.Result.F, 2.0); // With P=1 the sum is certainly perturbed.
}

TEST(FenerjInterp, PreciseProjectionListsPreciseState) {
  Compiled C = compileOk(R"(
    class P {
      int visible;
      @approx int hidden;
    }
    {
      let P p = new P();
      p.visible := 42;
      p.hidden := 99;
      7;
    }
  )");
  Interpreter Interp(C.Prog, C.Table, {});
  EvalResult R = Interp.run();
  std::string Projection = Interp.preciseProjection(R);
  EXPECT_NE(Projection.find("result=7"), std::string::npos);
  EXPECT_NE(Projection.find("visible=42"), std::string::npos);
  EXPECT_EQ(Projection.find("hidden"), std::string::npos);
}

TEST(FenerjInterp, ContextFieldsResolveByInstance) {
  // A @context field is part of the precise projection only on precise
  // instances.
  Compiled C = compileOk(R"(
    class P { @context int x; }
    {
      let @precise P p = new @precise P();
      let @approx P a = new @approx P();
      p.x := 1;
      a.x := 2;
      0;
    }
  )");
  Interpreter Interp(C.Prog, C.Table, {});
  EvalResult R = Interp.run();
  std::string Projection = Interp.preciseProjection(R);
  EXPECT_NE(Projection.find("P(precise) x=1"), std::string::npos);
  EXPECT_NE(Projection.find("P(approx)\n"), std::string::npos);
}

TEST(FenerjInterp, CheckedSemanticsAcceptsWellTypedPrograms) {
  // A program exercising most constructs runs cleanly under the checked
  // semantics with full perturbation: the checker really did isolate the
  // approximate part.
  Compiled C = compileOk(R"(
    class Acc {
      @context float total;
      int add(@context float v) { this.total := this.total + v; 0; }
      float get() precise { this.total; }
      @approx float get() approx { this.total; }
    }
    {
      let @precise Acc p = new @precise Acc();
      let @approx Acc a = new @approx Acc();
      let int i = 0;
      while (i < 50) {
        p.add(1.5);
        a.add(cast<@approx float>(2.5));
        i = i + 1;
      };
      let float total = p.get();
      let @approx float atotal = a.get();
      if (total > 70.0) { 1; } else { 0; };
    }
  )");
  RandomPerturber Perturb(99, 1.0);
  InterpOptions Options;
  Options.Perturb = &Perturb;
  Interpreter Interp(C.Prog, C.Table, Options);
  EvalResult R = Interp.run();
  ASSERT_FALSE(R.Trapped) << R.TrapMessage;
  EXPECT_EQ(R.Result.I, 1); // 50 * 1.5 = 75 > 70, precisely.
}
