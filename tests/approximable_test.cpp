//===- tests/approximable_test.cpp - @Approximable / @Context tests -------===//

#include "core/enerj.h"

#include <gtest/gtest.h>

using namespace enerj;

namespace {

/// The paper's IntPair example (Section 2.5.1): x and y take the
/// instance's precision; numAdditions is approximate on every instance.
template <Precision P> class IntPair : public Approximable<P> {
public:
  Context<P, int32_t> X{0};
  Context<P, int32_t> Y{0};
  Approx<int32_t> NumAdditions{0};

  void addToBoth(Context<P, int32_t> Amount) {
    X += Amount;
    Y += Amount;
    ++NumAdditions;
  }
};

/// The paper's FloatSet example (Section 2.5.2): mean() has a precise
/// implementation and a cheaper approximate one (mean_APPROX) that
/// averages only half the elements; the compiler picks by receiver
/// precision, exactly like EnerJ's receiver-based overloading.
template <Precision P> class FloatSet : public Approximable<P> {
public:
  explicit FloatSet(size_t N) : Nums(N) {}

  void set(size_t I, float V) { Nums[I] = V; }

  float mean() const
    requires(!IsApprox<P>)
  {
    Precise<float> Total = 0.0f;
    for (size_t I = 0; I < Nums.size(); ++I)
      Total += Nums[I];
    return Total.get() / Nums.size();
  }

  Approx<float> mean() const
    requires(IsApprox<P>)
  {
    Approx<float> Total = 0.0f;
    for (size_t I = 0; I < Nums.size(); I += 2)
      Total += Nums[I];
    return Approx<float>(2.0f) * Total / Approx<float>(float(Nums.size()));
  }

private:
  ContextArray<P, float> Nums;
};

} // namespace

TEST(Approximable, ContextFieldsFollowInstancePrecision) {
  // On a precise instance, X/Y are Precise<int32_t>; on an approximate
  // one they are Approx<int32_t>. Verified statically:
  static_assert(std::is_same_v<decltype(IntPair<Precision::Precise>::X),
                               Precise<int32_t>>);
  static_assert(std::is_same_v<decltype(IntPair<Precision::Approx>::X),
                               Approx<int32_t>>);
  // numAdditions is @Approx regardless of the instance.
  static_assert(
      std::is_same_v<decltype(IntPair<Precision::Precise>::NumAdditions),
                     Approx<int32_t>>);
}

TEST(Approximable, IntPairBehavior) {
  IntPair<Precision::Precise> P;
  P.addToBoth(5);
  P.addToBoth(3);
  EXPECT_EQ(P.X.get(), 8);
  EXPECT_EQ(P.Y.get(), 8);
  EXPECT_EQ(endorse(P.NumAdditions), 2);

  IntPair<Precision::Approx> A;
  A.addToBoth(Approx<int32_t>(4));
  EXPECT_EQ(endorse(A.X), 4);
  EXPECT_EQ(endorse(A.NumAdditions), 1);
}

TEST(Approximable, PreciseInstanceRequiresPreciseArgument) {
  // p.addToBoth() takes a precise argument; a.addToBoth() an approximate
  // one (Section 2.5.1). The approximate-instance parameter accepts
  // precise data via subtyping.
  IntPair<Precision::Approx> A;
  A.addToBoth(7); // precise literal flows in.
  EXPECT_EQ(endorse(A.X), 7);
  // And statically: Approx<int32_t> does NOT convert to Precise<int32_t>.
  static_assert(
      !std::is_convertible_v<Approx<int32_t>, Precise<int32_t>>);
}

TEST(Approximable, AlgorithmicApproximationDispatch) {
  FloatSet<Precision::Precise> PreciseSet(8);
  FloatSet<Precision::Approx> ApproxSet(8);
  for (size_t I = 0; I < 8; ++I) {
    PreciseSet.set(I, static_cast<float>(I));
    ApproxSet.set(I, static_cast<float>(I));
  }
  // Precise receiver: the exact mean of 0..7.
  EXPECT_FLOAT_EQ(PreciseSet.mean(), 3.5f);
  // Approximate receiver: averages only even indices {0,2,4,6} -> 3.0.
  EXPECT_FLOAT_EQ(endorse(ApproxSet.mean()), 3.0f);
}

TEST(Approximable, ApproxVariantDoesLessWork) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  SimulatorScope Scope(Sim);
  FloatSet<Precision::Approx> ApproxSet(64);
  uint64_t Before = Sim.stats().Ops.total();
  (void)ApproxSet.mean();
  uint64_t ApproxOps = Sim.stats().Ops.total() - Before;

  FloatSet<Precision::Precise> PreciseSet(64);
  Before = Sim.stats().Ops.total();
  (void)PreciseSet.mean();
  uint64_t PreciseOps = Sim.stats().Ops.total() - Before;

  // The paper's point: algorithmic approximation skips work entirely.
  EXPECT_LT(ApproxOps, PreciseOps);
}

TEST(Approximable, InstancePrecisionConstant) {
  EXPECT_EQ(IntPair<Precision::Approx>::InstancePrecision, Precision::Approx);
  EXPECT_EQ(IntPair<Precision::Precise>::InstancePrecision,
            Precision::Precise);
  static_assert(IsApprox<Precision::Approx>);
  static_assert(!IsApprox<Precision::Precise>);
}

TEST(Approximable, ContextArraySelectsArrayKind) {
  static_assert(std::is_same_v<ContextArray<Precision::Approx, float>,
                               ApproxArray<float>>);
  static_assert(std::is_same_v<ContextArray<Precision::Precise, float>,
                               PreciseArray<float>>);
}

TEST(Approximable, DistinctInstantiationsAreUnrelatedTypes) {
  // Precise class types are not subtypes of their approximate
  // counterparts (Section 2.5) — here they are simply different types.
  static_assert(!std::is_convertible_v<IntPair<Precision::Precise>,
                                       IntPair<Precision::Approx>>);
  static_assert(!std::is_convertible_v<IntPair<Precision::Approx>,
                                       IntPair<Precision::Precise>>);
}
