//===- tests/simulator_thread_test.cpp - One-per-thread contract ----------===//
//
// The Simulator is one-per-thread by design (that is exactly what the
// trial runner exploits). These tests pin the enforcement added for the
// parallel harness: a concurrent cross-thread install dies loudly
// instead of corrupting the counters and the fault stream, while the
// legal patterns — nesting on one thread, sequential handoff, distinct
// simulators on distinct threads — keep working.
//
//===----------------------------------------------------------------------===//

#include "runtime/simulator.h"

#include <atomic>
#include <gtest/gtest.h>
#include <thread>

using namespace enerj;

namespace {

FaultConfig testConfig() {
  return FaultConfig::preset(ApproxLevel::Medium);
}

} // namespace

TEST(SimulatorThreadDeathTest, ConcurrentCrossThreadInstallAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Simulator Sim(testConfig());
        std::atomic<bool> Installed{false};
        std::atomic<bool> Release{false};
        std::thread Holder([&] {
          SimulatorScope Scope(Sim);
          Installed.store(true);
          while (!Release.load())
            std::this_thread::yield();
        });
        while (!Installed.load())
          std::this_thread::yield();
        // Still installed on Holder's thread: this install must die.
        SimulatorScope Second(Sim);
        Release.store(true);
        Holder.join();
      },
      "one-per-thread");
}

TEST(SimulatorThread, NestedScopesOnOneThreadAreFine) {
  Simulator Sim(testConfig());
  {
    SimulatorScope Outer(Sim);
    EXPECT_EQ(Simulator::current(), &Sim);
    {
      SimulatorScope Inner(Sim);
      EXPECT_EQ(Simulator::current(), &Sim);
      Sim.countPreciseInt();
    }
    EXPECT_EQ(Simulator::current(), &Sim);
    Sim.countPreciseInt();
  }
  EXPECT_EQ(Simulator::current(), nullptr);
  EXPECT_EQ(Sim.stats().Ops.PreciseInt, 2u);
}

TEST(SimulatorThread, SequentialHandoffIsAllowed) {
  Simulator Sim(testConfig());
  {
    SimulatorScope Scope(Sim);
    Sim.countPreciseFp();
  }
  // The join below synchronizes the handoff; the uninstalled simulator
  // may legally move to another thread.
  std::thread Other([&] {
    SimulatorScope Scope(Sim);
    Sim.countPreciseFp();
  });
  Other.join();
  EXPECT_EQ(Sim.stats().Ops.PreciseFp, 2u);
}

TEST(SimulatorThread, DistinctSimulatorsOnDistinctThreads) {
  // The trial-runner pattern: each worker owns its own simulator; all
  // install concurrently without complaint and without cross-talk.
  constexpr int Workers = 4;
  constexpr int OpsPerWorker = 1000;
  std::vector<std::thread> Pool;
  std::vector<uint64_t> Counts(Workers);
  for (int W = 0; W < Workers; ++W)
    Pool.emplace_back([W, &Counts] {
      Simulator Sim(testConfig());
      SimulatorScope Scope(Sim);
      for (int I = 0; I < OpsPerWorker; ++I)
        Sim.countPreciseInt();
      Counts[W] = Sim.stats().Ops.PreciseInt;
    });
  for (std::thread &T : Pool)
    T.join();
  for (int W = 0; W < Workers; ++W)
    EXPECT_EQ(Counts[W], static_cast<uint64_t>(OpsPerWorker));
}
