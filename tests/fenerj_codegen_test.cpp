//===- tests/fenerj_codegen_test.cpp - FEnerJ -> ISA compiler tests -------===//
//
// The full pipeline of the paper, differentially tested: every corpus
// program is (1) type-checked, (2) evaluated by the FEnerJ interpreter,
// (3) compiled to the approximate ISA, where the output must pass the
// ISA Verifier — the compiler maps approximate variables to approximate
// storage/instructions *and* preserves the discipline — and (4) executed
// on a fault-free Machine, whose r1/f1 result must equal the
// interpreter's.
//
//===----------------------------------------------------------------------===//

#include "fenerj/codegen.h"

#include "energy/model.h"
#include "fenerj/fenerj.h"
#include "isa/assembler.h"
#include "isa/machine.h"
#include "isa/verifier.h"

#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::fenerj;

namespace {

struct Pipeline {
  Value Interpreted;
  isa::IsaProgram Binary;
  std::string Assembly;
};

Pipeline compileAndRun(std::string_view Source) {
  Pipeline Out;
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  if (!Prog)
    return Out;

  Interpreter Interp(*Prog, Table, {});
  EvalResult Result = Interp.run();
  EXPECT_FALSE(Result.Trapped) << Result.TrapMessage;
  Out.Interpreted = Result.Result;

  CodegenResult Code = compileToIsa(*Prog);
  EXPECT_TRUE(Code.Ok) << Code.Error;
  if (!Code.Ok)
    return Out;
  Out.Assembly = Code.Assembly;

  std::vector<std::string> AsmErrors;
  std::optional<isa::IsaProgram> Binary =
      isa::assemble(Code.Assembly, AsmErrors);
  EXPECT_TRUE(Binary.has_value());
  for (const std::string &E : AsmErrors)
    ADD_FAILURE() << E << "\n--- assembly ---\n" << Code.Assembly;
  if (!Binary)
    return Out;

  // The compiler must emit discipline-clean code.
  for (const isa::VerifyError &E : isa::verify(*Binary))
    ADD_FAILURE() << E.str() << "\n--- assembly ---\n" << Code.Assembly;

  Out.Binary = std::move(*Binary);
  return Out;
}

/// Runs the compiled binary precisely and checks the int result.
void expectCompiledInt(std::string_view Source, int64_t Expected) {
  Pipeline P = compileAndRun(Source);
  ASSERT_EQ(P.Interpreted.K, Value::Kind::Int);
  EXPECT_EQ(P.Interpreted.I, Expected) << "interpreter disagrees";
  isa::Machine M(P.Binary, FaultConfig::preset(ApproxLevel::None));
  isa::MachineResult Result = M.run();
  ASSERT_FALSE(Result.Trapped)
      << Result.TrapMessage << "\n--- assembly ---\n" << P.Assembly;
  EXPECT_EQ(M.intReg(1), Expected) << "--- assembly ---\n" << P.Assembly;
}

void expectCompiledFloat(std::string_view Source, double Expected) {
  Pipeline P = compileAndRun(Source);
  ASSERT_EQ(P.Interpreted.K, Value::Kind::Float);
  EXPECT_DOUBLE_EQ(P.Interpreted.F, Expected);
  isa::Machine M(P.Binary, FaultConfig::preset(ApproxLevel::None));
  isa::MachineResult Result = M.run();
  ASSERT_FALSE(Result.Trapped)
      << Result.TrapMessage << "\n--- assembly ---\n" << P.Assembly;
  EXPECT_DOUBLE_EQ(M.fpReg(1), Expected)
      << "--- assembly ---\n" << P.Assembly;
}

void expectUnsupported(std::string_view Source, const char *Fragment) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.str();
  CodegenResult Code = compileToIsa(*Prog);
  EXPECT_FALSE(Code.Ok);
  EXPECT_NE(Code.Error.find(Fragment), std::string::npos) << Code.Error;
}

} // namespace

TEST(FenerjCodegen, Arithmetic) {
  expectCompiledInt("1 + 2 * 3", 7);
  expectCompiledInt("(10 - 4) / 2", 3);
  expectCompiledInt("17 % 5", 2);
  expectCompiledInt("-7 + 2", -5);
  expectCompiledFloat("1.5 * 2.0 + 0.25", 3.25);
  expectCompiledFloat("7.0 / 2.0", 3.5);
  expectCompiledFloat("-1.5 - 0.5", -2.0);
}

TEST(FenerjCodegen, LocalsAndAssignment) {
  expectCompiledInt("{ let int x = 5; x = x + 1; x * 2; }", 12);
  expectCompiledFloat("{ let float f = 0.5; let float g = f + f; g; }",
                      1.0);
}

TEST(FenerjCodegen, Casts) {
  expectCompiledFloat("cast<float>(3)", 3.0);
  expectCompiledInt("cast<int>(3.9)", 3);
}

TEST(FenerjCodegen, ControlFlow) {
  expectCompiledInt("if (1 < 2) { 10; } else { 20; }", 10);
  expectCompiledInt("if (2 < 1) { 10; } else { 20; }", 20);
  expectCompiledInt("if (1 < 2 && 3 < 2) { 1; } else { 0; }", 0);
  expectCompiledInt("if (1 < 2 || 3 < 2) { 1; } else { 0; }", 1);
  expectCompiledInt("if (!(1 == 2)) { 1; } else { 0; }", 1);
  expectCompiledInt(R"({
    let int i = 0;
    let int sum = 0;
    while (i < 10) { sum = sum + i; i = i + 1; };
    sum;
  })",
                    45);
}

TEST(FenerjCodegen, NestedIfInExpression) {
  expectCompiledInt("1 + if (true) { 10; } else { 20; } + 100", 111);
  expectCompiledInt(R"({
    let int a = if (1 < 2) { if (2 < 3) { 1; } else { 2; } } else { 3; };
    a;
  })",
                    1);
}

TEST(FenerjCodegen, Arrays) {
  expectCompiledInt(R"({
    let int[] a = new int[8];
    let int i = 0;
    while (i < a.length) { a[i] := i * i; i = i + 1; };
    a[0] + a[3] + a[7];
  })",
                    0 + 9 + 49);
}

TEST(FenerjCodegen, ApproxDataCompilesToApproxInstructions) {
  const char *Source = R"({
    let @approx float[] v = new @approx float[16];
    let int i = 0;
    while (i < v.length) {
      v[i] := cast<@approx float>(i) * 0.5;
      i = i + 1;
    };
    let @approx float sum = 0.0;
    i = 0;
    while (i < v.length) { sum = sum + v[i]; i = i + 1; };
    endorse(sum);
  })";
  // Semantics first (fault-free): sum of 0.5*i for i in 0..15 = 60.
  expectCompiledFloat(Source, 60.0);

  // The annotations reached the hardware: approximate FP instructions,
  // approximate DRAM, and measurable energy savings.
  Pipeline P = compileAndRun(Source);
  FaultConfig Medium = FaultConfig::preset(ApproxLevel::Medium);
  isa::Machine M(P.Binary, Medium);
  ASSERT_FALSE(M.run().Trapped);
  RunStats Stats = M.stats();
  EXPECT_GT(Stats.Ops.ApproxFp, 16u);
  EXPECT_GT(Stats.Storage.dramApproxFraction(), 0.0);
  EXPECT_GT(computeEnergy(Stats, Medium).saved(), 0.0);
  // And the assembly really contains `.a` forms and approximate stores.
  EXPECT_NE(P.Assembly.find("fadd.a"), std::string::npos);
  EXPECT_NE(P.Assembly.find("fsw.a"), std::string::npos);
  EXPECT_NE(P.Assembly.find("fendorse"), std::string::npos);
}

TEST(FenerjCodegen, EndorsedConditions) {
  expectCompiledInt(R"({
    let @approx int v = 5;
    if (endorse(v == 5)) { 1; } else { 0; };
  })",
                    1);
  expectCompiledInt(R"({
    let @approx int v = 3;
    let int count = 0;
    while (endorse(v > 0)) { count = count + 1; v = v - 1; };
    count;
  })",
                    3);
}

TEST(FenerjCodegen, PreciseAndApproxCoexist) {
  // The paper's pattern: approximate accumulation, precise control,
  // endorsed boundary — all visible in one binary.
  expectCompiledInt(R"({
    let @approx int acc = 0;
    let int i = 0;
    while (i < 20) { acc = acc + i; i = i + 1; };
    let int out = endorse(acc);
    out;
  })",
                    190);
}

TEST(FenerjCodegen, FaultFreeMachineMatchesInterpreterOnKernels) {
  // A small SOR-style smoothing kernel, checked end to end.
  const char *Kernel = R"({
    let @approx float[] g = new @approx float[32];
    let int i = 0;
    while (i < g.length) { g[i] := cast<@approx float>(i % 7); i = i + 1; };
    let int sweep = 0;
    while (sweep < 3) {
      i = 1;
      while (i < g.length - 1) {
        g[i] := (g[i - 1] + g[i] + g[i + 1]) / 3.0;
        i = i + 1;
      };
      sweep = sweep + 1;
    };
    let @approx float total = 0.0;
    i = 0;
    while (i < g.length) { total = total + g[i]; i = i + 1; };
    endorse(total);
  })";
  Pipeline P = compileAndRun(Kernel);
  ASSERT_EQ(P.Interpreted.K, Value::Kind::Float);
  isa::Machine M(P.Binary, FaultConfig::preset(ApproxLevel::None));
  isa::MachineResult Result = M.run();
  ASSERT_FALSE(Result.Trapped) << Result.TrapMessage;
  EXPECT_NEAR(M.fpReg(1), P.Interpreted.F, 1e-9);
}

TEST(FenerjCodegen, GeneratedBinaryDegradesGracefully) {
  const char *Kernel = R"({
    let @approx float acc = 0.0;
    let int i = 0;
    while (i < 200) { acc = acc + 0.5; i = i + 1; };
    endorse(acc);
  })";
  Pipeline P = compileAndRun(Kernel);
  // Precise machine: exact.
  isa::Machine None(P.Binary, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(None.run().Trapped);
  EXPECT_DOUBLE_EQ(None.fpReg(1), 100.0);
  // Aggressive machine: still completes (never crashes), possibly wrong.
  isa::Machine Aggr(P.Binary, FaultConfig::preset(ApproxLevel::Aggressive));
  ASSERT_FALSE(Aggr.run().Trapped);
}

TEST(FenerjCodegen, UnsupportedConstructsReportErrors) {
  expectUnsupported("class C { int f; } { 0; }", "class-free");
  expectUnsupported("{ let int n = 4; let int[] a = new int[n]; 0; }",
                    "integer literals");
  // Materializing an approximate FP comparison would require a
  // compiler-inserted endorsement; refused by design.
  expectUnsupported(R"({
    let @approx float x = 1.0;
    let @approx bool b = x < 2.0;
    0;
  })",
                    "approximate floating-point comparisons");
}

TEST(FenerjCodegen, BooleanValues) {
  // Booleans are first-class values (0/1 integer words), matching the
  // interpreter through the set/logic instructions.
  expectCompiledInt(R"({
    let bool t = 1 < 2;
    let bool f = 2.5 < 1.5;
    let bool mix = t && !f || false;
    if (mix) { 7; } else { 8; };
  })",
                    7);
  expectCompiledInt(R"({
    let bool flag = false;
    let int i = 0;
    while (i < 10) { flag = !flag; i = i + 1; };
    if (flag) { 1; } else { 0; };
  })",
                    0);
}

TEST(FenerjCodegen, ApproxBooleanDataPath) {
  // Approximate integer comparisons as *values* stay on the approximate
  // unit (set-instruction data path); endorsing the stored flag later is
  // the only gate back.
  const char *Source = R"({
    let @approx int x = 5;
    let @approx bool near = x > 3;
    let @approx bool sure = near && x < 9;
    if (endorse(sure)) { 1; } else { 0; };
  })";
  expectCompiledInt(Source, 1);
  Pipeline P = compileAndRun(Source);
  EXPECT_NE(P.Assembly.find("slt.a"), std::string::npos);
  EXPECT_NE(P.Assembly.find("and.a"), std::string::npos);
}

TEST(FenerjCodegen, FloatConditions) {
  expectCompiledInt("if (1.5 < 2.5) { 1; } else { 0; }", 1);
  expectCompiledInt("if (2.5 <= 1.5) { 1; } else { 0; }", 0);
  expectCompiledInt("if (1.5 == 1.5) { 1; } else { 0; }", 1);
  expectCompiledInt("if (1.5 != 1.5) { 1; } else { 0; }", 0);
  expectCompiledInt("if (3.5 > 2.5 && 2.5 >= 2.5) { 1; } else { 0; }", 1);
  // Endorsed approximate FP comparisons endorse their operands and
  // branch precisely.
  expectCompiledInt(R"({
    let @approx float x = 1.5;
    if (endorse(x < 2.0)) { 1; } else { 0; };
  })",
                    1);
  // NaN semantics match the interpreter: comparisons with NaN are false.
  expectCompiledInt(R"({
    let @approx float nan = 0.0;
    nan = 1.0 / 0.0 - 1.0 / 0.0;  // inf - inf = NaN, approximately
    if (endorse(nan < 1.0) || endorse(nan >= 1.0)) { 1; } else { 0; };
  })",
                    0);
  // A float-controlled loop.
  expectCompiledInt(R"({
    let float t = 0.0;
    let int steps = 0;
    while (t < 1.0) { t = t + 0.25; steps = steps + 1; };
    steps;
  })",
                    4);
}

TEST(FenerjCodegen, DeterministicOutput) {
  const char *Source = "{ let int x = 1; x + 2; }";
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  ASSERT_TRUE(Prog.has_value());
  EXPECT_EQ(compileToIsa(*Prog).Assembly, compileToIsa(*Prog).Assembly);
}

namespace {

class CodegenDifferential : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(CodegenDifferential, CompiledBinaryMatchesInterpreter) {
  // Random class-free, bool-free, endorse-free programs: compile, verify,
  // and execute fault-free; r1 must equal the interpreter's (precise int)
  // result. A disagreement is a miscompile; a verifier hit is a
  // discipline leak.
  GeneratorOptions Options;
  Options.Seed = GetParam();
  Options.NumClasses = 0;
  // Bools are now first-class in the code generator; only approximate
  // *float* comparisons as values remain out of the subset, which the
  // generator never produces (its comparisons inherit their operands'
  // qualifiers only in integer contexts... it can, so keep bools on and
  // skip the rare unsupported programs below).
  Options.AllowBools = true;
  std::string Source = generateProgram(Options);

  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  ASSERT_TRUE(Prog.has_value())
      << Diags.str() << "\n--- source ---\n" << Source;

  Interpreter Interp(*Prog, Table, {});
  EvalResult Reference = Interp.run();
  ASSERT_FALSE(Reference.Trapped) << Reference.TrapMessage;
  ASSERT_EQ(Reference.Result.K, Value::Kind::Int);
  // (The generator's main expression always has precise int type.)

  CodegenResult Code = compileToIsa(*Prog);
  if (!Code.Ok &&
      Code.Error.find("approximate floating-point comparisons") !=
          std::string::npos)
    GTEST_SKIP() << "generator hit the documented FP-comparison gap";
  ASSERT_TRUE(Code.Ok) << Code.Error << "\n--- source ---\n" << Source;
  std::vector<std::string> AsmErrors;
  std::optional<isa::IsaProgram> Binary =
      isa::assemble(Code.Assembly, AsmErrors);
  ASSERT_TRUE(Binary.has_value())
      << (AsmErrors.empty() ? "" : AsmErrors[0]) << "\n--- assembly ---\n"
      << Code.Assembly;
  std::vector<isa::VerifyError> Violations = isa::verify(*Binary);
  for (const isa::VerifyError &E : Violations)
    ADD_FAILURE() << E.str() << "\n--- assembly ---\n" << Code.Assembly;

  isa::Machine M(*Binary, FaultConfig::preset(ApproxLevel::None));
  isa::MachineResult Result = M.run(50'000'000);
  ASSERT_FALSE(Result.Trapped)
      << Result.TrapMessage << "\n--- source ---\n" << Source
      << "\n--- assembly ---\n" << Code.Assembly;
  EXPECT_EQ(M.intReg(1), Reference.Result.I)
      << "--- source ---\n" << Source << "\n--- assembly ---\n"
      << Code.Assembly;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenDifferential,
                         ::testing::Range<uint64_t>(500, 590));
