//===- tests/analysis_cfg_test.cpp - CFG + dataflow engine tests ----------===//

#include "analysis/dataflow.h"
#include "analysis/fenerj_cfg.h"
#include "analysis/isa_cfg.h"
#include "fenerj/fenerj.h"
#include "isa/assembler.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace enerj;
using namespace enerj::analysis;

namespace {

isa::IsaProgram assembleOk(std::string_view Source) {
  std::vector<std::string> Errors;
  std::optional<isa::IsaProgram> Program = isa::assemble(Source, Errors);
  EXPECT_TRUE(Program.has_value());
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  return Program ? std::move(*Program) : isa::IsaProgram{};
}

fenerj::Program compileOk(std::string_view Source) {
  fenerj::DiagnosticEngine Diags;
  fenerj::ClassTable Table;
  std::optional<fenerj::Program> Prog =
      fenerj::compile(Source, Table, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  return Prog ? std::move(*Prog) : fenerj::Program{};
}

} // namespace

// --- BitVec. ---

TEST(BitVec, SetTestClearAcrossWordBoundary) {
  BitVec Bits(130);
  EXPECT_FALSE(Bits.test(0));
  Bits.set(0);
  Bits.set(63);
  Bits.set(64);
  Bits.set(129);
  EXPECT_TRUE(Bits.test(0));
  EXPECT_TRUE(Bits.test(63));
  EXPECT_TRUE(Bits.test(64));
  EXPECT_TRUE(Bits.test(129));
  EXPECT_FALSE(Bits.test(65));
  Bits.clear(64);
  EXPECT_FALSE(Bits.test(64));
}

TEST(BitVec, UniteReportsChange) {
  BitVec A(10), B(10);
  B.set(3);
  EXPECT_TRUE(A.uniteWith(B));
  EXPECT_FALSE(A.uniteWith(B)); // Already a superset.
  EXPECT_TRUE(A.test(3));
  EXPECT_TRUE(A == A);
}

TEST(BitVec, SetAllRespectsSize) {
  BitVec Bits(70);
  Bits.setAll();
  EXPECT_TRUE(Bits.test(0));
  EXPECT_TRUE(Bits.test(69));
  BitVec Copy(70);
  for (unsigned I = 0; I < 70; ++I)
    Copy.set(I);
  EXPECT_TRUE(Bits == Copy); // No stray bits past the end.
}

// --- The generic engine on a hand-built graph. ---

namespace {

struct HandGraph {
  std::vector<std::vector<unsigned>> S, P;
  unsigned blockCount() const { return static_cast<unsigned>(S.size()); }
  const std::vector<unsigned> &succs(unsigned B) const { return S[B]; }
  const std::vector<unsigned> &preds(unsigned B) const { return P[B]; }
};

HandGraph diamondWithLoop() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 1 (back edge), 3 -> 4.
  HandGraph G;
  G.S = {{1, 2}, {3}, {3}, {1, 4}, {}};
  G.P = {{}, {0, 3}, {0}, {1, 2}, {3}};
  return G;
}

/// Forward "which blocks can have executed before entry": each block
/// generates its own bit.
struct ReachingBlocksDomain {
  using Value = BitVec;
  unsigned N;
  Value init() const { return BitVec(N); }
  Value boundary() const { return BitVec(N); }
  bool join(Value &Into, const Value &From) const {
    return Into.uniteWith(From);
  }
  Value transfer(unsigned Block, const Value &In) const {
    BitVec Out = In;
    Out.set(Block);
    return Out;
  }
};

} // namespace

TEST(DataflowEngine, ForwardFixpointWithBackEdge) {
  HandGraph G = diamondWithLoop();
  ReachingBlocksDomain Dom{G.blockCount()};
  DataflowResult<ReachingBlocksDomain> R =
      solveDataflow(G, Direction::Forward, Dom);
  // Block 1 is reachable from 0 directly and around the loop through 3,
  // so 2 and 3 must have flowed into its entry set.
  EXPECT_TRUE(R.In[1].test(0));
  EXPECT_TRUE(R.In[1].test(3));
  EXPECT_TRUE(R.In[1].test(2));
  EXPECT_FALSE(R.In[1].test(4));
  // The exit has seen everything except itself.
  for (unsigned B = 0; B < 4; ++B)
    EXPECT_TRUE(R.In[4].test(B)) << B;
  EXPECT_FALSE(R.In[4].test(4));
}

TEST(DataflowEngine, BackwardMirrorsForward) {
  HandGraph G = diamondWithLoop();
  ReachingBlocksDomain Dom{G.blockCount()};
  DataflowResult<ReachingBlocksDomain> R =
      solveDataflow(G, Direction::Backward, Dom);
  // Backward: Out[B] collects blocks on paths from B to the exit.
  EXPECT_TRUE(R.Out[0].test(1));
  EXPECT_TRUE(R.Out[0].test(2));
  EXPECT_TRUE(R.Out[0].test(3));
  EXPECT_TRUE(R.Out[0].test(4));
  EXPECT_FALSE(R.Out[4].test(3)); // Nothing follows the exit.
}

// --- ISA CFG construction. ---

TEST(IsaCfg, StraightLineIsOneBlock) {
  isa::IsaProgram P = assembleOk("li r1, 1\nadd r2, r1, r1\nhalt\n");
  IsaCfg Cfg(P);
  ASSERT_EQ(Cfg.blockCount(), 1u);
  EXPECT_EQ(Cfg.block(0).Begin, 0u);
  EXPECT_EQ(Cfg.block(0).End, 3u);
  EXPECT_TRUE(Cfg.succs(0).empty());
}

TEST(IsaCfg, BranchMakesDiamond) {
  isa::IsaProgram P = assembleOk(R"(
    li r1, 1
    beq r1, r0, other
    li r2, 2
    jmp end
    other:
    li r2, 3
    end:
    halt
  )");
  IsaCfg Cfg(P);
  // Blocks: [li,beq] [li,jmp] [li] [halt].
  ASSERT_EQ(Cfg.blockCount(), 4u);
  EXPECT_EQ(Cfg.succs(0).size(), 2u);
  EXPECT_EQ(Cfg.succs(1).size(), 1u);
  EXPECT_EQ(Cfg.succs(2).size(), 1u);
  EXPECT_TRUE(Cfg.succs(3).empty());
  EXPECT_EQ(Cfg.preds(3).size(), 2u);
  // Every instruction maps back into its block.
  for (size_t I = 0; I < P.Instructions.size(); ++I) {
    unsigned B = Cfg.blockContaining(I);
    EXPECT_GE(I, Cfg.block(B).Begin);
    EXPECT_LT(I, Cfg.block(B).End);
  }
}

TEST(IsaCfg, LoopHasBackEdge) {
  isa::IsaProgram P = assembleOk(R"(
    li r1, 0
    loop:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
  )");
  IsaCfg Cfg(P);
  ASSERT_EQ(Cfg.blockCount(), 3u);
  const std::vector<unsigned> &LoopSuccs = Cfg.succs(1);
  EXPECT_NE(std::find(LoopSuccs.begin(), LoopSuccs.end(), 1u),
            LoopSuccs.end())
      << "back edge missing";
}

TEST(IsaCfg, BranchToOnePastEndIsAnExit) {
  // A transfer to Instructions.size() is the clean halt: no edge.
  isa::IsaProgram P = assembleOk("li r1, 1\njmp end\nend:\n");
  IsaCfg Cfg(P);
  ASSERT_EQ(Cfg.blockCount(), 1u);
  EXPECT_TRUE(Cfg.succs(0).empty());
}

TEST(IsaCfg, ReachabilityFindsDeadBlocks) {
  isa::IsaProgram P = assembleOk(R"(
    jmp end
    li r1, 1
    end:
    halt
  )");
  IsaCfg Cfg(P);
  std::vector<bool> Reachable = Cfg.reachableBlocks();
  ASSERT_EQ(Reachable.size(), Cfg.blockCount());
  EXPECT_TRUE(Reachable[Cfg.blockContaining(0)]);
  EXPECT_FALSE(Reachable[Cfg.blockContaining(1)]);
  EXPECT_TRUE(Reachable[Cfg.blockContaining(2)]);
}

TEST(IsaCfg, EmptyProgram) {
  isa::IsaProgram P;
  IsaCfg Cfg(P);
  EXPECT_EQ(Cfg.blockCount(), 0u);
  EXPECT_TRUE(Cfg.reachableBlocks().empty());
}

// --- FEnerJ CFG construction. ---

TEST(FenerjCfg, StraightLineIsOneBlock) {
  fenerj::Program Prog = compileOk("{ let int x = 1; x + 1; }");
  FenerjCfg Cfg = FenerjCfg::build(*Prog.Main, nullptr);
  ASSERT_EQ(Cfg.blockCount(), 1u);
  ASSERT_EQ(Cfg.vars().size(), 1u);
  EXPECT_EQ(Cfg.vars()[0].Name, "x");
  // Events: Def(x), Use(x).
  unsigned Defs = 0, Uses = 0;
  for (const FjEvent &E : Cfg.block(0).Events) {
    Defs += E.K == FjEvent::Kind::Def;
    Uses += E.K == FjEvent::Kind::Use;
  }
  EXPECT_EQ(Defs, 1u);
  EXPECT_EQ(Uses, 1u);
}

TEST(FenerjCfg, IfMakesDiamond) {
  fenerj::Program Prog =
      compileOk("{ let int x = 1; if (x < 2) { 1; } else { 2; }; x; }");
  FenerjCfg Cfg = FenerjCfg::build(*Prog.Main, nullptr);
  // Entry, then, else, merge.
  ASSERT_EQ(Cfg.blockCount(), 4u);
  EXPECT_EQ(Cfg.succs(0).size(), 2u);
  EXPECT_EQ(Cfg.preds(3).size(), 2u);
}

TEST(FenerjCfg, WhileMakesLoop) {
  fenerj::Program Prog =
      compileOk("{ let int i = 0; while (i < 3) { i = i + 1; }; i; }");
  FenerjCfg Cfg = FenerjCfg::build(*Prog.Main, nullptr);
  // Entry, cond, body, exit; body loops back to cond.
  ASSERT_EQ(Cfg.blockCount(), 4u);
  const std::vector<unsigned> &BodySuccs = Cfg.succs(2);
  ASSERT_EQ(BodySuccs.size(), 1u);
  EXPECT_EQ(BodySuccs[0], 1u);
  EXPECT_EQ(Cfg.preds(1).size(), 2u); // Entry + back edge.
}

TEST(FenerjCfg, ShadowedNamesAreDistinctVariables) {
  fenerj::Program Prog =
      compileOk("{ let int x = 1; { let int x = 2; x; }; x; }");
  FenerjCfg Cfg = FenerjCfg::build(*Prog.Main, nullptr);
  ASSERT_EQ(Cfg.vars().size(), 2u);
  EXPECT_EQ(Cfg.vars()[0].Name, "x");
  EXPECT_EQ(Cfg.vars()[1].Name, "x");
  // Each Use resolves to its innermost binding.
  std::vector<unsigned> UsedVars;
  for (const FjEvent &E : Cfg.block(0).Events)
    if (E.K == FjEvent::Kind::Use)
      UsedVars.push_back(E.Var);
  ASSERT_EQ(UsedVars.size(), 2u);
  EXPECT_EQ(UsedVars[0], 1u); // Inner x first.
  EXPECT_EQ(UsedVars[1], 0u);
}

TEST(FenerjCfg, ParamsDefineInEntryBlock) {
  fenerj::Program Prog = compileOk(R"(
    class C {
      int m(int a, @approx int b) { a + 1; }
    }
    { let @precise C c = new @precise C(); c.m(1, 2); }
  )");
  ASSERT_EQ(Prog.Classes.size(), 1u);
  const fenerj::MethodDecl &M = Prog.Classes[0].Methods[0];
  FenerjCfg Cfg = FenerjCfg::build(*M.Body, &M.Params);
  ASSERT_EQ(Cfg.vars().size(), 2u);
  EXPECT_TRUE(Cfg.vars()[0].IsParam);
  EXPECT_EQ(Cfg.vars()[1].Name, "b");
  const std::vector<FjEvent> &Entry = Cfg.block(0).Events;
  ASSERT_GE(Entry.size(), 2u);
  EXPECT_EQ(Entry[0].K, FjEvent::Kind::Def);
  EXPECT_EQ(Entry[1].K, FjEvent::Kind::Def);
}

TEST(FenerjCfg, EndorseEmitsEvent) {
  fenerj::Program Prog =
      compileOk("{ let @approx int x = 1; endorse(x); }");
  FenerjCfg Cfg = FenerjCfg::build(*Prog.Main, nullptr);
  bool SawEndorse = false;
  for (const FjEvent &E : Cfg.block(0).Events)
    SawEndorse |= E.K == FjEvent::Kind::Endorse;
  EXPECT_TRUE(SawEndorse);
}
