//===- tests/power_env_test.cpp - Power environment unit contract ---------===//
//
// The src/env layer's contract, pinned piece by piece:
//
//  * trace spec parsing — every preset shape ("steady", "steady:<rate>",
//    "brownout[:<high>:<low>]", "harvest[:<seed>]") and the trace file
//    format (comments, blank lines, tail persistence), with every
//    malformed input rejected with the exact diagnostic the CLI
//    surfaces;
//  * the PowerTrace cursor — a pure function of its spec: two cursors
//    over the same harvest spec replay the identical window sequence
//    (the thread-count-determinism contract rests on this);
//  * checkpoint policy parsing — none / periodic:<N> / preregion;
//  * the PowerMeter — an adequate steady supply never loses power and
//    charges exactly the live energy (overheadRatio == 1, which is why
//    "steady + no checkpoints" is byte-identical to the no-trace path);
//    a brownout supply loses power, replays honestly, and checkpointing
//    strictly reduces the re-executed work; a dead supply exhausts the
//    off-tick cap and fails the attempt; the forecast agrees with the
//    arithmetic of (mean rate vs mean op cost).
//
//===----------------------------------------------------------------------===//

#include "env/power.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <string>

using namespace enerj;
using namespace enerj::env;

namespace {

/// Writes \p Contents to a fresh temp file and returns its path.
std::string writeTrace(const std::string &Contents) {
  static int Counter = 0;
  std::string Path = ::testing::TempDir() + "power_env_test_" +
                     std::to_string(Counter++) + ".trace";
  std::ofstream Out(Path);
  Out << Contents;
  return Path;
}

FaultConfig configFor(ApproxLevel Level) {
  return FaultConfig::preset(Level);
}

/// Drives \p Ops operations of class \p C through a fresh meter.
PowerStats drive(const PowerEnv &Env, const FaultConfig &Config,
                 PowerOpClass C, uint64_t Ops) {
  PowerMeter Meter(Env, Config);
  for (uint64_t I = 0; I < Ops; ++I)
    Meter.onOp(C);
  return Meter.stats();
}

} // namespace

//===----------------------------------------------------------------------===//
// Preset parsing
//===----------------------------------------------------------------------===//

TEST(PowerTraceSpec, SteadyPresetDefaultsAndKnob) {
  std::string Error;
  auto Spec = PowerTraceSpec::preset("steady", &Error);
  ASSERT_TRUE(Spec) << Error;
  EXPECT_EQ(Spec->Kind, TraceKind::Steady);
  EXPECT_EQ(Spec->Name, "steady");
  EXPECT_EQ(Spec->Rate, 48.0);

  auto Custom = PowerTraceSpec::preset("steady:12.5", &Error);
  ASSERT_TRUE(Custom) << Error;
  EXPECT_EQ(Custom->Rate, 12.5);
  EXPECT_EQ(Custom->Name, "steady:12.5");
}

TEST(PowerTraceSpec, BrownoutPresetDefaultsAndKnobs) {
  std::string Error;
  auto Spec = PowerTraceSpec::preset("brownout", &Error);
  ASSERT_TRUE(Spec) << Error;
  EXPECT_EQ(Spec->Kind, TraceKind::Brownout);
  EXPECT_EQ(Spec->HighRate, 48.0);
  EXPECT_EQ(Spec->LowRate, 8.0);

  auto Custom = PowerTraceSpec::preset("brownout:30:5", &Error);
  ASSERT_TRUE(Custom) << Error;
  EXPECT_EQ(Custom->HighRate, 30.0);
  EXPECT_EQ(Custom->LowRate, 5.0);
}

TEST(PowerTraceSpec, HarvestPresetDefaultsAndSeedKnob) {
  std::string Error;
  auto Spec = PowerTraceSpec::preset("harvest", &Error);
  ASSERT_TRUE(Spec) << Error;
  EXPECT_EQ(Spec->Kind, TraceKind::Harvest);
  EXPECT_EQ(Spec->Seed, 0x0EA7F00DULL);

  auto Seeded = PowerTraceSpec::preset("harvest:99", &Error);
  ASSERT_TRUE(Seeded) << Error;
  EXPECT_EQ(Seeded->Seed, 99u);
}

TEST(PowerTraceSpec, RejectsMalformedPresets) {
  std::string Error;
  EXPECT_FALSE(PowerTraceSpec::preset("nosuchpreset", &Error));
  EXPECT_NE(Error.find("unknown power trace preset 'nosuchpreset'"),
            std::string::npos);
  EXPECT_NE(Error.find("steady[:<rate>]"), std::string::npos);

  EXPECT_FALSE(PowerTraceSpec::preset("steady:abc", &Error));
  EXPECT_NE(Error.find("malformed steady rate 'abc'"), std::string::npos);
  EXPECT_FALSE(PowerTraceSpec::preset("steady:-1", &Error));
  EXPECT_FALSE(PowerTraceSpec::preset("steady:1:2", &Error));

  EXPECT_FALSE(PowerTraceSpec::preset("brownout:48", &Error));
  EXPECT_NE(Error.find("brownout takes zero or two knobs"),
            std::string::npos);
  EXPECT_FALSE(PowerTraceSpec::preset("brownout:x:8", &Error));
  EXPECT_FALSE(PowerTraceSpec::preset("brownout:48:x", &Error));

  EXPECT_FALSE(PowerTraceSpec::preset("harvest:notaseed", &Error));
  EXPECT_NE(Error.find("malformed harvest seed 'notaseed'"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Trace file parsing
//===----------------------------------------------------------------------===//

TEST(PowerTraceSpec, LoadsFileWithCommentsAndTail) {
  std::string Path = writeTrace("# a comment line\n"
                                "\n"
                                "1000 48.5   # trailing comment\n"
                                "2000 6\n");
  std::string Error;
  auto Spec = PowerTraceSpec::fromFile(Path, &Error);
  ASSERT_TRUE(Spec) << Error;
  EXPECT_EQ(Spec->Kind, TraceKind::File);
  ASSERT_EQ(Spec->Segments.size(), 2u);
  EXPECT_EQ(Spec->Segments[0].Ticks, 1000u);
  EXPECT_EQ(Spec->Segments[0].Rate, 48.5);
  EXPECT_EQ(Spec->Segments[1].Ticks, 2000u);
  EXPECT_EQ(Spec->Segments[1].Rate, 6.0);
  // The last segment's rate persists forever past the file's end.
  EXPECT_EQ(Spec->TailRate, 6.0);
}

TEST(PowerTraceSpec, RejectsBadFiles) {
  std::string Error;
  EXPECT_FALSE(
      PowerTraceSpec::fromFile("/no/such/power_env_test.trace", &Error));
  EXPECT_NE(Error.find("cannot open power trace file"), std::string::npos);

  EXPECT_FALSE(
      PowerTraceSpec::fromFile(writeTrace("# only comments\n"), &Error));
  EXPECT_NE(Error.find("contains no segments"), std::string::npos);

  EXPECT_FALSE(
      PowerTraceSpec::fromFile(writeTrace("bogus 48\n"), &Error));
  EXPECT_NE(Error.find(":1: malformed tick count 'bogus'"),
            std::string::npos);

  EXPECT_FALSE(PowerTraceSpec::fromFile(writeTrace("0 48\n"), &Error));
  EXPECT_FALSE(PowerTraceSpec::fromFile(writeTrace("100 -3\n"), &Error));
  EXPECT_NE(Error.find("malformed rate '-3'"), std::string::npos);

  EXPECT_FALSE(
      PowerTraceSpec::fromFile(writeTrace("100 48 extra\n"), &Error));
  EXPECT_NE(Error.find("expected '<ticks> <rate>'"), std::string::npos);
}

TEST(PowerTraceSpec, CommittedCorpusFilesParse) {
  // The three committed example traces must stay loadable: they are the
  // documented entry point (`--power-trace examples/power/<f>.trace`)
  // and the bench baseline inputs.
  for (const char *Name : {"steady", "brownout", "harvest"}) {
    std::string Path =
        std::string(ENERJ_POWER_DIR) + "/" + Name + ".trace";
    std::string Error;
    auto Spec = PowerTraceSpec::fromFile(Path, &Error);
    ASSERT_TRUE(Spec) << Path << ": " << Error;
    EXPECT_FALSE(Spec->Segments.empty());
  }
}

//===----------------------------------------------------------------------===//
// PowerTrace cursor
//===----------------------------------------------------------------------===//

TEST(PowerTrace, SteadyMeanRateIsTheRate) {
  auto Spec = PowerTraceSpec::preset("steady:10", nullptr);
  ASSERT_TRUE(Spec);
  EXPECT_DOUBLE_EQ(Spec->meanRate(100000), 10.0);
}

TEST(PowerTrace, BrownoutMeanRateIsTheDutyCycleAverage) {
  PowerTraceSpec Spec;
  Spec.Kind = TraceKind::Brownout;
  Spec.HighRate = 40.0;
  Spec.LowRate = 10.0;
  Spec.HighTicks = 3000;
  Spec.LowTicks = 1000;
  // One full period: (3000*40 + 1000*10) / 4000 = 32.5.
  EXPECT_DOUBLE_EQ(Spec.meanRate(4000), 32.5);
}

TEST(PowerTrace, CursorWalksSegmentsInOrder) {
  std::string Path = writeTrace("10 5\n20 7\n");
  auto Spec = PowerTraceSpec::fromFile(Path, nullptr);
  ASSERT_TRUE(Spec);
  PowerTrace Cursor(*Spec);
  EXPECT_EQ(Cursor.rate(), 5.0);
  EXPECT_EQ(Cursor.segmentRemaining(), 10u);
  Cursor.advance(10);
  EXPECT_EQ(Cursor.rate(), 7.0);
  Cursor.advance(20);
  // Past the last segment the tail rate persists.
  EXPECT_EQ(Cursor.rate(), 7.0);
  EXPECT_GT(Cursor.segmentRemaining(), 1000000000u);
}

TEST(PowerTrace, HarvestWindowsArePureFunctionsOfTheSpec) {
  auto Spec = PowerTraceSpec::preset("harvest:7", nullptr);
  ASSERT_TRUE(Spec);
  PowerTrace A(*Spec), B(*Spec);
  for (int Window = 0; Window < 50; ++Window) {
    ASSERT_EQ(A.rate(), B.rate()) << "window " << Window;
    ASSERT_EQ(A.segmentRemaining(), B.segmentRemaining());
    EXPECT_GE(A.segmentRemaining(), Spec->MinWindow);
    EXPECT_LE(A.segmentRemaining(), Spec->MaxWindow);
    EXPECT_GE(A.rate(), 0.0);
    EXPECT_LT(A.rate(), Spec->PeakRate);
    uint64_t Len = A.segmentRemaining();
    A.advance(Len);
    B.advance(Len);
  }
  // A different seed yields a different window sequence.
  auto Other = PowerTraceSpec::preset("harvest:8", nullptr);
  ASSERT_TRUE(Other);
  PowerTrace C(*Other);
  EXPECT_TRUE(PowerTrace(*Spec).rate() != C.rate() ||
              PowerTrace(*Spec).segmentRemaining() != C.segmentRemaining());
}

//===----------------------------------------------------------------------===//
// Checkpoint policy parsing
//===----------------------------------------------------------------------===//

TEST(CheckpointPolicy, ParsesEveryKind) {
  std::string Error;
  auto None = CheckpointPolicy::parse("none", &Error);
  ASSERT_TRUE(None) << Error;
  EXPECT_EQ(None->Kind, CheckpointKind::None);

  auto Periodic = CheckpointPolicy::parse("periodic:5000", &Error);
  ASSERT_TRUE(Periodic) << Error;
  EXPECT_EQ(Periodic->Kind, CheckpointKind::PeriodicOps);
  EXPECT_EQ(Periodic->EveryOps, 5000u);
  EXPECT_EQ(Periodic->Spec, "periodic:5000");

  auto Region = CheckpointPolicy::parse("preregion", &Error);
  ASSERT_TRUE(Region) << Error;
  EXPECT_EQ(Region->Kind, CheckpointKind::PreRegion);
}

TEST(CheckpointPolicy, RejectsMalformedSpecs) {
  std::string Error;
  EXPECT_FALSE(CheckpointPolicy::parse("periodic:0", &Error));
  EXPECT_NE(Error.find("malformed checkpoint interval '0'"),
            std::string::npos);
  EXPECT_FALSE(CheckpointPolicy::parse("periodic:abc", &Error));
  EXPECT_FALSE(CheckpointPolicy::parse("periodic:", &Error));
  EXPECT_FALSE(CheckpointPolicy::parse("sometimes", &Error));
  EXPECT_NE(Error.find("unknown checkpoint policy 'sometimes'"),
            std::string::npos);
  EXPECT_NE(Error.find("periodic:<ops>"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// PowerMeter
//===----------------------------------------------------------------------===//

TEST(PowerMeter, OpCostsFollowTheEnergyModel) {
  EnergyConstants Constants;
  FaultConfig None = configFor(ApproxLevel::None);
  EXPECT_EQ(PowerMeter::opCost(PowerOpClass::PreciseInt, None),
            Constants.IntOpUnits);
  EXPECT_EQ(PowerMeter::opCost(PowerOpClass::PreciseFp, None),
            Constants.FpOpUnits);
  EXPECT_EQ(PowerMeter::opCost(PowerOpClass::Mem, None),
            Constants.FetchDecodeUnits);
  // Approximate ops get cheaper as the level rises — the reason the
  // power-aware ladder escalates *toward* approximation.
  FaultConfig Medium = configFor(ApproxLevel::Medium);
  EXPECT_LT(PowerMeter::opCost(PowerOpClass::ApproxFp, Medium),
            PowerMeter::opCost(PowerOpClass::PreciseFp, Medium));
  EXPECT_LT(PowerMeter::opCost(PowerOpClass::ApproxInt, Medium),
            PowerMeter::opCost(PowerOpClass::PreciseInt, Medium));
}

TEST(PowerMeter, AdequateSteadySupplyNeverLosesAndChargesExactlyLive) {
  // steady:48 covers the costliest op (precise FP, 40): no losses, no
  // off ticks, ChargedUnits == LiveUnits — the arithmetic behind the
  // "steady + no checkpoints == no trace" byte-identity.
  PowerEnv Env;
  Env.Trace = *PowerTraceSpec::preset("steady", nullptr);
  PowerStats S =
      drive(Env, configFor(ApproxLevel::Medium), PowerOpClass::PreciseFp,
            200000);
  EXPECT_EQ(S.Losses, 0u);
  EXPECT_EQ(S.Checkpoints, 0u);
  EXPECT_EQ(S.ReExecutedOps, 0u);
  EXPECT_EQ(S.OffTicks, 0u);
  EXPECT_EQ(S.LiveOps, 200000u);
  EXPECT_TRUE(S.Survived);
  EXPECT_EQ(S.ChargedUnits, S.LiveUnits);
  EXPECT_DOUBLE_EQ(S.overheadRatio(), 1.0);
}

TEST(PowerMeter, FreshMeterOverheadIsOne) {
  // No ops at all: the multiplier must be exactly 1, never 0/0.
  PowerEnv Env;
  PowerMeter Meter(Env, configFor(ApproxLevel::None));
  EXPECT_DOUBLE_EQ(Meter.stats().overheadRatio(), 1.0);
  EXPECT_FALSE(Meter.failed());
}

namespace {

/// A fast square wave whose dead half cannot sustain any op: forces
/// losses well inside a short driven sequence.
PowerEnv brownoutEnv(const CheckpointPolicy &Checkpoint) {
  PowerEnv Env;
  Env.Trace.Kind = TraceKind::Brownout;
  Env.Trace.Name = "test-brownout";
  Env.Trace.HighRate = 48.0;
  Env.Trace.LowRate = 0.0;
  Env.Trace.HighTicks = 2000;
  Env.Trace.LowTicks = 4000;
  Env.Checkpoint = Checkpoint;
  return Env;
}

} // namespace

TEST(PowerMeter, BrownoutLosesPowerAndChargesTheReplay) {
  PowerEnv Env = brownoutEnv(*CheckpointPolicy::parse("none", nullptr));
  PowerStats S =
      drive(Env, configFor(ApproxLevel::Mild), PowerOpClass::PreciseFp,
            100000);
  EXPECT_GT(S.Losses, 0u);
  EXPECT_GT(S.OffTicks, 0u);
  EXPECT_GT(S.ReExecutedOps, 0u);
  // Replay + restore energy makes the environment strictly more
  // expensive than the always-on run.
  EXPECT_GT(S.ChargedUnits, S.LiveUnits);
  EXPECT_GT(S.overheadRatio(), 1.0);
  // With no checkpoints every loss replays from op 0, and this supply's
  // high window can never fit the whole replay: the classic
  // intermittent-computing death spiral, ended by the restart cap.
  EXPECT_FALSE(S.Survived);
}

TEST(PowerMeter, CheckpointingReducesReExecution) {
  // With no checkpoints every loss replays from op 0 (and on this
  // supply eventually death-spirals); with a periodic policy the replay
  // window is bounded by the interval and the run survives. Same
  // supply, same op sequence: strictly less re-executed work.
  FaultConfig Config = configFor(ApproxLevel::Mild);
  PowerStats NoCkpt = drive(brownoutEnv(*CheckpointPolicy::parse("none",
                                                                 nullptr)),
                            Config, PowerOpClass::PreciseFp, 100000);
  PowerStats Ckpt =
      drive(brownoutEnv(*CheckpointPolicy::parse("periodic:500", nullptr)),
            Config, PowerOpClass::PreciseFp, 100000);
  ASSERT_GT(NoCkpt.Losses, 0u);
  ASSERT_GT(Ckpt.Losses, 0u);
  EXPECT_GT(Ckpt.Checkpoints, 0u);
  EXPECT_LT(Ckpt.ReExecutedOps, NoCkpt.ReExecutedOps);
  EXPECT_TRUE(Ckpt.Survived);
  EXPECT_EQ(Ckpt.LiveOps, 100000u);
}

TEST(PowerMeter, PreRegionPolicyCheckpointsOnRegionEntry) {
  PowerEnv Env;
  Env.Trace = *PowerTraceSpec::preset("steady", nullptr);
  Env.Checkpoint = *CheckpointPolicy::parse("preregion", nullptr);
  PowerMeter Meter(Env, configFor(ApproxLevel::None));
  for (int Region = 0; Region < 3; ++Region) {
    Meter.onRegionEnter();
    for (int I = 0; I < 100; ++I)
      Meter.onOp(PowerOpClass::PreciseInt);
  }
  EXPECT_EQ(Meter.stats().Checkpoints, 3u);

  // Region entries are inert under the other policies.
  Env.Checkpoint = *CheckpointPolicy::parse("periodic:1000000", nullptr);
  PowerMeter Periodic(Env, configFor(ApproxLevel::None));
  Periodic.onRegionEnter();
  EXPECT_EQ(Periodic.stats().Checkpoints, 0u);
}

TEST(PowerMeter, DeadSupplyExhaustsTheOffCapAndFails) {
  // steady:0 can never recharge: the first loss sleeps past MaxOffTicks
  // and the attempt is PowerFailed. Once failed, the meter is inert —
  // the physical run continues but nothing more is charged.
  PowerEnv Env;
  Env.Trace = *PowerTraceSpec::preset("steady:0", nullptr);
  PowerMeter Meter(Env, configFor(ApproxLevel::None));
  for (int I = 0; I < 10000 && !Meter.failed(); ++I)
    Meter.onOp(PowerOpClass::PreciseInt);
  EXPECT_TRUE(Meter.failed());
  EXPECT_FALSE(Meter.stats().Survived);
  uint64_t LiveAtFailure = Meter.stats().LiveOps;
  Meter.onOp(PowerOpClass::PreciseInt);
  EXPECT_EQ(Meter.stats().LiveOps, LiveAtFailure);
}

TEST(PowerMeter, EventSinkSeesLossesCheckpointsAndRestores) {
  PowerEnv Env = brownoutEnv(*CheckpointPolicy::parse("periodic:500",
                                                      nullptr));
  PowerMeter Meter(Env, configFor(ApproxLevel::Mild));
  uint64_t Losses = 0, Checkpoints = 0, Restores = 0;
  Meter.Events = [&](PowerEventKind Kind, uint64_t) {
    switch (Kind) {
    case PowerEventKind::Loss:
      ++Losses;
      break;
    case PowerEventKind::Checkpoint:
      ++Checkpoints;
      break;
    case PowerEventKind::Restore:
      ++Restores;
      break;
    }
  };
  for (uint64_t I = 0; I < 100000; ++I)
    Meter.onOp(PowerOpClass::PreciseFp);
  EXPECT_GT(Losses, 0u);
  EXPECT_GT(Checkpoints, 0u);
  EXPECT_GT(Restores, 0u);
  EXPECT_LE(Restores, Losses);
}

TEST(PowerMeter, MeteringIsAPureFunctionOfTheOpSequence) {
  // Two meters over the same environment and sequence: identical stats,
  // field by field. This is the unit of the grid's thread determinism.
  PowerEnv Env = brownoutEnv(*CheckpointPolicy::parse("periodic:700",
                                                      nullptr));
  FaultConfig Config = configFor(ApproxLevel::Medium);
  auto Run = [&] {
    PowerMeter Meter(Env, Config);
    for (uint64_t I = 0; I < 50000; ++I)
      Meter.onOp(static_cast<PowerOpClass>(I % NumPowerOpClasses));
    return Meter.stats();
  };
  PowerStats A = Run(), B = Run();
  EXPECT_EQ(A.Losses, B.Losses);
  EXPECT_EQ(A.Checkpoints, B.Checkpoints);
  EXPECT_EQ(A.ReExecutedOps, B.ReExecutedOps);
  EXPECT_EQ(A.LiveOps, B.LiveOps);
  EXPECT_EQ(A.OffTicks, B.OffTicks);
  EXPECT_EQ(A.LiveUnits, B.LiveUnits);
  EXPECT_EQ(A.ChargedUnits, B.ChargedUnits);
  EXPECT_EQ(A.Survived, B.Survived);
}

TEST(PowerMeter, ForecastMatchesTheRateArithmetic) {
  // An all-precise-FP mix averages 40 units/op: steady:48 sustains it,
  // steady:10 does not; the empty mix is vacuously sustainable.
  std::array<uint64_t, NumPowerOpClasses> FpMix{};
  FpMix[static_cast<unsigned>(PowerOpClass::PreciseFp)] = 1000;
  FaultConfig Config = configFor(ApproxLevel::None);

  PowerEnv Rich;
  Rich.Trace = *PowerTraceSpec::preset("steady:48", nullptr);
  EXPECT_TRUE(PowerMeter::forecastSustainable(Rich, Config, FpMix));

  PowerEnv Poor;
  Poor.Trace = *PowerTraceSpec::preset("steady:10", nullptr);
  EXPECT_FALSE(PowerMeter::forecastSustainable(Poor, Config, FpMix));

  std::array<uint64_t, NumPowerOpClasses> Empty{};
  EXPECT_TRUE(PowerMeter::forecastSustainable(Poor, Config, Empty));

  // The same mix that a poor supply cannot sustain at level None can
  // become sustainable once approximation cheapens the ops — the
  // escalation ladder's premise. ApproxFp at Aggressive is far below
  // 22 units; a 30-unit supply covers it.
  std::array<uint64_t, NumPowerOpClasses> ApproxMix{};
  ApproxMix[static_cast<unsigned>(PowerOpClass::ApproxFp)] = 1000;
  PowerEnv Mid;
  Mid.Trace = *PowerTraceSpec::preset("steady:30", nullptr);
  FaultConfig None = configFor(ApproxLevel::None);
  FaultConfig Aggressive = configFor(ApproxLevel::Aggressive);
  EXPECT_LT(PowerMeter::opCost(PowerOpClass::ApproxFp, Aggressive),
            PowerMeter::opCost(PowerOpClass::ApproxFp, None));
  EXPECT_TRUE(PowerMeter::forecastSustainable(Mid, Aggressive, ApproxMix));
}
