//===- tests/analysis_lint_test.cpp - enerj-lint pass tests ---------------===//

#include "analysis/lint.h"
#include "fenerj/fenerj.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <vector>

using namespace enerj;
using namespace enerj::analysis;

namespace {

LintResult lintSource(std::string_view Source, bool CheckIsa = true) {
  fenerj::DiagnosticEngine Diags;
  fenerj::ClassTable Table;
  std::optional<fenerj::Program> Prog =
      fenerj::compile(Source, Table, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  if (!Prog)
    return {};
  LintOptions Options;
  Options.CheckIsa = CheckIsa;
  return runLint(*Prog, Table, Options);
}

bool hasFinding(const LintResult &R, LintPass Pass, const char *Fragment) {
  for (const LintFinding &F : R.Findings)
    if (F.Pass == Pass && F.Message.find(Fragment) != std::string::npos)
      return true;
  return false;
}

std::string dump(const LintResult &R) { return renderLintText(R, "test"); }

} // namespace

// --- Endorsement audit. ---

TEST(LintEndorsement, RedundantWhenSourceIsPrecise) {
  LintResult R = lintSource(
      "{ let int x = 1; let int y = endorse(x); y; }", /*CheckIsa=*/false);
  EXPECT_TRUE(hasFinding(R, LintPass::Endorsement, "redundant")) << dump(R);
  EXPECT_EQ(R.count(LintPass::Endorsement), 1u) << dump(R);
}

TEST(LintEndorsement, JustifiedEndorseIsSilent) {
  // The endorsed value is the program result, which is observed
  // precisely: the canonical, correct use of endorse.
  LintResult R = lintSource("{ let @approx int x = 1; endorse(x); }",
                            /*CheckIsa=*/false);
  EXPECT_EQ(R.count(LintPass::Endorsement), 0u) << dump(R);
}

TEST(LintEndorsement, DiscardedResult) {
  LintResult R = lintSource("{ let @approx int x = 1; endorse(x); 0; }",
                            /*CheckIsa=*/false);
  EXPECT_TRUE(hasFinding(R, LintPass::Endorsement, "discarded")) << dump(R);
}

TEST(LintEndorsement, ResultNeverReachesAPreciseUse) {
  // g is endorsed but then flows only back into approximate storage.
  LintResult R = lintSource(
      "{ let @approx int a = 1; let int g = endorse(a); a = g + 1; 0; }",
      /*CheckIsa=*/false);
  EXPECT_TRUE(
      hasFinding(R, LintPass::Endorsement, "never reaches a precise use"))
      << dump(R);
}

TEST(LintEndorsement, ConditionUseJustifiesEndorse) {
  LintResult R = lintSource(
      "{ let @approx int a = 7; if (endorse(a) < 9) { 1; } else { 2; }; }",
      /*CheckIsa=*/false);
  EXPECT_EQ(R.count(LintPass::Endorsement), 0u) << dump(R);
}

// --- Precision slack. ---

TEST(LintSlack, PreciseLocalFeedingOnlyApproxData) {
  LintResult R = lintSource(
      "{ let @approx int[] b = new @approx int[4]; let int g = 3; "
      "b[0] := g; endorse(b[0]); }",
      /*CheckIsa=*/false);
  EXPECT_TRUE(hasFinding(R, LintPass::PrecisionSlack, "local 'g'"))
      << dump(R);
  EXPECT_EQ(R.count(LintPass::PrecisionSlack), 1u) << dump(R);
}

TEST(LintSlack, LoopBoundStaysPrecise) {
  LintResult R = lintSource(
      "{ let int n = 4; let @approx int[] b = new @approx int[4]; "
      "let int i = 0; while (i < n) { b[i] := i; i = i + 1; }; 0; }",
      /*CheckIsa=*/false);
  // n and i both reach conditions/subscripts: no slack anywhere.
  EXPECT_EQ(R.count(LintPass::PrecisionSlack), 0u) << dump(R);
}

TEST(LintSlack, SuggestionsFormAConsistentSet) {
  // Applying the suggestion must yield a program that still checks and
  // has no remaining slack.
  LintResult Relaxed = lintSource(
      "{ let @approx int[] b = new @approx int[2]; let @approx int g = 3; "
      "b[0] := g; endorse(b[0]); }",
      /*CheckIsa=*/false);
  EXPECT_EQ(Relaxed.count(LintPass::PrecisionSlack), 0u) << dump(Relaxed);
}

TEST(LintSlack, FieldReadOnlyApproximately) {
  LintResult R = lintSource(R"(
    class Acc {
      int bias;
      @approx int sum;
      int step(@approx int v) {
        this.sum := this.sum + v + this.bias;
        0;
      }
    }
    { let @precise Acc a = new @precise Acc(); a.bias := 3; a.step(5); 0; }
  )");
  EXPECT_TRUE(hasFinding(R, LintPass::PrecisionSlack, "field 'Acc.bias'"))
      << dump(R);
}

TEST(LintSlack, ParameterFeedingOnlyApproxData) {
  LintResult R = lintSource(R"(
    class W {
      @approx int acc;
      int feed(int v) { this.acc := this.acc + v; 0; }
    }
    { let @precise W w = new @precise W(); w.feed(4); 0; }
  )");
  EXPECT_TRUE(
      hasFinding(R, LintPass::PrecisionSlack, "parameter 'v' of 'W.feed'"))
      << dump(R);
}

TEST(LintSlack, ContextFieldsAreNeverSuggested) {
  // @context precision depends on the receiver; relaxing it is not a
  // local decision, so the pass must stay away.
  LintResult R = lintSource(R"(
    class P {
      @context int x;
      int bump() { this.x := this.x + 1; 0; }
    }
    { let @approx P p = new @approx P(); p.bump(); 0; }
  )");
  EXPECT_FALSE(hasFinding(R, LintPass::PrecisionSlack, "'P.x'")) << dump(R);
}

// --- Dead values. ---

TEST(LintDeadValue, OverwrittenBeforeRead) {
  LintResult R = lintSource("{ let int x = 1; x = 2; x; }",
                            /*CheckIsa=*/false);
  EXPECT_TRUE(hasFinding(R, LintPass::DeadValue, "never read")) << dump(R);
  EXPECT_EQ(R.count(LintPass::DeadValue), 1u) << dump(R);
}

TEST(LintDeadValue, StraightLineUseIsSilent) {
  LintResult R = lintSource("{ let int x = 1; x; }", /*CheckIsa=*/false);
  EXPECT_EQ(R.count(LintPass::DeadValue), 0u) << dump(R);
}

TEST(LintDeadValue, NeverUsedLocal) {
  LintResult R = lintSource("{ let int unused = 1; 0; }",
                            /*CheckIsa=*/false);
  EXPECT_TRUE(hasFinding(R, LintPass::DeadValue, "'unused' is never used"))
      << dump(R);
}

TEST(LintDeadValue, LoopCarriedAssignmentIsLive) {
  LintResult R = lintSource(
      "{ let int i = 0; while (i < 3) { i = i + 1; }; i; }",
      /*CheckIsa=*/false);
  EXPECT_EQ(R.count(LintPass::DeadValue), 0u) << dump(R);
}

TEST(LintDeadValue, NeverUsedParameter) {
  LintResult R = lintSource(R"(
    class C { int m(int unused) { 7; } }
    { let @precise C c = new @precise C(); c.m(1); }
  )");
  EXPECT_TRUE(
      hasFinding(R, LintPass::DeadValue, "parameter 'unused' is never used"))
      << dump(R);
}

// --- The isa-flow bridge. ---

TEST(LintIsa, SkipsClassfulPrograms) {
  LintResult R = lintSource(R"(
    class C { int m() { 1; } }
    { let @precise C c = new @precise C(); c.m(); }
  )");
  EXPECT_FALSE(R.IsaChecked);
  EXPECT_FALSE(R.IsaSkipReason.empty());
  EXPECT_EQ(R.count(LintPass::IsaFlow), 0u);
}

TEST(LintIsa, ChecksClassFreePrograms) {
  LintResult R = lintSource("{ let int x = 1; x; }");
  EXPECT_TRUE(R.IsaChecked);
  EXPECT_TRUE(R.IsaSkipReason.empty());
  EXPECT_FALSE(R.hasErrors()) << dump(R);
}

TEST(LintIsa, OptionDisablesThePass) {
  LintResult R = lintSource("{ let int x = 1; x; }", /*CheckIsa=*/false);
  EXPECT_FALSE(R.IsaChecked);
  EXPECT_EQ(R.IsaSkipReason, "disabled");
  EXPECT_EQ(R.count(LintPass::IsaFlow), 0u);
}

// --- Rendering. ---

TEST(LintRender, TextFormat) {
  LintResult R = lintSource("{ let int x = 1; x = 2; x; }",
                            /*CheckIsa=*/false);
  std::string Text = renderLintText(R, "prog.fej");
  EXPECT_NE(Text.find("prog.fej:"), std::string::npos);
  EXPECT_NE(Text.find("warning: [dead-value]"), std::string::npos);
  EXPECT_NE(Text.find("1 finding(s): 0 error(s), 1 warning(s), "
                      "0 suggestion(s)"),
            std::string::npos)
      << Text;
}

TEST(LintRender, JsonSchemaIsStable) {
  // The full JSON layout is part of the tool's contract with CI: key
  // names, key order, counts for every pass, and the isa summary. Only
  // the source position is interpolated.
  LintResult R = lintSource("{ let int x = 1; x = 2; x; }",
                            /*CheckIsa=*/false);
  ASSERT_EQ(R.Findings.size(), 1u) << dump(R);
  const LintFinding &F = R.Findings[0];
  EXPECT_GT(F.Loc.Line, 0);
  std::string Expected =
      "{\"tool\":\"enerj-lint\",\"version\":1,\"file\":\"p.fej\","
      "\"findings\":[{\"pass\":\"dead-value\",\"severity\":\"warning\","
      "\"line\":" +
      std::to_string(F.Loc.Line) +
      ",\"column\":" + std::to_string(F.Loc.Column) +
      ",\"message\":\"the value assigned to 'x' here is never read\"}],"
      "\"counts\":{\"endorsement\":0,\"precision-slack\":0,"
      "\"dead-value\":1,\"isa-flow\":0,\"interproc-flow\":0},"
      "\"isa\":{\"checked\":false,\"skipReason\":\"disabled\","
      "\"errors\":0}}";
  EXPECT_EQ(renderLintJson(R, "p.fej"), Expected);
}

TEST(LintRender, JsonEscapesStrings) {
  LintResult R;
  R.Findings.push_back({LintPass::DeadValue, LintSeverity::Warning,
                        {1, 1}, "a \"quoted\"\nmessage\\"});
  std::string Json = renderLintJson(R, "dir\\file.fej");
  EXPECT_NE(Json.find("dir\\\\file.fej"), std::string::npos);
  EXPECT_NE(Json.find("a \\\"quoted\\\"\\nmessage\\\\"),
            std::string::npos);
}

// --- Finding order: (pass, line, column), total even on duplicates. ---

TEST(LintOrder, ComparatorIsATotalOrder) {
  LintFinding A{LintPass::DeadValue, LintSeverity::Warning, {3, 5}, "m1"};
  LintFinding B{LintPass::DeadValue, LintSeverity::Warning, {3, 5}, "m2"};
  // Column-equal duplicates tie-break on the message, so a sort never
  // depends on discovery order.
  EXPECT_TRUE(lintFindingLess(A, B));
  EXPECT_FALSE(lintFindingLess(B, A));
  EXPECT_FALSE(lintFindingLess(A, A));
  LintFinding C{LintPass::DeadValue, LintSeverity::Warning, {3, 4}, "zz"};
  EXPECT_TRUE(lintFindingLess(C, A)); // column beats message
  LintFinding D{LintPass::Endorsement, LintSeverity::Warning, {9, 9}, "a"};
  EXPECT_TRUE(lintFindingLess(D, C)); // pass beats location
  LintFinding E{LintPass::DeadValue, LintSeverity::Error, {3, 5}, "m1"};
  EXPECT_TRUE(lintFindingLess(E, A)); // severity beats message
}

TEST(LintOrder, JsonIsIndependentOfDiscoveryOrder) {
  // Two results with the same findings in opposite insertion order must
  // render to identical bytes once sorted — the --json contract.
  std::vector<LintFinding> Findings = {
      {LintPass::PrecisionSlack, LintSeverity::Suggestion, {2, 7}, "b"},
      {LintPass::DeadValue, LintSeverity::Warning, {2, 7}, "a"},
      {LintPass::DeadValue, LintSeverity::Warning, {2, 7}, "b"},
      {LintPass::DeadValue, LintSeverity::Warning, {1, 9}, "c"},
  };
  LintResult Fwd, Rev;
  Fwd.Findings = Findings;
  Rev.Findings = std::vector<LintFinding>(Findings.rbegin(),
                                          Findings.rend());
  std::stable_sort(Fwd.Findings.begin(), Fwd.Findings.end(),
                   lintFindingLess);
  std::stable_sort(Rev.Findings.begin(), Rev.Findings.end(),
                   lintFindingLess);
  EXPECT_EQ(renderLintJson(Fwd, "p.fej"), renderLintJson(Rev, "p.fej"));
  // Pass major (PrecisionSlack precedes DeadValue), then line within it.
  EXPECT_EQ(Fwd.Findings[0].Pass, LintPass::PrecisionSlack);
  EXPECT_EQ(Fwd.Findings[1].Message, "c");
}

// --- Whole-corpus sanity: findings are ordered by pass, then line. ---

TEST(LintResultOrder, PassMajorLineMinor) {
  LintResult R = lintSource(
      "{ let @approx int[] b = new @approx int[2]; let int g = 3; "
      "let int dead = 4; dead = 5; b[0] := g; b[1] := dead; "
      "endorse(b[0]); }",
      /*CheckIsa=*/false);
  ASSERT_GE(R.Findings.size(), 2u) << dump(R);
  for (size_t I = 1; I < R.Findings.size(); ++I) {
    const LintFinding &A = R.Findings[I - 1];
    const LintFinding &B = R.Findings[I];
    bool Ordered = static_cast<int>(A.Pass) < static_cast<int>(B.Pass) ||
                   (A.Pass == B.Pass && A.Loc.Line <= B.Loc.Line);
    EXPECT_TRUE(Ordered) << dump(R);
  }
}
