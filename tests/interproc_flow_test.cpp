//===- tests/interproc_flow_test.cpp - interprocedural flow audit ---------===//
//
// The interproc-flow pass is the whole-program counterpart of the type
// system's non-interference theorem: on well-typed programs it reports
// no errors, and its warnings single out endorsements that launder
// @context-adapted state into control decisions — flows no per-method
// audit can see.
//
//===----------------------------------------------------------------------===//

#include "analysis/lint.h"
#include "fenerj/fenerj.h"

#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::analysis;

namespace {

LintResult lint(std::string_view Source) {
  fenerj::DiagnosticEngine Diags;
  fenerj::ClassTable Table;
  std::optional<fenerj::Program> Prog =
      fenerj::compile(Source, Table, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  if (!Prog)
    return {};
  LintOptions Options;
  Options.CheckIsa = false;
  return runLint(*Prog, Table, Options);
}

unsigned interprocErrors(const LintResult &R) {
  unsigned N = 0;
  for (const LintFinding &F : R.Findings)
    if (F.Pass == LintPass::InterprocFlow &&
        F.Severity == LintSeverity::Error)
      ++N;
  return N;
}

unsigned interprocWarnings(const LintResult &R) {
  unsigned N = 0;
  for (const LintFinding &F : R.Findings)
    if (F.Pass == LintPass::InterprocFlow &&
        F.Severity == LintSeverity::Warning)
      ++N;
  return N;
}

} // namespace

TEST(InterprocFlow, WellTypedProgramsHaveNoErrors) {
  // Theorem 1, observed whole-program: approximate data never rests in a
  // precise location without an endorsement.
  LintResult R = lint(R"(
    class Acc {
      @approx int sum;
      int add(@approx int v) { this.sum := this.sum + v; 0; }
      int settle() { endorse(this.sum); }
    }
    { let @precise Acc a = new @precise Acc(); a.add(3); a.settle(); }
  )");
  EXPECT_EQ(interprocErrors(R), 0u) << renderLintText(R, "t");
}

TEST(InterprocFlow, PlainApproxEndorseIntoConditionIsNotLaundering) {
  // The paper's own idiom — endorse an @approx value to branch on it —
  // must stay silent: the programmer declared the data approximate right
  // where the endorse is visible.
  LintResult R = lint(
      "{ let @approx int a = 7; if (endorse(a) < 9) { 1; } else { 2; }; }");
  EXPECT_EQ(interprocWarnings(R), 0u) << renderLintText(R, "t");
  EXPECT_EQ(interprocErrors(R), 0u);
}

TEST(InterprocFlow, ContextLaunderingIntoAConditionWarns) {
  // Every method is locally clean; only the instantiated call graph sees
  // that the endorsed @context field is approximate on this receiver and
  // then steers a branch.
  LintResult R = lint(R"(
    class M {
      @context int total;
      int add(@context int v) { this.total := this.total + v; 0; }
      int settle() { endorse(this.total); }
    }
    {
      let @approx M m = new @approx M();
      m.add(5);
      if (m.settle() < 3) { 1; } else { 2; };
    }
  )");
  EXPECT_EQ(interprocWarnings(R), 1u) << renderLintText(R, "t");
  EXPECT_EQ(interprocErrors(R), 0u);
  bool Explained = false;
  for (const LintFinding &F : R.Findings)
    if (F.Pass == LintPass::InterprocFlow &&
        F.Message.find("launders @context-adapted") != std::string::npos)
      Explained = true;
  EXPECT_TRUE(Explained) << renderLintText(R, "t");
}

TEST(InterprocFlow, ContextLaunderingIntoAnIndexWarns) {
  LintResult R = lint(R"(
    class M {
      @context int total;
      int add(@context int v) { this.total := this.total + v; 0; }
      int settle() { endorse(this.total); }
    }
    {
      let @approx M m = new @approx M();
      let int[] bins = new int[4];
      bins[0] := 9;
      m.add(5);
      bins[m.settle() % 4];
    }
  )");
  EXPECT_EQ(interprocWarnings(R), 1u) << renderLintText(R, "t");
}

TEST(InterprocFlow, SameCodeOnPreciseInstanceIsSilent) {
  // Identical classes, precise receiver: the @context field adapts to
  // precise, so there is nothing to launder.
  LintResult R = lint(R"(
    class M {
      @context int total;
      int add(@context int v) { this.total := this.total + v; 0; }
      int settle() { endorse(this.total); }
    }
    {
      let @precise M m = new @precise M();
      m.add(5);
      if (m.settle() < 3) { 1; } else { 2; };
    }
  )");
  EXPECT_EQ(interprocWarnings(R), 0u) << renderLintText(R, "t");
  EXPECT_EQ(interprocErrors(R), 0u);
}

TEST(InterprocFlow, ContextEndorseFeedingOnlyDataIsSilent) {
  // Laundering needs a control sink; an endorsed @context value that
  // only flows into the program result is an ordinary boundary endorse.
  LintResult R = lint(R"(
    class M {
      @context int total;
      int add(@context int v) { this.total := this.total + v; 0; }
      int settle() { endorse(this.total); }
    }
    { let @approx M m = new @approx M(); m.add(5); m.settle(); }
  )");
  EXPECT_EQ(interprocWarnings(R), 0u) << renderLintText(R, "t");
}
