//===- tests/torture_test.cpp - Failure injection at the extremes ---------===//
//
// The paper's future-work knob ("a separate system could tune the
// frequency and intensity of errors") exists here as FaultConfig
// overrides. These tests push every strategy to its extreme — error
// probability 1.0, zero mantissa bits — and check the system's
// guarantees still hold: precise data is exact, nothing crashes, every
// run completes, statistics stay sane.
//
//===----------------------------------------------------------------------===//

#include "apps/app.h"
#include "core/enerj.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace enerj;

namespace {

/// Everything fails, all the time.
FaultConfig tortureConfig() {
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive);
  Config.TimingErrorOverride = 1.0;
  Config.SramReadUpsetOverride = 0.5;
  Config.SramWriteFailureOverride = 0.5;
  Config.DramFlipPerSecondOverride = 1.0;
  Config.FloatMantissaOverride = 0;
  Config.DoubleMantissaOverride = 0;
  Config.CyclesPerSecond = 1.0;
  return Config;
}

} // namespace

TEST(Torture, OverridesAreHonored) {
  FaultConfig Config = tortureConfig();
  EXPECT_DOUBLE_EQ(Config.timingErrorProbability(), 1.0);
  EXPECT_DOUBLE_EQ(Config.sramReadUpset(), 0.5);
  EXPECT_DOUBLE_EQ(Config.sramWriteFailure(), 0.5);
  EXPECT_DOUBLE_EQ(Config.dramFlipPerSecond(), 1.0);
  EXPECT_EQ(Config.floatMantissaBits(), 0u);
  EXPECT_EQ(Config.doubleMantissaBits(), 0u);
  // Disabled strategies still win over overrides.
  Config.EnableTiming = false;
  EXPECT_DOUBLE_EQ(Config.timingErrorProbability(), 0.0);
}

TEST(Torture, OverridesApplyAtAnyLevel) {
  FaultConfig Config = FaultConfig::preset(ApproxLevel::None);
  Config.TimingErrorOverride = 0.25;
  EXPECT_DOUBLE_EQ(Config.timingErrorProbability(), 0.25);
  Config.TimingErrorOverride = -1.0;
  EXPECT_DOUBLE_EQ(Config.timingErrorProbability(), 0.0);
}

TEST(Torture, PreciseDataSurvivesTotalApproxFailure) {
  // With every approximate mechanism failing constantly, Precise<T> and
  // PreciseArray<T> remain bit-exact: the isolation guarantee.
  Simulator Sim(tortureConfig());
  SimulatorScope Scope(Sim);
  Precise<int32_t> Counter = 0;
  PreciseArray<double> Data(256);
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = 1.0 + static_cast<double>(I);
  for (int Round = 0; Round < 1000; ++Round)
    Counter += 1;
  Sim.ledger().tick(1000000);
  EXPECT_EQ(Counter.get(), 1000);
  for (size_t I = 0; I < Data.size(); ++I)
    EXPECT_DOUBLE_EQ(Data[I], 1.0 + static_cast<double>(I));
}

TEST(Torture, ApproxComputationAlwaysCompletes) {
  // Under total corruption the approximate side produces garbage but
  // never traps, loops, or poisons control flow.
  Simulator Sim(tortureConfig());
  SimulatorScope Scope(Sim);
  ApproxArray<double> Data(64, 1.0);
  Approx<double> Acc = 0.0;
  for (Precise<int32_t> I = 0; I < 64; ++I) {
    size_t Index = static_cast<size_t>(I.get());
    Acc += Data.get(Index) / Data.get((Index + 1) % 64);
  }
  double Result = endorse(Acc);
  (void)Result; // Any value (including NaN/inf) is acceptable.
  RunStats Stats = Sim.stats();
  EXPECT_EQ(Stats.Ops.ApproxFp, 64u * 2u);
  EXPECT_EQ(Stats.Ops.TimingErrors, 64u * 2u); // P = 1: every op fired.
}

TEST(Torture, ZeroMantissaStillProducesPowersOfTwo) {
  // 0 mantissa bits leaves sign + exponent: operands collapse to powers
  // of two (or zero/inf), never to arbitrary garbage.
  FaultConfig Config = FaultConfig::preset(ApproxLevel::None);
  Config.FloatMantissaOverride = 0;
  Config.DoubleMantissaOverride = 0;
  Simulator Sim(Config);
  SimulatorScope Scope(Sim);
  Approx<double> A = 1.9, B = 1.0;
  double Narrowed = endorse(A * B); // 1.9 -> 1.0 with an empty mantissa.
  EXPECT_DOUBLE_EQ(Narrowed, 1.0);
}

TEST(Torture, AllAppsSurviveTortureConfig) {
  // The Section 6 "never fail catastrophically" property at the extreme:
  // all nine applications produce an output under total corruption.
  FaultConfig Config = tortureConfig();
  for (const apps::Application *App : apps::allApplications()) {
    apps::AppRun Run = apps::runApproximate(*App, Config, /*Seed=*/1);
    bool HasOutput = !Run.Output.Numeric.empty() ||
                     !Run.Output.Text.empty() ||
                     !Run.Output.Decisions.empty();
    EXPECT_TRUE(HasOutput) << App->name();
    apps::AppOutput Reference = apps::runPrecise(*App, 1);
    double Error = App->qosError(Reference, Run.Output);
    EXPECT_GE(Error, 0.0) << App->name();
    EXPECT_LE(Error, 1.0) << App->name();
  }
}

TEST(Torture, QosDegradesMonotonicallyInTimingProbability) {
  // Sweep the new knob: more frequent timing errors, more output error
  // (on average) for a fault-sensitive kernel.
  const apps::Application *Fft = apps::findApplication("fft");
  ASSERT_NE(Fft, nullptr);
  double Previous = -1.0;
  for (double Probability : {0.0, 1e-4, 1e-2, 1.0}) {
    FaultConfig Config = FaultConfig::preset(ApproxLevel::None);
    Config.EnableTiming = true;
    Config.TimingErrorOverride = Probability;
    double Sum = 0.0;
    for (uint64_t Seed = 1; Seed <= 3; ++Seed)
      Sum += apps::qosUnder(*Fft, Config, Seed);
    double Error = Sum / 3.0;
    EXPECT_GE(Error, Previous - 0.05) << "P = " << Probability;
    Previous = Error;
  }
  EXPECT_GT(Previous, 0.9); // At P = 1 the output is meaningless.
}
