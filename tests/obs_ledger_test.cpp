//===- tests/obs_ledger_test.cpp - Run-ledger manifest contract -----------===//
//
// Unit tests of the append-only run ledger: the rendered line is stable
// JSON that round-trips through the parser, the eval entry derives every
// deterministic column from the grid (and only elapsed/throughput from
// the wall clock), append never rewrites earlier lines, and a corrupt
// line fails the whole read with its line number.
//
//===----------------------------------------------------------------------===//

#include "harness/eval.h"
#include "obs/json_mini.h"
#include "obs/ledger.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::obs;

namespace {

harness::EvalResult smallGrid() {
  harness::EvalOptions Options;
  Options.Apps = {apps::findApplication("montecarlo")};
  Options.Levels = {ApproxLevel::Mild};
  Options.Seeds = 2;
  return harness::runEval(Options);
}

LedgerEntry sampleEntry() {
  harness::EvalResult Grid = smallGrid();
  return ledgerEntryForEval(Grid, harness::renderEvalJson(Grid), 2.0);
}

} // namespace

TEST(ObsLedger, EvalEntryDerivesFromTheGrid) {
  harness::EvalResult Grid = smallGrid();
  std::string Payload = harness::renderEvalJson(Grid);
  LedgerEntry Entry = ledgerEntryForEval(Grid, Payload, 2.0);
  EXPECT_EQ(Entry.Command, "eval");
  EXPECT_EQ(Entry.PayloadVersion, 2);
  EXPECT_EQ(Entry.Apps, 1u);
  EXPECT_EQ(Entry.Levels, 1u);
  EXPECT_EQ(Entry.Seeds, 2);
  EXPECT_EQ(Entry.Trials, 2u);
  EXPECT_EQ(Entry.Outcomes.Ok, 2u);
  EXPECT_EQ(Entry.GridDigest, json::fnv1a(Payload));
  EXPECT_EQ(Entry.ConfigHash, json::fnv1a(Entry.ConfigSummary));
  EXPECT_NE(Entry.ConfigSummary.find("apps=montecarlo"), std::string::npos);
  EXPECT_NE(Entry.ConfigSummary.find("levels=mild"), std::string::npos);
  // Thread count is deliberately absent: it can never change a result,
  // so it must not fork the config hash.
  EXPECT_EQ(Entry.ConfigSummary.find("threads"), std::string::npos);
  EXPECT_EQ(Entry.ElapsedSec, 2.0);
  EXPECT_EQ(Entry.TrialsPerSec, 1.0);
}

TEST(ObsLedger, DeterministicColumnsAreReproducible) {
  // Two identical grids produce identical hashes and digests; only the
  // wall-clock columns may differ.
  harness::EvalResult A = smallGrid();
  harness::EvalResult B = smallGrid();
  LedgerEntry EntryA = ledgerEntryForEval(A, harness::renderEvalJson(A), 1.0);
  LedgerEntry EntryB = ledgerEntryForEval(B, harness::renderEvalJson(B), 9.0);
  EXPECT_EQ(EntryA.ConfigHash, EntryB.ConfigHash);
  EXPECT_EQ(EntryA.GridDigest, EntryB.GridDigest);
  EXPECT_EQ(EntryA.QosMean, EntryB.QosMean);
  EXPECT_NE(EntryA.ElapsedSec, EntryB.ElapsedSec);
}

TEST(ObsLedger, LineRoundTripsThroughTheParser) {
  LedgerEntry Entry = sampleEntry();
  std::string Line = renderLedgerLine(Entry);
  EXPECT_EQ(Line.find('\n'), std::string::npos);
  EXPECT_EQ(Line.compare(0, 22, "{\"tool\":\"enerj-ledger\""), 0);
  LedgerEntry Parsed;
  std::string Error;
  ASSERT_TRUE(parseLedgerLine(Line, &Parsed, &Error)) << Error;
  // Lossless: the reparsed entry renders to the same bytes.
  EXPECT_EQ(renderLedgerLine(Parsed), Line);
  EXPECT_EQ(Parsed.ConfigHash, Entry.ConfigHash);
  EXPECT_EQ(Parsed.GridDigest, Entry.GridDigest);
  EXPECT_EQ(Parsed.Outcomes.Ok, Entry.Outcomes.Ok);
}

TEST(ObsLedger, ParseRejectsForeignLines) {
  LedgerEntry Entry;
  std::string Error;
  EXPECT_FALSE(parseLedgerLine("", &Entry, &Error));
  EXPECT_FALSE(parseLedgerLine("not json", &Entry, &Error));
  EXPECT_FALSE(parseLedgerLine("{\"tool\":\"other\"}", &Entry, &Error));
  EXPECT_FALSE(parseLedgerLine(
      "{\"tool\":\"enerj-ledger\",\"version\":2}", &Entry, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);
}

TEST(ObsLedger, AppendOnlyAndOldestFirst) {
  std::string Path = ::testing::TempDir() + "obs_ledger_append.jsonl";
  std::remove(Path.c_str());
  LedgerEntry First = sampleEntry();
  LedgerEntry Second = First;
  Second.Command = "profile";
  std::string Error;
  ASSERT_TRUE(appendLedgerLine(Path, First, &Error)) << Error;
  ASSERT_TRUE(appendLedgerLine(Path, Second, &Error)) << Error;
  std::vector<LedgerEntry> Entries;
  ASSERT_TRUE(readLedger(Path, &Entries, &Error)) << Error;
  ASSERT_EQ(Entries.size(), 2u);
  EXPECT_EQ(Entries[0].Command, "eval");
  EXPECT_EQ(Entries[1].Command, "profile");
  std::remove(Path.c_str());
}

TEST(ObsLedger, CorruptLineFailsTheWholeReadWithItsLineNumber) {
  std::string Path = ::testing::TempDir() + "obs_ledger_corrupt.jsonl";
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << renderLedgerLine(sampleEntry()) << "\n";
    Out << "\n"; // Blank lines are fine.
    Out << "{\"tool\":\"enerj-ledger\",truncated gibberish\n";
  }
  std::vector<LedgerEntry> Entries;
  std::string Error;
  EXPECT_FALSE(readLedger(Path, &Entries, &Error));
  EXPECT_NE(Error.find(":3:"), std::string::npos) << Error;
  std::remove(Path.c_str());
}
