//===- tests/fenerj_property_test.cpp - Soundness & non-interference ------===//
//
// The two theorems of Section 3.3, as executable property tests over
// randomly generated well-typed, endorse-free programs:
//
//  * Type soundness: every generated program passes the checker, and the
//    checked semantics (which verifies the precise/approximate separation
//    at every step) never traps while evaluating it.
//  * Non-interference: evaluating the program under different perturbers
//    (including total perturbation of every approximate value) yields the
//    same precise projection — approximate data cannot affect precise
//    state.
//
//===----------------------------------------------------------------------===//

#include "fenerj/fenerj.h"

#include <gtest/gtest.h>

using namespace enerj::fenerj;

namespace {

struct Compiled {
  Program Prog;
  ClassTable Table;
  bool Ok = false;
};

Compiled compileGenerated(uint64_t Seed) {
  GeneratorOptions Options;
  Options.Seed = Seed;
  std::string Source = generateProgram(Options);
  DiagnosticEngine Diags;
  Compiled Out;
  std::optional<Program> Prog = compile(Source, Out.Table, Diags);
  EXPECT_TRUE(Prog.has_value())
      << "generated program rejected (seed " << Seed << "):\n"
      << Diags.str() << "\n--- source ---\n" << Source;
  if (!Prog)
    return Out;
  Out.Prog = std::move(*Prog);
  Out.Ok = true;
  return Out;
}

class SoundnessProperty : public ::testing::TestWithParam<uint64_t> {};
class NonInterferenceProperty : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SoundnessProperty, CheckedSemanticsNeverTraps) {
  Compiled C = compileGenerated(GetParam());
  ASSERT_TRUE(C.Ok);
  // Run under the checked semantics with aggressive perturbation: any
  // approximate value leaking into precise storage, a condition, or an
  // index would trap with a checked-semantics violation.
  RandomPerturber Perturb(GetParam() * 31 + 7, 1.0);
  InterpOptions Options;
  Options.Perturb = &Perturb;
  Options.Checked = true;
  Interpreter Interp(C.Prog, C.Table, Options);
  EvalResult R = Interp.run();
  EXPECT_FALSE(R.Trapped) << "seed " << GetParam() << ": "
                          << R.TrapMessage;
}

TEST_P(NonInterferenceProperty, PreciseProjectionInvariant) {
  Compiled C = compileGenerated(GetParam());
  ASSERT_TRUE(C.Ok);

  // Reference: fully precise execution (no perturbation).
  Interpreter Ref(C.Prog, C.Table, {});
  EvalResult RefResult = Ref.run();
  ASSERT_FALSE(RefResult.Trapped) << RefResult.TrapMessage;
  std::string RefProjection = Ref.preciseProjection(RefResult);

  // The precise projection must survive any approximate behavior.
  for (uint64_t PerturbSeed : {1ull, 2ull, 3ull}) {
    RandomPerturber Perturb(PerturbSeed, 1.0);
    InterpOptions Options;
    Options.Perturb = &Perturb;
    Interpreter Run(C.Prog, C.Table, Options);
    EvalResult Result = Run.run();
    ASSERT_FALSE(Result.Trapped) << Result.TrapMessage;
    EXPECT_EQ(Run.preciseProjection(Result), RefProjection)
        << "non-interference violated (program seed " << GetParam()
        << ", perturb seed " << PerturbSeed << ")";
  }
}

TEST_P(NonInterferenceProperty, MildPerturbationAlsoInvariant) {
  Compiled C = compileGenerated(GetParam() + 1000);
  ASSERT_TRUE(C.Ok);
  Interpreter Ref(C.Prog, C.Table, {});
  EvalResult RefResult = Ref.run();
  ASSERT_FALSE(RefResult.Trapped);
  RandomPerturber Perturb(17, 0.05);
  InterpOptions Options;
  Options.Perturb = &Perturb;
  Interpreter Run(C.Prog, C.Table, Options);
  EvalResult Result = Run.run();
  ASSERT_FALSE(Result.Trapped);
  EXPECT_EQ(Run.preciseProjection(Result),
            Ref.preciseProjection(RefResult));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessProperty,
                         ::testing::Range<uint64_t>(1, 101));
INSTANTIATE_TEST_SUITE_P(Seeds, NonInterferenceProperty,
                         ::testing::Range<uint64_t>(1, 41));

TEST(FenerjProperty, GeneratorIsDeterministic) {
  GeneratorOptions Options;
  Options.Seed = 12345;
  EXPECT_EQ(generateProgram(Options), generateProgram(Options));
}

TEST(FenerjProperty, GeneratorVariesWithSeed) {
  GeneratorOptions A, B;
  A.Seed = 1;
  B.Seed = 2;
  EXPECT_NE(generateProgram(A), generateProgram(B));
}

TEST(FenerjProperty, GeneratedProgramsAreEndorseFree) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    GeneratorOptions Options;
    Options.Seed = Seed;
    std::string Source = generateProgram(Options);
    EXPECT_EQ(Source.find("endorse"), std::string::npos)
        << "seed " << Seed;
  }
}

namespace {

class EndorsefulSoundness : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(EndorsefulSoundness, CheckedSemanticsNeverTrapsWithEndorse) {
  // Endorsements pierce the isolation (non-interference no longer
  // applies), but type soundness must still hold: the checked semantics
  // never traps on a well-typed endorse-ful program, whatever the
  // perturbations do.
  GeneratorOptions Options;
  Options.Seed = GetParam();
  Options.AllowEndorse = true;
  std::string Source = generateProgram(Options);
  EXPECT_NE(Source.find("endorse"), std::string::npos)
      << "endorse-ful generator produced no endorsement (seed "
      << GetParam() << ")";
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  ASSERT_TRUE(Prog.has_value())
      << Diags.str() << "\n--- source ---\n" << Source;
  RandomPerturber Perturb(GetParam() * 17 + 3, 1.0);
  InterpOptions RunOptions;
  RunOptions.Perturb = &Perturb;
  RunOptions.Checked = true;
  Interpreter Interp(*Prog, Table, RunOptions);
  EvalResult Result = Interp.run();
  EXPECT_FALSE(Result.Trapped) << "seed " << GetParam() << ": "
                               << Result.TrapMessage;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndorsefulSoundness,
                         ::testing::Range<uint64_t>(200, 240));
