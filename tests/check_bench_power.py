#!/usr/bin/env python3
"""Gate the intermittent-supply bench against the committed baseline.

bench/power_trace writes BENCH_power.json: the full eval grid run under
a brownout and a harvesting supply, each with and without periodic
checkpointing, reporting per-level survival and the retry-adjusted
effective energy factor. The grid is deterministic, so the counters
should reproduce exactly; the gate allows a small slack for platform
drift in the data-dependent apps and enforces the physics that must
hold regardless:

  * per (trace, level): checkpointing never lowers survival and, when
    the bare trace loses power at all, strictly reduces re-executed ops;
  * effective energy >= plain energy everywhere (re-execution is
    charged, never refunded);
  * per (config, level): survival must not slide more than 5 points
    below the committed baseline, and the effective energy mean must
    stay within 1.5x of it.

Usage: check_bench_power.py <fresh.json> <baseline.json>
Exits 0 on success, 1 with a diagnostic on regression.
"""

import json
import sys

LEVELS = ["mild", "medium", "aggressive"]
CONFIGS = [("brownout", "none"), ("brownout", "periodic:2000"),
           ("harvest", "none"), ("harvest", "periodic:2000")]


def fail(message):
    print(f"check_bench_power: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    if doc.get("tool") != "power_trace" or doc.get("version") != 1:
        fail(f"{path}: not a power_trace v1 document")
    configs = {}
    for config in doc.get("configs", []):
        key = (config.get("trace"), config.get("checkpoint"))
        levels = {row["level"]: row for row in config.get("levels", [])}
        if sorted(levels) != sorted(LEVELS):
            fail(f"{path}: config {key} levels {sorted(levels)}")
        configs[key] = levels
    if sorted(configs) != sorted(CONFIGS):
        fail(f"{path}: configs {sorted(configs)} != expected")
    return configs


def rate(row):
    return row["survived"] / row["trials"] if row["trials"] else 0.0


def main():
    if len(sys.argv) != 3:
        fail("usage: check_bench_power.py <fresh.json> <baseline.json>")
    fresh = load(sys.argv[1])
    baseline = load(sys.argv[2])

    for trace in ("brownout", "harvest"):
        for level in LEVELS:
            bare = fresh[(trace, "none")][level]
            ckpt = fresh[(trace, "periodic:2000")][level]
            where = f"{trace}/{level}"
            if ckpt["survived"] < bare["survived"]:
                fail(f"{where}: checkpointing lowered survival "
                     f"({ckpt['survived']} < {bare['survived']})")
            if bare["losses"] > 0 and \
                    ckpt["reExecutedOps"] >= bare["reExecutedOps"]:
                fail(f"{where}: checkpointing did not reduce re-executed "
                     f"ops ({ckpt['reExecutedOps']} >= "
                     f"{bare['reExecutedOps']})")

    for key, levels in fresh.items():
        for level, row in levels.items():
            where = f"{key[0]}/{key[1]}/{level}"
            if row["effectiveEnergyMean"] < row["energyMean"] - 1e-9:
                fail(f"{where}: effective energy below plain energy")
            base = baseline[key][level]
            if rate(row) < rate(base) - 0.05:
                fail(f"{where}: survival {rate(row):.3f} slid below "
                     f"baseline {rate(base):.3f} - 0.05")
            if base["effectiveEnergyMean"] > 0 and \
                    row["effectiveEnergyMean"] > \
                    1.5 * base["effectiveEnergyMean"]:
                fail(f"{where}: effective energy "
                     f"{row['effectiveEnergyMean']:.4f} exceeds 1.5x "
                     f"baseline {base['effectiveEnergyMean']:.4f}")

    survived = sum(r["survived"] for levels in fresh.values()
                   for r in levels.values())
    trials = sum(r["trials"] for levels in fresh.values()
                 for r in levels.values())
    print(f"check_bench_power: OK ({survived}/{trials} trials survived "
          f"across {len(fresh)} supply configs)")


if __name__ == "__main__":
    main()
