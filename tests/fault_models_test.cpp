//===- tests/fault_models_test.cpp - Fault-injection model tests ----------===//

#include "fault/models.h"

#include "support/bits.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

using namespace enerj;

namespace {

FaultConfig aggressive() {
  return FaultConfig::preset(ApproxLevel::Aggressive);
}

/// Counts differing bits between two words.
unsigned hamming(uint64_t A, uint64_t B) {
  return static_cast<unsigned>(std::popcount(A ^ B));
}

} // namespace

TEST(SramModel, NoneLevelNeverFlips) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::None);
  SramModel Model(C);
  Rng R(1);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.next();
    EXPECT_EQ(Model.onRead(V, 64, R), V);
    EXPECT_EQ(Model.onWrite(V, 64, R), V);
  }
}

TEST(SramModel, AggressiveReadUpsetRateIsApprox1eMinus3) {
  FaultConfig C = aggressive();
  SramModel Model(C);
  Rng R(2);
  uint64_t FlippedBits = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    uint64_t V = R.next();
    FlippedBits += hamming(Model.onRead(V, 64, R), V);
  }
  double Rate = static_cast<double>(FlippedBits) / (64.0 * N);
  EXPECT_NEAR(Rate, 1e-3, 2e-4);
}

TEST(SramModel, WriteFailureRateMedium) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium);
  SramModel Model(C);
  Rng R(3);
  uint64_t FlippedBits = 0;
  const int N = 400000;
  for (int I = 0; I < N; ++I) {
    uint64_t V = R.next();
    FlippedBits += hamming(Model.onWrite(V, 64, R), V);
  }
  double Rate = static_cast<double>(FlippedBits) / (64.0 * N);
  double Expected = std::pow(10.0, -4.94);
  EXPECT_NEAR(Rate, Expected, Expected * 0.3);
}

TEST(SramModel, FlipsStayWithinWidth) {
  FaultConfig C = aggressive();
  SramModel Model(C);
  Rng R(4);
  for (int I = 0; I < 50000; ++I) {
    uint64_t Result = Model.onRead(0, 8, R);
    EXPECT_EQ(Result & ~0xFFull, 0u) << "flip outside the 8-bit value";
  }
}

TEST(DramModel, NoDecayAtZeroElapsed) {
  FaultConfig C = aggressive();
  DramModel Model(C);
  Rng R(5);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.next();
    EXPECT_EQ(Model.onAccess(V, 64, 0, R), V);
  }
}

TEST(DramModel, FlipProbabilityMonotoneInTime) {
  FaultConfig C = aggressive();
  DramModel Model(C);
  double Prev = 0.0;
  for (uint64_t Cycles : {1ull << 10, 1ull << 20, 1ull << 30, 1ull << 40}) {
    double P = Model.flipProbability(Cycles);
    EXPECT_GE(P, Prev);
    EXPECT_LE(P, 1.0);
    Prev = P;
  }
}

TEST(DramModel, FlipProbabilityMatchesRateForShortTimes) {
  // For t << 1/rate, P ~= rate * t.
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium);
  C.CyclesPerSecond = 1e6;
  DramModel Model(C);
  double P = Model.flipProbability(1000); // 1 ms.
  EXPECT_NEAR(P, 1e-5 * 1e-3, 1e-10);
}

TEST(DramModel, ObservedDecayRate) {
  FaultConfig C = aggressive(); // 1e-3 per second per bit.
  C.CyclesPerSecond = 1e6;
  DramModel Model(C);
  Rng R(6);
  uint64_t Flipped = 0;
  const int N = 20000;
  // One full second since last access.
  for (int I = 0; I < N; ++I) {
    uint64_t V = R.next();
    Flipped += std::popcount(Model.onAccess(V, 64, 1000000, R) ^ V);
  }
  double Rate = static_cast<double>(Flipped) / (64.0 * N);
  EXPECT_NEAR(Rate, 1e-3, 2e-4);
}

TEST(FpWidthModel, NarrowFloatKeepsValueApproximately) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium); // 8 bits.
  FpWidthModel Model(C);
  float V = 123.456f;
  float Narrow = Model.narrow(V);
  EXPECT_NEAR(Narrow, V, V * std::pow(2.0f, -8.0f));
  EXPECT_LE(Narrow, V); // Truncation toward zero for positive values.
}

TEST(FpWidthModel, NarrowDoubleAggressive) {
  FaultConfig C = aggressive(); // 8 mantissa bits for double.
  FpWidthModel Model(C);
  double V = 9876.54321;
  double Narrow = Model.narrow(V);
  EXPECT_NEAR(Narrow, V, V * std::pow(2.0, -8.0));
  EXPECT_NE(Narrow, V); // 8 bits cannot represent this exactly.
}

TEST(FpWidthModel, NoneLevelIsIdentity) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::None);
  FpWidthModel Model(C);
  EXPECT_EQ(Model.narrow(3.14159f), 3.14159f);
  EXPECT_EQ(Model.narrow(2.718281828459045), 2.718281828459045);
}

TEST(FpWidthModel, SpecialValuesSurvive) {
  FaultConfig C = aggressive();
  FpWidthModel Model(C);
  EXPECT_EQ(Model.narrow(0.0f), 0.0f);
  EXPECT_EQ(Model.narrow(-0.0), -0.0);
  EXPECT_TRUE(std::isinf(Model.narrow(
      std::numeric_limits<float>::infinity())));
  EXPECT_TRUE(std::isnan(Model.narrow(
      std::numeric_limits<double>::quiet_NaN())));
}

TEST(TimingModel, ErrorRateAggressive) {
  FaultConfig C = aggressive(); // 1e-2.
  TimingModel Model(C);
  Rng R(7);
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Model.onResult(R.next(), 64, R);
  EXPECT_NEAR(static_cast<double>(Model.errorCount()) / N, 1e-2, 2e-3);
}

TEST(TimingModel, SingleBitFlipModeFlipsExactlyOneBit) {
  FaultConfig C = aggressive();
  C.Mode = ErrorMode::SingleBitFlip;
  C.EnableTiming = true;
  TimingModel Model(C);
  Rng R(8);
  for (int I = 0; I < 100000; ++I) {
    uint64_t Correct = R.next();
    uint64_t Before = Model.errorCount();
    uint64_t Produced = Model.onResult(Correct, 64, R);
    if (Model.errorCount() != Before)
      EXPECT_EQ(hamming(Produced, Correct), 1u);
    else
      EXPECT_EQ(Produced, Correct);
  }
  EXPECT_GT(Model.errorCount(), 0u);
}

TEST(TimingModel, LastValueModeReturnsPreviousResult) {
  FaultConfig C = aggressive();
  C.Mode = ErrorMode::LastValue;
  TimingModel Model(C);
  Rng R(9);
  uint64_t Last = 0;
  bool SawError = false;
  for (int I = 0; I < 100000; ++I) {
    uint64_t Correct = R.next() & 0xFFFFFFFF;
    uint64_t Before = Model.errorCount();
    uint64_t Produced = Model.onResult(Correct, 32, R);
    if (Model.errorCount() != Before) {
      EXPECT_EQ(Produced, Last);
      SawError = true;
    }
    Last = Produced;
  }
  EXPECT_TRUE(SawError);
}

TEST(TimingModel, ResultsMaskedToWidth) {
  FaultConfig C = aggressive();
  TimingModel Model(C);
  Rng R(10);
  for (int I = 0; I < 100000; ++I)
    EXPECT_EQ(Model.onResult(R.next(), 16, R) & ~0xFFFFull, 0u);
}

TEST(TimingModel, NoErrorsAtNone) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::None);
  TimingModel Model(C);
  Rng R(11);
  for (int I = 0; I < 10000; ++I) {
    uint64_t V = R.next();
    EXPECT_EQ(Model.onResult(V, 64, R), V);
  }
  EXPECT_EQ(Model.errorCount(), 0u);
}
