//===- tests/fenerj_corpus_test.cpp - Larger FEnerJ programs --------------===//
//
// End-to-end FEnerJ programs exercising combinations the unit tests
// don't: recursion, object graphs, the paper's running examples as whole
// programs, and mixed precise/approximate pipelines with endorsed
// boundaries.
//
//===----------------------------------------------------------------------===//

#include "fenerj/fenerj.h"

#include <gtest/gtest.h>

using namespace enerj::fenerj;

namespace {

struct RunOutcome {
  EvalResult Result;
  std::string Projection;
};

RunOutcome runProgram(std::string_view Source, Perturber *Perturb = nullptr) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  RunOutcome Out;
  if (!Prog)
    return Out;
  InterpOptions Options;
  Options.Perturb = Perturb;
  Interpreter Interp(*Prog, Table, Options);
  Out.Result = Interp.run();
  Out.Projection = Interp.preciseProjection(Out.Result);
  return Out;
}

int64_t runInt(std::string_view Source) {
  RunOutcome Out = runProgram(Source);
  EXPECT_FALSE(Out.Result.Trapped) << Out.Result.TrapMessage;
  EXPECT_EQ(Out.Result.Result.K, Value::Kind::Int);
  return Out.Result.Result.I;
}

} // namespace

TEST(FenerjCorpus, RecursiveFactorial) {
  EXPECT_EQ(runInt(R"(
    class Math {
      int fact(int n) {
        if (n <= 1) { 1; } else { n * this.fact(n - 1); };
      }
    }
    { let Math m = new Math(); m.fact(10); }
  )"),
            3628800);
}

TEST(FenerjCorpus, MutualRecursionEvenOdd) {
  EXPECT_EQ(runInt(R"(
    class Parity {
      int isEven(int n) {
        if (n == 0) { 1; } else { this.isOdd(n - 1); };
      }
      int isOdd(int n) {
        if (n == 0) { 0; } else { this.isEven(n - 1); };
      }
    }
    { let Parity p = new Parity(); p.isEven(41) * 10 + p.isOdd(41); }
  )"),
            1); // 41 is odd: isEven=0, isOdd=1.
}

TEST(FenerjCorpus, LinkedChainOfObjects) {
  EXPECT_EQ(runInt(R"(
    class Node {
      Node next;
      @approx int weight;
      int depth() {
        if (this.next == null) { 1; } else { 1 + this.next.depth(); };
      }
    }
    {
      let Node head = new Node();
      let Node a = new Node();
      let Node b = new Node();
      head.next := a;
      a.next := b;
      head.weight := 10;
      a.weight := 20;
      b.weight := 30;
      let @approx int total = head.weight + a.weight + b.weight;
      head.depth() * 100 + endorse(total);
    }
  )"),
            360); // depth 3 -> 300, total 60.
}

TEST(FenerjCorpus, FloatSetPaperExampleBothInstances) {
  // Section 2.5.2's FloatSet, complete: the approximate instance averages
  // only half the elements via the approx overload.
  const char *Source = R"(
    class FloatSet {
      @context float[] nums;
      int init(int n) {
        this.nums := new @context float[n];
        let int i = 0;
        while (i < n) { this.nums[i] := cast<@context float>(i); i = i + 1; };
        0;
      }
      float mean() precise {
        let float total = 0.0;
        let int i = 0;
        while (i < this.nums.length) { total = total + this.nums[i]; i = i + 1; };
        total / cast<float>(this.nums.length);
      }
      @approx float mean() approx {
        let @approx float total = 0.0;
        let int i = 0;
        while (i < this.nums.length) { total = total + this.nums[i]; i = i + 2; };
        2.0 * total / cast<@approx float>(this.nums.length);
      }
    }
    {
      let @precise FloatSet p = new @precise FloatSet();
      let @approx FloatSet a = new @approx FloatSet();
      p.init(8);
      a.init(8);
      let float pm = p.mean();
      let @approx float am = a.mean();
      cast<int>(pm * 10.0) * 100 + cast<int>(endorse(am) * 10.0);
    }
  )";
  // Precise mean of 0..7 = 3.5 -> 35; approx mean over {0,2,4,6} = 3.0
  // -> 30.
  EXPECT_EQ(runInt(Source), 3530);
}

TEST(FenerjCorpus, ResilientPhaseThenPreciseChecksum) {
  // The paper's application pattern (Section 2.2) in FEnerJ: blur an
  // approximate buffer, endorse it once, checksum precisely. Under full
  // perturbation the checksum input changes but the checksum *logic*
  // stays intact (no trap, integer result).
  const char *Source = R"({
    let @approx int[] img = new @approx int[32];
    let int i = 0;
    while (i < img.length) { img[i] := i * 7 % 50; i = i + 1; };
    i = 1;
    while (i < img.length - 1) {
      img[i] := (img[i - 1] + img[i] + img[i + 1]) / 3;
      i = i + 1;
    };
    let int sum = 0;
    i = 0;
    while (i < img.length) {
      let int pixel = endorse(img[i]);
      sum = (sum + pixel) % 65521;
      i = i + 1;
    };
    sum;
  })";
  RunOutcome Precise = runProgram(Source);
  ASSERT_FALSE(Precise.Result.Trapped);
  RandomPerturber Perturb(5, 1.0);
  RunOutcome Perturbed = runProgram(Source, &Perturb);
  ASSERT_FALSE(Perturbed.Result.Trapped) << Perturbed.Result.TrapMessage;
  // Both runs complete with an int checksum; the values differ because
  // the *image* was endorsed after degradation.
  EXPECT_EQ(Perturbed.Result.Result.K, Value::Kind::Int);
}

TEST(FenerjCorpus, SubclassOverridesAndFieldShadowingFree) {
  EXPECT_EQ(runInt(R"(
    class Shape {
      int area() { 0; }
    }
    class Square extends Shape {
      int side;
      int area() { this.side * this.side; }
    }
    class DoubleSquare extends Square {
      int area() { this.side * this.side * 2; }
    }
    {
      let Shape s = new DoubleSquare();
      cast<DoubleSquare>(s).side := 5;
      s.area();
    }
  )"),
            50);
}

TEST(FenerjCorpus, ApproxInstanceGraphKeepsPreciseSpine) {
  // An object graph where the *references* stay precise while payloads
  // are context-dependent: perturbation cannot change the structure.
  const char *Source = R"(
    class Tree {
      @approx Tree left;
      @approx Tree right;
      @context int value;
      int size() {
        let int l = if (this.left == null) { 0; } else { this.left.size(); };
        let int r = if (this.right == null) { 0; } else { this.right.size(); };
        1 + l + r;
      }
    }
    {
      let @approx Tree root = new @approx Tree();
      root.left := new @approx Tree();
      root.right := new @approx Tree();
      root.left.left := new @approx Tree();
      root.value := 1;
      root.left.value := 2;
      root.size();
    }
  )";
  EXPECT_EQ(runInt(Source), 4);
  RandomPerturber Perturb(11, 1.0);
  RunOutcome Perturbed = runProgram(Source, &Perturb);
  ASSERT_FALSE(Perturbed.Result.Trapped) << Perturbed.Result.TrapMessage;
  EXPECT_EQ(Perturbed.Result.Result.I, 4); // Structure is precise.
}

TEST(FenerjCorpus, FuelProtectsAgainstRunawayRecursion) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(R"(
    class Loop { int go(int n) { this.go(n + 1); } }
    { let Loop l = new Loop(); l.go(0); }
  )",
                                        Table, Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.str();
  InterpOptions Options;
  Options.Fuel = 100000;
  Interpreter Interp(*Prog, Table, Options);
  EvalResult Result = Interp.run();
  EXPECT_TRUE(Result.Trapped);
}
