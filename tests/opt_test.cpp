//===- tests/opt_test.cpp - Optimizer and translation validator ----------===//
//
// Unit coverage for src/analysis/opt/: dominator tree and phi placement
// on hand-built graphs, each pass on small assembled programs, and the
// translation validator — including the mutation test the pipeline's
// safety story rests on: a rewrite that moves an `.a` operation across
// an `endorse` must be rejected.
//
//===----------------------------------------------------------------------===//

#include "analysis/opt/ir.h"
#include "analysis/opt/passes.h"
#include "analysis/opt/pipeline.h"
#include "analysis/opt/ssa.h"
#include "analysis/validate.h"
#include "isa/assembler.h"
#include "isa/verifier.h"

#include <cstdint>
#include <cstring>
#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::analysis;
using namespace enerj::analysis::opt;
using enerj::isa::Instruction;
using enerj::isa::Opcode;

namespace {

/// A bare adjacency-list graph satisfying the Graph concept the
/// dominator-tree and phi-placement templates are written against.
struct TestGraph {
  std::vector<std::vector<unsigned>> S, P;

  explicit TestGraph(std::initializer_list<std::pair<unsigned, unsigned>>
                         Edges) {
    unsigned N = 0;
    for (auto [From, To] : Edges)
      N = std::max(N, std::max(From, To) + 1);
    S.resize(N);
    P.resize(N);
    for (auto [From, To] : Edges) {
      S[From].push_back(To);
      P[To].push_back(From);
    }
  }

  unsigned blockCount() const { return static_cast<unsigned>(S.size()); }
  const std::vector<unsigned> &succs(unsigned B) const { return S[B]; }
  const std::vector<unsigned> &preds(unsigned B) const { return P[B]; }
};

isa::IsaProgram assembleOk(std::string_view Source) {
  std::vector<std::string> Errors;
  std::optional<isa::IsaProgram> Program = isa::assemble(Source, Errors);
  EXPECT_TRUE(Program.has_value());
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  return Program.value_or(isa::IsaProgram{});
}

/// Assembles, optimizes with the default pipeline, and returns the
/// report; \p Program is left optimized.
OptReport optimize(isa::IsaProgram &Program) {
  OptReport Report = optimizeProgram(Program);
  EXPECT_TRUE(Report.Ok) << Report.Error;
  for (const PassReport &Pass : Report.Passes)
    EXPECT_TRUE(Pass.Accepted)
        << passName(Pass.Kind) << ": " << Pass.RejectReason;
  return Report;
}

} // namespace

//===----------------------------------------------------------------------===//
// Dominator tree and frontiers
//===----------------------------------------------------------------------===//

TEST(DomTree, Diamond) {
  // 0 -> {1,2} -> 3
  TestGraph G{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  DomTree T = computeDomTree(G);
  EXPECT_EQ(T.Idom[0], 0u);
  EXPECT_EQ(T.Idom[1], 0u);
  EXPECT_EQ(T.Idom[2], 0u);
  EXPECT_EQ(T.Idom[3], 0u); // The merge is dominated by the fork only.
  EXPECT_TRUE(T.dominates(0, 3));
  EXPECT_FALSE(T.dominates(1, 3));
  EXPECT_FALSE(T.dominates(2, 1));

  std::vector<std::vector<unsigned>> Df = dominanceFrontiers(G, T);
  EXPECT_EQ(Df[1], (std::vector<unsigned>{3}));
  EXPECT_EQ(Df[2], (std::vector<unsigned>{3}));
  EXPECT_TRUE(Df[0].empty());
  EXPECT_TRUE(Df[3].empty());
}

TEST(DomTree, LoopWithUnreachableBlock) {
  // 0 -> 1 <-> 2, 1 -> 3; block 4 is unreachable.
  TestGraph G{{0, 1}, {1, 2}, {2, 1}, {1, 3}, {4, 3}};
  DomTree T = computeDomTree(G);
  EXPECT_EQ(T.Idom[2], 1u);
  EXPECT_EQ(T.Idom[3], 1u);
  EXPECT_FALSE(T.reachable(4));
  EXPECT_TRUE(T.dominates(1, 2));
  EXPECT_FALSE(T.dominates(2, 3));
  // The loop header is in its own frontier (back edge).
  std::vector<std::vector<unsigned>> Df = dominanceFrontiers(G, T);
  EXPECT_EQ(Df[2], (std::vector<unsigned>{1}));
}

TEST(PhiPlacement, PrunedVsMinimal) {
  // Diamond with a def of the variable in block 1 only.
  TestGraph G{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  DomTree T = computeDomTree(G);
  std::vector<std::vector<unsigned>> Df = dominanceFrontiers(G, T);

  // Unpruned (empty LiveIn): the merge gets a phi.
  std::vector<unsigned> Minimal = placePhis(G, T, Df, {0, 1}, {});
  EXPECT_EQ(Minimal, (std::vector<unsigned>{3}));

  // Pruned with the variable dead at the merge: no phi.
  std::vector<bool> Dead(G.blockCount(), false);
  EXPECT_TRUE(placePhis(G, T, Df, {0, 1}, Dead).empty());

  // Pruned with it live at the merge: phi reappears.
  std::vector<bool> Live(G.blockCount(), false);
  Live[3] = true;
  EXPECT_EQ(placePhis(G, T, Df, {0, 1}, Live),
            (std::vector<unsigned>{3}));
}

//===----------------------------------------------------------------------===//
// IR round trip
//===----------------------------------------------------------------------===//

TEST(OptIr, BuildEmitRoundTripIsIdentity) {
  isa::IsaProgram P = assembleOk(R"(
    .data 4
    .adata 4
    li r1, 0
    li r2, 10
  loop:
    addi r1, r1, 1
    blt r1, r2, loop
    sw r1, r0, 0
    halt
  )");
  isa::IsaProgram Out = emitProgram(buildOptProgram(P));
  ASSERT_EQ(Out.Instructions.size(), P.Instructions.size());
  for (size_t I = 0; I < P.Instructions.size(); ++I) {
    EXPECT_EQ(Out.Instructions[I].Op, P.Instructions[I].Op) << I;
    EXPECT_EQ(Out.Instructions[I].Imm, P.Instructions[I].Imm) << I;
  }
  EXPECT_EQ(Out.PreciseWords, P.PreciseWords);
  EXPECT_EQ(Out.ApproxWords, P.ApproxWords);
}

//===----------------------------------------------------------------------===//
// Individual passes
//===----------------------------------------------------------------------===//

TEST(OptPasses, ConstPropFoldsPreciseChains) {
  isa::IsaProgram P = assembleOk(R"(
    .data 4
    li r1, 6
    li r2, 7
    mul r3, r1, r2
    sw r3, r0, 0
    halt
  )");
  OptProgram Prog = buildOptProgram(P);
  OptProgram Before = Prog;
  PassOutcome Out = runPass(Prog, PassKind::ConstProp);
  EXPECT_TRUE(Out.Changed);
  ValidationResult R = validateRewrite(Before, Prog, Out.Facts);
  EXPECT_TRUE(R.Ok) << R.Error;
  // The multiply became li r3, 42.
  const Instruction &Folded = Prog.Blocks[0].Body[2];
  EXPECT_EQ(Folded.Op, Opcode::Li);
  EXPECT_EQ(Folded.Imm, 42);
}

TEST(OptPasses, ConstPropNeverFoldsApproxOps) {
  isa::IsaProgram P = assembleOk(R"(
    .adata 4
    li r16, 6
    li r17, 7
    mul.a r18, r16, r17
    endorse r1, r18
    sw r1, r0, 0
    .data 4
    halt
  )");
  OptProgram Prog = buildOptProgram(P);
  PassOutcome Out = runPass(Prog, PassKind::ConstProp);
  // Whatever else it does, the .a multiply must survive unfolded.
  bool SawApproxMul = false;
  for (const Instruction &I : Prog.Blocks[0].Body)
    SawApproxMul |= I.Op == Opcode::Mul && I.Approx;
  EXPECT_TRUE(SawApproxMul);
  (void)Out;
}

TEST(OptPasses, CopyPropChasesMoveChains) {
  isa::IsaProgram P = assembleOk(R"(
    .data 4
    li r1, 5
    mv r2, r1
    mv r3, r2
    add r4, r3, r3
    sw r4, r0, 0
    halt
  )");
  OptProgram Prog = buildOptProgram(P);
  OptProgram Before = Prog;
  PassOutcome Out = runPass(Prog, PassKind::CopyProp);
  EXPECT_TRUE(Out.Changed);
  ValidationResult R = validateRewrite(Before, Prog, Out.Facts);
  EXPECT_TRUE(R.Ok) << R.Error;
  // The add now reads the chain's root.
  const Instruction &Add = Prog.Blocks[0].Body[3];
  EXPECT_EQ(Add.Ra, 1u);
  EXPECT_EQ(Add.Rb, 1u);
}

TEST(OptPasses, CseMergesPreciseButNotApprox) {
  isa::IsaProgram P = assembleOk(R"(
    .data 4
    .adata 4
    li r1, 3
    li r2, 4
    add r3, r1, r2
    add r4, r1, r2
    sw r3, r0, 0
    sw r4, r0, 1
    add.a r18, r16, r17
    add.a r19, r16, r17
    fadd f3, f1, f2
    fadd f4, f2, f1
    halt
  )");
  OptProgram Prog = buildOptProgram(P);
  OptProgram Before = Prog;
  PassOutcome Out = runPass(Prog, PassKind::Cse);
  EXPECT_TRUE(Out.Changed);
  ValidationResult R = validateRewrite(Before, Prog, Out.Facts);
  EXPECT_TRUE(R.Ok) << R.Error;
  std::vector<Instruction> &Body = Prog.Blocks[0].Body;
  // Second precise add became a move of the first.
  EXPECT_EQ(Body[3].Op, Opcode::Mv);
  EXPECT_EQ(Body[3].Ra, 3u);
  // The .a pair is untouched: approximate ops never merge (each one is
  // an independent fault site on real hardware).
  EXPECT_EQ(Body[6].Op, Opcode::Add);
  EXPECT_TRUE(Body[6].Approx);
  EXPECT_EQ(Body[7].Op, Opcode::Add);
  EXPECT_TRUE(Body[7].Approx);
  // FP is not commutativity-canonicalized, so fadd f1,f2 != fadd f2,f1.
  EXPECT_EQ(Body[8].Op, Opcode::Fadd);
  EXPECT_EQ(Body[9].Op, Opcode::Fadd);
}

TEST(OptPasses, EndorseElimMergesDuplicateGates) {
  isa::IsaProgram P = assembleOk(R"(
    .data 4
    .adata 4
    add.a r18, r16, r17
    endorse r1, r18
    endorse r2, r18
    sw r1, r0, 0
    sw r2, r0, 1
    halt
  )");
  OptProgram Prog = buildOptProgram(P);
  OptProgram Before = Prog;
  PassOutcome Out = runPass(Prog, PassKind::EndorseElim);
  EXPECT_TRUE(Out.Changed);
  EXPECT_EQ(Out.Rewritten, 1u);
  ValidationResult R = validateRewrite(Before, Prog, Out.Facts);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(Prog.Blocks[0].Body[2].Op, Opcode::Mv);
  EXPECT_EQ(Prog.Blocks[0].Body[2].Ra, 1u);
}

TEST(OptPasses, EndorseElimRespectsInterveningApproxWrite) {
  // The approximate value changes between the two endorsements: they
  // gate different values and must both survive.
  isa::IsaProgram P = assembleOk(R"(
    .data 4
    .adata 4
    endorse r1, r18
    add.a r18, r18, r16
    endorse r2, r18
    sw r1, r0, 0
    sw r2, r0, 1
    halt
  )");
  OptProgram Prog = buildOptProgram(P);
  PassOutcome Out = runPass(Prog, PassKind::EndorseElim);
  EXPECT_FALSE(Out.Changed);
  EXPECT_EQ(Prog.Blocks[0].Body[0].Op, Opcode::Endorse);
  EXPECT_EQ(Prog.Blocks[0].Body[2].Op, Opcode::Endorse);
}

TEST(OptPasses, DceRemovesDeadPureCodeOnly) {
  isa::IsaProgram P = assembleOk(R"(
    .data 4
    li r1, 1
    add r2, r1, r1
    mul r3, r2, r2
    lw r4, r0, 0
    sw r1, r0, 1
    halt
  )");
  // r2/r3 are dead (never stored, dead at halt only through the
  // all-live exit boundary... they are live there, so nothing dies).
  OptProgram Prog = buildOptProgram(P);
  PassOutcome Out = runPass(Prog, PassKind::Dce);
  // Every register is live at program exit (the machine state is
  // observable), so straight-line code with no redefinitions keeps
  // everything.
  EXPECT_FALSE(Out.Changed);

  // Redefine r2/r3 before the end and the first defs become dead; the
  // load of r4 must still survive (removing it would drop a trap).
  isa::IsaProgram P2 = assembleOk(R"(
    .data 4
    li r1, 1
    add r2, r1, r1
    mul r3, r2, r2
    lw r4, r0, 0
    li r2, 0
    li r3, 0
    li r4, 9
    sw r1, r0, 1
    halt
  )");
  OptProgram Prog2 = buildOptProgram(P2);
  OptProgram Before2 = Prog2;
  PassOutcome Out2 = runPass(Prog2, PassKind::Dce);
  EXPECT_TRUE(Out2.Changed);
  EXPECT_EQ(Out2.Removed, 2u); // add and mul die; lw stays.
  ValidationResult R = validateRewrite(Before2, Prog2, Out2.Facts);
  EXPECT_TRUE(R.Ok) << R.Error;
  bool SawLoad = false;
  for (const Instruction &I : Prog2.Blocks[0].Body)
    SawLoad |= I.Op == Opcode::Lw;
  EXPECT_TRUE(SawLoad);
}

//===----------------------------------------------------------------------===//
// Translation validator
//===----------------------------------------------------------------------===//

TEST(Validator, AcceptsTheIdentityRewrite) {
  isa::IsaProgram P = assembleOk(R"(
    .data 2
    .adata 2
    li r1, 1
    add.a r17, r16, r16
    endorse r2, r17
    sw r2, r0, 0
    halt
  )");
  OptProgram Prog = buildOptProgram(P);
  ValidationResult R = validateRewrite(Prog, Prog, {});
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(Validator, RejectsMovingApproxOpAcrossEndorse) {
  // The required mutation test: a "pass" that sinks an `.a` operation
  // below the endorse that was supposed to gate its result. The
  // endorsed (precise) value changes from f(x) to x, which the
  // validator must detect as a live-out mismatch.
  isa::IsaProgram Orig = assembleOk(R"(
    .data 2
    .adata 2
    add.a r18, r16, r17
    endorse r1, r18
    sw r1, r0, 0
    halt
  )");
  isa::IsaProgram Bad = assembleOk(R"(
    .data 2
    .adata 2
    endorse r1, r18
    add.a r18, r16, r17
    sw r1, r0, 0
    halt
  )");
  ValidationResult R =
      validateRewrite(buildOptProgram(Orig), buildOptProgram(Bad), {});
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

TEST(Validator, ApproxMergeIsNoneSoundButPassesRefuseIt) {
  // Division of labor: two textually identical `.a` ops denote the
  // same *uninterpreted function* term, so merging them preserves the
  // level-None semantics and the validator accepts the rewrite. But
  // they are distinct fault sites under approximation, so the passes
  // themselves never perform this merge (CSE skips `.a` defs), and
  // that refusal is what this test pins down.
  isa::IsaProgram Orig = assembleOk(R"(
    .data 4
    .adata 2
    add.a r18, r16, r17
    endorse r1, r18
    add.a r19, r16, r17
    endorse r2, r19
    sw r1, r0, 0
    sw r2, r0, 1
    halt
  )");
  // Model the buggy CSE by hand: replace the second `.a` add with a
  // move off the first one's destination ("they compute the same
  // thing, reuse it").
  OptProgram Merged = buildOptProgram(Orig);
  Instruction &Second = Merged.Blocks[0].Body[2];
  Second.Op = Opcode::Mv;
  Second.Approx = false;
  Second.Rd = 19;
  Second.Ra = 18;
  Second.Rb = 0;
  ValidationResult R =
      validateRewrite(buildOptProgram(Orig), Merged, {});
  EXPECT_TRUE(R.Ok) << R.Error; // None-sound: same term graph.

  // The optimizer never proposes it: CSE leaves both `.a` adds alone.
  OptProgram Prog = buildOptProgram(Orig);
  (void)runPass(Prog, PassKind::Cse);
  EXPECT_EQ(Prog.Blocks[0].Body[2].Op, Opcode::Add);
  EXPECT_TRUE(Prog.Blocks[0].Body[2].Approx);
}

TEST(Validator, RejectsDroppedStore) {
  isa::IsaProgram Orig = assembleOk(R"(
    .data 2
    li r1, 7
    sw r1, r0, 0
    sw r1, r0, 1
    halt
  )");
  OptProgram Broken = buildOptProgram(Orig);
  Broken.Blocks[0].Body.pop_back(); // Drop the second store.
  ValidationResult R =
      validateRewrite(buildOptProgram(Orig), Broken, {});
  EXPECT_FALSE(R.Ok);
}

TEST(Validator, RejectsUnprovenEntryFact) {
  isa::IsaProgram Orig = assembleOk(R"(
    .data 2
    lw r1, r0, 0
    sw r1, r0, 1
    halt
  )");
  OptProgram Prog = buildOptProgram(Orig);
  // Claim "r1 == 5 at block 0 entry" — false (r1 is zero-initialized),
  // and unprovable.
  BlockFacts Facts(Prog.Blocks.size());
  Facts[0].push_back({/*Reg=*/1, /*IsConst=*/true, /*Bits=*/5, 0});
  ValidationResult R = validateRewrite(Prog, Prog, Facts);
  EXPECT_FALSE(R.Ok);
}

TEST(Validator, FoldPreciseOpMatchesMachineSemantics) {
  auto Bits = [](int64_t V) { return static_cast<uint64_t>(V); };
  // Wrapping add at the boundary.
  auto Sum = foldPreciseOp(Opcode::Add,
                           {Bits(INT64_MAX), Bits(1)});
  ASSERT_TRUE(Sum.has_value());
  EXPECT_EQ(static_cast<int64_t>(*Sum), INT64_MIN);
  // Division by zero must not fold (it traps at run time).
  EXPECT_FALSE(foldPreciseOp(Opcode::Div, {Bits(1), Bits(0)}).has_value());
  EXPECT_FALSE(foldPreciseOp(Opcode::Rem, {Bits(1), Bits(0)}).has_value());
  // Saturating cvti.
  double Big = 1e300;
  uint64_t BigBits;
  static_assert(sizeof(BigBits) == sizeof(Big), "");
  std::memcpy(&BigBits, &Big, sizeof(Big));
  auto Sat = foldPreciseOp(Opcode::Cvti, {BigBits});
  ASSERT_TRUE(Sat.has_value());
  EXPECT_EQ(static_cast<int64_t>(*Sat), 9223372036854775807LL);
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

TEST(OptPipeline, RejectsUnverifiableInput) {
  // Approximate value flowing into a precise destination without an
  // endorse: isa::verify refuses it, so the optimizer must too.
  std::vector<std::string> Errors;
  std::optional<isa::IsaProgram> P = isa::assemble(R"(
    .data 2
    .adata 2
    mv r1, r16
    halt
  )",
                                                   Errors);
  ASSERT_TRUE(P.has_value());
  OptReport Report = optimizeProgram(*P);
  EXPECT_FALSE(Report.Ok);
  EXPECT_FALSE(Report.Error.empty());
}

TEST(OptPipeline, EndToEndPreservesVerification) {
  isa::IsaProgram P = assembleOk(R"(
    .data 4
    .adata 4
    li r1, 0
    li r2, 16
    li r3, 3
    li r4, 4
    add r5, r3, r4
    add r6, r3, r4
    sw r5, r0, 0
    sw r6, r0, 1
    li r5, 0
    li r6, 0
  loop:
    add.a r18, r16, r17
    endorse r7, r18
    addi r1, r1, 1
    blt r1, r2, loop
    sw r1, r0, 2
    halt
  )");
  size_t Before = P.Instructions.size();
  OptReport Report = optimize(P);
  EXPECT_GT(Report.totalRewritten() + Report.totalRemoved(), 0u);
  EXPECT_LE(P.Instructions.size(), Before);
  // The optimized output still satisfies the qualifier discipline.
  EXPECT_TRUE(isa::verify(P).empty());
  // The report's energy factor never gets worse than the input's.
  EXPECT_LE(Report.EnergyAfter.factor(),
            Report.EnergyBefore.factor() + 1e-12);
}

TEST(OptPipeline, PassListParsing) {
  std::vector<PassKind> Passes;
  std::string Error;
  EXPECT_TRUE(parsePassList("constprop,dce", Passes, Error)) << Error;
  ASSERT_EQ(Passes.size(), 2u);
  EXPECT_EQ(Passes[0], PassKind::ConstProp);
  EXPECT_EQ(Passes[1], PassKind::Dce);
  EXPECT_FALSE(parsePassList("constprop,nope", Passes, Error));
  EXPECT_FALSE(Error.empty());
}
