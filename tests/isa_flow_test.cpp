//===- tests/isa_flow_test.cpp - Flow-sensitive ISA verifier tests --------===//

#include "analysis/isa_flow.h"
#include "isa/assembler.h"

#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::analysis;

namespace {

isa::IsaProgram assembleOk(std::string_view Source) {
  std::vector<std::string> Errors;
  std::optional<isa::IsaProgram> Program = isa::assemble(Source, Errors);
  EXPECT_TRUE(Program.has_value());
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  return Program ? std::move(*Program) : isa::IsaProgram{};
}

unsigned countKind(const IsaFlowResult &R, IsaWarningKind Kind) {
  unsigned N = 0;
  for (const IsaFlowWarning &W : R.Warnings)
    N += W.Kind == Kind;
  return N;
}

bool hasWarning(const IsaFlowResult &R, IsaWarningKind Kind,
                const char *Fragment) {
  for (const IsaFlowWarning &W : R.Warnings)
    if (W.Kind == Kind && W.Message.find(Fragment) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(IsaFlow, CleanProgramHasNoDiagnostics) {
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    li r1, 0
    li r2, 5
    loop:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
  )"));
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Warnings.empty())
      << R.Warnings[0].str();
}

TEST(IsaFlow, ReachableViolationStaysAnError) {
  IsaFlowResult R = verifyFlow(assembleOk("mv r1, r16\nhalt\n"));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].Message.find("use endorse"), std::string::npos);
}

TEST(IsaFlow, UnreachableViolationDemotesToWarning) {
  // The approx-to-precise move sits behind an unconditional jump: it can
  // never execute, so the flow-sensitive verifier accepts the program
  // but still reports both the dead code and the latent violation.
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    jmp end
    mv r1, r16
    end:
    halt
  )"));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(countKind(R, IsaWarningKind::UnreachableCode), 1u);
  EXPECT_TRUE(hasWarning(R, IsaWarningKind::UnreachableViolation,
                         "use endorse"));
}

TEST(IsaFlow, UnreachableCodeReportedOncePerBlock) {
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    jmp end
    li r1, 1
    li r2, 2
    li r3, 3
    end:
    halt
  )"));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(countKind(R, IsaWarningKind::UnreachableCode), 1u);
}

TEST(IsaFlow, DeadStoreDetected) {
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    li r1, 1
    li r1, 2
    halt
  )"));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(countKind(R, IsaWarningKind::DeadStore), 1u);
  EXPECT_TRUE(hasWarning(R, IsaWarningKind::DeadStore, "r1"));
}

TEST(IsaFlow, StoreReadOnOnePathIsNotDead) {
  // The first li survives along the branch path, so it is live.
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    .data 4
    li r1, 1
    beq r2, r0, skip
    sw r1, r0, 0
    skip:
    li r1, 2
    halt
  )"));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(countKind(R, IsaWarningKind::DeadStore), 0u);
}

TEST(IsaFlow, RegistersAreLiveAtExit) {
  // Machine state is observable after halt (tests read registers), so a
  // final write is never a dead store.
  IsaFlowResult R = verifyFlow(assembleOk("li r1, 1\nhalt\n"));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(countKind(R, IsaWarningKind::DeadStore), 0u);
}

TEST(IsaFlow, UninitializedReadDetected) {
  IsaFlowResult R = verifyFlow(assembleOk("add r1, r2, r3\nhalt\n"));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(countKind(R, IsaWarningKind::UninitializedRead), 2u);
  EXPECT_TRUE(
      hasWarning(R, IsaWarningKind::UninitializedRead, "r2"));
}

TEST(IsaFlow, ZeroRegistersAreAlwaysInitialized) {
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    add r1, r0, r0
    fadd f1, f0, f0
    halt
  )"));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(countKind(R, IsaWarningKind::UninitializedRead), 0u);
}

TEST(IsaFlow, DefinitionOnOnlyOnePathMayBeUninitialized) {
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    li r1, 1
    beq r1, r0, skip
    li r2, 7
    skip:
    add r3, r2, r1
    halt
  )"));
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(
      hasWarning(R, IsaWarningKind::UninitializedRead, "r2"));
}

TEST(IsaFlow, DefinitionOnBothPathsIsInitialized) {
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    li r1, 1
    beq r1, r0, other
    li r2, 7
    jmp join
    other:
    li r2, 9
    join:
    add r3, r2, r1
    halt
  )"));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(countKind(R, IsaWarningKind::UninitializedRead), 0u);
}

TEST(IsaFlow, LoopCarriedValueIsLiveAndInitialized) {
  // r1 is written before the loop and read around the back edge: neither
  // a dead store nor an uninitialized read.
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    li r1, 0
    li r2, 3
    loop:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
  )"));
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Warnings.empty());
}

TEST(IsaFlow, WarningsAreOrderedByInstruction) {
  IsaFlowResult R = verifyFlow(assembleOk(R"(
    add r1, r2, r3
    li r4, 1
    li r4, 2
    halt
  )"));
  ASSERT_GE(R.Warnings.size(), 2u);
  for (size_t I = 1; I < R.Warnings.size(); ++I)
    EXPECT_LE(R.Warnings[I - 1].InstrIndex, R.Warnings[I].InstrIndex);
}

TEST(IsaFlow, EmptyProgramIsClean) {
  IsaFlowResult R = verifyFlow(isa::IsaProgram{});
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Warnings.empty());
}
