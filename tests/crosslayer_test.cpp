//===- tests/crosslayer_test.cpp - Source-to-ISA lint guarantees ----------===//
//
// The cross-layer contract of the lint pipeline: every well-typed FEnerJ
// program in the example corpus lints without errors, and every program
// the code generator accepts compiles to ISA code that the
// flow-sensitive verifier accepts with zero errors. The second half is
// checked both over the checked-in corpus and property-style over random
// class-free programs.
//
//===----------------------------------------------------------------------===//

#include "analysis/isa_flow.h"
#include "analysis/lint.h"
#include "fenerj/codegen.h"
#include "fenerj/fenerj.h"
#include "isa/assembler.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace enerj;
using namespace enerj::analysis;

namespace {

std::vector<std::string> corpusFiles() {
  // Recursive: the corpus grew subdirectories (apps/, isa/) whose
  // programs must satisfy the same cross-layer guarantees as the
  // top-level examples — a flat iterator silently exempted them.
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(ENERJ_FEJ_DIR))
    if (Entry.path().extension() == ".fej")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

TEST(CrossLayer, CorpusIsNonEmpty) {
  // Guards against a bad ENERJ_FEJ_DIR silently vacuously passing the
  // corpus tests below. The recursive walk must see the top-level
  // examples plus the apps/ and isa/ kernel directories.
  EXPECT_GE(corpusFiles().size(), 20u);
}

TEST(CrossLayer, EveryCorpusProgramLintsWithoutErrors) {
  for (const std::string &Path : corpusFiles()) {
    SCOPED_TRACE(Path);
    std::string Source = slurp(Path);
    fenerj::DiagnosticEngine Diags;
    fenerj::ClassTable Table;
    std::optional<fenerj::Program> Prog =
        fenerj::compile(Source, Table, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    LintResult R = runLint(*Prog, Table, {});
    EXPECT_FALSE(R.hasErrors()) << renderLintText(R, Path);
    // If the program left the source subset the ISA pass must say why
    // instead of silently vouching for unchecked code.
    if (!R.IsaChecked) {
      EXPECT_FALSE(R.IsaSkipReason.empty());
    }
    // --Werror semantics, matching the CI sweep: corpus programs stay
    // warning-free except the two specimens that intentionally carry
    // source-level warnings (and isa-flow warnings, which describe
    // codegen scratch registers, not the source — the CLI exempts them
    // under --Werror for the same reason).
    bool AllowWarnings =
        Path.find("redundant_endorse") != std::string::npos ||
        Path.find("context_launder") != std::string::npos;
    if (!AllowWarnings) {
      for (const LintFinding &F : R.Findings) {
        EXPECT_FALSE(F.Severity == LintSeverity::Warning &&
                     F.Pass != LintPass::IsaFlow)
            << Path << ": " << renderLintText(R, Path);
      }
    }
  }
}

TEST(CrossLayer, EveryCompilableCorpusProgramPassesFlowVerifier) {
  unsigned Compiled = 0;
  for (const std::string &Path : corpusFiles()) {
    SCOPED_TRACE(Path);
    std::string Source = slurp(Path);
    fenerj::DiagnosticEngine Diags;
    fenerj::ClassTable Table;
    std::optional<fenerj::Program> Prog =
        fenerj::compile(Source, Table, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    fenerj::CodegenResult Code = fenerj::compileToIsa(*Prog);
    if (!Code.Ok)
      continue; // Outside the codegen subset; the lint test above
                // already checked the skip reason is reported.
    ++Compiled;
    std::vector<std::string> AsmErrors;
    std::optional<isa::IsaProgram> Binary =
        isa::assemble(Code.Assembly, AsmErrors);
    ASSERT_TRUE(Binary.has_value())
        << (AsmErrors.empty() ? "" : AsmErrors[0]);
    IsaFlowResult Flow = verifyFlow(*Binary);
    for (const isa::VerifyError &E : Flow.Errors)
      ADD_FAILURE() << E.str() << "\n--- assembly ---\n" << Code.Assembly;
  }
  // At least the class-free kernels must reach the ISA layer.
  EXPECT_GE(Compiled, 2u);
}

namespace {

class GeneratedFlow : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(GeneratedFlow, CodegenOutputAlwaysVerifiesCleanly) {
  // Property: whatever the compiler emits for a random class-free
  // program satisfies the flow-sensitive discipline — reachable
  // approx-to-precise moves would be miscompiles.
  fenerj::GeneratorOptions Options;
  Options.Seed = GetParam();
  Options.NumClasses = 0;
  Options.AllowBools = true;
  std::string Source = fenerj::generateProgram(Options);

  fenerj::DiagnosticEngine Diags;
  fenerj::ClassTable Table;
  std::optional<fenerj::Program> Prog =
      fenerj::compile(Source, Table, Diags);
  ASSERT_TRUE(Prog.has_value())
      << Diags.str() << "\n--- source ---\n" << Source;

  fenerj::CodegenResult Code = fenerj::compileToIsa(*Prog);
  if (!Code.Ok &&
      Code.Error.find("approximate floating-point comparisons") !=
          std::string::npos)
    GTEST_SKIP() << "generator hit the documented FP-comparison gap";
  ASSERT_TRUE(Code.Ok) << Code.Error << "\n--- source ---\n" << Source;

  std::vector<std::string> AsmErrors;
  std::optional<isa::IsaProgram> Binary =
      isa::assemble(Code.Assembly, AsmErrors);
  ASSERT_TRUE(Binary.has_value())
      << (AsmErrors.empty() ? "" : AsmErrors[0]) << "\n--- assembly ---\n"
      << Code.Assembly;

  IsaFlowResult Flow = verifyFlow(*Binary);
  for (const isa::VerifyError &E : Flow.Errors)
    ADD_FAILURE() << E.str() << "\n--- source ---\n" << Source
                  << "\n--- assembly ---\n" << Code.Assembly;
  // The whole lint pipeline agrees: no errors on generated programs.
  LintResult R = runLint(*Prog, Table, {});
  EXPECT_FALSE(R.hasErrors()) << renderLintText(R, "generated");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedFlow,
                         ::testing::Range<uint64_t>(900, 950));
