//===- tests/resilience_test.cpp - Resilience runtime unit tests ----------===//
//
// The QoS-guarded recovery layer: policy primitives (degradation ladder,
// output sanity, outcome accounting), the Simulator op-budget watchdog
// (typed TrialAbort, partial stats, self-disarm), fault containment at
// the trial boundary (the regression for the std::terminate bug: a
// throwing application must report a failed trial, never kill the
// process), and the retry / degradation semantics of the policy-aware
// TrialRunner, including honest energy accounting for re-execution.
//
//===----------------------------------------------------------------------===//

#include "harness/trial.h"
#include "resilience/policy.h"
#include "resilience/trial_abort.h"
#include "runtime/simulator.h"
#include "support/rng.h"

#include <cmath>
#include <gtest/gtest.h>
#include <limits>
#include <stdexcept>

using namespace enerj;
using namespace enerj::harness;
using resilience::ResiliencePolicy;
using resilience::TrialOutcome;

namespace {

/// Base test double: numeric output, mean-absolute-difference QoS.
class FakeApp : public apps::Application {
public:
  const char *name() const override { return "fake"; }
  const char *description() const override { return "test double"; }
  const char *qosMetricName() const override {
    return "mean entry difference";
  }
  apps::AnnotationStats annotations() const override { return {}; }
  double qosError(const apps::AppOutput &Precise,
                  const apps::AppOutput &Degraded) const override {
    if (Precise.Numeric.size() != Degraded.Numeric.size())
      return 1.0;
    double Sum = 0.0;
    for (size_t I = 0; I < Precise.Numeric.size(); ++I) {
      double Diff = std::fabs(Precise.Numeric[I] - Degraded.Numeric[I]);
      Sum += std::isfinite(Diff) ? std::min(Diff, 1.0) : 1.0;
    }
    return Precise.Numeric.empty() ? 0.0 : Sum / Precise.Numeric.size();
  }
};

/// Throws from inside the trial whenever a simulator is installed (the
/// precise reference run stays clean).
class ThrowingApp : public FakeApp {
public:
  apps::AppOutput run(uint64_t) const override {
    if (Simulator::current())
      throw std::runtime_error("deliberate trial failure");
    return {{1.0}, {}, {}};
  }
};

/// Spins "forever" under a simulator — the control-flow-corruption
/// stand-in the watchdog exists for. A safety cap keeps the test finite
/// even if the watchdog were broken.
class SpinApp : public FakeApp {
public:
  apps::AppOutput run(uint64_t) const override {
    Simulator *Sim = Simulator::current();
    if (!Sim)
      return {{1.0}, {}, {}};
    for (uint64_t I = 0; I < 100000000ULL; ++I)
      Sim->countPreciseInt();
    return {{-1.0}, {}, {}};
  }
};

/// Produces a non-finite output at Aggressive only; finite (and exactly
/// equal to the precise reference) at every lower ladder level.
class LevelSensitiveApp : public FakeApp {
public:
  apps::AppOutput run(uint64_t) const override {
    Simulator *Sim = Simulator::current();
    if (Sim && Sim->config().Level == ApproxLevel::Aggressive)
      return {{std::numeric_limits<double>::infinity()}, {}, {}};
    return {{1.0}, {}, {}};
  }
};

/// Produces NaN exactly when the simulator's fault stream is the one
/// seeded for a specific attempt — lets a test force "first attempt
/// fails, retry succeeds" deterministically.
class SeedSensitiveApp : public FakeApp {
public:
  explicit SeedSensitiveApp(uint64_t BadSeed) : BadSeed(BadSeed) {}
  apps::AppOutput run(uint64_t) const override {
    Simulator *Sim = Simulator::current();
    if (Sim && Sim->config().Seed == BadSeed)
      return {{std::numeric_limits<double>::quiet_NaN()}, {}, {}};
    return {{1.0}, {}, {}};
  }

private:
  uint64_t BadSeed;
};

} // namespace

//===----------------------------------------------------------------------===//
// Policy primitives
//===----------------------------------------------------------------------===//

TEST(ResiliencePolicy, DegradationLadderIsDeterministic) {
  EXPECT_EQ(resilience::degradeLevel(ApproxLevel::Aggressive),
            ApproxLevel::Medium);
  EXPECT_EQ(resilience::degradeLevel(ApproxLevel::Medium),
            ApproxLevel::Mild);
  EXPECT_EQ(resilience::degradeLevel(ApproxLevel::Mild), ApproxLevel::None);
  EXPECT_EQ(resilience::degradeLevel(ApproxLevel::None), ApproxLevel::None);
}

TEST(ResiliencePolicy, DegradeConfigPreservesEverythingButTheLevel) {
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive,
                                           ErrorMode::SingleBitFlip);
  Config.Seed = 1234;
  Config.EnableDram = false;
  FaultConfig Degraded = resilience::degradeConfig(Config);
  EXPECT_EQ(Degraded.Level, ApproxLevel::Medium);
  EXPECT_EQ(Degraded.Mode, ErrorMode::SingleBitFlip);
  EXPECT_EQ(Degraded.Seed, 1234u);
  EXPECT_FALSE(Degraded.EnableDram);
}

TEST(ResiliencePolicy, OutputSanity) {
  const double Inf = std::numeric_limits<double>::infinity();
  const double NaN = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> Fine = {0.0, -3.5, 1e9};
  std::vector<double> HasNaN = {0.0, NaN};
  std::vector<double> HasInf = {0.0, -Inf};
  EXPECT_TRUE(resilience::outputSane(Fine, 0.0));
  EXPECT_FALSE(resilience::outputSane(HasNaN, 0.0));
  EXPECT_FALSE(resilience::outputSane(HasInf, 0.0));
  // A positive bound additionally rejects large-but-finite values.
  EXPECT_FALSE(resilience::outputSane(Fine, 100.0));
  EXPECT_TRUE(resilience::outputSane(Fine, 1e9));
  // Empty output is vacuously sane.
  EXPECT_TRUE(resilience::outputSane({}, 0.0));
}

TEST(ResiliencePolicy, OutcomeCountsAccounting) {
  resilience::OutcomeCounts Counts;
  Counts.add(TrialOutcome::Ok);
  Counts.add(TrialOutcome::Ok);
  Counts.add(TrialOutcome::Retried);
  Counts.add(TrialOutcome::Degraded);
  Counts.add(TrialOutcome::Aborted);
  Counts.add(TrialOutcome::SloViolated);
  EXPECT_EQ(Counts.Ok, 2u);
  EXPECT_EQ(Counts.total(), 6u);
  EXPECT_EQ(Counts.accepted(), 4u);
  EXPECT_STREQ(resilience::trialOutcomeName(TrialOutcome::SloViolated),
               "sloViolated");
  EXPECT_STREQ(resilience::trialOutcomeName(TrialOutcome::Degraded),
               "degraded");
}

//===----------------------------------------------------------------------===//
// Simulator watchdog
//===----------------------------------------------------------------------===//

TEST(Watchdog, AbortsPastTheOpBudget) {
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
  Config.OpBudgetOps = 10;
  Simulator Sim(Config);
  for (int I = 0; I < 10; ++I)
    Sim.countPreciseInt();
  EXPECT_THROW(Sim.countPreciseInt(), resilience::TrialAbort);
}

TEST(Watchdog, CarriesBudgetAndOpCountAndDisarms) {
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
  Config.OpBudgetOps = 5;
  Simulator Sim(Config);
  try {
    for (int I = 0; I < 100; ++I)
      Sim.countPreciseFp();
    FAIL() << "watchdog never fired";
  } catch (const resilience::TrialAbort &Abort) {
    EXPECT_EQ(Abort.budget(), 5u);
    EXPECT_EQ(Abort.executed(), 6u);
    EXPECT_NE(std::string(Abort.what()).find("budget"), std::string::npos);
  }
  // Partial statistics survive the abort — aborted work is charged.
  EXPECT_EQ(Sim.stats().Ops.PreciseFp, 6u);
  // The watchdog disarmed itself: post-abort operations (unwinding
  // destructors, stats snapshots) never rethrow.
  for (int I = 0; I < 100; ++I)
    EXPECT_NO_THROW(Sim.countPreciseInt());
}

TEST(Watchdog, ZeroBudgetMeansUnlimited) {
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
  Simulator Sim(Config);
  for (int I = 0; I < 10000; ++I)
    EXPECT_NO_THROW(Sim.countPreciseInt());
}

//===----------------------------------------------------------------------===//
// Fault containment at the trial boundary (the std::terminate regression)
//===----------------------------------------------------------------------===//

TEST(TrialContainment, ThrowingTrialNeverKillsThePool) {
  ThrowingApp Bad;
  const apps::Application *Good = apps::findApplication("montecarlo");
  ASSERT_NE(Good, nullptr);
  std::vector<Trial> Trials = {
      {&Bad, FaultConfig::preset(ApproxLevel::Medium), 1},
      {Good, FaultConfig::preset(ApproxLevel::Mild), 1},
  };
  // Parallel: before containment, the escaped exception called
  // std::terminate from the worker thread body.
  std::vector<TrialResult> Results = TrialRunner(2).run(Trials);
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Results[0].Outcome, TrialOutcome::Aborted);
  EXPECT_EQ(Results[0].QosError, 1.0);
  EXPECT_NE(Results[0].Error.find("deliberate"), std::string::npos);
  EXPECT_EQ(Results[1].Outcome, TrialOutcome::Ok);
  EXPECT_TRUE(Results[1].Error.empty());

  // Inline (single-thread) path contains identically.
  std::vector<TrialResult> Serial = TrialRunner(1).run(Trials);
  EXPECT_EQ(Serial[0].Outcome, TrialOutcome::Aborted);
  EXPECT_EQ(Serial[1].Outcome, TrialOutcome::Ok);
}

TEST(TrialContainment, WatchdogAbortIsContainedWithoutAPolicy) {
  // An op budget set directly on the trial's config (no policy layer at
  // all) aborts the spin and is still contained at the boundary.
  SpinApp Spinner;
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
  Config.OpBudgetOps = 1000;
  std::vector<TrialResult> Results =
      TrialRunner(1).run({{&Spinner, Config, 1}});
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0].Outcome, TrialOutcome::Aborted);
  EXPECT_NE(Results[0].Error.find("budget"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Policy-aware execution: retry, degrade, honest energy
//===----------------------------------------------------------------------===//

TEST(ResilientRunner, DisabledPolicyIsByteIdenticalToThePlainPath) {
  const apps::Application *App = apps::findApplication("fft");
  ASSERT_NE(App, nullptr);
  Trial T{App, FaultConfig::preset(ApproxLevel::Mild), 1};
  TrialResult Plain = TrialRunner::runOne(T);
  TrialResult UnderPolicy = TrialRunner::runOne(T, ResiliencePolicy{});
  EXPECT_EQ(Plain.QosError, UnderPolicy.QosError);
  EXPECT_EQ(Plain.Stats.Ops.ApproxFp, UnderPolicy.Stats.Ops.ApproxFp);
  EXPECT_EQ(Plain.Energy.TotalFactor, UnderPolicy.Energy.TotalFactor);
  EXPECT_EQ(UnderPolicy.Outcome, TrialOutcome::Ok);
  EXPECT_EQ(UnderPolicy.Attempts, 1);
}

TEST(ResilientRunner, LaxEnabledPolicyMatchesThePlainMeasurement) {
  // An enabled policy whose contract the first attempt satisfies must
  // not perturb the measurement: same fault stream, same numbers.
  // (montecarlo, not sor: sor's corrupted iterations genuinely diverge
  // to non-finite values at Medium, so the sanity check intervenes.)
  const apps::Application *App = apps::findApplication("montecarlo");
  ASSERT_NE(App, nullptr);
  Trial T{App, FaultConfig::preset(ApproxLevel::Medium), 2};
  ResiliencePolicy Lax;
  Lax.Enabled = true; // Slo 1.0 accepts everything finite.
  TrialResult Plain = TrialRunner::runOne(T);
  TrialResult UnderPolicy = TrialRunner::runOne(T, Lax);
  EXPECT_EQ(Plain.QosError, UnderPolicy.QosError);
  EXPECT_EQ(Plain.Stats.Ops.ApproxInt, UnderPolicy.Stats.Ops.ApproxInt);
  EXPECT_EQ(Plain.Energy.TotalFactor, UnderPolicy.Energy.TotalFactor);
  EXPECT_EQ(UnderPolicy.EffectiveEnergyFactor, Plain.Energy.TotalFactor);
  EXPECT_EQ(UnderPolicy.Attempts, 1);
  EXPECT_EQ(UnderPolicy.Outcome, TrialOutcome::Ok);
}

TEST(ResilientRunner, RetryRecoversWithADecorrelatedFaultStream) {
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
  Config.Seed = 99;
  const uint64_t WorkloadSeed = 7;
  // The first attempt's effective stream seed is mixSeed(config, workload);
  // make exactly that attempt fail.
  SeedSensitiveApp App(mixSeed(Config.Seed, WorkloadSeed));
  ResiliencePolicy Policy;
  Policy.Enabled = true;
  Policy.MaxRetries = 1;
  TrialResult Result =
      TrialRunner::runOne({&App, Config, WorkloadSeed}, Policy);
  EXPECT_EQ(Result.Outcome, TrialOutcome::Retried);
  EXPECT_EQ(Result.Attempts, 2);
  EXPECT_EQ(Result.FinalLevel, ApproxLevel::Medium);
  EXPECT_EQ(Result.QosError, 0.0);
  // Both attempts are charged: effective energy is the two-attempt sum,
  // strictly more than the accepted run alone.
  EXPECT_GT(Result.EffectiveEnergyFactor, Result.Energy.TotalFactor);
}

TEST(ResilientRunner, DegradationLadderRecoversNonFiniteOutput) {
  LevelSensitiveApp App;
  ResiliencePolicy Policy;
  Policy.Enabled = true;
  Policy.MaxRetries = 0;
  TrialResult Result = TrialRunner::runOne(
      {&App, FaultConfig::preset(ApproxLevel::Aggressive), 1}, Policy);
  EXPECT_EQ(Result.Outcome, TrialOutcome::Degraded);
  EXPECT_EQ(Result.Attempts, 2);
  EXPECT_EQ(Result.FinalLevel, ApproxLevel::Medium);
  EXPECT_EQ(Result.QosError, 0.0);
  EXPECT_GT(Result.EffectiveEnergyFactor, Result.Energy.TotalFactor);
}

TEST(ResilientRunner, NoDegradeReportsTheViolation) {
  LevelSensitiveApp App;
  ResiliencePolicy Policy;
  Policy.Enabled = true;
  Policy.MaxRetries = 1;
  Policy.Degrade = false;
  TrialResult Result = TrialRunner::runOne(
      {&App, FaultConfig::preset(ApproxLevel::Aggressive), 1}, Policy);
  // Both permitted attempts produce Inf; without the ladder the trial
  // ends as a recorded violation — worst-case error, never a crash.
  EXPECT_EQ(Result.Outcome, TrialOutcome::SloViolated);
  EXPECT_EQ(Result.Attempts, 2);
  EXPECT_EQ(Result.QosError, 1.0);
  EXPECT_EQ(Result.FinalLevel, ApproxLevel::Aggressive);
}

TEST(ResilientRunner, RunawayTrialAbortsAtEveryRungAndTerminates) {
  SpinApp Spinner;
  ResiliencePolicy Policy;
  Policy.Enabled = true;
  Policy.OpBudget = 1000;
  TrialResult Result = TrialRunner::runOne(
      {&Spinner, FaultConfig::preset(ApproxLevel::Aggressive), 1}, Policy);
  // The spin trips the watchdog at Aggressive, Medium, Mild, and None:
  // four bounded attempts, then a clean Aborted verdict.
  EXPECT_EQ(Result.Outcome, TrialOutcome::Aborted);
  EXPECT_EQ(Result.Attempts, 4);
  EXPECT_EQ(Result.QosError, 1.0);
  EXPECT_NE(Result.Error.find("budget"), std::string::npos);
  // The aborted attempts' partial work is still charged.
  EXPECT_GT(Result.EffectiveEnergyFactor, 0.0);
  EXPECT_GT(Result.Stats.Ops.PreciseInt, 0u);
}

TEST(ResilientRunner, RealAppDegradesUnderATightSlo) {
  // The acceptance scenario: a real Table 3 application at Aggressive
  // with an SLO it cannot meet must recover down the ladder and
  // complete — deterministically.
  const apps::Application *App = apps::findApplication("fft");
  ASSERT_NE(App, nullptr);
  ResiliencePolicy Policy;
  Policy.Enabled = true;
  Policy.Slo = 1e-9;
  TrialResult Result = TrialRunner::runOne(
      {App, FaultConfig::preset(ApproxLevel::Aggressive), 1}, Policy);
  EXPECT_EQ(Result.Outcome, TrialOutcome::Degraded);
  EXPECT_LE(Result.QosError, 1e-9);
  EXPECT_NE(Result.FinalLevel, ApproxLevel::Aggressive);
  EXPECT_GT(Result.Attempts, 1);
  EXPECT_GT(Result.EffectiveEnergyFactor, Result.Energy.TotalFactor);
}
