//===- tests/harness_stats_test.cpp - TrialStats and eval JSON ------------===//
//
// Unit tests for the per-cell aggregation against hand-computed
// fixtures, including the degenerate one-seed and all-identical-seed
// cases, plus the pinned `eval --json` schema (the harness's contract
// with CI, like the lint JSON).
//
//===----------------------------------------------------------------------===//

#include "harness/eval.h"
#include "harness/stats.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::harness;

TEST(TrialStats, EmptyInputIsAllZero) {
  TrialStats S = TrialStats::over({});
  EXPECT_EQ(S.Count, 0);
  EXPECT_EQ(S.Mean, 0.0);
  EXPECT_EQ(S.Stddev, 0.0);
  EXPECT_EQ(S.Min, 0.0);
  EXPECT_EQ(S.Max, 0.0);
  EXPECT_EQ(S.Ci95Half, 0.0);
}

TEST(TrialStats, SingleSeedHasZeroSpread) {
  TrialStats S = TrialStats::over({2.5});
  EXPECT_EQ(S.Count, 1);
  EXPECT_EQ(S.Mean, 2.5);
  EXPECT_EQ(S.Stddev, 0.0);
  EXPECT_EQ(S.Min, 2.5);
  EXPECT_EQ(S.Max, 2.5);
  EXPECT_EQ(S.Ci95Half, 0.0);
}

TEST(TrialStats, AllIdenticalSeedsHaveZeroSpread) {
  TrialStats S = TrialStats::over({3.0, 3.0, 3.0, 3.0});
  EXPECT_EQ(S.Count, 4);
  EXPECT_EQ(S.Mean, 3.0);
  EXPECT_EQ(S.Stddev, 0.0);
  EXPECT_EQ(S.Min, 3.0);
  EXPECT_EQ(S.Max, 3.0);
  EXPECT_EQ(S.Ci95Half, 0.0);
}

TEST(TrialStats, HandComputedFixture) {
  // Samples 1, 2, 3, 4: mean 2.5; squared deviations 2.25 + 0.25 +
  // 0.25 + 2.25 = 5; sample variance 5/3.
  TrialStats S = TrialStats::over({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(S.Count, 4);
  EXPECT_DOUBLE_EQ(S.Mean, 2.5);
  EXPECT_DOUBLE_EQ(S.Stddev, std::sqrt(5.0 / 3.0));
  EXPECT_EQ(S.Min, 1.0);
  EXPECT_EQ(S.Max, 4.0);
  EXPECT_DOUBLE_EQ(S.Ci95Half, 1.96 * std::sqrt(5.0 / 3.0) / 2.0);
}

TEST(TrialStats, MeanMatchesSerialAccumulationOrder) {
  // The mean must be the left-to-right sum divided by n — the bitwise
  // contract with the historical serial loops.
  std::vector<double> Samples = {0.1, 0.2, 0.3, 0.7, 0.05};
  double Sum = 0.0;
  for (double S : Samples)
    Sum += S;
  EXPECT_EQ(TrialStats::over(Samples).Mean, Sum / Samples.size());
}

namespace {

/// A one-app, one-level, two-seed grid with clean (exactly
/// representable) numbers, built by hand so the golden string below
/// pins the schema rather than the simulator.
EvalResult fixtureResult() {
  const apps::Application *App = apps::findApplication("montecarlo");
  EXPECT_NE(App, nullptr);
  EvalResult Result;
  Result.Apps = {App};
  Result.Levels = {ApproxLevel::Mild};
  Result.Seeds = 2;
  Result.Policy.Enabled = true;
  Result.Policy.Slo = 0.25;
  Result.Policy.MaxRetries = 2;
  Result.Policy.OpBudget = 1000;
  EvalCell Cell;
  Cell.App = App;
  Cell.Level = ApproxLevel::Mild;
  Cell.Qos = TrialStats::over({0.25, 0.75});
  Cell.EnergyFactor = TrialStats::over({0.5, 0.5});
  Cell.EffectiveEnergy = TrialStats::over({0.5, 0.5});
  Cell.Outcomes.Ok = 1;
  Cell.Outcomes.Retried = 1;
  Cell.Retries = 1;
  Cell.Seed1.QosError = 0.25;
  Cell.Seed1.Stats.Ops.PreciseInt = 10;
  Cell.Seed1.Stats.Ops.ApproxInt = 20;
  Cell.Seed1.Stats.Ops.PreciseFp = 30;
  Cell.Seed1.Stats.Ops.ApproxFp = 40;
  Cell.Seed1.Stats.Ops.TimingErrors = 5;
  Cell.Seed1.Stats.Storage.SramPrecise = 1.5;
  Cell.Seed1.Stats.Storage.SramApprox = 2.5;
  Cell.Seed1.Stats.Storage.DramPrecise = 3.5;
  Cell.Seed1.Stats.Storage.DramApprox = 4.5;
  Result.Cells.push_back(Cell);
  return Result;
}

} // namespace

TEST(EvalRender, JsonSchemaIsStable) {
  // Key names, key order, and the nesting are the tool's contract with
  // CI; only a version bump may change them. Version 2 added the
  // top-level "policy" object and the per-cell "effectiveEnergy",
  // "outcomes", and "retries" fields. Samples 0.25/0.75: mean 0.5,
  // stddev sqrt(0.125), ci95 = 1.96 * stddev / sqrt(2) (0.49 up to
  // rounding).
  std::string Expected =
      "{\"tool\":\"enerj-eval\",\"version\":2,\"seeds\":2,"
      "\"policy\":{\"enabled\":true,\"slo\":0.25,\"outputBound\":0,"
      "\"maxRetries\":2,\"opBudget\":1000,\"degrade\":true},"
      "\"levels\":[\"mild\"],\"apps\":[{\"name\":\"montecarlo\","
      "\"cells\":[{\"level\":\"mild\","
      "\"qos\":{\"count\":2,\"mean\":0.5,"
      "\"stddev\":0.35355339059327379,\"min\":0.25,\"max\":0.75,"
      "\"ci95\":0.48999999999999994},"
      "\"energy\":{\"count\":2,\"mean\":0.5,\"stddev\":0,\"min\":0.5,"
      "\"max\":0.5,\"ci95\":0},"
      "\"effectiveEnergy\":{\"count\":2,\"mean\":0.5,\"stddev\":0,"
      "\"min\":0.5,\"max\":0.5,\"ci95\":0},"
      "\"outcomes\":{\"ok\":1,\"sloViolated\":0,\"aborted\":0,"
      "\"retried\":1,\"degraded\":0},\"retries\":1,"
      "\"ops\":{\"preciseInt\":10,\"approxInt\":20,\"preciseFp\":30,"
      "\"approxFp\":40,\"timingErrors\":5},"
      "\"storage\":{\"sramPrecise\":1.5,\"sramApprox\":2.5,"
      "\"dramPrecise\":3.5,\"dramApprox\":4.5}}]}]}";
  EXPECT_EQ(renderEvalJson(fixtureResult()), Expected);
}

TEST(EvalRender, JsonVersion4EchoesExecMode) {
  // --exec-mode bumps the document to version 4 and inserts "execMode"
  // directly after "seeds"; everything else is byte-for-byte the
  // version-2 layout, so flagless consumers never see a change.
  EvalResult Result = fixtureResult();
  Result.EchoExecMode = true;
  Result.Exec = ExecMode::Compiled;
  std::string Json = renderEvalJson(Result);
  EXPECT_EQ(Json.rfind("{\"tool\":\"enerj-eval\",\"version\":4,\"seeds\":2,"
                       "\"execMode\":\"compiled\",\"policy\":",
                       0),
            0u);
  Result.Exec = ExecMode::Interp;
  std::string Interp = renderEvalJson(Result);
  EXPECT_NE(Interp.find("\"execMode\":\"interp\""), std::string::npos);
  // Past the execMode field the two documents are identical.
  EXPECT_EQ(Json.substr(Json.find("\"policy\"")),
            Interp.substr(Interp.find("\"policy\"")));
}

TEST(EvalRender, JsonVersion5AddsThePowerBlocks) {
  // A power-armed grid is version 5: the top-level "power" echo (trace
  // name, checkpoint spec) lands right after "seeds", every cell's
  // outcome counts gain "powerFailed", and a per-cell "power" block
  // (losses, checkpoints, re-executed ops, survival) follows storage.
  // Everything else is byte-for-byte the version-2 layout.
  EvalResult Result = fixtureResult();
  Result.PowerArmed = true;
  Result.Power.Trace.Name = "brownout";
  Result.Power.Checkpoint.Spec = "periodic:2000";
  Result.Cells[0].PowerLosses = 3;
  Result.Cells[0].PowerCheckpoints = 7;
  Result.Cells[0].PowerReExecutedOps = 450;
  Result.Cells[0].PowerSurvived = 2;
  std::string Expected =
      "{\"tool\":\"enerj-eval\",\"version\":5,\"seeds\":2,"
      "\"power\":{\"trace\":\"brownout\",\"checkpoint\":\"periodic:2000\"},"
      "\"policy\":{\"enabled\":true,\"slo\":0.25,\"outputBound\":0,"
      "\"maxRetries\":2,\"opBudget\":1000,\"degrade\":true},"
      "\"levels\":[\"mild\"],\"apps\":[{\"name\":\"montecarlo\","
      "\"cells\":[{\"level\":\"mild\","
      "\"qos\":{\"count\":2,\"mean\":0.5,"
      "\"stddev\":0.35355339059327379,\"min\":0.25,\"max\":0.75,"
      "\"ci95\":0.48999999999999994},"
      "\"energy\":{\"count\":2,\"mean\":0.5,\"stddev\":0,\"min\":0.5,"
      "\"max\":0.5,\"ci95\":0},"
      "\"effectiveEnergy\":{\"count\":2,\"mean\":0.5,\"stddev\":0,"
      "\"min\":0.5,\"max\":0.5,\"ci95\":0},"
      "\"outcomes\":{\"ok\":1,\"sloViolated\":0,\"aborted\":0,"
      "\"retried\":1,\"degraded\":0,\"powerFailed\":0},\"retries\":1,"
      "\"ops\":{\"preciseInt\":10,\"approxInt\":20,\"preciseFp\":30,"
      "\"approxFp\":40,\"timingErrors\":5},"
      "\"storage\":{\"sramPrecise\":1.5,\"sramApprox\":2.5,"
      "\"dramPrecise\":3.5,\"dramApprox\":4.5},"
      "\"power\":{\"losses\":3,\"checkpoints\":7,\"reExecutedOps\":450,"
      "\"survived\":2,\"survivalRate\":1}}]}]}";
  EXPECT_EQ(renderEvalJson(Result), Expected);

  // Power composes with the exec-mode echo: still version 5, with
  // "execMode" between "seeds" and "power".
  Result.EchoExecMode = true;
  Result.Exec = ExecMode::Compiled;
  std::string Json = renderEvalJson(Result);
  EXPECT_EQ(Json.rfind("{\"tool\":\"enerj-eval\",\"version\":5,\"seeds\":2,"
                       "\"execMode\":\"compiled\",\"power\":{",
                       0),
            0u);
}

TEST(EvalRender, TextShowsThePowerColumns) {
  EvalResult Result = fixtureResult();
  Result.PowerArmed = true;
  Result.Power.Trace.Name = "harvest";
  Result.Power.Checkpoint.Spec = "preregion";
  Result.Cells[0].PowerLosses = 5;
  Result.Cells[0].PowerCheckpoints = 12;
  Result.Cells[0].PowerSurvived = 2;
  std::string Text = renderEvalText(Result);
  EXPECT_NE(Text.find("Power environment: trace harvest, "
                      "checkpoint preregion"),
            std::string::npos);
  EXPECT_NE(Text.find("survival"), std::string::npos);
  EXPECT_NE(Text.find("losses"), std::string::npos);
  EXPECT_NE(Text.find("2/2"), std::string::npos);
}

TEST(EvalRender, TextListsEveryCell) {
  std::string Text = renderEvalText(fixtureResult());
  EXPECT_NE(Text.find("1 app(s) x 1 level(s) x 2 seed(s)"),
            std::string::npos);
  EXPECT_NE(Text.find("montecarlo"), std::string::npos);
  EXPECT_NE(Text.find("mild"), std::string::npos);
}

TEST(EvalRender, JsonIsIdenticalAtAnyThreadCount) {
  EvalOptions Options;
  Options.Apps = {apps::findApplication("montecarlo")};
  Options.Levels = {ApproxLevel::Mild};
  Options.Seeds = 2;
  Options.Threads = 1;
  std::string Serial = renderEvalJson(runEval(Options));
  Options.Threads = 4;
  std::string Parallel = renderEvalJson(runEval(Options));
  EXPECT_EQ(Serial, Parallel);
}
