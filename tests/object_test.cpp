//===- tests/object_test.cpp - Heap-object storage lease tests ------------===//

#include "core/enerj.h"

#include <gtest/gtest.h>

using namespace enerj;

namespace {

/// A mixed-precision particle: position approximate (on approximate
/// instances), mass and id always precise.
template <Precision P> class Particle : public Approximable<P> {
public:
  static std::vector<FieldDecl> layoutFields() {
    bool A = IsApprox<P>;
    return {{"x", 8, A}, {"y", 8, A}, {"z", 8, A},
            {"mass", 8, false}, {"id", 4, false}};
  }

  Context<P, double> X{0.0}, Y{0.0}, Z{0.0};
  Precise<double> Mass{1.0};
  Precise<int32_t> Id{0};
};

/// A large object whose approximate payload spills past the first line.
struct BigBlob {
  static std::vector<FieldDecl> layoutFields() {
    std::vector<FieldDecl> Fields = {{"len", 8, false}};
    for (int I = 0; I < 32; ++I)
      Fields.push_back({"w" + std::to_string(I), 8, true});
    return Fields;
  }
};

} // namespace

TEST(ObjectLease, NoSimulatorIsNoop) {
  ObjectLease Lease(Particle<Precision::Approx>::layoutFields());
  EXPECT_EQ(Lease.layout().TotalBytes, 0u); // Layout not even computed.
}

TEST(ObjectLease, ChargesDramPerLayout) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  {
    SimulatorScope Scope(Sim);
    ObjectLease Lease(BigBlob::layoutFields());
    // Header 8 + len 8 = 16 precise bytes -> line 0 precise (64B);
    // 256 approximate bytes follow, 208 of them on approximate lines.
    EXPECT_EQ(Lease.layout().TotalBytes, 8u + 8u + 256u);
    EXPECT_EQ(Lease.layout().PreciseBytes, 64u);
    EXPECT_EQ(Lease.layout().ApproxBytes, 208u);
    Sim.ledger().tick(10);
    RunStats Stats = Sim.stats();
    EXPECT_DOUBLE_EQ(Stats.Storage.DramPrecise, 640.0);
    EXPECT_DOUBLE_EQ(Stats.Storage.DramApprox, 2080.0);
  }
}

TEST(ObjectLease, ReleasedOnDestruction) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  SimulatorScope Scope(Sim);
  {
    ObjectLease Lease(BigBlob::layoutFields());
    EXPECT_EQ(Sim.ledger().liveLeases(), 1u);
  }
  EXPECT_EQ(Sim.ledger().liveLeases(), 0u);
}

TEST(ObjectLease, MoveTransfersOwnership) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  SimulatorScope Scope(Sim);
  ObjectLease A(BigBlob::layoutFields());
  size_t Live = Sim.ledger().liveLeases();
  ObjectLease B = std::move(A);
  EXPECT_EQ(Sim.ledger().liveLeases(), Live);
  EXPECT_GT(B.layout().TotalBytes, 0u);
}

TEST(HeapObject, PreciseInstanceIsFullyPrecise) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  SimulatorScope Scope(Sim);
  HeapObject<Particle<Precision::Precise>> P;
  EXPECT_EQ(P.layout().ApproxBytes, 0u);
  P->X = 1.0;
  EXPECT_DOUBLE_EQ(P->X.get(), 1.0);
}

TEST(HeapObject, ApproxInstanceLayoutSegregates) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  SimulatorScope Scope(Sim);
  HeapObject<Particle<Precision::Approx>> P;
  const LayoutResult &Layout = P.layout();
  // With 64-byte lines: header(8) + mass(8) + id(4) = 20 precise bytes,
  // then 24 approximate bytes that still fit on line 0 -> nothing is
  // stored approximately (the paper's granularity loss).
  EXPECT_EQ(Layout.ApproxBytes, 0u);
  // At finer granularity the same object recovers approximate storage.
  FaultConfig Fine = FaultConfig::preset(ApproxLevel::Medium);
  Fine.CacheLineBytes = 16;
  Simulator FineSim(Fine);
  SimulatorScope FineScope(FineSim);
  HeapObject<Particle<Precision::Approx>> Q;
  EXPECT_GT(Q.layout().ApproxBytes, 0u);
}

TEST(HeapObject, FieldsStillEnforceStaticRules) {
  HeapObject<Particle<Precision::Approx>> P;
  P->X = 2.0;
  // X is approximate on an approximate instance: no implicit flow out.
  static_assert(!std::is_convertible_v<decltype(P->X), double>);
  EXPECT_DOUBLE_EQ(endorse(P->X), 2.0);
}
