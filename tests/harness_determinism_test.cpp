//===- tests/harness_determinism_test.cpp - Serial vs parallel ------------===//
//
// The hard requirement of the trial runner: results are bitwise
// identical at any thread count. For all nine apps at all three
// evaluation levels, the suite compares --threads 1 (inline, no pool),
// --threads 4, and --threads hardware_concurrency() down to the bit
// pattern of every QoS double and every operation counter, and pins the
// 1-thread runner against the historical serial loop shape
// (apps::qosUnder called seed by seed).
//
//===----------------------------------------------------------------------===//

#include "harness/eval.h"
#include "harness/trial.h"
#include "obs/journal.h"
#include "obs/profile.h"
#include "obs/trace.h"

#include <cstring>
#include <gtest/gtest.h>
#include <thread>

using namespace enerj;
using namespace enerj::harness;

namespace {

constexpr int SeedsPerCell = 2;

uint64_t bitsOf(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

/// The full nine-app, three-level trial list, seeds [1, SeedsPerCell].
std::vector<Trial> fullGrid() {
  std::vector<Trial> Trials;
  for (const apps::Application *App : apps::allApplications())
    for (ApproxLevel Level : evalLevels()) {
      FaultConfig Config = FaultConfig::preset(Level);
      for (int Seed = 1; Seed <= SeedsPerCell; ++Seed)
        Trials.push_back({App, Config, static_cast<uint64_t>(Seed), {}});
    }
  return Trials;
}

void expectBitwiseEqual(const std::vector<TrialResult> &A,
                        const std::vector<TrialResult> &B,
                        const std::vector<Trial> &Trials) {
  ASSERT_EQ(A.size(), B.size());
  ASSERT_EQ(A.size(), Trials.size());
  for (size_t I = 0; I < A.size(); ++I) {
    SCOPED_TRACE(std::string(Trials[I].App->name()) + "/" +
                 approxLevelName(Trials[I].Config.Level) + "/seed " +
                 std::to_string(Trials[I].WorkloadSeed));
    EXPECT_EQ(bitsOf(A[I].QosError), bitsOf(B[I].QosError));
    EXPECT_EQ(A[I].Stats.Ops.PreciseInt, B[I].Stats.Ops.PreciseInt);
    EXPECT_EQ(A[I].Stats.Ops.ApproxInt, B[I].Stats.Ops.ApproxInt);
    EXPECT_EQ(A[I].Stats.Ops.PreciseFp, B[I].Stats.Ops.PreciseFp);
    EXPECT_EQ(A[I].Stats.Ops.ApproxFp, B[I].Stats.Ops.ApproxFp);
    EXPECT_EQ(A[I].Stats.Ops.TimingErrors, B[I].Stats.Ops.TimingErrors);
    EXPECT_EQ(bitsOf(A[I].Stats.Storage.SramPrecise),
              bitsOf(B[I].Stats.Storage.SramPrecise));
    EXPECT_EQ(bitsOf(A[I].Stats.Storage.SramApprox),
              bitsOf(B[I].Stats.Storage.SramApprox));
    EXPECT_EQ(bitsOf(A[I].Stats.Storage.DramPrecise),
              bitsOf(B[I].Stats.Storage.DramPrecise));
    EXPECT_EQ(bitsOf(A[I].Stats.Storage.DramApprox),
              bitsOf(B[I].Stats.Storage.DramApprox));
    EXPECT_EQ(bitsOf(A[I].Energy.TotalFactor),
              bitsOf(B[I].Energy.TotalFactor));
    // Resilience verdicts are part of the bitwise contract too: which
    // attempt was accepted, after how many tries, at which ladder rung,
    // and what the re-execution cost was.
    EXPECT_EQ(A[I].Outcome, B[I].Outcome);
    EXPECT_EQ(A[I].Attempts, B[I].Attempts);
    EXPECT_EQ(A[I].FinalLevel, B[I].FinalLevel);
    EXPECT_EQ(bitsOf(A[I].EffectiveEnergyFactor),
              bitsOf(B[I].EffectiveEnergyFactor));
    EXPECT_EQ(A[I].Error, B[I].Error);
  }
}

} // namespace

TEST(TrialRunnerDeterminism, AllAppsAllLevelsAcrossThreadCounts) {
  std::vector<Trial> Trials = fullGrid();

  std::vector<TrialResult> OneThread = TrialRunner(1).run(Trials);
  std::vector<TrialResult> FourThreads = TrialRunner(4).run(Trials);
  expectBitwiseEqual(OneThread, FourThreads, Trials);

  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  std::vector<TrialResult> HardwareThreads =
      TrialRunner(Hardware).run(Trials);
  expectBitwiseEqual(OneThread, HardwareThreads, Trials);
}

TEST(TrialRunnerDeterminism, MatchesTheSerialMeasurementPath) {
  // The runner's per-trial QoS must be bit-for-bit what the historical
  // serial loop computed with apps::qosUnder.
  std::vector<Trial> Trials = fullGrid();
  std::vector<TrialResult> Parallel = TrialRunner(4).run(Trials);
  for (size_t I = 0; I < Trials.size(); ++I) {
    SCOPED_TRACE(Trials[I].App->name());
    double Serial = apps::qosUnder(*Trials[I].App, Trials[I].Config,
                                   Trials[I].WorkloadSeed);
    EXPECT_EQ(bitsOf(Serial), bitsOf(Parallel[I].QosError));
  }
}

TEST(TrialRunnerDeterminism, RepeatedRunsAreBitwiseStable) {
  // Same runner, same trials, twice: no hidden global state.
  EvalOptions Options;
  Options.Apps = {apps::findApplication("fft")};
  Options.Seeds = 2;
  Options.Threads = 4;
  std::string First = renderEvalJson(runEval(Options));
  std::string Second = renderEvalJson(runEval(Options));
  EXPECT_EQ(First, Second);
}

TEST(TrialRunnerDeterminism, ResilientRecoveryAcrossThreadCounts) {
  // With an active policy, retry and degradation decisions depend only
  // on the trial, never on scheduling: outcomes, attempt counts, final
  // ladder levels, and retry-adjusted energy must be bitwise identical
  // at any thread count. The tight SLO forces real interventions.
  std::vector<Trial> Trials;
  for (const char *Name : {"fft", "sor", "montecarlo"}) {
    const apps::Application *App = apps::findApplication(Name);
    ASSERT_NE(App, nullptr);
    for (ApproxLevel Level : {ApproxLevel::Medium, ApproxLevel::Aggressive}) {
      FaultConfig Config = FaultConfig::preset(Level);
      for (int Seed = 1; Seed <= SeedsPerCell; ++Seed)
        Trials.push_back({App, Config, static_cast<uint64_t>(Seed), {}});
    }
  }
  resilience::ResiliencePolicy Policy;
  Policy.Enabled = true;
  Policy.Slo = 0.02;
  Policy.MaxRetries = 1;
  Policy.OpBudget = 500000000;

  std::vector<TrialResult> OneThread = TrialRunner(1).run(Trials, Policy);
  // Sanity: the policy must actually have intervened somewhere,
  // otherwise this test degenerates to the plain-path one above.
  bool Intervened = false;
  for (const TrialResult &R : OneThread)
    Intervened |= R.Outcome != resilience::TrialOutcome::Ok;
  EXPECT_TRUE(Intervened);

  std::vector<TrialResult> FourThreads = TrialRunner(4).run(Trials, Policy);
  expectBitwiseEqual(OneThread, FourThreads, Trials);

  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  std::vector<TrialResult> HardwareThreads =
      TrialRunner(Hardware).run(Trials, Policy);
  expectBitwiseEqual(OneThread, HardwareThreads, Trials);
}

TEST(TrialRunnerDeterminism, ResilientEvalJsonIdenticalAcrossThreads) {
  // End to end through the aggregation and the renderer: a policy-armed
  // eval serializes to the same bytes at any thread count.
  EvalOptions Options;
  Options.Apps = {apps::findApplication("fft")};
  Options.Levels = {ApproxLevel::Aggressive};
  Options.Seeds = 2;
  Options.Policy.Enabled = true;
  Options.Policy.Slo = 0.05;
  Options.Policy.MaxRetries = 1;
  Options.Threads = 1;
  std::string Serial = renderEvalJson(runEval(Options));
  Options.Threads = 4;
  std::string Parallel = renderEvalJson(runEval(Options));
  EXPECT_EQ(Serial, Parallel);
}

TEST(TrialRunnerDeterminism, ProfileOutputIdenticalAcrossThreadCounts) {
  // The profiler aggregates registries and traces on top of the runner;
  // its rendered table, JSON document, and exported Chrome trace must
  // all be byte-identical at any thread count.
  auto Render = [](unsigned Threads) {
    obs::ProfileOptions Options;
    Options.App = apps::findApplication("montecarlo");
    Options.Level = ApproxLevel::Medium;
    Options.Seeds = 2;
    Options.Threads = Threads;
    Options.TopK = 3;
    Options.Trace = true;
    obs::ProfileResult Result = obs::runProfile(Options);
    return renderProfileText(Result) + "\n" + renderProfileJson(Result) +
           "\n" +
           renderChromeTrace(Result.Seed1.Trace, Result.Seed1.Metrics,
                             Result.App->name());
  };

  std::string OneThread = Render(1);
  EXPECT_EQ(OneThread, Render(4));
  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  EXPECT_EQ(OneThread, Render(Hardware));
}

TEST(TrialRunnerDeterminism, InstrumentedRunsAcrossThreadCounts) {
  // Telemetry-carrying trials through the pool: the registries and
  // traces land in the right result slots regardless of scheduling.
  std::vector<Trial> Trials;
  for (const char *Name : {"fft", "lu", "barcode"}) {
    const apps::Application *App = apps::findApplication(Name);
    ASSERT_NE(App, nullptr);
    for (int Seed = 1; Seed <= SeedsPerCell; ++Seed) {
      Trial T;
      T.App = App;
      T.Config = FaultConfig::preset(ApproxLevel::Medium);
      T.WorkloadSeed = static_cast<uint64_t>(Seed);
      T.Obs.Metrics = true;
      T.Obs.Trace = true;
      Trials.push_back(T);
    }
  }
  std::vector<TrialResult> Serial = TrialRunner(1).run(Trials);
  std::vector<TrialResult> Parallel = TrialRunner(4).run(Trials);
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    SCOPED_TRACE(std::string(Trials[I].App->name()) + "/seed " +
                 std::to_string(Trials[I].WorkloadSeed));
    EXPECT_EQ(bitsOf(Serial[I].QosError), bitsOf(Parallel[I].QosError));
    EXPECT_EQ(Serial[I].ClockCycles, Parallel[I].ClockCycles);
    EXPECT_EQ(Serial[I].Metrics.totalOps(), Parallel[I].Metrics.totalOps());
    EXPECT_EQ(Serial[I].Metrics.totalFaults(),
              Parallel[I].Metrics.totalFaults());
    ASSERT_EQ(Serial[I].Trace.size(), Parallel[I].Trace.size());
    EXPECT_EQ(renderChromeTrace(Serial[I].Trace, Serial[I].Metrics,
                                Trials[I].App->name()),
              renderChromeTrace(Parallel[I].Trace, Parallel[I].Metrics,
                                Trials[I].App->name()));
  }
}

TEST(TrialRunnerDeterminism, CompiledEvalJsonIdenticalAcrossThreadCounts) {
  // The compiled execution path inherits the full determinism contract:
  // the rendered grid JSON — QoS doubles, energy factors, outcomes,
  // metrics, and the echoed execMode — is byte-identical at any thread
  // count, and repeated runs reuse the per-cell program cache without
  // perturbing the bytes.
  auto Render = [](unsigned Threads) {
    EvalOptions Options;
    Options.Seeds = SeedsPerCell;
    Options.Threads = Threads;
    Options.Exec = ExecMode::Compiled;
    Options.EchoExecMode = true;
    Options.KernelDir = std::string(ENERJ_FEJ_DIR) + "/isa";
    Options.Metrics = true;
    return renderEvalJson(runEval(Options));
  };

  std::string OneThread = Render(1);
  EXPECT_NE(OneThread.find("\"execMode\":\"compiled\""), std::string::npos);
  EXPECT_EQ(OneThread, Render(4));
  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  EXPECT_EQ(OneThread, Render(Hardware));
  // Same thread count twice: the cache warm-up run and the warm run
  // must serialize identically.
  EXPECT_EQ(Render(4), Render(4));
}

TEST(TrialRunnerDeterminism, PowerArmedEvalJsonIdenticalAcrossThreadCounts) {
  // The intermittent-supply environment must not cost any determinism:
  // a power-armed grid — losses, checkpoints, replays, survival counts,
  // and the v5 JSON that carries them — is byte-identical at 1, 4, and
  // hardware threads, on both execution paths, with the recovery ladder
  // armed on top.
  auto Render = [](unsigned Threads, ExecMode Exec, bool Policy) {
    EvalOptions Options;
    Options.Apps = {apps::findApplication("fft"),
                    apps::findApplication("sor")};
    Options.Levels = {ApproxLevel::Mild, ApproxLevel::Medium};
    Options.Seeds = SeedsPerCell;
    Options.Threads = Threads;
    Options.Exec = Exec;
    if (Exec == ExecMode::Compiled) {
      Options.EchoExecMode = true;
      Options.KernelDir = std::string(ENERJ_FEJ_DIR) + "/isa";
    }
    Options.PowerArmed = true;
    Options.Power.Trace =
        *env::PowerTraceSpec::preset("harvest", nullptr);
    Options.Power.Checkpoint =
        *env::CheckpointPolicy::parse("periodic:2000", nullptr);
    if (Policy) {
      Options.Policy.Enabled = true;
      Options.Policy.Slo = 0.05;
      Options.Policy.MaxRetries = 1;
    }
    return renderEvalJson(runEval(Options));
  };

  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  for (ExecMode Exec : {ExecMode::Interp, ExecMode::Compiled}) {
    for (bool Policy : {false, true}) {
      SCOPED_TRACE(std::string(Exec == ExecMode::Interp ? "interp"
                                                        : "compiled") +
                   (Policy ? "+policy" : ""));
      std::string OneThread = Render(1, Exec, Policy);
      EXPECT_NE(OneThread.find("\"version\":5"), std::string::npos);
      EXPECT_NE(OneThread.find("\"power\":{\"trace\":\"harvest\""),
                std::string::npos);
      EXPECT_EQ(OneThread, Render(4, Exec, Policy));
      EXPECT_EQ(OneThread, Render(Hardware, Exec, Policy));
    }
  }
}

TEST(TrialRunnerDeterminism, JournalCaptureByteIdenticalAcrossThreadCounts) {
  // The flight recorder inherits the determinism contract end to end:
  // which trials are captured, in what order, and every byte of each
  // rendered journal — provenance, timeline, digest — is identical at
  // 1, 4, and hardware threads, on both engines, with a policy armed so
  // non-ok capture paths execute too.
  auto RenderAll = [](unsigned Threads, ExecMode Exec) {
    EvalOptions Options;
    Options.Apps = {apps::findApplication("fft"),
                    apps::findApplication("sor")};
    Options.Levels = {ApproxLevel::Medium, ApproxLevel::Aggressive};
    Options.Seeds = 3;
    Options.Threads = Threads;
    Options.Exec = Exec;
    if (Exec == ExecMode::Compiled)
      Options.KernelDir = std::string(ENERJ_FEJ_DIR) + "/isa";
    Options.Journal = true;
    Options.JournalOkSampleEvery = 2;
    Options.Policy.Enabled = true;
    Options.Policy.Slo = 0.05;
    Options.Policy.MaxRetries = 1;
    EvalResult Grid = runEval(Options);
    std::string All;
    for (const TrialRecord &Record : Grid.Journaled) {
      obs::Journal J = obs::buildJournal(Grid, Record);
      All += obs::journalFileName(J) + "\n" + obs::renderJournalJson(J) +
             "\n";
    }
    return All;
  };

  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  for (ExecMode Exec : {ExecMode::Interp, ExecMode::Compiled}) {
    SCOPED_TRACE(Exec == ExecMode::Interp ? "interp" : "compiled");
    std::string OneThread = RenderAll(1, Exec);
    EXPECT_FALSE(OneThread.empty());
    EXPECT_EQ(OneThread, RenderAll(4, Exec));
    EXPECT_EQ(OneThread, RenderAll(Hardware, Exec));
  }
}

TEST(TrialRunnerDeterminism, JournalingNeverPerturbsTheEvalJson) {
  // Arming the flight recorder (and the stderr heartbeat's observer)
  // must leave the eval document byte-identical: capture rides on the
  // zero-perturbation trace channel and the progress callback only
  // *observes* completed trials.
  EvalOptions Options;
  Options.Apps = {apps::findApplication("montecarlo")};
  Options.Levels = {ApproxLevel::Medium};
  Options.Seeds = 4;
  Options.Threads = 4;
  std::string Plain = renderEvalJson(runEval(Options));
  Options.Journal = true;
  Options.JournalOkSampleEvery = 1;
  Options.Progress = true;
  std::string Armed = renderEvalJson(runEval(Options));
  EXPECT_EQ(Plain, Armed);
}

TEST(TrialRunnerDeterminism, CellAggregationMatchesSerialMean) {
  // The per-cell mean is the left-to-right sum over seeds — identical
  // to "Sum += qosUnder(...); Sum / Runs".
  const apps::Application *App = apps::findApplication("sor");
  ASSERT_NE(App, nullptr);
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);

  double Sum = 0.0;
  for (int Seed = 1; Seed <= 3; ++Seed)
    Sum += apps::qosUnder(*App, Config, static_cast<uint64_t>(Seed));

  EvalOptions Options;
  Options.Apps = {App};
  Options.Levels = {ApproxLevel::Medium};
  Options.Seeds = 3;
  Options.Threads = 4;
  EvalResult Grid = runEval(Options);
  const EvalCell *Cell = Grid.cell(*App, ApproxLevel::Medium);
  ASSERT_NE(Cell, nullptr);
  EXPECT_EQ(bitsOf(Sum / 3), bitsOf(Cell->Qos.Mean));
}
