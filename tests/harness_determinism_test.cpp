//===- tests/harness_determinism_test.cpp - Serial vs parallel ------------===//
//
// The hard requirement of the trial runner: results are bitwise
// identical at any thread count. For all nine apps at all three
// evaluation levels, the suite compares --threads 1 (inline, no pool),
// --threads 4, and --threads hardware_concurrency() down to the bit
// pattern of every QoS double and every operation counter, and pins the
// 1-thread runner against the historical serial loop shape
// (apps::qosUnder called seed by seed).
//
//===----------------------------------------------------------------------===//

#include "harness/eval.h"
#include "harness/trial.h"

#include <cstring>
#include <gtest/gtest.h>
#include <thread>

using namespace enerj;
using namespace enerj::harness;

namespace {

constexpr int SeedsPerCell = 2;

uint64_t bitsOf(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

/// The full nine-app, three-level trial list, seeds [1, SeedsPerCell].
std::vector<Trial> fullGrid() {
  std::vector<Trial> Trials;
  for (const apps::Application *App : apps::allApplications())
    for (ApproxLevel Level : evalLevels()) {
      FaultConfig Config = FaultConfig::preset(Level);
      for (int Seed = 1; Seed <= SeedsPerCell; ++Seed)
        Trials.push_back({App, Config, static_cast<uint64_t>(Seed)});
    }
  return Trials;
}

void expectBitwiseEqual(const std::vector<TrialResult> &A,
                        const std::vector<TrialResult> &B,
                        const std::vector<Trial> &Trials) {
  ASSERT_EQ(A.size(), B.size());
  ASSERT_EQ(A.size(), Trials.size());
  for (size_t I = 0; I < A.size(); ++I) {
    SCOPED_TRACE(std::string(Trials[I].App->name()) + "/" +
                 approxLevelName(Trials[I].Config.Level) + "/seed " +
                 std::to_string(Trials[I].WorkloadSeed));
    EXPECT_EQ(bitsOf(A[I].QosError), bitsOf(B[I].QosError));
    EXPECT_EQ(A[I].Stats.Ops.PreciseInt, B[I].Stats.Ops.PreciseInt);
    EXPECT_EQ(A[I].Stats.Ops.ApproxInt, B[I].Stats.Ops.ApproxInt);
    EXPECT_EQ(A[I].Stats.Ops.PreciseFp, B[I].Stats.Ops.PreciseFp);
    EXPECT_EQ(A[I].Stats.Ops.ApproxFp, B[I].Stats.Ops.ApproxFp);
    EXPECT_EQ(A[I].Stats.Ops.TimingErrors, B[I].Stats.Ops.TimingErrors);
    EXPECT_EQ(bitsOf(A[I].Stats.Storage.SramPrecise),
              bitsOf(B[I].Stats.Storage.SramPrecise));
    EXPECT_EQ(bitsOf(A[I].Stats.Storage.SramApprox),
              bitsOf(B[I].Stats.Storage.SramApprox));
    EXPECT_EQ(bitsOf(A[I].Stats.Storage.DramPrecise),
              bitsOf(B[I].Stats.Storage.DramPrecise));
    EXPECT_EQ(bitsOf(A[I].Stats.Storage.DramApprox),
              bitsOf(B[I].Stats.Storage.DramApprox));
    EXPECT_EQ(bitsOf(A[I].Energy.TotalFactor),
              bitsOf(B[I].Energy.TotalFactor));
  }
}

} // namespace

TEST(TrialRunnerDeterminism, AllAppsAllLevelsAcrossThreadCounts) {
  std::vector<Trial> Trials = fullGrid();

  std::vector<TrialResult> OneThread = TrialRunner(1).run(Trials);
  std::vector<TrialResult> FourThreads = TrialRunner(4).run(Trials);
  expectBitwiseEqual(OneThread, FourThreads, Trials);

  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  std::vector<TrialResult> HardwareThreads =
      TrialRunner(Hardware).run(Trials);
  expectBitwiseEqual(OneThread, HardwareThreads, Trials);
}

TEST(TrialRunnerDeterminism, MatchesTheSerialMeasurementPath) {
  // The runner's per-trial QoS must be bit-for-bit what the historical
  // serial loop computed with apps::qosUnder.
  std::vector<Trial> Trials = fullGrid();
  std::vector<TrialResult> Parallel = TrialRunner(4).run(Trials);
  for (size_t I = 0; I < Trials.size(); ++I) {
    SCOPED_TRACE(Trials[I].App->name());
    double Serial = apps::qosUnder(*Trials[I].App, Trials[I].Config,
                                   Trials[I].WorkloadSeed);
    EXPECT_EQ(bitsOf(Serial), bitsOf(Parallel[I].QosError));
  }
}

TEST(TrialRunnerDeterminism, RepeatedRunsAreBitwiseStable) {
  // Same runner, same trials, twice: no hidden global state.
  EvalOptions Options;
  Options.Apps = {apps::findApplication("fft")};
  Options.Seeds = 2;
  Options.Threads = 4;
  std::string First = renderEvalJson(runEval(Options));
  std::string Second = renderEvalJson(runEval(Options));
  EXPECT_EQ(First, Second);
}

TEST(TrialRunnerDeterminism, CellAggregationMatchesSerialMean) {
  // The per-cell mean is the left-to-right sum over seeds — identical
  // to "Sum += qosUnder(...); Sum / Runs".
  const apps::Application *App = apps::findApplication("sor");
  ASSERT_NE(App, nullptr);
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);

  double Sum = 0.0;
  for (int Seed = 1; Seed <= 3; ++Seed)
    Sum += apps::qosUnder(*App, Config, static_cast<uint64_t>(Seed));

  EvalOptions Options;
  Options.Apps = {App};
  Options.Levels = {ApproxLevel::Medium};
  Options.Seeds = 3;
  Options.Threads = 4;
  EvalResult Grid = runEval(Options);
  const EvalCell *Cell = Grid.cell(*App, ApproxLevel::Medium);
  ASSERT_NE(Cell, nullptr);
  EXPECT_EQ(bitsOf(Sum / 3), bitsOf(Cell->Qos.Mean));
}
