#!/usr/bin/env python3
"""Validate `fenerj_tool bound --json` output (schema v1).

Like the eval/infer/lint/profile validators, this checks structure, key
presence, key order, and cross-field invariants — every bound is a
probability in [0, 1], the program bound never exceeds either output
bound (it folds both in), the loop disposition counts partition the
loop count, and per-site entries name a real endorse opcode and
register. It does NOT pin bound values: those belong to the golden in
cli_bound_test and the Monte-Carlo gate in reliability_bound_test.

Usage:
  fenerj_tool bound file.fej --json | python3 tests/validate_bound_json.py

Exits 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

TOP_KEYS = ["tool", "version", "file", "level", "conservative",
            "pathBound", "intOutputBound", "fpOutputBound", "programBound",
            "preciseMemBound", "approxMemBound", "loops", "loopsUnrolled",
            "loopsWidened", "blockEvals", "sites"]
SITE_KEYS = ["block", "index", "line", "op", "srcReg", "bound", "visits"]
LEVELS = {"none", "mild", "medium", "aggressive"}
BOUND_KEYS = ["pathBound", "intOutputBound", "fpOutputBound",
              "programBound", "preciseMemBound", "approxMemBound"]


def fail(message):
    print(f"validate_bound_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect_keys(obj, keys, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected an object, got {type(obj).__name__}")
    if list(obj.keys()) != keys:
        fail(f"{where}: keys {list(obj.keys())} != expected {keys}")


def expect_count(obj, key, where):
    if not isinstance(obj[key], int) or isinstance(obj[key], bool) \
            or obj[key] < 0:
        fail(f"{where}.{key}: not a non-negative integer")


def expect_probability(obj, key, where):
    value = obj[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        fail(f"{where}.{key}: not a number")
    if not 0.0 <= value <= 1.0:
        fail(f"{where}.{key}: {value} outside [0, 1]")


def validate_bound(doc):
    expect_keys(doc, TOP_KEYS, "top level")
    if doc["tool"] != "fenerj-bound":
        fail(f"tool: {doc['tool']!r} != 'fenerj-bound'")
    if doc["version"] != 1:
        fail(f"version: {doc['version']!r} != 1")
    if not isinstance(doc["file"], str) or not doc["file"]:
        fail("file: not a non-empty string")
    if doc["level"] not in LEVELS:
        fail(f"level: {doc['level']!r} not in {sorted(LEVELS)}")
    if not isinstance(doc["conservative"], bool):
        fail("conservative: not a boolean")

    for key in BOUND_KEYS:
        expect_probability(doc, key, "top level")
    # The program bound folds in both output bounds, so it can never
    # exceed either; each output bound folds in the path bound.
    eps = 1e-12
    if doc["programBound"] > doc["intOutputBound"] + eps:
        fail("programBound exceeds intOutputBound")
    if doc["programBound"] > doc["fpOutputBound"] + eps:
        fail("programBound exceeds fpOutputBound")
    if doc["intOutputBound"] > doc["pathBound"] + eps:
        fail("intOutputBound exceeds pathBound")
    if doc["fpOutputBound"] > doc["pathBound"] + eps:
        fail("fpOutputBound exceeds pathBound")
    if doc["level"] == "none" and not doc["conservative"]:
        for key in BOUND_KEYS:
            if doc[key] != 1.0:
                fail(f"{key}: {doc[key]} != 1.0 at level none")

    for key in ("loops", "loopsUnrolled", "loopsWidened", "blockEvals"):
        expect_count(doc, key, "top level")
    if doc["loopsUnrolled"] + doc["loopsWidened"] > doc["loops"]:
        fail("loop dispositions exceed the loop count")

    if not isinstance(doc["sites"], list):
        fail("sites: not a list")
    previous = (-1, -1)
    for index, site in enumerate(doc["sites"]):
        where = f"sites[{index}]"
        expect_keys(site, SITE_KEYS, where)
        expect_count(site, "block", where)
        expect_count(site, "index", where)
        expect_count(site, "line", where)
        expect_count(site, "visits", where)
        expect_probability(site, "bound", where)
        if site["op"] not in ("endorse", "fendorse"):
            fail(f"{where}.op: {site['op']!r} not an endorse opcode")
        reg = site["srcReg"]
        want = "f" if site["op"] == "fendorse" else "r"
        if not isinstance(reg, str) or not reg.startswith(want) \
                or not reg[1:].isdigit() or not 0 <= int(reg[1:]) < 32:
            fail(f"{where}.srcReg: {reg!r} not a valid {want}-register")
        key = (site["block"], site["index"])
        if key <= previous:
            fail(f"{where}: sites not in (block, index) order")
        previous = key


def main():
    try:
        doc = json.load(sys.stdin)
    except json.JSONDecodeError as error:
        fail(f"not valid JSON: {error}")
    validate_bound(doc)
    print("validate_bound_json: OK")


if __name__ == "__main__":
    main()
