#!/usr/bin/env python3
"""Validate `fenerj_tool infer --json` output against schema v1.

Reads one JSON document from stdin and checks structure, key presence,
key order, and the analysis invariants the renderer promises: inferred
approximability never drops below annotated, percentages and counts are
consistent, relaxed declarations start precise and end approx, and the
call-graph shape numbers are sane. Deliberately does NOT pin metric
values — those belong to the byte-level goldens in tests/infer_test.cpp.

Usage: fenerj_tool infer ... --json | python3 tests/validate_infer_json.py
Exits 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

TOP_KEYS = ["tool", "version", "apps"]
APP_KEYS = ["file", "decls", "energy", "callGraph", "declarations"]
DECLS_KEYS = ["total", "annotatedApprox", "inferredApprox", "annotatedPct",
              "inferredPct"]
ENERGY_KEYS = ["annotatedFactor", "inferredFactor", "annotatedSavedPct",
               "inferredSavedPct"]
GRAPH_KEYS = ["instances", "edges", "slots", "sccs", "recursiveSccs",
              "unreachable"]
DECL_KEYS = ["name", "kind", "declared", "inferred", "line", "column",
             "relaxed", "uses"]
KINDS = {"field", "param", "return", "local", "alloc"}
QUALS = {"precise", "approx", "context", "top"}


def fail(message):
    print(f"validate_infer_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect_keys(obj, keys, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected an object, got {type(obj).__name__}")
    if list(obj.keys()) != keys:
        fail(f"{where}: keys {list(obj.keys())} != expected {keys}")


def expect_count(obj, key, where):
    if not isinstance(obj[key], int) or obj[key] < 0:
        fail(f"{where}.{key}: not a non-negative integer")


def main():
    try:
        doc = json.load(sys.stdin)
    except json.JSONDecodeError as err:
        fail(f"not valid JSON: {err}")

    expect_keys(doc, TOP_KEYS, "top level")
    if doc["tool"] != "enerj-infer":
        fail(f"tool is {doc['tool']!r}, expected 'enerj-infer'")
    if doc["version"] != 1:
        fail(f"version is {doc['version']!r}, expected 1")
    if not isinstance(doc["apps"], list) or not doc["apps"]:
        fail("apps: empty or not a list")

    for app in doc["apps"]:
        expect_keys(app, APP_KEYS, "app")
        where = f"app {app['file']!r}"

        decls = app["decls"]
        expect_keys(decls, DECLS_KEYS, f"{where}.decls")
        for key in ("total", "annotatedApprox", "inferredApprox"):
            expect_count(decls, key, f"{where}.decls")
        if decls["inferredApprox"] < decls["annotatedApprox"]:
            fail(f"{where}: inference lost annotated approximability")
        if decls["inferredApprox"] > decls["total"]:
            fail(f"{where}: more approx decls than decls")
        for pct, count in (("annotatedPct", "annotatedApprox"),
                           ("inferredPct", "inferredApprox")):
            if not isinstance(decls[pct], (int, float)):
                fail(f"{where}.decls.{pct}: not a number")
            if decls["total"]:
                want = 100.0 * decls[count] / decls["total"]
                if abs(decls[pct] - want) > 0.001:
                    fail(f"{where}.decls.{pct}: {decls[pct]} != {want:.6f}")

        energy = app["energy"]
        expect_keys(energy, ENERGY_KEYS, f"{where}.energy")
        for key in ENERGY_KEYS:
            if not isinstance(energy[key], (int, float)):
                fail(f"{where}.energy.{key}: not a number")
        if not 0.0 < energy["inferredFactor"] <= energy["annotatedFactor"] \
                <= 1.0:
            fail(f"{where}.energy: factors out of order: "
                 f"{energy['inferredFactor']} / {energy['annotatedFactor']}")

        graph = app["callGraph"]
        expect_keys(graph, GRAPH_KEYS, f"{where}.callGraph")
        for key in GRAPH_KEYS[:-1]:
            expect_count(graph, key, f"{where}.callGraph")
        if graph["instances"] < 1:
            fail(f"{where}: no instances (main is always instance 0)")
        if graph["sccs"] < 1 or graph["sccs"] > graph["instances"]:
            fail(f"{where}: scc count {graph['sccs']} out of range")
        if graph["recursiveSccs"] > graph["sccs"]:
            fail(f"{where}: more recursive SCCs than SCCs")
        if not isinstance(graph["unreachable"], list):
            fail(f"{where}.callGraph.unreachable: not a list")

        inferred = 0
        last = (0, 0, "")
        for decl in app["declarations"]:
            expect_keys(decl, DECL_KEYS, f"{where} declaration")
            dw = f"{where} decl {decl['name']!r}"
            if decl["kind"] not in KINDS:
                fail(f"{dw}: unknown kind {decl['kind']!r}")
            if decl["declared"] not in QUALS or decl["inferred"] not in QUALS:
                fail(f"{dw}: unknown qualifier")
            if decl["relaxed"] and (decl["declared"] != "precise"
                                    or decl["inferred"] != "approx"):
                fail(f"{dw}: relaxed but {decl['declared']}->"
                     f"{decl['inferred']}")
            if not decl["relaxed"] and decl["inferred"] != decl["declared"]:
                fail(f"{dw}: inferred changed without relaxed=true")
            expect_count(decl, "line", dw)
            expect_count(decl, "column", dw)
            expect_count(decl, "uses", dw)
            key = (decl["line"], decl["column"], decl["name"])
            if key < last:
                fail(f"{dw}: declarations not in source order")
            last = key
            if decl["inferred"] in ("approx", "context"):
                inferred += 1
        if len(app["declarations"]) != decls["total"]:
            fail(f"{where}: {len(app['declarations'])} declarations vs "
                 f"total={decls['total']}")
        if inferred != decls["inferredApprox"]:
            fail(f"{where}: {inferred} approx declarations vs "
                 f"inferredApprox={decls['inferredApprox']}")

    print(f"validate_infer_json: OK ({len(doc['apps'])} app(s), "
          f"{sum(a['decls']['total'] for a in doc['apps'])} declaration(s))")


if __name__ == "__main__":
    main()
