//===- tests/reliability_bound_test.cpp - Static-vs-MC soundness gate -----===//
//
// The load-bearing contract of the reliability analysis: for every ISA
// evaluation kernel and every approximation level, the static lower
// bound on P(output bitwise-exact) must never exceed the exact-match
// rate Monte-Carlo fault injection measures on the same compiled
// artifact. The analysis sees only the binary and the FaultRates
// snapshot; the machine draws real faults from the same snapshot — if
// the analysis is optimistic anywhere (a fault event left out of a
// dependence cone, an unsound loop closure, a narrowing misproof), this
// differential catches it.
//
// Gates, per (kernel, level) cell:
//  * bound <= measured rate + 95% CI slack (normal approximation plus a
//    rule-of-three floor for the k=0/k=N boundary);
//  * a bound of exactly 1.0 is a probability-one claim and admits no
//    slack: every trial must match bitwise;
//  * at level None every bound is exactly 1.0 (no special casing in the
//    analysis — per-event factors are all 1.0 there) and every trial is
//    bitwise exact.
//
//===----------------------------------------------------------------------===//

#include "analysis/reliability/bounds.h"

#include "exec/compiled.h"
#include "fault/rates.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

using namespace enerj;

namespace {

const char *Kernels[] = {"barcode",    "fft",       "floodfill",
                         "lu",         "montecarlo", "raytracer",
                         "sor",        "sparsematmult", "trikernel"};

const ApproxLevel Levels[] = {ApproxLevel::None, ApproxLevel::Mild,
                              ApproxLevel::Medium, ApproxLevel::Aggressive};

constexpr int NumSeeds = 400;

/// Bitwise double equality (NaN-safe): the analysis bounds P(bitwise
/// equal), so the measurement must compare representations, not values.
bool sameBits(double A, double B) {
  return std::bit_cast<uint64_t>(A) == std::bit_cast<uint64_t>(B);
}

/// One cell's measured exact-match rates over NumSeeds trials.
struct MeasuredRates {
  double IntExact = 0.0;  ///< r1 bitwise equal to the reference.
  double FpExact = 0.0;   ///< f1 bitwise equal to the reference.
  double BothExact = 0.0; ///< Both — the QosError == 0 event.
  int Trapped = 0;
};

MeasuredRates measure(const exec::CompiledKernel &Kernel, ApproxLevel Level) {
  MeasuredRates Rates;
  int IntHits = 0, FpHits = 0, BothHits = 0;
  FaultConfig Base = FaultConfig::preset(Level);
  for (int Seed = 1; Seed <= NumSeeds; ++Seed) {
    // The same per-trial stream derivation as runCompiledTrial, so these
    // trials are the very executions the evaluation grid scores.
    FaultConfig Config = Base;
    Config.Seed = mixSeed(Base.Seed, static_cast<uint64_t>(Seed));
    exec::FastMachine M(Kernel.Binary, Config);
    exec::FastResult Run = M.run();
    if (Run.Trapped) {
      ++Rates.Trapped;
      continue;
    }
    bool IntOk = M.intReg(1) == Kernel.RefInt;
    bool FpOk = sameBits(M.fpReg(1), Kernel.RefFp);
    IntHits += IntOk;
    FpHits += FpOk;
    BothHits += IntOk && FpOk;
  }
  Rates.IntExact = static_cast<double>(IntHits) / NumSeeds;
  Rates.FpExact = static_cast<double>(FpHits) / NumSeeds;
  Rates.BothExact = static_cast<double>(BothHits) / NumSeeds;
  return Rates;
}

/// 95% upper slack on a measured rate: normal-approximation CI plus the
/// rule-of-three floor (covers rate == 0 or 1, where the normal term
/// vanishes but the true probability may sit up to ~3/N away).
double slack(double Rate) {
  return 1.96 * std::sqrt(Rate * (1.0 - Rate) / NumSeeds) + 3.0 / NumSeeds;
}

/// Asserts the soundness gate for one (bound, measured rate) pair.
void expectSound(double Bound, double Rate, int ExactHits,
                 const std::string &What) {
  EXPECT_GE(Bound, 0.0) << What;
  EXPECT_LE(Bound, 1.0) << What;
  if (Bound == 1.0) {
    // A probability-one claim: any single divergent trial refutes it.
    EXPECT_EQ(ExactHits, NumSeeds) << What << ": bound 1.0 but a trial "
                                   << "diverged from the reference";
  } else {
    EXPECT_LE(Bound, Rate + slack(Rate)) << What;
  }
}

} // namespace

TEST(ReliabilityBound, StaticBoundNeverExceedsMeasuredExactRate) {
  exec::ProgramCache Cache(std::string(ENERJ_FEJ_DIR) + "/isa");
  for (const char *Name : Kernels) {
    for (ApproxLevel Level : Levels) {
      const exec::CompiledKernel &Kernel = Cache.get(Name, Level);
      FaultRates Rates = FaultRates::of(FaultConfig::preset(Level));
      analysis::reliability::ReliabilityReport Report =
          analysis::reliability::analyzeProgram(Kernel.Binary, Rates);
      MeasuredRates Measured = measure(Kernel, Level);
      std::string Cell =
          std::string(Name) + " @ " + approxLevelName(Level);

      // Structural invariants first: the program bound folds in both
      // output bounds, so it can never exceed either.
      EXPECT_LE(Report.ProgramBound, Report.IntOutputBound + 1e-15) << Cell;
      EXPECT_LE(Report.ProgramBound, Report.FpOutputBound + 1e-15) << Cell;
      EXPECT_LE(Report.IntOutputBound, Report.PathBound + 1e-15) << Cell;
      EXPECT_LE(Report.FpOutputBound, Report.PathBound + 1e-15) << Cell;

      expectSound(Report.IntOutputBound, Measured.IntExact,
                  static_cast<int>(Measured.IntExact * NumSeeds + 0.5),
                  Cell + " r1");
      expectSound(Report.FpOutputBound, Measured.FpExact,
                  static_cast<int>(Measured.FpExact * NumSeeds + 0.5),
                  Cell + " f1");
      expectSound(Report.ProgramBound, Measured.BothExact,
                  static_cast<int>(Measured.BothExact * NumSeeds + 0.5),
                  Cell + " program");

      for (const analysis::reliability::SiteBound &S : Report.Sites) {
        EXPECT_GE(S.Bound, 0.0) << Cell;
        EXPECT_LE(S.Bound, 1.0) << Cell;
      }

      if (Level == ApproxLevel::None) {
        EXPECT_FALSE(Report.Conservative) << Cell;
        EXPECT_EQ(Report.PathBound, 1.0) << Cell;
        EXPECT_EQ(Report.IntOutputBound, 1.0) << Cell;
        EXPECT_EQ(Report.FpOutputBound, 1.0) << Cell;
        EXPECT_EQ(Report.ProgramBound, 1.0) << Cell;
        EXPECT_EQ(Report.PreciseMemBound, 1.0) << Cell;
        EXPECT_EQ(Report.ApproxMemBound, 1.0) << Cell;
        for (double Bound : Report.ExitRegBounds)
          EXPECT_EQ(Bound, 1.0) << Cell;
        for (const analysis::reliability::SiteBound &S : Report.Sites)
          EXPECT_EQ(S.Bound, 1.0) << Cell;
        EXPECT_EQ(Measured.Trapped, 0) << Cell;
        EXPECT_EQ(Measured.BothExact, 1.0) << Cell;
      }
    }
  }
}

TEST(ReliabilityBound, AnalysisIsDeterministic) {
  exec::ProgramCache Cache(std::string(ENERJ_FEJ_DIR) + "/isa");
  const exec::CompiledKernel &Kernel =
      Cache.get("fft", ApproxLevel::Medium);
  FaultRates Rates = FaultRates::of(FaultConfig::preset(ApproxLevel::Medium));
  analysis::reliability::ReliabilityReport A =
      analysis::reliability::analyzeProgram(Kernel.Binary, Rates);
  analysis::reliability::ReliabilityReport B =
      analysis::reliability::analyzeProgram(Kernel.Binary, Rates);
  EXPECT_EQ(A.Conservative, B.Conservative);
  EXPECT_TRUE(sameBits(A.PathBound, B.PathBound));
  EXPECT_TRUE(sameBits(A.IntOutputBound, B.IntOutputBound));
  EXPECT_TRUE(sameBits(A.FpOutputBound, B.FpOutputBound));
  EXPECT_TRUE(sameBits(A.ProgramBound, B.ProgramBound));
  EXPECT_EQ(A.BlockEvals, B.BlockEvals);
  ASSERT_EQ(A.Sites.size(), B.Sites.size());
  for (size_t Index = 0; Index < A.Sites.size(); ++Index) {
    EXPECT_EQ(A.Sites[Index].Block, B.Sites[Index].Block);
    EXPECT_EQ(A.Sites[Index].Index, B.Sites[Index].Index);
    EXPECT_TRUE(sameBits(A.Sites[Index].Bound, B.Sites[Index].Bound));
    EXPECT_EQ(A.Sites[Index].Visits, B.Sites[Index].Visits);
  }
}

TEST(ReliabilityBound, BoundsDecreaseMonotonicallyWithLevel) {
  // More aggressive levels only raise fault rates, so every sound bound
  // can only fall (or stay) as the level climbs.
  exec::ProgramCache Cache(std::string(ENERJ_FEJ_DIR) + "/isa");
  for (const char *Name : {"fft", "sor", "lu"}) {
    // One fixed binary analyzed under each rate table: the optimizer
    // prices per level, so per-level binaries could differ and break the
    // comparison for reasons unrelated to the analysis.
    const exec::CompiledKernel &Kernel = Cache.get(Name, ApproxLevel::None);
    double PrevInt = 1.0, PrevFp = 1.0, PrevProgram = 1.0;
    for (ApproxLevel Level : Levels) {
      FaultRates Rates = FaultRates::of(FaultConfig::preset(Level));
      analysis::reliability::ReliabilityReport Report =
          analysis::reliability::analyzeProgram(Kernel.Binary, Rates);
      EXPECT_LE(Report.IntOutputBound, PrevInt + 1e-15) << Name;
      EXPECT_LE(Report.FpOutputBound, PrevFp + 1e-15) << Name;
      EXPECT_LE(Report.ProgramBound, PrevProgram + 1e-15) << Name;
      PrevInt = Report.IntOutputBound;
      PrevFp = Report.FpOutputBound;
      PrevProgram = Report.ProgramBound;
    }
  }
}
