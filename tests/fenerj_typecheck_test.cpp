//===- tests/fenerj_typecheck_test.cpp - Type checker tests ---------------===//

#include "fenerj/typecheck.h"

#include <gtest/gtest.h>

using namespace enerj::fenerj;

namespace {

void accepts(std::string_view Source) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
}

void rejects(std::string_view Source, DiagCode Expected) {
  DiagnosticEngine Diags;
  ClassTable Table;
  std::optional<Program> Prog = compile(Source, Table, Diags);
  EXPECT_FALSE(Prog.has_value())
      << "expected rejection with " << diagCodeName(Expected);
  EXPECT_TRUE(Diags.has(Expected))
      << "expected " << diagCodeName(Expected) << ", got:\n" << Diags.str();
}

} // namespace

TEST(FenerjCheck, PaperIntroExample) {
  // The paper's first example: assigning approx to precise is illegal...
  rejects(R"({
    let @approx int a = 5;
    let int p = 0;
    p = a;
  })",
          DiagCode::ImplicitFlow);
  // ...and becomes legal with an endorsement.
  accepts(R"({
    let @approx int a = 5;
    let int p = 0;
    p = endorse(a);
  })");
  // Precise-to-approx flow is fine (subtyping).
  accepts(R"({
    let @approx int a = 0;
    let int p = 7;
    a = p;
  })");
}

TEST(FenerjCheck, ImplicitFlowThroughInitialization) {
  rejects("{ let @approx float x = 1.5; let float y = x; }",
          DiagCode::ImplicitFlow);
}

TEST(FenerjCheck, ImplicitFlowIntoField) {
  rejects(R"(
    class C { int p; }
    {
      let C c = new C();
      let @approx int a = 1;
      c.p := a;
    }
  )",
          DiagCode::ImplicitFlow);
}

TEST(FenerjCheck, ApproxConditionRejected) {
  // Section 2.4's example: an approximate comparison cannot steer a
  // precise branch.
  rejects(R"({
    let @approx int val = 5;
    let bool flag = false;
    if (val == 5) { flag = true; } else { flag = false; };
    0;
  })",
          DiagCode::ApproxCondition);
  // The sanctioned workaround: if (endorse(val == 5)).
  accepts(R"({
    let @approx int val = 5;
    let bool flag = false;
    if (endorse(val == 5)) { flag = true; } else { flag = false; };
    0;
  })");
}

TEST(FenerjCheck, ApproxWhileConditionRejected) {
  rejects(R"({
    let @approx int i = 0;
    while (i < 10) { i = i + 1; };
  })",
          DiagCode::ApproxCondition);
}

TEST(FenerjCheck, ApproxIndexRejected) {
  rejects(R"({
    let @approx float[] a = new @approx float[10];
    let @approx int i = 3;
    a[i];
  })",
          DiagCode::ApproxIndex);
  accepts(R"({
    let @approx float[] a = new @approx float[10];
    let @approx int i = 3;
    a[endorse(i)];
  })");
}

TEST(FenerjCheck, ApproxArrayLengthRejected) {
  rejects(R"({
    let @approx int n = 10;
    new @approx float[n];
  })",
          DiagCode::ApproxArrayLength);
}

TEST(FenerjCheck, ApproxArrayElementsAcceptPreciseStores) {
  accepts(R"({
    let @approx float[] a = new @approx float[4];
    a[0] := 1.5;
    a[1] := a[0] * 2.0;
    0;
  })");
  // But approximate values cannot land in precise arrays.
  rejects(R"({
    let float[] p = new float[4];
    let @approx float x = 1.0;
    p[0] := x;
  })",
          DiagCode::ImplicitFlow);
}

TEST(FenerjCheck, ContextAdaptationOnFieldAccess) {
  // Reading a @context field of an approx instance yields approx data;
  // storing it into precise state must be rejected.
  rejects(R"(
    class Pair { @context int x; }
    {
      let @approx Pair a = new @approx Pair();
      let int p = a.x;
    }
  )",
          DiagCode::ImplicitFlow);
  // On a precise instance the same read is precise.
  accepts(R"(
    class Pair { @context int x; }
    {
      let @precise Pair p = new @precise Pair();
      let int v = p.x;
    }
  )");
}

TEST(FenerjCheck, ContextArgumentsAdapt) {
  // The paper: the argument to p.addToBoth() must be precise; the
  // argument to a.addToBoth() may be approximate.
  const char *Classes = R"(
    class IntPair {
      @context int x;
      int addToBoth(@context int amount) { this.x := this.x + amount; 0; }
    }
  )";
  accepts(std::string(Classes) + R"({
    let @approx IntPair a = new @approx IntPair();
    let @approx int amt = 3;
    a.addToBoth(amt);
  })");
  rejects(std::string(Classes) + R"({
    let @precise IntPair p = new @precise IntPair();
    let @approx int amt = 3;
    p.addToBoth(amt);
  })",
          DiagCode::ImplicitFlow);
}

TEST(FenerjCheck, TopReceiverLosesContext) {
  // Through a @top receiver, a @context field adapts to 'lost': reads are
  // allowed, writes are not (the field-write rule of Section 3.1).
  const char *Classes = R"(
    class Pair { @context int x; }
  )";
  accepts(std::string(Classes) + R"({
    let @top Pair t = new @precise Pair();
    t.x;
  })");
  rejects(std::string(Classes) + R"({
    let @top Pair t = new @precise Pair();
    t.x := 3;
  })",
          DiagCode::LostAssignment);
}

TEST(FenerjCheck, ReferenceQualifiersInvariant) {
  // precise C is not a subtype of approx C (Section 2.1).
  rejects(R"(
    class C { int f; }
    {
      let @approx C a = new @precise C();
    }
  )",
          DiagCode::ImplicitFlow);
}

TEST(FenerjCheck, MethodOverloadingOnReceiver) {
  // The FloatSet pattern (Section 2.5.2): the precise variant may treat
  // @context members as precise because it is only callable on precise
  // receivers; the approx variant sees them as approximate.
  const char *Classes = R"(
    class S {
      @context float v;
      float get() precise { this.v; }
      @approx float get() approx { this.v; }
    }
  )";
  // Precise receiver uses the precise variant: result flows to float.
  accepts(std::string(Classes) + R"({
    let @precise S s = new @precise S();
    let float x = s.get();
  })");
  // Approximate receiver selects the approx variant: result is approx.
  rejects(std::string(Classes) + R"({
    let @approx S s = new @approx S();
    let float x = s.get();
  })",
          DiagCode::ImplicitFlow);
  accepts(std::string(Classes) + R"({
    let @approx S s = new @approx S();
    let @approx float x = s.get();
  })");
}

TEST(FenerjCheck, ReturnTypeChecked) {
  rejects(R"(
    class C {
      @approx int a;
      int get() { this.a; }
    }
    { 0; }
  )",
          DiagCode::ReturnMismatch);
}

TEST(FenerjCheck, EndorseRequiresPrimitive) {
  rejects(R"(
    class C { int f; }
    { let C c = new C(); endorse(c); }
  )",
          DiagCode::BadEndorse);
}

TEST(FenerjCheck, CastRules) {
  // Upcast to top: fine.
  accepts("{ let @approx int a = 1; cast<@top int>(a); }");
  // Numeric conversion keeping approximation: fine.
  accepts("{ let @approx int a = 1; let @approx float f = "
          "cast<@approx float>(a); 0; }");
  // Casting approx to precise is not a cast — that's endorse's job.
  rejects("{ let @approx int a = 1; cast<int>(a); }", DiagCode::BadCast);
  // Class downcast with stable qualifier: accepted statically.
  accepts(R"(
    class A { int f; }
    class B extends A { int g; }
    {
      let A a = new B();
      let B b = cast<B>(a);
      0;
    }
  )");
}

TEST(FenerjCheck, ContextOutsideClassRejected) {
  rejects("{ let @context int x = 0; }", DiagCode::ContextOutsideClass);
  rejects("{ new @context float[3]; }", DiagCode::ContextOutsideClass);
}

TEST(FenerjCheck, NameResolutionErrors) {
  rejects("{ x; }", DiagCode::UnknownVariable);
  rejects("{ new C(); }", DiagCode::UnknownClass);
  rejects(R"(
    class C { int f; }
    { let C c = new C(); c.g; }
  )",
          DiagCode::UnknownField);
  rejects(R"(
    class C { int f; }
    { let C c = new C(); c.m(); }
  )",
          DiagCode::UnknownMethod);
  rejects(R"(
    class C { int m(int a) { a; } }
    { let C c = new C(); c.m(); }
  )",
          DiagCode::ArityMismatch);
}

TEST(FenerjCheck, HierarchyErrors) {
  rejects("class A {} class A {} { 0; }", DiagCode::DuplicateClass);
  rejects("class A { int f; int f; } { 0; }", DiagCode::DuplicateMember);
  rejects("class A extends B { int f; } { 0; }", DiagCode::UnknownClass);
  rejects("class A extends B {} class B extends A {} { 0; }",
          DiagCode::CyclicInheritance);
}

TEST(FenerjCheck, OperatorTypeErrors) {
  rejects("{ 1 + 1.5; }", DiagCode::BadOperand);       // int + float.
  rejects("{ true + false; }", DiagCode::BadOperand);  // bool arithmetic.
  rejects("{ 1 && 2; }", DiagCode::BadOperand);        // int logical.
  rejects("{ 1.5 % 2.0; }", DiagCode::BadOperand);     // float modulo.
  rejects("{ !3; }", DiagCode::BadOperand);
  rejects("{ -true; }", DiagCode::BadOperand);
}

TEST(FenerjCheck, MixedPrecisionArithmeticIsApprox) {
  // precise + approx = approx (the overloading of Section 2.3): storing
  // the result precisely must fail.
  rejects(R"({
    let @approx int a = 1;
    let int p = 2;
    let int r = p + a;
  })",
          DiagCode::ImplicitFlow);
  accepts(R"({
    let @approx int a = 1;
    let int p = 2;
    let @approx int r = p + a;
    0;
  })");
}

TEST(FenerjCheck, BranchTypesMustAgree) {
  rejects("{ if (true) { 1; } else { 1.5; }; }", DiagCode::BadOperand);
  // Branches of different precision join at the approximate supertype.
  accepts(R"({
    let @approx int a = 1;
    let @approx int r = if (true) { 1; } else { a; };
    0;
  })");
}

TEST(FenerjCheck, InheritedFieldsAndMethods) {
  accepts(R"(
    class A { @approx int shared; }
    class B extends A { int own; }
    {
      let B b = new B();
      let @approx int x = b.shared;
      b.own := 2;
      0;
    }
  )");
}

TEST(FenerjCheck, WholeIntPairExampleChecks) {
  // The complete Section 2.5.1 example, as a program.
  accepts(R"(
    class IntPair {
      @context int x;
      @context int y;
      @approx int numAdditions;
      int addToBoth(@context int amount) {
        this.x := this.x + amount;
        this.y := this.y + amount;
        this.numAdditions := this.numAdditions + 1;
        0;
      }
    }
    {
      let @approx IntPair a = new @approx IntPair();
      let @precise IntPair p = new @precise IntPair();
      a.addToBoth(3);
      p.addToBoth(4);
      let int sum = p.x + p.y;
      let @approx int asum = a.x + a.y;
      sum;
    }
  )");
}

TEST(FenerjCheck, ArrayElementContextAdaptsThroughReceivers) {
  // A @context element array inside a class: reads through an approximate
  // receiver yield approximate elements.
  const char *Classes = R"(
    class Buf {
      @context float[] data;
      int init() { this.data := new @context float[4]; 0; }
    }
  )";
  rejects(std::string(Classes) + R"({
    let @approx Buf b = new @approx Buf();
    b.init();
    let float x = b.data[0];
  })",
          DiagCode::ImplicitFlow);
  accepts(std::string(Classes) + R"({
    let @precise Buf b = new @precise Buf();
    b.init();
    let float x = b.data[0];
    0;
  })");
}

TEST(FenerjCheck, LostArrayElementsCannotBeWritten) {
  // Through a @top receiver the element qualifier adapts to 'lost':
  // reads are fine, writes are not.
  const char *Classes = R"(
    class Buf {
      @context float[] data;
      int init() { this.data := new @context float[4]; 0; }
    }
  )";
  accepts(std::string(Classes) + R"({
    let @top Buf t = new @precise Buf();
    t.data[0];
  })");
  rejects(std::string(Classes) + R"({
    let @top Buf t = new @precise Buf();
    t.data[0] := 1.0;
  })",
          DiagCode::LostAssignment);
}

TEST(FenerjCheck, ApproxOnlyMethodsNotCallableOnPreciseReceivers) {
  // A method with only an 'approx' variant is not callable on a precise
  // receiver — the variant was checked assuming approximate context.
  rejects(R"(
    class S {
      @approx int only() approx { 1; }
    }
    {
      let @precise S s = new @precise S();
      s.only();
    }
  )",
          DiagCode::UnknownMethod);
  accepts(R"(
    class S {
      @approx int only() approx { 1; }
    }
    {
      let @approx S s = new @approx S();
      let @approx int x = s.only();
      0;
    }
  )");
}

TEST(FenerjCheck, PreciseVariantBodyMayUseContextAsPrecise) {
  // Inside a 'precise'-marked variant, @context members are precise.
  accepts(R"(
    class S {
      @context int v;
      int sum() precise { this.v + 1; }
    }
    { let @precise S s = new @precise S(); s.sum(); }
  )");
  // But the symmetric claim fails in an unmarked (polymorphic) method.
  rejects(R"(
    class S {
      @context int v;
      int sum() { this.v + 1; }
    }
    { 0; }
  )",
          DiagCode::ReturnMismatch);
}

TEST(FenerjCheck, WhileResultIsPreciseInt) {
  accepts("{ let int r = while (false) { 1; }; r; }");
  rejects("{ let float r = while (false) { 1; }; r; }",
          DiagCode::BadOperand);
}

TEST(FenerjCheck, EndorseInsideApproximateExpressionIsFine) {
  // Endorsement results are precise and flow anywhere, including back
  // into approximate arithmetic.
  accepts(R"({
    let @approx int a = 3;
    let @approx int b = endorse(a) + a;
    0;
  })");
}

TEST(FenerjCheck, NullComparisonsArePreciseConditions) {
  accepts(R"(
    class C { int f; }
    {
      let C c = null;
      if (c == null) { 1; } else { 0; };
    }
  )");
}

TEST(FenerjCheck, DeepInheritanceChains) {
  accepts(R"(
    class A { @approx int a; }
    class B extends A { @context int b; }
    class C extends B { int c; }
    {
      let @approx C obj = new @approx C();
      let @approx int x = obj.a + obj.b;
      obj.c := 3;
      obj.c;
    }
  )");
}
