//===- tests/simulator_test.cpp - Simulator runtime tests -----------------===//

#include "runtime/simulator.h"

#include <gtest/gtest.h>

using namespace enerj;

TEST(Simulator, NoCurrentSimulatorByDefault) {
  EXPECT_EQ(Simulator::current(), nullptr);
}

TEST(Simulator, ScopeInstallsAndRestores) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  {
    SimulatorScope Scope(Sim);
    EXPECT_EQ(Simulator::current(), &Sim);
    Simulator Inner(FaultConfig::preset(ApproxLevel::Mild));
    {
      SimulatorScope InnerScope(Inner);
      EXPECT_EQ(Simulator::current(), &Inner);
    }
    EXPECT_EQ(Simulator::current(), &Sim);
  }
  EXPECT_EQ(Simulator::current(), nullptr);
}

TEST(Simulator, CountsPreciseOps) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  Sim.countPreciseInt();
  Sim.countPreciseInt();
  Sim.countPreciseFp();
  RunStats Stats = Sim.stats();
  EXPECT_EQ(Stats.Ops.PreciseInt, 2u);
  EXPECT_EQ(Stats.Ops.PreciseFp, 1u);
  EXPECT_EQ(Sim.now(), 3u); // One cycle per op.
}

TEST(Simulator, ApproxOpsCountedAndExactAtNone) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  EXPECT_EQ(Sim.intResult<int32_t>(41), 41);
  EXPECT_EQ(Sim.fpResult(2.5), 2.5);
  RunStats Stats = Sim.stats();
  EXPECT_EQ(Stats.Ops.ApproxInt, 1u);
  EXPECT_EQ(Stats.Ops.ApproxFp, 1u);
  EXPECT_EQ(Stats.Ops.TimingErrors, 0u);
}

TEST(Simulator, TimingErrorsAccumulateAtAggressive) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Aggressive));
  for (int I = 0; I < 100000; ++I)
    Sim.intResult<int32_t>(I);
  RunStats Stats = Sim.stats();
  EXPECT_EQ(Stats.Ops.ApproxInt, 100000u);
  // ~1e-2 error rate.
  EXPECT_NEAR(static_cast<double>(Stats.Ops.TimingErrors) / 100000, 1e-2,
              3e-3);
}

TEST(Simulator, NarrowOperandRespectsConfig) {
  Simulator Medium(FaultConfig::preset(ApproxLevel::Medium));
  float V = 123.456f;
  float Narrow = Medium.narrowOperand(V);
  EXPECT_NE(Narrow, V);
  EXPECT_NEAR(Narrow, V, 1.0f);

  Simulator None(FaultConfig::preset(ApproxLevel::None));
  EXPECT_EQ(None.narrowOperand(V), V);
  // Integer operands pass through at any level.
  EXPECT_EQ(Medium.narrowOperand(int32_t(77)), 77);
}

TEST(Simulator, SramFaultFreeAtNone) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  for (int I = 0; I < 1000; ++I) {
    EXPECT_EQ(Sim.sramRead(I), I);
    EXPECT_EQ(Sim.sramWrite(I), I);
  }
}

TEST(Simulator, SramReadUpsetsHappenAtAggressive) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Aggressive));
  int Flips = 0;
  for (int I = 0; I < 10000; ++I)
    Flips += (Sim.sramRead<int32_t>(0) != 0);
  EXPECT_GT(Flips, 0);
  EXPECT_LT(Flips, 2000);
}

TEST(Simulator, DramDecayDependsOnElapsedTime) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.CyclesPerSecond = 1e3; // Make decay visible quickly.
  Simulator Sim(C);
  Sim.ledger().tick(100000); // 100 modeled seconds pass.
  int Flips = 0;
  for (int I = 0; I < 2000; ++I)
    Flips += (Sim.dramAccess<int32_t>(0, 0) != 0);
  // 100 s at 1e-3/s per bit: ~9.5% per bit, over 32 bits nearly certain.
  EXPECT_GT(Flips, 1500);

  // Freshly accessed data does not decay.
  uint64_t Now = Sim.now();
  EXPECT_EQ(Sim.dramAccess<int32_t>(7, Now), 7);
}

TEST(Simulator, DramAccessTicksClock) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  uint64_t Before = Sim.now();
  Sim.dramAccess<int32_t>(1, Before);
  EXPECT_EQ(Sim.now(), Before + 1);
}

TEST(Simulator, StatsSnapshotIncludesStorage) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Medium));
  LeaseHandle H = Sim.ledger().lease(Region::Dram, 10, 90);
  Sim.ledger().tick(100);
  RunStats Stats = Sim.stats();
  EXPECT_DOUBLE_EQ(Stats.Storage.DramPrecise, 1000.0);
  EXPECT_DOUBLE_EQ(Stats.Storage.DramApprox, 9000.0);
  Sim.ledger().release(H);
}

TEST(Simulator, DeterministicGivenSeed) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.Seed = 1234;
  Simulator A(C), B(C);
  for (int I = 0; I < 10000; ++I)
    EXPECT_EQ(A.intResult<int32_t>(I), B.intResult<int32_t>(I));
}

TEST(Simulator, DifferentSeedsDiffer) {
  FaultConfig C1 = FaultConfig::preset(ApproxLevel::Aggressive);
  FaultConfig C2 = C1;
  C1.Seed = 1;
  C2.Seed = 2;
  Simulator A(C1), B(C2);
  int Diffs = 0;
  for (int I = 0; I < 100000; ++I)
    Diffs += (A.intResult<int32_t>(I) != B.intResult<int32_t>(I));
  EXPECT_GT(Diffs, 0);
}
