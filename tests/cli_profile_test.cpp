//===- tests/cli_profile_test.cpp - fenerj_tool profile CLI contract ------===//
//
// Black-box tests of the profile subcommand, in the style of
// cli_eval_test: malformed arguments produce a diagnostic and exit 2,
// and the happy paths (text table, schema-v1 JSON, trace export) emit
// what the documentation promises. The binary path comes from CMake via
// ENERJ_FENERJ_TOOL.
//
//===----------------------------------------------------------------------===//

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>

#ifndef ENERJ_FENERJ_TOOL
#error "ENERJ_FENERJ_TOOL must point at the fenerj_tool binary"
#endif

namespace {

int runTool(const std::string &Args, std::string &Output) {
  std::string Command =
      std::string("\"") + ENERJ_FENERJ_TOOL + "\" " + Args + " 2>&1";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return -1;
  Output.clear();
  std::array<char, 4096> Buffer;
  size_t Read;
  while ((Read = fread(Buffer.data(), 1, Buffer.size(), Pipe)) > 0)
    Output.append(Buffer.data(), Read);
  int Status = pclose(Pipe);
  if (Status == -1)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

int runTool(const std::string &Args) {
  std::string Discard;
  return runTool(Args, Discard);
}

/// The cheapest real profile invocation: one seed, no QoS-delta reruns.
const char *const Quick = "profile montecarlo --seeds 1 --no-qos-delta";

} // namespace

TEST(CliProfile, RequiresAnApplicationName) {
  std::string Output;
  EXPECT_EQ(runTool("profile", Output), 2);
  EXPECT_NE(Output.find("application"), std::string::npos);
  // A flag is not an app name.
  EXPECT_EQ(runTool("profile --json"), 2);
}

TEST(CliProfile, RejectsUnknownApp) {
  std::string Output;
  EXPECT_EQ(runTool("profile nosuchapp", Output), 2);
  EXPECT_NE(Output.find("nosuchapp"), std::string::npos);
  // The diagnostic lists the known apps.
  EXPECT_NE(Output.find("montecarlo"), std::string::npos);
}

TEST(CliProfile, RejectsMalformedFlags) {
  EXPECT_EQ(runTool("profile montecarlo --seeds abc"), 2);
  EXPECT_EQ(runTool("profile montecarlo --seeds 0"), 2);
  EXPECT_EQ(runTool("profile montecarlo --seeds"), 2);
  EXPECT_EQ(runTool("profile montecarlo --threads -1"), 2);
  EXPECT_EQ(runTool("profile montecarlo --top -2"), 2);
  EXPECT_EQ(runTool("profile montecarlo --level extreme"), 2);
  EXPECT_EQ(runTool("profile montecarlo --trace"), 2);
  std::string Output;
  EXPECT_EQ(runTool("profile montecarlo --frobnicate", Output), 2);
  EXPECT_NE(Output.find("frobnicate"), std::string::npos);
}

TEST(CliProfile, TextTableSmoke) {
  std::string Output;
  EXPECT_EQ(runTool(Quick, Output), 0);
  EXPECT_NE(Output.find("Profile: montecarlo"), std::string::npos);
  EXPECT_NE(Output.find("region"), std::string::npos);
  EXPECT_NE(Output.find("share%"), std::string::npos);
  EXPECT_NE(Output.find("Share sum"), std::string::npos);
}

TEST(CliProfile, JsonSmoke) {
  std::string Output;
  EXPECT_EQ(runTool(std::string(Quick) + " --json", Output), 0);
  EXPECT_EQ(Output.rfind("{\"tool\":\"enerj-profile\",\"version\":1,", 0),
            0u);
  EXPECT_NE(Output.find("\"app\":\"montecarlo\""), std::string::npos);
  EXPECT_NE(Output.find("\"sites\":["), std::string::npos);
}

TEST(CliProfile, TraceExportWritesALoadableDocument) {
  std::string Path = ::testing::TempDir() + "cli_profile_trace.json";
  std::remove(Path.c_str());
  std::string Output;
  EXPECT_EQ(runTool(std::string(Quick) + " --trace \"" + Path + "\"",
                    Output),
            0);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "trace file was not written: " << Path;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Trace = Buffer.str();
  EXPECT_EQ(Trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Trace.find("\"attemptBegin\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(CliProfile, UsageMentionsProfile) {
  std::string Output;
  runTool("", Output);
  EXPECT_NE(Output.find("profile"), std::string::npos);
}
