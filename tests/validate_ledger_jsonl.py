#!/usr/bin/env python3
"""Validate a run-ledger manifest against line schema v1.

`fenerj_tool eval|profile|bound --ledger <f>` appends one single-line
JSON record per invocation; `fenerj_tool runs` lists, diffs, and gates
the file. This script checks every line of a ledger: structure, key
presence, key order, and the cross-field invariants (outcome tallies sum
to trials, trials = apps x levels x seeds for eval entries, throughput =
trials / elapsed). Value goldens are deliberately avoided — the
deterministic columns are pinned bitwise by tests/obs_ledger_test.cpp;
this script is the CI gate that real tool output still matches the
documented schema (docs/OBSERVABILITY.md).

Usage: validate_ledger_jsonl.py <ledger.jsonl>   (or stdin when no args)
Exits 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

TOP_KEYS = ["tool", "version", "command", "payloadVersion", "configHash",
            "configSummary", "gridDigest", "apps", "levels", "seeds",
            "trials", "outcomes", "qosMean", "energyMean",
            "effectiveEnergyMean", "elapsedSec", "trialsPerSec"]
OUTCOME_KEYS = ["ok", "sloViolated", "aborted", "retried", "degraded",
                "powerFailed"]
COMMANDS = {"eval", "profile", "bound"}


def fail(message):
    print(f"validate_ledger_jsonl: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect_hex64(value, where):
    if not isinstance(value, str) or not value.startswith("0x"):
        fail(f"{where}: not a 0x-prefixed hex string: {value!r}")
    try:
        int(value, 16)
    except ValueError:
        fail(f"{where}: not parseable hex: {value!r}")


def validate_line(line, where):
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as err:
        fail(f"{where}: not valid JSON: {err}")
    if not isinstance(doc, dict):
        fail(f"{where}: expected an object")
    if list(doc.keys()) != TOP_KEYS:
        fail(f"{where}: keys {list(doc.keys())} != expected {TOP_KEYS}")
    if doc["tool"] != "enerj-ledger":
        fail(f"{where}: tool is {doc['tool']!r}, expected 'enerj-ledger'")
    if doc["version"] != 1:
        fail(f"{where}: version is {doc['version']!r}, expected 1")
    if doc["command"] not in COMMANDS:
        fail(f"{where}: unknown command {doc['command']!r}")
    expect_hex64(doc["configHash"], f"{where}.configHash")
    expect_hex64(doc["gridDigest"], f"{where}.gridDigest")
    if not isinstance(doc["configSummary"], str) or not doc["configSummary"]:
        fail(f"{where}.configSummary: not a non-empty string")
    if not doc["configSummary"].startswith(doc["command"]):
        fail(f"{where}.configSummary: does not start with the command name")
    for key in ("payloadVersion", "apps", "levels", "seeds", "trials"):
        if not isinstance(doc[key], int) or doc[key] < 0:
            fail(f"{where}.{key}: not a non-negative integer")
    outcomes = doc["outcomes"]
    if not isinstance(outcomes, dict) or list(outcomes.keys()) != \
            OUTCOME_KEYS:
        fail(f"{where}.outcomes: keys != expected {OUTCOME_KEYS}")
    for key in OUTCOME_KEYS:
        if not isinstance(outcomes[key], int) or outcomes[key] < 0:
            fail(f"{where}.outcomes.{key}: not a non-negative integer")
    if sum(outcomes.values()) != doc["trials"]:
        fail(f"{where}: outcomes sum to {sum(outcomes.values())}, not "
             f"trials={doc['trials']}")
    if doc["command"] == "eval" and \
            doc["trials"] != doc["apps"] * doc["levels"] * doc["seeds"]:
        fail(f"{where}: trials {doc['trials']} != apps x levels x seeds")
    for key in ("qosMean", "energyMean", "effectiveEnergyMean",
                "elapsedSec", "trialsPerSec"):
        if not isinstance(doc[key], (int, float)):
            fail(f"{where}.{key}: not a number")
    if doc["elapsedSec"] > 0 and doc["trials"] > 0:
        expected = doc["trials"] / doc["elapsedSec"]
        if abs(doc["trialsPerSec"] - expected) > 1e-6 * max(1.0, expected):
            fail(f"{where}: trialsPerSec {doc['trialsPerSec']} != "
                 f"trials/elapsedSec {expected}")
    return doc


def main():
    if len(sys.argv) > 2:
        fail("usage: validate_ledger_jsonl.py [ledger.jsonl]")
    if len(sys.argv) == 2:
        try:
            with open(sys.argv[1]) as handle:
                text = handle.read()
        except OSError as err:
            fail(f"{sys.argv[1]}: {err}")
        name = sys.argv[1]
    else:
        text = sys.stdin.read()
        name = "stdin"

    entries = 0
    commands = {}
    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        doc = validate_line(line, f"{name}:{number}")
        entries += 1
        commands[doc["command"]] = commands.get(doc["command"], 0) + 1
    if entries == 0:
        fail(f"{name}: no ledger entries")
    tally = ", ".join(f"{k}={v}" for k, v in sorted(commands.items()))
    print(f"validate_ledger_jsonl: OK ({entries} entr(y/ies): {tally})")


if __name__ == "__main__":
    main()
