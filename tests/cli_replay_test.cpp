//===- tests/cli_replay_test.cpp - replay / runs CLI contract -------------===//
//
// Black-box tests of the flight-recorder CLI surface: `replay` verifies
// a captured journal bitwise (exit 0) and flags tampering (exit 1),
// `replay --blame` renders the counterfactual ranking, and `runs`
// lists, diffs, and gates the run ledger — including the regression
// path, where a doctored baseline must fail the check with exit 1 while
// an honest rerun passes.
//
//===----------------------------------------------------------------------===//

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <unistd.h>

#ifndef ENERJ_FENERJ_TOOL
#error "ENERJ_FENERJ_TOOL must point at the fenerj_tool binary"
#endif

namespace {

int runTool(const std::string &Args, std::string &Output) {
  std::string Command =
      std::string("\"") + ENERJ_FENERJ_TOOL + "\" " + Args + " 2>&1";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return -1;
  Output.clear();
  std::array<char, 4096> Buffer;
  size_t Read;
  while ((Read = fread(Buffer.data(), 1, Buffer.size(), Pipe)) > 0)
    Output.append(Buffer.data(), Read);
  int Status = pclose(Pipe);
  if (Status == -1)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

int runTool(const std::string &Args) {
  std::string Discard;
  return runTool(Args, Discard);
}

/// A scratch directory seeded with journals and a two-entry ledger,
/// shared by the suite (capture is deterministic, so building it once
/// is safe).
class CliReplay : public ::testing::Test {
protected:
  static std::string Dir;
  static std::string Ledger;

  static void SetUpTestSuite() {
    // ctest runs each TEST_F in its own process, in parallel; the
    // scratch directory must be per-process or the fixtures race.
    Dir = ::testing::TempDir() + "cli_replay_scratch_" +
          std::to_string(static_cast<long>(getpid()));
    Ledger = Dir + "/ledger.jsonl";
    ASSERT_EQ(std::system(("rm -rf '" + Dir + "' && mkdir -p '" + Dir +
                           "'")
                              .c_str()),
              0);
    // Seed 1 is sampled; seed 2's sloViolated trial is always captured.
    ASSERT_EQ(runTool("eval --apps sor --levels aggressive --seeds 2 "
                      "--slo 0.05 --max-retries 1 --no-degrade "
                      "--journal-dir " +
                      Dir + " --ledger " + Ledger),
              0);
    ASSERT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 2 "
                      "--ledger " +
                      Ledger),
              0);
  }

  static void TearDownTestSuite() {
    std::system(("rm -rf '" + Dir + "'").c_str());
  }

  static std::string journalPath() {
    return Dir + "/sor-aggressive-interp-seed1.journal.json";
  }
};

std::string CliReplay::Dir;
std::string CliReplay::Ledger;

} // namespace

TEST_F(CliReplay, ReplayVerifiesACapturedJournal) {
  std::string Output;
  EXPECT_EQ(runTool("replay " + journalPath(), Output), 0);
  EXPECT_NE(Output.find("replay: match"), std::string::npos);
  EXPECT_NE(Output.find("\"outcome\":\"sloViolated\""), std::string::npos);
}

TEST_F(CliReplay, ReplayFlagsATamperedJournal) {
  // Doctor the recorded QoS: the re-execution must disagree, print both
  // digests, and exit nonzero.
  std::ifstream In(journalPath());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();
  size_t At = Text.find("\"digest\":{\"qos\":");
  ASSERT_NE(At, std::string::npos);
  Text.replace(At + 16, 0, "4"); // Prepend a digit to the QoS number.
  std::string Tampered = Dir + "/tampered.journal.json";
  {
    std::ofstream Out(Tampered, std::ios::trunc);
    Out << Text;
  }
  std::string Output;
  EXPECT_EQ(runTool("replay " + Tampered, Output), 1);
  EXPECT_NE(Output.find("replay: MISMATCH"), std::string::npos);
  EXPECT_NE(Output.find("recorded"), std::string::npos);
  EXPECT_NE(Output.find("replayed"), std::string::npos);
}

TEST_F(CliReplay, ReplayRejectsGarbageInput) {
  std::string Bad = Dir + "/not_a_journal.json";
  {
    std::ofstream Out(Bad, std::ios::trunc);
    Out << "{\"tool\":\"other\"}\n";
  }
  std::string Output;
  EXPECT_EQ(runTool("replay " + Bad, Output), 1);
  EXPECT_EQ(runTool("replay " + Dir + "/nosuchfile.json", Output), 1);
  EXPECT_EQ(runTool("replay", Output), 2);
  EXPECT_EQ(runTool("replay --frobnicate " + journalPath(), Output), 2);
}

TEST_F(CliReplay, BlameRanksTheJournaledFaultSites) {
  std::string Output;
  EXPECT_EQ(runTool("replay " + journalPath() + " --blame", Output), 0);
  EXPECT_NE(Output.find("blame:"), std::string::npos);
  EXPECT_NE(Output.find("qosDelta"), std::string::npos);
  EXPECT_NE(Output.find("sweeps"), std::string::npos);
}

TEST_F(CliReplay, RunsListShowsEveryLedgerEntry) {
  std::string Output;
  EXPECT_EQ(runTool("runs list " + Ledger, Output), 0);
  EXPECT_NE(Output.find("configHash"), std::string::npos);
  // Two invocations -> entries 0 and 1.
  EXPECT_NE(Output.find("   0 eval"), std::string::npos);
  EXPECT_NE(Output.find("   1 eval"), std::string::npos);
}

TEST_F(CliReplay, RunsDiffComparesTwoEntries) {
  std::string Output;
  EXPECT_EQ(runTool("runs diff " + Ledger + " 0 -1", Output), 0);
  EXPECT_NE(Output.find("DIFFERENT config"), std::string::npos);
  EXPECT_NE(Output.find("qosMean"), std::string::npos);
  EXPECT_EQ(runTool("runs diff " + Ledger + " 0 7", Output), 2);
  EXPECT_NE(Output.find("bad entry index"), std::string::npos);
}

TEST_F(CliReplay, RunsCheckPassesAnHonestBaseline) {
  std::string Baseline = Dir + "/baseline.json";
  {
    std::ofstream Out(Baseline, std::ios::trunc);
    Out << "{\"command\":\"eval\",\"qosMeanMax\":1.0,"
           "\"effectiveEnergyMeanMax\":2.0,\"trialsPerSecMin\":0.0001}\n";
  }
  std::string Output;
  EXPECT_EQ(runTool("runs check " + Ledger + " --baseline " + Baseline,
                    Output),
            0);
  EXPECT_NE(Output.find("all gates passed"), std::string::npos);
}

TEST_F(CliReplay, RunsCheckFlagsAnInjectedQosRegression) {
  // An impossible QoS ceiling simulates a regression: the check must
  // name the failing gate and exit 1.
  std::string Baseline = Dir + "/regression.json";
  {
    std::ofstream Out(Baseline, std::ios::trunc);
    Out << "{\"command\":\"eval\",\"qosMeanMax\":-1.0}\n";
  }
  std::string Output;
  EXPECT_EQ(runTool("runs check " + Ledger + " --baseline " + Baseline,
                    Output),
            1);
  EXPECT_NE(Output.find("FAIL qosMean"), std::string::npos);
  EXPECT_NE(Output.find("FAILED"), std::string::npos);
}

TEST_F(CliReplay, RunsCheckRequiresAMatchingEntry) {
  std::string Baseline = Dir + "/orphan.json";
  {
    std::ofstream Out(Baseline, std::ios::trunc);
    Out << "{\"command\":\"profile\",\"qosMeanMax\":1.0}\n";
  }
  std::string Output;
  EXPECT_EQ(runTool("runs check " + Ledger + " --baseline " + Baseline,
                    Output),
            1);
  EXPECT_NE(Output.find("no ledger entry matches"), std::string::npos);
}

TEST_F(CliReplay, RunsRejectsMalformedInvocations) {
  EXPECT_EQ(runTool("runs"), 2);
  EXPECT_EQ(runTool("runs list"), 2);
  EXPECT_EQ(runTool("runs frob " + Ledger), 2);
  EXPECT_EQ(runTool("runs diff " + Ledger + " 0"), 2);
  EXPECT_EQ(runTool("runs check " + Ledger), 2);
  std::string Output;
  EXPECT_EQ(runTool("runs list " + Dir + "/nosuchledger.jsonl", Output), 1);
}
