//===- tests/memory_test.cpp - Byte-second ledger tests -------------------===//

#include "arch/memory.h"

#include <gtest/gtest.h>

using namespace enerj;

TEST(MemoryLedger, ClockStartsAtZeroAndTicks) {
  MemoryLedger Ledger;
  EXPECT_EQ(Ledger.now(), 0u);
  Ledger.tick();
  EXPECT_EQ(Ledger.now(), 1u);
  Ledger.tick(41);
  EXPECT_EQ(Ledger.now(), 42u);
}

TEST(MemoryLedger, LeaseAccumulatesByteCycles) {
  MemoryLedger Ledger;
  LeaseHandle H = Ledger.lease(Region::Sram, 4, 0);
  Ledger.tick(10);
  Ledger.release(H);
  StorageStats S = Ledger.snapshot();
  EXPECT_DOUBLE_EQ(S.SramPrecise, 40.0);
  EXPECT_DOUBLE_EQ(S.SramApprox, 0.0);
  EXPECT_DOUBLE_EQ(S.DramPrecise, 0.0);
}

TEST(MemoryLedger, MixedLeaseSplitsBuckets) {
  MemoryLedger Ledger;
  LeaseHandle H = Ledger.lease(Region::Dram, 64, 192);
  Ledger.tick(100);
  Ledger.release(H);
  StorageStats S = Ledger.snapshot();
  EXPECT_DOUBLE_EQ(S.DramPrecise, 6400.0);
  EXPECT_DOUBLE_EQ(S.DramApprox, 19200.0);
  EXPECT_DOUBLE_EQ(S.dramApproxFraction(), 0.75);
}

TEST(MemoryLedger, SnapshotIncludesLiveLeases) {
  MemoryLedger Ledger;
  Ledger.lease(Region::Sram, 0, 8);
  Ledger.tick(5);
  StorageStats S = Ledger.snapshot();
  EXPECT_DOUBLE_EQ(S.SramApprox, 40.0);
  // Snapshot does not end the lease; more time keeps accruing.
  Ledger.tick(5);
  EXPECT_DOUBLE_EQ(Ledger.snapshot().SramApprox, 80.0);
}

TEST(MemoryLedger, ZeroDurationLeaseContributesNothing) {
  MemoryLedger Ledger;
  LeaseHandle H = Ledger.lease(Region::Dram, 100, 100);
  Ledger.release(H);
  StorageStats S = Ledger.snapshot();
  EXPECT_DOUBLE_EQ(S.dramTotal(), 0.0);
}

TEST(MemoryLedger, HandleReuseAfterRelease) {
  MemoryLedger Ledger;
  LeaseHandle A = Ledger.lease(Region::Sram, 4, 0);
  Ledger.tick(2);
  Ledger.release(A);
  LeaseHandle B = Ledger.lease(Region::Dram, 0, 8);
  Ledger.tick(3);
  Ledger.release(B);
  StorageStats S = Ledger.snapshot();
  EXPECT_DOUBLE_EQ(S.SramPrecise, 8.0);
  EXPECT_DOUBLE_EQ(S.DramApprox, 24.0);
  EXPECT_EQ(Ledger.liveLeases(), 0u);
}

TEST(MemoryLedger, ManyLeases) {
  MemoryLedger Ledger;
  std::vector<LeaseHandle> Handles;
  for (int I = 0; I < 100; ++I)
    Handles.push_back(Ledger.lease(Region::Dram, 1, 1));
  EXPECT_EQ(Ledger.liveLeases(), 100u);
  Ledger.tick(1);
  for (LeaseHandle H : Handles)
    Ledger.release(H);
  StorageStats S = Ledger.snapshot();
  EXPECT_DOUBLE_EQ(S.DramPrecise, 100.0);
  EXPECT_DOUBLE_EQ(S.DramApprox, 100.0);
}

TEST(MemoryLedger, InvalidHandleReleaseIsNoop) {
  MemoryLedger Ledger;
  Ledger.release(LeaseHandle());
  EXPECT_EQ(Ledger.liveLeases(), 0u);
}

TEST(StorageStats, FractionsWithNoData) {
  StorageStats S;
  EXPECT_DOUBLE_EQ(S.sramApproxFraction(), 0.0);
  EXPECT_DOUBLE_EQ(S.dramApproxFraction(), 0.0);
}

TEST(OperationStats, Fractions) {
  OperationStats Ops;
  Ops.PreciseInt = 30;
  Ops.ApproxInt = 10;
  Ops.PreciseFp = 20;
  Ops.ApproxFp = 60;
  EXPECT_DOUBLE_EQ(Ops.approxIntFraction(), 0.25);
  EXPECT_DOUBLE_EQ(Ops.approxFpFraction(), 0.75);
  EXPECT_DOUBLE_EQ(Ops.fpProportion(), 80.0 / 120.0);
  EXPECT_EQ(Ops.total(), 120u);
}

TEST(OperationStats, EmptyFractionsAreZero) {
  OperationStats Ops;
  EXPECT_DOUBLE_EQ(Ops.approxIntFraction(), 0.0);
  EXPECT_DOUBLE_EQ(Ops.approxFpFraction(), 0.0);
  EXPECT_DOUBLE_EQ(Ops.fpProportion(), 0.0);
}

TEST(OperationStats, Accumulation) {
  OperationStats A, B;
  A.PreciseInt = 1;
  A.ApproxFp = 2;
  B.PreciseInt = 10;
  B.ApproxInt = 5;
  A += B;
  EXPECT_EQ(A.PreciseInt, 11u);
  EXPECT_EQ(A.ApproxInt, 5u);
  EXPECT_EQ(A.ApproxFp, 2u);
}
