#!/usr/bin/env python3
"""Gate the flight recorder's overhead against the committed baseline.

bench/obs_overhead writes BENCH_obs.json with the armed/disarmed
wall-clock ratio of every telemetry mode on both engines. This script
compares a fresh measurement against bench/BENCH_obs.json and fails if
journaling (the telemetry `eval --journal-dir` arms: the structured
trace) has grown expensive:

  * the "journal" ratio must stay <= ~1.3x disarmed on each engine —
    enforced as an absolute ceiling of 1.35 (a little headroom over the
    documented 1.3x target for measurement noise), and
  * it must stay within 1.25x of the committed baseline ratio, so a
    gradual slide is caught even while the absolute ceiling holds.
    Whichever bound is looser wins: CI machines are noisy, and the gate
    exists to catch a journaling hot-path regression, not scheduler
    jitter.

Usage: check_bench_obs.py <fresh.json> <baseline.json>
Exits 0 on success, 1 with a diagnostic on regression.
"""

import json
import sys

ABSOLUTE_CEILING = 1.35
BASELINE_SLACK = 1.25


def fail(message):
    print(f"check_bench_obs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    if doc.get("tool") != "obs_overhead":
        fail(f"{path}: tool is {doc.get('tool')!r}, expected 'obs_overhead'")
    if doc.get("version") != 1:
        fail(f"{path}: version is {doc.get('version')!r}, expected 1")
    if not isinstance(doc.get("engines"), list) or not doc["engines"]:
        fail(f"{path}: engines: empty or not a list")
    return doc


def ratios(doc, path):
    """{engine: {mode: ratio}} with sanity checks."""
    table = {}
    for engine in doc["engines"]:
        name = engine.get("engine")
        if name not in ("interp", "compiled"):
            fail(f"{path}: unknown engine {name!r}")
        modes = {}
        for row in engine.get("modes", []):
            if not isinstance(row.get("ratio"), (int, float)):
                fail(f"{path}: {name}/{row.get('mode')!r}: ratio not a number")
            if row.get("seconds", 0) <= 0:
                fail(f"{path}: {name}/{row.get('mode')!r}: "
                     f"non-positive seconds")
            modes[row["mode"]] = row["ratio"]
        for required in ("disabled", "journal"):
            if required not in modes:
                fail(f"{path}: {name}: missing mode {required!r}")
        table[name] = modes
    return table


def main():
    if len(sys.argv) != 3:
        fail("usage: check_bench_obs.py <fresh.json> <baseline.json>")
    fresh = ratios(load(sys.argv[1]), sys.argv[1])
    baseline = ratios(load(sys.argv[2]), sys.argv[2])

    for engine, modes in fresh.items():
        if engine not in baseline:
            fail(f"baseline has no {engine!r} engine")
        ceiling = max(ABSOLUTE_CEILING,
                      baseline[engine]["journal"] * BASELINE_SLACK)
        measured = modes["journal"]
        if measured > ceiling:
            fail(f"{engine}: journal ratio {measured:.2f}x exceeds the gate "
                 f"{ceiling:.2f}x (baseline "
                 f"{baseline[engine]['journal']:.2f}x, absolute ceiling "
                 f"{ABSOLUTE_CEILING}x)")
        print(f"check_bench_obs: {engine}: journal {measured:.2f}x <= "
              f"{ceiling:.2f}x")

    print("check_bench_obs: OK (journaling overhead within the gate on "
          "both engines)")


if __name__ == "__main__":
    main()
