//===- tests/fault_rates_test.cpp - Shared fault-rate table tests ---------===//
//
// FaultRates is the single source of the Table 2 probabilities: the
// simulators draw at its values and the static reliability analysis
// composes bounds from them. These tests pin (a) the snapshot is bitwise
// equal to the FaultConfig accessors it replaced, (b) both model
// construction paths (from a config, from a snapshot) draw identical
// fault sequences, and (c) the derived exactness factors behave.
//
//===----------------------------------------------------------------------===//

#include "fault/rates.h"

#include "fault/models.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace enerj;

namespace {

const ApproxLevel AllLevels[] = {ApproxLevel::None, ApproxLevel::Mild,
                                 ApproxLevel::Medium, ApproxLevel::Aggressive};

} // namespace

TEST(FaultRates, SnapshotIsBitwiseEqualToConfigAccessors) {
  for (ApproxLevel Level : AllLevels) {
    FaultConfig C = FaultConfig::preset(Level);
    FaultRates R = FaultRates::of(C);
    EXPECT_EQ(R.SramReadUpsetPerBit, C.sramReadUpset());
    EXPECT_EQ(R.SramWriteFailurePerBit, C.sramWriteFailure());
    EXPECT_EQ(R.DramFlipPerSecondPerBit, C.dramFlipPerSecond());
    EXPECT_EQ(R.TimingErrorPerOp, C.timingErrorProbability());
    EXPECT_EQ(R.CyclesPerSecond, C.CyclesPerSecond);
    EXPECT_EQ(R.FloatMantissaBits, C.floatMantissaBits());
    EXPECT_EQ(R.DoubleMantissaBits, C.doubleMantissaBits());
    EXPECT_EQ(R.DramSavedFraction, C.dramPowerSaved());
    EXPECT_EQ(R.SramSavedFraction, C.sramPowerSaved());
    EXPECT_EQ(R.FpSavedFraction, C.fpEnergySaved());
    EXPECT_EQ(R.AluSavedFraction, C.aluEnergySaved());
  }
}

TEST(FaultRates, SnapshotHonorsOverridesAndAblations) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.TimingErrorOverride = 0.25;
  C.SramReadUpsetOverride = 0.125;
  C.DoubleMantissaOverride = 11;
  C.EnableDram = false;
  FaultRates R = FaultRates::of(C);
  EXPECT_EQ(R.TimingErrorPerOp, 0.25);
  EXPECT_EQ(R.SramReadUpsetPerBit, 0.125);
  EXPECT_EQ(R.DoubleMantissaBits, 11u);
  EXPECT_EQ(R.DramFlipPerSecondPerBit, 0.0);
  EXPECT_EQ(R.DramSavedFraction, 0.0);
}

TEST(FaultRates, DramFlipProbabilityMatchesTheModelLaw) {
  // The decay law moved verbatim from DramModel::flipProbability; both
  // paths must agree bit for bit at every level and horizon.
  for (ApproxLevel Level : AllLevels) {
    FaultConfig C = FaultConfig::preset(Level);
    FaultRates R = FaultRates::of(C);
    DramModel M(C);
    for (uint64_t Cycles :
         {0ull, 1ull, 1000ull, 1ull << 20, 1ull << 40, 1ull << 60}) {
      EXPECT_EQ(R.dramFlipProbability(Cycles), M.flipProbability(Cycles))
          << approxLevelName(Level) << " @ " << Cycles;
    }
  }
}

TEST(FaultRates, ModelsDrawIdenticallyFromConfigAndSnapshot) {
  // Regression pin for the refactor: a model built the old way (from a
  // FaultConfig) and one built from the shared snapshot must consume the
  // same draws and produce the same faults.
  for (ApproxLevel Level : {ApproxLevel::Medium, ApproxLevel::Aggressive}) {
    FaultConfig C = FaultConfig::preset(Level);
    FaultRates Rates = FaultRates::of(C);
    SramModel SramA(C), SramB(Rates);
    TimingModel TimingA(C), TimingB(Rates, C.Mode);
    DramModel DramA(C), DramB(Rates);
    FpWidthModel FpA(C), FpB(Rates);
    Rng RA(42), RB(42);
    Rng Vals(7);
    for (int I = 0; I < 50000; ++I) {
      uint64_t V = Vals.next();
      EXPECT_EQ(SramA.onRead(V, 64, RA), SramB.onRead(V, 64, RB));
      EXPECT_EQ(SramA.onWrite(V, 64, RA), SramB.onWrite(V, 64, RB));
      EXPECT_EQ(TimingA.onResult(V, 64, RA), TimingB.onResult(V, 64, RB));
      EXPECT_EQ(DramA.onAccess(V, 64, 1 << 20, RA),
                DramB.onAccess(V, 64, 1 << 20, RB));
      double D = static_cast<double>(static_cast<int64_t>(V)) * 1e-6;
      EXPECT_EQ(FpA.narrow(D), FpB.narrow(D));
    }
    EXPECT_EQ(TimingA.errorCount(), TimingB.errorCount());
    EXPECT_EQ(RA.next(), RB.next()) << "draw counts diverged";
  }
}

TEST(FaultRates, ExactnessFactorsAreExactlyOneAtNone) {
  FaultRates R = FaultRates::of(FaultConfig::preset(ApproxLevel::None));
  EXPECT_EQ(R.regReadExact(), 1.0);
  EXPECT_EQ(R.regWriteExact(), 1.0);
  EXPECT_EQ(R.aluExact(), 1.0);
  EXPECT_EQ(R.dramWordExact(1ull << 40), 1.0);
  EXPECT_EQ(R.dramResidencyExact(10'000'000, 4096), 1.0);
  EXPECT_FALSE(R.narrowsDouble());
  EXPECT_FALSE(R.narrowsFloat());
}

TEST(FaultRates, ExactnessFactorsDecreaseWithLevel) {
  double PrevRead = 1.1, PrevAlu = 1.1, PrevDram = 1.1;
  for (ApproxLevel Level : AllLevels) {
    FaultRates R = FaultRates::of(FaultConfig::preset(Level));
    EXPECT_LT(R.regReadExact(), PrevRead);
    EXPECT_LE(R.aluExact(), PrevAlu);
    EXPECT_LE(R.dramResidencyExact(10'000'000, 64), PrevDram);
    EXPECT_GT(R.regReadExact(), 0.0);
    EXPECT_GT(R.aluExact(), 0.0);
    PrevRead = R.regReadExact();
    PrevAlu = R.aluExact();
    PrevDram = R.dramResidencyExact(10'000'000, 64);
  }
  FaultRates Aggr = FaultRates::of(FaultConfig::preset(ApproxLevel::Aggressive));
  EXPECT_TRUE(Aggr.narrowsDouble());
  EXPECT_TRUE(Aggr.narrowsFloat());
}

TEST(FaultRates, RegReadExactMatchesClosedForm) {
  FaultRates R = FaultRates::of(FaultConfig::preset(ApproxLevel::Aggressive));
  // (1-p)^64 with p = 1e-3.
  EXPECT_NEAR(R.regReadExact(), std::pow(1.0 - 1e-3, 64.0), 1e-12);
  EXPECT_NEAR(R.aluExact(), 1.0 - 1e-2, 0.0);
}

TEST(FaultRates, DramDecayComposesMultiplicativelyOverGaps) {
  // The soundness of folding whole-run residency into one factor rests on
  // (1-p(a))(1-p(b)) == 1-p(a+b) under the per-second law.
  FaultRates R = FaultRates::of(FaultConfig::preset(ApproxLevel::Aggressive));
  for (uint64_t A : {1000ull, 1ull << 20, 1ull << 30}) {
    for (uint64_t B : {500ull, 1ull << 18, 1ull << 33}) {
      double Split = (1.0 - R.dramFlipProbability(A)) *
                     (1.0 - R.dramFlipProbability(B));
      double Whole = 1.0 - R.dramFlipProbability(A + B);
      EXPECT_NEAR(Split, Whole, 1e-15);
    }
  }
}

TEST(FaultRates, DegenerateProbabilitiesClampToZeroAndOne) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::None);
  C.SramReadUpsetOverride = 1.0;
  C.TimingErrorOverride = 1.0;
  FaultRates R = FaultRates::of(C);
  EXPECT_EQ(R.regReadExact(), 0.0);
  EXPECT_EQ(R.aluExact(), 0.0);
  EXPECT_EQ(R.dramResidencyExact(1ull << 30, 0), 1.0);
}
