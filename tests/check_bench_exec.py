#!/usr/bin/env python3
"""Gate the compiled-path speedup against the committed baseline.

bench/exec_grid writes BENCH_exec.json with the measured trials/sec of
the interpreter and compiled eval paths over the full grid. This script
compares a fresh measurement against bench/BENCH_exec_baseline.json and
fails if the compiled path has regressed:

  * the speedup must stay >= 5x (the tentpole's absolute floor), and
  * it must stay within 2x of the committed baseline — i.e. at least
    baseline/2 — so a gradual slide is caught even while the absolute
    floor still holds. CI machines are noisy; 2x slack absorbs that
    without letting a 10x regression through.

Usage: check_bench_exec.py <fresh.json> <baseline.json>
Exits 0 on success, 1 with a diagnostic on regression.
"""

import json
import sys


def fail(message):
    print(f"check_bench_exec: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")
    for key in ("speedup", "interpTrialsPerSec", "compiledTrialsPerSec",
                "trials"):
        if key not in doc:
            fail(f"{path}: missing key {key!r}")
    return doc


def main():
    if len(sys.argv) != 3:
        fail("usage: check_bench_exec.py <fresh.json> <baseline.json>")
    fresh = load(sys.argv[1])
    baseline = load(sys.argv[2])

    floor = max(5.0, baseline["speedup"] / 2.0)
    if fresh["speedup"] < floor:
        fail(f"compiled speedup {fresh['speedup']:.1f}x is below the gate "
             f"{floor:.1f}x (baseline {baseline['speedup']:.1f}x, "
             f"absolute floor 5x)")
    if fresh["trials"] <= 0:
        fail("fresh run measured zero trials")

    print(f"check_bench_exec: OK (speedup {fresh['speedup']:.1f}x >= "
          f"{floor:.1f}x; compiled {fresh['compiledTrialsPerSec']:.0f} "
          f"trials/sec vs interp {fresh['interpTrialsPerSec']:.0f})")


if __name__ == "__main__":
    main()
