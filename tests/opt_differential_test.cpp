//===- tests/opt_differential_test.cpp - Corpus differential gate --------===//
//
// The optimizer's end-to-end contract over the whole `.fej` corpus
// (examples/fej and its subdirectories):
//
//  * at ApproxLevel::None the optimized binary is *bitwise* identical
//    to the unoptimized one — same trap behavior, same final register
//    files, same final memory image — while never executing more
//    instructions;
//  * at least five of the nine ISA kernel apps actually lose
//    instructions to optimization (the pipeline is not vacuous);
//  * under approximation (Medium) bit-identity is impossible — deleting
//    instructions changes how many RNG draws the fault models make —
//    so the gate is statistical instead: the optimized QoS stays inside
//    the unoptimized trials' 95% confidence interval, and the static
//    energy-factor estimate never gets worse.
//
//===----------------------------------------------------------------------===//

#include "analysis/isa_flow.h"
#include "analysis/opt/pipeline.h"
#include "fenerj/codegen.h"
#include "fenerj/fenerj.h"
#include "harness/stats.h"
#include "isa/assembler.h"
#include "isa/machine.h"
#include "isa/verifier.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace enerj;
using namespace enerj::analysis;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(ENERJ_FEJ_DIR))
    if (Entry.path().extension() == ".fej")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Compiles a corpus program to a verified ISA binary; nullopt when the
/// program is outside the code generator's class-free subset.
std::optional<isa::IsaProgram> compileCorpus(const std::string &Path) {
  std::string Source = slurp(Path);
  fenerj::DiagnosticEngine Diags;
  fenerj::ClassTable Table;
  std::optional<fenerj::Program> Prog =
      fenerj::compile(Source, Table, Diags);
  if (!Prog)
    return std::nullopt;
  fenerj::CodegenResult Code = fenerj::compileToIsa(*Prog);
  if (!Code.Ok)
    return std::nullopt;
  std::vector<std::string> Errors;
  std::optional<isa::IsaProgram> Binary =
      isa::assemble(Code.Assembly, Errors);
  EXPECT_TRUE(Binary.has_value()) << Path;
  if (Binary)
    EXPECT_TRUE(isa::verify(*Binary).empty()) << Path;
  return Binary;
}

struct RunState {
  bool Trapped = false;
  std::string TrapMessage;
  uint64_t Executed = 0;
  std::vector<int64_t> IntRegs;
  std::vector<uint64_t> FpBits;
  std::vector<uint64_t> MemBits;
};

RunState runToCompletion(const isa::IsaProgram &Program,
                         const FaultConfig &Config) {
  isa::Machine M(Program, Config);
  isa::MachineResult R = M.run();
  RunState Out;
  Out.Trapped = R.Trapped;
  Out.TrapMessage = R.TrapMessage;
  Out.Executed = R.InstructionsExecuted;
  for (unsigned I = 0; I < isa::NumIntRegs; ++I)
    Out.IntRegs.push_back(M.intReg(I));
  for (unsigned I = 0; I < isa::NumFpRegs; ++I) {
    double V = M.fpReg(I);
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(V));
    Out.FpBits.push_back(Bits);
  }
  for (uint64_t A = 0; A < Program.PreciseWords + Program.ApproxWords;
       ++A)
    Out.MemBits.push_back(M.memBits(A));
  return Out;
}

} // namespace

TEST(OptDifferential, CorpusIsNonEmpty) {
  // Nine ISA kernels plus the original top-level examples.
  EXPECT_GE(corpusFiles().size(), 15u);
}

TEST(OptDifferential, PreciseStateIsBitwiseIdenticalAcrossCorpus) {
  size_t Compiled = 0;
  size_t KernelsImproved = 0, Kernels = 0;
  for (const std::string &Path : corpusFiles()) {
    SCOPED_TRACE(Path);
    std::optional<isa::IsaProgram> Binary = compileCorpus(Path);
    if (!Binary)
      continue; // Outside the class-free ISA subset.
    ++Compiled;

    isa::IsaProgram Optimized = *Binary;
    opt::OptReport Report = opt::optimizeProgram(Optimized);
    ASSERT_TRUE(Report.Ok) << Report.Error;
    for (const opt::PassReport &Pass : Report.Passes)
      EXPECT_TRUE(Pass.Accepted)
          << opt::passName(Pass.Kind) << ": " << Pass.RejectReason;

    // The optimized output re-verifies under both checkers.
    EXPECT_TRUE(isa::verify(Optimized).empty());
    EXPECT_TRUE(verifyFlow(Optimized).ok());

    // Static gates: never more ops, never a worse energy factor.
    EXPECT_LE(Report.OpsAfter, Report.OpsBefore);
    EXPECT_LE(Report.EnergyAfter.factor(),
              Report.EnergyBefore.factor() + 1e-12);

    bool IsKernelApp =
        Path.find("/isa/") != std::string::npos;
    if (IsKernelApp) {
      ++Kernels;
      if (Report.totalRemoved() > 0)
        ++KernelsImproved;
    }

    // The precise path: full-state bitwise identity.
    FaultConfig None = FaultConfig::preset(ApproxLevel::None);
    RunState A = runToCompletion(*Binary, None);
    RunState B = runToCompletion(Optimized, None);
    EXPECT_EQ(A.Trapped, B.Trapped) << B.TrapMessage;
    EXPECT_LE(B.Executed, A.Executed);
    EXPECT_EQ(A.IntRegs, B.IntRegs);
    EXPECT_EQ(A.FpBits, B.FpBits);
    EXPECT_EQ(A.MemBits, B.MemBits);
  }
  // The corpus contains at least the four original top-level subset
  // programs plus the nine kernels.
  EXPECT_GE(Compiled, 13u);
  EXPECT_EQ(Kernels, 9u);
  // Acceptance gate: >0 ops removed on at least 5 of the 9 apps.
  EXPECT_GE(KernelsImproved, 5u);
}

TEST(OptDifferential, ApproximateQosWithinConfidenceInterval) {
  // Under approximation bit-identity is forfeit by design (see
  // docs/OPTIMIZER.md): removing instructions shifts the RNG stream.
  // Instead: over many seeded trials at Medium, the optimized binary's
  // mean r1/f1 must lie within the unoptimized trials' 95% CI band
  // (widened by one ulp-scale epsilon for the all-zero-variance case).
  for (const std::string &Path : corpusFiles()) {
    SCOPED_TRACE(Path);
    std::optional<isa::IsaProgram> Binary = compileCorpus(Path);
    if (!Binary)
      continue;
    isa::IsaProgram Optimized = *Binary;
    opt::OptReport Report = opt::optimizeProgram(Optimized);
    ASSERT_TRUE(Report.Ok) << Report.Error;

    auto Sample = [](const isa::IsaProgram &P, uint64_t Seed) {
      FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
      Config.Seed = Seed;
      isa::Machine M(P, Config);
      isa::MachineResult R = M.run();
      if (R.Trapped)
        return std::optional<double>{};
      double FpPart = M.fpReg(1);
      if (!std::isfinite(FpPart))
        FpPart = 0.0; // NaN/inf trials carry no usable magnitude.
      return std::optional<double>{
          static_cast<double>(M.intReg(1)) + FpPart};
    };

    std::vector<double> Base, Opt;
    for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
      if (auto V = Sample(*Binary, Seed))
        Base.push_back(*V);
      if (auto V = Sample(Optimized, Seed))
        Opt.push_back(*V);
    }
    if (Base.size() < 5 || Opt.size() < 5)
      continue; // Too trap-happy at Medium to compare distributions.
    harness::TrialStats BaseStats = harness::TrialStats::over(Base);
    harness::TrialStats OptStats = harness::TrialStats::over(Opt);
    // Both means carry sampling error, so the band sums both CIs; the
    // epsilon covers the zero-variance (no fault fired) case.
    double Scale = std::max({std::fabs(BaseStats.Mean), 1.0});
    double Band = BaseStats.Ci95Half + OptStats.Ci95Half + 1e-9 * Scale;
    EXPECT_LE(std::fabs(OptStats.Mean - BaseStats.Mean), Band)
        << "base mean " << BaseStats.Mean << " +/- "
        << BaseStats.Ci95Half << ", opt mean " << OptStats.Mean;
  }
}
