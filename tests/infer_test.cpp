//===- tests/infer_test.cpp - qualifier inference tests -------------------===//
//
// Inference must (a) relax exactly the declarations whose precision buys
// nothing — no new endorsement may ever be required, (b) keep everything
// that steers control or indexes storage precise, and (c) render
// bytewise-deterministic reports.
//
//===----------------------------------------------------------------------===//

#include "analysis/infer.h"
#include "fenerj/fenerj.h"

#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::analysis;

namespace {

InferResult infer(std::string_view Source) {
  fenerj::DiagnosticEngine Diags;
  fenerj::ClassTable Table;
  std::optional<fenerj::Program> Prog =
      fenerj::compile(Source, Table, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  if (!Prog)
    return {};
  return inferProgram(*Prog, Table, "t.fej");
}

const InferredDecl *find(const InferResult &R, const char *Name) {
  for (const InferredDecl &D : R.Decls)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

} // namespace

TEST(Infer, RelaxesALocalFeedingOnlyApproxStorage) {
  InferResult R = infer(
      "{ let @approx int[] b = new @approx int[4]; let int g = 3; "
      "b[0] := g; endorse(b[0]); }");
  const InferredDecl *G = find(R, "main.g");
  ASSERT_NE(G, nullptr);
  EXPECT_TRUE(G->Relaxed);
  EXPECT_EQ(G->Declared, "precise");
  EXPECT_EQ(G->Inferred, "approx");
}

TEST(Infer, KeepsLoopBoundsAndSubscriptsPrecise) {
  InferResult R = infer(
      "{ let int n = 4; let @approx int[] b = new @approx int[4]; "
      "let int i = 0; while (i < n) { b[i] := i; i = i + 1; }; 0; }");
  const InferredDecl *N = find(R, "main.n");
  const InferredDecl *I = find(R, "main.i");
  ASSERT_NE(N, nullptr);
  ASSERT_NE(I, nullptr);
  EXPECT_FALSE(N->Relaxed); // condition operand
  EXPECT_FALSE(I->Relaxed); // subscript
}

TEST(Infer, NeverRelaxesThroughAnEndorseRequirement) {
  // 'x' flows into a precise local via endorse; relaxing 'x' is free
  // because the endorse is already there, but relaxing 'y' would force a
  // NEW endorsement at 'y;' (the program result), so y must stay.
  InferResult R = infer(
      "{ let @approx int a = 1; let int y = endorse(a) + 1; y; }");
  const InferredDecl *Y = find(R, "main.y");
  ASSERT_NE(Y, nullptr);
  EXPECT_FALSE(Y->Relaxed);
}

TEST(Infer, InterproceduralRelaxationThroughACall) {
  // The parameter and the LCG-style field feed only approximate storage
  // across a call boundary; an intraprocedural pass cannot see this.
  InferResult R = infer(R"(
    class W {
      @approx int acc;
      int mix;
      int feed(int v) {
        this.mix := this.mix * 3 + v;
        this.acc := this.acc + this.mix;
        0;
      }
    }
    { let @precise W w = new @precise W(); w.feed(4); endorse(w.acc); }
  )");
  const InferredDecl *V = find(R, "W.feed.v");
  const InferredDecl *Mix = find(R, "W.mix");
  ASSERT_NE(V, nullptr);
  ASSERT_NE(Mix, nullptr);
  EXPECT_TRUE(V->Relaxed);
  EXPECT_TRUE(Mix->Relaxed);
  EXPECT_GT(R.InferredApprox, R.AnnotatedApprox);
}

TEST(Infer, ArrayAliasingRelaxesWholeClustersOrNothing) {
  // The allocation flows into 'shared', which is indexed by a precise
  // subscript but whose ELEMENTS only feed approx storage; both the
  // alloc site and the local must relax together (element invariance).
  InferResult R = infer(
      "{ let int[] shared = new int[4]; let @approx int sink = 0; "
      "let int i = 0; "
      "while (i < 4) { shared[i] := i; sink = sink + shared[i]; "
      "i = i + 1; }; endorse(sink); }");
  const InferredDecl *Local = find(R, "main.shared");
  ASSERT_NE(Local, nullptr);
  bool AllocRelaxed = false, AllocSeen = false;
  for (const InferredDecl &D : R.Decls)
    if (D.Kind == "alloc") {
      AllocSeen = true;
      AllocRelaxed = D.Relaxed;
    }
  ASSERT_TRUE(AllocSeen);
  EXPECT_EQ(Local->Relaxed, AllocRelaxed);
}

TEST(Infer, ContextCountsAsAnnotatedApprox) {
  InferResult R = infer(R"(
    class P { @context int x; int bump() { this.x := this.x + 1; 0; } }
    { let @approx P p = new @approx P(); p.bump(); 0; }
  )");
  const InferredDecl *X = find(R, "P.x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->Declared, "context");
  EXPECT_GE(R.AnnotatedApprox, 1u);
}

TEST(Infer, EnergyEstimateImprovesOrHolds) {
  InferResult R = infer(
      "{ let @approx float[] b = new @approx float[8]; let float g = 1.5; "
      "let int i = 0; while (i < 8) { b[i] := cast<@approx float>(i) * g; "
      "i = i + 1; }; let @approx float s = 0.0; i = 0; "
      "while (i < 8) { s = s + b[i]; i = i + 1; }; cast<int>(endorse(s)); }");
  EXPECT_LE(R.InferredEnergyFactor, R.AnnotatedEnergyFactor);
  EXPECT_GE(R.InferredSavedPct, R.AnnotatedSavedPct);
  EXPECT_GT(R.AnnotatedSavedPct, 0.0);
}

TEST(Infer, UnreachableMethodsAreReported) {
  InferResult R = infer(R"(
    class U { int used() { 1; } int dead() { 2; } }
    { let @precise U u = new @precise U(); u.used(); }
  )");
  ASSERT_EQ(R.UnreachableMethods.size(), 1u);
  EXPECT_EQ(R.UnreachableMethods[0], "U.dead");
}

TEST(InferRender, JsonIsBytewiseDeterministic) {
  const char *Source = R"(
    class A {
      @approx float[] buf;
      float gain;
      int init(int size, float g) {
        this.gain := g;
        this.buf := new @approx float[size];
        let int i = 0;
        while (i < size) {
          this.buf[i] := cast<@approx float>(i) * this.gain;
          i = i + 1;
        };
        0;
      }
    }
    { let @precise A a = new @precise A(); a.init(6, 0.5);
      cast<int>(endorse(a.buf[3])); }
  )";
  std::vector<InferResult> One{infer(Source)};
  std::vector<InferResult> Two{infer(Source)};
  std::string J1 = renderInferJson(One);
  std::string J2 = renderInferJson(Two);
  EXPECT_EQ(J1, J2);
  EXPECT_NE(J1.find("\"tool\":\"enerj-infer\",\"version\":1"),
            std::string::npos);
  EXPECT_NE(J1.find("\"relaxed\":true"), std::string::npos);
  EXPECT_EQ(renderInferTable(One), renderInferTable(Two));
}

TEST(InferRender, SuggestionsListOnlyRelaxedDecls) {
  InferResult R = infer(
      "{ let @approx int[] b = new @approx int[4]; let int g = 3; "
      "b[0] := g; endorse(b[0]); }");
  std::string S = renderInferSuggestions(R);
  EXPECT_NE(S.find("relax local 'main.g'"), std::string::npos);
  EXPECT_EQ(S.find("'main.b'"), std::string::npos); // already approx
}

TEST(InferRender, DeclsComeOutInSourceOrder) {
  InferResult R = infer(
      "{ let int a = 1; let @approx int b = 2; let int c = a + 1; "
      "b = b + c; endorse(b); }");
  for (size_t I = 1; I < R.Decls.size(); ++I) {
    const InferredDecl &P = R.Decls[I - 1];
    const InferredDecl &Q = R.Decls[I];
    bool Ordered = P.Loc.Line < Q.Loc.Line ||
                   (P.Loc.Line == Q.Loc.Line && P.Loc.Column <= Q.Loc.Column);
    EXPECT_TRUE(Ordered);
  }
}
