//===- tests/obs_metrics_test.cpp - Metrics registry unit tests -----------===//
//
// The registry is the foundation the profiler's attribution stands on,
// so its algebra is pinned here: exact histogram bucket edges, stable
// first-use-order interning, and a merge that is associative and
// commutative over counter values even when the operands interned their
// region labels in different orders (the degraded-attempt case).
//
//===----------------------------------------------------------------------===//

#include "obs/metrics.h"

#include <gtest/gtest.h>
#include <string>
#include <string_view>

using namespace enerj;
using namespace enerj::obs;

namespace {

/// Looks a region up by name; InvalidSite when the registry never
/// interned it. Reports must key on names, so the tests do too.
uint32_t regionByName(const MetricsRegistry &M, std::string_view Name) {
  for (uint32_t I = 0; I < M.regionCount(); ++I)
    if (M.regionName(I) == Name)
      return I;
  return MetricsRegistry::InvalidSite;
}

const SiteCounters *countersOf(const MetricsRegistry &M,
                               std::string_view Region, OpKind Kind) {
  uint32_t Id = regionByName(M, Region);
  return Id == MetricsRegistry::InvalidSite ? nullptr : M.find(Id, Kind);
}

} // namespace

TEST(ObsMetrics, FlipHistogramBucketEdges) {
  // Documented edges: {1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, >64}.
  EXPECT_EQ(FlipHistogram::bucketOf(1), 0);
  EXPECT_EQ(FlipHistogram::bucketOf(2), 1);
  EXPECT_EQ(FlipHistogram::bucketOf(3), 2);
  EXPECT_EQ(FlipHistogram::bucketOf(4), 2);
  EXPECT_EQ(FlipHistogram::bucketOf(5), 3);
  EXPECT_EQ(FlipHistogram::bucketOf(8), 3);
  EXPECT_EQ(FlipHistogram::bucketOf(9), 4);
  EXPECT_EQ(FlipHistogram::bucketOf(16), 4);
  EXPECT_EQ(FlipHistogram::bucketOf(17), 5);
  EXPECT_EQ(FlipHistogram::bucketOf(32), 5);
  EXPECT_EQ(FlipHistogram::bucketOf(33), 6);
  EXPECT_EQ(FlipHistogram::bucketOf(64), 6);
  // A 64-bit word cannot flip more than 64 bits, but the overflow
  // bucket keeps the math total: everything larger lands in bucket 7.
  EXPECT_EQ(FlipHistogram::bucketOf(65), 7);
  EXPECT_EQ(FlipHistogram::bucketOf(1000), 7);

  EXPECT_STREQ(FlipHistogram::bucketLabel(0), "1");
  EXPECT_STREQ(FlipHistogram::bucketLabel(2), "3-4");
  EXPECT_STREQ(FlipHistogram::bucketLabel(6), "33-64");
  EXPECT_STREQ(FlipHistogram::bucketLabel(7), ">64");
}

TEST(ObsMetrics, FlipHistogramRecordAndSum) {
  FlipHistogram H;
  H.record(1);
  H.record(1);
  H.record(4);
  H.record(64);
  EXPECT_EQ(H.Buckets[0], 2u);
  EXPECT_EQ(H.Buckets[2], 1u);
  EXPECT_EQ(H.Buckets[6], 1u);
  EXPECT_EQ(H.total(), 4u);

  FlipHistogram Other;
  Other.record(1);
  H += Other;
  EXPECT_EQ(H.Buckets[0], 3u);
  EXPECT_EQ(H.total(), 5u);
}

TEST(ObsMetrics, Log2HistogramBucketEdges) {
  // Bucket b counts values in [2^(b-1), 2^b - 1]; bucket 0 is zero.
  EXPECT_EQ(Log2Histogram::bucketOf(0), 0);
  EXPECT_EQ(Log2Histogram::bucketOf(1), 1);
  EXPECT_EQ(Log2Histogram::bucketOf(2), 2);
  EXPECT_EQ(Log2Histogram::bucketOf(3), 2);
  EXPECT_EQ(Log2Histogram::bucketOf(4), 3);
  EXPECT_EQ(Log2Histogram::bucketOf(7), 3);
  EXPECT_EQ(Log2Histogram::bucketOf(1024), 11);
  // Clamp: anything at or beyond 2^30 shares the last bucket.
  EXPECT_EQ(Log2Histogram::bucketOf(uint64_t(1) << 40), 31);
  EXPECT_EQ(Log2Histogram::bucketOf(~uint64_t(0)), 31);
}

TEST(ObsMetrics, OpKindClassification) {
  EXPECT_EQ(storageClassOf(OpKind::PreciseInt), StorageClass::Alu);
  EXPECT_EQ(storageClassOf(OpKind::ApproxFp), StorageClass::Alu);
  EXPECT_EQ(storageClassOf(OpKind::SramRead), StorageClass::Sram);
  EXPECT_EQ(storageClassOf(OpKind::SramWrite), StorageClass::Sram);
  EXPECT_EQ(storageClassOf(OpKind::DramLoad), StorageClass::Dram);
  EXPECT_EQ(storageClassOf(OpKind::DramStore), StorageClass::Dram);

  // SRAM accesses ride along with the op that produced them; everything
  // else advances the ledger clock. totalTicks depends on this split.
  EXPECT_FALSE(opTicks(OpKind::SramRead));
  EXPECT_FALSE(opTicks(OpKind::SramWrite));
  EXPECT_TRUE(opTicks(OpKind::PreciseInt));
  EXPECT_TRUE(opTicks(OpKind::ApproxFp));
  EXPECT_TRUE(opTicks(OpKind::DramLoad));
  EXPECT_TRUE(opTicks(OpKind::DramStore));

  EXPECT_STREQ(opKindName(OpKind::ApproxFp), "approxFp");
  EXPECT_STREQ(storageClassName(StorageClass::Dram), "dram");
}

TEST(ObsMetrics, InterningIsStableAndFirstUseOrdered) {
  MetricsRegistry M;
  // Region 0 is always the implicit whole-program region.
  ASSERT_GE(M.regionCount(), 1u);
  EXPECT_EQ(M.regionName(0), "main");
  EXPECT_EQ(M.internRegion("main"), 0u);

  uint32_t Init = M.internRegion("init");
  uint32_t Solve = M.internRegion("solve");
  EXPECT_EQ(Init, 1u);
  EXPECT_EQ(Solve, 2u);
  // Re-interning returns the existing id, never a new one.
  EXPECT_EQ(M.internRegion("init"), Init);
  EXPECT_EQ(M.regionCount(), 3u);
}

TEST(ObsMetrics, RecordOpAttributesToTheActiveRegion) {
  MetricsRegistry M;
  uint32_t Kernel = M.internRegion("kernel");

  M.recordOp(OpKind::PreciseInt, 0);
  M.enterRegion(Kernel);
  EXPECT_EQ(M.currentRegion(), Kernel);
  M.recordOp(OpKind::ApproxFp, 0);
  M.recordOp(OpKind::ApproxFp, 3);
  M.recordOp(OpKind::SramRead, 1);
  M.exitRegion();
  M.recordOp(OpKind::PreciseInt, 0);

  const SiteCounters *Main = countersOf(M, "main", OpKind::PreciseInt);
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(Main->Count, 2u);
  EXPECT_EQ(Main->Faults, 0u);

  const SiteCounters *Fp = countersOf(M, "kernel", OpKind::ApproxFp);
  ASSERT_NE(Fp, nullptr);
  EXPECT_EQ(Fp->Count, 2u);
  EXPECT_EQ(Fp->Faults, 1u);
  EXPECT_EQ(Fp->FlippedBits, 3u);
  EXPECT_EQ(Fp->Flips.Buckets[2], 1u); // 3 flips -> the "3-4" bucket.

  // Nothing leaked across regions or kinds.
  EXPECT_EQ(countersOf(M, "main", OpKind::ApproxFp), nullptr);
  EXPECT_EQ(countersOf(M, "kernel", OpKind::PreciseInt), nullptr);

  // SRAM reads count as ops and faults but not ticks.
  EXPECT_EQ(M.totalOps(), 5u);
  EXPECT_EQ(M.totalTicks(), 4u);
  EXPECT_EQ(M.totalFaults(), 2u);
}

TEST(ObsMetrics, MergeMatchesSitesByRegionName) {
  // The two registries intern the same labels in opposite orders, so
  // their raw region ids disagree; merge must reconcile by name.
  MetricsRegistry A;
  uint32_t AInit = A.internRegion("init");
  A.internRegion("solve");
  A.enterRegion(AInit);
  A.recordOp(OpKind::ApproxInt, 0);
  A.recordOp(OpKind::ApproxInt, 2);
  A.exitRegion();

  MetricsRegistry B;
  uint32_t BSolve = B.internRegion("solve");
  uint32_t BInit = B.internRegion("init");
  EXPECT_NE(AInit, BInit); // The premise of the test.
  B.enterRegion(BInit);
  B.recordOp(OpKind::ApproxInt, 0);
  B.exitRegion();
  B.enterRegion(BSolve);
  B.recordOp(OpKind::DramLoad, 5);
  B.exitRegion();

  A.merge(B);
  const SiteCounters *Init = countersOf(A, "init", OpKind::ApproxInt);
  ASSERT_NE(Init, nullptr);
  EXPECT_EQ(Init->Count, 3u);
  EXPECT_EQ(Init->Faults, 1u);
  EXPECT_EQ(Init->FlippedBits, 2u);
  const SiteCounters *Solve = countersOf(A, "solve", OpKind::DramLoad);
  ASSERT_NE(Solve, nullptr);
  EXPECT_EQ(Solve->Count, 1u);
  EXPECT_EQ(Solve->FlippedBits, 5u);
}

TEST(ObsMetrics, MergeIsCommutativeAndAssociativeOverCounters) {
  auto Make = [](std::string_view First, std::string_view Second,
                 unsigned Flips) {
    MetricsRegistry M;
    uint32_t FirstId = M.internRegion(First);
    uint32_t SecondId = M.internRegion(Second);
    M.enterRegion(FirstId);
    M.recordOp(OpKind::ApproxFp, Flips);
    M.exitRegion();
    M.enterRegion(SecondId);
    M.recordOp(OpKind::SramWrite, 0);
    M.exitRegion();
    M.recordDramGap(1 << Flips);
    return M;
  };

  MetricsRegistry A = Make("x", "y", 1);
  MetricsRegistry B = Make("y", "z", 2);
  MetricsRegistry C = Make("z", "x", 4);

  // (A + B) + C versus A + (B + C), and versus C + B + A.
  MetricsRegistry Left = Make("x", "y", 1);
  Left.merge(B);
  Left.merge(C);

  MetricsRegistry RightInner = Make("y", "z", 2);
  RightInner.merge(C);
  MetricsRegistry Right = Make("x", "y", 1);
  Right.merge(RightInner);

  MetricsRegistry Reversed = Make("z", "x", 4);
  Reversed.merge(Make("y", "z", 2));
  Reversed.merge(Make("x", "y", 1));

  for (const MetricsRegistry *M : {&Left, &Right, &Reversed}) {
    EXPECT_EQ(M->totalOps(), 6u);
    EXPECT_EQ(M->totalFaults(), 3u);
    for (std::string_view Region : {"x", "y", "z"}) {
      const SiteCounters *Fp = countersOf(*M, Region, OpKind::ApproxFp);
      ASSERT_NE(Fp, nullptr) << Region;
      EXPECT_EQ(Fp->Count, 1u);
      const SiteCounters *Sram = countersOf(*M, Region, OpKind::SramWrite);
      ASSERT_NE(Sram, nullptr) << Region;
      EXPECT_EQ(Sram->Count, 1u);
    }
    EXPECT_EQ(M->dramGaps().total(), 3u);
    EXPECT_EQ(M->dramGaps().Buckets[2], 1u); // Gap 2 from Flips=1.
    EXPECT_EQ(M->dramGaps().Buckets[3], 1u); // Gap 4.
    EXPECT_EQ(M->dramGaps().Buckets[5], 1u); // Gap 16.
  }
}

TEST(ObsMetrics, MergeRemapsRegionStorageByName) {
  MetricsRegistry A;
  A.internRegion("init"); // A: main=0, init=1.

  MetricsRegistry B;
  uint32_t BKernel = B.internRegion("kernel"); // B: main=0, kernel=1.
  B.internRegion("init");                      // B: init=2.
  std::vector<StorageStats> ByRegion(3);
  ByRegion[BKernel].SramApprox = 64.0;
  ByRegion[2].DramApprox = 128.0;
  B.setRegionStorage(std::move(ByRegion));

  A.merge(B);
  // "kernel" was new to A and must have been interned during the merge;
  // its storage must follow the *name*, not B's raw index.
  uint32_t AKernel = regionByName(A, "kernel");
  uint32_t AInit = regionByName(A, "init");
  ASSERT_NE(AKernel, MetricsRegistry::InvalidSite);
  ASSERT_LT(AKernel, A.regionStorage().size());
  ASSERT_LT(AInit, A.regionStorage().size());
  EXPECT_DOUBLE_EQ(A.regionStorage()[AKernel].SramApprox, 64.0);
  EXPECT_DOUBLE_EQ(A.regionStorage()[AInit].DramApprox, 128.0);
}
