//===- tests/exec_differential_test.cpp - Compiled vs interpreter gate ----===//
//
// The compiled evaluation path's end-to-end contract, differentially
// pinned against the authoritative paths:
//
//  * machine layer — on every (app, level) kernel binary at level None,
//    exec::FastMachine's final state is *bitwise* identical to
//    isa::Machine's: trap behavior, instruction count, both register
//    files, the full memory image, and every operation/storage counter.
//    Under approximation the two consume randomness in different orders
//    (block-drawn sparse sampling vs per-op draws), so the gate there is
//    statistical, exactly like the optimizer's (opt_differential_test):
//    the FastMachine trials' mean r1+f1 must lie within the classic
//    machine trials' 95% CI band, per kernel, at Medium and Aggressive;
//  * batched-vs-scalar — a FastMachine in Batched mode is bitwise
//    identical to one in Scalar reference mode on the same trial (the
//    block layer's contract, composed through a whole execution);
//  * harness layer — a compiled runEval grid at level None agrees with
//    the interpreter grid bit for bit on the fields the two paths share
//    (QoS, energy factors, outcomes, retries), and the compiled grid's
//    JSON is byte-identical across thread counts {1, 4, hardware};
//  * cache layer — the ProgramCache compiles one kernel per (app,
//    level) cell and never serves one cell another cell's entry.
//
//===----------------------------------------------------------------------===//

#include "exec/compiled.h"
#include "exec/machine.h"
#include "harness/eval.h"
#include "harness/stats.h"
#include "isa/machine.h"
#include "support/rng.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <thread>

using namespace enerj;
using namespace enerj::harness;

namespace {

const char *KernelDir = ENERJ_FEJ_DIR "/isa";

uint64_t bitsOf(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

exec::ProgramCache &cache() {
  static exec::ProgramCache Cache(KernelDir);
  return Cache;
}

/// Full machine state after a run, for bitwise comparison.
struct State {
  bool Trapped = false;
  std::string TrapMessage;
  uint64_t Executed = 0;
  std::vector<int64_t> IntRegs;
  std::vector<uint64_t> FpBits;
  std::vector<uint64_t> MemBits;
  RunStats Stats;
};

State runClassic(const isa::IsaProgram &P, const FaultConfig &Config) {
  isa::Machine M(P, Config);
  isa::MachineResult R = M.run();
  State S;
  S.Trapped = R.Trapped;
  S.TrapMessage = R.TrapMessage;
  S.Executed = R.InstructionsExecuted;
  for (unsigned I = 0; I < isa::NumIntRegs; ++I)
    S.IntRegs.push_back(M.intReg(I));
  for (unsigned I = 0; I < isa::NumFpRegs; ++I)
    S.FpBits.push_back(bitsOf(M.fpReg(I)));
  for (uint64_t A = 0; A < P.memoryWords(); ++A)
    S.MemBits.push_back(M.memBits(A));
  S.Stats = M.stats();
  return S;
}

State runFast(const isa::IsaProgram &P, const FaultConfig &Config,
              BlockMode Mode = BlockMode::Batched) {
  exec::FastMachine M(P, Config, Mode);
  exec::FastResult R = M.run();
  State S;
  S.Trapped = R.Trapped;
  S.TrapMessage = R.TrapMessage;
  S.Executed = R.InstructionsExecuted;
  for (unsigned I = 0; I < isa::NumIntRegs; ++I)
    S.IntRegs.push_back(M.intReg(I));
  for (unsigned I = 0; I < isa::NumFpRegs; ++I)
    S.FpBits.push_back(bitsOf(M.fpReg(I)));
  for (uint64_t A = 0; A < P.memoryWords(); ++A)
    S.MemBits.push_back(M.memBits(A));
  S.Stats = M.stats();
  return S;
}

void expectStateEqual(const State &A, const State &B) {
  EXPECT_EQ(A.Trapped, B.Trapped) << A.TrapMessage << " / " << B.TrapMessage;
  EXPECT_EQ(A.TrapMessage, B.TrapMessage);
  EXPECT_EQ(A.Executed, B.Executed);
  EXPECT_EQ(A.IntRegs, B.IntRegs);
  EXPECT_EQ(A.FpBits, B.FpBits);
  EXPECT_EQ(A.MemBits, B.MemBits);
  EXPECT_EQ(A.Stats.Ops.PreciseInt, B.Stats.Ops.PreciseInt);
  EXPECT_EQ(A.Stats.Ops.ApproxInt, B.Stats.Ops.ApproxInt);
  EXPECT_EQ(A.Stats.Ops.PreciseFp, B.Stats.Ops.PreciseFp);
  EXPECT_EQ(A.Stats.Ops.ApproxFp, B.Stats.Ops.ApproxFp);
  EXPECT_EQ(A.Stats.Ops.TimingErrors, B.Stats.Ops.TimingErrors);
  EXPECT_EQ(bitsOf(A.Stats.Storage.SramPrecise),
            bitsOf(B.Stats.Storage.SramPrecise));
  EXPECT_EQ(bitsOf(A.Stats.Storage.SramApprox),
            bitsOf(B.Stats.Storage.SramApprox));
  EXPECT_EQ(bitsOf(A.Stats.Storage.DramPrecise),
            bitsOf(B.Stats.Storage.DramPrecise));
  EXPECT_EQ(bitsOf(A.Stats.Storage.DramApprox),
            bitsOf(B.Stats.Storage.DramApprox));
}

} // namespace

TEST(ExecDifferential, AllNineKernelsCompileForEveryLevel) {
  for (const apps::Application *App : apps::allApplications())
    for (ApproxLevel Level :
         {ApproxLevel::None, ApproxLevel::Mild, ApproxLevel::Medium,
          ApproxLevel::Aggressive}) {
      SCOPED_TRACE(App->name());
      const exec::CompiledKernel &K = cache().get(App->name(), Level);
      EXPECT_EQ(K.AppName, App->name());
      EXPECT_EQ(K.Level, Level);
      EXPECT_FALSE(K.Binary.Instructions.empty());
    }
  EXPECT_EQ(cache().size(), 9u * 4u);
}

TEST(ExecDifferential, CacheNeverCrossesCells) {
  // Distinct cells get distinct entries; repeated lookups get the same
  // entry (address identity — the trial lists point into the cache).
  const exec::CompiledKernel &A =
      cache().get("fft", ApproxLevel::Medium);
  const exec::CompiledKernel &B =
      cache().get("fft", ApproxLevel::Aggressive);
  const exec::CompiledKernel &C =
      cache().get("sor", ApproxLevel::Medium);
  EXPECT_NE(&A, &B);
  EXPECT_NE(&A, &C);
  EXPECT_EQ(&A, &cache().get("fft", ApproxLevel::Medium));
  EXPECT_EQ(A.AppName, "fft");
  EXPECT_EQ(C.AppName, "sor");
  EXPECT_THROW(cache().get("no-such-app", ApproxLevel::None),
               std::runtime_error);
}

TEST(ExecDifferential, FastMachineBitwiseMatchesClassicAtLevelNone) {
  // Level None consumes no randomness on either machine, so the entire
  // architected state must agree bit for bit on every kernel.
  FaultConfig None = FaultConfig::preset(ApproxLevel::None);
  for (const apps::Application *App : apps::allApplications()) {
    SCOPED_TRACE(App->name());
    const exec::CompiledKernel &K = cache().get(App->name(),
                                                ApproxLevel::None);
    State Classic = runClassic(K.Binary, None);
    State Fast = runFast(K.Binary, None);
    EXPECT_FALSE(Classic.Trapped) << Classic.TrapMessage;
    expectStateEqual(Classic, Fast);
  }
}

TEST(ExecDifferential, BatchedMatchesScalarThroughWholeExecutions) {
  // The block layer's bitwise contract composed through full runs: the
  // batched fast machine and the scalar-reference fast machine agree on
  // every bit of final state, per kernel, per level, per seed.
  for (const apps::Application *App : apps::allApplications())
    for (ApproxLevel Level : {ApproxLevel::Medium, ApproxLevel::Aggressive})
      for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
        SCOPED_TRACE(std::string(App->name()) + "/" +
                     approxLevelName(Level) + "/seed " +
                     std::to_string(Seed));
        const exec::CompiledKernel &K = cache().get(App->name(), Level);
        FaultConfig Config = FaultConfig::preset(Level);
        Config.Seed = mixSeed(Config.Seed, Seed);
        State Batched = runFast(K.Binary, Config, BlockMode::Batched);
        State Scalar = runFast(K.Binary, Config, BlockMode::Scalar);
        expectStateEqual(Batched, Scalar);
      }
}

TEST(ExecDifferential, ApproximateQosWithinInterpreterConfidenceInterval) {
  // Under approximation the fast machine's draw order differs from the
  // classic machine's by design, so the gate is statistical (the same
  // scheme opt_differential_test uses): per kernel and level, the fast
  // machine's mean r1+f1 over 20 seeds must lie within the classic
  // machine runs' 95% CI band.
  for (const apps::Application *App : apps::allApplications())
    for (ApproxLevel Level : {ApproxLevel::Medium, ApproxLevel::Aggressive}) {
      SCOPED_TRACE(std::string(App->name()) + "/" + approxLevelName(Level));
      const exec::CompiledKernel &K = cache().get(App->name(), Level);

      auto Sample = [&K, Level](bool Fast,
                                uint64_t Seed) -> std::optional<double> {
        FaultConfig Config = FaultConfig::preset(Level);
        Config.Seed = mixSeed(Config.Seed, Seed);
        State S = Fast ? runFast(K.Binary, Config)
                       : runClassic(K.Binary, Config);
        if (S.Trapped)
          return std::nullopt;
        double FpPart;
        std::memcpy(&FpPart, &S.FpBits[1], sizeof(FpPart));
        if (!std::isfinite(FpPart))
          FpPart = 0.0; // NaN/inf trials carry no usable magnitude.
        return static_cast<double>(S.IntRegs[1]) + FpPart;
      };

      std::vector<double> Classic, Fast;
      for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
        if (auto V = Sample(false, Seed))
          Classic.push_back(*V);
        if (auto V = Sample(true, Seed))
          Fast.push_back(*V);
      }
      if (Classic.size() < 5 || Fast.size() < 5)
        continue; // Too trap-happy at this level to compare.
      TrialStats ClassicStats = TrialStats::over(Classic);
      TrialStats FastStats = TrialStats::over(Fast);
      double Scale = std::max({std::fabs(ClassicStats.Mean), 1.0});
      double Band =
          ClassicStats.Ci95Half + FastStats.Ci95Half + 1e-9 * Scale;
      EXPECT_LE(std::fabs(FastStats.Mean - ClassicStats.Mean), Band)
          << "classic mean " << ClassicStats.Mean << " +/- "
          << ClassicStats.Ci95Half << ", fast mean " << FastStats.Mean;
    }
}

TEST(ExecDifferential, CompiledGridMatchesInterpreterAtLevelNone) {
  // The harness-level claim: at level None both paths run exactly and
  // save nothing, so the shared JSON fields of every cell — QoS stats,
  // energy factors, effective energy, outcomes, retries — agree bit for
  // bit across the full nine-app grid. (The op/storage columns describe
  // different programs — the ISA kernel vs the C++ app — and are
  // intentionally excluded.)
  EvalOptions Interp;
  Interp.Levels = {ApproxLevel::None};
  Interp.Seeds = 2;
  EvalResult InterpGrid = runEval(Interp);

  EvalOptions Compiled = Interp;
  Compiled.Exec = ExecMode::Compiled;
  Compiled.KernelDir = KernelDir;
  EvalResult CompiledGrid = runEval(Compiled);

  ASSERT_EQ(InterpGrid.Cells.size(), CompiledGrid.Cells.size());
  for (size_t I = 0; I < InterpGrid.Cells.size(); ++I) {
    const EvalCell &A = InterpGrid.Cells[I];
    const EvalCell &B = CompiledGrid.Cells[I];
    SCOPED_TRACE(A.App->name());
    auto ExpectStatsEqual = [](const TrialStats &X, const TrialStats &Y) {
      EXPECT_EQ(X.Count, Y.Count);
      EXPECT_EQ(bitsOf(X.Mean), bitsOf(Y.Mean));
      EXPECT_EQ(bitsOf(X.Stddev), bitsOf(Y.Stddev));
      EXPECT_EQ(bitsOf(X.Min), bitsOf(Y.Min));
      EXPECT_EQ(bitsOf(X.Max), bitsOf(Y.Max));
      EXPECT_EQ(bitsOf(X.Ci95Half), bitsOf(Y.Ci95Half));
    };
    ExpectStatsEqual(A.Qos, B.Qos);
    ExpectStatsEqual(A.EnergyFactor, B.EnergyFactor);
    ExpectStatsEqual(A.EffectiveEnergy, B.EffectiveEnergy);
    EXPECT_EQ(A.Outcomes.Ok, B.Outcomes.Ok);
    EXPECT_EQ(A.Outcomes.Aborted, B.Outcomes.Aborted);
    EXPECT_EQ(A.Retries, B.Retries);
  }
}

TEST(ExecDifferential, PolicyArmedCompiledMatchesInterpreterAtLevelNone) {
  // PR 8 lifted the compiled+policy restriction; the recovery loop on
  // the compiled path must agree with the interpreter loop wherever
  // agreement is exact. At level None both paths are precise: attempt 0
  // is accepted everywhere, so the shared cell fields — QoS, energy
  // factors, effective energy (exactly one attempt charged), outcomes,
  // and retries — agree bit for bit across the nine-app grid.
  EvalOptions Interp;
  Interp.Levels = {ApproxLevel::None};
  Interp.Seeds = 2;
  Interp.Policy.Enabled = true;
  Interp.Policy.Slo = 0.1;
  Interp.Policy.MaxRetries = 2;
  EvalResult InterpGrid = runEval(Interp);

  EvalOptions Compiled = Interp;
  Compiled.Exec = ExecMode::Compiled;
  Compiled.KernelDir = KernelDir;
  EvalResult CompiledGrid = runEval(Compiled);

  ASSERT_EQ(InterpGrid.Cells.size(), CompiledGrid.Cells.size());
  for (size_t I = 0; I < InterpGrid.Cells.size(); ++I) {
    const EvalCell &A = InterpGrid.Cells[I];
    const EvalCell &B = CompiledGrid.Cells[I];
    SCOPED_TRACE(A.App->name());
    EXPECT_EQ(bitsOf(A.Qos.Mean), bitsOf(B.Qos.Mean));
    EXPECT_EQ(bitsOf(A.EnergyFactor.Mean), bitsOf(B.EnergyFactor.Mean));
    EXPECT_EQ(bitsOf(A.EffectiveEnergy.Mean),
              bitsOf(B.EffectiveEnergy.Mean));
    EXPECT_EQ(A.Outcomes.Ok, B.Outcomes.Ok);
    EXPECT_EQ(A.Outcomes.Ok, 2u); // Precise: everything accepted as-is.
    EXPECT_EQ(A.Outcomes.SloViolated, B.Outcomes.SloViolated);
    EXPECT_EQ(A.Outcomes.Retried, B.Outcomes.Retried);
    EXPECT_EQ(A.Outcomes.Degraded, B.Outcomes.Degraded);
    EXPECT_EQ(A.Retries, B.Retries);
    EXPECT_EQ(A.Retries, 0u);
  }
}

TEST(ExecDifferential, AcceptAllPolicyLeavesTheCompiledMeasurementAlone) {
  // Attempt 0 of the compiled recovery loop runs with the unmixed trial
  // seed by construction, so a policy loose enough to accept every
  // attempt (SLO = 1 bounds QosError from above) must leave every
  // measured figure bitwise at the no-policy value, with exactly one
  // attempt charged.
  EvalOptions Plain;
  Plain.Levels = {ApproxLevel::Medium, ApproxLevel::Aggressive};
  Plain.Seeds = 2;
  Plain.Exec = ExecMode::Compiled;
  Plain.KernelDir = KernelDir;
  EvalResult PlainGrid = runEval(Plain);

  EvalOptions Loose = Plain;
  Loose.Policy.Enabled = true;
  Loose.Policy.Slo = 1.0;
  Loose.Policy.MaxRetries = 2;
  EvalResult LooseGrid = runEval(Loose);

  ASSERT_EQ(PlainGrid.Cells.size(), LooseGrid.Cells.size());
  for (size_t I = 0; I < PlainGrid.Cells.size(); ++I) {
    const EvalCell &A = PlainGrid.Cells[I];
    const EvalCell &B = LooseGrid.Cells[I];
    SCOPED_TRACE(std::string(A.App->name()) + "/" +
                 approxLevelName(A.Level));
    EXPECT_EQ(bitsOf(A.Qos.Mean), bitsOf(B.Qos.Mean));
    EXPECT_EQ(bitsOf(A.Qos.Stddev), bitsOf(B.Qos.Stddev));
    EXPECT_EQ(bitsOf(A.EnergyFactor.Mean), bitsOf(B.EnergyFactor.Mean));
    EXPECT_EQ(bitsOf(A.EffectiveEnergy.Mean),
              bitsOf(B.EffectiveEnergy.Mean));
    EXPECT_EQ(B.Retries, 0u);
  }
}

TEST(ExecDifferential, RecoveryLoopEnforcesTheSameContractOnBothPaths) {
  // Under approximation the two paths execute different artifacts (the
  // ISA kernel vs the C++ application), so their accepted-QoS values
  // are not directly comparable distributions. What must agree is the
  // recovery *contract*, checked per cell on both paths at Medium:
  //
  //  * with degradation on, the ladder bottoms out at level None (which
  //    is exact), so every trial is eventually accepted and the
  //    recorded mean sits at or under the SLO;
  //  * recovery never worsens a trial — a rejected attempt is only ever
  //    replaced by one at or under the SLO, so the policy-armed mean is
  //    sample-wise bounded by the no-policy mean of the same path.
  auto Grid = [](ExecMode Exec, bool Policy) {
    EvalOptions Options;
    Options.Levels = {ApproxLevel::Medium};
    Options.Seeds = 20;
    Options.Exec = Exec;
    if (Exec == ExecMode::Compiled)
      Options.KernelDir = KernelDir;
    if (Policy) {
      Options.Policy.Enabled = true;
      Options.Policy.Slo = 0.1;
      Options.Policy.MaxRetries = 1;
    }
    return runEval(Options);
  };

  for (ExecMode Exec : {ExecMode::Interp, ExecMode::Compiled}) {
    EvalResult Plain = Grid(Exec, false);
    EvalResult Recovered = Grid(Exec, true);
    ASSERT_EQ(Plain.Cells.size(), Recovered.Cells.size());
    for (size_t I = 0; I < Plain.Cells.size(); ++I) {
      const EvalCell &A = Plain.Cells[I];
      const EvalCell &B = Recovered.Cells[I];
      SCOPED_TRACE(std::string(Exec == ExecMode::Interp ? "interp/"
                                                        : "compiled/") +
                   A.App->name());
      EXPECT_EQ(B.Outcomes.Aborted, 0u);
      EXPECT_EQ(B.Outcomes.SloViolated, 0u);
      EXPECT_LE(B.Qos.Mean, 0.1 + 1e-12);
      EXPECT_LE(B.Qos.Mean, A.Qos.Mean + 1e-12)
          << "plain mean " << A.Qos.Mean << ", recovered mean "
          << B.Qos.Mean;
      // A cell whose plain mean already beat the SLO should mostly be
      // accepted as-is; one that did not must show interventions.
      if (A.Qos.Min > 0.1)
        EXPECT_GT(B.Outcomes.Retried + B.Outcomes.Degraded, 0u);
    }
  }
}

TEST(ExecDifferential, CompiledGridJsonIdenticalAcrossThreadCounts) {
  // Determinism contract, full grid at all three levels: the compiled
  // path's rendered JSON is byte-identical at 1, 4, and hardware
  // threads.
  auto Render = [](unsigned Threads) {
    EvalOptions Options;
    Options.Seeds = 2;
    Options.Threads = Threads;
    Options.Exec = ExecMode::Compiled;
    Options.EchoExecMode = true;
    Options.KernelDir = KernelDir;
    return renderEvalJson(runEval(Options));
  };
  std::string OneThread = Render(1);
  EXPECT_EQ(OneThread, Render(4));
  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  EXPECT_EQ(OneThread, Render(Hardware));
  EXPECT_NE(OneThread.find("\"execMode\":\"compiled\""), std::string::npos);
  EXPECT_NE(OneThread.find("\"version\":4"), std::string::npos);
}

TEST(ExecDifferential, CompiledMetricsSumExactly) {
  // eval --metrics on the compiled path: per-site counts keyed by the
  // kernel's ISA regions must reproduce the trial's own operation
  // counters exactly — the "--metrics still sums" contract.
  const exec::CompiledKernel &K =
      cache().get("montecarlo", ApproxLevel::Medium);
  exec::CompiledTrialResult R =
      exec::runCompiledTrial(K, FaultConfig::preset(ApproxLevel::Medium),
                             1, /*CollectMetrics=*/true);
  ASSERT_FALSE(R.Trapped) << R.Error;

  // Per-kind site sums reproduce the trial's own operation counters
  // exactly — nothing dropped, nothing double-counted.
  auto KindCount = [&R](obs::OpKind Kind) {
    uint64_t N = 0;
    for (size_t S = 0; S < R.Metrics.siteCount(); ++S)
      if (R.Metrics.siteKey(S).Kind == Kind)
        N += R.Metrics.site(S).Count;
    return N;
  };
  EXPECT_EQ(KindCount(obs::OpKind::PreciseInt), R.Stats.Ops.PreciseInt);
  EXPECT_EQ(KindCount(obs::OpKind::ApproxInt), R.Stats.Ops.ApproxInt);
  EXPECT_EQ(KindCount(obs::OpKind::PreciseFp), R.Stats.Ops.PreciseFp);
  EXPECT_EQ(KindCount(obs::OpKind::ApproxFp), R.Stats.Ops.ApproxFp);
  EXPECT_GT(R.Metrics.totalOps(), 0u);
  // Moves and jumps tick the clock but are not counted operations, so
  // the ticking-site sum is bounded by the ledger clock (the validator's
  // ticks <= ops invariant holds by construction).
  EXPECT_LE(R.Metrics.totalTicks(), R.Cycles);
  EXPECT_LE(R.Metrics.totalTicks(), R.Metrics.totalOps());
  // Sites land in the kernel's regions, nowhere else.
  for (size_t S = 0; S < R.Metrics.siteCount(); ++S) {
    const std::string &Region =
        R.Metrics.regionName(R.Metrics.siteKey(S).Region);
    EXPECT_TRUE(Region == "montecarlo" || Region == "montecarlo/approx")
        << Region;
  }
}
