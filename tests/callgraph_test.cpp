//===- tests/callgraph_test.cpp - instantiated call graph tests -----------===//
//
// The call graph is the substrate for every interprocedural pass, so its
// contracts are pinned here: instance 0 is main, context-polymorphic
// methods instantiate per receiver qualifier, `_APPROX` overloads
// dispatch by instantiation, recursion lands in recursive SCCs, and
// never-called methods are reported unreachable.
//
//===----------------------------------------------------------------------===//

#include "analysis/callgraph.h"
#include "fenerj/fenerj.h"

#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::analysis;
using fenerj::Qual;

namespace {

struct Compiled {
  fenerj::ClassTable Table;
  std::optional<fenerj::Program> Prog;
};

/// Compiles and typechecks; the graph builder requires a well-typed
/// program.
void compile(Compiled &C, std::string_view Source) {
  fenerj::DiagnosticEngine Diags;
  C.Prog = fenerj::compile(Source, C.Table, Diags);
  ASSERT_TRUE(C.Prog.has_value()) << Diags.str();
}

/// The single method named \p Method of class \p Cls with receiver
/// precision \p Recv (Context unless the source marks the overload).
const fenerj::MethodDecl *method(const Compiled &C, const char *Cls,
                                 const char *Method,
                                 Qual Recv = Qual::Context) {
  const fenerj::ClassDecl *Decl = C.Table.lookup(Cls);
  if (!Decl)
    return nullptr;
  for (const fenerj::MethodDecl &M : Decl->Methods)
    if (M.Name == Method && M.ReceiverPrecision == Recv)
      return &M;
  return nullptr;
}

} // namespace

TEST(CallGraph, InstanceZeroIsMain) {
  Compiled C;
  compile(C, "{ 1; }");
  CallGraph G = CallGraph::build(*C.Prog, C.Table);
  ASSERT_GE(G.instanceCount(), 1u);
  EXPECT_TRUE(G.instance(0).isMain());
  EXPECT_EQ(G.instance(0).name(), "main");
  EXPECT_EQ(G.sccCount(), 1u);
  EXPECT_FALSE(G.sccIsRecursive(G.sccOf(0)));
}

TEST(CallGraph, ContextMethodInstantiatesPerReceiver) {
  Compiled C;
  compile(C, R"(
    class P { @context int x; int bump() { this.x := this.x + 1; 0; } }
    {
      let @precise P p = new @precise P();
      let @approx P a = new @approx P();
      p.bump(); a.bump(); 0;
    }
  )");
  CallGraph G = CallGraph::build(*C.Prog, C.Table);
  const fenerj::MethodDecl *Bump = method(C, "P", "bump");
  ASSERT_NE(Bump, nullptr);
  unsigned Pre = G.instanceId(Bump, Qual::Precise);
  unsigned App = G.instanceId(Bump, Qual::Approx);
  ASSERT_NE(Pre, ~0u);
  ASSERT_NE(App, ~0u);
  EXPECT_NE(Pre, App);
  EXPECT_EQ(G.instance(Pre).name(), "P.bump@precise");
  EXPECT_EQ(G.instance(App).name(), "P.bump@approx");
  // main + both instantiations, one call edge each.
  EXPECT_EQ(G.instanceCount(), 3u);
  EXPECT_EQ(G.edges().size(), 2u);
}

TEST(CallGraph, ApproxOverloadDispatchesByInstantiation) {
  Compiled C;
  compile(C, R"(
    class S {
      @context float v;
      float get() precise { this.v; }
      @approx float get() approx { this.v * 2.0; }
      float relay() precise { this.get(); }
      @approx float relay() approx { this.get(); }
    }
    {
      let @precise S p = new @precise S();
      let @approx S a = new @approx S();
      p.relay(); endorse(a.relay());
    }
  )");
  CallGraph G = CallGraph::build(*C.Prog, C.Table);
  const fenerj::MethodDecl *GetPre = method(C, "S", "get", Qual::Precise);
  const fenerj::MethodDecl *GetApp = method(C, "S", "get", Qual::Approx);
  ASSERT_NE(GetPre, nullptr);
  ASSERT_NE(GetApp, nullptr);

  // relay@precise must call the precise get variant, relay@approx the
  // approx one — dispatch follows the substituted receiver qualifier.
  unsigned RelayPre =
      G.instanceId(method(C, "S", "relay", Qual::Precise), Qual::Precise);
  unsigned RelayApp =
      G.instanceId(method(C, "S", "relay", Qual::Approx), Qual::Approx);
  ASSERT_NE(RelayPre, ~0u);
  ASSERT_NE(RelayApp, ~0u);
  ASSERT_EQ(G.calleeEdges(RelayPre).size(), 1u);
  ASSERT_EQ(G.calleeEdges(RelayApp).size(), 1u);
  const CallEdge &FromPre = G.edges()[G.calleeEdges(RelayPre)[0]];
  const CallEdge &FromApp = G.edges()[G.calleeEdges(RelayApp)[0]];
  EXPECT_EQ(G.instance(FromPre.Callee).Method, GetPre);
  EXPECT_EQ(G.instance(FromApp.Callee).Method, GetApp);
  EXPECT_EQ(FromPre.ReceiverQual, Qual::Precise);
  EXPECT_EQ(FromApp.ReceiverQual, Qual::Approx);
  // Marked overloads have exactly one instantiation each.
  EXPECT_EQ(G.instanceId(GetPre, Qual::Approx), ~0u);
  EXPECT_EQ(G.instanceId(GetApp, Qual::Precise), ~0u);
}

TEST(CallGraph, SelfRecursionFormsARecursiveScc) {
  Compiled C;
  compile(C, R"(
    class R {
      int count(int n) {
        if (n <= 0) { 0; } else { 1 + this.count(n - 1); };
      }
    }
    { let @precise R r = new @precise R(); r.count(4); }
  )");
  CallGraph G = CallGraph::build(*C.Prog, C.Table);
  const fenerj::MethodDecl *Count = method(C, "R", "count");
  ASSERT_NE(Count, nullptr);
  unsigned Inst = G.instanceId(Count, Qual::Precise);
  ASSERT_NE(Inst, ~0u);
  EXPECT_TRUE(G.sccIsRecursive(G.sccOf(Inst)));
  EXPECT_FALSE(G.sccIsRecursive(G.sccOf(0))); // main is not in the cycle
  EXPECT_NE(G.sccOf(Inst), G.sccOf(0));
}

TEST(CallGraph, MutualRecursionSharesOneScc) {
  Compiled C;
  compile(C, R"(
    class M {
      int even(int n) { if (n == 0) { 1; } else { this.odd(n - 1); }; }
      int odd(int n) { if (n == 0) { 0; } else { this.even(n - 1); }; }
    }
    { let @precise M m = new @precise M(); m.even(6); }
  )");
  CallGraph G = CallGraph::build(*C.Prog, C.Table);
  unsigned Even = G.instanceId(method(C, "M", "even"), Qual::Precise);
  unsigned Odd = G.instanceId(method(C, "M", "odd"), Qual::Precise);
  ASSERT_NE(Even, ~0u);
  ASSERT_NE(Odd, ~0u);
  EXPECT_EQ(G.sccOf(Even), G.sccOf(Odd));
  EXPECT_TRUE(G.sccIsRecursive(G.sccOf(Even)));
  ASSERT_EQ(G.sccMembers(G.sccOf(Even)).size(), 2u);
}

TEST(CallGraph, CalleeFirstOrderPutsCalleesBeforeCallers) {
  Compiled C;
  compile(C, R"(
    class T {
      int leaf() { 1; }
      int mid() { this.leaf() + 1; }
      int top() { this.mid() + 1; }
    }
    { let @precise T t = new @precise T(); t.top(); }
  )");
  CallGraph G = CallGraph::build(*C.Prog, C.Table);
  const std::vector<unsigned> &Order = G.calleeFirstOrder();
  ASSERT_EQ(Order.size(), G.instanceCount());
  std::vector<unsigned> Pos(G.instanceCount());
  for (unsigned I = 0; I < Order.size(); ++I)
    Pos[Order[I]] = I;
  for (const CallEdge &E : G.edges())
    EXPECT_LT(Pos[E.Callee], Pos[E.Caller]);
}

TEST(CallGraph, UncalledMethodsAreReportedUnreachable) {
  Compiled C;
  compile(C, R"(
    class U {
      int used() { 1; }
      int dead() { 2; }
      int alsoDead() { this.dead(); }
    }
    { let @precise U u = new @precise U(); u.used(); }
  )");
  CallGraph G = CallGraph::build(*C.Prog, C.Table);
  ASSERT_EQ(G.unreachable().size(), 2u);
  // Declaration order.
  EXPECT_EQ(G.unreachable()[0].name(), "U.dead");
  EXPECT_EQ(G.unreachable()[1].name(), "U.alsoDead");
  EXPECT_EQ(G.instanceId(method(C, "U", "dead"), Qual::Precise), ~0u);
  EXPECT_EQ(G.instanceId(method(C, "U", "dead"), Qual::Approx), ~0u);
}

TEST(CallGraph, OnlyInstantiatedContextsExist) {
  // A context method called only on approximate receivers must not get a
  // precise instantiation.
  Compiled C;
  compile(C, R"(
    class O { @context int v; int poke() { this.v := this.v + 1; 0; } }
    { let @approx O o = new @approx O(); o.poke(); 0; }
  )");
  CallGraph G = CallGraph::build(*C.Prog, C.Table);
  const fenerj::MethodDecl *Poke = method(C, "O", "poke");
  EXPECT_NE(G.instanceId(Poke, Qual::Approx), ~0u);
  EXPECT_EQ(G.instanceId(Poke, Qual::Precise), ~0u);
  EXPECT_TRUE(G.unreachable().empty());
}
