#!/usr/bin/env python3
"""Validate `fenerj_tool eval --json` output against schema v2..v5.

Version 2 is the default grid; version 3 is emitted by `eval --metrics`
and appends a "metrics" object (tick/op/fault totals plus per-site
counters) to every cell — the validator requires it exactly when the
document declares version 3. Version 4 is emitted whenever --exec-mode
is given and inserts an "execMode" field ("interp" or "compiled")
directly after "seeds"; its cells carry the metrics block exactly when
--metrics was also passed, so the validator infers metrics presence
from the first cell and then requires it uniformly. Version 5 is
emitted whenever --power-trace is given: a top-level "power" echo
(trace name, checkpoint spec) after "seeds"/"execMode", a
"powerFailed" key in every cell's outcome counts, and a per-cell
"power" block (losses, checkpoints, reExecutedOps, survived,
survivalRate) after storage/metrics. "execMode" and "metrics" are both
optional at v5, so their presence is inferred from the document and
then required uniformly.

Reads one JSON document from stdin and checks structure, key presence,
key order, and basic invariants. Deliberately does NOT compare metric
values: QoS numbers depend on libm (fft uses sin/cos), so value goldens
would be platform-fragile. The exact byte-level golden lives in
tests/harness_stats_test.cpp against a hand-built fixture; this script
is the CI gate that real tool output still matches the documented
schema (docs/EVALUATION.md).

Usage: fenerj_tool eval ... --json | python3 tests/validate_eval_json.py
Exits 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

STATS_KEYS = ["count", "mean", "stddev", "min", "max", "ci95"]
POLICY_KEYS = ["enabled", "slo", "outputBound", "maxRetries", "opBudget",
               "degrade"]
OUTCOME_KEYS = ["ok", "sloViolated", "aborted", "retried", "degraded"]
OUTCOME_KEYS_V5 = OUTCOME_KEYS + ["powerFailed"]
POWER_ECHO_KEYS = ["trace", "checkpoint"]
CELL_POWER_KEYS = ["losses", "checkpoints", "reExecutedOps", "survived",
                   "survivalRate"]
OPS_KEYS = ["preciseInt", "approxInt", "preciseFp", "approxFp",
            "timingErrors"]
STORAGE_KEYS = ["sramPrecise", "sramApprox", "dramPrecise", "dramApprox"]
CELL_KEYS = ["level", "qos", "energy", "effectiveEnergy", "outcomes",
             "retries", "ops", "storage"]
METRICS_KEYS = ["ticks", "ops", "faults", "sites"]
SITE_KEYS = ["region", "kind", "class", "count", "faults", "flippedBits"]
SITE_KINDS = {"preciseInt", "approxInt", "preciseFp", "approxFp",
              "sramRead", "sramWrite", "dramLoad", "dramStore"}
SITE_CLASSES = {"alu", "sram", "dram"}
TOP_KEYS = ["tool", "version", "seeds", "policy", "levels", "apps"]
TOP_KEYS_V4 = ["tool", "version", "seeds", "execMode", "policy", "levels",
               "apps"]
TOP_KEYS_V5 = ["tool", "version", "seeds", "power", "policy", "levels",
               "apps"]
TOP_KEYS_V5_EXEC = ["tool", "version", "seeds", "execMode", "power",
                    "policy", "levels", "apps"]
EXEC_MODES = {"interp", "compiled"}
LEVELS = {"none", "mild", "medium", "aggressive"}


def fail(message):
    print(f"validate_eval_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect_keys(obj, keys, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected an object, got {type(obj).__name__}")
    if list(obj.keys()) != keys:
        fail(f"{where}: keys {list(obj.keys())} != expected {keys}")


def expect_stats(obj, where):
    expect_keys(obj, STATS_KEYS, where)
    if not isinstance(obj["count"], int) or obj["count"] < 0:
        fail(f"{where}.count: not a non-negative integer")
    for key in STATS_KEYS[1:]:
        if not isinstance(obj[key], (int, float)):
            fail(f"{where}.{key}: not a number")


def expect_count(obj, key, where):
    if not isinstance(obj[key], int) or obj[key] < 0:
        fail(f"{where}.{key}: not a non-negative integer")


def expect_metrics(metrics, where):
    expect_keys(metrics, METRICS_KEYS, where)
    for key in ("ticks", "ops", "faults"):
        expect_count(metrics, key, where)
    if not isinstance(metrics["sites"], list):
        fail(f"{where}.sites: not a list")
    total_ops = 0
    total_faults = 0
    for index, site in enumerate(metrics["sites"]):
        sw = f"{where}.sites[{index}]"
        expect_keys(site, SITE_KEYS, sw)
        if site["kind"] not in SITE_KINDS:
            fail(f"{sw}.kind: unknown kind {site['kind']!r}")
        if site["class"] not in SITE_CLASSES:
            fail(f"{sw}.class: unknown class {site['class']!r}")
        for key in ("count", "faults", "flippedBits"):
            expect_count(site, key, sw)
        if site["faults"] > site["count"]:
            fail(f"{sw}: faults exceed count")
        total_ops += site["count"]
        total_faults += site["faults"]
    if total_ops != metrics["ops"]:
        fail(f"{where}: site counts sum to {total_ops}, "
             f"not ops={metrics['ops']}")
    if total_faults != metrics["faults"]:
        fail(f"{where}: site faults sum to {total_faults}, "
             f"not faults={metrics['faults']}")
    if metrics["ticks"] > metrics["ops"]:
        fail(f"{where}: ticks exceed ops")


def main():
    try:
        doc = json.load(sys.stdin)
    except json.JSONDecodeError as err:
        fail(f"not valid JSON: {err}")

    version = doc.get("version")
    if version not in (2, 3, 4, 5):
        fail(f"version is {version!r}, expected 2, 3, 4 or 5")
    if version == 5:
        with_exec = "execMode" in doc
        expect_keys(doc, TOP_KEYS_V5_EXEC if with_exec else TOP_KEYS_V5,
                    "top level")
    else:
        with_exec = version == 4
        expect_keys(doc, TOP_KEYS_V4 if with_exec else TOP_KEYS,
                    "top level")
    if doc["tool"] != "enerj-eval":
        fail(f"tool is {doc['tool']!r}, expected 'enerj-eval'")
    if with_exec and doc["execMode"] not in EXEC_MODES:
        fail(f"execMode is {doc['execMode']!r}, "
             f"expected one of {sorted(EXEC_MODES)}")
    if version >= 4:
        first = doc["apps"][0]["cells"][0] if (
            isinstance(doc.get("apps"), list) and doc["apps"]
            and isinstance(doc["apps"][0], dict)
            and doc["apps"][0].get("cells")) else {}
        with_metrics = "metrics" in first
    else:
        with_metrics = version == 3
    with_power = version == 5
    if with_power:
        expect_keys(doc["power"], POWER_ECHO_KEYS, "power")
        for key in POWER_ECHO_KEYS:
            if not isinstance(doc["power"][key], str) or not doc["power"][key]:
                fail(f"power.{key}: not a non-empty string")
    cell_keys = CELL_KEYS + ["metrics"] if with_metrics else list(CELL_KEYS)
    if with_power:
        cell_keys = cell_keys + ["power"]
    outcome_keys = OUTCOME_KEYS_V5 if with_power else OUTCOME_KEYS
    if not isinstance(doc["seeds"], int) or doc["seeds"] < 1:
        fail("seeds: not a positive integer")

    expect_keys(doc["policy"], POLICY_KEYS, "policy")
    if not isinstance(doc["policy"]["enabled"], bool):
        fail("policy.enabled: not a bool")
    if not isinstance(doc["policy"]["degrade"], bool):
        fail("policy.degrade: not a bool")

    if not doc["levels"] or not set(doc["levels"]) <= LEVELS:
        fail(f"levels {doc['levels']!r}: unknown or empty")
    if not isinstance(doc["apps"], list) or not doc["apps"]:
        fail("apps: empty or not a list")

    for app in doc["apps"]:
        expect_keys(app, ["name", "cells"], "app")
        where = f"app {app['name']!r}"
        if len(app["cells"]) != len(doc["levels"]):
            fail(f"{where}: {len(app['cells'])} cells for "
                 f"{len(doc['levels'])} levels")
        for cell in app["cells"]:
            expect_keys(cell, cell_keys, f"{where} cell")
            cw = f"{where} cell {cell['level']!r}"
            if cell["level"] not in doc["levels"]:
                fail(f"{cw}: level not in the declared list")
            for stats in ("qos", "energy", "effectiveEnergy"):
                expect_stats(cell[stats], f"{cw}.{stats}")
            expect_keys(cell["outcomes"], outcome_keys, f"{cw}.outcomes")
            total = sum(cell["outcomes"].values())
            if total != doc["seeds"]:
                fail(f"{cw}: outcomes sum to {total}, not seeds="
                     f"{doc['seeds']}")
            if not isinstance(cell["retries"], int) or cell["retries"] < 0:
                fail(f"{cw}.retries: not a non-negative integer")
            expect_keys(cell["ops"], OPS_KEYS, f"{cw}.ops")
            expect_keys(cell["storage"], STORAGE_KEYS, f"{cw}.storage")
            if with_metrics:
                expect_metrics(cell["metrics"], f"{cw}.metrics")
            if with_power:
                power = cell["power"]
                pw = f"{cw}.power"
                expect_keys(power, CELL_POWER_KEYS, pw)
                for key in ("losses", "checkpoints", "reExecutedOps",
                            "survived"):
                    expect_count(power, key, pw)
                if power["survived"] > doc["seeds"]:
                    fail(f"{pw}: survived exceeds seeds")
                if not isinstance(power["survivalRate"], (int, float)):
                    fail(f"{pw}.survivalRate: not a number")
                if not 0 <= power["survivalRate"] <= 1:
                    fail(f"{pw}.survivalRate: outside [0, 1]")
                if power["survived"] + cell["outcomes"]["powerFailed"] != \
                        doc["seeds"]:
                    fail(f"{pw}: survived + powerFailed != seeds")

    mode = f", exec={doc['execMode']}" if with_exec else ""
    if with_power:
        mode += (f", power={doc['power']['trace']}"
                 f"/{doc['power']['checkpoint']}")
    print(f"validate_eval_json: OK (v{doc['version']}, "
          f"{len(doc['apps'])} app(s) x "
          f"{len(doc['levels'])} level(s), seeds={doc['seeds']}, "
          f"policy {'on' if doc['policy']['enabled'] else 'off'}{mode})")


if __name__ == "__main__":
    main()
