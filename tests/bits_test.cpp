//===- tests/bits_test.cpp - Bit-reinterpretation helper tests ------------===//

#include "support/bits.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

using namespace enerj;

TEST(Bits, RoundTripIntegers) {
  for (int32_t V : {0, 1, -1, 42, -123456, INT32_MAX, INT32_MIN})
    EXPECT_EQ(fromBits<int32_t>(toBits(V)), V);
  for (int64_t V :
       {int64_t(0), int64_t(-1), INT64_MAX, INT64_MIN, int64_t(1) << 40})
    EXPECT_EQ(fromBits<int64_t>(toBits(V)), V);
}

TEST(Bits, RoundTripFloats) {
  for (float V : {0.0f, -0.0f, 1.5f, -3.25e10f,
                  std::numeric_limits<float>::infinity()})
    EXPECT_EQ(fromBits<float>(toBits(V)), V);
  for (double V : {0.0, 1e300, -2.5, std::numeric_limits<double>::epsilon()})
    EXPECT_EQ(fromBits<double>(toBits(V)), V);
}

TEST(Bits, RoundTripBool) {
  EXPECT_EQ(fromBits<bool>(toBits(true)), true);
  EXPECT_EQ(fromBits<bool>(toBits(false)), false);
}

TEST(Bits, ToBitsZeroExtends) {
  EXPECT_EQ(toBits(int8_t(-1)), 0xFFull);
  EXPECT_EQ(toBits(int16_t(-1)), 0xFFFFull);
  EXPECT_EQ(toBits(int32_t(-1)), 0xFFFFFFFFull);
}

TEST(Bits, BitWidth) {
  EXPECT_EQ(bitWidth<int32_t>(), 32u);
  EXPECT_EQ(bitWidth<double>(), 64u);
  EXPECT_EQ(bitWidth<float>(), 32u);
  EXPECT_EQ(bitWidth<bool>(), 1u); // One meaningful bit.
}

TEST(Bits, FlipBit) {
  EXPECT_EQ(flipBit(0, 0), 1ull);
  EXPECT_EQ(flipBit(1, 0), 0ull);
  EXPECT_EQ(flipBit(0, 63), 1ull << 63);
  // Flipping twice is the identity.
  uint64_t V = 0xDEADBEEF;
  EXPECT_EQ(flipBit(flipBit(V, 17), 17), V);
}

TEST(Bits, FloatMantissaTruncationPreservesSignExponent) {
  float V = -1234.5678f;
  for (unsigned Bits : {0u, 4u, 8u, 16u, 23u}) {
    float Narrow = fromBits<float>(
        truncateFloatMantissa(static_cast<uint32_t>(toBits(V)), Bits));
    EXPECT_LT(Narrow, 0.0f) << "sign preserved at " << Bits;
    // Truncation toward zero: |narrow| <= |v|.
    EXPECT_LE(std::fabs(Narrow), std::fabs(V));
    // And within the width's relative-error bound of the original.
    if (Bits >= 4) {
      EXPECT_GT(std::fabs(Narrow), std::fabs(V) * 0.9f);
    }
  }
}

TEST(Bits, FloatMantissaFullWidthIsIdentity) {
  float V = 6.02214076e23f;
  EXPECT_EQ(fromBits<float>(truncateFloatMantissa(
                static_cast<uint32_t>(toBits(V)), 23)),
            V);
  EXPECT_EQ(fromBits<float>(truncateFloatMantissa(
                static_cast<uint32_t>(toBits(V)), 99)),
            V);
}

TEST(Bits, DoubleMantissaTruncation) {
  double V = 3.141592653589793;
  double Prev = V;
  // Error grows monotonically as the mantissa narrows.
  for (unsigned Bits : {52u, 32u, 16u, 8u}) {
    double Narrow = fromBits<double>(truncateDoubleMantissa(toBits(V), Bits));
    EXPECT_LE(Narrow, V);
    EXPECT_LE(Narrow, Prev + 1e-18);
    EXPECT_GT(Narrow, 3.0);
    Prev = Narrow;
  }
  EXPECT_EQ(fromBits<double>(truncateDoubleMantissa(toBits(V), 52)), V);
}

TEST(Bits, MantissaTruncationErrorBound) {
  // With k mantissa bits kept, the relative error is below 2^-k.
  double V = 1.999999999;
  for (unsigned Bits : {8u, 16u, 32u}) {
    double Narrow = fromBits<double>(truncateDoubleMantissa(toBits(V), Bits));
    EXPECT_LT(std::fabs(V - Narrow) / V, std::pow(2.0, -double(Bits)));
  }
}
