//===- tests/obs_profile_test.cpp - Attribution profiler invariants -------===//
//
// The profiler's acceptance invariant: per-site energy shares are an
// exact decomposition of EnergyReport::TotalFactor (within 1e-9), for
// every application. Also pins row ordering, the ledger/registry tick
// reconciliation through aggregation, the baseline's bitwise
// equivalence to the plain measurement path, the QoS-delta probe, and
// the stability of both renderers.
//
//===----------------------------------------------------------------------===//

#include "obs/profile.h"

#include "apps/app.h"
#include "harness/trial.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::obs;

namespace {

uint64_t bitsOf(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

ProfileOptions quickOptions(const char *App) {
  ProfileOptions Options;
  Options.App = apps::findApplication(App);
  Options.Seeds = 2;
  Options.Threads = 2;
  Options.QosDelta = false;
  return Options;
}

} // namespace

TEST(ObsProfile, SharesSumToTheTotalFactorForEveryApp) {
  for (const apps::Application *App : apps::allApplications()) {
    SCOPED_TRACE(App->name());
    ProfileOptions Options = quickOptions(App->name());
    ASSERT_NE(Options.App, nullptr);
    ProfileResult Result = runProfile(Options);

    EXPECT_NEAR(Result.ShareSum, Result.Energy.TotalFactor, 1e-9);
    double RowSum = 0.0;
    for (const ProfileRow &Row : Result.Rows) {
      EXPECT_GE(Row.EnergyShare, 0.0)
          << Row.Region << "/" << Row.Item;
      RowSum += Row.EnergyShare;
    }
    EXPECT_NEAR(RowSum, Result.Energy.TotalFactor, 1e-9);

    // Aggregated coverage: merged registry ticks equal the summed
    // ledger clocks, seed by seed.
    EXPECT_EQ(Result.LedgerTicks, Result.Metrics.totalTicks());
    EXPECT_GT(Result.LedgerTicks, 0u);
  }
}

TEST(ObsProfile, RowsAreSortedByShareWithResidualLast) {
  ProfileResult Result = runProfile(quickOptions("fft"));
  ASSERT_FALSE(Result.Rows.empty());
  size_t Regular = Result.Rows.size();
  for (size_t I = 0; I < Result.Rows.size(); ++I)
    if (Result.Rows[I].Item == "-") {
      // At most one residual row, and nothing follows it.
      EXPECT_EQ(I, Result.Rows.size() - 1);
      Regular = I;
    }
  for (size_t I = 1; I < Regular; ++I)
    EXPECT_GE(Result.Rows[I - 1].EnergyShare, Result.Rows[I].EnergyShare);
}

TEST(ObsProfile, BaselineMatchesThePlainMeasurementPath) {
  // Profiling montecarlo must measure exactly what a plain eval trial
  // measures: same QoS bits per seed (via the mean), same summed op
  // counts — observation is passive.
  ProfileOptions Options = quickOptions("montecarlo");
  ProfileResult Result = runProfile(Options);

  double Sum = 0.0;
  RunStats Plain;
  for (int Seed = 1; Seed <= Options.Seeds; ++Seed) {
    harness::Trial T;
    T.App = Options.App;
    T.Config = FaultConfig::preset(Options.Level);
    T.WorkloadSeed = static_cast<uint64_t>(Seed);
    harness::TrialResult R = harness::TrialRunner::runOne(T);
    Sum += R.QosError;
    Plain.Ops += R.Stats.Ops;
    Plain.Storage += R.Stats.Storage;
  }
  EXPECT_EQ(bitsOf(Result.Qos.Mean), bitsOf(Sum / Options.Seeds));
  EXPECT_EQ(Result.Stats.Ops.ApproxFp, Plain.Ops.ApproxFp);
  EXPECT_EQ(Result.Stats.Ops.PreciseInt, Plain.Ops.PreciseInt);
  EXPECT_EQ(bitsOf(Result.Stats.Storage.DramApprox),
            bitsOf(Plain.Storage.DramApprox));
  EXPECT_EQ(bitsOf(Result.Energy.TotalFactor),
            bitsOf(computeEnergy(Plain, Result.Config).TotalFactor));
}

TEST(ObsProfile, QosDeltaProbesTheTopSites) {
  ProfileOptions Options = quickOptions("montecarlo");
  Options.QosDelta = true;
  Options.TopK = 5;
  ProfileResult Result = runProfile(Options);

  bool Probed = false;
  for (size_t I = 0; I < Result.Rows.size(); ++I) {
    const ProfileRow &Row = Result.Rows[I];
    if (Row.HasQosDelta) {
      Probed = true;
      EXPECT_TRUE(std::isfinite(Row.QosDelta));
      EXPECT_LT(static_cast<int>(I), Options.TopK);
      // The probe never targets the implicit root or the residual.
      EXPECT_NE(Row.Region, "main");
      EXPECT_NE(Row.Region, "(unattributed)");
    }
  }
  EXPECT_TRUE(Probed);

  // Forcing montecarlo's one approximate region precise removes all
  // degradation: the delta equals the baseline mean.
  for (const ProfileRow &Row : Result.Rows) {
    if (Row.HasQosDelta && Row.Region == "samples") {
      EXPECT_DOUBLE_EQ(Row.QosDelta, Result.Qos.Mean);
    }
  }
}

TEST(ObsProfile, RenderersAreStable) {
  ProfileOptions Options = quickOptions("sor");
  ProfileResult Result = runProfile(Options);

  std::string Text = renderProfileText(Result);
  std::string Json = renderProfileJson(Result);
  EXPECT_EQ(Text, renderProfileText(Result));
  EXPECT_EQ(Json, renderProfileJson(Result));

  // Schema anchors, version-pinned.
  EXPECT_EQ(Json.rfind("{\"tool\":\"enerj-profile\",\"version\":1,", 0),
            0u);
  EXPECT_NE(Json.find("\"app\":\"sor\""), std::string::npos);
  EXPECT_NE(Json.find("\"shareSum\":"), std::string::npos);
  EXPECT_NE(Json.find("\"sites\":["), std::string::npos);
  EXPECT_NE(Json.find("\"dramGaps\":["), std::string::npos);
  EXPECT_NE(Text.find("Share sum"), std::string::npos);
  EXPECT_NE(Text.find("region"), std::string::npos);
}
