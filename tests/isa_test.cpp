//===- tests/isa_test.cpp - Approximation-aware ISA tests -----------------===//

#include "isa/assembler.h"
#include "isa/machine.h"
#include "isa/verifier.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace enerj;
using namespace enerj::isa;

namespace {

IsaProgram assembleOk(std::string_view Source) {
  std::vector<std::string> Errors;
  std::optional<IsaProgram> Program = assemble(Source, Errors);
  EXPECT_TRUE(Program.has_value());
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  return Program ? std::move(*Program) : IsaProgram{};
}

void assembleFails(std::string_view Source) {
  std::vector<std::string> Errors;
  EXPECT_FALSE(assemble(Source, Errors).has_value());
  EXPECT_FALSE(Errors.empty());
}

IsaProgram assembleVerified(std::string_view Source) {
  IsaProgram Program = assembleOk(Source);
  for (const VerifyError &E : verify(Program))
    ADD_FAILURE() << E.str();
  return Program;
}

void verifyRejects(std::string_view Source, const char *Fragment) {
  IsaProgram Program = assembleOk(Source);
  std::vector<VerifyError> Errors = verify(Program);
  ASSERT_FALSE(Errors.empty()) << "expected a discipline violation";
  bool Found = false;
  for (const VerifyError &E : Errors)
    Found |= E.Message.find(Fragment) != std::string::npos;
  EXPECT_TRUE(Found) << "no error mentions '" << Fragment << "'; got: "
                     << Errors[0].str();
}

} // namespace

// --- Assembler. ---

TEST(IsaAssembler, BasicProgram) {
  IsaProgram P = assembleOk(R"(
    .data 4
    .adata 8
    li r1, 42        ; a comment
    addi r1, r1, -2  # another comment
    halt
  )");
  EXPECT_EQ(P.PreciseWords, 4u);
  EXPECT_EQ(P.ApproxWords, 8u);
  ASSERT_EQ(P.Instructions.size(), 3u);
  EXPECT_EQ(P.Instructions[0].Op, Opcode::Li);
  EXPECT_EQ(P.Instructions[0].Imm, 42);
  EXPECT_EQ(P.Instructions[1].Imm, -2);
  EXPECT_FALSE(P.Instructions[1].Approx);
}

TEST(IsaAssembler, ApproxSuffix) {
  IsaProgram P = assembleOk("fadd.a f16, f17, f18\nhalt\n");
  EXPECT_TRUE(P.Instructions[0].Approx);
  EXPECT_EQ(P.Instructions[0].str(), "fadd.a");
}

TEST(IsaAssembler, LabelsResolve) {
  IsaProgram P = assembleOk(R"(
    li r1, 0
    loop: addi r1, r1, 1
    blt r1, r2, loop
    jmp end
    li r1, 99
    end: halt
  )");
  EXPECT_EQ(P.Instructions[2].Imm, 1); // loop: -> instruction 1.
  EXPECT_EQ(P.Instructions[3].Imm, 5); // end: -> instruction 5.
}

TEST(IsaAssembler, Errors) {
  assembleFails("bogus r1, r2\nhalt\n");            // Unknown mnemonic.
  assembleFails("li r99, 1\nhalt\n");               // Bad register.
  assembleFails("li f1, 1\nhalt\n");                // Wrong register file.
  assembleFails("add r1, r2\nhalt\n");              // Arity.
  assembleFails("jmp nowhere\nhalt\n");             // Undefined label.
  assembleFails("x: halt\nx: halt\n");              // Duplicate label.
  assembleFails("mv.a r16, r1\nhalt\n");            // No .a variant.
  assembleFails("li r1, zzz\nhalt\n");              // Bad immediate.
  assembleFails(".data -1\nhalt\n");                // Bad directive.
}

TEST(IsaAssembler, DiagnosticsNameLineAndToken) {
  std::vector<std::string> Errors;
  EXPECT_FALSE(assemble("halt\nbogus r1, r2\nhalt\n", Errors).has_value());
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("line 2"), std::string::npos) << Errors[0];
  EXPECT_NE(Errors[0].find("'bogus'"), std::string::npos) << Errors[0];

  Errors.clear();
  EXPECT_FALSE(assemble("li r99, 1\nhalt\n", Errors).has_value());
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("line 1"), std::string::npos) << Errors[0];
  EXPECT_NE(Errors[0].find("'r99'"), std::string::npos) << Errors[0];

  Errors.clear();
  EXPECT_FALSE(assemble("jmp nowhere\nhalt\n", Errors).has_value());
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("'nowhere'"), std::string::npos) << Errors[0];
}

TEST(IsaAssembler, ReportsEveryBadLineInOnePass) {
  // One run should surface all three defects, not stop at the first.
  std::vector<std::string> Errors;
  EXPECT_FALSE(
      assemble("bogus r1\nli r99, 1\nadd r1, r2\nhalt\n", Errors)
          .has_value());
  ASSERT_EQ(Errors.size(), 3u);
  EXPECT_NE(Errors[0].find("line 1"), std::string::npos) << Errors[0];
  EXPECT_NE(Errors[1].find("line 2"), std::string::npos) << Errors[1];
  EXPECT_NE(Errors[2].find("line 3"), std::string::npos) << Errors[2];
}

// --- Verifier: the EnerJ discipline at ISA level. ---

TEST(IsaVerifier, AcceptsDisciplinedPrograms) {
  assembleVerified(R"(
    .data 2
    .adata 4
    li r1, 2          ; precise index math
    li r16, 5         ; precise-to-approx: fine
    add.a r17, r16, r16
    endorse r2, r17   ; the gate
    sw r2, r0, 0      ; precise store, precise region
    lw.a r18, r0, 2   ; approximate load, approx region
    fadd.a f16, f17, f18
    fendorse f1, f16
    halt
  )");
}

TEST(IsaVerifier, NoImplicitApproxToPreciseFlow) {
  verifyRejects("mv r1, r16\nhalt\n", "use endorse");
  verifyRejects("add r1, r16, r2\nhalt\n", "use endorse");
  verifyRejects("fmul f0, f16, f1\nhalt\n", "use endorse");
  verifyRejects("cvti r1, f16\nhalt\n", "use endorse");
}

TEST(IsaVerifier, ApproxInstructionsNeedApproxDest) {
  verifyRejects("add.a r1, r2, r3\nhalt\n", "approximate register");
  verifyRejects("fadd.a f1, f2, f3\nhalt\n", "approximate register");
  verifyRejects("lw.a r1, r0, 0\nhalt\n", "approximate register");
}

TEST(IsaVerifier, BranchesAndAddressesMustBePrecise) {
  verifyRejects("x: beq r16, r1, x\nhalt\n", "branch operand");
  verifyRejects("lw r1, r16, 0\nhalt\n", "address register");
  verifyRejects("sw r1, r17, 0\nhalt\n", "address register");
}

TEST(IsaVerifier, PreciseStoreNeedsPreciseValue) {
  verifyRejects(".data 1\nsw r16, r0, 0\nhalt\n", "stored register");
}

TEST(IsaVerifier, EndorseShape) {
  verifyRejects("endorse r1, r2\nhalt\n", "endorse source");
  verifyRejects("endorse r17, r16\nhalt\n", "endorse destination");
}

// --- Machine semantics. ---

TEST(IsaMachine, ArithmeticAndControlFlowAtNone) {
  // Sum 1..10 with a loop; everything precise.
  IsaProgram P = assembleVerified(R"(
    li r1, 0      ; i
    li r2, 0      ; sum
    li r3, 10
    loop:
    addi r1, r1, 1
    add r2, r2, r1
    blt r1, r3, loop
    halt
  )");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  MachineResult Result = M.run();
  ASSERT_FALSE(Result.Trapped) << Result.TrapMessage;
  EXPECT_EQ(M.intReg(2), 55);
}

TEST(IsaMachine, SingleBinaryRunsPreciselyAtNone) {
  // The paper's portability claim: `.a` instructions on a processor with
  // no approximation support behave exactly like precise ones.
  IsaProgram P = assembleVerified(R"(
    .adata 4
    li r16, 21
    add.a r17, r16, r16
    endorse r1, r17
    lfi f16, 1.5
    fmul.a f17, f16, f16
    fendorse f1, f17
    halt
  )");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  MachineResult Result = M.run();
  ASSERT_FALSE(Result.Trapped);
  EXPECT_EQ(M.intReg(1), 42);
  EXPECT_DOUBLE_EQ(M.fpReg(1), 2.25);
  // And they were *counted* as approximate instructions.
  EXPECT_EQ(M.stats().Ops.ApproxInt, 1u);
  EXPECT_EQ(M.stats().Ops.ApproxFp, 1u);
  EXPECT_EQ(M.stats().Ops.TimingErrors, 0u);
}

TEST(IsaMachine, MemoryRoundTrip) {
  IsaProgram P = assembleVerified(R"(
    .data 2
    .adata 2
    li r1, 77
    sw r1, r0, 0       ; precise store
    lw r2, r0, 0       ; precise load
    li r16, 88
    sw.a r16, r0, 2    ; approximate store to approx region
    lw.a r17, r0, 2
    endorse r3, r17
    halt
  )");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  MachineResult Result = M.run();
  ASSERT_FALSE(Result.Trapped) << Result.TrapMessage;
  EXPECT_EQ(M.intReg(2), 77);
  EXPECT_EQ(M.intReg(3), 88);
}

TEST(IsaMachine, RegionHintMismatchTraps) {
  // Precise load touching the approximate region: dynamic discipline.
  IsaProgram P = assembleVerified(".data 1\n.adata 1\nlw r1, r0, 1\nhalt\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  MachineResult Result = M.run();
  EXPECT_TRUE(Result.Trapped);
  EXPECT_NE(Result.TrapMessage.find("precise access"), std::string::npos);

  // Approximate store touching the precise region.
  IsaProgram P2 =
      assembleVerified(".data 1\n.adata 1\nli r16, 1\nsw.a r16, r0, 0\nhalt\n");
  Machine M2(P2, FaultConfig::preset(ApproxLevel::None));
  EXPECT_TRUE(M2.run().Trapped);
}

TEST(IsaMachine, OutOfRangeAddressTraps) {
  IsaProgram P = assembleVerified(".data 1\nlw r1, r0, 5\nhalt\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  EXPECT_TRUE(M.run().Trapped);
}

TEST(IsaMachine, PreciseDivByZeroTrapsApproxDoesNot) {
  IsaProgram P = assembleVerified("li r1, 5\nli r2, 0\ndiv r3, r1, r2\nhalt\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  EXPECT_TRUE(M.run().Trapped);

  IsaProgram P2 = assembleVerified(
      "li r16, 5\nli r17, 0\ndiv.a r18, r16, r17\nendorse r1, r18\nhalt\n");
  Machine M2(P2, FaultConfig::preset(ApproxLevel::None));
  MachineResult Result = M2.run();
  ASSERT_FALSE(Result.Trapped) << Result.TrapMessage;
  EXPECT_EQ(M2.intReg(1), 0); // Section 5.2.
}

TEST(IsaMachine, RunawayLoopBounded) {
  IsaProgram P = assembleVerified("x: jmp x\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  MachineResult Result = M.run(/*MaxInstructions=*/1000);
  EXPECT_TRUE(Result.Trapped);
  EXPECT_EQ(Result.InstructionsExecuted, 1000u);
}

TEST(IsaMachine, ApproxInstructionsFaultAtAggressive) {
  // A long chain of approximate adds: at Aggressive (1e-2 timing
  // errors), some results must be corrupted; the precise twin stays
  // exact under the same machine.
  std::string Source = ".adata 1\nli r16, 0\nli r1, 0\n";
  for (int I = 0; I < 500; ++I) {
    Source += "addi.a r16, r16, 1\n";
    Source += "addi r1, r1, 1\n";
  }
  Source += "endorse r2, r16\nhalt\n";
  IsaProgram P = assembleVerified(Source);
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive);
  Config.EnableSram = false; // Isolate the timing model.
  Machine M(P, Config);
  MachineResult Result = M.run();
  ASSERT_FALSE(Result.Trapped);
  EXPECT_EQ(M.intReg(1), 500);   // The precise chain is exact...
  EXPECT_NE(M.intReg(2), 500);   // ...the approximate one is not.
  EXPECT_GT(M.stats().Ops.TimingErrors, 0u);
}

TEST(IsaMachine, ApproxRegistersFaultAtAggressive) {
  // Park a value in an approximate register and accumulate 2000 reads:
  // SRAM read upsets (transient, 1e-3/bit at Aggressive) corrupt ~6% of
  // the reads, so the precise sum of endorsed values almost surely
  // differs from the fault-free total.
  IsaProgram P = assembleVerified(R"(
    li r16, 12345
    li r1, 0
    li r2, 2000
    li r4, 0
    loop:
    endorse r3, r16
    add r4, r4, r3
    addi r1, r1, 1
    blt r1, r2, loop
    halt
  )");
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive);
  Config.EnableTiming = false;
  Machine M(P, Config);
  MachineResult Result = M.run();
  ASSERT_FALSE(Result.Trapped);
  EXPECT_NE(M.intReg(4), 12345 * 2000);
}

TEST(IsaMachine, ApproxMemoryDecays) {
  IsaProgram P = assembleVerified(R"(
    .adata 1
    li r16, 7
    sw.a r16, r0, 0
    li r1, 0
    li r2, 100000
    loop:                ; burn cycles so the cell ages
    addi r1, r1, 1
    blt r1, r2, loop
    lw.a r17, r0, 0
    endorse r3, r17
    halt
  )");
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive);
  Config.EnableSram = false;
  Config.EnableTiming = false;
  Config.CyclesPerSecond = 100.0; // ~2000 modeled seconds of aging.
  Machine M(P, Config);
  MachineResult Result = M.run(10'000'000);
  ASSERT_FALSE(Result.Trapped) << Result.TrapMessage;
  EXPECT_NE(M.intReg(3), 7); // The cell decayed before the reload.
}

TEST(IsaMachine, PreciseMemoryNeverDecays) {
  IsaProgram P = assembleVerified(R"(
    .data 1
    li r1, 7
    sw r1, r0, 0
    li r2, 0
    li r3, 100000
    loop:
    addi r2, r2, 1
    blt r2, r3, loop
    lw r4, r0, 0
    halt
  )");
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive);
  Config.CyclesPerSecond = 100.0;
  Machine M(P, Config);
  MachineResult Result = M.run(10'000'000);
  ASSERT_FALSE(Result.Trapped);
  EXPECT_EQ(M.intReg(4), 7);
}

TEST(IsaMachine, StatsFeedEnergyModel) {
  IsaProgram P = assembleVerified(R"(
    .adata 16
    li r1, 0
    li r2, 16
    lfi f16, 1.125
    loop:
    fmul.a f17, f16, f16
    fsw.a f17, r1, 0
    addi r1, r1, 1
    blt r1, r2, loop
    halt
  )");
  Machine M(P, FaultConfig::preset(ApproxLevel::Medium));
  MachineResult Result = M.run();
  ASSERT_FALSE(Result.Trapped);
  RunStats Stats = M.stats();
  EXPECT_EQ(Stats.Ops.ApproxFp, 16u);
  EXPECT_GT(Stats.Ops.PreciseInt, 16u); // addi + branch per iteration.
  EXPECT_GT(Stats.Storage.dramApproxFraction(), 0.0);
  EXPECT_GT(Stats.Storage.sramApproxFraction(), 0.4);
}

TEST(IsaMachine, DeterministicGivenSeed) {
  std::string Source = ".adata 4\nli r16, 1\n";
  for (int I = 0; I < 200; ++I)
    Source += "addi.a r16, r16, 3\n";
  Source += "endorse r1, r16\nhalt\n";
  IsaProgram P = assembleVerified(Source);
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive);
  Config.Seed = 777;
  Machine A(P, Config), B(P, Config);
  A.run();
  B.run();
  EXPECT_EQ(A.intReg(1), B.intReg(1));
}

TEST(IsaMachine, FpArithmeticCoverage) {
  IsaProgram P = assembleVerified(R"(
    lfi f1, 6.0
    lfi f2, 1.5
    fadd f3, f1, f2
    fsub f4, f1, f2
    fmul f5, f1, f2
    fdiv f6, f1, f2
    cvti r1, f6
    cvt f7, r1
    fmv f8, f7
    halt
  )");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(M.run().Trapped);
  EXPECT_DOUBLE_EQ(M.fpReg(3), 7.5);
  EXPECT_DOUBLE_EQ(M.fpReg(4), 4.5);
  EXPECT_DOUBLE_EQ(M.fpReg(5), 9.0);
  EXPECT_DOUBLE_EQ(M.fpReg(6), 4.0);
  EXPECT_EQ(M.intReg(1), 4);
  EXPECT_DOUBLE_EQ(M.fpReg(8), 4.0);
}

TEST(IsaMachine, PreciseFpDivByZeroIsIeee) {
  // Precise FP division by zero is not an error (IEEE/Java semantics).
  IsaProgram P =
      assembleVerified("lfi f1, 1.0\nlfi f2, 0.0\nfdiv f3, f1, f2\nhalt\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(M.run().Trapped);
  EXPECT_TRUE(std::isinf(M.fpReg(3)));
}

TEST(IsaMachine, ApproxFpDivByZeroIsNaN) {
  IsaProgram P = assembleVerified(
      "lfi f16, 1.0\nlfi f17, 0.0\nfdiv.a f18, f16, f17\nfendorse f1, "
      "f18\nhalt\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(M.run().Trapped);
  EXPECT_TRUE(std::isnan(M.fpReg(1)));
}

TEST(IsaMachine, MantissaNarrowingOnApproxFpOps) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive); // 8 bits.
  C.EnableSram = false;
  C.EnableTiming = false;
  IsaProgram P = assembleVerified(R"(
    lfi f16, 1.0009765625   ; needs more than 8 mantissa bits
    lfi f17, 1.0
    fmul.a f18, f16, f17
    fendorse f1, f18
    fmul f2, f1, f1         ; precise op on the endorsed value: no narrowing
    halt
  )");
  Machine M(P, C);
  ASSERT_FALSE(M.run().Trapped);
  EXPECT_DOUBLE_EQ(M.fpReg(1), 1.0); // Operand narrowed to 8 bits.
}

TEST(IsaMachine, NegativeRemainderMatchesCpp) {
  IsaProgram P = assembleVerified(
      "li r1, -7\nli r2, 3\nrem r3, r1, r2\nhalt\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(M.run().Trapped);
  EXPECT_EQ(M.intReg(3), -7 % 3);
}

TEST(IsaMachine, FallingOffTheEndHalts) {
  IsaProgram P = assembleVerified("li r1, 9\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  MachineResult Result = M.run();
  EXPECT_FALSE(Result.Trapped);
  EXPECT_EQ(M.intReg(1), 9);
}

TEST(IsaMachine, InstructionMixCountsMatch) {
  IsaProgram P = assembleVerified(R"(
    li r1, 1
    li r2, 2
    add r3, r1, r2     ; precise int
    add.a r16, r1, r2  ; approx int
    lfi f1, 1.0
    fadd f2, f1, f1    ; precise fp
    fadd.a f16, f1, f1 ; approx fp (precise sources are fine)
    halt
  )");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(M.run().Trapped);
  RunStats Stats = M.stats();
  EXPECT_EQ(Stats.Ops.PreciseInt, 1u);
  EXPECT_EQ(Stats.Ops.ApproxInt, 1u);
  EXPECT_EQ(Stats.Ops.PreciseFp, 1u);
  EXPECT_EQ(Stats.Ops.ApproxFp, 1u);
}

TEST(IsaVerifier, FpBranchOperandsMustBePrecise) {
  verifyRejects("x: fbeq f16, f1, x\nhalt\n", "branch operand");
  verifyRejects("x: fblt f1, f17, x\nhalt\n", "branch operand");
}

TEST(IsaMachine, FpBranches) {
  IsaProgram P = assembleVerified(R"(
    lfi f1, 1.5
    lfi f2, 2.5
    li r1, 0
    fblt f1, f2, lt_taken
    li r1, 100
    lt_taken:
    addi r1, r1, 1
    fbeq f1, f2, eq_taken
    addi r1, r1, 10
    eq_taken:
    fbne f1, f2, ne_taken
    addi r1, r1, 100
    ne_taken:
    fble f2, f1, le_taken
    addi r1, r1, 1000
    le_taken:
    halt
  )");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(M.run().Trapped);
  // fblt taken (skip +100), fbeq not taken (+10), fbne taken (skip
  // +100), fble not taken (+1000): 1 + 10 + 1000.
  EXPECT_EQ(M.intReg(1), 1011);
}

TEST(IsaMachine, FpBranchCountsAsPreciseFpOp) {
  IsaProgram P = assembleVerified(
      "lfi f1, 1.0\nlfi f2, 2.0\nx: fblt f2, f1, x\nhalt\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(M.run().Trapped);
  EXPECT_EQ(M.stats().Ops.PreciseFp, 1u);
}

TEST(IsaDisassembler, RoundTripsEveryOpcode) {
  const char *Source = R"(
    .data 3
    .adata 5
    li r1, -42
    lfi f1, 2.5
    mv r2, r1
    fmv f2, f1
    li r16, 1
    add.a r17, r16, r16
    endorse r3, r17
    lfi f16, 0.5
    fmul.a f17, f16, f16
    fendorse f3, f17
    sub r4, r1, r2
    mul r5, r1, r2
    div r6, r1, r2
    rem r7, r1, r2
    addi r8, r1, 7
    fadd f4, f1, f2
    fsub f5, f1, f2
    fmul f6, f1, f2
    fdiv f7, f1, f2
    cvt f8, r1
    cvti r9, f1
    sw r1, r0, 0
    lw r10, r0, 0
    sw.a r16, r0, 3
    lw.a r18, r0, 3
    fsw f1, r0, 1
    flw f9, r0, 1
    top:
    beq r1, r2, top
    bne r1, r2, top
    blt r1, r2, top
    ble r1, r2, top
    fbeq f1, f2, top
    fbne f1, f2, top
    fblt f1, f2, top
    fble f1, f2, top
    jmp done
    done:
    halt
  )";
  IsaProgram Original = assembleOk(Source);
  std::string Text = disassemble(Original);
  std::vector<std::string> Errors;
  std::optional<IsaProgram> Reassembled = assemble(Text, Errors);
  ASSERT_TRUE(Reassembled.has_value())
      << (Errors.empty() ? "" : Errors[0]) << "\n--- disassembly ---\n"
      << Text;
  ASSERT_EQ(Reassembled->Instructions.size(),
            Original.Instructions.size());
  EXPECT_EQ(Reassembled->PreciseWords, Original.PreciseWords);
  EXPECT_EQ(Reassembled->ApproxWords, Original.ApproxWords);
  for (size_t I = 0; I < Original.Instructions.size(); ++I) {
    const Instruction &A = Original.Instructions[I];
    const Instruction &B = Reassembled->Instructions[I];
    EXPECT_EQ(A.Op, B.Op) << "instruction " << I;
    EXPECT_EQ(A.Approx, B.Approx) << "instruction " << I;
    EXPECT_EQ(A.Rd, B.Rd) << "instruction " << I;
    EXPECT_EQ(A.Ra, B.Ra) << "instruction " << I;
    EXPECT_EQ(A.Rb, B.Rb) << "instruction " << I;
    EXPECT_EQ(A.Imm, B.Imm) << "instruction " << I;
    EXPECT_DOUBLE_EQ(A.FpImm, B.FpImm) << "instruction " << I;
  }
}

TEST(IsaDisassembler, MachineAgreesOnRoundTrippedBinary) {
  IsaProgram P = assembleVerified(R"(
    li r1, 0
    li r2, 12
    loop:
    addi r1, r1, 3
    blt r1, r2, loop
    halt
  )");
  std::vector<std::string> Errors;
  std::optional<IsaProgram> Q = assemble(disassemble(P), Errors);
  ASSERT_TRUE(Q.has_value());
  Machine A(P, FaultConfig::preset(ApproxLevel::None));
  Machine B(*Q, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(A.run().Trapped);
  ASSERT_FALSE(B.run().Trapped);
  EXPECT_EQ(A.intReg(1), B.intReg(1));
}

TEST(IsaVerifier, SetAndLogicOpsFollowTheFlowRules) {
  // Precise set ops reading approximate registers into precise
  // destinations are illegal; `.a` variants must target approximate
  // registers; precise-into-approx is fine.
  verifyRejects("slt r1, r16, r2\nhalt\n", "use endorse");
  verifyRejects("and r1, r2, r17\nhalt\n", "use endorse");
  verifyRejects("seq.a r1, r2, r3\nhalt\n", "approximate register");
  assembleVerified("slt r16, r1, r2\nsle.a r17, r16, r16\n"
                   "or.a r18, r16, r17\nendorse r1, r18\nhalt\n");
}

TEST(IsaMachine, SetAndLogicSemantics) {
  IsaProgram P = assembleVerified(R"(
    li r1, 3
    li r2, 5
    seq r3, r1, r1
    sne r4, r1, r2
    slt r5, r1, r2
    sle r6, r2, r1
    and r7, r3, r4
    or  r8, r6, r5
    halt
  )");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  ASSERT_FALSE(M.run().Trapped);
  EXPECT_EQ(M.intReg(3), 1);
  EXPECT_EQ(M.intReg(4), 1);
  EXPECT_EQ(M.intReg(5), 1);
  EXPECT_EQ(M.intReg(6), 0);
  EXPECT_EQ(M.intReg(7), 1);
  EXPECT_EQ(M.intReg(8), 1);
}

// --- Branch-target boundary: [0, size] is legal, past it is not. ---

TEST(IsaVerifier, BranchToOnePastEndIsLegal) {
  // A trailing label resolves to Instructions.size(): the architected
  // explicit form of the fall-off-the-end clean halt.
  assembleVerified(R"(
    li r1, 1
    beq r1, r1, end
    li r1, 2
    end:
  )");
}

TEST(IsaMachine, BranchToOnePastEndHaltsCleanly) {
  IsaProgram P = assembleVerified("li r1, 1\njmp end\nli r1, 2\nend:\n");
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  EXPECT_FALSE(M.run().Trapped);
  EXPECT_EQ(M.intReg(1), 1);
}

TEST(IsaVerifier, BranchTargetPastEndRejected) {
  IsaProgram P; // Built by hand: the assembler cannot express this.
  Instruction Jump;
  Jump.Op = Opcode::Jmp;
  Jump.Imm = 2; // Instructions.size() == 1, so 2 is past the halt slot.
  Jump.Line = 1;
  P.Instructions.push_back(Jump);
  std::vector<VerifyError> Errors = verify(P);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("branch target out of range"),
            std::string::npos);

  P.Instructions[0].Imm = -1; // Negative targets are equally illegal.
  Errors = verify(P);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].Message.find("branch target out of range"),
            std::string::npos);
}

TEST(IsaMachine, BranchTargetPastEndTraps) {
  // The machine enforces exactly what the verifier checks: a taken
  // transfer past Instructions.size() traps instead of wandering.
  IsaProgram P;
  Instruction Jump;
  Jump.Op = Opcode::Jmp;
  Jump.Imm = 3;
  Jump.Line = 1;
  P.Instructions.push_back(Jump);
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  MachineResult Result = M.run();
  ASSERT_TRUE(Result.Trapped);
  EXPECT_NE(Result.TrapMessage.find("branch target out of range"),
            std::string::npos);
}

TEST(IsaMachine, UntakenBranchPastEndDoesNotTrap) {
  IsaProgram P;
  Instruction Branch;
  Branch.Op = Opcode::Beq;
  Branch.Rd = 1;
  Branch.Ra = 0; // r1 != r0 once r1 holds 1, so never taken.
  Branch.Imm = 99;
  Branch.Line = 1;
  Instruction Load;
  Load.Op = Opcode::Li;
  Load.Rd = 1;
  Load.Imm = 1;
  Load.Line = 2;
  P.Instructions.push_back(Load);
  P.Instructions.push_back(Branch);
  // The verifier still rejects it statically...
  EXPECT_FALSE(verify(P).empty());
  // ...but dynamically the untaken branch is harmless.
  Machine M(P, FaultConfig::preset(ApproxLevel::None));
  EXPECT_FALSE(M.run().Trapped);
}
