//===- tests/approx_test.cpp - Approx<T>/Precise<T>/endorse tests ---------===//

#include "core/enerj.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace enerj;

TEST(Approx, ExactWithoutSimulator) {
  // "One valid execution is to ignore all annotations" (Section 4).
  Approx<int32_t> A = 20;
  Approx<int32_t> B = 22;
  EXPECT_EQ(endorse(A + B), 42);
  Approx<double> X = 1.5, Y = 2.5;
  EXPECT_EQ(endorse(X * Y), 3.75);
}

TEST(Approx, PreciseToApproxFlowIsImplicit) {
  int P = 7;
  Approx<int32_t> A = P; // Subtyping: precise int <: approx int.
  EXPECT_EQ(A.peek(), 7);
  A = 9;
  EXPECT_EQ(A.peek(), 9);
}

TEST(Approx, MixedOperandsPromoteToApprox) {
  Approx<int32_t> A = 5;
  Approx<int32_t> Sum = A + 3;   // approx + precise literal.
  Approx<int32_t> Sum2 = 3 + A;  // precise literal + approx.
  EXPECT_EQ(endorse(Sum), 8);
  EXPECT_EQ(endorse(Sum2), 8);
}

TEST(Approx, PreciseWrapperInterop) {
  Precise<int32_t> P = 4;
  Approx<int32_t> A = 10;
  // Precise<T> converts to Approx<T> (precise-to-approx subtyping).
  Approx<int32_t> Sum = A + P;
  EXPECT_EQ(endorse(Sum), 14);
}

TEST(Approx, ArithmeticOperators) {
  Approx<int32_t> A = 12, B = 5;
  EXPECT_EQ(endorse(A - B), 7);
  EXPECT_EQ(endorse(A * B), 60);
  EXPECT_EQ(endorse(A / B), 2);
  EXPECT_EQ(endorse(A % B), 2);
  EXPECT_EQ(endorse(-A), -12);
  A += B;
  EXPECT_EQ(endorse(A), 17);
  A -= Approx<int32_t>(2);
  EXPECT_EQ(endorse(A), 15);
  A *= Approx<int32_t>(2);
  EXPECT_EQ(endorse(A), 30);
  A /= Approx<int32_t>(3);
  EXPECT_EQ(endorse(A), 10);
  ++A;
  EXPECT_EQ(endorse(A), 11);
  --A;
  EXPECT_EQ(endorse(A), 10);
}

TEST(Approx, DivisionNeverTraps) {
  // Section 5.2: approximate int division by zero returns zero;
  // approximate FP division by zero returns NaN.
  Approx<int32_t> A = 5, Zero = 0;
  EXPECT_EQ(endorse(A / Zero), 0);
  EXPECT_EQ(endorse(A % Zero), 0);
  Approx<double> X = 5.0, FZero = 0.0;
  EXPECT_TRUE(std::isnan(endorse(X / FZero)));
}

TEST(Approx, ComparisonsYieldApproxBool) {
  Approx<int32_t> A = 5, B = 5;
  ApproxBool Eq = (A == B);
  EXPECT_TRUE(endorse(Eq));
  EXPECT_FALSE(endorse(A != B));
  EXPECT_TRUE(endorse(A <= B));
  EXPECT_FALSE(endorse(A < B));
  EXPECT_TRUE(endorse(A >= B));
  EXPECT_FALSE(endorse(A > B));
}

TEST(Approx, ApproxBoolConnectives) {
  ApproxBool T = true, F = false;
  EXPECT_TRUE(endorse(T | F));
  EXPECT_FALSE(endorse(T & F));
  EXPECT_TRUE(endorse(!F));
}

TEST(Approx, ConvertBetweenWidths) {
  Approx<float> F = 2.5f;
  Approx<double> D = F.convert<double>();
  EXPECT_EQ(endorse(D), 2.5);
  Approx<int32_t> I = D.convert<int32_t>();
  EXPECT_EQ(endorse(I), 2);
}

TEST(Approx, CountsOpsOnSimulator) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  {
    SimulatorScope Scope(Sim);
    Approx<int32_t> A = 1, B = 2;
    Approx<int32_t> C = A + B;
    Approx<double> X = 1.0, Y = 2.0;
    Approx<double> Z = X * Y;
    (void)C;
    (void)Z;
    Precise<int32_t> P = 1, Q = 2;
    Precise<int32_t> R = P + Q;
    (void)R;
  }
  RunStats Stats = Sim.stats();
  EXPECT_EQ(Stats.Ops.ApproxInt, 1u);
  EXPECT_EQ(Stats.Ops.ApproxFp, 1u);
  EXPECT_EQ(Stats.Ops.PreciseInt, 1u);
}

TEST(Approx, FpComparisonCountsAsFpOp) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  {
    SimulatorScope Scope(Sim);
    Approx<double> X = 1.0, Y = 2.0;
    (void)(X < Y);
  }
  EXPECT_EQ(Sim.stats().Ops.ApproxFp, 1u);
  EXPECT_EQ(Sim.stats().Ops.ApproxInt, 0u);
}

TEST(Approx, StorageLeasedAsApproxSram) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  {
    SimulatorScope Scope(Sim);
    Approx<double> X = 1.0;
    Sim.ledger().tick(10);
    (void)X;
    RunStats Mid = Sim.stats();
    EXPECT_DOUBLE_EQ(Mid.Storage.SramApprox, 80.0); // 8 bytes x 10 cycles.
  }
}

TEST(Approx, PreciseStorageLeasedAsPreciseSram) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  {
    SimulatorScope Scope(Sim);
    Precise<int32_t> P = 3;
    Sim.ledger().tick(5);
    (void)P;
    EXPECT_DOUBLE_EQ(Sim.stats().Storage.SramPrecise, 20.0);
  }
}

TEST(Approx, MantissaNarrowingVisibleAtAggressive) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.EnableTiming = false; // Isolate the width reduction.
  C.EnableSram = false;
  Simulator Sim(C);
  SimulatorScope Scope(Sim);
  Approx<double> X = 1.0 + 1e-6; // Needs more than 8 mantissa bits.
  Approx<double> One = 1.0;
  double Product = endorse(X * One);
  EXPECT_NE(Product, 1.0 + 1e-6);
  EXPECT_NEAR(Product, 1.0, 0.01);
}

TEST(Approx, TimingErrorsPerturbResults) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.EnableSram = false;
  C.EnableFpWidth = false;
  Simulator Sim(C);
  SimulatorScope Scope(Sim);
  int Wrong = 0;
  for (int32_t I = 0; I < 20000; ++I) {
    Approx<int32_t> A = I, B = 1;
    if (endorse(A + B) != I + 1)
      ++Wrong;
  }
  EXPECT_GT(Wrong, 50);   // ~1% of 20k ops.
  EXPECT_LT(Wrong, 2000);
}

TEST(Approx, EndorseOnPlainValuesIsIdentity) {
  EXPECT_EQ(endorse(5), 5);
  EXPECT_EQ(endorse(2.5), 2.5);
  Precise<int32_t> P = 9;
  EXPECT_EQ(endorse(P), 9);
}

TEST(Approx, EnergyPipelineEndToEnd) {
  // Run a small annotated kernel and price it: savings must appear at
  // Medium and be absent at None.
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium);
  Simulator Sim(C);
  {
    SimulatorScope Scope(Sim);
    Approx<double> Acc = 0.0;
    for (Precise<int32_t> I = 0; I < 1000; ++I)
      Acc += Approx<double>(0.5);
    (void)Acc;
  }
  RunStats Stats = Sim.stats();
  EXPECT_GT(Stats.Ops.ApproxFp, 900u);
  EnergyReport Medium = computeEnergy(Stats, C);
  EnergyReport None =
      computeEnergy(Stats, FaultConfig::preset(ApproxLevel::None));
  EXPECT_GT(Medium.saved(), 0.05);
  EXPECT_DOUBLE_EQ(None.saved(), 0.0);
}

TEST(Approx, Top) {
  Approx<int32_t> A = 3;
  Top<int32_t> FromApprox(A);
  Top<int32_t> FromPrecise(4);
  EXPECT_TRUE(FromApprox.isApprox());
  EXPECT_FALSE(FromPrecise.isApprox());
  EXPECT_EQ(FromPrecise.asPrecise(), 4);
  EXPECT_EQ(endorse(FromApprox.asApprox()), 3);
  Precise<int32_t> P = 5;
  Top<int32_t> FromWrapper(P);
  EXPECT_EQ(FromWrapper.asPrecise(), 5);
}

TEST(Approx, MathIntrinsics) {
  Approx<double> X = 4.0;
  EXPECT_DOUBLE_EQ(endorse(enerj::sqrt(X)), 2.0);
  EXPECT_NEAR(endorse(enerj::sin(Approx<double>(0.0))), 0.0, 1e-12);
  EXPECT_NEAR(endorse(enerj::cos(Approx<double>(0.0))), 1.0, 1e-12);
  EXPECT_NEAR(endorse(enerj::exp(Approx<double>(1.0))), 2.718281828, 1e-6);
  EXPECT_NEAR(endorse(enerj::log(Approx<double>(1.0))), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(endorse(enerj::abs(Approx<double>(-3.0))), 3.0);
  EXPECT_DOUBLE_EQ(endorse(enerj::floor(Approx<double>(2.7))), 2.0);
  EXPECT_DOUBLE_EQ(
      endorse(enerj::min(Approx<double>(1.0), Approx<double>(2.0))), 1.0);
  EXPECT_DOUBLE_EQ(
      endorse(enerj::max(Approx<double>(1.0), Approx<double>(2.0))), 2.0);
}

TEST(Approx, MathIntrinsicsCountAsFpOps) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  {
    SimulatorScope Scope(Sim);
    Approx<double> X = 2.0;
    (void)enerj::sqrt(X);
    (void)enerj::sin(X);
  }
  EXPECT_EQ(Sim.stats().Ops.ApproxFp, 2u);
}

TEST(Approx, ValuesFromAnotherSimulatorBehavePrecisely) {
  // A slot leased under simulator A neither faults nor double-releases
  // when touched under simulator B (or none): cross-simulator use
  // degrades to precise behavior instead of corrupting state.
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  Simulator A(C), B(C);
  Approx<int32_t> Slot = 0;
  {
    SimulatorScope ScopeA(A);
    Slot = 42; // Leases from A on first simulated store.
  }
  {
    SimulatorScope ScopeB(B);
    for (int I = 0; I < 1000; ++I)
      EXPECT_EQ(Slot.peek(), 42); // No faults from B's models.
  }
  EXPECT_EQ(endorse(Slot), 42); // And none outside any scope.
}

TEST(Approx, NestedScopesAttributeWorkCorrectly) {
  Simulator Outer(FaultConfig::preset(ApproxLevel::None));
  Simulator Inner(FaultConfig::preset(ApproxLevel::None));
  SimulatorScope OuterScope(Outer);
  Approx<int32_t> X = 1;
  (void)(X + X); // Outer: 1 approx int op.
  {
    SimulatorScope InnerScope(Inner);
    Approx<int32_t> Y = 2;
    (void)(Y + Y); // Inner: 1 approx int op.
  }
  (void)(X + X); // Outer again.
  EXPECT_EQ(Outer.stats().Ops.ApproxInt, 2u);
  EXPECT_EQ(Inner.stats().Ops.ApproxInt, 1u);
}

TEST(Approx, ConvertCountsOneOp) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  SimulatorScope Scope(Sim);
  Approx<float> F = 1.5f;
  (void)F.convert<double>(); // FP-typed conversion: one FP op.
  EXPECT_EQ(Sim.stats().Ops.ApproxFp, 1u);
  Approx<int32_t> I = 3;
  (void)I.convert<int64_t>(); // Integer conversion: one int op.
  EXPECT_EQ(Sim.stats().Ops.ApproxInt, 1u);
}

TEST(Approx, BoolOpsCountAsIntOps) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  SimulatorScope Scope(Sim);
  ApproxBool A = true, B = false;
  (void)(A & B);
  (void)(A | B);
  (void)!A;
  EXPECT_EQ(Sim.stats().Ops.ApproxInt, 3u);
  EXPECT_EQ(Sim.stats().Ops.ApproxFp, 0u);
}
