//===- tests/journal_replay_test.cpp - Replay faithfulness matrix ---------===//
//
// The flight recorder's acceptance matrix: every journal captured over
// the full evaluation grid — all nine apps at {none, medium, aggressive}
// on BOTH engines — replays to a bitwise-identical digest (QoS double,
// energy factors, outcome, final level, op/storage mix, power counters),
// and journals survive the render -> parse round trip before replay, so
// what is verified is the on-disk artifact, not the in-memory object.
//
// The special-outcome trials ride the same contract: an sloViolated, a
// degraded, and a powerFailed trial each capture and replay faithfully.
//
//===----------------------------------------------------------------------===//

#include "harness/eval.h"
#include "obs/journal.h"

#include <gtest/gtest.h>

#ifndef ENERJ_FEJ_DIR
#error "ENERJ_FEJ_DIR must point at the examples/fej corpus"
#endif

using namespace enerj;
using namespace enerj::obs;

namespace {

std::string kernelDir() { return std::string(ENERJ_FEJ_DIR) + "/isa"; }

/// Captures every trial of \p Options (stride-1 sampling), round-trips
/// each journal through its JSON rendering, replays it, and expects a
/// bitwise digest match.
void expectFaithfulReplay(harness::EvalOptions Options,
                          size_t ExpectedJournals) {
  Options.Journal = true;
  Options.JournalOkSampleEvery = 1;
  if (Options.Exec == harness::ExecMode::Compiled)
    Options.KernelDir = kernelDir();
  harness::EvalResult Grid = harness::runEval(Options);
  ASSERT_EQ(Grid.Journaled.size(), ExpectedJournals);
  for (const harness::TrialRecord &Record : Grid.Journaled) {
    Journal Built = buildJournal(Grid, Record);
    SCOPED_TRACE(journalFileName(Built));
    std::string Text = renderJournalJson(Built);
    Journal J;
    std::string Error;
    ASSERT_TRUE(parseJournalJson(Text, &J, &Error)) << Error;
    ReplayResult R = replayJournal(J, kernelDir());
    EXPECT_TRUE(R.Match) << "recorded " << R.RecordedJson << "\nreplayed "
                         << R.ReplayedJson;
  }
}

} // namespace

TEST(JournalReplay, FullInterpGridReplaysBitwise) {
  // 9 apps x {none, medium, aggressive} x 1 seed on the interpreter.
  harness::EvalOptions Options;
  Options.Seeds = 1;
  expectFaithfulReplay(Options,
                       apps::allApplications().size() *
                           harness::evalLevels().size());
}

TEST(JournalReplay, FullCompiledGridReplaysBitwise) {
  // The same grid on the compiled engine: replay reconstructs a local
  // program cache from the journal's provenance alone.
  harness::EvalOptions Options;
  Options.Seeds = 1;
  Options.Exec = harness::ExecMode::Compiled;
  Options.EchoExecMode = true;
  expectFaithfulReplay(Options,
                       apps::allApplications().size() *
                           harness::evalLevels().size());
}

TEST(JournalReplay, SloViolatedTrialsReplayBitwise) {
  // A tight SLO with no degradation rung leaves the violation in place:
  // the journal records attempts, retries, and the final sloViolated
  // verdict, and replay must walk the same ladder.
  harness::EvalOptions Options;
  Options.Apps = {apps::findApplication("sor")};
  Options.Levels = {ApproxLevel::Aggressive};
  Options.Seeds = 2;
  Options.Policy.Enabled = true;
  Options.Policy.Slo = 0.05;
  Options.Policy.MaxRetries = 1;
  Options.Policy.Degrade = false;
  expectFaithfulReplay(Options, 2);

  Options.Journal = true;
  Options.JournalOkSampleEvery = 1;
  harness::EvalResult Grid = harness::runEval(Options);
  ASSERT_FALSE(Grid.Journaled.empty());
  EXPECT_EQ(Grid.Journaled[0].Result.Outcome,
            resilience::TrialOutcome::SloViolated);
}

TEST(JournalReplay, DegradedTrialsReplayBitwise) {
  // With the ladder armed, the same trials degrade instead; the journal
  // records the final (lower) level and replay lands on it bitwise.
  harness::EvalOptions Options;
  Options.Apps = {apps::findApplication("sor")};
  Options.Levels = {ApproxLevel::Aggressive};
  Options.Seeds = 2;
  Options.Policy.Enabled = true;
  Options.Policy.Slo = 0.05;
  Options.Policy.MaxRetries = 0;
  expectFaithfulReplay(Options, 2);

  Options.Journal = true;
  Options.JournalOkSampleEvery = 1;
  harness::EvalResult Grid = harness::runEval(Options);
  ASSERT_FALSE(Grid.Journaled.empty());
  EXPECT_EQ(Grid.Journaled[0].Result.Outcome,
            resilience::TrialOutcome::Degraded);
}

TEST(JournalReplay, PowerFailedTrialsReplayBitwise) {
  // A starving supply with no checkpoints kills every trial; the journal
  // carries the power environment (trace spec, checkpoint policy) and
  // replay re-meters the same brownout schedule.
  harness::EvalOptions Options;
  Options.Apps = {apps::findApplication("sor")};
  Options.Levels = {ApproxLevel::Aggressive};
  Options.Seeds = 2;
  Options.PowerArmed = true;
  Options.Power.Trace = *env::PowerTraceSpec::preset("steady:0.5", nullptr);
  expectFaithfulReplay(Options, 2);

  Options.Journal = true;
  Options.JournalOkSampleEvery = 1;
  harness::EvalResult Grid = harness::runEval(Options);
  ASSERT_FALSE(Grid.Journaled.empty());
  EXPECT_EQ(Grid.Journaled[0].Result.Outcome,
            resilience::TrialOutcome::PowerFailed);
}

TEST(JournalReplay, CheckpointedPowerTrialsReplayBitwise) {
  // Checkpoint/restore accounting (losses, checkpoints, re-executed
  // ops) is part of the digest; a harvest supply with periodic
  // checkpoints must replay its exact recovery history, on both engines.
  for (harness::ExecMode Exec :
       {harness::ExecMode::Interp, harness::ExecMode::Compiled}) {
    SCOPED_TRACE(Exec == harness::ExecMode::Interp ? "interp" : "compiled");
    harness::EvalOptions Options;
    Options.Apps = {apps::findApplication("fft")};
    Options.Levels = {ApproxLevel::Medium};
    Options.Seeds = 2;
    Options.Exec = Exec;
    Options.PowerArmed = true;
    Options.Power.Trace = *env::PowerTraceSpec::preset("harvest", nullptr);
    Options.Power.Checkpoint =
        *env::CheckpointPolicy::parse("periodic:2000", nullptr);
    expectFaithfulReplay(Options, 2);
  }
}
