//===- tests/array_test.cpp - ApproxArray/PreciseArray tests --------------===//

#include "core/array.h"
#include "core/endorse.h"

#include <gtest/gtest.h>

using namespace enerj;

TEST(ApproxArray, BasicReadWriteWithoutSimulator) {
  ApproxArray<double> A(10);
  EXPECT_EQ(A.size(), 10u);
  A[3] = Approx<double>(2.5);
  EXPECT_EQ(endorse(Approx<double>(A[3])), 2.5);
  Approx<double> V = A.get(3);
  EXPECT_EQ(endorse(V), 2.5);
}

TEST(ApproxArray, FillValue) {
  ApproxArray<int32_t> A(5, 7);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(endorse(A.get(I)), 7);
}

TEST(ApproxArray, LengthIsAlwaysPrecise) {
  // size() returns a plain size_t: usable in conditions and as bounds,
  // per Section 2.6's "length is kept precise for memory safety".
  Simulator Sim(FaultConfig::preset(ApproxLevel::Aggressive));
  SimulatorScope Scope(Sim);
  ApproxArray<double> A(128);
  for (int Round = 0; Round < 100; ++Round)
    EXPECT_EQ(A.size(), 128u);
}

TEST(ApproxArray, CompoundAssignment) {
  ApproxArray<double> A(4, 1.0);
  A[0] += Approx<double>(2.0);
  A[1] -= Approx<double>(0.5);
  A[2] *= Approx<double>(3.0);
  A[3] /= Approx<double>(2.0);
  EXPECT_EQ(endorse(A.get(0)), 3.0);
  EXPECT_EQ(endorse(A.get(1)), 0.5);
  EXPECT_EQ(endorse(A.get(2)), 3.0);
  EXPECT_EQ(endorse(A.get(3)), 0.5);
}

TEST(ApproxArray, LeasesDramWithPreciseHeaderLine) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  {
    SimulatorScope Scope(Sim);
    ApproxArray<double> A(1000); // 16B header + 8000B data.
    Sim.ledger().tick(10);
    RunStats Stats = Sim.stats();
    // First 64-byte line precise, rest approximate.
    EXPECT_DOUBLE_EQ(Stats.Storage.DramPrecise, 64.0 * 10);
    EXPECT_DOUBLE_EQ(Stats.Storage.DramApprox, (8016.0 - 64.0) * 10);
    (void)A;
  }
}

TEST(ApproxArray, ElementAccessTicksClock) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  SimulatorScope Scope(Sim);
  ApproxArray<int32_t> A(8);
  uint64_t Before = Sim.now();
  (void)A.get(0);
  A.set(1, Approx<int32_t>(5));
  EXPECT_GT(Sim.now(), Before);
}

TEST(ApproxArray, DecayAfterLongIdle) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.EnableSram = false;
  C.EnableTiming = false;
  C.CyclesPerSecond = 1e3;
  Simulator Sim(C);
  SimulatorScope Scope(Sim);
  ApproxArray<int32_t> A(256, 0);
  Sim.ledger().tick(1000000); // 1000 modeled seconds idle.
  int Flipped = 0;
  for (size_t I = 0; I < A.size(); ++I)
    Flipped += (endorse(A.get(I)) != 0);
  // 1000 s at 1e-3 per-bit/s: virtually every 32-bit word decays.
  EXPECT_GT(Flipped, 200);
}

TEST(ApproxArray, AccessRefreshes) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.EnableSram = false;
  C.EnableTiming = false;
  C.CyclesPerSecond = 1e3;
  Simulator Sim(C);
  SimulatorScope Scope(Sim);
  ApproxArray<int32_t> A(16, 3);
  Sim.ledger().tick(1000000);
  (void)A.get(0);       // Refresh (and possibly decay) element 0 ...
  int32_t Now = endorse(A.get(0)); // ... then re-read immediately:
  EXPECT_EQ(endorse(A.get(0)), Now); // no time passed, no further decay.
}

TEST(ApproxArray, NoDecayAtNone) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::None);
  C.CyclesPerSecond = 1.0; // Even with huge elapsed "time".
  Simulator Sim(C);
  SimulatorScope Scope(Sim);
  ApproxArray<int32_t> A(64, 42);
  Sim.ledger().tick(1000000);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(endorse(A.get(I)), 42);
}

TEST(ApproxArray, MoveTransfersLease) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  SimulatorScope Scope(Sim);
  ApproxArray<double> A(100);
  size_t LiveBefore = Sim.ledger().liveLeases();
  ApproxArray<double> B = std::move(A);
  EXPECT_EQ(Sim.ledger().liveLeases(), LiveBefore); // No double lease.
  EXPECT_EQ(B.size(), 100u);
}

TEST(PreciseArray, BasicUse) {
  PreciseArray<int32_t> A(10, 1);
  A[5] = 99;
  EXPECT_EQ(A[5], 99);
  EXPECT_EQ(A[0], 1);
  EXPECT_EQ(A.size(), 10u);
}

TEST(PreciseArray, LeasesPreciseDram) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::None));
  {
    SimulatorScope Scope(Sim);
    PreciseArray<double> A(100);
    Sim.ledger().tick(10);
    RunStats Stats = Sim.stats();
    EXPECT_DOUBLE_EQ(Stats.Storage.DramApprox, 0.0);
    EXPECT_GT(Stats.Storage.DramPrecise, 0.0);
    (void)A;
  }
}

TEST(PreciseArray, NeverFaults) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Aggressive));
  SimulatorScope Scope(Sim);
  PreciseArray<int32_t> A(1024, 7);
  Sim.ledger().tick(100000000);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I], 7);
}

TEST(ApproxArray, PeekBypassesFaults) {
  Simulator Sim(FaultConfig::preset(ApproxLevel::Aggressive));
  SimulatorScope Scope(Sim);
  ApproxArray<int32_t> A(4, 9);
  uint64_t OpsBefore = Sim.stats().Ops.total();
  const std::vector<int32_t> &Raw = A.peek();
  EXPECT_EQ(Raw.size(), 4u);
  EXPECT_EQ(Sim.stats().Ops.total(), OpsBefore); // peek() records nothing.
}

TEST(ApproxArray, FinerLinesRecoverApproximateBytes) {
  // Section 4.1: finer approximate-storage granularity strands fewer
  // approximate bytes on the precise header line.
  auto FractionAt = [](uint64_t LineBytes) {
    FaultConfig C = FaultConfig::preset(ApproxLevel::Medium);
    C.CacheLineBytes = LineBytes;
    Simulator Sim(C);
    SimulatorScope Scope(Sim);
    ApproxArray<double> A(64);
    Sim.ledger().tick(10);
    (void)A;
    return Sim.stats().Storage.dramApproxFraction();
  };
  double Fine = FractionAt(16);
  double Default = FractionAt(64);
  double Coarse = FractionAt(256);
  EXPECT_GT(Fine, Default);
  EXPECT_GT(Default, Coarse);
}
