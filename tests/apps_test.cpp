//===- tests/apps_test.cpp - Evaluation-application integration tests -----===//
//
// End-to-end tests over the nine Section 6 applications: determinism,
// the no-simulator == precise-reference identity, the paper's
// "never fail catastrophically" property under aggressive approximation,
// sane statistics, and the Figure 3 / Figure 5 shapes as regressions.
//
//===----------------------------------------------------------------------===//

#include "apps/app.h"

#include "energy/model.h"
#include "support/bits.h"

#include <gtest/gtest.h>

#include <set>

using namespace enerj;
using namespace enerj::apps;

namespace {

class PerApp : public ::testing::TestWithParam<const Application *> {};

std::string appName(const ::testing::TestParamInfo<const Application *> &I) {
  return I.param->name();
}

/// Bitwise vector equality: degraded outputs legitimately contain NaNs,
/// and NaN != NaN under operator==.
bool bitIdentical(const std::vector<double> &A,
                  const std::vector<double> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (toBits(A[I]) != toBits(B[I]))
      return false;
  return true;
}

} // namespace

TEST(AppRegistry, HasAllNineApplications) {
  const auto &Apps = allApplications();
  ASSERT_EQ(Apps.size(), 9u);
  std::set<std::string> Names;
  for (const Application *App : Apps)
    Names.insert(App->name());
  EXPECT_EQ(Names.size(), 9u);
  for (const char *Expected :
       {"fft", "sor", "montecarlo", "sparsematmult", "lu", "barcode",
        "trikernel", "floodfill", "raytracer"})
    EXPECT_TRUE(Names.count(Expected)) << Expected;
}

TEST(AppRegistry, FindApplication) {
  EXPECT_NE(findApplication("fft"), nullptr);
  EXPECT_STREQ(findApplication("raytracer")->name(), "raytracer");
  EXPECT_EQ(findApplication("nope"), nullptr);
}

TEST_P(PerApp, PreciseRunIsDeterministic) {
  const Application &App = *GetParam();
  AppOutput A = runPrecise(App, 1);
  AppOutput B = runPrecise(App, 1);
  EXPECT_EQ(A.Numeric, B.Numeric);
  EXPECT_EQ(A.Text, B.Text);
  EXPECT_EQ(A.Decisions, B.Decisions);
  EXPECT_DOUBLE_EQ(App.qosError(A, B), 0.0);
}

TEST_P(PerApp, WorkloadsVaryWithSeed) {
  const Application &App = *GetParam();
  AppOutput A = runPrecise(App, 1);
  AppOutput B = runPrecise(App, 2);
  bool Different = A.Numeric != B.Numeric || A.Text != B.Text ||
                   A.Decisions != B.Decisions;
  EXPECT_TRUE(Different) << "workload ignores its seed";
}

TEST_P(PerApp, NoneLevelMatchesPreciseReference) {
  // At level None, the hardware executes approximate instructions
  // precisely: output must be bit-identical to the plain run.
  const Application &App = *GetParam();
  AppOutput Reference = runPrecise(App, 3);
  AppRun Run = runApproximate(App, FaultConfig::preset(ApproxLevel::None), 3);
  EXPECT_DOUBLE_EQ(App.qosError(Reference, Run.Output), 0.0);
  EXPECT_EQ(Reference.Numeric, Run.Output.Numeric);
  EXPECT_EQ(Reference.Text, Run.Output.Text);
}

TEST_P(PerApp, NeverFailsCatastrophically) {
  // The paper's annotation policy: every run produces an output, at
  // every level (Section 6, "each benchmark produces an output on every
  // run").
  const Application &App = *GetParam();
  for (ApproxLevel Level : {ApproxLevel::Mild, ApproxLevel::Medium,
                            ApproxLevel::Aggressive}) {
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      AppRun Run = runApproximate(App, FaultConfig::preset(Level), Seed);
      bool HasOutput = !Run.Output.Numeric.empty() ||
                       !Run.Output.Text.empty() ||
                       !Run.Output.Decisions.empty();
      EXPECT_TRUE(HasOutput)
          << App.name() << " at " << approxLevelName(Level);
    }
  }
}

TEST_P(PerApp, QosErrorAlwaysInUnitInterval) {
  const Application &App = *GetParam();
  AppOutput Reference = runPrecise(App, 1);
  for (ApproxLevel Level : {ApproxLevel::Mild, ApproxLevel::Aggressive}) {
    AppRun Run = runApproximate(App, FaultConfig::preset(Level), 1);
    double Error = App.qosError(Reference, Run.Output);
    EXPECT_GE(Error, 0.0);
    EXPECT_LE(Error, 1.0);
  }
}

TEST_P(PerApp, MildErrorIsSmall) {
  // Figure 5: "most applications show negligible error for the Mild
  // level of approximation".
  const Application &App = *GetParam();
  double Sum = 0;
  const int Runs = 5;
  for (uint64_t Seed = 1; Seed <= Runs; ++Seed)
    Sum += qosUnder(App, FaultConfig::preset(ApproxLevel::Mild), Seed);
  EXPECT_LT(Sum / Runs, 0.15) << App.name();
}

TEST_P(PerApp, StatisticsArePopulated) {
  const Application &App = *GetParam();
  AppRun Run = runApproximate(App, FaultConfig::preset(ApproxLevel::Medium), 1);
  const RunStats &Stats = Run.Stats;
  EXPECT_GT(Stats.Ops.total(), 100u) << "suspiciously few dynamic ops";
  EXPECT_GT(Stats.Ops.ApproxInt + Stats.Ops.ApproxFp, 0u)
      << "no approximate work at all";
  EXPECT_GT(Stats.Storage.sramTotal() + Stats.Storage.dramTotal(), 0.0);
}

TEST_P(PerApp, ApproximateRunsAreReproducible) {
  const Application &App = *GetParam();
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Aggressive);
  AppRun A = runApproximate(App, Config, 5);
  AppRun B = runApproximate(App, Config, 5);
  EXPECT_TRUE(bitIdentical(A.Output.Numeric, B.Output.Numeric));
  EXPECT_EQ(A.Output.Text, B.Output.Text);
  EXPECT_EQ(A.Output.Decisions, B.Output.Decisions);
  EXPECT_EQ(A.Stats.Ops.total(), B.Stats.Ops.total());
}

TEST_P(PerApp, EnergySavingsInPaperBand) {
  // Figure 4: savings between roughly 9% and 48% across apps/levels.
  const Application &App = *GetParam();
  for (ApproxLevel Level : {ApproxLevel::Mild, ApproxLevel::Medium,
                            ApproxLevel::Aggressive}) {
    FaultConfig Config = FaultConfig::preset(Level);
    AppRun Run = runApproximate(App, Config, 1);
    double Saved = computeEnergy(Run.Stats, Config).saved();
    EXPECT_GT(Saved, 0.05) << App.name() << " at " << approxLevelName(Level);
    EXPECT_LT(Saved, 0.55) << App.name() << " at " << approxLevelName(Level);
  }
}

TEST_P(PerApp, AnnotationStatsSane) {
  AnnotationStats Ann = GetParam()->annotations();
  EXPECT_GT(Ann.LinesOfCode, 0);
  EXPECT_GT(Ann.TotalDecls, 0);
  EXPECT_GE(Ann.AnnotatedDecls, 0);
  EXPECT_LE(Ann.AnnotatedDecls, Ann.TotalDecls);
  EXPECT_GE(Ann.Endorsements, 0);
  // The paper: at most ~34% of declarations annotated for most apps;
  // allow the FP-saturated ones more headroom.
  EXPECT_LE(Ann.annotatedFraction(), 0.70);
}

INSTANTIATE_TEST_SUITE_P(Apps, PerApp,
                         ::testing::ValuesIn(allApplications()), appName);

// --- Figure 3 shape regressions. ---

TEST(AppShapes, StackResidentAppsHaveNoApproxDram) {
  // MonteCarlo and the jMonkeyEngine stand-in keep their principal data
  // in local variables; their approximate-DRAM fraction is ~zero.
  for (const char *Name : {"montecarlo", "trikernel"}) {
    AppRun Run = runApproximate(*findApplication(Name),
                                FaultConfig::preset(ApproxLevel::Medium), 1);
    EXPECT_LT(Run.Stats.Storage.dramApproxFraction(), 0.05) << Name;
  }
}

TEST(AppShapes, ArrayHeavyAppsHaveHighApproxDram) {
  for (const char *Name : {"fft", "sor", "lu", "barcode", "floodfill"}) {
    AppRun Run = runApproximate(*findApplication(Name),
                                FaultConfig::preset(ApproxLevel::Medium), 1);
    EXPECT_GT(Run.Stats.Storage.dramApproxFraction(), 0.80) << Name;
  }
}

TEST(AppShapes, FpAppsApproximateAllFpOps) {
  for (const char *Name : {"sor", "montecarlo", "lu", "raytracer"}) {
    AppRun Run = runApproximate(*findApplication(Name),
                                FaultConfig::preset(ApproxLevel::Medium), 1);
    EXPECT_GT(Run.Stats.Ops.approxFpFraction(), 0.95) << Name;
  }
}

TEST(AppShapes, IntegerAppsHaveNoFpWork) {
  for (const char *Name : {"barcode", "floodfill"}) {
    AppRun Run = runApproximate(*findApplication(Name),
                                FaultConfig::preset(ApproxLevel::Medium), 1);
    EXPECT_LT(Run.Stats.Ops.fpProportion(), 0.05) << Name;
  }
}

TEST(AppShapes, ControlCodeLimitsIntegerApproximation) {
  // FP-centric apps approximate almost none of their integer work
  // (loop induction variables and indexing dominate it).
  for (const char *Name : {"fft", "sor", "lu", "raytracer"}) {
    AppRun Run = runApproximate(*findApplication(Name),
                                FaultConfig::preset(ApproxLevel::Medium), 1);
    EXPECT_LT(Run.Stats.Ops.approxIntFraction(), 0.10) << Name;
  }
}

TEST(AppShapes, ImageJStandInApproximatesIntegers) {
  // The paper: "ImageJ is the only exception with a significant fraction
  // of integer approximation; it uses integers for pixel values."
  AppRun Run = runApproximate(*findApplication("floodfill"),
                              FaultConfig::preset(ApproxLevel::Medium), 1);
  EXPECT_GT(Run.Stats.Ops.approxIntFraction(), 0.20);
}

TEST(AppShapes, FftAndSorDegradeMostAtMedium) {
  // Figure 5: FFT and SOR lose significant fidelity at Medium while
  // MonteCarlo / SparseMatMult / floodfill / raytracer stay near zero.
  FaultConfig Medium = FaultConfig::preset(ApproxLevel::Medium);
  double Fragile = 0, Robust = 0;
  for (const char *Name : {"fft", "sor"})
    Fragile += qosUnder(*findApplication(Name), Medium, 1);
  for (const char *Name :
       {"montecarlo", "sparsematmult", "floodfill", "raytracer"})
    Robust += qosUnder(*findApplication(Name), Medium, 1);
  EXPECT_GT(Fragile / 2.0, Robust / 4.0 + 0.05);
}

TEST(AppShapes, ErrorGrowsWithLevelOnAverage) {
  double Mean[3] = {0, 0, 0};
  const ApproxLevel Levels[3] = {ApproxLevel::Mild, ApproxLevel::Medium,
                                 ApproxLevel::Aggressive};
  for (const Application *App : allApplications())
    for (int L = 0; L < 3; ++L)
      Mean[L] += qosUnder(*App, FaultConfig::preset(Levels[L]), 2);
  EXPECT_LT(Mean[0], Mean[1]);
  EXPECT_LT(Mean[1], Mean[2]);
}

TEST(AppShapes, DramDecayAloneIsNearlyNegligible) {
  // Section 6.2: "DRAM errors have a nearly negligible impact on
  // application output."
  FaultConfig DramOnly = FaultConfig::preset(ApproxLevel::Aggressive);
  DramOnly.EnableSram = false;
  DramOnly.EnableFpWidth = false;
  DramOnly.EnableTiming = false;
  for (const Application *App : allApplications())
    EXPECT_LT(qosUnder(*App, DramOnly, 1), 0.02) << App->name();
}

TEST(AppShapes, SramWritesHurtMoreThanReadsAtTable2Rates) {
  // Section 6.2: "SRAM write errors are much more detrimental to output
  // quality than read upsets." At the Table 2 Medium rates — read upsets
  // 10^-7.4, write failures 10^-4.94; writes both far more probable and
  // persistent — effectively all SRAM-induced QoS loss comes from the
  // write failures.
  FaultConfig WritesOnly = FaultConfig::preset(ApproxLevel::Medium);
  WritesOnly.EnableDram = false;
  WritesOnly.EnableFpWidth = false;
  WritesOnly.EnableTiming = false;
  WritesOnly.SramReadUpsetOverride = 0.0; // Table 2 write rate stays.
  FaultConfig ReadsOnly = WritesOnly;
  ReadsOnly.SramReadUpsetOverride = -1.0; // Table 2 read rate.
  ReadsOnly.SramWriteFailureOverride = 0.0;

  double WriteError = 0, ReadError = 0;
  for (const Application *App : allApplications())
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      WriteError += qosUnder(*App, WritesOnly, Seed);
      ReadError += qosUnder(*App, ReadsOnly, Seed);
    }
  EXPECT_GT(WriteError, ReadError);
  EXPECT_LT(ReadError / 27.0, 0.005) << "reads alone should be negligible";
}
