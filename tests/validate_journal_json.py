#!/usr/bin/env python3
"""Validate a trial journal against schema v1.

`fenerj_tool eval --journal-dir <d>` writes one single-line JSON
document per captured trial — the flight record that `fenerj_tool
replay` re-executes. This script checks structure, key presence, key
order, and basic invariants of one journal read from stdin (or from the
paths given as arguments). Deliberately does NOT compare digest values:
QoS numbers depend on libm, so value goldens would be platform-fragile.
The byte-level contract (replay must reproduce the digest bitwise)
lives in tests/journal_replay_test.cpp and the `replay` smoke; this
script is the CI gate that real tool output still matches the
documented schema (docs/OBSERVABILITY.md).

Usage: validate_journal_json.py [journal.json ...]   (stdin when none)
Exits 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

TOP_KEYS = ["tool", "version", "app", "engine", "level", "mode",
            "workloadSeed", "configSeed", "mixedSeed", "config", "obs",
            "policy", "power", "regions", "timeline", "timelineDropped",
            "digest"]
CONFIG_KEYS = ["dram", "sram", "fpWidth", "timing", "cyclesPerSecond",
               "cacheLineBytes", "opBudget", "overrides"]
OVERRIDE_KEYS = ["dramFlipPerSecond", "sramReadUpset", "sramWriteFailure",
                 "timingError", "floatMantissa", "doubleMantissa"]
OBS_KEYS = ["metrics", "trace", "traceCapacity"]
POLICY_KEYS = ["enabled", "slo", "outputBound", "maxRetries", "opBudget",
               "degrade"]
POWER_KEYS = ["armed", "trace", "checkpoint"]
EVENT_KEYS = ["attempt", "at", "kind", "op", "arg", "region"]
DIGEST_KEYS = ["qos", "energy", "effectiveEnergy", "outcome", "finalLevel",
               "attempts", "clockCycles", "ops", "storage", "power"]
DIGEST_OPS_KEYS = ["preciseInt", "approxInt", "preciseFp", "approxFp",
                   "timingErrors"]
DIGEST_STORAGE_KEYS = ["sramPrecise", "sramApprox", "dramPrecise",
                       "dramApprox"]
DIGEST_POWER_KEYS = ["losses", "checkpoints", "reExecutedOps", "survived"]
ENGINES = {"interp", "compiled"}
LEVELS = {"none", "mild", "medium", "aggressive"}
OUTCOMES = {"ok", "sloViolated", "aborted", "retried", "degraded",
            "powerFailed"}
EVENT_KINDS = {"regionEnter", "regionExit", "fault", "attemptBegin",
               "attemptEnd", "retry", "degrade", "abort", "powerLoss",
               "checkpoint", "restore"}


def fail(message):
    print(f"validate_journal_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect_keys(obj, keys, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected an object, got {type(obj).__name__}")
    if list(obj.keys()) != keys:
        fail(f"{where}: keys {list(obj.keys())} != expected {keys}")


def expect_count(obj, key, where):
    if not isinstance(obj[key], int) or obj[key] < 0:
        fail(f"{where}.{key}: not a non-negative integer")


def validate(doc, where):
    expect_keys(doc, TOP_KEYS, where)
    if doc["tool"] != "enerj-journal":
        fail(f"{where}: tool is {doc['tool']!r}, expected 'enerj-journal'")
    if doc["version"] != 1:
        fail(f"{where}: version is {doc['version']!r}, expected 1")
    if not isinstance(doc["app"], str) or not doc["app"]:
        fail(f"{where}.app: not a non-empty string")
    if doc["engine"] not in ENGINES:
        fail(f"{where}.engine: unknown engine {doc['engine']!r}")
    if doc["level"] not in LEVELS:
        fail(f"{where}.level: unknown level {doc['level']!r}")
    for key in ("workloadSeed", "configSeed", "mixedSeed",
                "timelineDropped"):
        expect_count(doc, key, where)
    if doc["workloadSeed"] < 1:
        fail(f"{where}.workloadSeed: must be >= 1")

    expect_keys(doc["config"], CONFIG_KEYS, f"{where}.config")
    expect_keys(doc["config"]["overrides"], OVERRIDE_KEYS,
                f"{where}.config.overrides")
    expect_keys(doc["obs"], OBS_KEYS, f"{where}.obs")
    if doc["obs"]["trace"] is not True:
        fail(f"{where}.obs.trace: a journal records a traced trial")
    expect_keys(doc["policy"], POLICY_KEYS, f"{where}.policy")
    expect_keys(doc["power"], POWER_KEYS, f"{where}.power")

    if not isinstance(doc["regions"], list) or not all(
            isinstance(r, str) and r for r in doc["regions"]):
        fail(f"{where}.regions: not a list of non-empty strings")

    if not isinstance(doc["timeline"], list):
        fail(f"{where}.timeline: not a list")
    last_at = {}
    for index, event in enumerate(doc["timeline"]):
        ew = f"{where}.timeline[{index}]"
        expect_keys(event, EVENT_KEYS, ew)
        for key in ("attempt", "at", "arg", "region"):
            expect_count(event, key, ew)
        if event["kind"] not in EVENT_KINDS:
            fail(f"{ew}.kind: unknown kind {event['kind']!r}")
        if event["region"] >= len(doc["regions"]):
            fail(f"{ew}.region: index {event['region']} out of range for "
                 f"{len(doc['regions'])} region(s)")
        # Timestamps are the logical clock: nondecreasing per attempt.
        attempt = event["attempt"]
        if event["at"] < last_at.get(attempt, 0):
            fail(f"{ew}: timestamp {event['at']} goes backwards within "
                 f"attempt {attempt}")
        last_at[attempt] = event["at"]

    digest = doc["digest"]
    dw = f"{where}.digest"
    expect_keys(digest, DIGEST_KEYS, dw)
    for key in ("qos", "energy", "effectiveEnergy"):
        if not isinstance(digest[key], (int, float)):
            fail(f"{dw}.{key}: not a number")
    if digest["outcome"] not in OUTCOMES:
        fail(f"{dw}.outcome: unknown outcome {digest['outcome']!r}")
    if digest["finalLevel"] not in LEVELS:
        fail(f"{dw}.finalLevel: unknown level {digest['finalLevel']!r}")
    expect_count(digest, "attempts", dw)
    if digest["attempts"] < 1:
        fail(f"{dw}.attempts: must be >= 1")
    expect_count(digest, "clockCycles", dw)
    expect_keys(digest["ops"], DIGEST_OPS_KEYS, f"{dw}.ops")
    for key in DIGEST_OPS_KEYS:
        expect_count(digest["ops"], key, f"{dw}.ops")
    expect_keys(digest["storage"], DIGEST_STORAGE_KEYS, f"{dw}.storage")
    for key in DIGEST_STORAGE_KEYS:
        if not isinstance(digest["storage"][key], (int, float)) or \
                digest["storage"][key] < 0:
            fail(f"{dw}.storage.{key}: not a non-negative number")
    expect_keys(digest["power"], DIGEST_POWER_KEYS, f"{dw}.power")
    for key in ("losses", "checkpoints", "reExecutedOps"):
        expect_count(digest["power"], key, f"{dw}.power")
    if not isinstance(digest["power"]["survived"], bool):
        fail(f"{dw}.power.survived: not a bool")

    print(f"validate_journal_json: OK ({where}: {doc['app']}/"
          f"{doc['level']}/{doc['engine']} seed {doc['workloadSeed']}, "
          f"{len(doc['timeline'])} event(s), outcome "
          f"{digest['outcome']!r})")


def load(text, where):
    try:
        return json.loads(text)
    except json.JSONDecodeError as err:
        fail(f"{where}: not valid JSON: {err}")


def main():
    paths = sys.argv[1:]
    if not paths:
        validate(load(sys.stdin.read(), "stdin"), "stdin")
        return
    for path in paths:
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as err:
            fail(f"{path}: {err}")
        validate(load(text, path), path)


if __name__ == "__main__":
    main()
