//===- tests/obs_trace_test.cpp - Trace ring buffer and exporter ----------===//
//
// Pins the TraceBuffer's ring semantics (keep the newest, count the
// shed) and the Chrome/Perfetto trace_event exporter: a hand-built
// event sequence renders to an exact golden string, and a real
// pinned-seed trial produces a structurally sound, balanced, repeatable
// document.
//
//===----------------------------------------------------------------------===//

#include "harness/trial.h"
#include "obs/trace.h"

#include <gtest/gtest.h>
#include <string>

using namespace enerj;
using namespace enerj::obs;

namespace {

TraceEvent event(uint64_t At, TraceEventKind Kind, uint64_t Arg = 0,
                 uint32_t Region = 0, OpKind Op = OpKind::PreciseInt) {
  TraceEvent E;
  E.At = At;
  E.Arg = Arg;
  E.Kind = Kind;
  E.Op = Op;
  E.Region = Region;
  return E;
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

} // namespace

TEST(ObsTrace, RingKeepsNewestAndCountsDropped) {
  TraceBuffer Ring(4);
  for (uint64_t I = 0; I < 4; ++I)
    Ring.push(event(I, TraceEventKind::RegionEnter));
  EXPECT_EQ(Ring.size(), 4u);
  EXPECT_EQ(Ring.dropped(), 0u);
  EXPECT_EQ(Ring.event(0).At, 0u);
  EXPECT_EQ(Ring.event(3).At, 3u);

  // Two more: the two oldest are shed, the tail survives in order.
  Ring.push(event(4, TraceEventKind::Fault, 2));
  Ring.push(event(5, TraceEventKind::RegionExit));
  EXPECT_EQ(Ring.size(), 4u);
  EXPECT_EQ(Ring.dropped(), 2u);
  std::vector<TraceEvent> Events = Ring.drain();
  ASSERT_EQ(Events.size(), 4u);
  for (size_t I = 0; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].At, I + 2);
  EXPECT_EQ(Events[2].Kind, TraceEventKind::Fault);
}

TEST(ObsTrace, EmptyRingDrainsNothing) {
  // drain() on a freshly constructed (empty) ring must return no events
  // and never touch event() — the historical `% Ring.size()` indexing
  // divided by zero here.
  TraceBuffer Ring(4);
  EXPECT_EQ(Ring.size(), 0u);
  EXPECT_EQ(Ring.capacity(), 4u);
  EXPECT_EQ(Ring.dropped(), 0u);
  EXPECT_TRUE(Ring.drain().empty());

  // A zero-capacity ring is degenerate but must also stay safe: every
  // push is shed immediately and drain stays empty.
  TraceBuffer Zero(0);
  Zero.push(event(1, TraceEventKind::Fault, 1));
  EXPECT_EQ(Zero.size(), 0u);
  EXPECT_TRUE(Zero.drain().empty());
}

TEST(ObsTrace, ExactlyFullRingIsChronological) {
  // size == capacity with no overwrite yet: Head is still 0 and event(I)
  // must be the I-th push.
  TraceBuffer Ring(3);
  for (uint64_t I = 0; I < 3; ++I)
    Ring.push(event(I, TraceEventKind::RegionEnter));
  EXPECT_EQ(Ring.size(), Ring.capacity());
  EXPECT_EQ(Ring.dropped(), 0u);
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(Ring.event(I).At, I);
  std::vector<TraceEvent> Events = Ring.drain();
  ASSERT_EQ(Events.size(), 3u);
  for (size_t I = 0; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].At, I);
}

TEST(ObsTrace, WrappedRingStaysChronological) {
  // Wrap the ring more than a full lap: only the newest `capacity`
  // events survive, oldest first, and the shed count is exact.
  TraceBuffer Ring(4);
  for (uint64_t I = 0; I < 11; ++I)
    Ring.push(event(I, TraceEventKind::RegionEnter));
  EXPECT_EQ(Ring.size(), 4u);
  EXPECT_EQ(Ring.dropped(), 7u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Ring.event(I).At, 7 + I);
  std::vector<TraceEvent> Events = Ring.drain();
  ASSERT_EQ(Events.size(), 4u);
  for (size_t I = 0; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].At, 7 + I);
}

TEST(ObsTrace, KindNamesAreStable) {
  EXPECT_STREQ(traceEventKindName(TraceEventKind::RegionEnter),
               "regionEnter");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::Fault), "fault");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::AttemptBegin),
               "attemptBegin");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::Degrade), "degrade");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::Abort), "abort");
}

TEST(ObsTrace, ChromeTraceGolden) {
  // A tiny two-attempt timeline, rendered byte for byte. This is the
  // schema contract with chrome://tracing and Perfetto's legacy
  // importer; extending the exporter must extend this golden.
  MetricsRegistry Registry;
  uint32_t Kernel = Registry.internRegion("kernel");

  std::vector<TrialTraceEvent> Events;
  Events.push_back({0, event(0, TraceEventKind::AttemptBegin, 2)});
  Events.push_back({0, event(0, TraceEventKind::RegionEnter, 0, Kernel)});
  Events.push_back(
      {0, event(7, TraceEventKind::Fault, 3, Kernel, OpKind::ApproxFp)});
  Events.push_back({0, event(9, TraceEventKind::RegionExit, 0, Kernel)});
  Events.push_back({0, event(9, TraceEventKind::AttemptEnd, 0)});
  Events.push_back({1, event(0, TraceEventKind::Retry, 1)});
  Events.push_back({1, event(0, TraceEventKind::AttemptBegin, 2)});
  Events.push_back({1, event(4, TraceEventKind::Abort, 4)});

  std::string Json = renderChromeTrace(Events, Registry, "demo");
  EXPECT_EQ(
      Json,
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"demo\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"attempt 0\"}},"
      "{\"name\":\"attemptBegin\",\"ph\":\"i\",\"ts\":0,\"pid\":1,"
      "\"tid\":0,\"s\":\"t\",\"args\":{\"value\":2}},"
      "{\"name\":\"kernel\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0},"
      "{\"name\":\"fault\",\"ph\":\"i\",\"ts\":7,\"pid\":1,\"tid\":0,"
      "\"s\":\"t\",\"args\":{\"op\":\"approxFp\",\"region\":\"kernel\","
      "\"flippedBits\":3}},"
      "{\"name\":\"kernel\",\"ph\":\"E\",\"ts\":9,\"pid\":1,\"tid\":0},"
      "{\"name\":\"attemptEnd\",\"ph\":\"i\",\"ts\":9,\"pid\":1,"
      "\"tid\":0,\"s\":\"t\",\"args\":{\"value\":0}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"attempt 1\"}},"
      "{\"name\":\"retry\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":1,"
      "\"s\":\"t\",\"args\":{\"value\":1}},"
      "{\"name\":\"attemptBegin\",\"ph\":\"i\",\"ts\":0,\"pid\":1,"
      "\"tid\":1,\"s\":\"t\",\"args\":{\"value\":2}},"
      "{\"name\":\"abort\",\"ph\":\"i\",\"ts\":4,\"pid\":1,\"tid\":1,"
      "\"s\":\"t\",\"args\":{\"value\":4}}"
      "],\"displayTimeUnit\":\"ms\"}");
}

TEST(ObsTrace, EscapesQuotesAndBackslashesInNames) {
  // The two user-controlled strings that reach JSON string positions
  // with escaping are the app name (process_name metadata) and the
  // fault event's region argument.
  MetricsRegistry Registry;
  uint32_t Weird = Registry.internRegion("a\"b\\c");
  std::vector<TrialTraceEvent> Events;
  Events.push_back(
      {0, event(3, TraceEventKind::Fault, 1, Weird, OpKind::ApproxInt)});
  std::string Json = renderChromeTrace(Events, Registry, "app\"name");
  EXPECT_NE(Json.find("\"args\":{\"name\":\"app\\\"name\"}"),
            std::string::npos);
  EXPECT_NE(Json.find("\"region\":\"a\\\"b\\\\c\""), std::string::npos);
}

TEST(ObsTrace, PinnedTrialRendersABalancedRepeatableDocument) {
  // A real instrumented trial: region spans must balance per attempt,
  // attempt markers must be present, and rendering twice from the same
  // trial identity must give the same bytes.
  harness::Trial T;
  T.App = apps::findApplication("fft");
  ASSERT_NE(T.App, nullptr);
  T.Config = FaultConfig::preset(ApproxLevel::Medium);
  T.WorkloadSeed = 1;
  T.Obs.Metrics = true;
  T.Obs.Trace = true;

  harness::TrialResult First = harness::TrialRunner::runOne(T);
  harness::TrialResult Second = harness::TrialRunner::runOne(T);
  ASSERT_FALSE(First.Trace.empty());

  std::string Json =
      renderChromeTrace(First.Trace, First.Metrics, T.App->name());
  EXPECT_EQ(Json, renderChromeTrace(Second.Trace, Second.Metrics,
                                    T.App->name()));

  EXPECT_EQ(Json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"attemptBegin\""), std::string::npos);
  EXPECT_NE(Json.find("\"attemptEnd\""), std::string::npos);
  // Every fft phase label shows up as a span, and B/E pair up.
  for (const char *Region : {"init", "bitrev", "butterflies", "output"})
    EXPECT_NE(Json.find(std::string("\"name\":\"") + Region + "\""),
              std::string::npos)
        << Region;
  EXPECT_EQ(countOccurrences(Json, "\"ph\":\"B\""),
            countOccurrences(Json, "\"ph\":\"E\""));
  EXPECT_EQ(First.TraceDropped, 0u);
}
