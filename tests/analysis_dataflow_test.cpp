//===- tests/analysis_dataflow_test.cpp - Worklist engine edge cases ------===//
//
// The generic dataflow engine now underlies the ISA flow verifier, the
// lint passes, SSA liveness, and the reliability bound analysis — so its
// edge cases get direct unit coverage: the empty CFG, unreachable
// blocks, a single-block self-loop that must still reach fixpoint, and
// joins over more than two predecessors. The domains here are tiny
// synthetic lattices built for observability, not reuse.
//
//===----------------------------------------------------------------------===//

#include "analysis/dataflow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace enerj::analysis;

namespace {

/// An explicit adjacency-list graph satisfying the engine's Graph
/// concept. Block 0 is the entry.
struct TestGraph {
  std::vector<std::vector<unsigned>> Successors;
  std::vector<std::vector<unsigned>> Predecessors;

  explicit TestGraph(unsigned Blocks)
      : Successors(Blocks), Predecessors(Blocks) {}

  void edge(unsigned From, unsigned To) {
    Successors[From].push_back(To);
    Predecessors[To].push_back(From);
  }

  unsigned blockCount() const {
    return static_cast<unsigned>(Successors.size());
  }
  const std::vector<unsigned> &succs(unsigned Block) const {
    return Successors[Block];
  }
  const std::vector<unsigned> &preds(unsigned Block) const {
    return Predecessors[Block];
  }
};

/// Forward reaching-bits domain: each block's transfer sets its own bit;
/// join is set union. In[b] is then exactly the set of blocks on some
/// path from the entry to b (excluding b unless on a cycle).
struct ReachDomain {
  unsigned Bits;
  using Value = BitVec;

  Value init() const { return BitVec(Bits); }
  Value boundary() const { return BitVec(Bits); }
  bool join(Value &Into, const Value &From) const {
    return Into.uniteWith(From);
  }
  Value transfer(unsigned Block, const Value &In) const {
    Value Out = In;
    Out.set(Block);
    return Out;
  }
};

/// Forward max-counter domain with a saturation cap: a self-loop keeps
/// increasing the value until the cap, so fixpoint termination depends
/// on the engine re-queueing the block until the lattice tops out.
struct CappedCountDomain {
  int Cap;
  using Value = int;

  Value init() const { return 0; }
  Value boundary() const { return 1; }
  bool join(Value &Into, const Value &From) const {
    if (From > Into) {
      Into = From;
      return true;
    }
    return false;
  }
  Value transfer(unsigned, const Value &In) const {
    return std::min(In + 1, Cap);
  }
};

} // namespace

TEST(Dataflow, EmptyGraphYieldsEmptyResult) {
  TestGraph G(0);
  ReachDomain Dom{0};
  DataflowResult<ReachDomain> Forward =
      solveDataflow(G, Direction::Forward, Dom);
  EXPECT_TRUE(Forward.In.empty());
  EXPECT_TRUE(Forward.Out.empty());
  DataflowResult<ReachDomain> Backward =
      solveDataflow(G, Direction::Backward, Dom);
  EXPECT_TRUE(Backward.In.empty());
  EXPECT_TRUE(Backward.Out.empty());
}

TEST(Dataflow, SingleBlockGraphAppliesBoundaryAndTransfer) {
  TestGraph G(1);
  ReachDomain Dom{1};
  DataflowResult<ReachDomain> R = solveDataflow(G, Direction::Forward, Dom);
  EXPECT_FALSE(R.In[0].test(0));
  EXPECT_TRUE(R.Out[0].test(0));
}

TEST(Dataflow, UnreachableBlockStaysAtInit) {
  // 0 -> 1; block 2 hangs off nothing and reaches nothing: its In must
  // stay the optimistic init (empty), not leak into reachable blocks.
  TestGraph G(3);
  G.edge(0, 1);
  G.edge(2, 1); // 2 is a predecessor of 1 but itself unreachable.
  ReachDomain Dom{3};
  DataflowResult<ReachDomain> R = solveDataflow(G, Direction::Forward, Dom);
  EXPECT_FALSE(R.In[2].test(0));
  EXPECT_FALSE(R.In[2].test(2));
  EXPECT_TRUE(R.Out[2].test(2));
  // Block 1 joins over both predecessors; the unreachable one still
  // contributes its transfer output (the engine is path-insensitive),
  // so In[1] = {0} ∪ {2}.
  EXPECT_TRUE(R.In[1].test(0));
  EXPECT_TRUE(R.In[1].test(2));
  EXPECT_FALSE(R.In[1].test(1));
}

TEST(Dataflow, SingleBlockSelfLoopReachesFixpoint) {
  TestGraph G(1);
  G.edge(0, 0);
  CappedCountDomain Dom{17};
  DataflowResult<CappedCountDomain> R =
      solveDataflow(G, Direction::Forward, Dom);
  // In = max(boundary, Out) and Out = min(In + 1, cap); the only
  // fixpoint is the saturated one.
  EXPECT_EQ(R.Out[0], 17);
  EXPECT_EQ(R.In[0], 17);
}

TEST(Dataflow, SelfLoopBitsetConverges) {
  TestGraph G(2);
  G.edge(0, 1);
  G.edge(1, 1);
  ReachDomain Dom{2};
  DataflowResult<ReachDomain> R = solveDataflow(G, Direction::Forward, Dom);
  // The self-loop feeds block 1's own bit back into its In.
  EXPECT_TRUE(R.In[1].test(0));
  EXPECT_TRUE(R.In[1].test(1));
}

TEST(Dataflow, JoinOverManyPredecessors) {
  // Diamond with a fifth straggler: block 5 joins four predecessors.
  //   0 -> {1, 2, 3, 4} -> 5
  TestGraph G(6);
  for (unsigned Mid = 1; Mid <= 4; ++Mid) {
    G.edge(0, Mid);
    G.edge(Mid, 5);
  }
  ReachDomain Dom{6};
  DataflowResult<ReachDomain> R = solveDataflow(G, Direction::Forward, Dom);
  for (unsigned Mid = 1; Mid <= 4; ++Mid)
    EXPECT_TRUE(R.In[5].test(Mid)) << Mid;
  EXPECT_TRUE(R.In[5].test(0));
  EXPECT_FALSE(R.In[5].test(5));
}

TEST(Dataflow, BackwardAnalysisMirrorsForward) {
  // 0 -> 1 -> 2 (exit). Backward reach: In[b] collects blocks reachable
  // *from* b; the boundary applies at the exit block.
  TestGraph G(3);
  G.edge(0, 1);
  G.edge(1, 2);
  ReachDomain Dom{3};
  DataflowResult<ReachDomain> R =
      solveDataflow(G, Direction::Backward, Dom);
  EXPECT_TRUE(R.In[0].test(0));
  EXPECT_TRUE(R.In[0].test(1));
  EXPECT_TRUE(R.In[0].test(2));
  EXPECT_TRUE(R.In[2].test(2));
  EXPECT_FALSE(R.In[2].test(0));
}

TEST(DataflowBitVec, SetClearTestAndUnion) {
  BitVec A(130), B(130);
  A.set(0);
  A.set(64);  // Word boundary.
  A.set(129); // Last bit.
  EXPECT_TRUE(A.test(0));
  EXPECT_TRUE(A.test(64));
  EXPECT_TRUE(A.test(129));
  EXPECT_FALSE(A.test(63));
  A.clear(64);
  EXPECT_FALSE(A.test(64));
  B.set(64);
  EXPECT_TRUE(A.uniteWith(B));
  EXPECT_TRUE(A.test(64));
  EXPECT_FALSE(A.uniteWith(B)) << "second union must report no change";
  BitVec C(130);
  C.setAll();
  for (unsigned Bit = 0; Bit < 130; ++Bit)
    EXPECT_TRUE(C.test(Bit)) << Bit;
}
