//===- tests/qos_test.cpp - QoS metric tests ------------------------------===//

#include "qos/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

using namespace enerj;

TEST(Qos, ClampError) {
  EXPECT_DOUBLE_EQ(qos::clampError(0.5), 0.5);
  EXPECT_DOUBLE_EQ(qos::clampError(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(qos::clampError(2.0), 1.0);
  EXPECT_DOUBLE_EQ(qos::clampError(std::nan("")), 1.0);
}

TEST(Qos, MeanEntryDifferenceIdentical) {
  std::vector<double> A = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(qos::meanEntryDifference(A, A), 0.0);
}

TEST(Qos, MeanEntryDifferenceCapsPerEntry) {
  std::vector<double> A = {0.0, 0.0};
  std::vector<double> B = {100.0, 0.0}; // Entry diff 100 caps at 1.
  EXPECT_DOUBLE_EQ(qos::meanEntryDifference(A, B), 0.5);
}

TEST(Qos, MeanEntryDifferenceNaNCountsAsOne) {
  std::vector<double> A = {1.0, 1.0};
  std::vector<double> B = {1.0, std::nan("")};
  EXPECT_DOUBLE_EQ(qos::meanEntryDifference(A, B), 0.5);
}

TEST(Qos, MeanEntryDifferenceMismatchedLengths) {
  std::vector<double> A = {1.0};
  std::vector<double> B = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(qos::meanEntryDifference(A, B), 1.0);
}

TEST(Qos, MeanEntryDifferenceEmpty) {
  std::vector<double> Empty;
  EXPECT_DOUBLE_EQ(qos::meanEntryDifference(Empty, Empty), 0.0);
}

TEST(Qos, NormalizedDifference) {
  EXPECT_DOUBLE_EQ(qos::normalizedDifference(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(qos::normalizedDifference(10.0, 9.0), 0.1);
  EXPECT_DOUBLE_EQ(qos::normalizedDifference(10.0, 100.0), 1.0); // Capped.
  EXPECT_DOUBLE_EQ(qos::normalizedDifference(1.0, std::nan("")), 1.0);
  // Tiny baseline does not divide by zero.
  EXPECT_DOUBLE_EQ(qos::normalizedDifference(0.0, 0.0), 0.0);
}

TEST(Qos, MeanNormalizedDifference) {
  std::vector<double> A = {10.0, 20.0};
  std::vector<double> B = {9.0, 20.0};
  EXPECT_DOUBLE_EQ(qos::meanNormalizedDifference(A, B), 0.05);
}

TEST(Qos, BinaryCorrectness) {
  EXPECT_DOUBLE_EQ(qos::binaryCorrectness("HELLO", "HELLO"), 0.0);
  EXPECT_DOUBLE_EQ(qos::binaryCorrectness("HELLO", "HELLO!"), 1.0);
  EXPECT_DOUBLE_EQ(qos::binaryCorrectness("", ""), 0.0);
}

TEST(Qos, DecisionError) {
  std::vector<uint8_t> P = {1, 0, 1, 1};
  EXPECT_DOUBLE_EQ(qos::decisionError(P, P), 0.0);
  std::vector<uint8_t> Half = {1, 0, 1, 0}; // 75% correct -> 0.5 error.
  EXPECT_DOUBLE_EQ(qos::decisionError(P, Half), 0.5);
  std::vector<uint8_t> Chance = {0, 1, 0, 0}; // 25% correct -> capped 1.
  EXPECT_DOUBLE_EQ(qos::decisionError(P, Chance), 1.0);
  std::vector<uint8_t> Empty;
  EXPECT_DOUBLE_EQ(qos::decisionError(Empty, Empty), 1.0);
}

TEST(Qos, MeanPixelDifference) {
  std::vector<double> A = {0, 128, 255};
  std::vector<double> B = {0, 128, 255};
  EXPECT_DOUBLE_EQ(qos::meanPixelDifference(A, B, 255.0), 0.0);
  std::vector<double> C = {255, 128, 255};
  EXPECT_NEAR(qos::meanPixelDifference(A, C, 255.0), 1.0 / 3.0, 1e-12);
  // Differences beyond the channel range cap at 1 per pixel.
  std::vector<double> D = {-1000, 128, 255};
  EXPECT_NEAR(qos::meanPixelDifference(A, D, 255.0), 1.0 / 3.0, 1e-12);
}

TEST(Qos, MeanPixelDifferenceDegenerate) {
  std::vector<double> A = {1.0};
  std::vector<double> B = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(qos::meanPixelDifference(A, B, 255.0), 1.0);
  EXPECT_DOUBLE_EQ(qos::meanPixelDifference(A, A, 0.0), 1.0);
}

TEST(Qos, NonFiniteEntriesClampWithoutPoisoningTheMean) {
  // Each non-finite entry contributes exactly its worst case (1.0) to
  // the mean — it must never NaN-poison the sum and drag finite
  // entries' contributions along with it.
  const double Inf = std::numeric_limits<double>::infinity();
  std::vector<double> P = {0.0, 0.0, 0.0, 0.0};
  std::vector<double> D = {0.0, std::nan(""), Inf, -Inf};
  EXPECT_DOUBLE_EQ(qos::meanEntryDifference(P, D), 0.75);
  EXPECT_DOUBLE_EQ(qos::meanNormalizedDifference(P, D), 0.75);
  EXPECT_DOUBLE_EQ(qos::meanPixelDifference(P, D, 1.0), 0.75);
}

TEST(Qos, NonFiniteBaselineClampsTheSameWay) {
  // A NaN on the *precise* side (a degenerate reference) is clamped
  // identically — the difference is non-finite either way.
  std::vector<double> P = {std::nan(""), 1.0};
  std::vector<double> D = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(qos::meanEntryDifference(P, D), 0.5);
  EXPECT_DOUBLE_EQ(qos::meanNormalizedDifference(P, D), 0.5);
  EXPECT_DOUBLE_EQ(qos::meanPixelDifference(P, D, 1.0), 0.5);
}

TEST(Qos, AllNaNOutputIsExactlyWorstCase) {
  // The degenerate case an aborted or wildly corrupted trial produces:
  // every entry NaN. The metrics must report exactly 1.0, not NaN.
  std::vector<double> P = {1.0, 2.0, 3.0};
  std::vector<double> D(3, std::nan(""));
  EXPECT_DOUBLE_EQ(qos::meanEntryDifference(P, D), 1.0);
  EXPECT_DOUBLE_EQ(qos::meanNormalizedDifference(P, D), 1.0);
  EXPECT_DOUBLE_EQ(qos::meanPixelDifference(P, D, 255.0), 1.0);
  EXPECT_DOUBLE_EQ(qos::normalizedDifference(std::nan(""), std::nan("")),
                   1.0);
}

TEST(Qos, AllMetricsBounded) {
  // Property: whatever garbage goes in, the error is in [0, 1].
  std::vector<double> A = {1e308, -1e308, std::nan(""), 0.0};
  std::vector<double> B = {-1e308, 1e308, 5.0,
                           std::numeric_limits<double>::infinity()};
  for (double E :
       {qos::meanEntryDifference(A, B), qos::meanNormalizedDifference(A, B),
        qos::meanPixelDifference(A, B, 255.0)}) {
    EXPECT_GE(E, 0.0);
    EXPECT_LE(E, 1.0);
  }
}
