//===- tests/power_restore_test.cpp - Checkpoint/restore properties -------===//
//
// The two properties the power environment's honesty rests on:
//
//  * restore == uninterrupted — FastMachine::snapshot() captures the
//    *complete* restartable state (registers, memory, decay timestamps,
//    fault-stream and payload RNG state, prefetched mask lines, latches,
//    counters, ledger). Chopping an execution into resume() segments and
//    round-tripping every boundary through snapshot() -> a *fresh*
//    machine -> restore() must reproduce the uninterrupted run bit for
//    bit: every register, every memory word, every counter — on all nine
//    kernels, both at level None (no randomness) and at Medium (live
//    fault streams whose positions must survive the checkpoint);
//  * metering never perturbs — arming a PowerMeter (steady or lossy)
//    changes nothing about the measured run, on either engine; with an
//    adequate steady supply and no checkpoints the whole TrialResult is
//    byte-identical to the no-trace path, including the energy figures.
//
//===----------------------------------------------------------------------===//

#include "exec/compiled.h"
#include "exec/machine.h"
#include "harness/trial.h"

#include <cstring>
#include <gtest/gtest.h>
#include <memory>

using namespace enerj;
using namespace enerj::harness;

namespace {

const char *KernelDir = ENERJ_FEJ_DIR "/isa";

uint64_t bitsOf(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

exec::ProgramCache &cache() {
  static exec::ProgramCache Cache(KernelDir);
  return Cache;
}

/// Full machine state after a run, for bitwise comparison.
struct State {
  bool Trapped = false;
  std::string TrapMessage;
  bool Halted = false;
  uint64_t Executed = 0;
  std::vector<int64_t> IntRegs;
  std::vector<uint64_t> FpBits;
  std::vector<uint64_t> MemBits;
  RunStats Stats;
};

State captureState(const exec::FastMachine &M, const isa::IsaProgram &P) {
  State S;
  for (unsigned I = 0; I < isa::NumIntRegs; ++I)
    S.IntRegs.push_back(M.intReg(I));
  for (unsigned I = 0; I < isa::NumFpRegs; ++I)
    S.FpBits.push_back(bitsOf(M.fpReg(I)));
  for (uint64_t A = 0; A < P.memoryWords(); ++A)
    S.MemBits.push_back(M.memBits(A));
  S.Stats = M.stats();
  return S;
}

void expectStateEqual(const State &A, const State &B) {
  EXPECT_EQ(A.Trapped, B.Trapped) << A.TrapMessage << " / " << B.TrapMessage;
  EXPECT_EQ(A.TrapMessage, B.TrapMessage);
  EXPECT_EQ(A.Halted, B.Halted);
  EXPECT_EQ(A.Executed, B.Executed);
  EXPECT_EQ(A.IntRegs, B.IntRegs);
  EXPECT_EQ(A.FpBits, B.FpBits);
  EXPECT_EQ(A.MemBits, B.MemBits);
  EXPECT_EQ(A.Stats.Ops.PreciseInt, B.Stats.Ops.PreciseInt);
  EXPECT_EQ(A.Stats.Ops.ApproxInt, B.Stats.Ops.ApproxInt);
  EXPECT_EQ(A.Stats.Ops.PreciseFp, B.Stats.Ops.PreciseFp);
  EXPECT_EQ(A.Stats.Ops.ApproxFp, B.Stats.Ops.ApproxFp);
  EXPECT_EQ(A.Stats.Ops.TimingErrors, B.Stats.Ops.TimingErrors);
  EXPECT_EQ(bitsOf(A.Stats.Storage.SramPrecise),
            bitsOf(B.Stats.Storage.SramPrecise));
  EXPECT_EQ(bitsOf(A.Stats.Storage.SramApprox),
            bitsOf(B.Stats.Storage.SramApprox));
  EXPECT_EQ(bitsOf(A.Stats.Storage.DramPrecise),
            bitsOf(B.Stats.Storage.DramPrecise));
  EXPECT_EQ(bitsOf(A.Stats.Storage.DramApprox),
            bitsOf(B.Stats.Storage.DramApprox));
}

/// The uninterrupted reference: one resume() from instruction 0 with the
/// default budget.
State runUninterrupted(const isa::IsaProgram &P, const FaultConfig &Config) {
  exec::FastMachine M(P, Config);
  exec::FastResult R = M.resume(0, 10'000'000);
  State S = captureState(M, P);
  S.Trapped = R.Trapped;
  S.TrapMessage = R.TrapMessage;
  S.Halted = R.Halted;
  S.Executed = R.InstructionsExecuted;
  return S;
}

/// The intermittent run: execute in \p Chunk-instruction segments and
/// force a full checkpoint/restore cycle at every boundary — snapshot the
/// machine, throw it away, boot a *fresh* machine, restore, continue.
State runSegmented(const isa::IsaProgram &P, const FaultConfig &Config,
                   uint64_t Chunk) {
  auto M = std::make_unique<exec::FastMachine>(P, Config);
  uint64_t Pc = 0, Total = 0;
  exec::FastResult R;
  while (true) {
    R = M->resume(Pc, Chunk);
    Total += R.InstructionsExecuted;
    if (R.Trapped || R.Halted || Total >= 10'000'000)
      break;
    Pc = R.NextPc;
    exec::FastMachine::Snapshot Checkpoint = M->snapshot();
    M = std::make_unique<exec::FastMachine>(P, Config);
    M->restore(Checkpoint);
  }
  State S = captureState(*M, P);
  S.Trapped = R.Trapped;
  S.TrapMessage = R.TrapMessage;
  S.Halted = R.Halted;
  S.Executed = Total;
  return S;
}

} // namespace

TEST(PowerRestore, SegmentedRestoreMatchesUninterruptedAtLevelNone) {
  // The p = 0 property: no stream ever draws, so this isolates the
  // architected-state half of the snapshot (registers, memory, decay
  // timestamps, counters) on every kernel.
  FaultConfig None = FaultConfig::preset(ApproxLevel::None);
  for (const apps::Application *App : apps::allApplications()) {
    SCOPED_TRACE(App->name());
    const exec::CompiledKernel &K = cache().get(App->name(),
                                                ApproxLevel::None);
    State Reference = runUninterrupted(K.Binary, None);
    EXPECT_FALSE(Reference.Trapped) << Reference.TrapMessage;
    expectStateEqual(Reference, runSegmented(K.Binary, None, 5000));
  }
}

TEST(PowerRestore, SegmentedRestoreMatchesUninterruptedUnderFaults) {
  // The hard half: at Medium the upset streams, timing-event streams,
  // payload RNG, and prefetched mask lines are all live — a snapshot
  // that missed any of them would diverge. Several chunk sizes shift the
  // checkpoint boundaries across mask-line and block refill edges.
  for (const apps::Application *App : apps::allApplications()) {
    FaultConfig Config = FaultConfig::preset(ApproxLevel::Medium);
    Config.Seed = mixSeed(Config.Seed, 1);
    SCOPED_TRACE(App->name());
    const exec::CompiledKernel &K = cache().get(App->name(),
                                                ApproxLevel::Medium);
    State Reference = runUninterrupted(K.Binary, Config);
    for (uint64_t Chunk : {1000u, 4097u, 65536u}) {
      SCOPED_TRACE("chunk " + std::to_string(Chunk));
      expectStateEqual(Reference, runSegmented(K.Binary, Config, Chunk));
    }
  }
}

TEST(PowerRestore, ResumeReportsProgressHonestly) {
  // The segmented API's bookkeeping: budget exhaustion is not a trap,
  // instruction counts are per-call, and the final segment reports a
  // clean halt.
  const exec::CompiledKernel &K =
      cache().get("montecarlo", ApproxLevel::None);
  FaultConfig None = FaultConfig::preset(ApproxLevel::None);
  exec::FastMachine M(K.Binary, None);
  exec::FastResult First = M.resume(0, 100);
  EXPECT_FALSE(First.Trapped);
  EXPECT_FALSE(First.Halted);
  EXPECT_EQ(First.InstructionsExecuted, 100u);
  exec::FastResult Rest = M.resume(First.NextPc, 10'000'000);
  EXPECT_FALSE(Rest.Trapped) << Rest.TrapMessage;
  EXPECT_TRUE(Rest.Halted);
  EXPECT_GT(Rest.InstructionsExecuted, 0u);
}

TEST(PowerRestore, MeteringNeverPerturbsTheCompiledRun) {
  // A PowerMeter is an observer: with the meter attached — even one that
  // loses power — the compiled trial's QoS, stats, and cycles are
  // bitwise what they are without it; only the meter's own accounting
  // differs between supplies.
  const exec::CompiledKernel &K = cache().get("fft", ApproxLevel::Mild);
  FaultConfig Config = FaultConfig::preset(ApproxLevel::Mild);
  exec::CompiledTrialResult Plain = exec::runCompiledTrial(K, Config, 1);
  ASSERT_FALSE(Plain.Trapped) << Plain.Error;

  env::PowerEnv Steady;
  Steady.Trace = *env::PowerTraceSpec::preset("steady", nullptr);
  env::PowerMeter SteadyMeter(Steady, Config);
  exec::CompiledTrialResult Metered = exec::runCompiledTrial(
      K, Config, 1, /*CollectMetrics=*/false, BlockMode::Batched,
      &SteadyMeter);
  EXPECT_EQ(bitsOf(Plain.QosError), bitsOf(Metered.QosError));
  EXPECT_EQ(Plain.Stats.Ops.ApproxFp, Metered.Stats.Ops.ApproxFp);
  EXPECT_EQ(Plain.Cycles, Metered.Cycles);
  EXPECT_EQ(SteadyMeter.stats().Losses, 0u);
  EXPECT_DOUBLE_EQ(SteadyMeter.stats().overheadRatio(), 1.0);

  // A starved platform (tiny buffer, supply below every op cost) whose
  // checkpoints are cheap enough to keep it alive: guaranteed to
  // interrupt even a short ISA kernel.
  env::PowerEnv Starved;
  Starved.Trace = *env::PowerTraceSpec::preset("steady:15", nullptr);
  Starved.Checkpoint = *env::CheckpointPolicy::parse("periodic:50",
                                                     nullptr);
  Starved.BufferCapacity = 3000;
  Starved.CheckpointCostUnits = 100;
  Starved.RestoreCostUnits = 50;
  env::PowerMeter StarvedMeter(Starved, Config);
  exec::CompiledTrialResult Lossy = exec::runCompiledTrial(
      K, Config, 1, /*CollectMetrics=*/false, BlockMode::Batched,
      &StarvedMeter);
  EXPECT_EQ(bitsOf(Plain.QosError), bitsOf(Lossy.QosError));
  EXPECT_EQ(Plain.Cycles, Lossy.Cycles);
  // The starved supply actually interrupts this kernel; the meter
  // charges the losses without touching the measurement.
  EXPECT_GT(StarvedMeter.stats().Losses, 0u);
  EXPECT_GT(StarvedMeter.stats().ReExecutedOps, 0u);
  EXPECT_GT(StarvedMeter.stats().overheadRatio(), 1.0);
}

TEST(PowerRestore, SteadyTraceWithoutCheckpointsIsByteIdenticalInterp) {
  // The acceptance gate: arming the trace with checkpointing disabled
  // must leave the interpreter trial byte-identical to the no-trace
  // path — QoS, ops, storage, energy, and the effective energy factor
  // (overheadRatio == 1 exactly). All nine apps at Medium.
  env::PowerEnv Env;
  Env.Trace = *env::PowerTraceSpec::preset("steady", nullptr);
  for (const apps::Application *App : apps::allApplications()) {
    SCOPED_TRACE(App->name());
    Trial Plain{App, FaultConfig::preset(ApproxLevel::Medium), 1, {}};
    Trial Powered = Plain;
    Powered.Power = &Env;
    TrialResult A = TrialRunner::runOne(Plain);
    TrialResult B = TrialRunner::runOne(Powered);
    EXPECT_EQ(bitsOf(A.QosError), bitsOf(B.QosError));
    EXPECT_EQ(A.Stats.Ops.PreciseInt, B.Stats.Ops.PreciseInt);
    EXPECT_EQ(A.Stats.Ops.ApproxInt, B.Stats.Ops.ApproxInt);
    EXPECT_EQ(A.Stats.Ops.PreciseFp, B.Stats.Ops.PreciseFp);
    EXPECT_EQ(A.Stats.Ops.ApproxFp, B.Stats.Ops.ApproxFp);
    EXPECT_EQ(bitsOf(A.Energy.TotalFactor), bitsOf(B.Energy.TotalFactor));
    EXPECT_EQ(bitsOf(A.EffectiveEnergyFactor),
              bitsOf(B.EffectiveEnergyFactor));
    EXPECT_EQ(A.Outcome, B.Outcome);
    EXPECT_EQ(B.Power.Losses, 0u);
    EXPECT_GT(B.Power.LiveOps, 0u);
    EXPECT_TRUE(B.Power.Survived);
  }
}

TEST(PowerRestore, DeadSupplyYieldsPowerFailedOutcome) {
  // A supply that can never recharge fails the attempt: the trial ends
  // as PowerFailed with QoS pinned to 1, on both engines.
  env::PowerEnv Env;
  Env.Trace = *env::PowerTraceSpec::preset("steady:0", nullptr);
  const apps::Application *App = apps::findApplication("sor");
  ASSERT_NE(App, nullptr);

  Trial Interp{App, FaultConfig::preset(ApproxLevel::Mild), 1, {}};
  Interp.Power = &Env;
  TrialResult A = TrialRunner::runOne(Interp);
  EXPECT_EQ(A.Outcome, resilience::TrialOutcome::PowerFailed);
  EXPECT_EQ(A.QosError, 1.0);
  EXPECT_FALSE(A.Power.Survived);

  Trial Compiled = Interp;
  Compiled.Kernel = &cache().get("sor", ApproxLevel::Mild);
  TrialResult B = TrialRunner::runOne(Compiled);
  EXPECT_EQ(B.Outcome, resilience::TrialOutcome::PowerFailed);
  EXPECT_EQ(B.QosError, 1.0);
  EXPECT_FALSE(B.Power.Survived);
}
