//===- tests/static_rules_test.cpp - Compile-time isolation rules ---------===//
//
// EnerJ's safety guarantees are *static*. In the C++ embedding they are
// enforced by the type system itself, so the tests are static_asserts on
// conversion/overload traits: if any of these starts passing, the library
// has lost its isolation guarantee.
//
//===----------------------------------------------------------------------===//

#include "core/enerj.h"

#include <gtest/gtest.h>

#include <type_traits>

using namespace enerj;

namespace {

/// Detects whether `if (Approx<bool>)` would compile.
template <typename T, typename = void>
struct UsableAsCondition : std::false_type {};
template <typename T>
struct UsableAsCondition<
    T, std::void_t<decltype(static_cast<bool>(std::declval<T>()))>>
    : std::true_type {};

/// Detects whether an ApproxArray can be subscripted with an index type.
template <typename Arr, typename Idx, typename = void>
struct Subscriptable : std::false_type {};
template <typename Arr, typename Idx>
struct Subscriptable<Arr, Idx,
                     std::void_t<decltype(std::declval<Arr &>()
                                              [std::declval<Idx>()])>>
    : std::true_type {};

} // namespace

TEST(StaticRules, NoImplicitApproxToPreciseFlow) {
  // The paper's core rule (Section 2.1): approximate data cannot flow to
  // precise variables without an endorsement.
  static_assert(!std::is_convertible_v<Approx<int32_t>, int32_t>,
                "approx -> precise must not be implicit");
  static_assert(!std::is_convertible_v<Approx<double>, double>);
  static_assert(!std::is_convertible_v<Approx<int32_t>, Precise<int32_t>>);
  static_assert(!std::is_assignable_v<int32_t &, Approx<int32_t>>);
  SUCCEED();
}

TEST(StaticRules, PreciseToApproxFlowIsImplicit) {
  // Subtyping: precise primitives flow into approximate storage freely.
  static_assert(std::is_convertible_v<int32_t, Approx<int32_t>>);
  static_assert(std::is_convertible_v<double, Approx<double>>);
  static_assert(std::is_convertible_v<Precise<int32_t>, Approx<int32_t>>);
  SUCCEED();
}

TEST(StaticRules, ApproxConditionsDoNotCompile) {
  // Section 2.4: no implicit flows through control flow. Approx<bool>
  // is not contextually convertible to bool, so `if (a == b)` on
  // approximate values is rejected at compile time.
  static_assert(!UsableAsCondition<Approx<bool>>::value,
                "approximate conditions must not compile");
  static_assert(!std::is_convertible_v<Approx<bool>, bool>);
  // The endorsed workaround from the paper compiles:
  Approx<int32_t> Val = 5;
  if (endorse(Val == Approx<int32_t>(5)))
    SUCCEED();
  else
    FAIL();
}

TEST(StaticRules, ApproxArraySubscriptsDoNotCompile) {
  // Section 2.6: subscripts must be precise.
  static_assert(Subscriptable<ApproxArray<double>, size_t>::value);
  static_assert(Subscriptable<ApproxArray<double>, int>::value);
  static_assert(
      !Subscriptable<ApproxArray<double>, Approx<int32_t>>::value,
      "approximate subscripts must not compile");
  static_assert(
      !Subscriptable<ApproxArray<double>, Approx<size_t>>::value);
  static_assert(
      !Subscriptable<PreciseArray<double>, Approx<int32_t>>::value);
  SUCCEED();
}

TEST(StaticRules, EndorsedIndexCompiles) {
  ApproxArray<double> A(4, 1.0);
  Approx<int32_t> I = 2;
  // The sanctioned pattern: endorse the index, then subscript.
  EXPECT_EQ(endorse(A.get(static_cast<size_t>(endorse(I)))), 1.0);
}

TEST(StaticRules, TopAcceptsBothPrecisions) {
  static_assert(std::is_constructible_v<Top<int32_t>, int32_t>);
  static_assert(std::is_constructible_v<Top<int32_t>, Approx<int32_t>>);
  static_assert(std::is_constructible_v<Top<int32_t>, Precise<int32_t>>);
  // But nothing flows out implicitly.
  static_assert(!std::is_convertible_v<Top<int32_t>, int32_t>);
  static_assert(!std::is_convertible_v<Top<int32_t>, Approx<int32_t>>);
  SUCCEED();
}

TEST(StaticRules, ComparisonsReturnApproxBool) {
  static_assert(
      std::is_same_v<decltype(std::declval<Approx<int32_t>>() ==
                              std::declval<Approx<int32_t>>()),
                     Approx<bool>>);
  static_assert(
      std::is_same_v<decltype(std::declval<Approx<double>>() <
                              std::declval<Approx<double>>()),
                     Approx<bool>>);
  SUCCEED();
}

TEST(StaticRules, ArithmeticClosesOverApprox) {
  static_assert(
      std::is_same_v<decltype(std::declval<Approx<int32_t>>() +
                              std::declval<Approx<int32_t>>()),
                     Approx<int32_t>>);
  // Mixed precise/approx promotes to approx (Section 2.3's overloading).
  static_assert(std::is_same_v<decltype(std::declval<Approx<double>>() *
                                        std::declval<double>()),
                               Approx<double>>);
  SUCCEED();
}

TEST(StaticRules, ApproxOnlyQualifiesPrimitives) {
  static_assert(std::is_constructible_v<Approx<int32_t>>);
  static_assert(std::is_constructible_v<Approx<float>>);
  static_assert(std::is_constructible_v<Approx<bool>>);
  // Class types go through Approximable<P> instead — Approx<T> rejects
  // non-arithmetic T at compile time (checked by its static_assert; not
  // instantiable here without erroring, which is exactly the point).
  SUCCEED();
}
