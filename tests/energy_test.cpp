//===- tests/energy_test.cpp - Section 5.4 energy-model tests -------------===//

#include "energy/model.h"

#include <gtest/gtest.h>

using namespace enerj;

namespace {

/// A representative FP-heavy workload: ~40% approximate FP, mostly
/// approximate DRAM, half-approximate SRAM.
RunStats fpHeavyStats() {
  RunStats Stats;
  Stats.Ops.PreciseInt = 40000;
  Stats.Ops.ApproxInt = 2000;
  Stats.Ops.PreciseFp = 8000;
  Stats.Ops.ApproxFp = 50000;
  Stats.Storage.SramPrecise = 5e6;
  Stats.Storage.SramApprox = 5e6;
  Stats.Storage.DramPrecise = 2e7;
  Stats.Storage.DramApprox = 8e7;
  return Stats;
}

} // namespace

TEST(EnergyModel, BaselineAtNoneIsOne) {
  RunStats Stats = fpHeavyStats();
  EnergyReport Report =
      computeEnergy(Stats, FaultConfig::preset(ApproxLevel::None));
  EXPECT_DOUBLE_EQ(Report.InstructionFactor, 1.0);
  EXPECT_DOUBLE_EQ(Report.SramFactor, 1.0);
  EXPECT_DOUBLE_EQ(Report.DramFactor, 1.0);
  EXPECT_DOUBLE_EQ(Report.TotalFactor, 1.0);
  EXPECT_DOUBLE_EQ(Report.saved(), 0.0);
}

TEST(EnergyModel, SavingsGrowWithLevel) {
  RunStats Stats = fpHeavyStats();
  double Prev = 0.0;
  for (ApproxLevel Level :
       {ApproxLevel::Mild, ApproxLevel::Medium, ApproxLevel::Aggressive}) {
    EnergyReport Report =
        computeEnergy(Stats, FaultConfig::preset(Level));
    EXPECT_GT(Report.saved(), Prev) << approxLevelName(Level);
    Prev = Report.saved();
  }
}

TEST(EnergyModel, SavingsInPaperRange) {
  // The paper reports 9%-48% total savings across apps and levels; an
  // FP-heavy, highly-approximate app at Aggressive sits near the top.
  RunStats Stats = fpHeavyStats();
  EnergyReport Mild =
      computeEnergy(Stats, FaultConfig::preset(ApproxLevel::Mild));
  EnergyReport Aggr =
      computeEnergy(Stats, FaultConfig::preset(ApproxLevel::Aggressive));
  EXPECT_GT(Mild.saved(), 0.05);
  EXPECT_LT(Aggr.saved(), 0.60);
  EXPECT_GT(Aggr.saved(), 0.20);
}

TEST(EnergyModel, NoApproximationNoSavings) {
  RunStats Stats;
  Stats.Ops.PreciseInt = 100000;
  Stats.Ops.PreciseFp = 100000;
  Stats.Storage.SramPrecise = 1e6;
  Stats.Storage.DramPrecise = 1e6;
  EnergyReport Report =
      computeEnergy(Stats, FaultConfig::preset(ApproxLevel::Aggressive));
  EXPECT_DOUBLE_EQ(Report.TotalFactor, 1.0);
}

TEST(EnergyModel, InstructionFactorFormula) {
  // One approximate integer op at Medium: 22 fetch/decode + 15 * (1-0.22)
  // execute = 33.7 of 37 units.
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium);
  EXPECT_NEAR(instructionEnergyFactor(false, true, C),
              (22.0 + 15.0 * 0.78) / 37.0, 1e-12);
  // One approximate FP op at Medium: 22 + 18 * (1-0.78) of 40.
  EXPECT_NEAR(instructionEnergyFactor(true, true, C),
              (22.0 + 18.0 * 0.22) / 40.0, 1e-12);
  // Precise ops never save.
  EXPECT_DOUBLE_EQ(instructionEnergyFactor(false, false, C), 1.0);
  EXPECT_DOUBLE_EQ(instructionEnergyFactor(true, false, C), 1.0);
}

TEST(EnergyModel, FetchDecodeBoundsInstructionSavings) {
  // Even at 100% execute savings, fetch/decode (22 units) remains:
  // savings per int op can never exceed 15/37.
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  EXPECT_GT(instructionEnergyFactor(false, true, C), 22.0 / 37.0);
  EXPECT_GT(instructionEnergyFactor(true, true, C), 22.0 / 40.0);
}

TEST(EnergyModel, SramFactorScalesWithApproxFraction) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium); // 80% saved.
  RunStats Stats;
  Stats.Ops.PreciseInt = 1;
  Stats.Storage.SramPrecise = 1e6;
  Stats.Storage.SramApprox = 3e6; // 75% approximate.
  EnergyReport Report = computeEnergy(Stats, C);
  EXPECT_NEAR(Report.SramFactor, 1.0 - 0.80 * 0.75, 1e-12);
}

TEST(EnergyModel, DramFactorScalesWithApproxFraction) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive); // 24% saved.
  RunStats Stats;
  Stats.Ops.PreciseInt = 1;
  Stats.Storage.DramPrecise = 1e6;
  Stats.Storage.DramApprox = 1e6; // 50% approximate.
  EnergyReport Report = computeEnergy(Stats, C);
  EXPECT_NEAR(Report.DramFactor, 1.0 - 0.24 * 0.5, 1e-12);
}

TEST(EnergyModel, CpuCombinesInstructionAndSram) {
  RunStats Stats = fpHeavyStats();
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium);
  EnergyReport Report = computeEnergy(Stats, C);
  EXPECT_NEAR(Report.CpuFactor,
              0.65 * Report.InstructionFactor + 0.35 * Report.SramFactor,
              1e-12);
  EXPECT_NEAR(Report.TotalFactor,
              0.55 * Report.CpuFactor + 0.45 * Report.DramFactor, 1e-12);
}

TEST(EnergyModel, MobileSettingWeighsCpuMore) {
  // Section 5.4: mobile memory is only ~25% of power, so DRAM-side
  // savings matter less and CPU-side savings more than in a server.
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium);

  RunStats DramBound;
  DramBound.Ops.PreciseInt = 1;
  DramBound.Storage.DramApprox = 1e6; // 100% approximate DRAM.
  EXPECT_LT(computeEnergy(DramBound, C, PowerSetting::Mobile).saved(),
            computeEnergy(DramBound, C, PowerSetting::Server).saved());

  RunStats CpuBound;
  CpuBound.Ops.ApproxFp = 1000; // All savings on the CPU side.
  CpuBound.Storage.SramApprox = 1e6;
  EXPECT_GT(computeEnergy(CpuBound, C, PowerSetting::Mobile).saved(),
            computeEnergy(CpuBound, C, PowerSetting::Server).saved());
}

TEST(EnergyModel, EmptyStatsAreBaseline) {
  RunStats Stats;
  EnergyReport Report =
      computeEnergy(Stats, FaultConfig::preset(ApproxLevel::Aggressive));
  EXPECT_DOUBLE_EQ(Report.TotalFactor, 1.0);
}

TEST(EnergyModel, FpApproximationSavesMoreThanIntApproximation) {
  // Table 2: FP width reduction saves up to 85% of execute energy vs 30%
  // for integer voltage scaling — the paper's observation that FP-heavy
  // apps have more headroom.
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  double FpSaved = 1.0 - instructionEnergyFactor(true, true, C);
  double IntSaved = 1.0 - instructionEnergyFactor(false, true, C);
  EXPECT_GT(FpSaved, IntSaved);
}

TEST(EnergyModel, DisabledStrategiesContributeNothing) {
  RunStats Stats = fpHeavyStats();
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.EnableSram = false;
  C.EnableDram = false;
  C.EnableFpWidth = false;
  C.EnableTiming = false;
  EnergyReport Report = computeEnergy(Stats, C);
  EXPECT_DOUBLE_EQ(Report.TotalFactor, 1.0);
}
