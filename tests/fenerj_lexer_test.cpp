//===- tests/fenerj_lexer_test.cpp - FEnerJ lexer tests -------------------===//

#include "fenerj/lexer.h"

#include <gtest/gtest.h>

using namespace enerj::fenerj;

namespace {

std::vector<Token> lexOk(std::string_view Source) {
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = lex(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Out;
  for (const Token &T : Tokens)
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(FenerjLexer, EmptyInput) {
  std::vector<Token> Tokens = lexOk("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Eof));
}

TEST(FenerjLexer, Keywords) {
  std::vector<Token> Tokens = lexOk(
      "class extends new this null true false if else while let in "
      "endorse cast int float bool length approx precise");
  std::vector<TokenKind> Expected = {
      TokenKind::KwClass,   TokenKind::KwExtends, TokenKind::KwNew,
      TokenKind::KwThis,    TokenKind::KwNull,    TokenKind::KwTrue,
      TokenKind::KwFalse,   TokenKind::KwIf,      TokenKind::KwElse,
      TokenKind::KwWhile,   TokenKind::KwLet,     TokenKind::KwIn,
      TokenKind::KwEndorse, TokenKind::KwCast,    TokenKind::KwInt,
      TokenKind::KwFloat,   TokenKind::KwBool,    TokenKind::KwLength,
      TokenKind::KwApproxRecv, TokenKind::KwPreciseRecv, TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(FenerjLexer, Annotations) {
  std::vector<Token> Tokens = lexOk("@approx @precise @top @context");
  std::vector<TokenKind> Expected = {TokenKind::KwApprox, TokenKind::KwPrecise,
                                     TokenKind::KwTop, TokenKind::KwContext,
                                     TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
  // The paper's capitalized spelling also works.
  Tokens = lexOk("@Approx @Precise @Top @Context");
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(FenerjLexer, UnknownAnnotationIsError) {
  DiagnosticEngine Diags;
  lex("@wat", Diags);
  EXPECT_TRUE(Diags.has(DiagCode::UnexpectedChar));
}

TEST(FenerjLexer, IntAndFloatLiterals) {
  std::vector<Token> Tokens = lexOk("42 0 3.5 1e3 2.5e-2 7");
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[0].IntValue, 42);
  EXPECT_EQ(Tokens[1].IntValue, 0);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Tokens[2].FloatValue, 3.5);
  EXPECT_DOUBLE_EQ(Tokens[3].FloatValue, 1000.0);
  EXPECT_DOUBLE_EQ(Tokens[4].FloatValue, 0.025);
  EXPECT_EQ(Tokens[5].IntValue, 7);
}

TEST(FenerjLexer, DotAfterIntIsNotFloat) {
  // "a.length" style postfix after an integer: `3.foo` lexes 3 then '.'.
  std::vector<Token> Tokens = lexOk("3.x");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Dot);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(FenerjLexer, Operators) {
  std::vector<Token> Tokens =
      lexOk("+ - * / % == != < <= > >= && || ! = := <:");
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,      TokenKind::Minus,   TokenKind::Star,
      TokenKind::Slash,     TokenKind::Percent, TokenKind::EqEq,
      TokenKind::BangEq,    TokenKind::Less,    TokenKind::LessEq,
      TokenKind::Greater,   TokenKind::GreaterEq, TokenKind::AmpAmp,
      TokenKind::PipePipe,  TokenKind::Bang,    TokenKind::Assign,
      TokenKind::FieldAssign, TokenKind::LessColon, TokenKind::Eof};
  EXPECT_EQ(kinds(Tokens), Expected);
}

TEST(FenerjLexer, Comments) {
  std::vector<Token> Tokens = lexOk(
      "a // line comment\n b /* block\n comment */ c");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
}

TEST(FenerjLexer, UnterminatedBlockComment) {
  DiagnosticEngine Diags;
  lex("a /* never closed", Diags);
  EXPECT_TRUE(Diags.has(DiagCode::UnterminatedLiteral));
}

TEST(FenerjLexer, SourceLocations) {
  std::vector<Token> Tokens = lexOk("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1);
  EXPECT_EQ(Tokens[0].Loc.Column, 1);
  EXPECT_EQ(Tokens[1].Loc.Line, 2);
  EXPECT_EQ(Tokens[1].Loc.Column, 3);
}

TEST(FenerjLexer, StrayCharactersReported) {
  DiagnosticEngine Diags;
  lex("a $ b", Diags);
  EXPECT_TRUE(Diags.has(DiagCode::UnexpectedChar));
  Diags = DiagnosticEngine();
  lex("a & b", Diags);
  EXPECT_TRUE(Diags.has(DiagCode::UnexpectedChar));
  Diags = DiagnosticEngine();
  lex("a : b", Diags);
  EXPECT_TRUE(Diags.has(DiagCode::UnexpectedChar));
}

TEST(FenerjLexer, IdentifiersWithUnderscores) {
  std::vector<Token> Tokens = lexOk("mean_APPROX _private x1");
  EXPECT_EQ(Tokens[0].Text, "mean_APPROX");
  EXPECT_EQ(Tokens[1].Text, "_private");
  EXPECT_EQ(Tokens[2].Text, "x1");
}
