//===- tests/obs_journal_test.cpp - Flight-recorder journal contract ------===//
//
// Unit tests of the trial journal: the digest rendering is canonical
// (pinned bytes), build -> render -> parse round-trips losslessly,
// capture selection follows the documented sampling rule, replay
// reproduces the recorded digest bitwise on both engines, a tampered
// digest is detected, and blame ranks the journaled fault sites by
// forced-precise QoS delta.
//
//===----------------------------------------------------------------------===//

#include "harness/eval.h"
#include "obs/journal.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>

#ifndef ENERJ_FEJ_DIR
#error "ENERJ_FEJ_DIR must point at the examples/fej corpus"
#endif

using namespace enerj;
using namespace enerj::obs;

namespace {

std::string kernelDir() { return std::string(ENERJ_FEJ_DIR) + "/isa"; }

/// One journaling eval grid. Sampling stride 1 captures every trial.
harness::EvalResult journaledGrid(const char *App, ApproxLevel Level,
                                  int Seeds,
                                  harness::ExecMode Exec =
                                      harness::ExecMode::Interp) {
  harness::EvalOptions Options;
  Options.Apps = {apps::findApplication(App)};
  Options.Levels = {Level};
  Options.Seeds = Seeds;
  Options.Journal = true;
  Options.JournalOkSampleEvery = 1;
  Options.Exec = Exec;
  if (Exec == harness::ExecMode::Compiled)
    Options.KernelDir = kernelDir();
  return harness::runEval(Options);
}

} // namespace

TEST(ObsJournal, DigestJsonIsCanonical) {
  JournalDigest D;
  D.Qos = 0.5;
  D.Energy = 0.75;
  D.EffectiveEnergy = 1.5;
  D.Outcome = resilience::TrialOutcome::Degraded;
  D.FinalLevel = ApproxLevel::Mild;
  D.Attempts = 3;
  D.ClockCycles = 42;
  D.PreciseInt = 1;
  D.ApproxInt = 2;
  D.PreciseFp = 3;
  D.ApproxFp = 4;
  D.TimingErrors = 5;
  D.SramPrecise = 6.0;
  D.SramApprox = 7.0;
  D.DramPrecise = 8.0;
  D.DramApprox = 9.0;
  D.PowerLosses = 10;
  D.PowerCheckpoints = 11;
  D.PowerReExecutedOps = 12;
  D.PowerSurvived = false;
  EXPECT_EQ(renderDigestJson(D),
            "{\"qos\":0.5,\"energy\":0.75,\"effectiveEnergy\":1.5,"
            "\"outcome\":\"degraded\",\"finalLevel\":\"mild\","
            "\"attempts\":3,\"clockCycles\":42,"
            "\"ops\":{\"preciseInt\":1,\"approxInt\":2,\"preciseFp\":3,"
            "\"approxFp\":4,\"timingErrors\":5},"
            "\"storage\":{\"sramPrecise\":6,\"sramApprox\":7,"
            "\"dramPrecise\":8,\"dramApprox\":9},"
            "\"power\":{\"losses\":10,\"checkpoints\":11,"
            "\"reExecutedOps\":12,\"survived\":false}}");
}

TEST(ObsJournal, CaptureFollowsTheSamplingRule) {
  // Stride 1: every ok trial is captured. Stride 0: only non-ok trials
  // (none in a plain grid).
  harness::EvalResult All = journaledGrid("montecarlo", ApproxLevel::Mild, 3);
  EXPECT_EQ(All.Journaled.size(), 3u);

  harness::EvalOptions Options;
  Options.Apps = {apps::findApplication("montecarlo")};
  Options.Levels = {ApproxLevel::Mild};
  Options.Seeds = 3;
  Options.Journal = true;
  Options.JournalOkSampleEvery = 0;
  EXPECT_TRUE(harness::runEval(Options).Journaled.empty());

  // The default stride samples seed 1, 9, 17, ... of each cell.
  Options.JournalOkSampleEvery = 8;
  Options.Seeds = 10;
  harness::EvalResult Sampled = harness::runEval(Options);
  ASSERT_EQ(Sampled.Journaled.size(), 2u);
  EXPECT_EQ(Sampled.Journaled[0].WorkloadSeed, 1u);
  EXPECT_EQ(Sampled.Journaled[1].WorkloadSeed, 9u);
}

TEST(ObsJournal, BuildRenderParseRoundTrip) {
  harness::EvalResult Grid = journaledGrid("sor", ApproxLevel::Medium, 2);
  ASSERT_EQ(Grid.Journaled.size(), 2u);
  for (const harness::TrialRecord &Record : Grid.Journaled) {
    Journal J = buildJournal(Grid, Record);
    EXPECT_EQ(J.App, "sor");
    EXPECT_EQ(J.Config.Level, ApproxLevel::Medium);
    EXPECT_FALSE(J.Timeline.empty());
    std::string Text = renderJournalJson(J);

    Journal Parsed;
    std::string Error;
    ASSERT_TRUE(parseJournalJson(Text, &Parsed, &Error)) << Error;
    // Lossless: the reparsed journal renders to the same bytes.
    EXPECT_EQ(renderJournalJson(Parsed), Text);
    EXPECT_EQ(Parsed.WorkloadSeed, Record.WorkloadSeed);
    EXPECT_EQ(Parsed.Config.Seed, Record.Config.Seed);
    EXPECT_EQ(Parsed.Timeline.size(), J.Timeline.size());
    EXPECT_EQ(renderDigestJson(Parsed.Digest), renderDigestJson(J.Digest));
  }
}

TEST(ObsJournal, FileNamesEncodeTheTrialIdentity) {
  harness::EvalResult Grid = journaledGrid("fft", ApproxLevel::Aggressive, 2);
  ASSERT_EQ(Grid.Journaled.size(), 2u);
  EXPECT_EQ(journalFileName(buildJournal(Grid, Grid.Journaled[0])),
            "fft-aggressive-interp-seed1.journal.json");
  EXPECT_EQ(journalFileName(buildJournal(Grid, Grid.Journaled[1])),
            "fft-aggressive-interp-seed2.journal.json");
}

TEST(ObsJournal, WriteJournalsWritesEveryCapturedRecord) {
  harness::EvalResult Grid = journaledGrid("fft", ApproxLevel::Medium, 2);
  std::string Dir = ::testing::TempDir() + "obs_journal_write";
  std::string Cleanup = "rm -rf '" + Dir + "' && mkdir -p '" + Dir + "'";
  ASSERT_EQ(std::system(Cleanup.c_str()), 0);
  std::string Error;
  std::vector<std::string> Paths = writeJournals(Grid, Dir, &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(Paths.size(), 2u);
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << Path;
    std::string Line;
    ASSERT_TRUE(static_cast<bool>(std::getline(In, Line)));
    Journal Parsed;
    EXPECT_TRUE(parseJournalJson(Line, &Parsed, &Error)) << Error;
  }
}

TEST(ObsJournal, ParseRejectsForeignAndMalformedDocuments) {
  Journal J;
  std::string Error;
  EXPECT_FALSE(parseJournalJson("", &J, &Error));
  EXPECT_FALSE(parseJournalJson("{", &J, &Error));
  EXPECT_FALSE(parseJournalJson("[]", &J, &Error));
  EXPECT_FALSE(parseJournalJson("{\"tool\":\"other\",\"version\":1}", &J,
                                &Error));
  EXPECT_FALSE(parseJournalJson(
      "{\"tool\":\"enerj-journal\",\"version\":99}", &J, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);
  // A well-formed header with a missing body is still an error, not a
  // zero-filled journal.
  EXPECT_FALSE(parseJournalJson(
      "{\"tool\":\"enerj-journal\",\"version\":1}", &J, &Error));
}

TEST(ObsJournal, ReplayReproducesTheInterpDigestBitwise) {
  harness::EvalResult Grid = journaledGrid("montecarlo",
                                           ApproxLevel::Aggressive, 2);
  ASSERT_EQ(Grid.Journaled.size(), 2u);
  for (const harness::TrialRecord &Record : Grid.Journaled) {
    Journal J = buildJournal(Grid, Record);
    ReplayResult R = replayJournal(J, kernelDir());
    EXPECT_TRUE(R.Match) << "recorded " << R.RecordedJson << "\nreplayed "
                         << R.ReplayedJson;
  }
}

TEST(ObsJournal, ReplayReproducesTheCompiledDigestBitwise) {
  harness::EvalResult Grid = journaledGrid("fft", ApproxLevel::Medium, 2,
                                           harness::ExecMode::Compiled);
  ASSERT_EQ(Grid.Journaled.size(), 2u);
  for (const harness::TrialRecord &Record : Grid.Journaled) {
    Journal J = buildJournal(Grid, Record);
    EXPECT_EQ(J.Exec, harness::ExecMode::Compiled);
    ReplayResult R = replayJournal(J, kernelDir());
    EXPECT_TRUE(R.Match) << "recorded " << R.RecordedJson << "\nreplayed "
                         << R.ReplayedJson;
  }
}

TEST(ObsJournal, ReplayDetectsATamperedDigest) {
  harness::EvalResult Grid = journaledGrid("fft", ApproxLevel::Medium, 1);
  ASSERT_EQ(Grid.Journaled.size(), 1u);
  Journal J = buildJournal(Grid, Grid.Journaled[0]);
  J.Digest.Qos += 0.125; // Bit-level lie about the recorded outcome.
  ReplayResult R = replayJournal(J, kernelDir());
  EXPECT_FALSE(R.Match);
  EXPECT_NE(R.RecordedJson, R.ReplayedJson);
}

TEST(ObsJournal, ReplayThrowsOnUnreconstructableProvenance) {
  harness::EvalResult Grid = journaledGrid("fft", ApproxLevel::Medium, 1);
  ASSERT_EQ(Grid.Journaled.size(), 1u);
  Journal J = buildJournal(Grid, Grid.Journaled[0]);
  J.App = "nosuchapp";
  EXPECT_THROW(replayJournal(J, kernelDir()), std::runtime_error);
}

TEST(ObsJournal, BlameRanksFaultSitesByQosDamage) {
  // sor at aggressive faults in its region(s); every distinct journaled
  // fault site gets a forced-precise counterfactual row, sorted by the
  // QoS delta (damage) descending.
  harness::EvalResult Grid = journaledGrid("sor", ApproxLevel::Aggressive, 1);
  ASSERT_EQ(Grid.Journaled.size(), 1u);
  Journal J = buildJournal(Grid, Grid.Journaled[0]);
  std::vector<BlameRow> Rows = blameJournal(J);
  ASSERT_FALSE(Rows.empty());
  for (size_t I = 0; I < Rows.size(); ++I) {
    EXPECT_FALSE(Rows[I].Region.empty());
    EXPECT_GT(Rows[I].Faults, 0u);
    if (I) {
      EXPECT_GE(Rows[I - 1].QosDelta, Rows[I].QosDelta);
    }
  }
  // The table renderer mentions every ranked region.
  std::string Table = renderBlameText(J, Rows);
  for (const BlameRow &Row : Rows)
    EXPECT_NE(Table.find(Row.Region), std::string::npos);
}

TEST(ObsJournal, BlameIsInterpreterOnly) {
  harness::EvalResult Grid = journaledGrid("fft", ApproxLevel::Medium, 1,
                                           harness::ExecMode::Compiled);
  ASSERT_EQ(Grid.Journaled.size(), 1u);
  Journal J = buildJournal(Grid, Grid.Journaled[0]);
  EXPECT_THROW(blameJournal(J), std::runtime_error);
}
