//===- tests/fenerj_printer_test.cpp - Pretty-printer round trips ---------===//

#include "fenerj/fenerj.h"
#include "fenerj/printer.h"

#include <gtest/gtest.h>

using namespace enerj::fenerj;

namespace {

/// Parses, prints, re-parses, and checks that both programs type-check
/// and evaluate to the same precise projection.
void roundTrip(std::string_view Source) {
  DiagnosticEngine Diags1;
  ClassTable Table1;
  std::optional<Program> First = compile(Source, Table1, Diags1);
  ASSERT_TRUE(First.has_value()) << Diags1.str();

  std::string Printed = printProgram(*First);
  DiagnosticEngine Diags2;
  ClassTable Table2;
  std::optional<Program> Second = compile(Printed, Table2, Diags2);
  ASSERT_TRUE(Second.has_value())
      << "printed program does not re-compile:\n" << Diags2.str()
      << "\n--- printed ---\n" << Printed;

  Interpreter RunFirst(*First, Table1, {});
  Interpreter RunSecond(*Second, Table2, {});
  EvalResult ResultFirst = RunFirst.run();
  EvalResult ResultSecond = RunSecond.run();
  EXPECT_EQ(ResultFirst.Trapped, ResultSecond.Trapped);
  EXPECT_EQ(RunFirst.preciseProjection(ResultFirst),
            RunSecond.preciseProjection(ResultSecond))
      << "--- printed ---\n" << Printed;

  // Printing is a fixed point after one round (normal form).
  EXPECT_EQ(printProgram(*Second), Printed);
}

} // namespace

TEST(FenerjPrinter, Types) {
  EXPECT_EQ(printType(Type::makePrim(Qual::Approx, BaseKind::Int)),
            "@approx int");
  EXPECT_EQ(printType(Type::makePrim(Qual::Precise, BaseKind::Float)),
            "@precise float");
  EXPECT_EQ(printType(Type::makeArray(Qual::Context, BaseKind::Bool)),
            "@context bool[]");
  EXPECT_EQ(printType(Type::makeClass(Qual::Top, "Vec")), "@top Vec");
}

TEST(FenerjPrinter, SimpleExpressions) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = parseProgram("1 + 2 * 3", Diags);
  ASSERT_TRUE(Prog.has_value());
  EXPECT_EQ(printExpr(*Prog->Main), "(1 + (2 * 3))");
}

TEST(FenerjPrinter, RoundTripArithmetic) {
  roundTrip("{ let int x = 1 + 2 * 3 - 4 / 2; x % 3; }");
  roundTrip("{ 1.5 * 2.0 + 0.25; }");
  roundTrip("{ let float f = 1.0; f; }"); // Integral-valued float literal.
  roundTrip("{ -5 + (-3); }");
}

TEST(FenerjPrinter, RoundTripControlFlow) {
  roundTrip(R"({
    let int i = 0;
    let int sum = 0;
    while (i < 10) { sum = sum + i; i = i + 1; };
    if (sum > 20) { sum; } else { 0 - sum; };
  })");
}

TEST(FenerjPrinter, RoundTripClasses) {
  roundTrip(R"(
    class IntPair {
      @context int x;
      @context int y;
      @approx int numAdditions;
      int addToBoth(@context int amount) {
        this.x := this.x + amount;
        this.y := this.y + amount;
        this.numAdditions := this.numAdditions + 1;
        0;
      }
    }
    {
      let @precise IntPair p = new @precise IntPair();
      p.addToBoth(3);
      p.x + p.y;
    }
  )");
}

TEST(FenerjPrinter, RoundTripOverloads) {
  roundTrip(R"(
    class S {
      @context float v;
      float get() precise { this.v; }
      @approx float get() approx { this.v; }
    }
    {
      let @precise S s = new @precise S();
      s.get();
    }
  )");
}

TEST(FenerjPrinter, RoundTripArraysEndorseCast) {
  roundTrip(R"({
    let @approx float[] a = new @approx float[8];
    let int i = 0;
    while (i < a.length) { a[i] := 0.5; i = i + 1; };
    let @approx float sum = a[0] + a[7];
    let float out = endorse(sum);
    cast<int>(out);
  })");
}

TEST(FenerjPrinter, RoundTripInheritanceAndNull) {
  roundTrip(R"(
    class A { int f; }
    class B extends A { @approx int g; }
    {
      let A a = new B();
      let B b = cast<B>(a);
      let A zero = null;
      if (zero == null) { b.f; } else { 1; };
    }
  )");
}

TEST(FenerjPrinter, RoundTripGeneratedPrograms) {
  // Every random well-typed program round-trips.
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    GeneratorOptions Options;
    Options.Seed = Seed;
    std::string Source = generateProgram(Options);
    SCOPED_TRACE("generator seed " + std::to_string(Seed));
    roundTrip(Source);
  }
}
