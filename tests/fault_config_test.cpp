//===- tests/fault_config_test.cpp - Table 2 configuration tests ----------===//

#include "fault/config.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace enerj;

TEST(FaultConfig, Table2MediumValues) {
  // All Medium-level values come straight from the literature (Table 2).
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium);
  EXPECT_DOUBLE_EQ(C.dramFlipPerSecond(), 1e-5);
  EXPECT_NEAR(C.sramReadUpset(), std::pow(10.0, -7.4), 1e-12);
  EXPECT_NEAR(C.sramWriteFailure(), std::pow(10.0, -4.94), 1e-10);
  EXPECT_EQ(C.floatMantissaBits(), 8u);
  EXPECT_EQ(C.doubleMantissaBits(), 16u);
  EXPECT_DOUBLE_EQ(C.timingErrorProbability(), 1e-4);
  EXPECT_DOUBLE_EQ(C.dramPowerSaved(), 0.22);
  EXPECT_DOUBLE_EQ(C.sramPowerSaved(), 0.80);
  EXPECT_DOUBLE_EQ(C.fpEnergySaved(), 0.78);
  EXPECT_DOUBLE_EQ(C.aluEnergySaved(), 0.22);
}

TEST(FaultConfig, Table2MildAndAggressive) {
  FaultConfig Mild = FaultConfig::preset(ApproxLevel::Mild);
  FaultConfig Aggr = FaultConfig::preset(ApproxLevel::Aggressive);
  EXPECT_DOUBLE_EQ(Mild.dramFlipPerSecond(), 1e-9);
  EXPECT_DOUBLE_EQ(Aggr.dramFlipPerSecond(), 1e-3);
  EXPECT_EQ(Mild.floatMantissaBits(), 16u);
  EXPECT_EQ(Aggr.floatMantissaBits(), 4u);
  EXPECT_EQ(Mild.doubleMantissaBits(), 32u);
  EXPECT_EQ(Aggr.doubleMantissaBits(), 8u);
  EXPECT_DOUBLE_EQ(Mild.timingErrorProbability(), 1e-6);
  EXPECT_DOUBLE_EQ(Aggr.timingErrorProbability(), 1e-2);
  EXPECT_DOUBLE_EQ(Mild.sramPowerSaved(), 0.70);
  EXPECT_DOUBLE_EQ(Aggr.sramPowerSaved(), 0.90);
}

TEST(FaultConfig, NoneLevelIsFullyPrecise) {
  // Level None: the hardware executes approximate instructions precisely
  // and saves no energy (the paper's backward-compatibility execution).
  FaultConfig C = FaultConfig::preset(ApproxLevel::None);
  EXPECT_EQ(C.dramFlipPerSecond(), 0.0);
  EXPECT_EQ(C.sramReadUpset(), 0.0);
  EXPECT_EQ(C.sramWriteFailure(), 0.0);
  EXPECT_EQ(C.floatMantissaBits(), 23u);
  EXPECT_EQ(C.doubleMantissaBits(), 52u);
  EXPECT_EQ(C.timingErrorProbability(), 0.0);
  EXPECT_EQ(C.dramPowerSaved(), 0.0);
  EXPECT_EQ(C.sramPowerSaved(), 0.0);
  EXPECT_EQ(C.fpEnergySaved(), 0.0);
  EXPECT_EQ(C.aluEnergySaved(), 0.0);
}

TEST(FaultConfig, DisablingAStrategyZeroesItsEffects) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.EnableDram = false;
  EXPECT_EQ(C.dramFlipPerSecond(), 0.0);
  EXPECT_EQ(C.dramPowerSaved(), 0.0);
  EXPECT_GT(C.sramReadUpset(), 0.0);

  C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.EnableSram = false;
  EXPECT_EQ(C.sramReadUpset(), 0.0);
  EXPECT_EQ(C.sramWriteFailure(), 0.0);
  EXPECT_EQ(C.sramPowerSaved(), 0.0);

  C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.EnableFpWidth = false;
  EXPECT_EQ(C.floatMantissaBits(), 23u);
  EXPECT_EQ(C.doubleMantissaBits(), 52u);
  EXPECT_EQ(C.fpEnergySaved(), 0.0);

  C = FaultConfig::preset(ApproxLevel::Aggressive);
  C.EnableTiming = false;
  EXPECT_EQ(C.timingErrorProbability(), 0.0);
  EXPECT_EQ(C.aluEnergySaved(), 0.0);
}

TEST(FaultConfig, ErrorRatesGrowWithAggressiveness) {
  FaultConfig Mild = FaultConfig::preset(ApproxLevel::Mild);
  FaultConfig Med = FaultConfig::preset(ApproxLevel::Medium);
  FaultConfig Aggr = FaultConfig::preset(ApproxLevel::Aggressive);
  EXPECT_LT(Mild.dramFlipPerSecond(), Med.dramFlipPerSecond());
  EXPECT_LT(Med.dramFlipPerSecond(), Aggr.dramFlipPerSecond());
  EXPECT_LT(Mild.sramReadUpset(), Med.sramReadUpset());
  EXPECT_LT(Med.sramReadUpset(), Aggr.sramReadUpset());
  EXPECT_LT(Mild.timingErrorProbability(), Med.timingErrorProbability());
  EXPECT_LT(Med.timingErrorProbability(), Aggr.timingErrorProbability());
  EXPECT_GT(Mild.floatMantissaBits(), Med.floatMantissaBits());
  EXPECT_GT(Med.floatMantissaBits(), Aggr.floatMantissaBits());
}

TEST(FaultConfig, SavingsGrowWithAggressiveness) {
  FaultConfig Mild = FaultConfig::preset(ApproxLevel::Mild);
  FaultConfig Med = FaultConfig::preset(ApproxLevel::Medium);
  FaultConfig Aggr = FaultConfig::preset(ApproxLevel::Aggressive);
  EXPECT_LT(Mild.dramPowerSaved(), Med.dramPowerSaved());
  EXPECT_LT(Med.dramPowerSaved(), Aggr.dramPowerSaved());
  EXPECT_LT(Mild.sramPowerSaved(), Med.sramPowerSaved());
  EXPECT_LT(Med.sramPowerSaved(), Aggr.sramPowerSaved());
  EXPECT_LT(Mild.fpEnergySaved(), Med.fpEnergySaved());
  EXPECT_LT(Med.fpEnergySaved(), Aggr.fpEnergySaved());
  EXPECT_LT(Mild.aluEnergySaved(), Med.aluEnergySaved());
  EXPECT_LT(Med.aluEnergySaved(), Aggr.aluEnergySaved());
}

TEST(FaultConfig, Describe) {
  FaultConfig C = FaultConfig::preset(ApproxLevel::Medium);
  EXPECT_EQ(C.describe(), "medium/random");
  C.Mode = ErrorMode::SingleBitFlip;
  C.EnableDram = false;
  EXPECT_EQ(C.describe(), "medium/bitflip [-SFT]");
}

TEST(FaultConfig, Names) {
  EXPECT_STREQ(approxLevelName(ApproxLevel::None), "none");
  EXPECT_STREQ(approxLevelName(ApproxLevel::Mild), "mild");
  EXPECT_STREQ(approxLevelName(ApproxLevel::Medium), "medium");
  EXPECT_STREQ(approxLevelName(ApproxLevel::Aggressive), "aggressive");
  EXPECT_STREQ(errorModeName(ErrorMode::RandomValue), "random");
  EXPECT_STREQ(errorModeName(ErrorMode::SingleBitFlip), "bitflip");
  EXPECT_STREQ(errorModeName(ErrorMode::LastValue), "lastvalue");
}
