//===- tests/rng_test.cpp - Deterministic RNG tests -----------------------===//

#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

using namespace enerj;

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng A(0);
  // Must not get stuck in the all-zero state.
  uint64_t X = A.next(), Y = A.next();
  EXPECT_TRUE(X != 0 || Y != 0);
  EXPECT_NE(X, Y);
}

TEST(Rng, NextBelowInRange) {
  Rng R(3);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound) << "bound " << Bound;
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng R(5);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng R(13);
  double Sum = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Sum += R.nextDouble();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng R(17);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.nextBernoulli(0.0));
    EXPECT_FALSE(R.nextBernoulli(-1.0));
    EXPECT_TRUE(R.nextBernoulli(1.0));
    EXPECT_TRUE(R.nextBernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng R(19);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Hits += R.nextBernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.25, 0.01);
}

TEST(Rng, NextInRangeBounds) {
  Rng R(23);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
  // Degenerate range.
  EXPECT_EQ(R.nextInRange(9, 9), 9);
}

TEST(Rng, BinomialEdgeCases) {
  Rng R(29);
  EXPECT_EQ(R.nextBinomial(0, 0.5), 0u);
  EXPECT_EQ(R.nextBinomial(100, 0.0), 0u);
  EXPECT_EQ(R.nextBinomial(100, 1.0), 100u);
}

TEST(Rng, BinomialMeanSmallP) {
  // The geometric-gap path: mean of Binomial(64, 1e-3) over many draws.
  Rng R(31);
  const int N = 200000;
  uint64_t Total = 0;
  for (int I = 0; I < N; ++I)
    Total += R.nextBinomial(64, 1e-3);
  double Mean = static_cast<double>(Total) / N;
  EXPECT_NEAR(Mean, 64 * 1e-3, 0.002);
}

TEST(Rng, BinomialNeverExceedsN) {
  Rng R(37);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LE(R.nextBinomial(8, 0.9), 8u);
}

TEST(Rng, GaussianMoments) {
  Rng R(41);
  const int N = 200000;
  double Sum = 0, SumSq = 0;
  for (int I = 0; I < N; ++I) {
    double G = R.nextGaussian();
    Sum += G;
    SumSq += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.02);
  EXPECT_NEAR(SumSq / N, 1.0, 0.03);
}

TEST(Rng, SplitProducesDecorrelatedStreams) {
  Rng Parent(43);
  Rng A = Parent.split(1);
  Rng B = Parent.split(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng P1(99), P2(99);
  Rng A = P1.split(7);
  Rng B = P2.split(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}
