//===- tests/cli_eval_test.cpp - fenerj_tool eval CLI contract ------------===//
//
// Black-box tests of the eval subcommand's argument validation: every
// malformed or unknown argument must produce a clear diagnostic and a
// nonzero exit, never a silent fallback (historically `--apps ""` ran
// the full nine-app grid and `--seeds 5x` parsed as 5). The binary path
// comes from CMake via ENERJ_FENERJ_TOOL.
//
//===----------------------------------------------------------------------===//

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#ifndef ENERJ_FENERJ_TOOL
#error "ENERJ_FENERJ_TOOL must point at the fenerj_tool binary"
#endif

namespace {

/// Runs the tool with the given argument string; returns its exit code
/// and captures combined stdout+stderr into Output.
int runTool(const std::string &Args, std::string &Output) {
  std::string Command =
      std::string("\"") + ENERJ_FENERJ_TOOL + "\" " + Args + " 2>&1";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return -1;
  Output.clear();
  std::array<char, 4096> Buffer;
  size_t Read;
  while ((Read = fread(Buffer.data(), 1, Buffer.size(), Pipe)) > 0)
    Output.append(Buffer.data(), Read);
  int Status = pclose(Pipe);
  if (Status == -1)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

int runTool(const std::string &Args) {
  std::string Discard;
  return runTool(Args, Discard);
}

/// Like runTool, but captures ONLY stdout (stderr to /dev/null) — for
/// pinning that cosmetic stderr channels never leak into the document.
int runToolStdout(const std::string &Args, std::string &Output) {
  std::string Command = std::string("\"") + ENERJ_FENERJ_TOOL + "\" " +
                        Args + " 2>/dev/null";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return -1;
  Output.clear();
  std::array<char, 4096> Buffer;
  size_t Read;
  while ((Read = fread(Buffer.data(), 1, Buffer.size(), Pipe)) > 0)
    Output.append(Buffer.data(), Read);
  int Status = pclose(Pipe);
  if (Status == -1)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

} // namespace

TEST(CliEval, RejectsUnknownApp) {
  std::string Output;
  EXPECT_EQ(runTool("eval --apps nosuchapp --seeds 1", Output), 2);
  EXPECT_NE(Output.find("nosuchapp"), std::string::npos);
}

TEST(CliEval, RejectsEmptyAppList) {
  // Historically `--apps ""` fell through to the full grid.
  std::string Output;
  EXPECT_EQ(runTool("eval --apps \"\" --seeds 1", Output), 2);
  EXPECT_NE(Output.find("--apps"), std::string::npos);
}

TEST(CliEval, RejectsUnknownLevel) {
  std::string Output;
  EXPECT_EQ(runTool("eval --levels extreme --seeds 1", Output), 2);
  EXPECT_NE(Output.find("extreme"), std::string::npos);
}

TEST(CliEval, RejectsEmptyLevelList) {
  EXPECT_EQ(runTool("eval --levels \"\" --seeds 1"), 2);
}

TEST(CliEval, RejectsMalformedSeeds) {
  EXPECT_EQ(runTool("eval --seeds abc"), 2);
  EXPECT_EQ(runTool("eval --seeds 5x"), 2); // strtol would accept this.
  EXPECT_EQ(runTool("eval --seeds 0"), 2);
  EXPECT_EQ(runTool("eval --seeds -3"), 2);
  EXPECT_EQ(runTool("eval --seeds"), 2); // Missing value.
}

TEST(CliEval, RejectsMalformedThreads) {
  EXPECT_EQ(runTool("eval --seeds 1 --threads x"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --threads -1"), 2);
}

TEST(CliEval, RejectsMalformedPolicyFlags) {
  EXPECT_EQ(runTool("eval --seeds 1 --slo 1.5"), 2);  // Out of [0, 1].
  EXPECT_EQ(runTool("eval --seeds 1 --slo abc"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --slo nan"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --max-retries -1"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --op-budget 0"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --op-budget -5"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --output-bound -1"), 2);
}

TEST(CliEval, RejectsUnknownFlag) {
  std::string Output;
  EXPECT_EQ(runTool("eval --frobnicate", Output), 2);
  EXPECT_NE(Output.find("frobnicate"), std::string::npos);
}

TEST(CliEval, SmallGridSucceedsWithSchemaV2) {
  std::string Output;
  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 --json",
                    Output),
            0);
  EXPECT_NE(Output.find("\"version\":2"), std::string::npos);
  EXPECT_NE(Output.find("\"enabled\":false"), std::string::npos);
  EXPECT_NE(Output.find("\"outcomes\""), std::string::npos);
}

TEST(CliEval, MetricsFlagBumpsToSchemaV3) {
  // --metrics opts into the per-cell telemetry block and the version
  // bump; the default grid stays v2 with no "metrics" key anywhere.
  std::string Output;
  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 "
                    "--metrics --json",
                    Output),
            0);
  EXPECT_NE(Output.find("\"version\":3"), std::string::npos);
  EXPECT_NE(Output.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(Output.find("\"sites\":["), std::string::npos);

  std::string Plain;
  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 --json",
                    Plain),
            0);
  EXPECT_EQ(Plain.find("\"metrics\""), std::string::npos);
}

TEST(CliEval, RejectsUnknownExecMode) {
  std::string Output;
  EXPECT_EQ(runTool("eval --seeds 1 --exec-mode turbo", Output), 2);
  EXPECT_NE(Output.find("turbo"), std::string::npos);
  EXPECT_EQ(runTool("eval --seeds 1 --exec-mode \"\""), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --exec-mode"), 2); // Missing value.
}

TEST(CliEval, AcceptsCompiledModeWithPolicy) {
  // PR 8 lifted the historical usage error: the compiled path now runs
  // the full retry/degradation recovery loop over cached kernels, so a
  // policy-armed compiled eval is an ordinary grid.
  std::string Output;
  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 "
                    "--exec-mode compiled --slo 0.1 --json",
                    Output),
            0);
  EXPECT_NE(Output.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(Output.find("\"execMode\":\"compiled\""), std::string::npos);
}

TEST(CliEval, ExecModeFlagBumpsToSchemaV4) {
  // Either value of --exec-mode opts into the version-4 echo; the
  // flagless grid stays v2 with no "execMode" key anywhere.
  std::string Output;
  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 "
                    "--exec-mode compiled --json",
                    Output),
            0);
  EXPECT_NE(Output.find("\"version\":4"), std::string::npos);
  EXPECT_NE(Output.find("\"execMode\":\"compiled\""), std::string::npos);

  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 "
                    "--exec-mode interp --json",
                    Output),
            0);
  EXPECT_NE(Output.find("\"version\":4"), std::string::npos);
  EXPECT_NE(Output.find("\"execMode\":\"interp\""), std::string::npos);

  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 --json",
                    Output),
            0);
  EXPECT_EQ(Output.find("\"execMode\""), std::string::npos);
}

TEST(CliEval, CompiledCellsAreIndependentOfGridShape) {
  // Per-cell program caching must never leak across (app, level) cells:
  // each cell of a multi-cell compiled grid serializes exactly as it
  // does when evaluated alone.
  std::string Grid;
  ASSERT_EQ(runTool("eval --apps montecarlo,fft --levels mild,aggressive "
                    "--seeds 2 --exec-mode compiled --json",
                    Grid),
            0);
  for (const char *Apps : {"montecarlo", "fft"}) {
    for (const char *Level : {"mild", "aggressive"}) {
      SCOPED_TRACE(std::string(Apps) + "/" + Level);
      std::string Solo;
      ASSERT_EQ(runTool(std::string("eval --apps ") + Apps + " --levels " +
                            Level + " --seeds 2 --exec-mode compiled --json",
                        Solo),
                0);
      // The solo cell body: everything inside {"level":...} for this
      // level. Find the same cell in the grid document and compare.
      std::string Key = std::string("{\"level\":\"") + Level + "\"";
      size_t SoloAt = Solo.find(Key);
      ASSERT_NE(SoloAt, std::string::npos);
      size_t SoloEnd = Solo.find("}]}", SoloAt);
      ASSERT_NE(SoloEnd, std::string::npos);
      std::string CellBody = Solo.substr(SoloAt, SoloEnd - SoloAt);
      size_t AppAt = Grid.find(std::string("\"name\":\"") + Apps + "\"");
      ASSERT_NE(AppAt, std::string::npos);
      EXPECT_NE(Grid.find(CellBody, AppAt), std::string::npos);
    }
  }
}

TEST(CliEval, RejectsMalformedPowerFlags) {
  std::string Output;
  EXPECT_EQ(runTool("eval --seeds 1 --power-trace nosuchpreset", Output), 2);
  EXPECT_NE(Output.find("unknown power trace preset 'nosuchpreset'"),
            std::string::npos);
  EXPECT_EQ(runTool("eval --seeds 1 --power-trace steady:abc"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --power-trace brownout:48", Output), 2);
  EXPECT_NE(Output.find("brownout takes zero or two knobs"),
            std::string::npos);
  EXPECT_EQ(runTool("eval --seeds 1 --power-trace"), 2); // Missing value.

  EXPECT_EQ(runTool("eval --seeds 1 --power-trace steady "
                    "--checkpoint periodic:0",
                    Output),
            2);
  EXPECT_NE(Output.find("malformed checkpoint interval '0'"),
            std::string::npos);
  EXPECT_EQ(runTool("eval --seeds 1 --power-trace steady "
                    "--checkpoint sometimes"),
            2);
  EXPECT_EQ(runTool("eval --seeds 1 --power-trace steady --checkpoint"), 2);
}

TEST(CliEval, RejectsMalformedTraceFile) {
  // A path that exists but does not parse is a file error with the line
  // number, never a silent preset fallback.
  std::string Path = ::testing::TempDir() + "cli_eval_bad.trace";
  {
    FILE *Out = fopen(Path.c_str(), "w");
    ASSERT_NE(Out, nullptr);
    fputs("bogus 48\n", Out);
    fclose(Out);
  }
  std::string Output;
  EXPECT_EQ(runTool("eval --seeds 1 --power-trace " + Path, Output), 2);
  EXPECT_NE(Output.find(":1: malformed tick count 'bogus'"),
            std::string::npos);
  remove(Path.c_str());
}

TEST(CliEval, RejectsCheckpointWithoutPowerTrace) {
  // A checkpoint policy is part of a power environment; alone it would
  // silently do nothing.
  std::string Output;
  EXPECT_EQ(runTool("eval --seeds 1 --checkpoint periodic:1000", Output), 2);
  EXPECT_NE(Output.find("--checkpoint requires --power-trace"),
            std::string::npos);
}

TEST(CliEval, PowerTraceFlagBumpsToSchemaV5) {
  // --power-trace opts into the version-5 document: the "power" echo
  // after "seeds", the "powerFailed" outcome, and the per-cell power
  // block. The flagless grid stays v2 with no power key anywhere.
  std::string Output;
  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 "
                    "--power-trace steady --json",
                    Output),
            0);
  EXPECT_NE(Output.find("\"version\":5"), std::string::npos);
  EXPECT_NE(Output.find("\"power\":{\"trace\":\"steady\","
                        "\"checkpoint\":\"none\"}"),
            std::string::npos);
  EXPECT_NE(Output.find("\"powerFailed\":0"), std::string::npos);
  EXPECT_NE(Output.find("\"losses\":"), std::string::npos);
  EXPECT_NE(Output.find("\"survivalRate\":"), std::string::npos);

  std::string Plain;
  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 --json",
                    Plain),
            0);
  EXPECT_EQ(Plain.find("\"power\""), std::string::npos);
  EXPECT_EQ(Plain.find("\"powerFailed\""), std::string::npos);
}

TEST(CliEval, PowerTraceAcceptsTheCommittedCorpus) {
  // The committed trace files are first-class: passing a path loads the
  // file and echoes it as the trace name.
  std::string Path = std::string(ENERJ_POWER_DIR) + "/brownout.trace";
  std::string Output;
  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 "
                    "--power-trace " +
                        Path + " --checkpoint periodic:2000 --json",
                    Output),
            0);
  EXPECT_NE(Output.find("\"version\":5"), std::string::npos);
  EXPECT_NE(Output.find(Path), std::string::npos);
  EXPECT_NE(Output.find("\"checkpoint\":\"periodic:2000\""),
            std::string::npos);
}

TEST(CliEval, ProgressNeverTouchesStdout) {
  // The heartbeat is stderr-only cosmetics: the eval JSON on stdout is
  // byte-identical with the flag on or off, and the heartbeat itself
  // lands on stderr.
  const std::string Grid =
      "eval --apps montecarlo,fft --levels mild --seeds 3 --json";
  std::string Plain, WithProgress;
  ASSERT_EQ(runToolStdout(Grid, Plain), 0);
  ASSERT_EQ(runToolStdout(Grid + " --progress", WithProgress), 0);
  EXPECT_EQ(Plain, WithProgress);

  std::string Merged;
  ASSERT_EQ(runTool(Grid + " --progress", Merged), 0);
  EXPECT_NE(Merged.find("[eval]"), std::string::npos);
  EXPECT_EQ(WithProgress.find("[eval]"), std::string::npos);
}

TEST(CliEval, JournalDirCapturesReplayableJournals) {
  std::string Dir = ::testing::TempDir() + "cli_eval_journals";
  std::string Setup = "rm -rf '" + Dir + "'";
  ASSERT_EQ(std::system(Setup.c_str()), 0);
  // Journaling must not change the document on stdout either.
  const std::string Grid =
      "eval --apps montecarlo --levels mild --seeds 2 --json";
  std::string Plain, Journaled;
  ASSERT_EQ(runToolStdout(Grid, Plain), 0);
  ASSERT_EQ(runToolStdout(Grid + " --journal-dir " + Dir +
                              " --journal-sample 1",
                          Journaled),
            0);
  EXPECT_EQ(Plain, Journaled);

  // Both seeds captured; each replays with exit 0.
  for (const char *Name : {"montecarlo-mild-interp-seed1.journal.json",
                           "montecarlo-mild-interp-seed2.journal.json"}) {
    std::string Output;
    EXPECT_EQ(runTool("replay " + Dir + "/" + Name, Output), 0);
    EXPECT_NE(Output.find("replay: match"), std::string::npos);
  }
  std::string Teardown = "rm -rf '" + Dir + "'";
  EXPECT_EQ(std::system(Teardown.c_str()), 0);
}

TEST(CliEval, RejectsMalformedJournalAndLedgerFlags) {
  EXPECT_EQ(runTool("eval --seeds 1 --journal-dir"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --journal-sample abc"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --journal-sample -1"), 2);
  EXPECT_EQ(runTool("eval --seeds 1 --ledger"), 2);
}

TEST(CliEval, LedgerAppendsOneLinePerInvocation) {
  std::string Path = ::testing::TempDir() + "cli_eval_ledger.jsonl";
  std::remove(Path.c_str());
  const std::string Grid =
      "eval --apps montecarlo --levels mild --seeds 2 --ledger " + Path;
  ASSERT_EQ(runTool(Grid), 0);
  ASSERT_EQ(runTool(Grid), 0);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  std::vector<std::string> Digests;
  while (std::getline(In, Line)) {
    EXPECT_EQ(Line.compare(0, 22, "{\"tool\":\"enerj-ledger\""), 0);
    size_t At = Line.find("\"gridDigest\":\"");
    ASSERT_NE(At, std::string::npos);
    Digests.push_back(Line.substr(At, 33));
  }
  ASSERT_EQ(Digests.size(), 2u);
  // The deterministic grid digest repeats across identical reruns.
  EXPECT_EQ(Digests[0], Digests[1]);
  std::remove(Path.c_str());
}

TEST(CliEval, PolicyFlagsReachTheReport) {
  std::string Output;
  EXPECT_EQ(runTool("eval --apps montecarlo --levels mild --seeds 1 "
                    "--slo 1.0 --max-retries 2 --op-budget 100000000 --json",
                    Output),
            0);
  EXPECT_NE(Output.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(Output.find("\"maxRetries\":2"), std::string::npos);
  EXPECT_NE(Output.find("\"opBudget\":100000000"), std::string::npos);
}
