//===- tests/layout_test.cpp - Section 4.1 layout tests -------------------===//

#include "arch/layout.h"

#include <gtest/gtest.h>

using namespace enerj;

TEST(Layout, AllPreciseObjectHasNoApproxBytes) {
  std::vector<FieldDecl> Fields = {
      {"a", 4, false}, {"b", 8, false}, {"c", 4, false}};
  LayoutResult L = layoutObject(Fields);
  EXPECT_EQ(L.ApproxBytes, 0u);
  EXPECT_EQ(L.PreciseBytes, L.TotalBytes);
  for (bool Approx : L.LineIsApprox)
    EXPECT_FALSE(Approx);
}

TEST(Layout, PreciseFieldsComeFirst) {
  std::vector<FieldDecl> Fields = {
      {"x", 4, true}, {"i", 4, false}, {"y", 4, true}, {"j", 4, false}};
  LayoutResult L = layoutObject(Fields);
  // Precise fields (after the 8-byte header) precede approximate ones.
  uint64_t MaxPreciseEnd = 0, MinApproxStart = UINT64_MAX;
  for (const FieldPlacement &P : L.Fields) {
    if (P.DeclaredApprox)
      MinApproxStart = std::min(MinApproxStart, P.Offset);
    else
      MaxPreciseEnd = std::max(MaxPreciseEnd, P.Offset + P.Bytes);
  }
  EXPECT_LE(MaxPreciseEnd, MinApproxStart);
}

TEST(Layout, ApproxFieldsOnTrailingPreciseLineStayPrecise) {
  // Header (8) + one precise int (4) occupy line 0; a small approx field
  // lands on the same line and must be stored precisely.
  std::vector<FieldDecl> Fields = {{"i", 4, false}, {"x", 4, true}};
  LayoutResult L = layoutObject(Fields);
  EXPECT_EQ(L.ApproxBytes, 0u);
  ASSERT_EQ(L.Fields.size(), 2u);
  for (const FieldPlacement &P : L.Fields)
    if (P.DeclaredApprox) {
      EXPECT_FALSE(P.StoredApprox);
    }
}

TEST(Layout, LargeApproxFieldsSpillToApproxLines) {
  // 8B header + 4B precise = 12B precise; 200B of approx data. Line 0
  // (64B) is precise; the remaining bytes are approximate.
  std::vector<FieldDecl> Fields;
  Fields.push_back({"i", 4, false});
  for (int I = 0; I < 25; ++I)
    Fields.push_back({"a" + std::to_string(I), 8, true});
  LayoutResult L = layoutObject(Fields);
  EXPECT_EQ(L.TotalBytes, 8u + 4u + 200u);
  EXPECT_EQ(L.PreciseBytes, 64u);
  EXPECT_EQ(L.ApproxBytes, L.TotalBytes - 64u);
  EXPECT_FALSE(L.LineIsApprox[0]);
  for (size_t I = 1; I < L.LineIsApprox.size(); ++I)
    EXPECT_TRUE(L.LineIsApprox[I]);
}

TEST(Layout, LineIsApproxIffNoPreciseBytes) {
  // Property: a line is approximate iff it contains no precise byte.
  std::vector<FieldDecl> Fields = {
      {"p1", 8, false}, {"p2", 8, false}, {"a1", 64, true}, {"p3", 4, false},
      {"a2", 32, true}, {"a3", 8, true}};
  LayoutResult L = layoutObject(Fields);
  uint64_t PreciseEnd = 0;
  for (const FieldPlacement &P : L.Fields)
    if (!P.DeclaredApprox)
      PreciseEnd = std::max(PreciseEnd, P.Offset + P.Bytes);
  for (size_t Line = 0; Line < L.LineIsApprox.size(); ++Line) {
    bool ContainsPrecise = Line * L.LineBytes < PreciseEnd;
    EXPECT_EQ(L.LineIsApprox[Line], !ContainsPrecise) << "line " << Line;
  }
}

TEST(Layout, ByteAccountingSumsToTotal) {
  std::vector<FieldDecl> Fields = {
      {"a", 16, true}, {"b", 8, false}, {"c", 128, true}, {"d", 2, false}};
  LayoutResult L = layoutObject(Fields);
  EXPECT_EQ(L.PreciseBytes + L.ApproxBytes, L.TotalBytes);
}

TEST(Layout, StoredApproxConsistentWithByteCounts) {
  std::vector<FieldDecl> Fields;
  for (int I = 0; I < 10; ++I)
    Fields.push_back({"f" + std::to_string(I), 8, I % 2 == 0});
  LayoutResult L = layoutObject(Fields);
  uint64_t ApproxFromFields = 0;
  for (const FieldPlacement &P : L.Fields)
    if (P.StoredApprox)
      ApproxFromFields += P.Bytes;
  // Fields stored approximately must all lie within approximate bytes.
  EXPECT_LE(ApproxFromFields, L.ApproxBytes);
}

TEST(Layout, CustomLineSize) {
  std::vector<FieldDecl> Fields = {{"i", 4, false}, {"a", 100, true}};
  LayoutResult Small = layoutObject(Fields, /*LineBytes=*/16);
  LayoutResult Large = layoutObject(Fields, /*LineBytes=*/256);
  // Finer granularity puts more bytes in approximate lines.
  EXPECT_GT(Small.ApproxBytes, 0u);
  EXPECT_EQ(Large.ApproxBytes, 0u); // Everything fits in one precise line.
  EXPECT_GE(Small.ApproxBytes, Large.ApproxBytes);
}

TEST(Layout, ApproxArrayFirstLinePrecise) {
  LayoutResult L = layoutArray(/*Count=*/1000, /*ElementBytes=*/8,
                               /*ElementsApprox=*/true);
  EXPECT_FALSE(L.LineIsApprox[0]);
  for (size_t I = 1; I < L.LineIsApprox.size(); ++I)
    EXPECT_TRUE(L.LineIsApprox[I]);
  EXPECT_EQ(L.PreciseBytes, 64u);
  EXPECT_EQ(L.ApproxBytes, L.TotalBytes - 64u);
}

TEST(Layout, PreciseArrayFullyPrecise) {
  LayoutResult L = layoutArray(1000, 8, /*ElementsApprox=*/false);
  EXPECT_EQ(L.ApproxBytes, 0u);
  for (bool Approx : L.LineIsApprox)
    EXPECT_FALSE(Approx);
}

TEST(Layout, TinyApproxArrayFitsInPreciseLine) {
  // Header (16) + 4 floats (16) = 32 bytes: all on the first, precise line.
  LayoutResult L = layoutArray(4, 4, /*ElementsApprox=*/true);
  EXPECT_EQ(L.ApproxBytes, 0u);
  EXPECT_EQ(L.lineCount(), 1u);
}

TEST(Layout, EmptyArray) {
  LayoutResult L = layoutArray(0, 8, true);
  EXPECT_EQ(L.TotalBytes, 16u); // Just the header.
  EXPECT_EQ(L.ApproxBytes, 0u);
}

TEST(Layout, ApproxFractionGrowsWithArraySize) {
  double Prev = 0.0;
  for (uint64_t Count : {8u, 64u, 512u, 4096u}) {
    LayoutResult L = layoutArray(Count, 8, true);
    double Fraction = static_cast<double>(L.ApproxBytes) / L.TotalBytes;
    EXPECT_GE(Fraction, Prev);
    Prev = Fraction;
  }
  EXPECT_GT(Prev, 0.95); // Large arrays are almost entirely approximate.
}
