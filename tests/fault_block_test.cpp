//===- tests/fault_block_test.cpp - Block-drawn upset stream properties ---===//
//
// The contract of fault/block.h, pinned as properties:
//
//  * Batched and Scalar modes are *bitwise identical* for the same
//    (seed, probability) stream and the same width sequence — for every
//    probability, every block size (including 1, which forces a refill
//    at every draw, i.e. maximal block-boundary coverage), and mixed
//    widths;
//  * the zero-probability stream never faults and never touches the
//    RNG (drawsConsumed() == 0), which is what makes level None
//    deterministic on the compiled path;
//  * the certain stream (p >= 1) flips every exposed bit, also without
//    consuming randomness;
//  * streams are pure functions of their identity (same seed -> same
//    masks; different seed -> different masks, overwhelmingly);
//  * the long-run fault rate matches the configured probability.
//
//===----------------------------------------------------------------------===//

#include "fault/block.h"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

using namespace enerj;

namespace {

/// Drains \p Ops masks of the given width sequence from a fresh stream.
std::vector<uint64_t> drain(double P, uint64_t Seed, BlockMode Mode,
                            uint32_t BlockSize,
                            const std::vector<unsigned> &Widths,
                            size_t Ops) {
  UpsetStream S(P, Seed, Mode, BlockSize);
  std::vector<uint64_t> Masks;
  Masks.reserve(Ops);
  for (size_t I = 0; I < Ops; ++I)
    Masks.push_back(S.nextMask(Widths[I % Widths.size()]));
  return Masks;
}

const std::vector<unsigned> MixedWidths = {64, 1, 32, 64, 7, 64, 1};

} // namespace

TEST(UpsetStream, BatchedMatchesScalarBitwise) {
  // The central differential property: same draws, same order, same
  // masks — for every probability regime and every refill granularity
  // (BlockSize 1 exercises a block boundary on every single draw).
  for (double P : {1e-6, 1e-4, 0.01, 0.2, 0.5, 0.9}) {
    for (uint32_t BlockSize : {1u, 7u, 64u, 256u, 4096u}) {
      SCOPED_TRACE("p=" + std::to_string(P) +
                   " block=" + std::to_string(BlockSize));
      std::vector<uint64_t> Scalar =
          drain(P, 0x1234, BlockMode::Scalar, 256, MixedWidths, 4000);
      std::vector<uint64_t> Batched =
          drain(P, 0x1234, BlockMode::Batched, BlockSize, MixedWidths, 4000);
      EXPECT_EQ(Scalar, Batched);
    }
  }
}

TEST(UpsetStream, ZeroProbabilityConsumesNoRandomness) {
  // Level None's determinism hinges on this: a p == 0 stream is not
  // merely fault-free, it never draws, in either mode — including at a
  // negative probability (disabled-strategy configs).
  for (double P : {0.0, -1.0}) {
    for (BlockMode Mode : {BlockMode::Batched, BlockMode::Scalar}) {
      UpsetStream S(P, 0xBEEF, Mode);
      for (int I = 0; I < 10000; ++I)
        EXPECT_EQ(S.nextMask(64), 0u);
      EXPECT_EQ(S.faultsSeen(), 0u);
      EXPECT_EQ(S.drawsConsumed(), 0u);
      EXPECT_EQ(S.bitsSeen(), 640000u);
    }
  }
}

TEST(UpsetStream, CertainProbabilityFlipsEveryBit) {
  for (BlockMode Mode : {BlockMode::Batched, BlockMode::Scalar}) {
    UpsetStream S(1.0, 0xBEEF, Mode);
    EXPECT_EQ(S.nextMask(64), ~0ULL);
    EXPECT_EQ(S.nextMask(1), 1u);
    EXPECT_EQ(S.nextMask(7), 0x7Fu);
    EXPECT_EQ(S.drawsConsumed(), 0u);
    EXPECT_EQ(S.faultsSeen(), 72u);
  }
}

TEST(UpsetStream, DeterministicGivenSeed) {
  std::vector<uint64_t> A =
      drain(0.01, 42, BlockMode::Batched, 256, MixedWidths, 2000);
  std::vector<uint64_t> B =
      drain(0.01, 42, BlockMode::Batched, 256, MixedWidths, 2000);
  EXPECT_EQ(A, B);
  std::vector<uint64_t> C =
      drain(0.01, 43, BlockMode::Batched, 256, MixedWidths, 2000);
  EXPECT_NE(A, C);
}

TEST(UpsetStream, LongRunFaultRateMatchesProbability) {
  // 10^6 exposed bits at p = 0.01: expect ~10000 faults; 5 sigma is
  // ~500, so [9000, 11000] is a comfortable deterministic band (the
  // stream is seeded, so this never flakes).
  UpsetStream S(0.01, 7, BlockMode::Batched);
  uint64_t Words = 1000000 / 64;
  for (uint64_t I = 0; I < Words; ++I)
    S.nextMask(64);
  double Rate = static_cast<double>(S.faultsSeen()) /
                static_cast<double>(S.bitsSeen());
  EXPECT_NEAR(Rate, 0.01, 0.001);
}

TEST(UpsetStream, HotPathSkipsRngEntirely) {
  // At realistic Table 2 rates (1e-6 and below), almost every mask is
  // zero and the stream consumes draws only when a fault actually
  // lands: the draw count equals faults + 1 (the one precomputed
  // next-gap), not the operation count.
  UpsetStream S(1e-6, 11, BlockMode::Scalar);
  for (int I = 0; I < 100000; ++I)
    S.nextMask(64);
  EXPECT_EQ(S.drawsConsumed(), S.faultsSeen() + 1);
  EXPECT_LT(S.drawsConsumed(), 100u);
}

TEST(UpsetStream, WideMasksMatchScalarDrawOrderBitwise) {
  // nextMasks(Words) — the SIMD-wide cache-line refill the FastMachine
  // uses — must yield exactly the masks that Words consecutive
  // nextMask(64) calls would, for every probability regime, both modes,
  // and every refill granularity.
  for (double P : {1e-6, 1e-4, 0.01, 0.2, 0.5, 0.9}) {
    for (BlockMode Mode : {BlockMode::Batched, BlockMode::Scalar}) {
      for (uint32_t BlockSize : {1u, 7u, 64u, 256u, 4096u}) {
        SCOPED_TRACE("p=" + std::to_string(P) + " mode=" +
                     (Mode == BlockMode::Batched ? "batched" : "scalar") +
                     " block=" + std::to_string(BlockSize));
        UpsetStream Scalar(P, 0x51DE, Mode, BlockSize);
        UpsetStream Wide(P, 0x51DE, Mode, BlockSize);
        uint64_t Line[8];
        for (int Refill = 0; Refill < 500; ++Refill) {
          Wide.nextMasks(8, Line);
          for (unsigned W = 0; W < 8; ++W)
            ASSERT_EQ(Scalar.nextMask(64), Line[W])
                << "refill " << Refill << " word " << W;
        }
        EXPECT_EQ(Scalar.faultsSeen(), Wide.faultsSeen());
        EXPECT_EQ(Scalar.bitsSeen(), Wide.bitsSeen());
        EXPECT_EQ(Scalar.drawsConsumed(), Wide.drawsConsumed());
      }
    }
  }
}

TEST(UpsetStream, WideMasksInterleaveWithScalarDraws) {
  // A stream serving a mix of wide refills and plain nextMask calls (the
  // FastMachine interleaves read-line refills with other draws) stays on
  // the one canonical mask sequence.
  for (double P : {1e-4, 0.2}) {
    SCOPED_TRACE("p=" + std::to_string(P));
    UpsetStream Reference(P, 0xCAFE, BlockMode::Scalar);
    UpsetStream Mixed(P, 0xCAFE, BlockMode::Batched);
    uint64_t Line[4];
    for (int Round = 0; Round < 800; ++Round) {
      Mixed.nextMasks(4, Line);
      for (unsigned W = 0; W < 4; ++W)
        ASSERT_EQ(Reference.nextMask(64), Line[W]) << "round " << Round;
      ASSERT_EQ(Reference.nextMask(64), Mixed.nextMask(64));
      ASSERT_EQ(Reference.nextMask(7), Mixed.nextMask(7));
    }
  }
}

TEST(UpsetStream, WideMasksAtZeroProbabilityNeverDraw) {
  // The hot path of the hot path: a p == 0 wide refill is a zero-fill
  // with no RNG traffic at all.
  UpsetStream S(0.0, 0xFEED, BlockMode::Batched);
  uint64_t Line[8];
  for (int Refill = 0; Refill < 1000; ++Refill) {
    S.nextMasks(8, Line);
    for (unsigned W = 0; W < 8; ++W)
      ASSERT_EQ(Line[W], 0u);
  }
  EXPECT_EQ(S.drawsConsumed(), 0u);
  EXPECT_EQ(S.faultsSeen(), 0u);
  EXPECT_EQ(S.bitsSeen(), 8u * 64u * 1000u);
}

TEST(EventStream, MatchesItsUnderlyingUpsetStream) {
  // An EventStream is an UpsetStream sampled one bit per operation; the
  // firing pattern must equal the width-1 mask sequence bit for bit,
  // and the two modes must agree here too.
  UpsetStream Reference(0.05, 99, BlockMode::Scalar);
  EventStream Batched(0.05, 99, BlockMode::Batched);
  uint64_t Fired = 0;
  for (int I = 0; I < 20000; ++I) {
    bool Expect = Reference.nextMask(1) != 0;
    bool Got = Batched.fires();
    ASSERT_EQ(Expect, Got) << "op " << I;
    Fired += Got;
  }
  EXPECT_EQ(Batched.eventsSeen(), Fired);
  EXPECT_EQ(Batched.opsSeen(), 20000u);
  // ~1000 expected at p = 0.05; wide deterministic band.
  EXPECT_NEAR(static_cast<double>(Fired), 1000.0, 300.0);
}

TEST(EventStream, ZeroProbabilityNeverFires) {
  EventStream S(0.0, 5, BlockMode::Batched);
  for (int I = 0; I < 10000; ++I)
    EXPECT_FALSE(S.fires());
  EXPECT_EQ(S.drawsConsumed(), 0u);
}
