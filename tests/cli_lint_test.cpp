//===- tests/cli_lint_test.cpp - fenerj_tool lint/infer CLI contract ------===//
//
// Black-box tests of the lint and infer subcommands: --Werror turns
// warnings into exit 1 (suggestions stay advisory), flag order does not
// matter, unknown flags are rejected, and infer --json is bytewise
// stable run-to-run. Corpus files come from ENERJ_FEJ_DIR; the binary
// path from ENERJ_FENERJ_TOOL.
//
//===----------------------------------------------------------------------===//

#include <array>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>

#ifndef ENERJ_FENERJ_TOOL
#error "ENERJ_FENERJ_TOOL must point at the fenerj_tool binary"
#endif
#ifndef ENERJ_FEJ_DIR
#error "ENERJ_FEJ_DIR must point at examples/fej"
#endif

namespace {

int runTool(const std::string &Args, std::string &Output) {
  std::string Command =
      std::string("\"") + ENERJ_FENERJ_TOOL + "\" " + Args + " 2>&1";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return -1;
  Output.clear();
  std::array<char, 4096> Buffer;
  size_t Read;
  while ((Read = fread(Buffer.data(), 1, Buffer.size(), Pipe)) > 0)
    Output.append(Buffer.data(), Read);
  int Status = pclose(Pipe);
  if (Status == -1)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

int runTool(const std::string &Args) {
  std::string Discard;
  return runTool(Args, Discard);
}

std::string fej(const char *Name) {
  return std::string(ENERJ_FEJ_DIR) + "/" + Name;
}

} // namespace

TEST(CliLint, CleanProgramExitsZeroUnderWerror) {
  // blur.fej is the paper's motivating example and must stay warning
  // free; suggestions alone never fail the build.
  EXPECT_EQ(runTool("lint " + fej("blur.fej") + " --Werror"), 0);
  EXPECT_EQ(runTool("lint " + fej("overprecise.fej") + " --Werror"), 0);
}

TEST(CliLint, WerrorPromotesWarningsToFailure) {
  // redundant_endorse.fej intentionally carries endorsement warnings.
  std::string Output;
  EXPECT_EQ(runTool("lint " + fej("redundant_endorse.fej"), Output), 0);
  EXPECT_NE(Output.find("warning"), std::string::npos);
  EXPECT_EQ(runTool("lint " + fej("redundant_endorse.fej") + " --Werror"), 1);
}

TEST(CliLint, WerrorFlagOrderDoesNotMatter) {
  EXPECT_EQ(runTool("lint " + fej("redundant_endorse.fej") +
                    " --Werror --json"),
            1);
  EXPECT_EQ(runTool("lint " + fej("redundant_endorse.fej") +
                    " --json --Werror"),
            1);
}

TEST(CliLint, RejectsUnknownFlag) {
  std::string Output;
  EXPECT_EQ(runTool("lint " + fej("blur.fej") + " --frobnicate", Output), 2);
  EXPECT_NE(Output.find("frobnicate"), std::string::npos);
}

TEST(CliLint, ContextLaunderIsCaughtOnlyInterprocedurally) {
  // The corpus program whose flaw no per-method audit can see: plain
  // lint reports the interproc-flow warning and exits 0; --Werror gates.
  std::string Output;
  EXPECT_EQ(runTool("lint " + fej("context_launder.fej"), Output), 0);
  EXPECT_NE(Output.find("interproc-flow"), std::string::npos);
  EXPECT_NE(Output.find("launders"), std::string::npos);
  EXPECT_EQ(runTool("lint " + fej("context_launder.fej") + " --Werror"), 1);
}

TEST(CliInfer, TableListsEveryApp) {
  std::string Output;
  EXPECT_EQ(runTool("infer " + fej("apps/sor.fej") + " " +
                        fej("apps/montecarlo.fej"),
                    Output),
            0);
  EXPECT_NE(Output.find("sor"), std::string::npos);
  EXPECT_NE(Output.find("montecarlo"), std::string::npos);
  EXPECT_NE(Output.find("inferred%"), std::string::npos);
}

TEST(CliInfer, SuggestionsNameTheRelaxableDecls) {
  std::string Output;
  EXPECT_EQ(runTool("infer " + fej("apps/sor.fej") +
                        " --suggest-annotations",
                    Output),
            0);
  EXPECT_NE(Output.find("relax field 'Sor.omega'"), std::string::npos);
  EXPECT_NE(Output.find("@precise to @approx"), std::string::npos);
}

TEST(CliInfer, JsonIsBytewiseStableAcrossRuns) {
  std::string First, Second;
  std::string Args = "infer " + fej("apps/fft.fej") + " " +
                     fej("apps/trikernel.fej") + " --json";
  EXPECT_EQ(runTool(Args, First), 0);
  EXPECT_EQ(runTool(Args, Second), 0);
  EXPECT_EQ(First, Second);
  EXPECT_NE(First.find("\"tool\":\"enerj-infer\""), std::string::npos);
  EXPECT_NE(First.find("\"version\":1"), std::string::npos);
}

TEST(CliInfer, RejectsMissingFileAndUnknownFlag) {
  EXPECT_EQ(runTool("infer"), 2);
  EXPECT_EQ(runTool("infer /nonexistent/x.fej"), 1);
  EXPECT_EQ(runTool("infer " + fej("apps/sor.fej") + " --bogus"), 2);
}
