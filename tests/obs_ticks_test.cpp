//===- tests/obs_ticks_test.cpp - Simulator op-ticking coverage audit -----===//
//
// The telemetry layer's coverage contract, cross-checked for every
// application: each dynamic operation the simulator counts into
// RunStats is recorded at exactly one registry site, every
// clock-advancing operation is a ticking site, and therefore the
// merged registry reconciles exactly with both the ledger clock and
// the operation statistics. Also pins the zero-perturbation contract:
// an instrumented run is bitwise identical to an uninstrumented one.
//
//===----------------------------------------------------------------------===//

#include "harness/trial.h"
#include "obs/metrics.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace enerj;
using namespace enerj::harness;

namespace {

uint64_t bitsOf(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

/// Sum of site counts of one op kind across all regions.
uint64_t kindTotal(const obs::MetricsRegistry &M, obs::OpKind Kind) {
  uint64_t Sum = 0;
  for (size_t I = 0; I < M.siteCount(); ++I)
    if (M.siteKey(I).Kind == Kind)
      Sum += M.site(I).Count;
  return Sum;
}

} // namespace

TEST(ObsTickAudit, RegistryReconcilesWithLedgerAndStatsForEveryApp) {
  // Budget-less instrumented runs: the attempt runs to completion, so
  // the registry must cover every ledger tick — a new simulator op
  // path that forgets telemetry shows up here as a tick deficit.
  for (const apps::Application *App : apps::allApplications()) {
    SCOPED_TRACE(App->name());
    Trial T;
    T.App = App;
    T.Config = FaultConfig::preset(ApproxLevel::Medium);
    T.WorkloadSeed = 1;
    T.Obs.Metrics = true;
    TrialResult R = TrialRunner::runOne(T);

    EXPECT_GT(R.ClockCycles, 0u);
    EXPECT_EQ(R.ClockCycles, R.Metrics.totalTicks());

    // The four arithmetic kinds must agree with RunStats op for op.
    EXPECT_EQ(kindTotal(R.Metrics, obs::OpKind::PreciseInt),
              R.Stats.Ops.PreciseInt);
    EXPECT_EQ(kindTotal(R.Metrics, obs::OpKind::ApproxInt),
              R.Stats.Ops.ApproxInt);
    EXPECT_EQ(kindTotal(R.Metrics, obs::OpKind::PreciseFp),
              R.Stats.Ops.PreciseFp);
    EXPECT_EQ(kindTotal(R.Metrics, obs::OpKind::ApproxFp),
              R.Stats.Ops.ApproxFp);

    // Ticks = arithmetic ops + DRAM accesses; SRAM traffic is the
    // remainder of totalOps. Both identities catch double-counting.
    uint64_t Arithmetic = R.Stats.Ops.PreciseInt + R.Stats.Ops.ApproxInt +
                          R.Stats.Ops.PreciseFp + R.Stats.Ops.ApproxFp;
    uint64_t Dram = kindTotal(R.Metrics, obs::OpKind::DramLoad) +
                    kindTotal(R.Metrics, obs::OpKind::DramStore);
    EXPECT_EQ(R.Metrics.totalTicks(), Arithmetic + Dram);
    uint64_t Sram = kindTotal(R.Metrics, obs::OpKind::SramRead) +
                    kindTotal(R.Metrics, obs::OpKind::SramWrite);
    EXPECT_EQ(R.Metrics.totalOps(), Arithmetic + Dram + Sram);
  }
}

TEST(ObsTickAudit, ObservationNeverPerturbsTheMeasuredRun) {
  // The whole point of XOR-based fault detection: with telemetry on,
  // the fault stream, the QoS error, and every statistic are bitwise
  // what they are with telemetry off — for every app, at the most
  // aggressive level, where any stray RNG draw would diverge fastest.
  for (const apps::Application *App : apps::allApplications()) {
    SCOPED_TRACE(App->name());
    Trial Plain;
    Plain.App = App;
    Plain.Config = FaultConfig::preset(ApproxLevel::Aggressive);
    Plain.WorkloadSeed = 2;

    Trial Instrumented = Plain;
    Instrumented.Obs.Metrics = true;
    Instrumented.Obs.Trace = true;

    TrialResult Off = TrialRunner::runOne(Plain);
    TrialResult On = TrialRunner::runOne(Instrumented);

    EXPECT_EQ(bitsOf(Off.QosError), bitsOf(On.QosError));
    EXPECT_EQ(Off.Stats.Ops.PreciseInt, On.Stats.Ops.PreciseInt);
    EXPECT_EQ(Off.Stats.Ops.ApproxInt, On.Stats.Ops.ApproxInt);
    EXPECT_EQ(Off.Stats.Ops.PreciseFp, On.Stats.Ops.PreciseFp);
    EXPECT_EQ(Off.Stats.Ops.ApproxFp, On.Stats.Ops.ApproxFp);
    EXPECT_EQ(Off.Stats.Ops.TimingErrors, On.Stats.Ops.TimingErrors);
    EXPECT_EQ(bitsOf(Off.Stats.Storage.SramApprox),
              bitsOf(On.Stats.Storage.SramApprox));
    EXPECT_EQ(bitsOf(Off.Stats.Storage.DramApprox),
              bitsOf(On.Stats.Storage.DramApprox));
    EXPECT_EQ(bitsOf(Off.Energy.TotalFactor),
              bitsOf(On.Energy.TotalFactor));
    // The zero-cost path really collected nothing.
    EXPECT_EQ(Off.ClockCycles, 0u);
    EXPECT_EQ(Off.Metrics.totalOps(), 0u);
    EXPECT_TRUE(Off.Trace.empty());
  }
}

TEST(ObsTickAudit, RegionStorageSumsToTheGlobalSnapshot) {
  // The tagged per-region storage snapshot must partition the global
  // one: summing the tagged rows reproduces Stats.Storage.
  Trial T;
  T.App = apps::findApplication("lu");
  ASSERT_NE(T.App, nullptr);
  T.Config = FaultConfig::preset(ApproxLevel::Medium);
  T.WorkloadSeed = 1;
  T.Obs.Metrics = true;
  TrialResult R = TrialRunner::runOne(T);

  StorageStats Tagged;
  for (const StorageStats &S : R.Metrics.regionStorage())
    Tagged += S;
  EXPECT_EQ(bitsOf(Tagged.SramPrecise), bitsOf(R.Stats.Storage.SramPrecise));
  EXPECT_EQ(bitsOf(Tagged.SramApprox), bitsOf(R.Stats.Storage.SramApprox));
  EXPECT_EQ(bitsOf(Tagged.DramPrecise), bitsOf(R.Stats.Storage.DramPrecise));
  EXPECT_EQ(bitsOf(Tagged.DramApprox), bitsOf(R.Stats.Storage.DramApprox));
}
