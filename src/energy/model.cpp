//===- energy/model.cpp - Section 5.4 energy model -----------------------===//

#include "energy/model.h"

#include "fault/rates.h"

#include <cassert>

using namespace enerj;

double enerj::instructionEnergyFactor(bool IsFp, bool IsApprox,
                                      const FaultConfig &Config,
                                      const EnergyConstants &Constants) {
  double Total = IsFp ? Constants.FpOpUnits : Constants.IntOpUnits;
  if (!IsApprox)
    return 1.0;
  double Execute = Total - Constants.FetchDecodeUnits;
  assert(Execute > 0 && "fetch/decode exceeds instruction cost");
  FaultRates Rates = FaultRates::of(Config);
  double Saved = IsFp ? Rates.FpSavedFraction : Rates.AluSavedFraction;
  return (Constants.FetchDecodeUnits + Execute * (1.0 - Saved)) / Total;
}

EnergyReport enerj::computeEnergy(const RunStats &Stats,
                                  const FaultConfig &Config,
                                  PowerSetting Setting,
                                  const EnergyConstants &Constants) {
  EnergyReport Report;
  const OperationStats &Ops = Stats.Ops;
  const StorageStats &Storage = Stats.Storage;

  // Instruction execution: price every dynamic op at its per-op factor.
  double PreciseUnits =
      static_cast<double>(Ops.totalInt()) * Constants.IntOpUnits +
      static_cast<double>(Ops.totalFp()) * Constants.FpOpUnits;
  if (PreciseUnits > 0) {
    double ApproxUnits =
        static_cast<double>(Ops.PreciseInt) * Constants.IntOpUnits +
        static_cast<double>(Ops.ApproxInt) * Constants.IntOpUnits *
            instructionEnergyFactor(false, true, Config, Constants) +
        static_cast<double>(Ops.PreciseFp) * Constants.FpOpUnits +
        static_cast<double>(Ops.ApproxFp) * Constants.FpOpUnits *
            instructionEnergyFactor(true, true, Config, Constants);
    Report.InstructionFactor = ApproxUnits / PreciseUnits;
  }

  FaultRates Rates = FaultRates::of(Config);

  // SRAM: approximate byte-seconds save the supply-voltage fraction.
  if (Storage.sramTotal() > 0)
    Report.SramFactor =
        1.0 - Rates.SramSavedFraction * Storage.sramApproxFraction();

  // DRAM: approximate byte-seconds save the refresh-reduction fraction.
  if (Storage.dramTotal() > 0)
    Report.DramFactor =
        1.0 - Rates.DramSavedFraction * Storage.dramApproxFraction();

  Report.CpuFactor = (1.0 - Constants.SramShareOfCpu) *
                         Report.InstructionFactor +
                     Constants.SramShareOfCpu * Report.SramFactor;

  double CpuShare = 0.55, DramShare = 0.45;
  switch (Setting) {
  case PowerSetting::Server:
    CpuShare = 0.55;
    DramShare = 0.45;
    break;
  case PowerSetting::Mobile:
    // "In a mobile setting, memory consumes only 25% of power so power
    // savings in the CPU will be more important" (Section 5.4).
    CpuShare = 0.75;
    DramShare = 0.25;
    break;
  }
  Report.TotalFactor =
      CpuShare * Report.CpuFactor + DramShare * Report.DramFactor;
  return Report;
}
