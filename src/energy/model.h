//===- energy/model.h - Section 5.4 energy model ---------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's CPU/memory-system energy model (Section 5.4):
///
///  * Instruction execution: an integer operation costs 37 abstract units
///    and an FP operation 40; of each, 22 units go to fetch/decode and are
///    not reducible by approximation. Approximate integer ops scale the
///    execute component by the voltage-scaling savings; approximate FP ops
///    scale it by the mantissa-width savings (Table 2).
///  * The microarchitecture splits 65% instruction-execution logic / 35%
///    SRAM (registers + caches). Approximate SRAM byte-seconds save the
///    supply-voltage fraction.
///  * The system splits CPU vs DRAM; in a server, DRAM is 45% of power and
///    the CPU 55% (in a mobile device, memory is ~25%). Approximate DRAM
///    byte-seconds save the refresh-reduction fraction.
///
/// The model deliberately omits mode-switching overheads, matching the
/// paper ("our results can be considered optimistic").
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ENERGY_MODEL_H
#define ENERJ_ENERGY_MODEL_H

#include "arch/stats.h"
#include "fault/config.h"

namespace enerj {

/// Abstract energy-unit constants from Section 5.4.
struct EnergyConstants {
  double IntOpUnits = 37.0;
  double FpOpUnits = 40.0;
  double FetchDecodeUnits = 22.0; ///< Not reducible by approximation.
  double SramShareOfCpu = 0.35;   ///< Instruction logic gets the rest.
};

/// How CPU and DRAM share total system power.
enum class PowerSetting {
  Server, ///< CPU 55% / DRAM 45% (Fan et al.).
  Mobile, ///< CPU dominant, memory ~25% of the CPU+memory subsystem.
};

/// Per-component energy factors (1.0 = no savings) plus the combined total.
struct EnergyReport {
  double InstructionFactor = 1.0; ///< Approx/precise instruction energy.
  double SramFactor = 1.0;        ///< Approx/precise SRAM storage energy.
  double DramFactor = 1.0;        ///< Approx/precise DRAM storage energy.
  double CpuFactor = 1.0;         ///< 0.65 * instruction + 0.35 * SRAM.
  double TotalFactor = 1.0;       ///< CPU and DRAM combined.

  /// Fraction of total CPU+memory energy saved (0.0 at level None).
  double saved() const { return 1.0 - TotalFactor; }
};

/// Computes the normalized energy for one run's statistics under the given
/// hardware configuration. A RunStats measured at any level can be priced
/// at any config: the op/storage mix barely depends on the injected faults,
/// so benches measure once and price per level, like the paper's Figure 4.
EnergyReport computeEnergy(const RunStats &Stats, const FaultConfig &Config,
                           PowerSetting Setting = PowerSetting::Server,
                           const EnergyConstants &Constants = {});

/// Energy of one instruction under \p Config, normalized to its precise
/// cost. \p IsFp selects FP vs integer; \p IsApprox selects whether the
/// instruction was an approximate one.
double instructionEnergyFactor(bool IsFp, bool IsApprox,
                               const FaultConfig &Config,
                               const EnergyConstants &Constants = {});

} // namespace enerj

#endif // ENERJ_ENERGY_MODEL_H
