//===- fault/models.h - Table 2 fault-injection models ---------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four approximation strategies of Section 4.2, as executable fault
/// models operating on raw bit patterns:
///
///  * SramModel      — read upsets and write failures in registers/caches
///                     under reduced supply voltage.
///  * DramModel      — per-bit decay proportional to time since the last
///                     access, under a reduced (1 Hz) refresh rate.
///  * FpWidthModel   — mantissa truncation of FP operands for narrow
///                     multipliers/adders.
///  * TimingModel    — wholesale result corruption from voltage-scaled
///                     functional units, with the paper's three error modes.
///
/// Each model is a pure function of (bits, rates, rng) so fault injection
/// is exactly reproducible given a seed. Every model sources its
/// probabilities from one FaultRates snapshot (fault/rates.h) — the same
/// table the static reliability analysis and the energy model query — so
/// there is exactly one place a level's numbers live.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FAULT_MODELS_H
#define ENERJ_FAULT_MODELS_H

#include "fault/config.h"
#include "fault/rates.h"
#include "support/rng.h"

#include <cstdint>

namespace enerj {

/// SRAM supply-voltage reduction (Section 4.2, "SRAM supply voltage").
/// Each bit read flips with probability sramReadUpset(); each bit written
/// stores the wrong value with probability sramWriteFailure().
class SramModel {
public:
  explicit SramModel(const FaultConfig &Config)
      : Rates(FaultRates::of(Config)) {}
  explicit SramModel(const FaultRates &Rates) : Rates(Rates) {}

  /// Applies read upsets to \p Bits (a value of \p Width bits).
  uint64_t onRead(uint64_t Bits, unsigned Width, Rng &R) const;

  /// Applies write failures to \p Bits (a value of \p Width bits).
  uint64_t onWrite(uint64_t Bits, unsigned Width, Rng &R) const;

private:
  FaultRates Rates;
};

/// DRAM refresh-rate reduction (Section 4.2, "DRAM refresh rate").
/// Every bit flips independently with a probability proportional to the
/// time since it was last accessed (each access effectively refreshes the
/// line it touches).
class DramModel {
public:
  explicit DramModel(const FaultConfig &Config)
      : Rates(FaultRates::of(Config)) {}
  explicit DramModel(const FaultRates &Rates) : Rates(Rates) {}

  /// Applies decay to \p Bits given \p ElapsedCycles since the last access.
  uint64_t onAccess(uint64_t Bits, unsigned Width, uint64_t ElapsedCycles,
                    Rng &R) const;

  /// Probability that one bit flips over \p ElapsedCycles.
  double flipProbability(uint64_t ElapsedCycles) const {
    return Rates.dramFlipProbability(ElapsedCycles);
  }

private:
  FaultRates Rates;
};

/// FP bit-width reduction (Section 4.2, "Width reduction in floating point
/// operations"). Truncates operand mantissas to Table 2's widths; applied
/// to operands before the operation, as a narrow functional unit would.
class FpWidthModel {
public:
  explicit FpWidthModel(const FaultConfig &Config)
      : Rates(FaultRates::of(Config)) {}
  explicit FpWidthModel(const FaultRates &Rates) : Rates(Rates) {}

  float narrow(float Value) const;
  double narrow(double Value) const;

private:
  FaultRates Rates;
};

/// Aggressive voltage scaling in logic (Section 4.2, "Voltage scaling in
/// logic circuits"). With the configured probability, an operation's result
/// is corrupted according to the error mode. The model keeps the last value
/// produced per unit to implement ErrorMode::LastValue.
class TimingModel {
public:
  explicit TimingModel(const FaultConfig &Config)
      : Rates(FaultRates::of(Config)), Mode(Config.Mode) {}
  TimingModel(const FaultRates &Rates, ErrorMode Mode)
      : Rates(Rates), Mode(Mode) {}

  /// Possibly corrupts \p CorrectBits (a \p Width-bit result). Updates the
  /// unit's last-value latch either way.
  uint64_t onResult(uint64_t CorrectBits, unsigned Width, Rng &R);

  /// Number of timing errors injected so far (for tests/statistics).
  uint64_t errorCount() const { return Errors; }

private:
  FaultRates Rates;
  ErrorMode Mode;
  uint64_t LastValue = 0;
  uint64_t Errors = 0;
};

} // namespace enerj

#endif // ENERJ_FAULT_MODELS_H
