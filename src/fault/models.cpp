//===- fault/models.cpp - Table 2 fault-injection models -----------------===//

#include "fault/models.h"

#include "support/bits.h"

#include <cassert>

using namespace enerj;

/// Flips \p Count distinct bits of \p Bits chosen uniformly among the low
/// \p Width positions.
static uint64_t flipRandomBits(uint64_t Bits, unsigned Width, uint64_t Count,
                               Rng &R) {
  assert(Width >= 1 && Width <= 64 && "unsupported bit width");
  if (Count >= Width) {
    uint64_t Mask = Width == 64 ? ~0ULL : ((1ULL << Width) - 1);
    return Bits ^ Mask;
  }
  uint64_t FlipMask = 0;
  for (uint64_t I = 0; I < Count; ++I) {
    unsigned Bit;
    do {
      Bit = static_cast<unsigned>(R.nextBelow(Width));
    } while (FlipMask & (1ULL << Bit));
    FlipMask |= 1ULL << Bit;
  }
  return Bits ^ FlipMask;
}

/// Flips each of the low \p Width bits of \p Bits independently with
/// probability \p P, by drawing the number of flips from Binomial(Width, P)
/// and placing them uniformly.
static uint64_t flipEachBit(uint64_t Bits, unsigned Width, double P, Rng &R) {
  if (P <= 0.0)
    return Bits;
  uint64_t Count = R.nextBinomial(Width, P);
  if (Count == 0)
    return Bits;
  return flipRandomBits(Bits, Width, Count, R);
}

uint64_t SramModel::onRead(uint64_t Bits, unsigned Width, Rng &R) const {
  return flipEachBit(Bits, Width, Rates.SramReadUpsetPerBit, R);
}

uint64_t SramModel::onWrite(uint64_t Bits, unsigned Width, Rng &R) const {
  return flipEachBit(Bits, Width, Rates.SramWriteFailurePerBit, R);
}

uint64_t DramModel::onAccess(uint64_t Bits, unsigned Width,
                             uint64_t ElapsedCycles, Rng &R) const {
  return flipEachBit(Bits, Width, flipProbability(ElapsedCycles), R);
}

float FpWidthModel::narrow(float Value) const {
  uint32_t Bits = static_cast<uint32_t>(toBits(Value));
  return fromBits<float>(
      truncateFloatMantissa(Bits, Rates.FloatMantissaBits));
}

double FpWidthModel::narrow(double Value) const {
  return fromBits<double>(
      truncateDoubleMantissa(toBits(Value), Rates.DoubleMantissaBits));
}

uint64_t TimingModel::onResult(uint64_t CorrectBits, unsigned Width, Rng &R) {
  assert(Width >= 1 && Width <= 64 && "unsupported bit width");
  uint64_t Mask = Width == 64 ? ~0ULL : ((1ULL << Width) - 1);
  uint64_t Produced = CorrectBits & Mask;
  if (R.nextBernoulli(Rates.TimingErrorPerOp)) {
    ++Errors;
    switch (Mode) {
    case ErrorMode::RandomValue:
      Produced = R.next() & Mask;
      break;
    case ErrorMode::SingleBitFlip:
      Produced = flipBit(Produced, static_cast<unsigned>(R.nextBelow(Width)));
      break;
    case ErrorMode::LastValue:
      Produced = LastValue & Mask;
      break;
    }
  }
  LastValue = Produced;
  return Produced;
}
