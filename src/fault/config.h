//===- fault/config.h - Approximation strategy configuration ---*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the approximation strategies from Table 2 of the paper:
/// per-level error probabilities and the energy saved by each strategy.
/// A FaultConfig bundles all the knobs the simulator consults; the three
/// preset levels (Mild / Medium / Aggressive) carry the paper's constants,
/// and individual strategies can be toggled for the Section 6.2 ablations.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FAULT_CONFIG_H
#define ENERJ_FAULT_CONFIG_H

#include <cstdint>
#include <string>

namespace enerj {

/// Aggressiveness of the approximate hardware, per Table 2. None means the
/// hardware executes approximate instructions precisely and saves no energy
/// (the paper's backward-compatibility guarantee).
enum class ApproxLevel { None, Mild, Medium, Aggressive };

/// What an approximate functional unit produces when a timing error fires
/// (Section 4.2). The paper evaluates all three and reports random-value as
/// the most realistic (and most damaging) model.
enum class ErrorMode { RandomValue, SingleBitFlip, LastValue };

/// Returns a human-readable name ("mild", "medium", ...) for a level.
const char *approxLevelName(ApproxLevel Level);

/// Returns a human-readable name for an error mode.
const char *errorModeName(ErrorMode Mode);

/// One strategy's Table 2 row: its per-level error probability (or width)
/// and the fraction of the affected component's energy it saves.
struct StrategyRow {
  double Mild;
  double Medium;
  double Aggressive;

  /// Selects the value for \p Level; None maps to "no error / no savings",
  /// which the caller encodes as \p NoneValue.
  double at(ApproxLevel Level, double NoneValue = 0.0) const;
};

/// All knobs the simulator consults. Default-constructed configs carry the
/// paper's Table 2 constants at the requested level with every strategy
/// enabled; ablations flip the Enable* bits.
struct FaultConfig {
  ApproxLevel Level = ApproxLevel::Medium;
  ErrorMode Mode = ErrorMode::RandomValue;

  bool EnableDram = true;    ///< DRAM refresh-rate reduction.
  bool EnableSram = true;    ///< SRAM supply-voltage reduction.
  bool EnableFpWidth = true; ///< FP mantissa width reduction.
  bool EnableTiming = true;  ///< Functional-unit voltage scaling.

  /// Logical simulator cycles per modeled second, used to convert the
  /// clock into wall time for DRAM decay. The paper's simulator ran on
  /// the JVM wall clock; we use one cycle per simulated operation and a
  /// configurable rate so that DRAM decay for a ~1e7-op benchmark lands
  /// in the same "nearly negligible" regime the paper reports.
  double CyclesPerSecond = 1.0e8;

  /// Granularity of approximate storage (Section 4.1). The evaluation
  /// assumes 64-byte cache lines; the paper notes finer granularity
  /// would recover the approximate data stuck in precise lines. The
  /// ablation_granularity bench sweeps this.
  uint64_t CacheLineBytes = 64;

  uint64_t Seed = 0x0EA7BEEF;

  /// Watchdog: maximum simulator operations (clock ticks) one run may
  /// execute before the simulator aborts it with resilience::TrialAbort.
  /// 0 disables the watchdog. Fault injection under the RandomValue mode
  /// can corrupt endorsed loop bounds into unbounded spins; the budget
  /// contains that control-flow corruption at the trial boundary.
  uint64_t OpBudgetOps = 0;

  /// --- Fine-grained tuning (the paper's future-work knob: "a separate
  /// --- system could tune the frequency and intensity of errors").
  /// --- A negative override keeps the Table 2 value for the level;
  /// --- a non-negative one replaces it. Mantissa overrides use < 0 for
  /// --- "no override" as well.
  double DramFlipPerSecondOverride = -1.0;
  double SramReadUpsetOverride = -1.0;
  double SramWriteFailureOverride = -1.0;
  double TimingErrorOverride = -1.0;
  int FloatMantissaOverride = -1;
  int DoubleMantissaOverride = -1;

  /// --- Derived Table 2 values at the configured level. ---

  /// Per-second, per-bit DRAM flip probability at 1 Hz refresh.
  double dramFlipPerSecond() const;
  /// Per-bit probability that an SRAM read flips the bit it returns.
  double sramReadUpset() const;
  /// Per-bit probability that an SRAM write stores the wrong bit.
  double sramWriteFailure() const;
  /// Stored mantissa bits used for approximate float operations.
  unsigned floatMantissaBits() const;
  /// Stored mantissa bits used for approximate double operations.
  unsigned doubleMantissaBits() const;
  /// Probability an approximate ALU/FPU operation suffers a timing error.
  double timingErrorProbability() const;

  /// --- Table 2 energy-savings fractions at the configured level. ---
  /// Each is the fraction of the affected component's energy that the
  /// strategy saves; disabled strategies save nothing.

  double dramPowerSaved() const;   ///< Of approximate DRAM byte-seconds.
  double sramPowerSaved() const;   ///< Of approximate SRAM byte-seconds.
  double fpEnergySaved() const;    ///< Of an approximate FP op's execute energy.
  double aluEnergySaved() const;   ///< Of an approximate int op's execute energy.

  /// Short description such as "medium/random" for report headers.
  std::string describe() const;

  /// Convenience preset: all strategies enabled at \p Level.
  static FaultConfig preset(ApproxLevel Level,
                            ErrorMode Mode = ErrorMode::RandomValue);
};

} // namespace enerj

#endif // ENERJ_FAULT_CONFIG_H
