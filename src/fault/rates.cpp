//===- fault/rates.cpp - Queryable per-op fault-rate table ---------------===//

#include "fault/rates.h"

#include <cmath>

using namespace enerj;

FaultRates FaultRates::of(const FaultConfig &Config) {
  FaultRates R;
  R.SramReadUpsetPerBit = Config.sramReadUpset();
  R.SramWriteFailurePerBit = Config.sramWriteFailure();
  R.DramFlipPerSecondPerBit = Config.dramFlipPerSecond();
  R.TimingErrorPerOp = Config.timingErrorProbability();
  R.CyclesPerSecond = Config.CyclesPerSecond;
  R.FloatMantissaBits = Config.floatMantissaBits();
  R.DoubleMantissaBits = Config.doubleMantissaBits();
  R.DramSavedFraction = Config.dramPowerSaved();
  R.SramSavedFraction = Config.sramPowerSaved();
  R.FpSavedFraction = Config.fpEnergySaved();
  R.AluSavedFraction = Config.aluEnergySaved();
  return R;
}

double FaultRates::dramFlipProbability(uint64_t ElapsedCycles) const {
  if (DramFlipPerSecondPerBit <= 0.0 || ElapsedCycles == 0)
    return 0.0;
  double Seconds = static_cast<double>(ElapsedCycles) / CyclesPerSecond;
  // Independent per-second flips compose as 1-(1-p)^t; a second flip of an
  // already-flipped bit would flip it back, but at these probabilities the
  // difference is far below the noise floor, as in the paper's simulator.
  return -std::expm1(Seconds * std::log1p(-DramFlipPerSecondPerBit));
}

namespace {

/// (1-p)^n for a per-bit probability and a bit count, as a lower bound on
/// "no flip among n independent per-bit draws". Exact-at-zero so level
/// None yields precisely 1.0 with no rounding residue.
double noFlipAcross(double PerBit, double Bits) {
  if (PerBit <= 0.0)
    return 1.0;
  if (PerBit >= 1.0)
    return 0.0;
  return std::exp(Bits * std::log1p(-PerBit));
}

} // namespace

double FaultRates::regReadExact() const {
  return noFlipAcross(SramReadUpsetPerBit, 64.0);
}

double FaultRates::regWriteExact() const {
  return noFlipAcross(SramWriteFailurePerBit, 64.0);
}

double FaultRates::aluExact() const {
  if (TimingErrorPerOp <= 0.0)
    return 1.0;
  if (TimingErrorPerOp >= 1.0)
    return 0.0;
  return 1.0 - TimingErrorPerOp;
}

double FaultRates::dramWordExact(uint64_t ElapsedCycles) const {
  return noFlipAcross(dramFlipProbability(ElapsedCycles), 64.0);
}

double FaultRates::dramResidencyExact(uint64_t MaxCycles,
                                      uint64_t Words) const {
  if (Words == 0)
    return 1.0;
  // Per bit, decay over disjoint access gaps composes exactly:
  // (1-p(a))(1-p(b)) = 1-p(a+b) under the 1-(1-q)^t law, so bounding each
  // bit's total exposure by the run length bounds the whole run's survival.
  double PerBit = dramFlipProbability(MaxCycles);
  return noFlipAcross(PerBit, 64.0 * static_cast<double>(Words));
}
