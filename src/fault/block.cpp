//===- fault/block.cpp - Block-drawn upset streams ------------------------===//

#include "fault/block.h"

#include <cmath>

using namespace enerj;

UpsetStream::UpsetStream(double P, uint64_t Seed, BlockMode Mode,
                         uint32_t BlockSize)
    : P(P), R(Seed), Mode(Mode), BlockSize(BlockSize ? BlockSize : 1) {
  if (P <= 0.0) {
    // A zero-probability stream never faults and never touches the RNG;
    // the property suite audits drawsConsumed() == 0.
    NextFault = ~0ULL;
    return;
  }
  if (P >= 1.0) {
    // Every exposed bit upsets — deterministic, so no draws here either.
    AlwaysFault = true;
    NextFault = 0;
    return;
  }
  InvLog1mP = 1.0 / std::log1p(-P);
  NextFault = drawGap();
}

uint64_t UpsetStream::slowMask(uint64_t End) {
  uint64_t Mask = 0;
  while (NextFault < End) {
    Mask |= 1ULL << (NextFault - Cursor);
    ++Faults;
    advance();
  }
  Cursor = End;
  return Mask;
}

void UpsetStream::advance() {
  if (AlwaysFault) {
    ++NextFault;
    return;
  }
  uint64_t Gap = drawGap();
  // Saturate instead of wrapping: a gap this large means "never again"
  // for any realistic stream length.
  NextFault = NextFault + 1 + Gap < NextFault ? ~0ULL : NextFault + 1 + Gap;
}

uint64_t UpsetStream::drawGap() {
  if (Mode == BlockMode::Batched) {
    if (BlockPos == Block.size())
      refill();
    return Block[BlockPos++];
  }
  // Scalar reference mode: one lazy draw. Inverse-transform geometric:
  // the count of sound bits before the next upset is
  // floor(log1p(-U) / log1p(-P)) with U uniform in [0, 1).
  double U = R.nextDouble();
  ++Draws;
  double Gap = std::log1p(-U) * InvLog1mP;
  if (!(Gap < 9.2e18)) // Overflow (or NaN from U==0 at tiny P) saturates.
    return ~0ULL >> 1;
  return static_cast<uint64_t>(Gap);
}

void UpsetStream::refill() {
  // Pre-draw a block of gaps with exactly the draws the scalar mode
  // would make, in the same order — bitwise equivalence by construction.
  Block.clear();
  Block.reserve(BlockSize);
  for (uint32_t I = 0; I < BlockSize; ++I) {
    double U = R.nextDouble();
    ++Draws;
    double Gap = std::log1p(-U) * InvLog1mP;
    Block.push_back(!(Gap < 9.2e18) ? (~0ULL >> 1)
                                    : static_cast<uint64_t>(Gap));
  }
  BlockPos = 0;
}
