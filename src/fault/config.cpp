//===- fault/config.cpp - Approximation strategy configuration -----------===//

#include "fault/config.h"

#include <cassert>
#include <cmath>

using namespace enerj;

const char *enerj::approxLevelName(ApproxLevel Level) {
  switch (Level) {
  case ApproxLevel::None:
    return "none";
  case ApproxLevel::Mild:
    return "mild";
  case ApproxLevel::Medium:
    return "medium";
  case ApproxLevel::Aggressive:
    return "aggressive";
  }
  assert(false && "unknown approximation level");
  return "?";
}

const char *enerj::errorModeName(ErrorMode Mode) {
  switch (Mode) {
  case ErrorMode::RandomValue:
    return "random";
  case ErrorMode::SingleBitFlip:
    return "bitflip";
  case ErrorMode::LastValue:
    return "lastvalue";
  }
  assert(false && "unknown error mode");
  return "?";
}

double StrategyRow::at(ApproxLevel Level, double NoneValue) const {
  switch (Level) {
  case ApproxLevel::None:
    return NoneValue;
  case ApproxLevel::Mild:
    return Mild;
  case ApproxLevel::Medium:
    return Medium;
  case ApproxLevel::Aggressive:
    return Aggressive;
  }
  assert(false && "unknown approximation level");
  return NoneValue;
}

// Table 2 of the paper, row by row. Values marked * there are the authors'
// educated guesses; all Medium values come from the cited literature.
namespace {
const StrategyRow DramFlipRow = {1e-9, 1e-5, 1e-3};
const StrategyRow DramSavedRow = {0.17, 0.22, 0.24};
const StrategyRow SramReadRow = {std::pow(10.0, -16.7), std::pow(10.0, -7.4),
                                 1e-3};
const StrategyRow SramWriteRow = {std::pow(10.0, -5.59), std::pow(10.0, -4.94),
                                  1e-3};
const StrategyRow SramSavedRow = {0.70, 0.80, 0.90};
const StrategyRow FloatBitsRow = {16, 8, 4};
const StrategyRow DoubleBitsRow = {32, 16, 8};
const StrategyRow FpSavedRow = {0.32, 0.78, 0.85};
const StrategyRow TimingRow = {1e-6, 1e-4, 1e-2};
const StrategyRow AluSavedRow = {0.12, 0.22, 0.30};
} // namespace

double FaultConfig::dramFlipPerSecond() const {
  if (!EnableDram)
    return 0.0;
  return DramFlipPerSecondOverride >= 0.0 ? DramFlipPerSecondOverride
                                          : DramFlipRow.at(Level);
}

double FaultConfig::sramReadUpset() const {
  if (!EnableSram)
    return 0.0;
  return SramReadUpsetOverride >= 0.0 ? SramReadUpsetOverride
                                      : SramReadRow.at(Level);
}

double FaultConfig::sramWriteFailure() const {
  if (!EnableSram)
    return 0.0;
  return SramWriteFailureOverride >= 0.0 ? SramWriteFailureOverride
                                         : SramWriteRow.at(Level);
}

unsigned FaultConfig::floatMantissaBits() const {
  if (!EnableFpWidth)
    return 23;
  if (FloatMantissaOverride >= 0)
    return static_cast<unsigned>(FloatMantissaOverride);
  if (Level == ApproxLevel::None)
    return 23;
  return static_cast<unsigned>(FloatBitsRow.at(Level, 23));
}

unsigned FaultConfig::doubleMantissaBits() const {
  if (!EnableFpWidth)
    return 52;
  if (DoubleMantissaOverride >= 0)
    return static_cast<unsigned>(DoubleMantissaOverride);
  if (Level == ApproxLevel::None)
    return 52;
  return static_cast<unsigned>(DoubleBitsRow.at(Level, 52));
}

double FaultConfig::timingErrorProbability() const {
  if (!EnableTiming)
    return 0.0;
  return TimingErrorOverride >= 0.0 ? TimingErrorOverride
                                    : TimingRow.at(Level);
}

double FaultConfig::dramPowerSaved() const {
  return EnableDram ? DramSavedRow.at(Level) : 0.0;
}

double FaultConfig::sramPowerSaved() const {
  return EnableSram ? SramSavedRow.at(Level) : 0.0;
}

double FaultConfig::fpEnergySaved() const {
  return EnableFpWidth ? FpSavedRow.at(Level) : 0.0;
}

double FaultConfig::aluEnergySaved() const {
  return EnableTiming ? AluSavedRow.at(Level) : 0.0;
}

std::string FaultConfig::describe() const {
  std::string Out = approxLevelName(Level);
  Out += '/';
  Out += errorModeName(Mode);
  if (!EnableDram || !EnableSram || !EnableFpWidth || !EnableTiming) {
    Out += " [";
    Out += EnableDram ? "D" : "-";
    Out += EnableSram ? "S" : "-";
    Out += EnableFpWidth ? "F" : "-";
    Out += EnableTiming ? "T" : "-";
    Out += ']';
  }
  return Out;
}

FaultConfig FaultConfig::preset(ApproxLevel Level, ErrorMode Mode) {
  FaultConfig Config;
  Config.Level = Level;
  Config.Mode = Mode;
  return Config;
}
