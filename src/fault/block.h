//===- fault/block.h - Block-drawn upset streams ----------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched counterpart of the per-operation fault models in
/// fault/models.h, built for the compiled execution path (src/exec).
///
/// The classic models draw from the trial RNG on *every* operation —
/// a Binomial(64, p) per approximate register read/write and a Bernoulli
/// per approximate ALU result — which dominates the fast machine's step
/// loop even though faults themselves are rare. An UpsetStream inverts
/// that cost structure: it views all the bits a site class ever exposes
/// as one long Bernoulli(p) stream and samples only the *indices of the
/// faulty bits*, via inverse-transform geometric gaps
///
///     gap = floor(log1p(-U) / log1p(-P)),  U ~ Uniform[0, 1),
///
/// so the common no-fault case costs one integer compare (is the next
/// faulty bit index past this word?) and zero RNG draws. Each gap draw
/// consumes exactly one Rng::nextDouble(), which gives the layer its
/// differential-testing hook: BlockMode::Batched pre-draws gaps in
/// fixed-size blocks ahead of use, BlockMode::Scalar draws them lazily
/// one at a time, and because both consume the same draws in the same
/// order the two modes produce bitwise-identical flip-mask sequences for
/// the same (seed, probability) stream. fault_block_test pins that
/// equivalence, including block boundaries and the zero-probability
/// stream (which must consume no randomness at all).
///
/// The distribution matches the classic models in aggregate — every
/// exposed bit flips independently with probability p — but the draw
/// *order* differs, so bitwise parity with fault/models.h is only
/// expected where no randomness is consumed (p == 0, i.e. level None).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FAULT_BLOCK_H
#define ENERJ_FAULT_BLOCK_H

#include "support/rng.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace enerj {

/// How an UpsetStream obtains its geometric gaps.
enum class BlockMode {
  Batched, ///< Gaps pre-drawn in blocks (the fast-machine hot path).
  Scalar,  ///< Gaps drawn lazily, one at a time (the reference mode).
};

/// One site class's Bernoulli(p)-per-bit fault process, sampled sparsely.
/// Deterministic given (probability, seed): the flip masks are a pure
/// function of the stream's identity and the sequence of widths asked of
/// it, independent of the block size and the mode.
class UpsetStream {
public:
  /// \p P is the per-bit upset probability; \p Seed keys the stream
  /// (per-trial streams use support/rng's mixSeed with a per-site salt).
  /// \p BlockSize only affects Batched refill granularity, never the
  /// output sequence.
  UpsetStream(double P, uint64_t Seed, BlockMode Mode,
              uint32_t BlockSize = 256);

  /// Advances the stream over the next \p Width exposed bits (1..64) and
  /// returns their flip mask (bit i set = exposed bit i upset). The
  /// common path is branch-predictable: one compare against the
  /// precomputed next-fault index.
  uint64_t nextMask(unsigned Width) {
    uint64_t End = Cursor + Width;
    if (NextFault >= End) { // No fault lands in this word (the hot path).
      Cursor = End;
      return 0;
    }
    return slowMask(End);
  }

  /// Advances the stream over \p Words consecutive 64-bit words — one
  /// cache line when \p Words == 8 — and writes their flip masks into
  /// \p Masks. Produces exactly the sequence that \p Words successive
  /// nextMask(64) calls would: the wide form only widens the hot path,
  /// so a single compare against the next-fault index clears the whole
  /// line and the zero-fill loop vectorizes. Bitwise-identical to the
  /// Scalar reference mode across all probability regimes
  /// (fault_block_test pins wide == narrow == Scalar).
  void nextMasks(unsigned Words, uint64_t *Masks) {
    uint64_t End = Cursor + 64ULL * Words;
    if (NextFault >= End) { // No fault lands anywhere in the line.
      Cursor = End;
      for (unsigned I = 0; I < Words; ++I)
        Masks[I] = 0;
      return;
    }
    // A fault lands somewhere in the line: fall back to the word-wise
    // path so the faulty word's draws happen in exactly the scalar
    // order (most words still take the one-compare branch above).
    for (unsigned I = 0; I < Words; ++I)
      Masks[I] = nextMask(64);
  }

  /// Index of the next exposed bit that will upset (~0 when p == 0).
  uint64_t nextFaultIndex() const { return NextFault; }
  /// Exposed bits consumed so far.
  uint64_t bitsSeen() const { return Cursor; }
  /// Total upset bits produced so far.
  uint64_t faultsSeen() const { return Faults; }
  /// Rng doubles consumed so far (the property tests' draw audit).
  uint64_t drawsConsumed() const { return Draws; }

private:
  uint64_t slowMask(uint64_t End);
  void advance(); ///< Moves NextFault past the current fault.
  uint64_t drawGap();
  void refill();

  double P;
  double InvLog1mP = 0.0; ///< 1 / log1p(-P), precomputed (P in (0, 1)).
  bool AlwaysFault = false;
  Rng R;
  BlockMode Mode;
  uint32_t BlockSize;
  std::vector<uint64_t> Block; ///< Pre-drawn gaps (Batched only).
  size_t BlockPos = 0;
  uint64_t Cursor = 0;
  uint64_t NextFault;
  uint64_t Faults = 0;
  uint64_t Draws = 0;
};

/// A per-operation error process sampled the same sparse way: each
/// operation is one exposed "bit" of an UpsetStream, so the next faulty
/// *operation index* is precomputed and the per-op check is branch-free
/// in the common case. Used for the timing-error model, whose classic
/// form draws a Bernoulli per approximate result.
class EventStream {
public:
  EventStream(double P, uint64_t Seed, BlockMode Mode,
              uint32_t BlockSize = 256)
      : Stream(P, Seed, Mode, BlockSize) {}

  /// True when the current operation takes the error; advances one op.
  bool fires() { return Stream.nextMask(1) != 0; }

  uint64_t opsSeen() const { return Stream.bitsSeen(); }
  uint64_t eventsSeen() const { return Stream.faultsSeen(); }
  uint64_t drawsConsumed() const { return Stream.drawsConsumed(); }

private:
  UpsetStream Stream;
};

} // namespace enerj

#endif // ENERJ_FAULT_BLOCK_H
