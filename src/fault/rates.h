//===- fault/rates.h - Queryable per-op fault-rate table -------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FaultRates: the one queryable view of every per-op / per-bit upset
/// probability a FaultConfig implies. Before this table existed the
/// numbers lived as private calls scattered through the fault models
/// (fault/models.cpp), the fast executor (exec/machine.cpp), and the
/// energy model — the reliability-bound analysis (analysis/reliability)
/// would have had to re-derive them. Now every consumer snapshots the
/// same struct:
///
///  * the simulators (isa::Machine via the Table 2 models, the batched
///    exec::FastMachine) draw faults at exactly these probabilities;
///  * the static reliability analysis composes exactness lower bounds
///    from them (`fenerj_tool bound`);
///  * the energy model prices savings from the same Table 2 rows.
///
/// The snapshot is a pure function of the config — same numeric values
/// as the FaultConfig accessors, so refactored call sites stay bitwise
/// identical (fault_rates_test pins this).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FAULT_RATES_H
#define ENERJ_FAULT_RATES_H

#include "fault/config.h"

#include <cstdint>

namespace enerj {

/// All fault probabilities and Table 2 savings fractions of one
/// FaultConfig, flattened into plain fields.
struct FaultRates {
  // --- Per-bit / per-op upset probabilities. ---
  double SramReadUpsetPerBit = 0.0;   ///< P(one bit flips per SRAM read).
  double SramWriteFailurePerBit = 0.0;///< P(one bit stored wrong per write).
  double DramFlipPerSecondPerBit = 0.0; ///< P(one bit decays per second).
  double TimingErrorPerOp = 0.0;      ///< P(an approximate op's result upset).
  double CyclesPerSecond = 1.0;       ///< Logical-clock to wall-time scale.

  // --- FP operand narrowing widths (full width = no narrowing). ---
  unsigned FloatMantissaBits = 23;
  unsigned DoubleMantissaBits = 52;

  // --- Table 2 energy-savings fractions (energy model view). ---
  double DramSavedFraction = 0.0;
  double SramSavedFraction = 0.0;
  double FpSavedFraction = 0.0;
  double AluSavedFraction = 0.0;

  /// Snapshots \p Config. Numerically identical to the FaultConfig
  /// accessors (overrides and ablation toggles included).
  static FaultRates of(const FaultConfig &Config);

  /// Probability that one DRAM bit flips over \p ElapsedCycles at the
  /// reduced refresh rate (the DramModel decay law; independent
  /// per-second flips compose as 1-(1-p)^t).
  [[nodiscard]] double dramFlipProbability(uint64_t ElapsedCycles) const;

  // --- Exactness lower bounds for the static reliability analysis.
  // --- Each is P(no upset event in one operation of the given kind),
  // --- i.e. the per-event factor the analysis multiplies through a
  // --- value's dependence cone.

  /// P(an approximate-register read returns all 64 bits unflipped).
  [[nodiscard]] double regReadExact() const;
  /// P(an approximate-register write stores all 64 bits correctly).
  [[nodiscard]] double regWriteExact() const;
  /// P(an approximate ALU/FPU op takes no timing error).
  [[nodiscard]] double aluExact() const;
  /// P(one 64-bit DRAM word survives \p ElapsedCycles without decay).
  [[nodiscard]] double dramWordExact(uint64_t ElapsedCycles) const;
  /// P(every bit of \p Words approximate words survives a whole run of
  /// at most \p MaxCycles logical cycles). Each word's total decay
  /// exposure is bounded by the run length, and the per-second law
  /// composes multiplicatively over access gaps, so this one factor
  /// soundly covers every decay event a run can draw.
  [[nodiscard]] double dramResidencyExact(uint64_t MaxCycles,
                                          uint64_t Words) const;

  /// True when approximate FP ops truncate double operands (the
  /// narrowing is deterministic, so a value survives it exactly when
  /// its mantissa provably fits; see analysis/reliability).
  [[nodiscard]] bool narrowsDouble() const { return DoubleMantissaBits < 52; }
  /// Same for float-typed operands.
  [[nodiscard]] bool narrowsFloat() const { return FloatMantissaBits < 23; }
};

} // namespace enerj

#endif // ENERJ_FAULT_RATES_H
