//===- resilience/trial_abort.h - Typed watchdog abort ----------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed exception the Simulator watchdog throws when a trial exceeds
/// its operation budget (resilience/policy.h). Approximate faults under the
/// RandomValue error mode can corrupt loop bounds and induction variables,
/// turning a bounded kernel into an unbounded spin; the watchdog converts
/// that control-flow corruption into a catchable, attributable event at the
/// trial boundary instead of a hung worker thread.
///
/// Header-only so the runtime can throw it without linking the policy
/// library (the runtime never consults a policy — it only enforces the
/// budget it was configured with).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_RESILIENCE_TRIAL_ABORT_H
#define ENERJ_RESILIENCE_TRIAL_ABORT_H

#include <cstdint>
#include <exception>
#include <string>

namespace enerj {
namespace resilience {

/// Thrown by the Simulator when a trial's operation count exceeds its
/// configured budget (FaultConfig::OpBudgetOps). The watchdog disarms
/// itself before throwing, so operations executed during unwinding (or by
/// code that catches and continues on the same simulator) never rethrow.
class TrialAbort : public std::exception {
public:
  TrialAbort(uint64_t BudgetOps, uint64_t ExecutedOps)
      : Budget(BudgetOps), Executed(ExecutedOps),
        Message("trial exceeded its operation budget (" +
                std::to_string(ExecutedOps) + " ops > budget of " +
                std::to_string(BudgetOps) + ")") {}

  const char *what() const noexcept override { return Message.c_str(); }

  /// The budget that was exceeded.
  uint64_t budget() const { return Budget; }
  /// The operation count at the moment the watchdog fired.
  uint64_t executed() const { return Executed; }

private:
  uint64_t Budget;
  uint64_t Executed;
  std::string Message;
};

} // namespace resilience
} // namespace enerj

#endif // ENERJ_RESILIENCE_TRIAL_ABORT_H
