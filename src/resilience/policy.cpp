//===- resilience/policy.cpp - QoS-guarded resilience policy --------------===//

#include "resilience/policy.h"

#include <cmath>

using namespace enerj;
using namespace enerj::resilience;

const char *enerj::resilience::trialOutcomeName(TrialOutcome Outcome) {
  switch (Outcome) {
  case TrialOutcome::Ok:
    return "ok";
  case TrialOutcome::SloViolated:
    return "sloViolated";
  case TrialOutcome::Aborted:
    return "aborted";
  case TrialOutcome::Retried:
    return "retried";
  case TrialOutcome::Degraded:
    return "degraded";
  case TrialOutcome::PowerFailed:
    return "powerFailed";
  }
  return "unknown";
}

void OutcomeCounts::add(TrialOutcome Outcome) {
  switch (Outcome) {
  case TrialOutcome::Ok:
    ++Ok;
    return;
  case TrialOutcome::SloViolated:
    ++SloViolated;
    return;
  case TrialOutcome::Aborted:
    ++Aborted;
    return;
  case TrialOutcome::Retried:
    ++Retried;
    return;
  case TrialOutcome::Degraded:
    ++Degraded;
    return;
  case TrialOutcome::PowerFailed:
    ++PowerFailed;
    return;
  }
}

ApproxLevel enerj::resilience::degradeLevel(ApproxLevel Level) {
  switch (Level) {
  case ApproxLevel::Aggressive:
    return ApproxLevel::Medium;
  case ApproxLevel::Medium:
    return ApproxLevel::Mild;
  case ApproxLevel::Mild:
  case ApproxLevel::None:
    return ApproxLevel::None;
  }
  return ApproxLevel::None;
}

FaultConfig enerj::resilience::degradeConfig(const FaultConfig &Config) {
  FaultConfig Degraded = Config;
  Degraded.Level = degradeLevel(Config.Level);
  return Degraded;
}

ApproxLevel enerj::resilience::escalateLevel(ApproxLevel Level) {
  switch (Level) {
  case ApproxLevel::None:
    return ApproxLevel::Mild;
  case ApproxLevel::Mild:
    return ApproxLevel::Medium;
  case ApproxLevel::Medium:
  case ApproxLevel::Aggressive:
    return ApproxLevel::Aggressive;
  }
  return ApproxLevel::Aggressive;
}

FaultConfig enerj::resilience::escalateConfig(const FaultConfig &Config) {
  FaultConfig Escalated = Config;
  Escalated.Level = escalateLevel(Config.Level);
  return Escalated;
}

bool enerj::resilience::outputSane(std::span<const double> Numeric,
                                   double AbsBound) {
  for (double Value : Numeric) {
    if (!std::isfinite(Value))
      return false;
    if (AbsBound > 0.0 && std::fabs(Value) > AbsBound)
      return false;
  }
  return true;
}
