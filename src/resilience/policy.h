//===- resilience/policy.h - QoS-guarded resilience policy ------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of EnerJ's safety story. The type system statically
/// isolates approximate data, but the evaluation still assumes every
/// approximate run completes and produces a usable number — under the
/// RandomValue error mode at Aggressive, corrupted data can drive runaway
/// loops, non-finite outputs, and QoS collapse. Following the
/// significance-aware runtimes of Vassiliadis et al. (arXiv:1412.5150) and
/// the tolerance-contract view of Isenberg et al. (arXiv:1604.08784), a
/// ResiliencePolicy turns the acceptable degradation into a checkable
/// contract:
///
///  * a QoS SLO — the maximum acceptable output error of a trial;
///  * an output sanity check — non-finite / out-of-range detection on the
///    endorsed (observable) results;
///  * a per-trial operation budget — a watchdog that aborts trials whose
///    control flow was corrupted into a spin (resilience/trial_abort.h);
///  * a deterministic degradation ladder — Aggressive -> Medium -> Mild ->
///    None — walked when retries at the current level are exhausted.
///
/// Re-execution is honest: every attempt is charged, so the effective
/// energy of a retried trial shrinks the claimed savings. Retry fault
/// streams are pure functions of (config seed, workload seed, attempt), so
/// the whole recovery process is bitwise deterministic at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_RESILIENCE_POLICY_H
#define ENERJ_RESILIENCE_POLICY_H

#include "fault/config.h"

#include <cstdint>
#include <span>

namespace enerj {
namespace resilience {

/// How one trial concluded under a resilience policy.
enum class TrialOutcome {
  Ok,          ///< First attempt met the contract (or no policy active).
  SloViolated, ///< Every permitted attempt missed the SLO / sanity check.
  Aborted,     ///< Last attempt hit the op budget or threw; none recovered.
  Retried,     ///< Recovered by re-execution at the original level.
  Degraded,    ///< Recovered by stepping along the degradation ladder.
  PowerFailed, ///< The power environment never let the trial complete.
};

/// Human-readable name ("ok", "sloViolated", ...) as used in the JSON.
const char *trialOutcomeName(TrialOutcome Outcome);

/// Per-cell outcome histogram (the JSON v2 "outcomes" object).
struct OutcomeCounts {
  uint64_t Ok = 0;
  uint64_t SloViolated = 0;
  uint64_t Aborted = 0;
  uint64_t Retried = 0;
  uint64_t Degraded = 0;
  uint64_t PowerFailed = 0;

  void add(TrialOutcome Outcome);
  uint64_t total() const {
    return Ok + SloViolated + Aborted + Retried + Degraded + PowerFailed;
  }
  /// Trials that ended with an acceptable output (Ok/Retried/Degraded).
  uint64_t accepted() const { return Ok + Retried + Degraded; }
};

/// The tolerance contract one evaluation enforces. Default-constructed
/// policies are disabled: the harness then measures exactly as it always
/// did, byte for byte.
struct ResiliencePolicy {
  /// Master switch; the CLI sets it when any resilience flag is given.
  bool Enabled = false;

  /// Maximum acceptable QoS error of an accepted trial, in [0, 1]. The
  /// default accepts everything (all metrics are clamped to [0, 1]).
  double Slo = 1.0;

  /// Output sanity bound: an accepted trial's numeric outputs must all be
  /// finite and, when this is positive, have magnitude <= the bound.
  /// 0 means "finite is enough".
  double OutputAbsBound = 0.0;

  /// Re-executions permitted at each ladder level beyond the first
  /// attempt. 0 means a failing attempt degrades (or gives up) at once.
  int MaxRetries = 0;

  /// Per-trial simulator operation budget (FaultConfig::OpBudgetOps);
  /// 0 means no watchdog.
  uint64_t OpBudget = 0;

  /// Whether exhausting the retries at one level steps down the
  /// degradation ladder. At ApproxLevel::None execution is precise, so a
  /// full walk always terminates with an exact (zero-error) output.
  bool Degrade = true;
};

/// One deterministic step down the ladder:
/// Aggressive -> Medium -> Mild -> None; None stays None.
ApproxLevel degradeLevel(ApproxLevel Level);

/// \p Config with its level stepped down one rung; every other knob
/// (error mode, strategy toggles, seed, overrides) is preserved. Note
/// that absolute fine-grained overrides do not scale with the level.
FaultConfig degradeConfig(const FaultConfig &Config);

/// The ladder walked the other way — None -> Mild -> Medium ->
/// Aggressive; Aggressive stays Aggressive. Under an intermittent power
/// supply the failure being recovered from is *energy*, not QoS, so the
/// policy trades output quality for per-op cost (the Vassiliadis et al.
/// significance-degradation model at the environment level): each rung
/// up makes every approximate op cheaper and the trial more likely to
/// finish before the supply gives out.
ApproxLevel escalateLevel(ApproxLevel Level);

/// \p Config with its level stepped up one rung; every other knob is
/// preserved (the counterpart of degradeConfig for power recovery).
FaultConfig escalateConfig(const FaultConfig &Config);

/// The output sanity check: true iff every entry of \p Numeric is finite
/// and, when \p AbsBound > 0, has |entry| <= AbsBound. An empty span is
/// vacuously sane (text/decision outputs are checked by their QoS metric).
bool outputSane(std::span<const double> Numeric, double AbsBound);

} // namespace resilience
} // namespace enerj

#endif // ENERJ_RESILIENCE_POLICY_H
