//===- qos/metrics.h - Application QoS metrics ------------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application-specific quality-of-service metrics of Section 6
/// (Table 3, third column). Every metric maps a (precise output,
/// degraded output) pair to an error in [0, 1]: 0 means identical to the
/// precise run, 1 means completely meaningless output.
///
///  * Mean entry difference       — FFT, SOR, LU (numeric vectors; each
///    entry's difference is capped at 1; a NaN entry contributes 1).
///  * Normalized difference       — MonteCarlo (one number).
///  * Mean normalized difference  — SparseMatMult.
///  * Binary correctness          — ZXing-style decoders (0 or 1).
///  * Decision-fraction error     — jMonkeyEngine (fraction of correct
///    boolean decisions, normalized so 50% correct — chance — is error 1).
///  * Mean pixel difference       — ImageJ, Raytracer (per-channel
///    differences scaled by the channel range).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_QOS_METRICS_H
#define ENERJ_QOS_METRICS_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace enerj {
namespace qos {

/// Clamps \p Error into the legal [0, 1] range; NaN becomes 1.
double clampError(double Error);

/// Mean entry-wise |a-b|, each entry's contribution capped at 1; NaN or
/// infinite entries contribute 1. Mismatched lengths score 1.
double meanEntryDifference(std::span<const double> Precise,
                           std::span<const double> Degraded);

/// |a-b| / max(|a|, epsilon), capped at 1; NaN scores 1.
double normalizedDifference(double Precise, double Degraded);

/// Mean of per-entry normalized differences.
double meanNormalizedDifference(std::span<const double> Precise,
                                std::span<const double> Degraded);

/// 0 if the outputs are identical, 1 otherwise (ZXing's metric).
double binaryCorrectness(const std::string &Precise,
                         const std::string &Degraded);

/// Error from the fraction of boolean decisions that match the precise
/// run, normalized to 0.5: all correct = 0, chance (50%) or worse = 1.
double decisionError(std::span<const uint8_t> Precise,
                     std::span<const uint8_t> Degraded);

/// Mean per-pixel difference scaled by \p ChannelRange (e.g. 255 for 8-bit
/// channels). Mismatched sizes score 1.
double meanPixelDifference(std::span<const double> Precise,
                           std::span<const double> Degraded,
                           double ChannelRange);

} // namespace qos
} // namespace enerj

#endif // ENERJ_QOS_METRICS_H
