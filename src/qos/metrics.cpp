//===- qos/metrics.cpp - Application QoS metrics --------------------------===//

#include "qos/metrics.h"

#include <algorithm>
#include <cmath>

using namespace enerj;

double qos::clampError(double Error) {
  if (std::isnan(Error))
    return 1.0;
  return std::clamp(Error, 0.0, 1.0);
}

double qos::meanEntryDifference(std::span<const double> Precise,
                                std::span<const double> Degraded) {
  if (Precise.size() != Degraded.size())
    return 1.0;
  if (Precise.empty())
    return 0.0;
  double Sum = 0.0;
  for (size_t I = 0, E = Precise.size(); I != E; ++I) {
    double Diff = std::fabs(Precise[I] - Degraded[I]);
    // A NaN or infinite entry contributes an error of 1 (Section 6).
    Sum += std::isfinite(Diff) ? std::min(Diff, 1.0) : 1.0;
  }
  return clampError(Sum / static_cast<double>(Precise.size()));
}

double qos::normalizedDifference(double Precise, double Degraded) {
  double Diff = std::fabs(Precise - Degraded);
  if (!std::isfinite(Diff))
    return 1.0;
  double Scale = std::max(std::fabs(Precise), 1e-12);
  return clampError(Diff / Scale);
}

double qos::meanNormalizedDifference(std::span<const double> Precise,
                                     std::span<const double> Degraded) {
  if (Precise.size() != Degraded.size())
    return 1.0;
  if (Precise.empty())
    return 0.0;
  double Sum = 0.0;
  for (size_t I = 0, E = Precise.size(); I != E; ++I)
    Sum += normalizedDifference(Precise[I], Degraded[I]);
  return clampError(Sum / static_cast<double>(Precise.size()));
}

double qos::binaryCorrectness(const std::string &Precise,
                              const std::string &Degraded) {
  return Precise == Degraded ? 0.0 : 1.0;
}

double qos::decisionError(std::span<const uint8_t> Precise,
                          std::span<const uint8_t> Degraded) {
  if (Precise.size() != Degraded.size() || Precise.empty())
    return 1.0;
  size_t Correct = 0;
  for (size_t I = 0, E = Precise.size(); I != E; ++I)
    Correct += (Precise[I] == Degraded[I]);
  double Fraction = static_cast<double>(Correct) / Precise.size();
  // 100% correct -> 0 error; 50% (chance for a binary decision) -> 1.
  return clampError((1.0 - Fraction) / 0.5);
}

double qos::meanPixelDifference(std::span<const double> Precise,
                                std::span<const double> Degraded,
                                double ChannelRange) {
  if (Precise.size() != Degraded.size() || ChannelRange <= 0.0)
    return 1.0;
  if (Precise.empty())
    return 0.0;
  double Sum = 0.0;
  for (size_t I = 0, E = Precise.size(); I != E; ++I) {
    double Diff = std::fabs(Precise[I] - Degraded[I]) / ChannelRange;
    Sum += std::isfinite(Diff) ? std::min(Diff, 1.0) : 1.0;
  }
  return clampError(Sum / static_cast<double>(Precise.size()));
}
