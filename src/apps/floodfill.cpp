//===- apps/floodfill.cpp - ImageJ stand-in: flood fill -------------------===//
//
// Flood fill over an integer raster, the paper's ImageJ workload: an
// error-resilient, integer-dominated algorithm. Matching the paper's
// "extremely aggressive" annotation, even the pixel *coordinates* are
// approximate and get endorsed right at the array subscripts, with
// explicit bounds clamping standing in for ImageJ's extensive safety
// precautions. The QoS metric is mean pixel difference.
//
//===----------------------------------------------------------------------===//

#include "apps/apps_internal.h"

#include "core/enerj.h"
#include "obs/region.h"
#include "qos/metrics.h"
#include "support/rng.h"

#include <algorithm>
#include <vector>

using namespace enerj;
using namespace enerj::apps;

namespace {

constexpr int32_t Side = 64;

class FloodFillApp : public Application {
public:
  const char *name() const override { return "floodfill"; }
  const char *description() const override {
    return "raster flood fill (ImageJ stand-in)";
  }
  const char *qosMetricName() const override {
    return "mean pixel difference";
  }
  AnnotationStats annotations() const override {
    return {/*LinesOfCode=*/118, /*TotalDecls=*/24, /*AnnotatedDecls=*/8,
            /*Endorsements=*/5};
  }

  AppOutput run(uint64_t WorkloadSeed) const override {
    Rng Workload(WorkloadSeed);

    // @Approx int[] pixels: a two-tone image of random blobs.
    ApproxArray<int32_t> Pixels(Side * Side);
    {
      obs::RegionScope Phase("init");
      for (int32_t Y = 0; Y < Side; ++Y)
        for (int32_t X = 0; X < Side; ++X)
          Pixels[static_cast<size_t>(Y * Side + X)] = Approx<int32_t>(50);
      for (int Blob = 0; Blob < 12; ++Blob) {
        int32_t CenterX = static_cast<int32_t>(Workload.nextBelow(Side));
        int32_t CenterY = static_cast<int32_t>(Workload.nextBelow(Side));
        int32_t Radius = 3 + static_cast<int32_t>(Workload.nextBelow(8));
        for (int32_t Y = std::max(0, CenterY - Radius);
             Y < std::min(Side, CenterY + Radius); ++Y)
          for (int32_t X = std::max(0, CenterX - Radius);
               X < std::min(Side, CenterX + Radius); ++X)
            Pixels[static_cast<size_t>(Y * Side + X)] =
                Approx<int32_t>(200);
      }
    }

    // Flood fill from the center with a tolerance band. The work queue
    // holds approximate coordinates, endorsed and clamped at each use.
    const int32_t FillValue = 255;
    const Approx<int32_t> Target = Pixels.get(
        static_cast<size_t>((Side / 2) * Side + Side / 2));
    int32_t TargetValue = endorse(Target);

    std::vector<std::pair<Approx<int32_t>, Approx<int32_t>>> Queue;
    Queue.emplace_back(Approx<int32_t>(Side / 2), Approx<int32_t>(Side / 2));
    std::vector<bool> Visited(Side * Side, false);
    // Bounded work: the paper's annotated apps never do *more* work than
    // the pristine version; the visited bitmap (precise) guarantees that.
    {
      obs::RegionScope Phase("fill");
      while (!Queue.empty()) {
        auto [AX, AY] = Queue.back();
        Queue.pop_back();
        // Coordinates are approximate: endorse at the subscript and
        // clamp, the ImageJ pattern from Section 6.3. The raster
        // addressing that follows is precise integer work.
        int32_t X = std::clamp(endorse(AX), 0, Side - 1);
        int32_t Y = std::clamp(endorse(AY), 0, Side - 1);
        Precise<int32_t> Address = Precise<int32_t>(Y) * Side + X;
        size_t Index = static_cast<size_t>(Address.get());
        if (Visited[Index])
          continue;
        Visited[Index] = true;
        Approx<int32_t> Pixel = Pixels.get(Index);
        Approx<int32_t> Delta = Pixel - Approx<int32_t>(TargetValue);
        if (!endorse((Delta < Approx<int32_t>(30)) &
                     (Delta > Approx<int32_t>(-30))))
          continue;
        Pixels.set(Index, Approx<int32_t>(FillValue));
        if (X > 0)
          Queue.emplace_back(Approx<int32_t>(X - 1), Approx<int32_t>(Y));
        if (X < Side - 1)
          Queue.emplace_back(Approx<int32_t>(X + 1), Approx<int32_t>(Y));
        if (Y > 0)
          Queue.emplace_back(Approx<int32_t>(X), Approx<int32_t>(Y - 1));
        if (Y < Side - 1)
          Queue.emplace_back(Approx<int32_t>(X), Approx<int32_t>(Y + 1));
      }
    }

    AppOutput Output;
    Output.Numeric.reserve(Pixels.size());
    {
      obs::RegionScope Phase("output");
      for (size_t I = 0; I < Pixels.size(); ++I)
        Output.Numeric.push_back(endorse(Pixels.get(I)));
    }
    return Output;
  }

  double qosError(const AppOutput &Precise,
                  const AppOutput &Degraded) const override {
    return qos::meanPixelDifference(Precise.Numeric, Degraded.Numeric,
                                    255.0);
  }
};

} // namespace

const Application *enerj::apps::floodFillApp() {
  static FloodFillApp App;
  return &App;
}
