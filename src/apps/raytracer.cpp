//===- apps/raytracer.cpp - Raytracer: ray-plane rendering ----------------===//
//
// A small 3-D renderer whose workload is ray-plane intersection, like the
// paper's Raytracer benchmark. Camera rays intersect a checkered ground
// plane and a sphere; shading is Lambertian. Practically every float is
// approximate (the paper notes the annotation was almost mechanical);
// pixel values are endorsed into the framebuffer. The QoS metric is mean
// pixel difference.
//
//===----------------------------------------------------------------------===//

#include "apps/apps_internal.h"

#include "core/enerj.h"
#include "obs/region.h"
#include "qos/metrics.h"
#include "support/rng.h"

using namespace enerj;
using namespace enerj::apps;

namespace {

constexpr int ImageSide = 40;

class RaytracerApp : public Application {
public:
  const char *name() const override { return "raytracer"; }
  const char *description() const override {
    return "ray-plane 3-D renderer with checkered shading (Raytracer)";
  }
  const char *qosMetricName() const override {
    return "mean pixel difference";
  }
  AnnotationStats annotations() const override {
    return {/*LinesOfCode=*/130, /*TotalDecls=*/33, /*AnnotatedDecls=*/21,
            /*Endorsements=*/2};
  }

  AppOutput run(uint64_t WorkloadSeed) const override {
    Rng Workload(WorkloadSeed);
    // Scene parameters vary with the workload seed.
    float PlaneHeight = -1.0f - static_cast<float>(Workload.nextDouble());
    float LightX = static_cast<float>(Workload.nextDouble() * 2.0 - 1.0);
    float LightY = 1.0f + static_cast<float>(Workload.nextDouble());
    float LightZ = static_cast<float>(Workload.nextDouble() * 2.0 - 1.0);

    // @Approx float[] framebuffer — the rendered image tolerates noise.
    ApproxArray<float> Frame(ImageSide * ImageSide);

    {
      obs::RegionScope Phase("render");
      for (Precise<int32_t> PixelY = 0; PixelY < ImageSide; ++PixelY) {
        for (Precise<int32_t> PixelX = 0; PixelX < ImageSide; ++PixelX) {
          // Camera ray through the pixel; everything approximate.
          Approx<float> DirX =
              (static_cast<float>(PixelX.get()) / ImageSide - 0.5f) * 2.0f;
          Approx<float> DirY =
              (static_cast<float>(PixelY.get()) / ImageSide - 0.5f) *
              -2.0f;
          Approx<float> DirZ = 1.5f;
          Approx<float> Norm = enerj::sqrt(DirX * DirX + DirY * DirY +
                                           DirZ * DirZ);
          DirX /= Norm;
          DirY /= Norm;
          DirZ /= Norm;

          // Ray-plane intersection with y = PlaneHeight: t = (h - oy)/dy.
          Approx<float> Shade = 0.1f; // Sky.
          // The sign test steers control flow, so it is endorsed.
          if (endorse(DirY < Approx<float>(0.0f))) {
            Approx<float> T = (Approx<float>(PlaneHeight) -
                               Approx<float>(0.0f)) / DirY;
            Approx<float> HitX = T * DirX;
            Approx<float> HitZ = T * DirZ;
            // Checkerboard: floor parity of the hit position.
            Approx<float> CheckU = enerj::floor(HitX);
            Approx<float> CheckV = enerj::floor(HitZ);
            Approx<float> Parity =
                CheckU + CheckV -
                Approx<float>(2.0f) *
                    enerj::floor((CheckU + CheckV) / Approx<float>(2.0f));
            Approx<float> Base =
                Parity * Approx<float>(0.6f) + Approx<float>(0.2f);
            // Lambertian lighting toward the point light.
            Approx<float> ToLightX = Approx<float>(LightX) - HitX;
            Approx<float> ToLightY =
                Approx<float>(LightY) - Approx<float>(PlaneHeight);
            Approx<float> ToLightZ = Approx<float>(LightZ) - HitZ;
            Approx<float> LightNorm =
                enerj::sqrt(ToLightX * ToLightX + ToLightY * ToLightY +
                            ToLightZ * ToLightZ);
            // Plane normal is +Y, so the diffuse term is just the
            // normalized Y component.
            Approx<float> Diffuse = ToLightY / LightNorm;
            Approx<float> Falloff =
                Approx<float>(3.0f) / (LightNorm + Approx<float>(1.0f));
            Shade = Base * Diffuse * Falloff + Approx<float>(0.05f);
          }

          // The clamped pixel stays approximate in the framebuffer.
          Precise<int32_t> Index = PixelY * ImageSide + PixelX;
          Frame[static_cast<size_t>(Index.get())] = enerj::max(
              Approx<float>(0.0f), enerj::min(Approx<float>(1.0f), Shade));
        }
      }
    }

    // Output phase: the image crosses into precise storage (endorsed).
    AppOutput Output;
    Output.Numeric.reserve(Frame.size());
    {
      obs::RegionScope Phase("output");
      for (size_t I = 0; I < Frame.size(); ++I)
        Output.Numeric.push_back(endorse(Frame.get(I)));
    }
    return Output;
  }

  double qosError(const AppOutput &Precise,
                  const AppOutput &Degraded) const override {
    return qos::meanPixelDifference(Precise.Numeric, Degraded.Numeric,
                                    1.0);
  }
};

} // namespace

const Application *enerj::apps::raytracerApp() {
  static RaytracerApp App;
  return &App;
}
