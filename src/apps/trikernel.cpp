//===- apps/trikernel.cpp - jMonkeyEngine stand-in: triangle tests --------===//
//
// A batch of ray-triangle intersection queries (Moeller-Trumbore), the
// collision-detection kernel the paper runs on jMonkeyEngine. Following
// that port, essentially every float declaration is approximate; the
// boolean hit/miss decision is endorsed at the end of each query; all
// geometry lives in stack-resident vectors, which is why jMonkeyEngine
// shows almost no approximate DRAM in Figure 3. The QoS metric is the
// fraction of correct decisions normalized to 0.5 (chance).
//
//===----------------------------------------------------------------------===//

#include "apps/apps_internal.h"

#include "core/enerj.h"
#include "obs/region.h"
#include "qos/metrics.h"
#include "support/rng.h"

using namespace enerj;
using namespace enerj::apps;

namespace {

constexpr int QueryCount = 2500;

/// An approximable 3-vector, the paper's Vector3f (Section 6.3 marks it
/// @Approximable). Used here at Precision::Approx throughout.
template <Precision P> struct Vec3 : Approximable<P> {
  Context<P, float> X{0.0f}, Y{0.0f}, Z{0.0f};
};

using AVec3 = Vec3<Precision::Approx>;

Approx<float> dot(const AVec3 &A, const AVec3 &B) {
  return A.X * B.X + A.Y * B.Y + A.Z * B.Z;
}

AVec3 cross(const AVec3 &A, const AVec3 &B) {
  AVec3 Result;
  Result.X = A.Y * B.Z - A.Z * B.Y;
  Result.Y = A.Z * B.X - A.X * B.Z;
  Result.Z = A.X * B.Y - A.Y * B.X;
  return Result;
}

AVec3 sub(const AVec3 &A, const AVec3 &B) {
  AVec3 Result;
  Result.X = A.X - B.X;
  Result.Y = A.Y - B.Y;
  Result.Z = A.Z - B.Z;
  return Result;
}

class TriKernelApp : public Application {
public:
  const char *name() const override { return "trikernel"; }
  const char *description() const override {
    return "ray-triangle intersection batch (jMonkeyEngine stand-in)";
  }
  const char *qosMetricName() const override {
    return "fraction of correct decisions normalized to 0.5";
  }
  AnnotationStats annotations() const override {
    return {/*LinesOfCode=*/138, /*TotalDecls=*/36, /*AnnotatedDecls=*/19,
            /*Endorsements=*/4};
  }

  AppOutput run(uint64_t WorkloadSeed) const override {
    Rng Workload(WorkloadSeed);
    AppOutput Output;
    Output.Decisions.reserve(QueryCount);

    auto RandomCoord = [&]() {
      return static_cast<float>(Workload.nextDouble() * 2.0 - 1.0);
    };

    obs::RegionScope Phase("queries");
    for (Precise<int32_t> Query = 0; Query < QueryCount; ++Query) {
      // Random triangle and ray; all coordinates approximate.
      AVec3 V0, V1, V2, Origin, Direction;
      V0.X = RandomCoord(); V0.Y = RandomCoord(); V0.Z = RandomCoord();
      V1.X = RandomCoord(); V1.Y = RandomCoord(); V1.Z = RandomCoord();
      V2.X = RandomCoord(); V2.Y = RandomCoord(); V2.Z = RandomCoord();
      Origin.X = RandomCoord();
      Origin.Y = RandomCoord();
      Origin.Z = static_cast<float>(-2.0 - Workload.nextDouble());
      Direction.X = RandomCoord() * Approx<float>(0.2f);
      Direction.Y = RandomCoord() * Approx<float>(0.2f);
      Direction.Z = 1.0f;

      // Moeller-Trumbore.
      AVec3 Edge1 = sub(V1, V0);
      AVec3 Edge2 = sub(V2, V0);
      AVec3 PVec = cross(Direction, Edge2);
      Approx<float> Det = dot(Edge1, PVec);

      bool Hit;
      // Degenerate determinant: the ray is parallel to the triangle.
      if (endorse(enerj::abs(Det) < Approx<float>(1e-7f))) {
        Hit = false;
      } else {
        Approx<float> InvDet = Approx<float>(1.0f) / Det;
        AVec3 TVec = sub(Origin, V0);
        Approx<float> U = dot(TVec, PVec) * InvDet;
        AVec3 QVec = cross(TVec, Edge1);
        Approx<float> V = dot(Direction, QVec) * InvDet;
        Approx<float> T = dot(Edge2, QVec) * InvDet;
        ApproxBool Inside = (U >= Approx<float>(0.0f)) &
                            (V >= Approx<float>(0.0f)) &
                            (U + V <= Approx<float>(1.0f)) &
                            (T > Approx<float>(0.0f));
        Hit = endorse(Inside);
      }
      Output.Decisions.push_back(Hit ? 1 : 0);
    }
    return Output;
  }

  double qosError(const AppOutput &Precise,
                  const AppOutput &Degraded) const override {
    return qos::decisionError(Precise.Decisions, Degraded.Decisions);
  }
};

} // namespace

const Application *enerj::apps::triKernelApp() {
  static TriKernelApp App;
  return &App;
}
