//===- apps/app.h - Benchmark application interface -------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface shared by the nine evaluation applications of Section 6
/// (Table 3): the five SciMark2 kernels (FFT, SOR, MonteCarlo,
/// SparseMatMult, LU) and stand-ins for ZXing (barcode), jMonkeyEngine
/// (trikernel), ImageJ (floodfill), and Raytracer.
///
/// Each application is written against the EnerJ public API with the
/// annotation pattern the paper describes for it, produces a
/// deterministic output for a given workload seed, and defines its own
/// QoS metric. Running with no simulator installed executes all
/// annotations precisely — that run is the QoS reference.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_APPS_APP_H
#define ENERJ_APPS_APP_H

#include "arch/stats.h"
#include "fault/config.h"

#include <cstdint>
#include <string>
#include <vector>

namespace enerj {
namespace apps {

/// Hand-counted annotation statistics over the application's C++ source,
/// the analogue of Table 3's annotation-density columns.
struct AnnotationStats {
  int LinesOfCode = 0;   ///< Lines of the application implementation.
  int TotalDecls = 0;    ///< Declarations that could carry a qualifier.
  int AnnotatedDecls = 0; ///< Declarations with an approximate type.
  int Endorsements = 0;  ///< Static endorse() call sites.

  double annotatedFraction() const {
    return TotalDecls ? static_cast<double>(AnnotatedDecls) / TotalDecls
                      : 0.0;
  }
};

/// Whatever an application produces; unused parts stay empty.
struct AppOutput {
  std::vector<double> Numeric;    ///< Numeric entries / pixel values.
  std::string Text;               ///< Decoded text (barcode).
  std::vector<uint8_t> Decisions; ///< Boolean decisions (trikernel).
};

/// One evaluation application.
class Application {
public:
  virtual ~Application() = default;

  virtual const char *name() const = 0;
  virtual const char *description() const = 0;
  /// The Table 3 QoS metric name (e.g. "mean entry difference").
  virtual const char *qosMetricName() const = 0;
  virtual AnnotationStats annotations() const = 0;

  /// Runs the annotated application on the workload derived from
  /// \p WorkloadSeed, under whatever simulator is currently installed
  /// (none = precise execution).
  virtual AppOutput run(uint64_t WorkloadSeed) const = 0;

  /// Output error in [0, 1]: 0 = identical to the precise run.
  virtual double qosError(const AppOutput &Precise,
                          const AppOutput &Degraded) const = 0;
};

/// The registry of all nine applications, in Table 3 order.
const std::vector<const Application *> &allApplications();

/// Looks an application up by name; null if unknown.
const Application *findApplication(const std::string &Name);

/// --- Measurement helpers used by the benches and tests. ---

struct AppRun {
  AppOutput Output;
  RunStats Stats;
};

/// Runs \p App precisely (no simulator): the QoS reference output.
AppOutput runPrecise(const Application &App, uint64_t WorkloadSeed);

/// Runs \p App on a fresh simulator with \p Config, returning the
/// (possibly degraded) output and the measured statistics.
AppRun runApproximate(const Application &App, const FaultConfig &Config,
                      uint64_t WorkloadSeed);

/// Convenience: QoS error of one approximate run against the precise
/// reference for the same workload.
double qosUnder(const Application &App, const FaultConfig &Config,
                uint64_t WorkloadSeed);

} // namespace apps
} // namespace enerj

#endif // ENERJ_APPS_APP_H
