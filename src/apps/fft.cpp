//===- apps/fft.cpp - SciMark2 FFT under EnerJ annotations ----------------===//
//
// Radix-2 complex FFT. The annotation pattern mirrors the paper's port:
// the signal data (large heap arrays) is approximate; twiddle-factor
// computation, bit-reversal index logic, and loop control stay precise.
// The output phase endorses the spectrum entries.
//
//===----------------------------------------------------------------------===//

#include "apps/apps_internal.h"

#include "core/enerj.h"
#include "obs/region.h"
#include "qos/metrics.h"
#include "support/rng.h"

#include <cmath>

using namespace enerj;
using namespace enerj::apps;

namespace {

constexpr size_t SignalSize = 512; // Power of two.

class FftApp : public Application {
public:
  const char *name() const override { return "fft"; }
  const char *description() const override {
    return "SciMark2 radix-2 complex FFT (scientific kernel)";
  }
  const char *qosMetricName() const override {
    return "mean entry difference";
  }
  AnnotationStats annotations() const override {
    return {/*LinesOfCode=*/118, /*TotalDecls=*/34, /*AnnotatedDecls=*/11,
            /*Endorsements=*/2};
  }

  AppOutput run(uint64_t WorkloadSeed) const override {
    Rng Workload(WorkloadSeed);
    // @Approx double[] re, im — the signal lives in approximate DRAM.
    ApproxArray<double> Re(SignalSize), Im(SignalSize);
    {
      obs::RegionScope Phase("init");
      for (size_t I = 0; I < SignalSize; ++I) {
        Re[I] = Approx<double>(Workload.nextDouble() * 2.0 - 1.0);
        Im[I] = Approx<double>(Workload.nextDouble() * 2.0 - 1.0);
      }
    }

    // Bit-reversal permutation: indices are precise (Section 2.6).
    {
      obs::RegionScope Phase("bitrev");
      for (size_t I = 1, J = 0; I < SignalSize; ++I) {
        size_t Bit = SignalSize >> 1;
        for (; J & Bit; Bit >>= 1)
          J ^= Bit;
        J ^= Bit;
        if (I < J) {
          Approx<double> TmpRe = Re.get(I);
          Re.set(I, Re.get(J));
          Re.set(J, TmpRe);
          Approx<double> TmpIm = Im.get(I);
          Im.set(I, Im.get(J));
          Im.set(J, TmpIm);
        }
      }
    }

    // Danielson-Lanczos butterflies: data math approximate, twiddle
    // recurrence precise.
    {
      obs::RegionScope Phase("butterflies");
      for (size_t Len = 2; Len <= SignalSize; Len <<= 1) {
        double Angle = -2.0 * M_PI / static_cast<double>(Len);
        Precise<double> StepRe = std::cos(Angle);
        Precise<double> StepIm = std::sin(Angle);
        for (size_t Base = 0; Base < SignalSize; Base += Len) {
          Precise<double> TwidRe = 1.0, TwidIm = 0.0;
          // Butterfly indexing is precise integer work, instrumented like
          // the rest of the data path.
          Precise<int32_t> Half = static_cast<int32_t>(Len / 2);
          for (Precise<int32_t> J = 0; J < Half; ++J) {
            Precise<int32_t> EvenIdx = static_cast<int32_t>(Base) + J;
            Precise<int32_t> OddIdx = EvenIdx + Half;
            size_t Even = static_cast<size_t>(EvenIdx.get());
            size_t Odd = static_cast<size_t>(OddIdx.get());
            Approx<double> URe = Re.get(Even), UIm = Im.get(Even);
            Approx<double> VRe =
                Re.get(Odd) * TwidRe - Im.get(Odd) * TwidIm;
            Approx<double> VIm =
                Re.get(Odd) * TwidIm + Im.get(Odd) * TwidRe;
            Re.set(Even, URe + VRe);
            Im.set(Even, UIm + VIm);
            Re.set(Odd, URe - VRe);
            Im.set(Odd, UIm - VIm);
            Precise<double> NextRe = TwidRe * StepRe - TwidIm * StepIm;
            TwidIm = TwidRe * StepIm + TwidIm * StepRe;
            TwidRe = NextRe;
          }
        }
      }
    }

    // Output phase: the spectrum crosses into precise storage (endorsed).
    AppOutput Output;
    Output.Numeric.reserve(2 * SignalSize);
    {
      obs::RegionScope Phase("output");
      for (size_t I = 0; I < SignalSize; ++I)
        Output.Numeric.push_back(endorse(Re.get(I)));
      for (size_t I = 0; I < SignalSize; ++I)
        Output.Numeric.push_back(endorse(Im.get(I)));
    }
    return Output;
  }

  double qosError(const AppOutput &Precise,
                  const AppOutput &Degraded) const override {
    return qos::meanEntryDifference(Precise.Numeric, Degraded.Numeric);
  }
};

} // namespace

const Application *enerj::apps::fftApp() {
  static FftApp App;
  return &App;
}
