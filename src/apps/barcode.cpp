//===- apps/barcode.cpp - ZXing stand-in: 2-D barcode decoder -------------===//
//
// A QR-style two-dimensional code decoder, standing in for the paper's
// ZXing workload. A payload is encoded into a module grid with per-byte
// parity, rendered to a grayscale image (the "camera" adds shot noise and
// uneven illumination), and decoded back. Following the paper's ZXing
// port: the luminance data is approximate, control flow frequently
// depends on whether a pixel is black, so endorsements are frequent; the
// final parity/checksum phase is precise. The QoS metric is binary:
// 1 if the decoded payload is wrong, 0 if correct.
//
//===----------------------------------------------------------------------===//

#include "apps/apps_internal.h"

#include "core/enerj.h"
#include "obs/region.h"
#include "qos/metrics.h"
#include "support/rng.h"

#include <string>

using namespace enerj;
using namespace enerj::apps;

namespace {

constexpr size_t PayloadBytes = 12;
constexpr size_t ModulesPerSide = 32; // (12 payload + parity) * 8 < 32*32.
constexpr size_t PixelsPerModule = 2; // 64x64 image.
constexpr size_t ImageSide = ModulesPerSide * PixelsPerModule;

/// Deterministic payload text for a workload seed.
std::string makePayload(Rng &Workload) {
  static const char Alphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string Payload;
  for (size_t I = 0; I < PayloadBytes; ++I)
    Payload += Alphabet[Workload.nextBelow(sizeof(Alphabet) - 1)];
  return Payload;
}

class BarcodeApp : public Application {
public:
  const char *name() const override { return "barcode"; }
  const char *description() const override {
    return "2-D barcode decoder with parity (ZXing stand-in)";
  }
  const char *qosMetricName() const override {
    return "1 if incorrect, 0 if correct";
  }
  AnnotationStats annotations() const override {
    return {/*LinesOfCode=*/150, /*TotalDecls=*/30, /*AnnotatedDecls=*/4,
            /*Endorsements=*/3};
  }

  AppOutput run(uint64_t WorkloadSeed) const override {
    Rng Workload(WorkloadSeed);
    std::string Payload = makePayload(Workload);

    // --- Encode: payload bits + one parity bit per byte, row-major. ---
    std::vector<bool> Modules(ModulesPerSide * ModulesPerSide, false);
    size_t Bit = 0;
    auto PushBit = [&](bool Value) { Modules[Bit++] = Value; };
    for (char C : Payload) {
      unsigned Byte = static_cast<unsigned char>(C);
      unsigned Parity = 0;
      for (int B = 7; B >= 0; --B) {
        bool On = (Byte >> B) & 1;
        Parity ^= On;
        PushBit(On);
      }
      PushBit(Parity != 0);
    }

    // --- Render to luminance: @Approx int[] image. The camera adds
    // --- illumination gradient and per-pixel noise.
    ApproxArray<int32_t> Image(ImageSide * ImageSide);
    const int32_t Side = static_cast<int32_t>(ImageSide);
    {
      obs::RegionScope Phase("render");
      for (Precise<int32_t> Y = 0; Y < Side; ++Y) {
        for (Precise<int32_t> X = 0; X < Side; ++X) {
          // Module addressing is precise; the luminance math is pixel
          // data and runs approximately.
          Precise<int32_t> Module =
              (Y / static_cast<int32_t>(PixelsPerModule)) *
                  static_cast<int32_t>(ModulesPerSide) +
              X / static_cast<int32_t>(PixelsPerModule);
          Approx<int32_t> Luma =
              Modules[static_cast<size_t>(Module.get())] ? 40 : 215;
          Luma = Luma +
                 Approx<int32_t>(
                     static_cast<int32_t>(Workload.nextInRange(-25, 25)));
          Luma = Luma + Approx<int32_t>((X.get() + Y.get()) / 8);
          Precise<int32_t> Index = Y * Side + X;
          Image[static_cast<size_t>(Index.get())] = Luma;
        }
      }
    }

    // --- Decode. Threshold estimation over the approximate pixels (the
    // --- midpoint of the luminance range, robust to the illumination
    // --- tilt); the estimate is endorsed once — the ZXing pattern of a
    // --- resilient phase followed by a precise reduction.
    Approx<int32_t> MinLuma = 255, MaxLuma = 0;
    int32_t Threshold;
    {
      obs::RegionScope Phase("threshold");
      for (size_t I = 0; I < Image.size(); ++I) {
        Approx<int32_t> Pixel = Image.get(I);
        MinLuma = enerj::min(MinLuma, Pixel);
        MaxLuma = enerj::max(MaxLuma, Pixel);
      }
      Threshold = endorse((MinLuma + MaxLuma) / Approx<int32_t>(2));
    }
    // Endorsement discipline (Section 2.2): the programmer certifies the
    // approximate estimate before it steers the whole decode. A fault in
    // the scan shows up as an out-of-range threshold; fall back to the
    // nominal midpoint of the 8-bit luminance range.
    if (Threshold < 10 || Threshold > 245)
      Threshold = 128;

    // Per-module majority vote over its pixels. "Is this pixel black?"
    // is an approximate comparison endorsed at each use — the reason
    // ZXing's endorsement count is an outlier in Table 3.
    std::string Decoded;
    size_t ReadBit = 0;
    bool ParityOk = true;
    {
      obs::RegionScope Phase("decode");
      for (size_t Byte = 0; Byte < PayloadBytes; ++Byte) {
        unsigned Value = 0;
        unsigned Parity = 0;
        for (int B = 0; B < 9; ++B) {
          size_t Module = ReadBit++;
          size_t BaseY = (Module / ModulesPerSide) * PixelsPerModule;
          size_t BaseX = (Module % ModulesPerSide) * PixelsPerModule;
          Precise<int32_t> DarkVotes = 0;
          for (size_t Dy = 0; Dy < PixelsPerModule; ++Dy)
            for (size_t Dx = 0; Dx < PixelsPerModule; ++Dx) {
              Approx<int32_t> Pixel =
                  Image.get((BaseY + Dy) * ImageSide + BaseX + Dx);
              if (endorse(Pixel < Approx<int32_t>(Threshold)))
                DarkVotes += 1;
            }
          bool IsDark =
              DarkVotes.get() * 2 >
              static_cast<int32_t>(PixelsPerModule * PixelsPerModule);
          if (B < 8) {
            Value = (Value << 1) | (IsDark ? 1u : 0u);
            Parity ^= IsDark ? 1u : 0u;
          } else if ((Parity != 0) != IsDark) {
            ParityOk = false;
          }
        }
        Decoded += static_cast<char>(Value);
      }
    }

    AppOutput Output;
    Output.Text = ParityOk ? Decoded : "DECODE_FAILED";
    return Output;
  }

  double qosError(const AppOutput &Precise,
                  const AppOutput &Degraded) const override {
    return qos::binaryCorrectness(Precise.Text, Degraded.Text);
  }
};

} // namespace

const Application *enerj::apps::barcodeApp() {
  static BarcodeApp App;
  return &App;
}
