//===- apps/lu.cpp - SciMark2 LU factorization under EnerJ ----------------===//
//
// Dense LU factorization with partial pivoting. The matrix is
// approximate; pivot selection compares approximate magnitudes and so
// requires endorsements (the paper counts 3 for LU); the permutation
// bookkeeping and loop control stay precise.
//
//===----------------------------------------------------------------------===//

#include "apps/apps_internal.h"

#include "core/enerj.h"
#include "obs/region.h"
#include "qos/metrics.h"
#include "support/rng.h"

using namespace enerj;
using namespace enerj::apps;

namespace {

constexpr size_t Dim = 48;

class LuApp : public Application {
public:
  const char *name() const override { return "lu"; }
  const char *description() const override {
    return "SciMark2 dense LU factorization with partial pivoting "
           "(scientific kernel)";
  }
  const char *qosMetricName() const override {
    return "mean entry difference";
  }
  AnnotationStats annotations() const override {
    return {/*LinesOfCode=*/86, /*TotalDecls=*/20, /*AnnotatedDecls=*/5,
            /*Endorsements=*/3};
  }

  AppOutput run(uint64_t WorkloadSeed) const override {
    Rng Workload(WorkloadSeed);
    // @Approx double[] a — the matrix, row-major, in approximate DRAM.
    ApproxArray<double> A(Dim * Dim);
    {
      obs::RegionScope Phase("init");
      for (size_t I = 0; I < A.size(); ++I)
        A[I] = Approx<double>(Workload.nextDouble() * 2.0 - 1.0);
    }
    PreciseArray<int32_t> Pivot(Dim);

    {
      obs::RegionScope Phase("factorize");
      for (size_t Col = 0; Col < Dim; ++Col) {
        // Partial pivoting: magnitudes are approximate, so the comparison
        // crosses into precise control flow via endorsements.
        size_t Best = Col;
        double BestMag = endorse(enerj::abs(A.get(Col * Dim + Col)));
        for (size_t Row = Col + 1; Row < Dim; ++Row) {
          double Mag = endorse(enerj::abs(A.get(Row * Dim + Col)));
          if (Mag > BestMag) {
            BestMag = Mag;
            Best = Row;
          }
        }
        Pivot[Col] = static_cast<int32_t>(Best);
        if (Best != Col) {
          for (size_t K = 0; K < Dim; ++K) {
            Approx<double> Tmp = A.get(Col * Dim + K);
            A.set(Col * Dim + K, A.get(Best * Dim + K));
            A.set(Best * Dim + K, Tmp);
          }
        }
        // Guard against a vanishing pivot: the precise version would
        // divide by ~0 and poison the factorization.
        if (endorse(enerj::abs(A.get(Col * Dim + Col)) <
                    Approx<double>(1e-12)))
          continue;

        const int32_t N = static_cast<int32_t>(Dim);
        for (size_t Row = Col + 1; Row < Dim; ++Row) {
          Approx<double> Factor =
              A.get(Row * Dim + Col) / A.get(Col * Dim + Col);
          A.set(Row * Dim + Col, Factor);
          // Elimination addressing: precise integer arithmetic.
          Precise<int32_t> RowBase = static_cast<int32_t>(Row) * N;
          Precise<int32_t> PivotBase = static_cast<int32_t>(Col) * N;
          for (Precise<int32_t> K = static_cast<int32_t>(Col) + 1; K < N;
               ++K) {
            size_t Dst = static_cast<size_t>((RowBase + K).get());
            size_t Src = static_cast<size_t>((PivotBase + K).get());
            A.set(Dst, A.get(Dst) - Factor * A.get(Src));
          }
        }
      }
    }

    AppOutput Output;
    Output.Numeric.reserve(A.size());
    {
      obs::RegionScope Phase("output");
      for (size_t I = 0; I < A.size(); ++I)
        Output.Numeric.push_back(endorse(A.get(I)));
    }
    return Output;
  }

  double qosError(const AppOutput &Precise,
                  const AppOutput &Degraded) const override {
    return qos::meanEntryDifference(Precise.Numeric, Degraded.Numeric);
  }
};

} // namespace

const Application *enerj::apps::luApp() {
  static LuApp App;
  return &App;
}
