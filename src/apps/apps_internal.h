//===- apps/apps_internal.h - Per-application factories ---------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factories returning the singleton instance of each evaluation
/// application. Private to the apps library; external code goes through
/// allApplications()/findApplication().
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_APPS_APPS_INTERNAL_H
#define ENERJ_APPS_APPS_INTERNAL_H

#include "apps/app.h"

namespace enerj {
namespace apps {

const Application *fftApp();
const Application *sorApp();
const Application *monteCarloApp();
const Application *sparseMatMultApp();
const Application *luApp();
const Application *barcodeApp();
const Application *triKernelApp();
const Application *floodFillApp();
const Application *raytracerApp();

} // namespace apps
} // namespace enerj

#endif // ENERJ_APPS_APPS_INTERNAL_H
