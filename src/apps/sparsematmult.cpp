//===- apps/sparsematmult.cpp - SciMark2 SparseMatMult under EnerJ --------===//
//
// Sparse matrix-vector multiplication in compressed-row (CRS) form. The
// matrix values and vectors are approximate heap data; the row-pointer
// and column-index arrays MUST stay precise — they feed array subscripts,
// which EnerJ requires to be precise (Section 2.6).
//
//===----------------------------------------------------------------------===//

#include "apps/apps_internal.h"

#include "core/enerj.h"
#include "obs/region.h"
#include "qos/metrics.h"
#include "support/rng.h"

#include <algorithm>

using namespace enerj;
using namespace enerj::apps;

namespace {

constexpr size_t Rows = 400;
constexpr size_t NonzerosPerRow = 8;
constexpr int Iterations = 4;

class SparseMatMultApp : public Application {
public:
  const char *name() const override { return "sparsematmult"; }
  const char *description() const override {
    return "SciMark2 sparse matrix-vector multiply, CRS (scientific "
           "kernel)";
  }
  const char *qosMetricName() const override {
    return "mean normalized difference";
  }
  AnnotationStats annotations() const override {
    return {/*LinesOfCode=*/72, /*TotalDecls=*/18, /*AnnotatedDecls=*/3,
            /*Endorsements=*/1};
  }

  AppOutput run(uint64_t WorkloadSeed) const override {
    Rng Workload(WorkloadSeed);
    const size_t Nonzeros = Rows * NonzerosPerRow;

    // @Approx double[] values, x, y; int[] colIdx, rowPtr (precise!).
    ApproxArray<double> Values(Nonzeros);
    PreciseArray<int32_t> ColIdx(Nonzeros);
    PreciseArray<int32_t> RowPtr(Rows + 1);
    ApproxArray<double> X(Rows);
    ApproxArray<double> Y(Rows);

    {
      obs::RegionScope Phase("init");
      for (size_t Row = 0; Row <= Rows; ++Row)
        RowPtr[Row] = static_cast<int32_t>(Row * NonzerosPerRow);
      for (size_t Entry = 0; Entry < Nonzeros; ++Entry) {
        Values[Entry] = Approx<double>(Workload.nextDouble() * 2.0 - 1.0);
        ColIdx[Entry] =
            static_cast<int32_t>(Workload.nextBelow(Rows));
      }
      for (size_t Row = 0; Row < Rows; ++Row)
        X[Row] = Approx<double>(Workload.nextDouble());
    }

    // SciMark repeats the same multiply; there is no feedback, so a
    // corrupted operation perturbs exactly one output entry — the reason
    // the paper sees very little degradation for this kernel.
    {
      obs::RegionScope Phase("multiply");
      for (int Iter = 0; Iter < Iterations; ++Iter) {
        for (size_t Row = 0; Row < Rows; ++Row) {
          Approx<double> Sum = 0.0;
          int32_t Begin = RowPtr[Row], End = RowPtr[Row + 1];
          for (Precise<int32_t> Entry = Begin; Entry < End; ++Entry) {
            size_t Index = static_cast<size_t>(Entry.get());
            Sum += Values.get(Index) *
                   X.get(static_cast<size_t>(ColIdx[Index]));
          }
          Y.set(Row, Sum);
        }
      }
    }

    AppOutput Output;
    Output.Numeric.reserve(Rows);
    {
      obs::RegionScope Phase("output");
      for (size_t Row = 0; Row < Rows; ++Row)
        Output.Numeric.push_back(endorse(Y.get(Row)));
    }
    return Output;
  }

  double qosError(const AppOutput &Precise,
                  const AppOutput &Degraded) const override {
    return qos::meanNormalizedDifference(Precise.Numeric,
                                         Degraded.Numeric);
  }
};

} // namespace

const Application *enerj::apps::sparseMatMultApp() {
  static SparseMatMultApp App;
  return &App;
}
