//===- apps/registry.cpp - Application registry and runners ---------------===//

#include "apps/app.h"

#include "apps/apps_internal.h"
#include "core/enerj.h"
#include "support/rng.h"

using namespace enerj;
using namespace enerj::apps;

const std::vector<const Application *> &enerj::apps::allApplications() {
  static const std::vector<const Application *> Apps = {
      fftApp(),     sorApp(),       monteCarloApp(),
      sparseMatMultApp(), luApp(),  barcodeApp(),
      triKernelApp(), floodFillApp(), raytracerApp()};
  return Apps;
}

const Application *enerj::apps::findApplication(const std::string &Name) {
  for (const Application *App : allApplications())
    if (Name == App->name())
      return App;
  return nullptr;
}

AppOutput enerj::apps::runPrecise(const Application &App,
                                  uint64_t WorkloadSeed) {
  // No simulator installed: every annotation executes precisely
  // (the paper's plain-Java execution).
  return App.run(WorkloadSeed);
}

AppRun enerj::apps::runApproximate(const Application &App,
                                   const FaultConfig &Config,
                                   uint64_t WorkloadSeed) {
  FaultConfig RunConfig = Config;
  // Decorrelate fault randomness across workloads while keeping each
  // (config, workload) pair reproducible.
  RunConfig.Seed = mixSeed(Config.Seed, WorkloadSeed);
  Simulator Sim(RunConfig);
  AppRun Run;
  {
    SimulatorScope Scope(Sim);
    Run.Output = App.run(WorkloadSeed);
  }
  Run.Stats = Sim.stats();
  return Run;
}

double enerj::apps::qosUnder(const Application &App,
                             const FaultConfig &Config,
                             uint64_t WorkloadSeed) {
  AppOutput Reference = runPrecise(App, WorkloadSeed);
  AppRun Run = runApproximate(App, Config, WorkloadSeed);
  return App.qosError(Reference, Run.Output);
}
