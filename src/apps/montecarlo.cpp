//===- apps/montecarlo.cpp - SciMark2 MonteCarlo under EnerJ --------------===//
//
// Monte-Carlo estimation of pi. Sample coordinates are generated
// precisely (they drive control flow indirectly); the distance
// computation is approximate; the inside-the-circle test is an
// approximate comparison that must be endorsed — the paper counts exactly
// one endorsement for this kernel. The accumulator stays on the stack
// (SRAM), which is why MonteCarlo shows almost no approximate DRAM in
// Figure 3.
//
//===----------------------------------------------------------------------===//

#include "apps/apps_internal.h"

#include "core/enerj.h"
#include "obs/region.h"
#include "qos/metrics.h"
#include "support/rng.h"

using namespace enerj;
using namespace enerj::apps;

namespace {

constexpr int SampleCount = 20000;

class MonteCarloApp : public Application {
public:
  const char *name() const override { return "montecarlo"; }
  const char *description() const override {
    return "SciMark2 Monte-Carlo pi estimation (scientific kernel)";
  }
  const char *qosMetricName() const override {
    return "normalized difference";
  }
  AnnotationStats annotations() const override {
    return {/*LinesOfCode=*/52, /*TotalDecls=*/12, /*AnnotatedDecls=*/3,
            /*Endorsements=*/1};
  }

  AppOutput run(uint64_t WorkloadSeed) const override {
    // SciMark generates its samples with an in-language integer LCG; its
    // state must stay precise (it effectively drives the whole kernel),
    // which is where MonteCarlo's precise integer work comes from.
    Precise<int64_t> LcgState =
        static_cast<int64_t>(WorkloadSeed % 2147483647ULL) | 1;
    auto NextUniform = [&LcgState]() {
      LcgState = (LcgState * int64_t{48271}) % int64_t{2147483647};
      return static_cast<double>(LcgState.get()) / 2147483647.0;
    };
    Precise<int32_t> UnderCurve = 0;
    {
      obs::RegionScope Phase("samples");
      for (Precise<int32_t> Sample = 0; Sample < SampleCount; ++Sample) {
        // @Approx double x, y — the sample coordinates tolerate error.
        Approx<double> X = NextUniform();
        Approx<double> Y = NextUniform();
        Approx<double> DistanceSq = X * X + Y * Y;
        // The hit test is approximate; crossing into the precise counter
        // requires the endorsement.
        if (endorse(DistanceSq <= Approx<double>(1.0)))
          UnderCurve += 1;
      }
    }
    AppOutput Output;
    Output.Numeric.push_back(4.0 * static_cast<double>(UnderCurve.get()) /
                             SampleCount);
    return Output;
  }

  double qosError(const AppOutput &Precise,
                  const AppOutput &Degraded) const override {
    if (Precise.Numeric.size() != 1 || Degraded.Numeric.size() != 1)
      return 1.0;
    return qos::normalizedDifference(Precise.Numeric[0],
                                     Degraded.Numeric[0]);
  }
};

} // namespace

const Application *enerj::apps::monteCarloApp() {
  static MonteCarloApp App;
  return &App;
}
