//===- apps/sor.cpp - SciMark2 SOR under EnerJ annotations ----------------===//
//
// Jacobi successive over-relaxation on a 2-D grid. The grid is a large
// approximate heap array; the five-point stencil arithmetic runs on
// approximate FP units; loop bounds and indexing stay precise. The final
// grid is endorsed on output.
//
//===----------------------------------------------------------------------===//

#include "apps/apps_internal.h"

#include "core/enerj.h"
#include "obs/region.h"
#include "qos/metrics.h"
#include "support/rng.h"

using namespace enerj;
using namespace enerj::apps;

namespace {

constexpr size_t GridSize = 64;
constexpr int Sweeps = 10;

class SorApp : public Application {
public:
  const char *name() const override { return "sor"; }
  const char *description() const override {
    return "SciMark2 Jacobi successive over-relaxation (scientific kernel)";
  }
  const char *qosMetricName() const override {
    return "mean entry difference";
  }
  AnnotationStats annotations() const override {
    return {/*LinesOfCode=*/64, /*TotalDecls=*/16, /*AnnotatedDecls=*/5,
            /*Endorsements=*/1};
  }

  AppOutput run(uint64_t WorkloadSeed) const override {
    Rng Workload(WorkloadSeed);
    // @Approx double[] grid.
    ApproxArray<double> Grid(GridSize * GridSize);
    {
      obs::RegionScope Phase("init");
      for (size_t I = 0; I < Grid.size(); ++I)
        Grid[I] = Approx<double>(Workload.nextDouble());
    }

    const Approx<double> Omega = 1.25;
    const Approx<double> OneMinusOmega = 1.0 - 1.25;
    const Approx<double> Quarter = 0.25;

    const int32_t Side = static_cast<int32_t>(GridSize);
    {
      obs::RegionScope Phase("sweeps");
      for (int Sweep = 0; Sweep < Sweeps; ++Sweep) {
        for (Precise<int32_t> Row = 1; Row + 1 < Side; ++Row) {
          for (Precise<int32_t> Col = 1; Col + 1 < Side; ++Col) {
            // Stencil addressing: precise integer arithmetic.
            Precise<int32_t> Center = Row * Side + Col;
            size_t Here = static_cast<size_t>(Center.get());
            Approx<double> Neighbors =
                Grid.get(Here - GridSize) + Grid.get(Here + GridSize) +
                Grid.get(Here - 1) + Grid.get(Here + 1);
            Grid.set(Here, Omega * Quarter * Neighbors +
                               OneMinusOmega * Grid.get(Here));
          }
        }
      }
    }

    AppOutput Output;
    Output.Numeric.reserve(Grid.size());
    {
      obs::RegionScope Phase("output");
      for (size_t I = 0; I < Grid.size(); ++I)
        Output.Numeric.push_back(endorse(Grid.get(I)));
    }
    return Output;
  }

  double qosError(const AppOutput &Precise,
                  const AppOutput &Degraded) const override {
    return qos::meanEntryDifference(Precise.Numeric, Degraded.Numeric);
  }
};

} // namespace

const Application *enerj::apps::sorApp() {
  static SorApp App;
  return &App;
}
