//===- exec/compiled.h - Compiled (app x level) trial kernels ---*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled evaluation path's program store. Each of the nine
/// evaluation applications has an ISA kernel in the `.fej` corpus
/// (examples/fej/isa/<name>.fej); a ProgramCache lowers each
/// (application, level) grid cell through the full pipeline exactly once
/// —
///
///     fenerj::compile -> compileToIsa -> isa::assemble
///       -> isa::verify + analysis::verifyFlow -> opt::optimizeProgram
///
/// — and hands out the resulting CompiledKernel to every seed of the
/// cell. The cache key is (application name, level): the optimizer's
/// static energy estimate is priced at the cell's level, and the
/// regression suite pins that no cell is ever served another cell's
/// binary. Compilation failures throw; a grid must never silently run a
/// kernel that did not verify.
///
/// A CompiledKernel also carries the kernel's precise reference outputs
/// (the level-None run of the verified binary, which is seed-independent
/// and computed once at compile time), so per-trial QoS needs no second
/// execution: a trial's QoS error is the bounded relative error of its
/// degraded r1/f1 against the reference, averaged over the two result
/// registers — 0 exactly when the run is bitwise precise, 1 for a
/// trapped or non-finite run.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_EXEC_COMPILED_H
#define ENERJ_EXEC_COMPILED_H

#include "exec/machine.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace enerj {
namespace exec {

/// One (application, level) cell's verified, optimized binary plus its
/// precise reference outputs.
struct CompiledKernel {
  std::string AppName;
  ApproxLevel Level = ApproxLevel::None;
  isa::IsaProgram Binary;
  /// The level-None run's result registers (r1 / f1) — the QoS reference.
  int64_t RefInt = 0;
  double RefFp = 0.0;
};

/// What one compiled trial measures; the harness maps this onto its
/// TrialResult (pricing the stats through the energy model there, so
/// this layer stays below the harness).
struct CompiledTrialResult {
  /// Bounded relative error of (r1, f1) against the kernel reference;
  /// 1.0 for a trapped run.
  double QosError = 0.0;
  /// Operation and storage statistics (partial up to a trap).
  RunStats Stats;
  bool Trapped = false;
  std::string Error; ///< The trap message, when Trapped.
  /// The logical clock when the run ended.
  uint64_t Cycles = 0;
  /// Per-site metrics keyed by the kernel's ISA regions ("<app>" and
  /// "<app>/approx"); empty unless requested.
  obs::MetricsRegistry Metrics;
};

/// Thread-safe store of compiled kernels, keyed by (application name,
/// level). Entries have stable addresses: a returned reference stays
/// valid for the cache's lifetime, so trial lists can point into it.
class ProgramCache {
public:
  /// \p KernelDir is the directory holding <app>.fej kernel sources.
  explicit ProgramCache(std::string KernelDir);

  /// Returns the kernel for (\p AppName, \p Level), compiling it on
  /// first use. Throws std::runtime_error when the kernel source is
  /// missing or any pipeline stage rejects it.
  const CompiledKernel &get(const std::string &AppName, ApproxLevel Level);

  /// Number of distinct (app, level) entries compiled so far.
  size_t size() const;

private:
  std::string KernelDir;
  mutable std::mutex Mutex;
  std::map<std::pair<std::string, int>, std::unique_ptr<CompiledKernel>>
      Cache;
};

/// Runs one trial of \p Kernel under \p Config for \p WorkloadSeed on a
/// FastMachine. The effective fault seed is mixSeed(Config.Seed,
/// WorkloadSeed) — the same per-trial derivation as the interpreter
/// path — so the result is a pure function of the trial's identity.
/// \p Power optionally meters the run against an intermittent supply
/// (pure accounting: the measured result is unchanged); \p MaxOps caps
/// the instruction budget (0 keeps the FastMachine default) so a
/// resilience policy's op budget reaches the compiled path too.
CompiledTrialResult runCompiledTrial(const CompiledKernel &Kernel,
                                     const FaultConfig &Config,
                                     uint64_t WorkloadSeed,
                                     bool CollectMetrics = false,
                                     BlockMode Mode = BlockMode::Batched,
                                     env::PowerMeter *Power = nullptr,
                                     uint64_t MaxOps = 0);

} // namespace exec
} // namespace enerj

#endif // ENERJ_EXEC_COMPILED_H
