//===- exec/machine.cpp - Batched-fault ISA fast executor -----------------===//

#include "exec/machine.h"

#include "support/bits.h"

#include <bit>
#include <cmath>
#include <limits>

using namespace enerj;
using namespace enerj::exec;

namespace {

/// Stream salts: each fault site class owns an independent sub-stream of
/// the trial seed (support/rng mixSeed), so adding draws to one site
/// never perturbs another.
constexpr uint64_t SaltSramRead = 0xE1;
constexpr uint64_t SaltSramWrite = 0xE2;
constexpr uint64_t SaltIntTiming = 0xE3;
constexpr uint64_t SaltFpTiming = 0xE4;
constexpr uint64_t SaltPayload = 0xE5;

} // namespace

FastMachine::FastMachine(const isa::IsaProgram &Program,
                         const FaultConfig &Config, BlockMode Mode)
    : Program(Program), Config(Config), Rates(FaultRates::of(Config)),
      Mode(Mode),
      SramRead(Rates.SramReadUpsetPerBit,
               mixSeed(this->Config.Seed, SaltSramRead), Mode),
      SramWrite(Rates.SramWriteFailurePerBit,
                mixSeed(this->Config.Seed, SaltSramWrite), Mode),
      IntTiming(Rates.TimingErrorPerOp,
                mixSeed(this->Config.Seed, SaltIntTiming), Mode),
      FpTiming(Rates.TimingErrorPerOp,
               mixSeed(this->Config.Seed, SaltFpTiming), Mode),
      Payload(mixSeed(this->Config.Seed, SaltPayload)),
      FpWidth(Rates), Dram(Rates),
      IntRegs(isa::NumIntRegs, 0), FpRegs(isa::NumFpRegs, 0.0),
      Memory(Program.memoryWords(), 0),
      LastAccess(Program.memoryWords(), 0) {
  // The same storage footprint as isa::Machine: half of each register
  // file is approximate SRAM, the data segment splits per the program.
  Ledger.lease(Region::Sram, isa::FirstApproxReg * 8 * 2,
               (isa::NumIntRegs - isa::FirstApproxReg) * 8 +
                   (isa::NumFpRegs - isa::FirstApproxReg) * 8);
  Ledger.lease(Region::Dram, Program.PreciseWords * 8,
               Program.ApproxWords * 8);
}

void FastMachine::attachMetrics(obs::MetricsRegistry *Registry,
                                const std::string &Label) {
  Metrics = Registry;
  if (!Metrics)
    return;
  CoreRegion = Metrics->internRegion(Label);
  ApproxRegion = Metrics->internRegion(Label + "/approx");
  Metrics->enterRegion(CoreRegion);
}

RunStats FastMachine::stats() const {
  RunStats Stats;
  Stats.Ops = Ops;
  Stats.Ops.TimingErrors = TimingErrors;
  Stats.Storage = Ledger.snapshot();
  return Stats;
}

void FastMachine::record(obs::OpKind Kind, unsigned Flipped,
                         bool InApproxRegion) {
  if (!Metrics)
    return;
  if (InApproxRegion) {
    Metrics->enterRegion(ApproxRegion);
    Metrics->recordOp(Kind, Flipped);
    Metrics->exitRegion();
    return;
  }
  Metrics->recordOp(Kind, Flipped);
}

uint64_t FastMachine::nextReadMask() {
  if (ReadMaskPos == MaskLineWords) {
    SramRead.nextMasks(MaskLineWords, ReadMasks.data());
    ReadMaskPos = 0;
  }
  return ReadMasks[ReadMaskPos++];
}

uint64_t FastMachine::nextWriteMask() {
  if (WriteMaskPos == MaskLineWords) {
    SramWrite.nextMasks(MaskLineWords, WriteMasks.data());
    WriteMaskPos = 0;
  }
  return WriteMasks[WriteMaskPos++];
}

int64_t FastMachine::readInt(unsigned Index) {
  int64_t Raw = IntRegs[Index];
  if (isa::isApproxReg(Index)) {
    uint64_t Mask = nextReadMask();
    Raw = fromBits<int64_t>(toBits(Raw) ^ Mask);
    record(obs::OpKind::SramRead,
           static_cast<unsigned>(std::popcount(Mask)), false);
  }
  return Raw;
}

void FastMachine::writeInt(unsigned Index, int64_t Value) {
  if (isa::isApproxReg(Index)) {
    uint64_t Mask = nextWriteMask();
    Value = fromBits<int64_t>(toBits(Value) ^ Mask);
    record(obs::OpKind::SramWrite,
           static_cast<unsigned>(std::popcount(Mask)), false);
  }
  IntRegs[Index] = Value;
}

double FastMachine::readFp(unsigned Index) {
  double Raw = FpRegs[Index];
  if (isa::isApproxReg(Index)) {
    uint64_t Mask = nextReadMask();
    Raw = fromBits<double>(toBits(Raw) ^ Mask);
    record(obs::OpKind::SramRead,
           static_cast<unsigned>(std::popcount(Mask)), false);
  }
  return Raw;
}

void FastMachine::writeFp(unsigned Index, double Value) {
  if (isa::isApproxReg(Index)) {
    uint64_t Mask = nextWriteMask();
    Value = fromBits<double>(toBits(Value) ^ Mask);
    record(obs::OpKind::SramWrite,
           static_cast<unsigned>(std::popcount(Mask)), false);
  }
  FpRegs[Index] = Value;
}

FastMachine::Snapshot FastMachine::snapshot() const {
  return Snapshot{SramRead,     SramWrite,    IntTiming, FpTiming,
                  Payload,      IntLast,      FpLast,    TimingErrors,
                  Ledger,       Ops,          ReadMasks, WriteMasks,
                  ReadMaskPos,  WriteMaskPos, IntRegs,   FpRegs,
                  Memory,       LastAccess};
}

void FastMachine::restore(const Snapshot &Snap) {
  SramRead = Snap.SramRead;
  SramWrite = Snap.SramWrite;
  IntTiming = Snap.IntTiming;
  FpTiming = Snap.FpTiming;
  Payload = Snap.Payload;
  IntLast = Snap.IntLast;
  FpLast = Snap.FpLast;
  TimingErrors = Snap.TimingErrors;
  Ledger = Snap.Ledger;
  Ops = Snap.Ops;
  ReadMasks = Snap.ReadMasks;
  WriteMasks = Snap.WriteMasks;
  ReadMaskPos = Snap.ReadMaskPos;
  WriteMaskPos = Snap.WriteMaskPos;
  IntRegs = Snap.IntRegs;
  FpRegs = Snap.FpRegs;
  Memory = Snap.Memory;
  LastAccess = Snap.LastAccess;
}

uint64_t FastMachine::dramDecay(uint64_t Bits, uint64_t ElapsedCycles) {
  double P = Dram.flipProbability(ElapsedCycles);
  if (P <= 0.0)
    return Bits;
  // Aggregate escape: all 64 per-bit Bernoulli(p) flips collapse into one
  // "does anything flip" draw with probability 1-(1-p)^64; only a
  // faulting word (rare at Table 2 rates) is expanded bit by bit, with
  // the flip count drawn from Binomial(64, p) conditioned on >= 1.
  double PAny = -std::expm1(64.0 * std::log1p(-P));
  if (Payload.nextDouble() >= PAny)
    return Bits;
  uint64_t Count;
  do {
    Count = Payload.nextBinomial(64, P);
  } while (Count == 0);
  uint64_t Mask = 0;
  if (Count >= 64) {
    Mask = ~0ULL;
  } else {
    for (uint64_t I = 0; I < Count; ++I) {
      unsigned Bit;
      do {
        Bit = static_cast<unsigned>(Payload.nextBelow(64));
      } while (Mask & (1ULL << Bit));
      Mask |= 1ULL << Bit;
    }
  }
  return Bits ^ Mask;
}

bool FastMachine::memAccess(uint64_t Address, bool ApproxHint, bool IsStore,
                            uint64_t &Bits, std::string &TrapMessage) {
  if (Address >= Memory.size()) {
    TrapMessage = "memory access out of range (address " +
                  std::to_string(Address) + ")";
    return false;
  }
  bool InApprox = Program.isApproxAddress(Address);
  // The dynamic discipline, exactly as isa::Machine enforces it.
  if (!ApproxHint && InApprox) {
    TrapMessage = "precise access to approximate memory";
    return false;
  }
  if (ApproxHint && IsStore && !InApprox) {
    TrapMessage = "approximate store to precise memory";
    return false;
  }
  if (InApprox) {
    unsigned Flipped = 0;
    if (!IsStore) {
      uint64_t Before = Memory[Address];
      Memory[Address] =
          dramDecay(Before, Ledger.now() - LastAccess[Address]);
      Flipped =
          static_cast<unsigned>(std::popcount(Before ^ Memory[Address]));
    }
    LastAccess[Address] = Ledger.now();
    record(IsStore ? obs::OpKind::DramStore : obs::OpKind::DramLoad,
           Flipped, true);
  }
  if (IsStore)
    Memory[Address] = Bits;
  else
    Bits = Memory[Address];
  Ledger.tick(); // A memory access advances time.
  powerTick(env::PowerOpClass::Mem);
  return true;
}

uint64_t FastMachine::timingResult(uint64_t CorrectBits, bool Fp) {
  uint64_t Produced = CorrectBits;
  bool Fires = Fp ? FpTiming.fires() : IntTiming.fires();
  if (Fires) {
    ++TimingErrors;
    switch (Config.Mode) {
    case ErrorMode::RandomValue:
      Produced = Payload.next();
      break;
    case ErrorMode::SingleBitFlip:
      Produced = flipBit(Produced,
                         static_cast<unsigned>(Payload.nextBelow(64)));
      break;
    case ErrorMode::LastValue:
      Produced = Fp ? FpLast : IntLast;
      break;
    }
  }
  (Fp ? FpLast : IntLast) = Produced;
  return Produced;
}

FastResult FastMachine::run(uint64_t MaxInstructions) {
  FastResult Result = resume(0, MaxInstructions);
  if (!Result.Trapped && !Result.Halted) {
    Result.Trapped = true;
    Result.TrapMessage = "instruction budget exhausted (runaway loop?)";
  }
  return Result;
}

FastResult FastMachine::resume(uint64_t StartPc, uint64_t MaxInstructions) {
  FastResult Result;
  uint64_t Pc = StartPc;

  auto Trap = [&](std::string Message, int Line) {
    Result.Trapped = true;
    Result.TrapMessage =
        "line " + std::to_string(Line) + ": " + std::move(Message);
  };

  auto BranchTo = [&](int64_t Target, int Line) {
    if (Target < 0 ||
        static_cast<size_t>(Target) > Program.Instructions.size()) {
      Trap("branch target out of range", Line);
      return false;
    }
    Pc = static_cast<uint64_t>(Target);
    return true;
  };

  while (Result.InstructionsExecuted < MaxInstructions) {
    if (Pc >= Program.Instructions.size()) {
      Result.Halted = true; // Falling off the end is a clean halt.
      Result.NextPc = Pc;
      return Result;
    }
    const isa::Instruction &I = Program.Instructions[Pc];
    ++Result.InstructionsExecuted;
    ++Pc;

    auto IntResult = [&](int64_t Correct) {
      Ledger.tick();
      if (!I.Approx) {
        ++Ops.PreciseInt;
        powerTick(env::PowerOpClass::PreciseInt);
        record(obs::OpKind::PreciseInt, 0, false);
        return Correct;
      }
      ++Ops.ApproxInt;
      powerTick(env::PowerOpClass::ApproxInt);
      uint64_t Bits = timingResult(toBits(Correct), /*Fp=*/false);
      record(obs::OpKind::ApproxInt,
             static_cast<unsigned>(std::popcount(Bits ^ toBits(Correct))),
             false);
      return fromBits<int64_t>(Bits);
    };
    auto FpResult = [&](double Correct) {
      Ledger.tick();
      if (!I.Approx) {
        ++Ops.PreciseFp;
        powerTick(env::PowerOpClass::PreciseFp);
        record(obs::OpKind::PreciseFp, 0, false);
        return Correct;
      }
      ++Ops.ApproxFp;
      powerTick(env::PowerOpClass::ApproxFp);
      uint64_t Bits = timingResult(toBits(Correct), /*Fp=*/true);
      record(obs::OpKind::ApproxFp,
             static_cast<unsigned>(std::popcount(Bits ^ toBits(Correct))),
             false);
      return fromBits<double>(Bits);
    };
    auto NarrowIf = [&](double Value) {
      return I.Approx ? FpWidth.narrow(Value) : Value;
    };

    switch (I.Op) {
    case isa::Opcode::Li:
      writeInt(I.Rd, I.Imm);
      Ledger.tick();
      powerTick(env::PowerOpClass::Mem);
      break;
    case isa::Opcode::Lfi:
      writeFp(I.Rd, I.FpImm);
      Ledger.tick();
      powerTick(env::PowerOpClass::Mem);
      break;
    case isa::Opcode::Mv:
      writeInt(I.Rd, readInt(I.Ra));
      Ledger.tick();
      powerTick(env::PowerOpClass::Mem);
      break;
    case isa::Opcode::Fmv:
      writeFp(I.Rd, readFp(I.Ra));
      Ledger.tick();
      powerTick(env::PowerOpClass::Mem);
      break;
    case isa::Opcode::Endorse:
      writeInt(I.Rd, readInt(I.Ra));
      Ledger.tick();
      powerTick(env::PowerOpClass::Mem);
      break;
    case isa::Opcode::Fendorse:
      writeFp(I.Rd, readFp(I.Ra));
      Ledger.tick();
      powerTick(env::PowerOpClass::Mem);
      break;

    case isa::Opcode::Add:
      writeInt(I.Rd, IntResult(wrapAdd(readInt(I.Ra), readInt(I.Rb))));
      break;
    case isa::Opcode::Sub:
      writeInt(I.Rd, IntResult(wrapSub(readInt(I.Ra), readInt(I.Rb))));
      break;
    case isa::Opcode::Mul:
      writeInt(I.Rd, IntResult(wrapMul(readInt(I.Ra), readInt(I.Rb))));
      break;
    case isa::Opcode::Div: {
      int64_t Divisor = readInt(I.Rb);
      int64_t Dividend = readInt(I.Ra);
      if (Divisor == 0) {
        if (!I.Approx)
          return Trap("integer division by zero", I.Line), Result;
        writeInt(I.Rd, IntResult(0));
        break;
      }
      writeInt(I.Rd, IntResult(wrapDiv(Dividend, Divisor)));
      break;
    }
    case isa::Opcode::Rem: {
      int64_t Divisor = readInt(I.Rb);
      int64_t Dividend = readInt(I.Ra);
      if (Divisor == 0) {
        if (!I.Approx)
          return Trap("integer remainder by zero", I.Line), Result;
        writeInt(I.Rd, IntResult(0));
        break;
      }
      writeInt(I.Rd, IntResult(wrapRem(Dividend, Divisor)));
      break;
    }
    case isa::Opcode::Addi:
      writeInt(I.Rd, IntResult(wrapAdd(readInt(I.Ra), I.Imm)));
      break;

    case isa::Opcode::Seq:
    case isa::Opcode::Sne:
    case isa::Opcode::Slt:
    case isa::Opcode::Sle:
    case isa::Opcode::And:
    case isa::Opcode::Or: {
      int64_t Lhs = readInt(I.Ra);
      int64_t Rhs = readInt(I.Rb);
      int64_t Value = 0;
      switch (I.Op) {
      case isa::Opcode::Seq:
        Value = Lhs == Rhs ? 1 : 0;
        break;
      case isa::Opcode::Sne:
        Value = Lhs != Rhs ? 1 : 0;
        break;
      case isa::Opcode::Slt:
        Value = Lhs < Rhs ? 1 : 0;
        break;
      case isa::Opcode::Sle:
        Value = Lhs <= Rhs ? 1 : 0;
        break;
      case isa::Opcode::And:
        Value = Lhs & Rhs;
        break;
      default:
        Value = Lhs | Rhs;
        break;
      }
      writeInt(I.Rd, IntResult(Value));
      break;
    }

    case isa::Opcode::Fadd:
      writeFp(I.Rd, FpResult(NarrowIf(readFp(I.Ra)) +
                             NarrowIf(readFp(I.Rb))));
      break;
    case isa::Opcode::Fsub:
      writeFp(I.Rd, FpResult(NarrowIf(readFp(I.Ra)) -
                             NarrowIf(readFp(I.Rb))));
      break;
    case isa::Opcode::Fmul:
      writeFp(I.Rd, FpResult(NarrowIf(readFp(I.Ra)) *
                             NarrowIf(readFp(I.Rb))));
      break;
    case isa::Opcode::Fdiv: {
      double Divisor = NarrowIf(readFp(I.Rb));
      double Dividend = NarrowIf(readFp(I.Ra));
      if (Divisor == 0.0 && I.Approx) {
        writeFp(I.Rd,
                FpResult(std::numeric_limits<double>::quiet_NaN()));
        break;
      }
      writeFp(I.Rd, FpResult(Dividend / Divisor));
      break;
    }

    case isa::Opcode::Cvt:
      writeFp(I.Rd, FpResult(static_cast<double>(readInt(I.Ra))));
      break;
    case isa::Opcode::Cvti: {
      double Value = NarrowIf(readFp(I.Ra));
      int64_t Truncated = 0;
      if (std::isfinite(Value)) {
        if (Value >= 9.2233720368547758e18)
          Truncated = INT64_MAX;
        else if (Value <= -9.2233720368547758e18)
          Truncated = INT64_MIN;
        else
          Truncated = static_cast<int64_t>(Value);
      }
      writeInt(I.Rd, IntResult(Truncated));
      break;
    }

    case isa::Opcode::Lw:
    case isa::Opcode::Flw: {
      int64_t Base = readInt(I.Ra);
      uint64_t Address =
          static_cast<uint64_t>(Base) + static_cast<uint64_t>(I.Imm);
      uint64_t Bits = 0;
      std::string Message;
      if (!memAccess(Address, I.Approx, /*IsStore=*/false, Bits, Message))
        return Trap(std::move(Message), I.Line), Result;
      if (I.Op == isa::Opcode::Lw)
        writeInt(I.Rd, fromBits<int64_t>(Bits));
      else
        writeFp(I.Rd, fromBits<double>(Bits));
      break;
    }
    case isa::Opcode::Sw:
    case isa::Opcode::Fsw: {
      int64_t Base = readInt(I.Ra);
      uint64_t Address =
          static_cast<uint64_t>(Base) + static_cast<uint64_t>(I.Imm);
      uint64_t Bits = I.Op == isa::Opcode::Sw ? toBits(readInt(I.Rd))
                                              : toBits(readFp(I.Rd));
      std::string Message;
      if (!memAccess(Address, I.Approx, /*IsStore=*/true, Bits, Message))
        return Trap(std::move(Message), I.Line), Result;
      break;
    }

    case isa::Opcode::Fbeq:
    case isa::Opcode::Fbne:
    case isa::Opcode::Fblt:
    case isa::Opcode::Fble: {
      double Lhs = readFp(I.Rd);
      double Rhs = readFp(I.Ra);
      ++Ops.PreciseFp; // The comparison.
      Ledger.tick();
      powerTick(env::PowerOpClass::PreciseFp);
      record(obs::OpKind::PreciseFp, 0, false);
      bool Taken = false;
      switch (I.Op) {
      case isa::Opcode::Fbeq:
        Taken = Lhs == Rhs;
        break;
      case isa::Opcode::Fbne:
        Taken = Lhs != Rhs;
        break;
      case isa::Opcode::Fblt:
        Taken = Lhs < Rhs;
        break;
      default:
        Taken = Lhs <= Rhs;
        break;
      }
      if (Taken && !BranchTo(I.Imm, I.Line))
        return Result;
      break;
    }

    case isa::Opcode::Beq:
    case isa::Opcode::Bne:
    case isa::Opcode::Blt:
    case isa::Opcode::Ble: {
      int64_t Lhs = readInt(I.Rd);
      int64_t Rhs = readInt(I.Ra);
      ++Ops.PreciseInt; // The comparison.
      Ledger.tick();
      powerTick(env::PowerOpClass::PreciseInt);
      record(obs::OpKind::PreciseInt, 0, false);
      bool Taken = false;
      switch (I.Op) {
      case isa::Opcode::Beq:
        Taken = Lhs == Rhs;
        break;
      case isa::Opcode::Bne:
        Taken = Lhs != Rhs;
        break;
      case isa::Opcode::Blt:
        Taken = Lhs < Rhs;
        break;
      default:
        Taken = Lhs <= Rhs;
        break;
      }
      if (Taken && !BranchTo(I.Imm, I.Line))
        return Result;
      break;
    }
    case isa::Opcode::Jmp:
      Ledger.tick();
      powerTick(env::PowerOpClass::Mem);
      if (!BranchTo(I.Imm, I.Line))
        return Result;
      break;
    case isa::Opcode::Halt:
      Result.Halted = true;
      Result.NextPc = Pc;
      return Result;
    }
  }
  // Budget reached mid-program: not a trap at this layer — run() turns it
  // into the classic runaway-loop trap, a checkpointing host resumes.
  Result.NextPc = Pc;
  return Result;
}
