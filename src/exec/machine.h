//===- exec/machine.h - Batched-fault ISA fast executor ---------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled eval path's execution engine: the same architected
/// semantics as isa::Machine (same traps, same operation counting, same
/// logical-clock ticks, same Section 4 fault models), but with the
/// per-operation RNG draws replaced by fault/block.h upset streams:
///
///  * approximate register reads/writes consume 64 bits of a pre-drawn
///    SRAM read/write UpsetStream and XOR the (almost always zero) flip
///    mask into the value — the common path is one compare, no draw;
///  * approximate ALU/FPU results consult an EventStream whose next
///    faulty *operation index* is precomputed, so the timer-upset check
///    is branch-free until an error actually fires;
///  * approximate-region loads keep the elapsed-time-dependent DRAM
///    decay model, collapsed to one aggregate word-level escape draw
///    (64 independent per-bit flips fire together with probability
///    1-(1-p)^64) with the rare faulting word expanded bit by bit.
///
/// Every stream is seeded as mixSeed(Config.Seed, site salt), so a trial
/// remains a pure function of its identity — the compiled grid is
/// bitwise deterministic at any thread count. At ApproxLevel::None no
/// stream ever consumes randomness and the final machine state is
/// bitwise identical to isa::Machine's (exec_differential_test pins
/// this); under approximation the RNG consumption *order* differs from
/// the classic per-op models, so the differential gate is statistical,
/// exactly as for the validated optimizer (docs/OPTIMIZER.md).
///
/// The flip-mask aggregate counts (faults, flipped bits via popcount)
/// feed an optional obs::MetricsRegistry keyed by the binary's ISA
/// regions, so `eval --metrics` still sums exactly on the compiled path.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_EXEC_MACHINE_H
#define ENERJ_EXEC_MACHINE_H

#include "arch/memory.h"
#include "arch/stats.h"
#include "fault/block.h"
#include "fault/config.h"
#include "fault/models.h"
#include "isa/isa.h"
#include "obs/metrics.h"

#include <string>
#include <vector>

namespace enerj {
namespace exec {

/// Outcome of a fast run — the same shape as isa::MachineResult.
struct FastResult {
  bool Trapped = false;
  std::string TrapMessage;
  uint64_t InstructionsExecuted = 0;
};

/// One fast executor bound to a verified program and a configuration.
class FastMachine {
public:
  /// \p Mode selects batched block refills (the default) or the scalar
  /// reference draw order — the two are bitwise identical by the
  /// fault/block.h contract, so tests can run either.
  FastMachine(const isa::IsaProgram &Program, const FaultConfig &Config,
              BlockMode Mode = BlockMode::Batched);

  /// Attaches a metrics registry for the coming run. Sites are keyed by
  /// the ISA region the operation touched: "<label>" for the functional
  /// units and register file, "<label>/approx" for the reduced-refresh
  /// data region. Must be called before run().
  void attachMetrics(obs::MetricsRegistry *Registry,
                     const std::string &Label);

  /// Runs from instruction 0 until halt, a trap, or \p MaxInstructions.
  FastResult run(uint64_t MaxInstructions = 10'000'000);

  /// --- Observable state (no faults, nothing recorded). ---
  int64_t intReg(unsigned Index) const { return IntRegs[Index]; }
  double fpReg(unsigned Index) const { return FpRegs[Index]; }
  uint64_t memBits(uint64_t Address) const { return Memory[Address]; }

  /// Statistics in the same shape as isa::Machine::stats().
  RunStats stats() const;

  /// The logical clock after the run (one tick per dynamic op).
  uint64_t now() const { return Ledger.now(); }

private:
  int64_t readInt(unsigned Index);
  void writeInt(unsigned Index, int64_t Value);
  double readFp(unsigned Index);
  void writeFp(unsigned Index, double Value);
  uint64_t dramDecay(uint64_t Bits, uint64_t ElapsedCycles);
  bool memAccess(uint64_t Address, bool ApproxHint, bool IsStore,
                 uint64_t &Bits, std::string &TrapMessage);
  uint64_t timingResult(uint64_t CorrectBits, bool Fp);
  void record(obs::OpKind Kind, unsigned Flipped, bool ApproxRegion);

  const isa::IsaProgram &Program;
  FaultConfig Config;
  BlockMode Mode;
  UpsetStream SramRead;
  UpsetStream SramWrite;
  EventStream IntTiming;
  EventStream FpTiming;
  Rng Payload; ///< Rare-path draws: corrupt values, flip positions, DRAM.
  FpWidthModel FpWidth;
  DramModel Dram; ///< Probability computation only; draws stay local.
  uint64_t IntLast = 0, FpLast = 0; ///< ErrorMode::LastValue latches.
  uint64_t TimingErrors = 0;
  MemoryLedger Ledger;
  OperationStats Ops;
  obs::MetricsRegistry *Metrics = nullptr;
  uint32_t CoreRegion = 0, ApproxRegion = 0;

  std::vector<int64_t> IntRegs;
  std::vector<double> FpRegs;
  std::vector<uint64_t> Memory;
  std::vector<uint64_t> LastAccess;
};

} // namespace exec
} // namespace enerj

#endif // ENERJ_EXEC_MACHINE_H
