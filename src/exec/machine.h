//===- exec/machine.h - Batched-fault ISA fast executor ---------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled eval path's execution engine: the same architected
/// semantics as isa::Machine (same traps, same operation counting, same
/// logical-clock ticks, same Section 4 fault models), but with the
/// per-operation RNG draws replaced by fault/block.h upset streams:
///
///  * approximate register reads/writes consume 64 bits of a pre-drawn
///    SRAM read/write UpsetStream and XOR the (almost always zero) flip
///    mask into the value — the common path is one compare, no draw;
///  * approximate ALU/FPU results consult an EventStream whose next
///    faulty *operation index* is precomputed, so the timer-upset check
///    is branch-free until an error actually fires;
///  * approximate-region loads keep the elapsed-time-dependent DRAM
///    decay model, collapsed to one aggregate word-level escape draw
///    (64 independent per-bit flips fire together with probability
///    1-(1-p)^64) with the rare faulting word expanded bit by bit.
///
/// Every stream is seeded as mixSeed(Config.Seed, site salt), so a trial
/// remains a pure function of its identity — the compiled grid is
/// bitwise deterministic at any thread count. At ApproxLevel::None no
/// stream ever consumes randomness and the final machine state is
/// bitwise identical to isa::Machine's (exec_differential_test pins
/// this); under approximation the RNG consumption *order* differs from
/// the classic per-op models, so the differential gate is statistical,
/// exactly as for the validated optimizer (docs/OPTIMIZER.md).
///
/// The flip-mask aggregate counts (faults, flipped bits via popcount)
/// feed an optional obs::MetricsRegistry keyed by the binary's ISA
/// regions, so `eval --metrics` still sums exactly on the compiled path.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_EXEC_MACHINE_H
#define ENERJ_EXEC_MACHINE_H

#include "arch/memory.h"
#include "arch/stats.h"
#include "env/power.h"
#include "fault/block.h"
#include "fault/config.h"
#include "fault/models.h"
#include "isa/isa.h"
#include "obs/metrics.h"

#include <array>
#include <string>
#include <vector>

namespace enerj {
namespace exec {

/// Outcome of a fast run — the same shape as isa::MachineResult, plus
/// the segmented-execution fields resume() needs.
struct FastResult {
  bool Trapped = false;
  std::string TrapMessage;
  uint64_t InstructionsExecuted = 0; ///< This call's instructions only.
  bool Halted = false;  ///< Clean halt (Halt or fell off the end).
  uint64_t NextPc = 0;  ///< Where resume() should continue when neither
                        ///< halted nor trapped (budget reached).
};

/// One fast executor bound to a verified program and a configuration.
class FastMachine {
public:
  /// \p Mode selects batched block refills (the default) or the scalar
  /// reference draw order — the two are bitwise identical by the
  /// fault/block.h contract, so tests can run either.
  FastMachine(const isa::IsaProgram &Program, const FaultConfig &Config,
              BlockMode Mode = BlockMode::Batched);

  /// Attaches a metrics registry for the coming run. Sites are keyed by
  /// the ISA region the operation touched: "<label>" for the functional
  /// units and register file, "<label>/approx" for the reduced-refresh
  /// data region. Must be called before run().
  void attachMetrics(obs::MetricsRegistry *Registry,
                     const std::string &Label);

  /// Attaches a power meter for the coming run (or nullptr to detach):
  /// every ticked operation is charged against the intermittent-supply
  /// model in src/env. Pure accounting — never perturbs execution.
  void attachPower(env::PowerMeter *Meter) { Power = Meter; }

  /// Runs from instruction 0 until halt, a trap, or \p MaxInstructions
  /// (exhausting the budget traps, preserving the classic contract).
  FastResult run(uint64_t MaxInstructions = 10'000'000);

  /// Segmented execution: runs from \p StartPc for at most
  /// \p MaxInstructions. Reaching the budget is NOT a trap here — the
  /// result carries Halted=false and the NextPc to continue from, so a
  /// checkpointing host can stop, snapshot, and resume. A sequence of
  /// resume() calls is bitwise identical to one uninterrupted run.
  FastResult resume(uint64_t StartPc, uint64_t MaxInstructions);

  /// The complete restartable machine state: registers, memory, decay
  /// timestamps, fault-stream and payload RNG state, prefetched mask
  /// lines, latches, counters, and the storage ledger. Capturing it and
  /// later restore()-ing replays the exact execution — snapshot() is the
  /// checkpoint the power environment models, and power_restore_test
  /// proves restore == uninterrupted bitwise on every kernel. (The
  /// attached metrics registry and power meter are observers, not
  /// machine state, and are not captured.)
  struct Snapshot {
    UpsetStream SramRead;
    UpsetStream SramWrite;
    EventStream IntTiming;
    EventStream FpTiming;
    Rng Payload;
    uint64_t IntLast = 0, FpLast = 0;
    uint64_t TimingErrors = 0;
    MemoryLedger Ledger;
    OperationStats Ops;
    std::array<uint64_t, 8> ReadMasks{}, WriteMasks{};
    unsigned ReadMaskPos = 0, WriteMaskPos = 0;
    std::vector<int64_t> IntRegs;
    std::vector<double> FpRegs;
    std::vector<uint64_t> Memory;
    std::vector<uint64_t> LastAccess;
  };

  Snapshot snapshot() const;
  void restore(const Snapshot &S);

  /// --- Observable state (no faults, nothing recorded). ---
  int64_t intReg(unsigned Index) const { return IntRegs[Index]; }
  double fpReg(unsigned Index) const { return FpRegs[Index]; }
  uint64_t memBits(uint64_t Address) const { return Memory[Address]; }

  /// Statistics in the same shape as isa::Machine::stats().
  RunStats stats() const;

  /// The logical clock after the run (one tick per dynamic op).
  uint64_t now() const { return Ledger.now(); }

private:
  int64_t readInt(unsigned Index);
  void writeInt(unsigned Index, int64_t Value);
  double readFp(unsigned Index);
  void writeFp(unsigned Index, double Value);
  uint64_t nextReadMask();
  uint64_t nextWriteMask();
  void powerTick(env::PowerOpClass C) {
    if (Power)
      Power->onOp(C);
  }
  uint64_t dramDecay(uint64_t Bits, uint64_t ElapsedCycles);
  bool memAccess(uint64_t Address, bool ApproxHint, bool IsStore,
                 uint64_t &Bits, std::string &TrapMessage);
  uint64_t timingResult(uint64_t CorrectBits, bool Fp);
  void record(obs::OpKind Kind, unsigned Flipped, bool ApproxRegion);

  const isa::IsaProgram &Program;
  FaultConfig Config;
  FaultRates Rates; ///< One snapshot feeds every stream and model below.
  BlockMode Mode;
  UpsetStream SramRead;
  UpsetStream SramWrite;
  EventStream IntTiming;
  EventStream FpTiming;
  Rng Payload; ///< Rare-path draws: corrupt values, flip positions, DRAM.
  FpWidthModel FpWidth;
  DramModel Dram; ///< Probability computation only; draws stay local.
  uint64_t IntLast = 0, FpLast = 0; ///< ErrorMode::LastValue latches.
  uint64_t TimingErrors = 0;
  MemoryLedger Ledger;
  OperationStats Ops;
  obs::MetricsRegistry *Metrics = nullptr;
  env::PowerMeter *Power = nullptr;
  uint32_t CoreRegion = 0, ApproxRegion = 0;

  /// SRAM flip masks are drawn one cache line (8 words) at a time via
  /// UpsetStream::nextMasks — the SIMD-wide hot path — and consumed
  /// word by word, preserving the exact scalar mask sequence.
  static constexpr unsigned MaskLineWords = 8;
  std::array<uint64_t, MaskLineWords> ReadMasks{}, WriteMasks{};
  unsigned ReadMaskPos = MaskLineWords, WriteMaskPos = MaskLineWords;

  std::vector<int64_t> IntRegs;
  std::vector<double> FpRegs;
  std::vector<uint64_t> Memory;
  std::vector<uint64_t> LastAccess;
};

} // namespace exec
} // namespace enerj

#endif // ENERJ_EXEC_MACHINE_H
