//===- exec/compiled.cpp - Compiled (app x level) trial kernels -----------===//

#include "exec/compiled.h"

#include "analysis/isa_flow.h"
#include "analysis/opt/pipeline.h"
#include "fenerj/codegen.h"
#include "fenerj/diag.h"
#include "fenerj/typecheck.h"
#include "isa/assembler.h"
#include "isa/verifier.h"
#include "support/rng.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

using namespace enerj;
using namespace enerj::exec;

namespace {

/// Bounded relative error in [0, 1]; exact equality short-circuits so a
/// bitwise-precise run scores exactly 0.0.
double boundedRelErr(double Reference, double Degraded) {
  if (Reference == Degraded)
    return 0.0;
  if (!std::isfinite(Degraded))
    return 1.0;
  double Error = std::fabs(Degraded - Reference) /
                 std::max(std::fabs(Reference), 1.0);
  return Error < 1.0 ? Error : 1.0;
}

std::unique_ptr<CompiledKernel> compileKernel(const std::string &KernelDir,
                                              const std::string &AppName,
                                              ApproxLevel Level) {
  std::string Path = KernelDir + "/" + AppName + ".fej";
  std::ifstream In(Path);
  if (!In.good())
    throw std::runtime_error("exec: no ISA kernel for application '" +
                             AppName + "' (" + Path + ")");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  fenerj::DiagnosticEngine Diags;
  fenerj::ClassTable Table;
  std::optional<fenerj::Program> Prog =
      fenerj::compile(Source, Table, Diags);
  if (!Prog)
    throw std::runtime_error("exec: " + Path +
                             " failed FEnerJ type checking");
  fenerj::CodegenResult Code = fenerj::compileToIsa(*Prog);
  if (!Code.Ok)
    throw std::runtime_error("exec: " + Path + ": " + Code.Error);
  std::vector<std::string> Errors;
  std::optional<isa::IsaProgram> Binary =
      isa::assemble(Code.Assembly, Errors);
  if (!Binary)
    throw std::runtime_error(
        "exec: " + Path + " failed to assemble: " +
        (Errors.empty() ? std::string("unknown error") : Errors.front()));
  if (!isa::verify(*Binary).empty())
    throw std::runtime_error("exec: " + Path +
                             " failed ISA verification");
  if (!analysis::verifyFlow(*Binary).ok())
    throw std::runtime_error("exec: " + Path +
                             " failed flow verification");

  // The same validated pipeline the optimizer tooling runs; the static
  // energy estimate is priced at the cell's level. A rejected pass is a
  // proven no-op, so Ok is the only gate.
  analysis::opt::OptOptions Options;
  Options.EnergyLevel = Level;
  analysis::opt::OptReport Report =
      analysis::opt::optimizeProgram(*Binary, Options);
  if (!Report.Ok)
    throw std::runtime_error("exec: " + Path +
                             " rejected by the optimizer: " + Report.Error);

  auto Kernel = std::make_unique<CompiledKernel>();
  Kernel->AppName = AppName;
  Kernel->Level = Level;
  Kernel->Binary = std::move(*Binary);

  // The precise reference: the level-None run is seed-independent (no
  // stream consumes randomness), so one execution at compile time
  // serves every trial of the cell.
  FastMachine Reference(Kernel->Binary,
                        FaultConfig::preset(ApproxLevel::None));
  FastResult Ref = Reference.run();
  if (Ref.Trapped)
    throw std::runtime_error("exec: " + Path +
                             " traps under precise execution: " +
                             Ref.TrapMessage);
  Kernel->RefInt = Reference.intReg(1);
  Kernel->RefFp = Reference.fpReg(1);
  return Kernel;
}

} // namespace

ProgramCache::ProgramCache(std::string KernelDir)
    : KernelDir(std::move(KernelDir)) {}

const CompiledKernel &ProgramCache::get(const std::string &AppName,
                                        ApproxLevel Level) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Key = std::make_pair(AppName, static_cast<int>(Level));
  auto It = Cache.find(Key);
  if (It == Cache.end())
    It = Cache.emplace(Key, compileKernel(KernelDir, AppName, Level)).first;
  return *It->second;
}

size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Cache.size();
}

CompiledTrialResult enerj::exec::runCompiledTrial(
    const CompiledKernel &Kernel, const FaultConfig &Config,
    uint64_t WorkloadSeed, bool CollectMetrics, BlockMode Mode,
    env::PowerMeter *Power, uint64_t MaxOps) {
  FaultConfig RunConfig = Config;
  // The same per-trial stream derivation as the interpreter path.
  RunConfig.Seed = mixSeed(Config.Seed, WorkloadSeed);

  CompiledTrialResult Result;
  FastMachine M(Kernel.Binary, RunConfig, Mode);
  if (CollectMetrics)
    M.attachMetrics(&Result.Metrics, Kernel.AppName);
  if (Power)
    M.attachPower(Power);
  FastResult Run = MaxOps ? M.run(MaxOps) : M.run();
  Result.Stats = M.stats();
  Result.Cycles = M.now();
  if (Run.Trapped) {
    Result.Trapped = true;
    Result.Error = Run.TrapMessage;
    Result.QosError = 1.0;
    return Result;
  }
  Result.QosError =
      0.5 * boundedRelErr(static_cast<double>(Kernel.RefInt),
                          static_cast<double>(M.intReg(1))) +
      0.5 * boundedRelErr(Kernel.RefFp, M.fpReg(1));
  return Result;
}
