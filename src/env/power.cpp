//===- env/power.cpp - Intermittent-supply power environments -------------===//

#include "env/power.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace enerj;
using namespace enerj::env;

// A "forever" segment length: long past any trial (trials run millions of
// ticks; this is ~9.2e18). Reloading on exhaustion keeps it truly endless.
static constexpr uint64_t ForeverTicks = ~0ULL >> 1;

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

static bool parseDoubleField(std::string_view Text, double &Out) {
  std::string Buf(Text);
  char *End = nullptr;
  double V = std::strtod(Buf.c_str(), &End);
  if (End == Buf.c_str() || *End != '\0' || !std::isfinite(V))
    return false;
  Out = V;
  return true;
}

static bool parseU64Field(std::string_view Text, uint64_t &Out) {
  std::string Buf(Text);
  char *End = nullptr;
  unsigned long long V = std::strtoull(Buf.c_str(), &End, 10);
  if (End == Buf.c_str() || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// Splits "name:a:b" into the name and the knob fields.
static std::vector<std::string_view> splitColons(std::string_view Text) {
  std::vector<std::string_view> Parts;
  size_t Start = 0;
  while (true) {
    size_t Colon = Text.find(':', Start);
    if (Colon == std::string_view::npos) {
      Parts.push_back(Text.substr(Start));
      return Parts;
    }
    Parts.push_back(Text.substr(Start, Colon - Start));
    Start = Colon + 1;
  }
}

std::optional<PowerTraceSpec> PowerTraceSpec::preset(std::string_view Text,
                                                     std::string *Error) {
  auto Fail = [&](const std::string &Message) -> std::optional<PowerTraceSpec> {
    if (Error)
      *Error = Message;
    return std::nullopt;
  };
  std::vector<std::string_view> Parts = splitColons(Text);
  PowerTraceSpec Spec;
  Spec.Name = std::string(Text);
  if (Parts[0] == "steady") {
    Spec.Kind = TraceKind::Steady;
    if (Parts.size() > 2)
      return Fail("steady takes at most one knob: steady[:<rate>]");
    if (Parts.size() == 2 &&
        (!parseDoubleField(Parts[1], Spec.Rate) || Spec.Rate < 0.0))
      return Fail("malformed steady rate '" + std::string(Parts[1]) + "'");
    return Spec;
  }
  if (Parts[0] == "brownout") {
    Spec.Kind = TraceKind::Brownout;
    if (Parts.size() != 1 && Parts.size() != 3)
      return Fail("brownout takes zero or two knobs: brownout[:<high>:<low>]");
    if (Parts.size() == 3) {
      if (!parseDoubleField(Parts[1], Spec.HighRate) || Spec.HighRate < 0.0)
        return Fail("malformed brownout high rate '" + std::string(Parts[1]) +
                    "'");
      if (!parseDoubleField(Parts[2], Spec.LowRate) || Spec.LowRate < 0.0)
        return Fail("malformed brownout low rate '" + std::string(Parts[2]) +
                    "'");
    }
    return Spec;
  }
  if (Parts[0] == "harvest") {
    Spec.Kind = TraceKind::Harvest;
    if (Parts.size() > 2)
      return Fail("harvest takes at most one knob: harvest[:<seed>]");
    if (Parts.size() == 2 && !parseU64Field(Parts[1], Spec.Seed))
      return Fail("malformed harvest seed '" + std::string(Parts[1]) + "'");
    return Spec;
  }
  return Fail("unknown power trace preset '" + std::string(Parts[0]) +
              "' (presets: steady[:<rate>], brownout[:<high>:<low>], "
              "harvest[:<seed>]; or pass a trace file path)");
}

std::optional<PowerTraceSpec> PowerTraceSpec::fromFile(const std::string &Path,
                                                       std::string *Error) {
  auto Fail = [&](const std::string &Message) -> std::optional<PowerTraceSpec> {
    if (Error)
      *Error = Message;
    return std::nullopt;
  };
  std::ifstream In(Path);
  if (!In)
    return Fail("cannot open power trace file '" + Path + "'");
  PowerTraceSpec Spec;
  Spec.Kind = TraceKind::File;
  Spec.Name = Path;
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream Fields(Line);
    std::string TicksText, RateText, Extra;
    if (!(Fields >> TicksText))
      continue; // Blank / comment-only line.
    auto At = [&] { return Path + ":" + std::to_string(LineNo); };
    if (!(Fields >> RateText) || (Fields >> Extra))
      return Fail(At() + ": expected '<ticks> <rate>'");
    TraceSegment Segment;
    if (!parseU64Field(TicksText, Segment.Ticks) || Segment.Ticks == 0)
      return Fail(At() + ": malformed tick count '" + TicksText +
                  "' (need a positive integer)");
    if (!parseDoubleField(RateText, Segment.Rate) || Segment.Rate < 0.0)
      return Fail(At() + ": malformed rate '" + RateText +
                  "' (need a finite non-negative number)");
    Spec.Segments.push_back(Segment);
  }
  if (Spec.Segments.empty())
    return Fail("power trace file '" + Path + "' contains no segments");
  Spec.TailRate = Spec.Segments.back().Rate;
  return Spec;
}

double PowerTraceSpec::meanRate(uint64_t Horizon) const {
  if (Horizon == 0)
    return 0.0;
  PowerTrace Cursor(*this);
  double Units = 0.0;
  uint64_t Left = Horizon;
  while (Left > 0) {
    uint64_t Chunk = std::min(Left, Cursor.segmentRemaining());
    Units += static_cast<double>(Chunk) * Cursor.rate();
    Cursor.advance(Chunk);
    Left -= Chunk;
  }
  return Units / static_cast<double>(Horizon);
}

//===----------------------------------------------------------------------===//
// PowerTrace cursor
//===----------------------------------------------------------------------===//

void PowerTrace::load() {
  switch (Spec.Kind) {
  case TraceKind::Steady:
    CurRate = Spec.Rate;
    CurRemaining = ForeverTicks;
    return;
  case TraceKind::Brownout:
    if (Index % 2 == 0) {
      CurRate = Spec.HighRate;
      CurRemaining = Spec.HighTicks ? Spec.HighTicks : 1;
    } else {
      CurRate = Spec.LowRate;
      CurRemaining = Spec.LowTicks ? Spec.LowTicks : 1;
    }
    return;
  case TraceKind::Harvest: {
    // Window i is a pure function of (Seed, i): any cursor over the same
    // spec yields the identical sequence, on any thread.
    Rng G(mixSeed(Spec.Seed, Index));
    uint64_t Span = Spec.MaxWindow > Spec.MinWindow
                        ? Spec.MaxWindow - Spec.MinWindow + 1
                        : 1;
    CurRemaining = Spec.MinWindow + G.nextBelow(Span);
    if (CurRemaining == 0)
      CurRemaining = 1;
    CurRate = G.nextDouble() * Spec.PeakRate;
    return;
  }
  case TraceKind::File:
    if (Index < Spec.Segments.size()) {
      CurRate = Spec.Segments[Index].Rate;
      CurRemaining = Spec.Segments[Index].Ticks;
    } else {
      CurRate = Spec.TailRate;
      CurRemaining = ForeverTicks;
    }
    return;
  }
  CurRate = 0.0;
  CurRemaining = ForeverTicks;
}

//===----------------------------------------------------------------------===//
// CheckpointPolicy
//===----------------------------------------------------------------------===//

std::optional<CheckpointPolicy> CheckpointPolicy::parse(std::string_view Text,
                                                        std::string *Error) {
  auto Fail = [&](const std::string &Message) -> std::optional<CheckpointPolicy> {
    if (Error)
      *Error = Message;
    return std::nullopt;
  };
  CheckpointPolicy Policy;
  Policy.Spec = std::string(Text);
  if (Text == "none") {
    Policy.Kind = CheckpointKind::None;
    return Policy;
  }
  if (Text == "preregion") {
    Policy.Kind = CheckpointKind::PreRegion;
    return Policy;
  }
  if (Text.rfind("periodic:", 0) == 0) {
    Policy.Kind = CheckpointKind::PeriodicOps;
    std::string_view Count = Text.substr(9);
    if (!parseU64Field(Count, Policy.EveryOps) || Policy.EveryOps == 0)
      return Fail("malformed checkpoint interval '" + std::string(Count) +
                  "' (need a positive op count, e.g. periodic:20000)");
    return Policy;
  }
  return Fail("unknown checkpoint policy '" + std::string(Text) +
              "' (policies: none, periodic:<ops>, preregion)");
}

//===----------------------------------------------------------------------===//
// PowerMeter
//===----------------------------------------------------------------------===//

double PowerMeter::opCost(PowerOpClass C, const FaultConfig &Config) {
  EnergyConstants Constants;
  switch (C) {
  case PowerOpClass::PreciseInt:
    return Constants.IntOpUnits;
  case PowerOpClass::ApproxInt:
    return Constants.IntOpUnits *
           instructionEnergyFactor(/*IsFp=*/false, /*IsApprox=*/true, Config);
  case PowerOpClass::PreciseFp:
    return Constants.FpOpUnits;
  case PowerOpClass::ApproxFp:
    return Constants.FpOpUnits *
           instructionEnergyFactor(/*IsFp=*/true, /*IsApprox=*/true, Config);
  case PowerOpClass::Mem:
    // Memory operations tick the clock without an ALU execute stage:
    // price them at the non-reducible fetch/decode share.
    return Constants.FetchDecodeUnits;
  }
  return Constants.IntOpUnits;
}

PowerMeter::PowerMeter(const PowerEnv &Env, const FaultConfig &Config)
    : Env(Env), Trace(Env.Trace) {
  for (unsigned I = 0; I < NumPowerOpClasses; ++I) {
    Cost[I] = opCost(static_cast<PowerOpClass>(I), Config);
    MaxCost = std::max(MaxCost, Cost[I]);
  }
  Buffer = Env.BufferCapacity;
  // The boot threshold must cover the restore cost plus at least one op,
  // or a restored machine would die before committing anything.
  RestoreTarget =
      std::min(Env.BufferCapacity,
               std::max(Env.RestoreThresholdFrac * Env.BufferCapacity,
                        Env.RestoreCostUnits + MaxCost + 1.0));
}

void PowerMeter::fail() {
  Failed = true;
  S.Survived = false;
}

void PowerMeter::step(PowerOpClass C) {
  double OpCost = Cost[static_cast<unsigned>(C)];
  ++ClassOps[static_cast<unsigned>(C)];
  // One logical tick: harvest the supply (capped by the buffer), then
  // spend the op.
  Buffer = std::min(Env.BufferCapacity, Buffer + Trace.rate());
  Trace.advance(1);
  Buffer -= OpCost;
  ++S.LiveOps;
  S.LiveUnits += OpCost;
  S.ChargedUnits += OpCost;
  ++OpsSinceCkpt;
  UnitsSinceCkpt += OpCost;
  if (Buffer < 0.0) {
    // The op that drained the buffer is lost with everything since the
    // last checkpoint; its physical result stands as the (bitwise
    // identical) final replay. Residual negative charge is forgiven.
    Buffer = 0.0;
    powerLoss();
    return;
  }
  if (Env.Checkpoint.Kind == CheckpointKind::PeriodicOps &&
      OpsSinceCkpt >= Env.Checkpoint.EveryOps)
    checkpoint();
}

void PowerMeter::onRegionEnter() {
  if (!Failed && Env.Checkpoint.Kind == CheckpointKind::PreRegion)
    checkpoint();
}

void PowerMeter::checkpoint() {
  ++S.Checkpoints;
  if (Events)
    Events(PowerEventKind::Checkpoint, S.LiveOps);
  S.ChargedUnits += Env.CheckpointCostUnits;
  Buffer -= Env.CheckpointCostUnits;
  OpsSinceCkpt = 0;
  UnitsSinceCkpt = 0.0;
  if (Buffer < 0.0) {
    // The checkpoint itself drained the supply — but it committed, so
    // the subsequent loss replays nothing.
    Buffer = 0.0;
    powerLoss();
  }
}

void PowerMeter::powerLoss() {
  ++S.Losses;
  if (Events)
    Events(PowerEventKind::Loss, S.LiveOps);
  if (++Restarts > Env.MaxRestarts) {
    fail();
    return;
  }
  offPeriod();
  if (Failed)
    return;
  S.ChargedUnits += Env.RestoreCostUnits;
  Buffer -= Env.RestoreCostUnits;
  replay();
  if (!Failed && Events)
    Events(PowerEventKind::Restore, S.LiveOps);
}

/// Dark period: the machine is off while the supply recharges the buffer
/// to the boot threshold. Stepped segment-by-segment in closed form.
void PowerMeter::offPeriod() {
  uint64_t Off = 0;
  while (Buffer < RestoreTarget) {
    double Rate = Trace.rate();
    uint64_t Remaining = Trace.segmentRemaining();
    if (Rate <= 0.0) {
      // A dead segment: sleep through it entirely.
      Off += Remaining;
      Trace.advance(Remaining);
    } else {
      double Need = RestoreTarget - Buffer;
      uint64_t Ticks = static_cast<uint64_t>(std::ceil(Need / Rate));
      if (Ticks > Remaining)
        Ticks = Remaining;
      if (Ticks == 0)
        Ticks = 1;
      Buffer = std::min(Env.BufferCapacity,
                        Buffer + static_cast<double>(Ticks) * Rate);
      Off += Ticks;
      Trace.advance(Ticks);
    }
    if (Off > Env.MaxOffTicks) {
      S.OffTicks += Off;
      fail();
      return;
    }
  }
  S.OffTicks += Off;
}

/// Re-executes the work lost at the last power loss. The replay is an
/// aggregate model — the lost ops re-run at their average cost, metered
/// against the trace segment by segment — because the physical machine
/// restored from a bitwise-complete checkpoint and its one physical
/// execution already carries the committed values. Replays can die and
/// restart like live execution, and under the periodic policy they
/// commit checkpoints of their own, so forward progress mirrors a real
/// intermittent system.
void PowerMeter::replay() {
  uint64_t Remaining = OpsSinceCkpt;
  if (Remaining == 0) {
    OpsSinceCkpt = 0;
    UnitsSinceCkpt = 0.0;
    return;
  }
  double Avg = UnitsSinceCkpt / static_cast<double>(Remaining);
  uint64_t SinceCkpt = 0;
  while (Remaining > 0) {
    double Rate = Trace.rate();
    double Net = Rate - Avg;
    uint64_t Chunk = std::min(Remaining, Trace.segmentRemaining());
    if (Env.Checkpoint.Kind == CheckpointKind::PeriodicOps) {
      uint64_t ToCkpt = Env.Checkpoint.EveryOps - SinceCkpt;
      Chunk = std::min(Chunk, ToCkpt);
    }
    bool Dies = false;
    if (Net < 0.0) {
      uint64_t UntilDeath = static_cast<uint64_t>(Buffer / -Net);
      if (UntilDeath < Chunk) {
        Chunk = UntilDeath;
        Dies = true;
      }
    }
    if (Chunk > 0) {
      Buffer = std::min(Env.BufferCapacity,
                        Buffer + static_cast<double>(Chunk) * Net);
      Trace.advance(Chunk);
      S.ReExecutedOps += Chunk;
      S.ChargedUnits += static_cast<double>(Chunk) * Avg;
      Remaining -= Chunk;
      SinceCkpt += Chunk;
    }
    if (Dies) {
      Buffer = std::max(Buffer, 0.0);
      ++S.Losses;
      if (++Restarts > Env.MaxRestarts) {
        fail();
        return;
      }
      Remaining += SinceCkpt; // Uncommitted replay progress is lost again.
      SinceCkpt = 0;
      offPeriod();
      if (Failed)
        return;
      S.ChargedUnits += Env.RestoreCostUnits;
      Buffer -= Env.RestoreCostUnits;
      continue;
    }
    if (Env.Checkpoint.Kind == CheckpointKind::PeriodicOps &&
        SinceCkpt >= Env.Checkpoint.EveryOps && Remaining > 0) {
      ++S.Checkpoints;
      S.ChargedUnits += Env.CheckpointCostUnits;
      Buffer -= Env.CheckpointCostUnits;
      SinceCkpt = 0;
      if (Buffer < 0.0) {
        Buffer = 0.0;
        ++S.Losses;
        if (++Restarts > Env.MaxRestarts) {
          fail();
          return;
        }
        offPeriod();
        if (Failed)
          return;
        S.ChargedUnits += Env.RestoreCostUnits;
        Buffer -= Env.RestoreCostUnits;
      }
    }
  }
  // Live execution resumes with the replay's uncommitted tail as its
  // ops-since-checkpoint.
  OpsSinceCkpt = SinceCkpt;
  UnitsSinceCkpt = static_cast<double>(SinceCkpt) * Avg;
}

bool PowerMeter::forecastSustainable(
    const PowerEnv &Env, const FaultConfig &Config,
    const std::array<uint64_t, NumPowerOpClasses> &Mix) {
  uint64_t Total = 0;
  double Units = 0.0;
  for (unsigned I = 0; I < NumPowerOpClasses; ++I) {
    Total += Mix[I];
    Units += static_cast<double>(Mix[I]) *
             opCost(static_cast<PowerOpClass>(I), Config);
  }
  if (Total == 0)
    return true;
  double AvgCost = Units / static_cast<double>(Total);
  // Forecast over a horizon the size of the workload itself (at least one
  // full brownout period's worth of ticks so short mixes still see the
  // whole supply shape).
  uint64_t Horizon = std::max<uint64_t>(Total, 1000000ULL);
  return Env.Trace.meanRate(Horizon) >= AvgCost;
}
