//===- env/power.h - Intermittent-supply power environments ----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment-level fault model: a trial no longer assumes an
/// always-on supply. A PowerTraceSpec describes the supply — steady,
/// square-wave brownout, harvesting-style windows (deterministic synthetic
/// generators seeded via mixSeed), or a committed trace file — as a
/// piecewise-constant rate of abstract energy units per logical tick. A
/// PowerMeter runs beside an execution engine (the interpreter Simulator
/// or the compiled FastMachine), charges every ticked operation against a
/// capacitor-style energy buffer fed by the trace, and raises power-loss
/// events when the buffer is exhausted.
///
/// Checkpoint/restore is modeled, not improvised: a checkpoint captures
/// the complete machine state *including the fault-stream state*, so
/// restore-then-replay is bitwise identical to uninterrupted execution.
/// FastMachine::snapshot()/restore() implement exactly that capture and
/// power_restore_test proves the property on all nine kernels; the meter
/// therefore never re-runs work physically. Instead it accounts each
/// power loss honestly: an off-period while the buffer recharges, a
/// restore cost, and the re-execution of every operation since the last
/// checkpoint (replay is itself metered against the trace and can die
/// again). The physical run *is* the committed execution — measured QoS,
/// op counts, and storage are never perturbed by the meter — while the
/// checkpoint, restore, and re-execution energy all land in the trial's
/// EffectiveEnergyFactor via overheadRatio(). A supply that can never
/// complete an inter-checkpoint interval exhausts the restart cap and the
/// trial ends as TrialOutcome::PowerFailed.
///
/// Everything here is a pure function of (trace spec, checkpoint policy,
/// the op sequence): no wall clocks, no global state — power-armed grids
/// stay byte-identical across thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_ENV_POWER_H
#define ENERJ_ENV_POWER_H

#include "energy/model.h"
#include "fault/config.h"
#include "support/rng.h"

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace enerj {
namespace env {

/// One piece of a piecewise-constant supply: \p Ticks logical ticks at
/// \p Rate abstract energy units per tick.
struct TraceSegment {
  uint64_t Ticks = 0;
  double Rate = 0.0;
};

/// The supply shapes the environment knows how to generate.
enum class TraceKind {
  Steady,   ///< Constant rate forever (the always-on baseline).
  Brownout, ///< Square wave: HighTicks at HighRate, LowTicks at LowRate.
  Harvest,  ///< Harvesting-style random windows, seeded via mixSeed.
  File,     ///< Segments loaded from a committed trace file.
};

/// Immutable description of a supply trace. Cheap to copy; a PowerTrace
/// cursor instantiated over a spec yields the identical rate sequence
/// every time (synthetic windows are a pure function of (Seed, index)).
struct PowerTraceSpec {
  TraceKind Kind = TraceKind::Steady;
  std::string Name = "steady"; ///< Echoed in eval JSON v5 / text output.

  double Rate = 48.0; ///< Steady: units per tick (>= any op cost).

  double HighRate = 48.0; ///< Brownout: on-period supply.
  double LowRate = 8.0;   ///< Brownout: brownout-period supply.
  uint64_t HighTicks = 200000;
  uint64_t LowTicks = 50000;

  uint64_t Seed = 0x0EA7F00DULL; ///< Harvest: window-generator base seed.
  double PeakRate = 64.0;        ///< Harvest: window rate in [0, Peak).
  uint64_t MinWindow = 30000;    ///< Harvest: window length bounds.
  uint64_t MaxWindow = 120000;

  std::vector<TraceSegment> Segments; ///< File: the loaded segments.
  double TailRate = 0.0; ///< File: rate forever after the last segment.

  /// Parses a synthetic preset: "steady", "steady:<rate>", "brownout",
  /// "brownout:<high>:<low>", "harvest", "harvest:<seed>". Returns
  /// nullopt and fills \p Error on an unknown name or malformed knob.
  static std::optional<PowerTraceSpec> preset(std::string_view Text,
                                              std::string *Error);

  /// Loads a trace file: one "<ticks> <rate>" segment per line, blank
  /// lines and '#' comments ignored, the last segment's rate persisting
  /// as the tail. Returns nullopt and fills \p Error on an unreadable
  /// file, an empty trace, or a malformed/invalid segment.
  static std::optional<PowerTraceSpec> fromFile(const std::string &Path,
                                                std::string *Error);

  /// Mean supply rate over the first \p Horizon ticks — the forecast the
  /// power-aware resilience ladder compares against a rung's expected
  /// per-op cost before spending an attempt on it.
  double meanRate(uint64_t Horizon) const;
};

/// Deterministic cursor over a trace spec: the supply rate for
/// consecutive logical ticks. One per meter; advancing is O(1) amortized
/// (harvest windows are generated on demand from mixSeed(Seed, index)).
class PowerTrace {
public:
  explicit PowerTrace(const PowerTraceSpec &Spec) : Spec(Spec) { load(); }

  double rate() const { return CurRate; }
  uint64_t segmentRemaining() const { return CurRemaining; }

  /// Advances \p Ticks logical ticks; \p Ticks must not exceed
  /// segmentRemaining() (step segment by segment for larger jumps).
  void advance(uint64_t Ticks) {
    CurRemaining -= Ticks;
    if (CurRemaining == 0) {
      ++Index;
      load();
    }
  }

private:
  void load();

  const PowerTraceSpec &Spec;
  uint64_t Index = 0;
  double CurRate = 0.0;
  uint64_t CurRemaining = 0;
};

/// When the meter commits a checkpoint.
enum class CheckpointKind {
  None,        ///< Never: every loss replays from the trial start.
  PeriodicOps, ///< Every EveryOps committed operations.
  PreRegion,   ///< At RegionScope entry (the PR 5 annotation sites).
};

struct CheckpointPolicy {
  CheckpointKind Kind = CheckpointKind::None;
  uint64_t EveryOps = 0;     ///< PeriodicOps interval.
  std::string Spec = "none"; ///< Echoed in eval JSON v5.

  /// Parses "none", "periodic:<N>" (N >= 1), or "preregion". Returns
  /// nullopt and fills \p Error otherwise.
  static std::optional<CheckpointPolicy> parse(std::string_view Text,
                                               std::string *Error);
};

/// A complete power environment: the supply, the checkpoint policy, and
/// the platform constants of the buffered-power model. Shared read-only
/// across all trials of a grid.
struct PowerEnv {
  PowerTraceSpec Trace;
  CheckpointPolicy Checkpoint;

  double BufferCapacity = 100000.0; ///< Capacitor buffer, energy units.
  double RestoreThresholdFrac = 0.6; ///< Recharge-to fraction before boot.
  double CheckpointCostUnits = 2000.0;
  double RestoreCostUnits = 1000.0;
  uint32_t MaxRestarts = 256;         ///< Restart cap => PowerFailed.
  uint64_t MaxOffTicks = 50000000ULL; ///< Dead-supply cap => PowerFailed.
};

/// The operation classes the meter prices (chosen by the tick sites of
/// both execution engines; register/SRAM traffic rides on the op cost).
enum class PowerOpClass : uint8_t {
  PreciseInt = 0,
  ApproxInt = 1,
  PreciseFp = 2,
  ApproxFp = 3,
  Mem = 4,
};
inline constexpr unsigned NumPowerOpClasses = 5;

/// Per-attempt power accounting, surfaced per cell in eval JSON v5.
struct PowerStats {
  uint64_t Losses = 0;        ///< Power-loss events raised.
  uint64_t Checkpoints = 0;   ///< Checkpoints committed (live + replay).
  uint64_t ReExecutedOps = 0; ///< Ops re-executed across all replays.
  uint64_t LiveOps = 0;       ///< Unique committed operations.
  uint64_t OffTicks = 0;      ///< Ticks spent dark, recharging.
  double LiveUnits = 0.0;     ///< Energy of the committed work alone.
  double ChargedUnits = 0.0;  ///< Committed + replayed + ckpt/restore.
  bool Survived = true;       ///< False once the restart/off cap trips.

  /// The honest energy multiplier for EffectiveEnergyFactor: everything
  /// the environment charged over what an always-on run would have.
  double overheadRatio() const {
    return LiveUnits > 0.0 ? ChargedUnits / LiveUnits : 1.0;
  }
};

/// What the meter reports to an attached event sink (the harness maps
/// these onto obs::TraceEventKind for the Perfetto export; env does not
/// depend on obs).
enum class PowerEventKind {
  Loss,       ///< The buffer was exhausted; the machine went dark.
  Checkpoint, ///< A live checkpoint committed.
  Restore,    ///< The machine rebooted and (abstractly) replayed.
};

/// Meters one attempt's execution against a power environment. The
/// engine calls onOp() at every ticked operation (and onRegionEnter() at
/// RegionScope sites); the meter never perturbs the engine — it only
/// accounts. After the attempt, stats() carries the loss/checkpoint/
/// replay counters and failed() says whether the environment ever let
/// the attempt complete.
class PowerMeter {
public:
  PowerMeter(const PowerEnv &Env, const FaultConfig &Config);

  /// Optional event sink, called with (kind, committed live ops at the
  /// event). The harness uses it to emit power events into the trial's
  /// Perfetto trace; null by default.
  std::function<void(PowerEventKind, uint64_t)> Events;

  /// Charges one operation of class \p C. Once failed, a no-op: the
  /// physical run continues (its measurements are still valid) but no
  /// further environment accounting happens.
  void onOp(PowerOpClass C) {
    if (Failed)
      return;
    step(C);
  }

  /// RegionScope entry: commits a checkpoint under the PreRegion policy.
  void onRegionEnter();

  const PowerStats &stats() const { return S; }
  bool failed() const { return Failed; }
  /// Ops observed per class — the mix the ladder's forecast re-prices.
  const std::array<uint64_t, NumPowerOpClasses> &opMix() const {
    return ClassOps;
  }

  /// The per-op cost of class \p C under \p Config: the Section 5.4 base
  /// units scaled by instructionEnergyFactor (memory ops cost the
  /// fetch/decode share). Exposed for the forecast and the tests.
  static double opCost(PowerOpClass C, const FaultConfig &Config);

  /// Forecast: with the op mix \p Mix re-priced at \p Config, can the
  /// trace's long-run mean rate sustain the average op cost? The
  /// power-aware ladder skips rungs this predicts will die (the last
  /// reachable rung is always attempted — the forecast is a heuristic,
  /// the meter is the truth).
  static bool forecastSustainable(
      const PowerEnv &Env, const FaultConfig &Config,
      const std::array<uint64_t, NumPowerOpClasses> &Mix);

private:
  void step(PowerOpClass C);
  void checkpoint();
  void powerLoss();
  void offPeriod();
  void replay();
  void fail();

  const PowerEnv &Env;
  PowerTrace Trace;
  std::array<double, NumPowerOpClasses> Cost;
  double MaxCost = 0.0;
  double Buffer;          ///< Current charge, units.
  double RestoreTarget;   ///< Recharge-to level before booting.
  uint64_t OpsSinceCkpt = 0;
  double UnitsSinceCkpt = 0.0;
  uint32_t Restarts = 0;
  bool Failed = false;
  std::array<uint64_t, NumPowerOpClasses> ClassOps{};
  PowerStats S;
};

} // namespace env
} // namespace enerj

#endif // ENERJ_ENV_POWER_H
