//===- support/bits.h - Bit-level reinterpretation helpers -----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-pattern helpers used by the fault models. Approximate storage and
/// approximate functional units operate on raw bit patterns (a flipped bit
/// in a double is a flipped bit, whatever it does to the value), so every
/// fault model round-trips values through these helpers.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_SUPPORT_BITS_H
#define ENERJ_SUPPORT_BITS_H

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace enerj {

/// Reinterprets an arithmetic value as its raw bit pattern, zero-extended
/// into 64 bits.
template <typename T> uint64_t toBits(T Value) {
  static_assert(std::is_arithmetic_v<T> && sizeof(T) <= 8,
                "toBits supports arithmetic types up to 64 bits");
  using Unsigned =
      std::conditional_t<sizeof(T) == 1, uint8_t,
      std::conditional_t<sizeof(T) == 2, uint16_t,
      std::conditional_t<sizeof(T) == 4, uint32_t, uint64_t>>>;
  Unsigned Raw;
  std::memcpy(&Raw, &Value, sizeof(T));
  return static_cast<uint64_t>(Raw);
}

/// Reinterprets the low bits of \p Bits as a value of type \p T.
/// Booleans are semantically one bit: any corrupted pattern normalizes
/// to its low bit (writing other bits back into a C++ bool would be
/// undefined behavior).
template <typename T> T fromBits(uint64_t Bits) {
  static_assert(std::is_arithmetic_v<T> && sizeof(T) <= 8,
                "fromBits supports arithmetic types up to 64 bits");
  if constexpr (std::is_same_v<T, bool>)
    return (Bits & 1) != 0;
  else {
    using Unsigned =
        std::conditional_t<sizeof(T) == 1, uint8_t,
        std::conditional_t<sizeof(T) == 2, uint16_t,
        std::conditional_t<sizeof(T) == 4, uint32_t, uint64_t>>>;
    Unsigned Raw = static_cast<Unsigned>(Bits);
    T Value;
    std::memcpy(&Value, &Raw, sizeof(T));
    return Value;
  }
}

/// Number of value bits in T when stored in approximate memory.
/// A bool carries one meaningful bit; faults in its padding bits would
/// be invisible, so the models flip only the bit that matters.
template <typename T> constexpr unsigned bitWidth() {
  if constexpr (std::is_same_v<T, bool>)
    return 1;
  else
    return static_cast<unsigned>(sizeof(T)) * 8;
}

/// Flips bit \p Index (0 = least significant) of \p Bits.
inline uint64_t flipBit(uint64_t Bits, unsigned Index) {
  return Bits ^ (1ULL << Index);
}

/// Number of bits that differ between two \p Width-bit patterns. This is
/// how telemetry detects faults — comparing a model's output against its
/// input instead of asking the model — so observation never touches the
/// RNG stream.
inline unsigned countFlippedBits(uint64_t Before, uint64_t After,
                                 unsigned Width) {
  uint64_t Mask = Width >= 64 ? ~0ULL : (1ULL << Width) - 1ULL;
  return static_cast<unsigned>(std::popcount((Before ^ After) & Mask));
}

/// --- Wrapping integer arithmetic. Approximate values can be arbitrary
/// --- bit patterns, so the simulated semantics is two's-complement
/// --- wraparound (as in Java); these helpers make that explicit instead
/// --- of relying on signed overflow, which C++ leaves undefined.

template <typename T> T wrapAdd(T A, T B) {
  static_assert(std::is_integral_v<T>);
  using U = std::make_unsigned_t<T>;
  return static_cast<T>(static_cast<U>(A) + static_cast<U>(B));
}

template <typename T> T wrapSub(T A, T B) {
  static_assert(std::is_integral_v<T>);
  using U = std::make_unsigned_t<T>;
  return static_cast<T>(static_cast<U>(A) - static_cast<U>(B));
}

template <typename T> T wrapMul(T A, T B) {
  static_assert(std::is_integral_v<T>);
  using U = std::make_unsigned_t<T>;
  return static_cast<T>(static_cast<U>(A) * static_cast<U>(B));
}

template <typename T> T wrapNeg(T A) {
  static_assert(std::is_integral_v<T>);
  using U = std::make_unsigned_t<T>;
  return static_cast<T>(U(0) - static_cast<U>(A));
}

/// Two's-complement division: MIN / -1 wraps to MIN (Java semantics)
/// instead of the undefined signed overflow. Callers handle B == 0.
template <typename T> T wrapDiv(T A, T B) {
  static_assert(std::is_integral_v<T>);
  if constexpr (std::is_signed_v<T>) {
    if (B == T(-1))
      return wrapNeg(A);
  }
  return static_cast<T>(A / B);
}

/// Remainder partner of wrapDiv: MIN % -1 is 0.
template <typename T> T wrapRem(T A, T B) {
  static_assert(std::is_integral_v<T>);
  if constexpr (std::is_signed_v<T>) {
    if (B == T(-1))
      return T(0);
  }
  return static_cast<T>(A % B);
}

/// Truncates the mantissa of a float bit pattern to \p MantissaBits
/// (of the 23 stored bits), rounding toward zero, as a narrow FP multiplier
/// would. Exponent and sign are untouched; the paper's width-reduction
/// strategy only drops low-order mantissa bits.
inline uint32_t truncateFloatMantissa(uint32_t Bits, unsigned MantissaBits) {
  if (MantissaBits >= 23)
    return Bits;
  uint32_t Mask = ~((1U << (23 - MantissaBits)) - 1U);
  return Bits & (0xFF800000U | Mask);
}

/// Truncates the mantissa of a double bit pattern to \p MantissaBits
/// (of the 52 stored bits), rounding toward zero.
inline uint64_t truncateDoubleMantissa(uint64_t Bits, unsigned MantissaBits) {
  if (MantissaBits >= 52)
    return Bits;
  uint64_t Mask = ~((1ULL << (52 - MantissaBits)) - 1ULL);
  return Bits & (0xFFF0000000000000ULL | Mask);
}

} // namespace enerj

#endif // ENERJ_SUPPORT_BITS_H
