//===- support/rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256**) used everywhere in the
/// simulator and the workload generators. Fault injection must be exactly
/// reproducible given a seed, so we avoid std::mt19937 (whose distributions
/// are not portable across standard library implementations) and implement
/// both the generator and the distributions we need.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_SUPPORT_RNG_H
#define ENERJ_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace enerj {

/// Deterministic xoshiro256** generator with SplitMix64 seeding.
///
/// All simulator randomness flows through one of these. The sequence is a
/// pure function of the seed on every platform.
class Rng {
public:
  /// Seeds the four 64-bit words of state from \p Seed via SplitMix64.
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit output.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling, so the result is exactly uniform.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBernoulli(double P);

  /// Returns a uniformly distributed value in [Lo, Hi] (inclusive).
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Draws from Binomial(N, P) — the number of successes in \p N independent
  /// trials of probability \p P. Uses a direct-waiting-time algorithm for
  /// small N*P and per-trial sampling otherwise; exact in distribution.
  uint64_t nextBinomial(uint64_t N, double P);

  /// Draws a standard-normal variate (Marsaglia polar method).
  double nextGaussian();

  /// Splits off an independently seeded child generator. Children of the
  /// same parent with different \p Salt values are decorrelated.
  Rng split(uint64_t Salt);

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

/// Derives the seed of sub-stream \p Salt of \p Base as a pure function of
/// its arguments (no generator state involved). Every per-trial fault
/// stream in the evaluation is keyed this way: the same (base, salt) pair
/// always yields the same stream, and different salts are decorrelated by
/// the SplitMix64 seeding inside Rng. This is what makes parallel trial
/// execution bitwise identical to serial execution — the seed depends only
/// on the trial's identity, never on scheduling.
inline uint64_t mixSeed(uint64_t Base, uint64_t Salt) {
  return Base ^ (Salt * 0x9E3779B97F4A7C15ULL + 1);
}

} // namespace enerj

#endif // ENERJ_SUPPORT_RNG_H
