//===- support/rng.cpp - Deterministic pseudo-random numbers -------------===//

#include "support/rng.h"

#include <cmath>

using namespace enerj;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

static inline uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &W : State)
    W = splitMix64(S);
  // xoshiro must not start in the all-zero state.
  if (!(State[0] | State[1] | State[2] | State[3]))
    State[0] = 0x9E3779B97F4A7C15ULL;
  HasSpareGaussian = false;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  // Rejection sampling over the largest multiple of Bound below 2^64.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

double Rng::nextDouble() {
  // 53 high bits give a uniform dyadic rational in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBernoulli(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return static_cast<int64_t>(static_cast<uint64_t>(Lo) + nextBelow(Span));
}

uint64_t Rng::nextBinomial(uint64_t N, double P) {
  if (N == 0 || P <= 0.0)
    return 0;
  if (P >= 1.0)
    return N;
  double Mean = static_cast<double>(N) * P;
  // For tiny means, count geometric inter-arrival gaps: far fewer draws
  // than N trials. This is the common case for fault injection, where
  // P is 1e-5-ish and N is the number of bits touched.
  if (Mean < 16.0) {
    double LogQ = std::log1p(-P);
    uint64_t Successes = 0;
    double Position = 0.0;
    for (;;) {
      // Skip ahead by a geometric gap.
      Position += std::floor(std::log1p(-nextDouble()) / LogQ) + 1.0;
      if (Position > static_cast<double>(N))
        return Successes;
      ++Successes;
    }
  }
  // Gaussian approximation for large means; clamped and rounded. The fault
  // models only reach this regime under extreme configurations where the
  // exact per-trial distribution no longer matters.
  double Sigma = std::sqrt(Mean * (1.0 - P));
  double Draw = Mean + Sigma * nextGaussian();
  if (Draw < 0.0)
    return 0;
  if (Draw > static_cast<double>(N))
    return N;
  return static_cast<uint64_t>(Draw + 0.5);
}

double Rng::nextGaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U, V, S;
  do {
    U = 2.0 * nextDouble() - 1.0;
    V = 2.0 * nextDouble() - 1.0;
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  double Scale = std::sqrt(-2.0 * std::log(S) / S);
  SpareGaussian = V * Scale;
  HasSpareGaussian = true;
  return U * Scale;
}

Rng Rng::split(uint64_t Salt) {
  // Derive a child seed from fresh output mixed with the salt; SplitMix64
  // inside the child constructor finishes the decorrelation.
  uint64_t Seed = next() ^ (Salt * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL);
  return Rng(Seed);
}
