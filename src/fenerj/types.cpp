//===- fenerj/types.cpp - Precision qualifiers and types ------------------===//

#include "fenerj/types.h"

#include <cassert>

using namespace enerj::fenerj;

const char *enerj::fenerj::qualName(Qual Q) {
  switch (Q) {
  case Qual::Precise:
    return "@precise";
  case Qual::Approx:
    return "@approx";
  case Qual::Top:
    return "@top";
  case Qual::Context:
    return "@context";
  case Qual::Lost:
    return "lost";
  }
  assert(false && "unknown qualifier");
  return "?";
}

bool enerj::fenerj::subQual(Qual Sub, Qual Super) {
  if (Sub == Super)
    return true;
  if (Super == Qual::Top)
    return true;
  if (Super == Qual::Lost)
    return Sub != Qual::Top;
  return false;
}

Qual enerj::fenerj::adaptQual(Qual Receiver, Qual Declared) {
  if (Declared != Qual::Context)
    return Declared;
  switch (Receiver) {
  case Qual::Precise:
  case Qual::Approx:
  case Qual::Context:
    return Receiver;
  case Qual::Top:
  case Qual::Lost:
    return Qual::Lost; // The context is not expressible here.
  }
  assert(false && "unknown qualifier");
  return Qual::Lost;
}

Type enerj::fenerj::adaptType(Qual Receiver, const Type &Declared) {
  Type Result = Declared;
  Result.Q = adaptQual(Receiver, Declared.Q);
  if (Declared.isArray())
    Result.ElemQual = adaptQual(Receiver, Declared.ElemQual);
  return Result;
}

std::string Type::str() const {
  std::string Out = qualName(Q);
  Out += ' ';
  switch (Base) {
  case BaseKind::Int:
    Out += "int";
    break;
  case BaseKind::Float:
    Out += "float";
    break;
  case BaseKind::Bool:
    Out += "bool";
    break;
  case BaseKind::Class:
    Out += ClassName;
    break;
  case BaseKind::Null:
    return "null";
  case BaseKind::Array: {
    Out = qualName(ElemQual);
    Out += ' ';
    switch (Elem) {
    case BaseKind::Int:
      Out += "int";
      break;
    case BaseKind::Float:
      Out += "float";
      break;
    case BaseKind::Bool:
      Out += "bool";
      break;
    default:
      Out += "?";
      break;
    }
    Out += "[]";
    break;
  }
  }
  return Out;
}

bool enerj::fenerj::isSubtype(const Type &Sub, const Type &Super,
                              const SubclassOracle &Classes) {
  // null <: any class or array type.
  if (Sub.isNull())
    return Super.isClass() || Super.isArray() || Super.isNull();

  if (Sub.isPrimitive() && Super.isPrimitive()) {
    if (Sub.Base != Super.Base)
      return false;
    if (subQual(Sub.Q, Super.Q))
      return true;
    // The primitive-only subtyping rule of Section 2.1: precise P is a
    // subtype of approx P. We extend it to every qualifier (including
    // context): a precise primitive value can safely flow into storage of
    // any precision, because whichever qualifier context resolves to, the
    // value carries at least the guarantees required.
    if (Sub.Q == Qual::Precise)
      return true;
    return false;
  }

  if (Sub.isClass() && Super.isClass()) {
    // Reference types: qualifier ordering only (precise C is NOT a subtype
    // of approx C — unsound for mutable references, Section 2.1).
    return subQual(Sub.Q, Super.Q) &&
           Classes.isSubclassOf(Sub.ClassName, Super.ClassName);
  }

  if (Sub.isArray() && Super.isArray()) {
    // Arrays are invariant in the element type (mutable containers).
    return Sub.Elem == Super.Elem && Sub.ElemQual == Super.ElemQual;
  }

  return false;
}
