//===- fenerj/interp.h - FEnerJ big-step interpreter ------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operational semantics of Section 3.2, executable:
///
///  * a big-step evaluator over the (type-checked) AST with a heap of
///    objects and arrays;
///  * the *approximate* rule — "any approximate value may be replaced by
///    any other value of the same type" — realized as a pluggable
///    Perturber invoked wherever an approximate value is produced or read;
///  * the *checked* semantics used in the TR's non-interference proof:
///    every runtime value carries a dynamic precise/approx tag, and the
///    interpreter verifies at each step that approximate values never
///    reach precise storage, conditions, or array subscripts. On a
///    well-typed program these checks can never fire (type soundness);
///    the test suite exercises exactly that.
///
/// Non-interference is then testable: evaluating an endorse-free program
/// under two different perturbers must yield identical *precise
/// projections* (the final result if precise, plus every precise slot of
/// the heap in allocation order).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_INTERP_H
#define ENERJ_FENERJ_INTERP_H

#include "arch/stats.h"
#include "fenerj/ast.h"
#include "fenerj/program.h"
#include "support/rng.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace enerj {
namespace fenerj {

/// A runtime value with its dynamic precision tag.
struct Value {
  enum class Kind { Null, Int, Float, Bool, Ref };
  Kind K = Kind::Null;
  int64_t I = 0;
  double F = 0.0;
  bool B = false;
  uint32_t Ref = 0;   ///< Heap index for Kind::Ref (objects and arrays).
  bool Approx = false; ///< Dynamic qualifier tag (references stay precise).

  static Value makeNull() { return {}; }
  static Value makeInt(int64_t V, bool Approx) {
    Value Result;
    Result.K = Kind::Int;
    Result.I = V;
    Result.Approx = Approx;
    return Result;
  }
  static Value makeFloat(double V, bool Approx) {
    Value Result;
    Result.K = Kind::Float;
    Result.F = V;
    Result.Approx = Approx;
    return Result;
  }
  static Value makeBool(bool V, bool Approx) {
    Value Result;
    Result.K = Kind::Bool;
    Result.B = V;
    Result.Approx = Approx;
    return Result;
  }
  static Value makeRef(uint32_t Index) {
    Value Result;
    Result.K = Kind::Ref;
    Result.Ref = Index;
    return Result;
  }

  std::string str() const;
};

/// Replaces approximate values as the approximate-execution rule permits.
/// The default implementation is the identity (fully precise execution).
class Perturber {
public:
  virtual ~Perturber() = default;
  virtual int64_t perturbInt(int64_t V) { return V; }
  virtual double perturbFloat(double V) { return V; }
  virtual bool perturbBool(bool V) { return V; }
};

/// A seeded random perturber: with the given probability, an approximate
/// value is replaced by a random value of its type.
class RandomPerturber : public Perturber {
public:
  RandomPerturber(uint64_t Seed, double Probability)
      : R(Seed), Probability(Probability) {}

  int64_t perturbInt(int64_t V) override;
  double perturbFloat(double V) override;
  bool perturbBool(bool V) override;

private:
  Rng R;
  double Probability;
};

/// One heap cell: an object (class instance) or a primitive array.
struct HeapCell {
  bool IsArray = false;
  // Objects.
  std::string ClassName;
  bool InstanceApprox = false; ///< The instance's resolved qualifier.
  std::unordered_map<std::string, Value> Fields;
  /// Resolved per-field slot kind (context already substituted):
  /// 0 = precise, 1 = approx, 2 = dynamic (@top — keeps the value's tag).
  std::unordered_map<std::string, uint8_t> FieldSlotKind;
  // Arrays.
  BaseKind Elem = BaseKind::Int;
  bool ElemApprox = false;
  std::vector<Value> Elements;
};

/// Evaluation outcome.
struct EvalResult {
  bool Trapped = false;
  std::string TrapMessage;
  Value Result;
};

/// Interpreter options.
struct InterpOptions {
  Perturber *Perturb = nullptr; ///< Null: fully precise execution.
  uint64_t Fuel = 50'000'000;   ///< Evaluation-step budget (traps at 0).
  /// Method-call nesting limit (traps when exceeded). The evaluator
  /// recurses on the host stack, so this stays conservative enough for
  /// sanitizer builds with large frames.
  uint32_t MaxCallDepth = 256;
  bool Checked = true;          ///< Enforce the checked semantics.
  /// The bidirectional-typing side table from typeCheckEx (Section 2.3):
  /// Binary/Unary nodes listed here execute on the approximate unit even
  /// when their operands are precise. Null disables the optimization.
  const std::unordered_set<const Expr *> *ContextApproxOps = nullptr;
};

/// Evaluates a program. The program must already be type-checked when
/// Options.Checked is set — checked-semantics violations on well-typed
/// programs indicate an interpreter or checker bug and trap loudly.
class Interpreter {
public:
  Interpreter(const Program &Prog, const ClassTable &Table,
              InterpOptions Options)
      : Prog(Prog), Table(Table), Options(Options) {}

  /// Runs the main expression.
  EvalResult run();

  /// The heap after the run (for inspection and non-interference tests).
  const std::vector<HeapCell> &heap() const { return Heap; }

  /// Dynamic operation counts from the last run, split by precision and
  /// unit exactly like the hardware simulator's statistics — this is the
  /// bridge from FEnerJ programs to the Section 5.4 energy model.
  const OperationStats &opStats() const { return Ops; }

  /// Serializes the precise observables of the final state: the result (if
  /// its tag is precise) plus every precise slot of every heap cell, in
  /// allocation order. Two runs of an endorse-free well-typed program must
  /// agree on this string whatever their perturbers do — the
  /// non-interference property.
  std::string preciseProjection(const EvalResult &Result) const;

private:
  friend class EvalVisitor;

  const Program &Prog;
  const ClassTable &Table;
  InterpOptions Options;
  std::vector<HeapCell> Heap;
  OperationStats Ops;
};

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_INTERP_H
