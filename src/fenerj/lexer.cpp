//===- fenerj/lexer.cpp - FEnerJ lexer ------------------------------------===//

#include "fenerj/lexer.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace enerj::fenerj;

const char *enerj::fenerj::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwExtends:
    return "'extends'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwEndorse:
    return "'endorse'";
  case TokenKind::KwCast:
    return "'cast'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwLength:
    return "'length'";
  case TokenKind::KwApprox:
    return "'@approx'";
  case TokenKind::KwPrecise:
    return "'@precise'";
  case TokenKind::KwTop:
    return "'@top'";
  case TokenKind::KwContext:
    return "'@context'";
  case TokenKind::KwApproxRecv:
    return "'approx'";
  case TokenKind::KwPreciseRecv:
    return "'precise'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::FieldAssign:
    return "':='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::LessColon:
    return "'<:'";
  }
  assert(false && "unknown token kind");
  return "?";
}

namespace {

class LexerImpl {
public:
  LexerImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Token> run();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }
  bool atEnd() const { return Pos >= Source.size(); }

  SourceLoc here() const { return {Line, Column}; }

  void push(TokenKind Kind, SourceLoc Loc, std::string Text = {}) {
    Token T;
    T.Kind = Kind;
    T.Loc = Loc;
    T.Text = std::move(Text);
    Tokens.push_back(std::move(T));
  }

  void lexNumber(SourceLoc Loc);
  void lexWord(SourceLoc Loc);
  void lexAnnotation(SourceLoc Loc);

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Column = 1;
  std::vector<Token> Tokens;
};

const std::unordered_map<std::string_view, TokenKind> Keywords = {
    {"class", TokenKind::KwClass},     {"extends", TokenKind::KwExtends},
    {"new", TokenKind::KwNew},         {"this", TokenKind::KwThis},
    {"null", TokenKind::KwNull},       {"true", TokenKind::KwTrue},
    {"false", TokenKind::KwFalse},     {"if", TokenKind::KwIf},
    {"else", TokenKind::KwElse},       {"while", TokenKind::KwWhile},
    {"let", TokenKind::KwLet},         {"in", TokenKind::KwIn},
    {"endorse", TokenKind::KwEndorse}, {"cast", TokenKind::KwCast},
    {"int", TokenKind::KwInt},         {"float", TokenKind::KwFloat},
    {"bool", TokenKind::KwBool},       {"length", TokenKind::KwLength},
    {"approx", TokenKind::KwApproxRecv},
    {"precise", TokenKind::KwPreciseRecv},
};

void LexerImpl::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsFloat = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsFloat = true;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      Pos = Save; // Not an exponent after all.
    }
  }
  std::string Text(Source.substr(Start, Pos - Start));
  Token T;
  T.Loc = Loc;
  T.Text = Text;
  if (IsFloat) {
    T.Kind = TokenKind::FloatLiteral;
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
  } else {
    T.Kind = TokenKind::IntLiteral;
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
  }
  Tokens.push_back(std::move(T));
}

void LexerImpl::lexWord(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string_view Word = Source.substr(Start, Pos - Start);
  auto It = Keywords.find(Word);
  if (It != Keywords.end()) {
    push(It->second, Loc);
    return;
  }
  push(TokenKind::Identifier, Loc, std::string(Word));
}

void LexerImpl::lexAnnotation(SourceLoc Loc) {
  // '@' already consumed. Annotations are @approx/@precise/@top/@context.
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())))
    advance();
  std::string_view Word = Source.substr(Start, Pos - Start);
  if (Word == "approx" || Word == "Approx")
    return push(TokenKind::KwApprox, Loc);
  if (Word == "precise" || Word == "Precise")
    return push(TokenKind::KwPrecise, Loc);
  if (Word == "top" || Word == "Top")
    return push(TokenKind::KwTop, Loc);
  if (Word == "context" || Word == "Context")
    return push(TokenKind::KwContext, Loc);
  Diags.report(DiagCode::UnexpectedChar, Loc,
               "unknown annotation '@" + std::string(Word) + "'");
}

std::vector<Token> LexerImpl::run() {
  while (!atEnd()) {
    SourceLoc Loc = here();
    char C = advance();
    switch (C) {
    case ' ':
    case '\t':
    case '\r':
    case '\n':
      continue;
    case '/':
      if (peek() == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (peek() == '*') {
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (atEnd()) {
          Diags.report(DiagCode::UnterminatedLiteral, Loc,
                       "unterminated block comment");
        } else {
          advance();
          advance();
        }
        continue;
      }
      push(TokenKind::Slash, Loc);
      continue;
    case '@':
      lexAnnotation(Loc);
      continue;
    case '{':
      push(TokenKind::LBrace, Loc);
      continue;
    case '}':
      push(TokenKind::RBrace, Loc);
      continue;
    case '(':
      push(TokenKind::LParen, Loc);
      continue;
    case ')':
      push(TokenKind::RParen, Loc);
      continue;
    case '[':
      push(TokenKind::LBracket, Loc);
      continue;
    case ']':
      push(TokenKind::RBracket, Loc);
      continue;
    case ';':
      push(TokenKind::Semicolon, Loc);
      continue;
    case ',':
      push(TokenKind::Comma, Loc);
      continue;
    case '.':
      push(TokenKind::Dot, Loc);
      continue;
    case '+':
      push(TokenKind::Plus, Loc);
      continue;
    case '-':
      push(TokenKind::Minus, Loc);
      continue;
    case '*':
      push(TokenKind::Star, Loc);
      continue;
    case '%':
      push(TokenKind::Percent, Loc);
      continue;
    case '=':
      if (peek() == '=') {
        advance();
        push(TokenKind::EqEq, Loc);
      } else {
        push(TokenKind::Assign, Loc);
      }
      continue;
    case ':':
      if (peek() == '=') {
        advance();
        push(TokenKind::FieldAssign, Loc);
      } else {
        Diags.report(DiagCode::UnexpectedChar, Loc, "stray ':'");
      }
      continue;
    case '!':
      if (peek() == '=') {
        advance();
        push(TokenKind::BangEq, Loc);
      } else {
        push(TokenKind::Bang, Loc);
      }
      continue;
    case '<':
      if (peek() == '=') {
        advance();
        push(TokenKind::LessEq, Loc);
      } else if (peek() == ':') {
        advance();
        push(TokenKind::LessColon, Loc);
      } else {
        push(TokenKind::Less, Loc);
      }
      continue;
    case '>':
      if (peek() == '=') {
        advance();
        push(TokenKind::GreaterEq, Loc);
      } else {
        push(TokenKind::Greater, Loc);
      }
      continue;
    case '&':
      if (peek() == '&') {
        advance();
        push(TokenKind::AmpAmp, Loc);
      } else {
        Diags.report(DiagCode::UnexpectedChar, Loc, "stray '&'");
      }
      continue;
    case '|':
      if (peek() == '|') {
        advance();
        push(TokenKind::PipePipe, Loc);
      } else {
        Diags.report(DiagCode::UnexpectedChar, Loc, "stray '|'");
      }
      continue;
    default:
      if (std::isdigit(static_cast<unsigned char>(C))) {
        --Pos; // Re-lex the digit in lexNumber.
        --Column;
        lexNumber(Loc);
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        --Pos;
        --Column;
        lexWord(Loc);
        continue;
      }
      Diags.report(DiagCode::UnexpectedChar, Loc,
                   std::string("unexpected character '") + C + "'");
    }
  }
  push(TokenKind::Eof, here());
  return std::move(Tokens);
}

} // namespace

std::vector<Token> enerj::fenerj::lex(std::string_view Source,
                                      DiagnosticEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}
