//===- fenerj/printer.h - FEnerJ pretty printer -----------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an AST back to parseable FEnerJ source. The printer
/// parenthesizes fully, so print-then-parse is semantics-preserving:
/// the property tests check that printing a program and re-parsing it
/// yields a program that type-checks identically and evaluates to the
/// same precise projection.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_PRINTER_H
#define ENERJ_FENERJ_PRINTER_H

#include "fenerj/ast.h"

#include <string>

namespace enerj {
namespace fenerj {

/// Renders one expression.
std::string printExpr(const Expr &E);

/// Renders a whole program (classes then main expression).
std::string printProgram(const Program &Prog);

/// Renders a type (e.g. "@approx float[]").
std::string printType(const Type &T);

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_PRINTER_H
