//===- fenerj/typecheck.cpp - The FEnerJ type checker ---------------------===//

#include "fenerj/typecheck.h"

#include "fenerj/parser.h"

#include <cassert>
#include <unordered_map>
#include <vector>

using namespace enerj::fenerj;

namespace {

/// Lexically scoped local-variable environment.
class Env {
public:
  void push() { Scopes.emplace_back(); }
  void pop() {
    assert(!Scopes.empty());
    Scopes.pop_back();
  }
  void bind(const std::string &Name, Type T) {
    assert(!Scopes.empty());
    Scopes.back()[Name] = std::move(T);
  }
  const Type *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

private:
  std::vector<std::unordered_map<std::string, Type>> Scopes;
};

class Checker {
public:
  Checker(const ClassTable &Table, DiagnosticEngine &Diags,
          const CheckOptions &Options)
      : Table(Table), Diags(Diags), Options(Options) {}

  bool checkProgram(const Program &Prog);

  std::unordered_set<const Expr *> takeContextApproxOps() {
    return std::move(ContextApproxOps);
  }

private:
  /// Combines operand qualifiers for a primitive operation: any approx
  /// operand makes the operation approximate (the overloading rule of
  /// Section 2.3); context stays polymorphic; top/lost cannot compute.
  std::optional<Qual> combineOperands(Qual A, Qual B) {
    if (A == Qual::Top || A == Qual::Lost || B == Qual::Top ||
        B == Qual::Lost)
      return std::nullopt;
    if (A == Qual::Approx || B == Qual::Approx)
      return Qual::Approx;
    if (A == Qual::Context || B == Qual::Context)
      return Qual::Context;
    return Qual::Precise;
  }

  void error(DiagCode Code, SourceLoc Loc, std::string Message) {
    Diags.report(Code, Loc, std::move(Message));
    Ok = false;
  }

  /// Checks value flow \p From -> \p To. Distinguishes the qualifier-only
  /// failure (an illegal approximate-to-precise flow, the paper's headline
  /// error) from a base-type mismatch.
  bool checkAssignable(const Type &From, const Type &To, SourceLoc Loc,
                       const char *What) {
    if (isSubtype(From, To, Table))
      return true;
    bool SameShape =
        (From.isPrimitive() && To.isPrimitive() && From.Base == To.Base) ||
        (From.isClass() && To.isClass() &&
         Table.isSubclassOf(From.ClassName, To.ClassName)) ||
        (From.isArray() && To.isArray() && From.Elem == To.Elem);
    if (SameShape)
      error(DiagCode::ImplicitFlow, Loc,
            std::string(What) + ": illegal flow from " + From.str() +
                " to " + To.str() + "; use endorse(...) to cross from "
                "approximate to precise");
    else
      error(DiagCode::BadOperand, Loc,
            std::string(What) + ": incompatible types " + From.str() +
                " and " + To.str());
    return false;
  }

  /// Validates a declared type (fields, params, locals, returns):
  /// @context is only meaningful inside a class body; 'lost' never
  /// appears in source; class names must exist.
  void checkDeclaredType(const Type &T, SourceLoc Loc) {
    if (!InClassBody && T.mentionsContext())
      error(DiagCode::ContextOutsideClass, Loc,
            "@context is only meaningful inside a class body");
    if (T.isClass() && !Table.isKnownClass(T.ClassName))
      error(DiagCode::UnknownClass, Loc,
            "unknown class '" + T.ClassName + "'");
  }

  /// \p ApproxContext is true when the expression's expected type is
  /// approximate (bidirectional typing, Section 2.3): arithmetic under it
  /// is recorded for approximate-operator selection.
  std::optional<Type> typeOf(const Expr &E, Env &Locals,
                             bool ApproxContext = false);

  const ClassTable &Table;
  DiagnosticEngine &Diags;
  CheckOptions Options;
  std::unordered_set<const Expr *> ContextApproxOps;
  bool Ok = true;
  bool InClassBody = false;
};

std::optional<Type> Checker::typeOf(const Expr &E, Env &Locals,
                                    bool ApproxContext) {
  if (!Options.Bidirectional)
    ApproxContext = false;
  switch (E.kind()) {
  case ExprKind::NullLit:
    return Type::makeNull();
  case ExprKind::IntLit:
    return Type::makePrim(Qual::Precise, BaseKind::Int);
  case ExprKind::FloatLit:
    return Type::makePrim(Qual::Precise, BaseKind::Float);
  case ExprKind::BoolLit:
    return Type::makePrim(Qual::Precise, BaseKind::Bool);

  case ExprKind::VarRef: {
    const auto &Var = static_cast<const VarRefExpr &>(E);
    if (const Type *T = Locals.lookup(Var.Name))
      return *T;
    error(DiagCode::UnknownVariable, E.loc(),
          "unknown variable '" + Var.Name + "'");
    return std::nullopt;
  }

  case ExprKind::New: {
    const auto &New = static_cast<const NewExpr &>(E);
    if (!Table.isKnownClass(New.ClassName)) {
      error(DiagCode::UnknownClass, E.loc(),
            "unknown class '" + New.ClassName + "'");
      return std::nullopt;
    }
    if (New.Q == Qual::Context && !InClassBody) {
      error(DiagCode::ContextOutsideClass, E.loc(),
            "'new @context' is only meaningful inside a class body");
      return std::nullopt;
    }
    return Type::makeClass(New.Q, New.ClassName);
  }

  case ExprKind::NewArray: {
    const auto &New = static_cast<const NewArrayExpr &>(E);
    if (New.ElemQual == Qual::Context && !InClassBody)
      error(DiagCode::ContextOutsideClass, E.loc(),
            "'new @context ...[]' is only meaningful inside a class body");
    std::optional<Type> LenType = typeOf(*New.Length, Locals);
    if (LenType) {
      if (!(LenType->Base == BaseKind::Int && LenType->Q == Qual::Precise))
        error(DiagCode::ApproxArrayLength, New.Length->loc(),
              "array length must be a precise int (Section 2.6), got " +
                  LenType->str());
    }
    return Type::makeArray(New.ElemQual, New.Elem);
  }

  case ExprKind::FieldRead: {
    const auto &Read = static_cast<const FieldReadExpr &>(E);
    std::optional<Type> RecvType = typeOf(*Read.Receiver, Locals);
    if (!RecvType)
      return std::nullopt;
    if (!RecvType->isClass()) {
      error(DiagCode::BadReceiver, E.loc(),
            "field access on non-class value of type " + RecvType->str());
      return std::nullopt;
    }
    std::optional<Type> Declared =
        Table.fieldType(RecvType->ClassName, Read.Field);
    if (!Declared) {
      error(DiagCode::UnknownField, E.loc(),
            "class '" + RecvType->ClassName + "' has no field '" +
                Read.Field + "'");
      return std::nullopt;
    }
    // FType with context adaptation (Section 3.1). Reading a field with
    // lost precision information is allowed.
    return adaptType(RecvType->Q, *Declared);
  }

  case ExprKind::FieldWrite: {
    const auto &Write = static_cast<const FieldWriteExpr &>(E);
    std::optional<Type> RecvType = typeOf(*Write.Receiver, Locals);
    if (!RecvType)
      return std::nullopt;
    if (!RecvType->isClass()) {
      error(DiagCode::BadReceiver, E.loc(),
            "field write on non-class value of type " + RecvType->str());
      return std::nullopt;
    }
    std::optional<Type> Declared =
        Table.fieldType(RecvType->ClassName, Write.Field);
    if (!Declared) {
      error(DiagCode::UnknownField, E.loc(),
            "class '" + RecvType->ClassName + "' has no field '" +
                Write.Field + "'");
      return std::nullopt;
    }
    Type Adapted = adaptType(RecvType->Q, *Declared);
    // The field-write rule requires lost-free adapted types: updating a
    // field whose context information was lost would be unsound.
    if (Adapted.mentionsLost())
      error(DiagCode::LostAssignment, E.loc(),
            "cannot write field '" + Write.Field +
                "' through a receiver of type " + RecvType->str() +
                ": its adapted type " + Adapted.str() +
                " lost precision information");
    std::optional<Type> ValueType =
        typeOf(*Write.Value, Locals,
               Adapted.isPrimitive() && Adapted.Q == Qual::Approx);
    if (!ValueType)
      return std::nullopt;
    checkAssignable(*ValueType, Adapted, E.loc(), "field write");
    return ValueType;
  }

  case ExprKind::ArrayRead: {
    const auto &Read = static_cast<const ArrayReadExpr &>(E);
    std::optional<Type> ArrType = typeOf(*Read.Array, Locals);
    std::optional<Type> IdxType = typeOf(*Read.Index, Locals);
    if (IdxType &&
        !(IdxType->Base == BaseKind::Int && IdxType->Q == Qual::Precise))
      error(DiagCode::ApproxIndex, Read.Index->loc(),
            "array subscripts must be precise ints (Section 2.6), got " +
                IdxType->str() + "; endorse the index first");
    if (!ArrType)
      return std::nullopt;
    if (!ArrType->isArray()) {
      error(DiagCode::BadReceiver, E.loc(),
            "subscript on non-array value of type " + ArrType->str());
      return std::nullopt;
    }
    return Type::makePrim(ArrType->ElemQual, ArrType->Elem);
  }

  case ExprKind::ArrayWrite: {
    const auto &Write = static_cast<const ArrayWriteExpr &>(E);
    std::optional<Type> ArrType = typeOf(*Write.Array, Locals);
    std::optional<Type> IdxType = typeOf(*Write.Index, Locals);
    if (IdxType &&
        !(IdxType->Base == BaseKind::Int && IdxType->Q == Qual::Precise))
      error(DiagCode::ApproxIndex, Write.Index->loc(),
            "array subscripts must be precise ints (Section 2.6), got " +
                IdxType->str() + "; endorse the index first");
    std::optional<Type> ArrTypeCopy = ArrType;
    bool ElemApproxCtx = ArrTypeCopy && ArrTypeCopy->isArray() &&
                         ArrTypeCopy->ElemQual == Qual::Approx;
    std::optional<Type> ValueType =
        typeOf(*Write.Value, Locals, ElemApproxCtx);
    if (!ArrType)
      return std::nullopt;
    if (!ArrType->isArray()) {
      error(DiagCode::BadReceiver, E.loc(),
            "subscript on non-array value of type " + ArrType->str());
      return std::nullopt;
    }
    Type ElemType = Type::makePrim(ArrType->ElemQual, ArrType->Elem);
    if (ElemType.mentionsLost())
      error(DiagCode::LostAssignment, E.loc(),
            "cannot write through an array whose element precision "
            "information was lost");
    if (ValueType)
      checkAssignable(*ValueType, ElemType, E.loc(), "array store");
    return ValueType;
  }

  case ExprKind::ArrayLength: {
    const auto &Len = static_cast<const ArrayLengthExpr &>(E);
    std::optional<Type> ArrType = typeOf(*Len.Array, Locals);
    if (ArrType && !ArrType->isArray()) {
      error(DiagCode::BadReceiver, E.loc(),
            ".length on non-array value of type " + ArrType->str());
      return std::nullopt;
    }
    // The length is always precise (Section 2.6).
    return Type::makePrim(Qual::Precise, BaseKind::Int);
  }

  case ExprKind::MethodCall: {
    const auto &Call = static_cast<const MethodCallExpr &>(E);
    std::optional<Type> RecvType = typeOf(*Call.Receiver, Locals);
    if (!RecvType)
      return std::nullopt;
    if (!RecvType->isClass()) {
      error(DiagCode::BadReceiver, E.loc(),
            "method call on non-class value of type " + RecvType->str());
      return std::nullopt;
    }
    const MethodDecl *Method =
        Table.lookupMethod(RecvType->ClassName, Call.Method, RecvType->Q);
    if (!Method) {
      error(DiagCode::UnknownMethod, E.loc(),
            "class '" + RecvType->ClassName + "' has no method '" +
                Call.Method + "' callable on a " + qualName(RecvType->Q) +
                " receiver");
      return std::nullopt;
    }
    if (Call.Args.size() != Method->Params.size()) {
      error(DiagCode::ArityMismatch, E.loc(),
            "method '" + Call.Method + "' expects " +
                std::to_string(Method->Params.size()) + " argument(s), got " +
                std::to_string(Call.Args.size()));
      return std::nullopt;
    }
    for (size_t I = 0; I != Call.Args.size(); ++I) {
      Type Adapted = adaptType(RecvType->Q, Method->Params[I].DeclaredType);
      std::optional<Type> ArgType =
          typeOf(*Call.Args[I], Locals,
                 Adapted.isPrimitive() && Adapted.Q == Qual::Approx);
      if (!ArgType)
        continue;
      // MSig rule: adapted parameter types must not lose information.
      if (Adapted.mentionsLost()) {
        error(DiagCode::LostAssignment, Call.Args[I]->loc(),
              "cannot pass an argument whose adapted parameter type lost "
              "precision information");
        continue;
      }
      checkAssignable(*ArgType, Adapted, Call.Args[I]->loc(), "argument");
    }
    return adaptType(RecvType->Q, Method->ReturnType);
  }

  case ExprKind::Cast: {
    const auto &Cast = static_cast<const CastExpr &>(E);
    checkDeclaredType(Cast.Target, E.loc());
    std::optional<Type> ValueType = typeOf(*Cast.Value, Locals);
    if (!ValueType)
      return std::nullopt;
    const Type &From = *ValueType;
    const Type &To = Cast.Target;
    // Qualifier rules: upcasts along the lattice are free; casting *to*
    // approx is always allowed (approx makes no guarantees); casting to
    // precise requires a provably precise source — endorse() is the only
    // sanctioned approximate-to-precise gate.
    auto QualCastOk = [&](Qual FromQ, Qual ToQ) {
      if (subQual(FromQ, ToQ) || FromQ == Qual::Precise)
        return true;
      if (ToQ == Qual::Approx)
        return true;
      return false;
    };
    bool ShapeOk = false;
    if (From.isPrimitive() && To.isPrimitive())
      ShapeOk = From.Base == To.Base || (From.isNumeric() && To.isNumeric());
    else if (From.isClass() && To.isClass())
      ShapeOk = Table.isSubclassOf(From.ClassName, To.ClassName) ||
                Table.isSubclassOf(To.ClassName, From.ClassName);
    else if (From.isNull() && (To.isClass() || To.isArray()))
      ShapeOk = true;
    if (!ShapeOk || !QualCastOk(From.Q, To.Q)) {
      error(DiagCode::BadCast, E.loc(),
            "cannot cast " + From.str() + " to " + To.str() +
                (From.isPrimitive() && To.Q == Qual::Precise
                     ? "; use endorse(...)"
                     : ""));
      return std::nullopt;
    }
    return To;
  }

  case ExprKind::Endorse: {
    const auto &End = static_cast<const EndorseExpr &>(E);
    std::optional<Type> ValueType = typeOf(*End.Value, Locals);
    if (!ValueType)
      return std::nullopt;
    if (!ValueType->isPrimitive()) {
      error(DiagCode::BadEndorse, E.loc(),
            "endorse() applies to primitive values, got " +
                ValueType->str());
      return std::nullopt;
    }
    // endorse casts any approximate type to its precise equivalent
    // (Section 2.2); endorsing precise data is a harmless identity.
    return Type::makePrim(Qual::Precise, ValueType->Base);
  }

  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    // Bidirectional typing (Section 2.3): an approximate expected type
    // flows into the operands, so whole arithmetic trees select
    // approximate operators.
    std::optional<Type> L = typeOf(*Bin.Lhs, Locals, ApproxContext);
    std::optional<Type> R = typeOf(*Bin.Rhs, Locals, ApproxContext);
    if (!L || !R)
      return std::nullopt;

    // Reference equality on class/null values is always precise.
    if ((Bin.Op == BinaryOp::Eq || Bin.Op == BinaryOp::Ne) &&
        (L->isClass() || L->isNull()) && (R->isClass() || R->isNull()))
      return Type::makePrim(Qual::Precise, BaseKind::Bool);

    bool IsLogical = Bin.Op == BinaryOp::And || Bin.Op == BinaryOp::Or;
    bool IsComparison = Bin.Op == BinaryOp::Eq || Bin.Op == BinaryOp::Ne ||
                        Bin.Op == BinaryOp::Lt || Bin.Op == BinaryOp::Le ||
                        Bin.Op == BinaryOp::Gt || Bin.Op == BinaryOp::Ge;

    if (IsLogical) {
      if (L->Base != BaseKind::Bool || R->Base != BaseKind::Bool ||
          !L->isPrimitive() || !R->isPrimitive()) {
        error(DiagCode::BadOperand, E.loc(),
              "logical operator requires booleans, got " + L->str() +
                  " and " + R->str());
        return std::nullopt;
      }
    } else {
      if (!L->isNumeric() || !R->isNumeric() || L->Base != R->Base) {
        error(DiagCode::BadOperand, E.loc(),
              "arithmetic requires numeric operands of the same base type, "
              "got " + L->str() + " and " + R->str());
        return std::nullopt;
      }
      if (Bin.Op == BinaryOp::Mod && L->Base != BaseKind::Int) {
        error(DiagCode::BadOperand, E.loc(), "'%' requires int operands");
        return std::nullopt;
      }
    }

    std::optional<Qual> Q = combineOperands(L->Q, R->Q);
    if (!Q) {
      error(DiagCode::BadOperand, E.loc(),
            "cannot compute on @top/lost-qualified operands (" + L->str() +
                ", " + R->str() + ")");
      return std::nullopt;
    }
    if (ApproxContext && *Q == Qual::Precise) {
      // Precise operands in an approximate context: run on the
      // approximate unit; the result was only going to approximate
      // storage anyway.
      ContextApproxOps.insert(&E);
      Q = Qual::Approx;
    }
    if (IsComparison || IsLogical)
      return Type::makePrim(*Q, BaseKind::Bool);
    return Type::makePrim(*Q, L->Base);
  }

  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(E);
    std::optional<Type> V = typeOf(*Un.Value, Locals, ApproxContext);
    if (!V)
      return std::nullopt;
    if (ApproxContext && V->isPrimitive() && V->Q == Qual::Precise) {
      ContextApproxOps.insert(&E);
      V->Q = Qual::Approx;
    }
    if (Un.Op == UnaryOp::Neg) {
      if (!V->isNumeric()) {
        error(DiagCode::BadOperand, E.loc(),
              "unary '-' requires a numeric operand, got " + V->str());
        return std::nullopt;
      }
      return *V;
    }
    if (V->Base != BaseKind::Bool || !V->isPrimitive()) {
      error(DiagCode::BadOperand, E.loc(),
            "'!' requires a boolean operand, got " + V->str());
      return std::nullopt;
    }
    return *V;
  }

  case ExprKind::If: {
    const auto &If = static_cast<const IfExpr &>(E);
    std::optional<Type> CondType = typeOf(*If.Cond, Locals);
    if (CondType && !(CondType->Base == BaseKind::Bool &&
                      CondType->isPrimitive() &&
                      CondType->Q == Qual::Precise))
      error(DiagCode::ApproxCondition, If.Cond->loc(),
            "conditions must be precise booleans (Section 2.4), got " +
                CondType->str() + "; wrap the condition in endorse(...)");
    std::optional<Type> ThenType = typeOf(*If.Then, Locals);
    std::optional<Type> ElseType = typeOf(*If.Else, Locals);
    if (!ThenType || !ElseType)
      return std::nullopt;
    // A common type for the branches (the conditional rule of Section 3.1).
    if (isSubtype(*ThenType, *ElseType, Table))
      return ElseType;
    if (isSubtype(*ElseType, *ThenType, Table))
      return ThenType;
    error(DiagCode::BadOperand, E.loc(),
          "branches have incompatible types " + ThenType->str() + " and " +
              ElseType->str());
    return std::nullopt;
  }

  case ExprKind::While: {
    const auto &While = static_cast<const WhileExpr &>(E);
    std::optional<Type> CondType = typeOf(*While.Cond, Locals);
    if (CondType && !(CondType->Base == BaseKind::Bool &&
                      CondType->isPrimitive() &&
                      CondType->Q == Qual::Precise))
      error(DiagCode::ApproxCondition, While.Cond->loc(),
            "loop conditions must be precise booleans (Section 2.4), got " +
                CondType->str() + "; wrap the condition in endorse(...)");
    typeOf(*While.Body, Locals);
    return Type::makePrim(Qual::Precise, BaseKind::Int);
  }

  case ExprKind::Block: {
    const auto &Block = static_cast<const BlockExpr &>(E);
    Locals.push();
    std::optional<Type> Last = Type::makePrim(Qual::Precise, BaseKind::Int);
    for (const BlockExpr::Item &Item : Block.Items) {
      bool LetApproxCtx = Item.IsLet && Item.LetType.isPrimitive() &&
                          Item.LetType.Q == Qual::Approx;
      std::optional<Type> ValueType =
          typeOf(*Item.Value, Locals, LetApproxCtx);
      if (Item.IsLet) {
        checkDeclaredType(Item.LetType, Item.Value->loc());
        if (ValueType)
          checkAssignable(*ValueType, Item.LetType, Item.Value->loc(),
                          "initialization");
        Locals.bind(Item.LetName, Item.LetType);
        Last = Item.LetType;
      } else {
        Last = ValueType;
      }
    }
    Locals.pop();
    return Last;
  }

  case ExprKind::AssignLocal: {
    const auto &Assign = static_cast<const AssignLocalExpr &>(E);
    const Type *VarType = Locals.lookup(Assign.Name);
    if (!VarType) {
      error(DiagCode::UnknownVariable, E.loc(),
            "unknown variable '" + Assign.Name + "'");
      return std::nullopt;
    }
    Type Target = *VarType; // Copy: typeOf below may grow scopes.
    std::optional<Type> ValueType =
        typeOf(*Assign.Value, Locals,
               Target.isPrimitive() && Target.Q == Qual::Approx);
    if (ValueType)
      checkAssignable(*ValueType, Target, E.loc(), "assignment");
    return Target;
  }
  }
  assert(false && "unknown expression kind");
  return std::nullopt;
}

bool Checker::checkProgram(const Program &Prog) {
  for (const ClassDecl &Cls : Prog.Classes) {
    InClassBody = true;
    for (const FieldDeclAst &Field : Cls.Fields)
      checkDeclaredType(Field.DeclaredType, Field.Loc);
    for (const MethodDecl &Method : Cls.Methods) {
      checkDeclaredType(Method.ReturnType, Method.Loc);
      Env Locals;
      Locals.push();
      // 'this' carries the method's receiver precision: @context for
      // unmarked (polymorphic) methods — Section 3.1 — and the marked
      // precision for the Section 2.5.2 overload variants. Parameter and
      // return types adapt accordingly, so a 'precise'-variant body may
      // treat @context members as precise data and an 'approx'-variant
      // body sees them as approximate.
      Qual ThisQual = Method.ReceiverPrecision;
      Locals.bind("this", Type::makeClass(ThisQual, Cls.Name));
      for (const ParamDecl &Param : Method.Params) {
        checkDeclaredType(Param.DeclaredType, Method.Loc);
        Locals.bind(Param.Name, adaptType(ThisQual, Param.DeclaredType));
      }
      Type ReturnType = adaptType(ThisQual, Method.ReturnType);
      std::optional<Type> BodyType = typeOf(*Method.Body, Locals);
      if (BodyType && !isSubtype(*BodyType, ReturnType, Table))
        error(DiagCode::ReturnMismatch, Method.Loc,
              "method '" + Method.Name + "' declares return type " +
                  ReturnType.str() + " but its body has type " +
                  BodyType->str());
      Locals.pop();
    }
    InClassBody = false;
  }

  Env Locals;
  Locals.push();
  typeOf(*Prog.Main, Locals);
  Locals.pop();
  return Ok;
}

} // namespace

bool enerj::fenerj::typeCheck(const Program &Prog, const ClassTable &Table,
                              DiagnosticEngine &Diags) {
  CheckOptions Options;
  return Checker(Table, Diags, Options).checkProgram(Prog);
}

CheckResult enerj::fenerj::typeCheckEx(const Program &Prog,
                                       const ClassTable &Table,
                                       DiagnosticEngine &Diags,
                                       const CheckOptions &Options) {
  Checker Check(Table, Diags, Options);
  CheckResult Result;
  Result.Ok = Check.checkProgram(Prog);
  Result.ContextApproxOps = Check.takeContextApproxOps();
  return Result;
}

std::optional<Program> enerj::fenerj::compile(std::string_view Source,
                                              ClassTable &Table,
                                              DiagnosticEngine &Diags) {
  std::optional<Program> Prog = parseProgram(Source, Diags);
  if (!Prog)
    return std::nullopt;
  if (!Table.build(*Prog, Diags))
    return std::nullopt;
  if (!typeCheck(*Prog, Table, Diags))
    return std::nullopt;
  return Prog;
}
