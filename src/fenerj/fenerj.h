//===- fenerj/fenerj.h - FEnerJ umbrella header -----------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the FEnerJ formal-language implementation: lexer,
/// parser, qualifier lattice, type checker (Section 3.1), big-step
/// interpreter with checked semantics and pluggable approximation
/// (Section 3.2), and the random well-typed program generator used by the
/// soundness / non-interference property tests (Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_FENERJ_H
#define ENERJ_FENERJ_FENERJ_H

#include "fenerj/ast.h"
#include "fenerj/diag.h"
#include "fenerj/generator.h"
#include "fenerj/interp.h"
#include "fenerj/lexer.h"
#include "fenerj/parser.h"
#include "fenerj/program.h"
#include "fenerj/typecheck.h"
#include "fenerj/types.h"

#endif // ENERJ_FENERJ_FENERJ_H
