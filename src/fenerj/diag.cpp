//===- fenerj/diag.cpp - Source locations and diagnostics ----------------===//

#include "fenerj/diag.h"

#include <cassert>

using namespace enerj::fenerj;

const char *enerj::fenerj::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::UnexpectedChar:
    return "UnexpectedChar";
  case DiagCode::UnterminatedLiteral:
    return "UnterminatedLiteral";
  case DiagCode::ExpectedToken:
    return "ExpectedToken";
  case DiagCode::DuplicateClass:
    return "DuplicateClass";
  case DiagCode::DuplicateMember:
    return "DuplicateMember";
  case DiagCode::UnknownClass:
    return "UnknownClass";
  case DiagCode::UnknownField:
    return "UnknownField";
  case DiagCode::UnknownMethod:
    return "UnknownMethod";
  case DiagCode::UnknownVariable:
    return "UnknownVariable";
  case DiagCode::CyclicInheritance:
    return "CyclicInheritance";
  case DiagCode::ImplicitFlow:
    return "ImplicitFlow";
  case DiagCode::ApproxCondition:
    return "ApproxCondition";
  case DiagCode::ApproxIndex:
    return "ApproxIndex";
  case DiagCode::ApproxArrayLength:
    return "ApproxArrayLength";
  case DiagCode::LostAssignment:
    return "LostAssignment";
  case DiagCode::BadEndorse:
    return "BadEndorse";
  case DiagCode::BadOperand:
    return "BadOperand";
  case DiagCode::BadArgument:
    return "BadArgument";
  case DiagCode::ArityMismatch:
    return "ArityMismatch";
  case DiagCode::BadCast:
    return "BadCast";
  case DiagCode::BadReceiver:
    return "BadReceiver";
  case DiagCode::ContextOutsideClass:
    return "ContextOutsideClass";
  case DiagCode::ReturnMismatch:
    return "ReturnMismatch";
  case DiagCode::RuntimeTrap:
    return "RuntimeTrap";
  }
  assert(false && "unknown diagnostic code");
  return "?";
}

std::string Diagnostic::str() const {
  std::string Out = Loc.valid() ? Loc.str() + ": " : std::string();
  Out += "error [";
  Out += diagCodeName(Code);
  Out += "]: ";
  Out += Message;
  return Out;
}

bool DiagnosticEngine::has(DiagCode Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
