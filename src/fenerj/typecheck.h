//===- fenerj/typecheck.h - The FEnerJ type checker -------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static checker enforcing the rules of Sections 2 and 3:
///
///  * no implicit approximate-to-precise data flow (assignments, field and
///    array writes, arguments, returns) — only endorse() crosses;
///  * precise-to-approximate flow via primitive subtyping;
///  * conditions (if/while) must be precise booleans — no implicit flows
///    through control flow (Section 2.4);
///  * array lengths and subscripts must be precise (Section 2.6);
///  * field reads/writes and method signatures undergo context adaptation
///    (Section 3.1), and a field whose adapted type mentions 'lost' may be
///    read but not written;
///  * @context may appear only inside class bodies;
///  * method dispatch selects the receiver-precision overload.
///
/// The checker walks every method body of every class plus the main
/// expression, reporting all violations (it does not stop at the first).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_TYPECHECK_H
#define ENERJ_FENERJ_TYPECHECK_H

#include "fenerj/ast.h"
#include "fenerj/diag.h"
#include "fenerj/program.h"

#include <optional>
#include <unordered_set>

namespace enerj {
namespace fenerj {

/// Checker options.
struct CheckOptions {
  /// Section 2.3's bidirectional typing: when the expected type of an
  /// expression is approximate (right-hand sides of assignments, lets,
  /// field/array writes, and method arguments), arithmetic on precise
  /// operands selects the *approximate* operator anyway — the result is
  /// only used approximately, so the precise unit would waste energy.
  bool Bidirectional = true;
};

/// The checker's verdict plus the operator-selection side table.
struct CheckResult {
  bool Ok = false;
  /// Binary/Unary nodes whose operands are precise but which execute on
  /// the approximate unit because their context is approximate (empty
  /// unless CheckOptions::Bidirectional). The interpreter perturbs and
  /// counts these as approximate operations.
  std::unordered_set<const Expr *> ContextApproxOps;
};

/// Type-checks \p Prog against \p Table. Returns true when the program is
/// well typed; all violations are reported to \p Diags.
bool typeCheck(const Program &Prog, const ClassTable &Table,
               DiagnosticEngine &Diags);

/// Full-control variant returning the bidirectional-typing side table.
CheckResult typeCheckEx(const Program &Prog, const ClassTable &Table,
                        DiagnosticEngine &Diags, const CheckOptions &Options);

/// Parses and type-checks \p Source in one step; on success returns the
/// program (and fills \p Table). This is the library's "compiler driver".
std::optional<Program> compile(std::string_view Source, ClassTable &Table,
                               DiagnosticEngine &Diags);

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_TYPECHECK_H
