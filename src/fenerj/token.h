//===- fenerj/token.h - FEnerJ token definitions ----------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of the FEnerJ surface syntax (Figure 1, extended with blocks,
/// local variables, while loops, arrays, endorse, and casts so that the
/// evaluation programs of Section 6 can be expressed).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_TOKEN_H
#define ENERJ_FENERJ_TOKEN_H

#include "fenerj/diag.h"

#include <cstdint>
#include <string>

namespace enerj {
namespace fenerj {

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwClass,
  KwExtends,
  KwNew,
  KwThis,
  KwNull,
  KwTrue,
  KwFalse,
  KwIf,
  KwElse,
  KwWhile,
  KwLet,
  KwIn,
  KwEndorse,
  KwCast,
  KwInt,
  KwFloat,
  KwBool,
  KwLength,
  // Qualifiers (the paper's annotations).
  KwApprox,   // @approx
  KwPrecise,  // @precise
  KwTop,      // @top
  KwContext,  // @context
  // Method receiver-precision markers (the _APPROX naming convention).
  KwApproxRecv,  // approx (bare, after the parameter list)
  KwPreciseRecv, // precise (bare, after the parameter list)
  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Assign,      // =
  FieldAssign, // :=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  BangEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang,
  LessColon, // reserved
};

/// Name for error messages ("'while'", "identifier", ...).
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;    ///< Identifier spelling.
  int64_t IntValue = 0;
  double FloatValue = 0.0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_TOKEN_H
