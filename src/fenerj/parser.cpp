//===- fenerj/parser.cpp - FEnerJ parser ----------------------------------===//

#include "fenerj/parser.h"

#include "fenerj/lexer.h"

#include <cassert>

using namespace enerj::fenerj;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::optional<Program> run();

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t Index = Pos + Ahead;
    if (Index >= Tokens.size())
      Index = Tokens.size() - 1; // Eof.
    return Tokens[Index];
  }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool match(TokenKind Kind) {
    if (!check(Kind))
      return false;
    advance();
    return true;
  }
  bool expect(TokenKind Kind) {
    if (match(Kind))
      return true;
    Diags.report(DiagCode::ExpectedToken, peek().Loc,
                 std::string("expected ") + tokenKindName(Kind) +
                     " but found " + tokenKindName(peek().Kind));
    Failed = true;
    return false;
  }

  std::optional<Type> parseType();
  std::optional<ClassDecl> parseClass();
  bool parseMember(ClassDecl &Cls);

  ExprPtr parseExpr();
  ExprPtr parseAssign();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  ExprPtr parseBlock();

  ExprPtr fail(std::string Message) {
    Diags.report(DiagCode::ExpectedToken, peek().Loc, std::move(Message));
    Failed = true;
    return nullptr;
  }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;
};

std::optional<Type> Parser::parseType() {
  Qual Q = Qual::Precise;
  bool HadQual = false;
  switch (peek().Kind) {
  case TokenKind::KwApprox:
    Q = Qual::Approx;
    HadQual = true;
    advance();
    break;
  case TokenKind::KwPrecise:
    Q = Qual::Precise;
    HadQual = true;
    advance();
    break;
  case TokenKind::KwTop:
    Q = Qual::Top;
    HadQual = true;
    advance();
    break;
  case TokenKind::KwContext:
    Q = Qual::Context;
    HadQual = true;
    advance();
    break;
  default:
    break;
  }
  (void)HadQual;

  BaseKind Base;
  std::string ClassName;
  switch (peek().Kind) {
  case TokenKind::KwInt:
    Base = BaseKind::Int;
    advance();
    break;
  case TokenKind::KwFloat:
    Base = BaseKind::Float;
    advance();
    break;
  case TokenKind::KwBool:
    Base = BaseKind::Bool;
    advance();
    break;
  case TokenKind::Identifier:
    Base = BaseKind::Class;
    ClassName = advance().Text;
    break;
  default:
    Diags.report(DiagCode::ExpectedToken, peek().Loc,
                 std::string("expected a type but found ") +
                     tokenKindName(peek().Kind));
    Failed = true;
    return std::nullopt;
  }

  if (check(TokenKind::LBracket) && peek(1).is(TokenKind::RBracket)) {
    advance();
    advance();
    if (Base == BaseKind::Class) {
      Diags.report(DiagCode::ExpectedToken, peek().Loc,
                   "arrays of class type are not supported; use arrays of "
                   "primitives");
      Failed = true;
      return std::nullopt;
    }
    return Type::makeArray(Q, Base);
  }

  if (Base == BaseKind::Class)
    return Type::makeClass(Q, std::move(ClassName));
  return Type::makePrim(Q, Base);
}

std::optional<ClassDecl> Parser::parseClass() {
  ClassDecl Cls;
  Cls.Loc = peek().Loc;
  expect(TokenKind::KwClass);
  if (!check(TokenKind::Identifier)) {
    expect(TokenKind::Identifier);
    return std::nullopt;
  }
  Cls.Name = advance().Text;
  if (match(TokenKind::KwExtends)) {
    if (!check(TokenKind::Identifier)) {
      expect(TokenKind::Identifier);
      return std::nullopt;
    }
    Cls.SuperName = advance().Text;
  }
  if (!expect(TokenKind::LBrace))
    return std::nullopt;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof))
    if (!parseMember(Cls))
      return std::nullopt;
  expect(TokenKind::RBrace);
  return Cls;
}

bool Parser::parseMember(ClassDecl &Cls) {
  SourceLoc Loc = peek().Loc;
  std::optional<Type> DeclType = parseType();
  if (!DeclType)
    return false;
  if (!check(TokenKind::Identifier)) {
    expect(TokenKind::Identifier);
    return false;
  }
  std::string Name = advance().Text;

  if (match(TokenKind::Semicolon)) {
    Cls.Fields.push_back({std::move(*DeclType), std::move(Name), Loc});
    return true;
  }

  // Method.
  MethodDecl Method;
  Method.Loc = Loc;
  Method.ReturnType = std::move(*DeclType);
  Method.Name = std::move(Name);
  if (!expect(TokenKind::LParen))
    return false;
  if (!check(TokenKind::RParen)) {
    do {
      SourceLoc ParamLoc = peek().Loc;
      std::optional<Type> ParamType = parseType();
      if (!ParamType)
        return false;
      if (!check(TokenKind::Identifier)) {
        expect(TokenKind::Identifier);
        return false;
      }
      Method.Params.push_back(
          {std::move(*ParamType), advance().Text, ParamLoc});
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen))
    return false;
  if (match(TokenKind::KwApproxRecv))
    Method.ReceiverPrecision = Qual::Approx;
  else if (match(TokenKind::KwPreciseRecv))
    Method.ReceiverPrecision = Qual::Precise;
  Method.Body = parseBlock();
  if (!Method.Body)
    return false;
  Cls.Methods.push_back(std::move(Method));
  return true;
}

ExprPtr Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  if (!expect(TokenKind::LBrace))
    return nullptr;
  std::vector<BlockExpr::Item> Items;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    BlockExpr::Item Item;
    if (match(TokenKind::KwLet)) {
      Item.IsLet = true;
      Item.LetLoc = peek().Loc;
      std::optional<Type> LetType = parseType();
      if (!LetType)
        return nullptr;
      Item.LetType = std::move(*LetType);
      if (!check(TokenKind::Identifier)) {
        expect(TokenKind::Identifier);
        return nullptr;
      }
      Item.LetName = advance().Text;
      if (!expect(TokenKind::Assign))
        return nullptr;
      Item.Value = parseExpr();
    } else {
      Item.Value = parseExpr();
    }
    if (!Item.Value)
      return nullptr;
    Items.push_back(std::move(Item));
    if (!check(TokenKind::RBrace) && !expect(TokenKind::Semicolon))
      return nullptr;
    // A trailing semicolon before '}' is fine.
  }
  if (!expect(TokenKind::RBrace))
    return nullptr;
  return std::make_unique<BlockExpr>(Loc, std::move(Items));
}

ExprPtr Parser::parseExpr() { return parseAssign(); }

ExprPtr Parser::parseAssign() {
  if (check(TokenKind::Identifier) && peek(1).is(TokenKind::Assign)) {
    SourceLoc Loc = peek().Loc;
    std::string Name = advance().Text;
    advance(); // '='
    ExprPtr Value = parseAssign();
    if (!Value)
      return nullptr;
    return std::make_unique<AssignLocalExpr>(Loc, std::move(Name),
                                             std::move(Value));
  }
  return parseOr();
}

ExprPtr Parser::parseOr() {
  ExprPtr Lhs = parseAnd();
  while (Lhs && check(TokenKind::PipePipe)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseAnd();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Loc, BinaryOp::Or, std::move(Lhs),
                                       std::move(Rhs));
  }
  return Lhs;
}

ExprPtr Parser::parseAnd() {
  ExprPtr Lhs = parseEquality();
  while (Lhs && check(TokenKind::AmpAmp)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseEquality();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Loc, BinaryOp::And, std::move(Lhs),
                                       std::move(Rhs));
  }
  return Lhs;
}

ExprPtr Parser::parseEquality() {
  ExprPtr Lhs = parseRelational();
  while (Lhs && (check(TokenKind::EqEq) || check(TokenKind::BangEq))) {
    BinaryOp Op = check(TokenKind::EqEq) ? BinaryOp::Eq : BinaryOp::Ne;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseRelational();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Loc, Op, std::move(Lhs),
                                       std::move(Rhs));
  }
  return Lhs;
}

ExprPtr Parser::parseRelational() {
  ExprPtr Lhs = parseAdditive();
  for (;;) {
    if (!Lhs)
      return nullptr;
    BinaryOp Op;
    if (check(TokenKind::Less))
      Op = BinaryOp::Lt;
    else if (check(TokenKind::LessEq))
      Op = BinaryOp::Le;
    else if (check(TokenKind::Greater))
      Op = BinaryOp::Gt;
    else if (check(TokenKind::GreaterEq))
      Op = BinaryOp::Ge;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseAdditive();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Loc, Op, std::move(Lhs),
                                       std::move(Rhs));
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  for (;;) {
    if (!Lhs)
      return nullptr;
    BinaryOp Op;
    if (check(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (check(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseMultiplicative();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Loc, Op, std::move(Lhs),
                                       std::move(Rhs));
  }
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  for (;;) {
    if (!Lhs)
      return nullptr;
    BinaryOp Op;
    if (check(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (check(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (check(TokenKind::Percent))
      Op = BinaryOp::Mod;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Loc, Op, std::move(Lhs),
                                       std::move(Rhs));
  }
}

ExprPtr Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Value = parseUnary();
    if (!Value)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Neg, std::move(Value));
  }
  if (check(TokenKind::Bang)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Value = parseUnary();
    if (!Value)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Not, std::move(Value));
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr Node = parsePrimary();
  for (;;) {
    if (!Node)
      return nullptr;
    if (match(TokenKind::Dot)) {
      if (match(TokenKind::KwLength)) {
        Node = std::make_unique<ArrayLengthExpr>(peek().Loc, std::move(Node));
        continue;
      }
      if (!check(TokenKind::Identifier))
        return fail("expected a member name after '.'");
      SourceLoc Loc = peek().Loc;
      std::string Name = advance().Text;
      if (match(TokenKind::LParen)) {
        std::vector<ExprPtr> Args;
        if (!check(TokenKind::RParen)) {
          do {
            ExprPtr Arg = parseExpr();
            if (!Arg)
              return nullptr;
            Args.push_back(std::move(Arg));
          } while (match(TokenKind::Comma));
        }
        if (!expect(TokenKind::RParen))
          return nullptr;
        Node = std::make_unique<MethodCallExpr>(Loc, std::move(Node),
                                                std::move(Name),
                                                std::move(Args));
        continue;
      }
      if (match(TokenKind::FieldAssign)) {
        ExprPtr Value = parseExpr();
        if (!Value)
          return nullptr;
        Node = std::make_unique<FieldWriteExpr>(Loc, std::move(Node),
                                                std::move(Name),
                                                std::move(Value));
        continue;
      }
      Node = std::make_unique<FieldReadExpr>(Loc, std::move(Node),
                                             std::move(Name));
      continue;
    }
    if (check(TokenKind::LBracket)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr Index = parseExpr();
      if (!Index || !expect(TokenKind::RBracket))
        return nullptr;
      if (match(TokenKind::FieldAssign)) {
        ExprPtr Value = parseExpr();
        if (!Value)
          return nullptr;
        Node = std::make_unique<ArrayWriteExpr>(Loc, std::move(Node),
                                                std::move(Index),
                                                std::move(Value));
        continue;
      }
      Node = std::make_unique<ArrayReadExpr>(Loc, std::move(Node),
                                             std::move(Index));
      continue;
    }
    return Node;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::KwNull:
    advance();
    return std::make_unique<NullLitExpr>(Loc);
  case TokenKind::IntLiteral: {
    int64_t Value = advance().IntValue;
    return std::make_unique<IntLitExpr>(Loc, Value);
  }
  case TokenKind::FloatLiteral: {
    double Value = advance().FloatValue;
    return std::make_unique<FloatLitExpr>(Loc, Value);
  }
  case TokenKind::KwTrue:
    advance();
    return std::make_unique<BoolLitExpr>(Loc, true);
  case TokenKind::KwFalse:
    advance();
    return std::make_unique<BoolLitExpr>(Loc, false);
  case TokenKind::KwThis:
    advance();
    return std::make_unique<VarRefExpr>(Loc, "this");
  case TokenKind::Identifier:
    return std::make_unique<VarRefExpr>(Loc, advance().Text);
  case TokenKind::KwNew: {
    advance();
    Qual Q = Qual::Precise;
    if (match(TokenKind::KwApprox))
      Q = Qual::Approx;
    else if (match(TokenKind::KwPrecise))
      Q = Qual::Precise;
    else if (match(TokenKind::KwContext))
      Q = Qual::Context;
    // new q P[len]
    BaseKind Elem;
    bool IsPrimArray = true;
    switch (peek().Kind) {
    case TokenKind::KwInt:
      Elem = BaseKind::Int;
      break;
    case TokenKind::KwFloat:
      Elem = BaseKind::Float;
      break;
    case TokenKind::KwBool:
      Elem = BaseKind::Bool;
      break;
    default:
      IsPrimArray = false;
      Elem = BaseKind::Int;
      break;
    }
    if (IsPrimArray) {
      advance();
      if (!expect(TokenKind::LBracket))
        return nullptr;
      ExprPtr Length = parseExpr();
      if (!Length || !expect(TokenKind::RBracket))
        return nullptr;
      return std::make_unique<NewArrayExpr>(Loc, Q, Elem, std::move(Length));
    }
    if (!check(TokenKind::Identifier))
      return fail("expected a class name or primitive type after 'new'");
    std::string ClassName = advance().Text;
    if (!expect(TokenKind::LParen) || !expect(TokenKind::RParen))
      return nullptr;
    return std::make_unique<NewExpr>(Loc, Q, std::move(ClassName));
  }
  case TokenKind::KwEndorse: {
    advance();
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Value = parseExpr();
    if (!Value || !expect(TokenKind::RParen))
      return nullptr;
    return std::make_unique<EndorseExpr>(Loc, std::move(Value));
  }
  case TokenKind::KwCast: {
    advance();
    if (!expect(TokenKind::Less))
      return nullptr;
    std::optional<Type> Target = parseType();
    if (!Target || !expect(TokenKind::Greater))
      return nullptr;
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Value = parseExpr();
    if (!Value || !expect(TokenKind::RParen))
      return nullptr;
    return std::make_unique<CastExpr>(Loc, std::move(*Target),
                                      std::move(Value));
  }
  case TokenKind::KwIf: {
    advance();
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen))
      return nullptr;
    ExprPtr Then = parseBlock();
    if (!Then || !expect(TokenKind::KwElse))
      return nullptr;
    ExprPtr Else = parseBlock();
    if (!Else)
      return nullptr;
    return std::make_unique<IfExpr>(Loc, std::move(Cond), std::move(Then),
                                    std::move(Else));
  }
  case TokenKind::KwWhile: {
    advance();
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen))
      return nullptr;
    ExprPtr Body = parseBlock();
    if (!Body)
      return nullptr;
    return std::make_unique<WhileExpr>(Loc, std::move(Cond),
                                       std::move(Body));
  }
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::LParen: {
    advance();
    ExprPtr Inner = parseExpr();
    if (!Inner || !expect(TokenKind::RParen))
      return nullptr;
    return Inner;
  }
  default:
    return fail(std::string("expected an expression but found ") +
                tokenKindName(peek().Kind));
  }
}

std::optional<Program> Parser::run() {
  Program Prog;
  while (check(TokenKind::KwClass)) {
    std::optional<ClassDecl> Cls = parseClass();
    if (!Cls)
      return std::nullopt;
    Prog.Classes.push_back(std::move(*Cls));
  }
  if (check(TokenKind::Eof)) {
    Diags.report(DiagCode::ExpectedToken, peek().Loc,
                 "expected a main expression after the class declarations");
    return std::nullopt;
  }
  Prog.Main = parseExpr();
  if (!Prog.Main || Failed)
    return std::nullopt;
  if (!check(TokenKind::Eof)) {
    Diags.report(DiagCode::ExpectedToken, peek().Loc,
                 std::string("unexpected trailing ") +
                     tokenKindName(peek().Kind) +
                     " after the main expression");
    return std::nullopt;
  }
  return Prog;
}

} // namespace

std::optional<Program>
enerj::fenerj::parseProgram(std::string_view Source, DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = lex(Source, Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  return Parser(std::move(Tokens), Diags).run();
}
