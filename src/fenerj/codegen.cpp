//===- fenerj/codegen.cpp - FEnerJ-to-approximate-ISA compiler ------------===//

#include "fenerj/codegen.h"

#include "isa/isa.h"

#include <cassert>
#include <cstdio>
#include <unordered_map>
#include <vector>

using namespace enerj;
using namespace enerj::fenerj;

namespace {

/// The static facts codegen tracks per value: unit and precision.
struct TypeInfo {
  bool IsFp = false;
  bool Approx = false;
};

/// Where a local lives.
struct SlotInfo {
  uint64_t Slot = 0; ///< Word index within its region.
  bool IsFp = false;
  bool Approx = false;
  bool IsArray = false;
  int64_t Length = 0;
};

/// A value held in a register during expression evaluation.
struct RegValue {
  unsigned Reg = 0;
  bool IsFp = false;
  bool Approx = false;
};

/// Unwinds codegen on an unsupported construct; converted to
/// CodegenResult::Error at the boundary. (Codegen is a driver-level tool;
/// the exception keeps ~30 bail-out sites readable.)
struct Unsupported {
  std::string Message;
};

class Codegen {
public:
  CodegenResult run(const Program &Prog);

private:
  /// Register pools: precise r4..r15 / f4..f15, approximate r16..r27 /
  /// f16..f27, managed as per-pool LIFO stacks. r0 stays 0; r1/f1 carry
  /// the final result; r2,r3/f2,f3 are precise scratch; r28/f28 park
  /// if-branch values of approximate precision.
  static constexpr unsigned PrecisePoolBase = 4;
  static constexpr unsigned PrecisePoolSize = 12;
  static constexpr unsigned ApproxPoolBase = isa::FirstApproxReg;
  static constexpr unsigned ApproxPoolSize = 12;

  unsigned allocReg(bool IsFp, bool Approx) {
    unsigned &Depth = Depths[IsFp][Approx];
    unsigned Size = Approx ? ApproxPoolSize : PrecisePoolSize;
    if (Depth >= Size)
      throw Unsupported{"expression too deep for the register pools"};
    unsigned Base = Approx ? ApproxPoolBase : PrecisePoolBase;
    return Base + Depth++;
  }
  RegValue allocValue(bool IsFp, bool Approx) {
    return {allocReg(IsFp, Approx), IsFp, Approx};
  }
  void freeReg(const RegValue &Value) {
    unsigned &Depth = Depths[Value.IsFp][Value.Approx];
    assert(Depth > 0 && "register pool underflow");
    --Depth;
    assert(Value.Reg ==
               (Value.Approx ? ApproxPoolBase : PrecisePoolBase) + Depth &&
           "non-LIFO register release");
  }

  void emit(const std::string &Text) {
    Body += "  ";
    Body += Text;
    Body += '\n';
  }
  static std::string rn(bool IsFp, unsigned Index) {
    return (IsFp ? "f" : "r") + std::to_string(Index);
  }
  std::string reg(const RegValue &V) { return rn(V.IsFp, V.Reg); }
  std::string freshLabel() { return "L" + std::to_string(LabelCounter++); }
  void placeLabel(const std::string &Label) { Body += Label + ":\n"; }
  void emitMove(bool IsFp, const std::string &Dst, const std::string &Src) {
    if (Dst != Src)
      emit(std::string(IsFp ? "fmv" : "mv") + " " + Dst + ", " + Src);
  }

  /// Frees \p Operand (the top allocation) and \p Below (the one under
  /// it), then re-allocates a register of \p Operand's shape for the
  /// value physically sitting in \p Operand's old register, moving it if
  /// the fresh register differs. This is how a computed value "sinks"
  /// past a consumed operand while keeping the pools LIFO.
  RegValue normalize(RegValue Operand, RegValue Below) {
    unsigned Phys = Operand.Reg;
    bool IsFp = Operand.IsFp, Approx = Operand.Approx;
    freeReg(Operand);
    freeReg(Below);
    RegValue Out = allocValue(IsFp, Approx);
    emitMove(IsFp, reg(Out), rn(IsFp, Phys));
    return Out;
  }

  SlotInfo &lookup(const std::string &Name, SourceLoc Loc) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    throw Unsupported{"unbound variable '" + Name + "' at " + Loc.str()};
  }

  uint64_t allocWords(bool Approx, uint64_t Count) {
    uint64_t &Counter = Approx ? ApproxWords : PreciseWords;
    uint64_t Slot = Counter;
    Counter += Count;
    return Slot;
  }

  /// Absolute address of a slot: the approximate region starts after the
  /// (reserved) precise region.
  std::string addressImm(const SlotInfo &Info) const {
    uint64_t Base = Info.Approx ? PreciseReserve + Info.Slot : Info.Slot;
    return std::to_string(Base);
  }

  TypeInfo infer(const Expr &E);
  RegValue genExpr(const Expr &E);
  void genCondition(const Expr &E, const std::string &FalseLabel);
  void genComparison(const BinaryExpr &Bin, bool EndorseOperands,
                     const std::string &FalseLabel);

  RegValue loadSlot(const SlotInfo &Info, const RegValue *IndexReg) {
    RegValue Out = allocValue(Info.IsFp, Info.Approx);
    std::string Op =
        std::string(Info.IsFp ? "flw" : "lw") + (Info.Approx ? ".a" : "");
    emit(Op + " " + reg(Out) + ", " + (IndexReg ? reg(*IndexReg) : "r0") +
         ", " + addressImm(Info));
    return Out;
  }

  /// Emits the store; does not free \p Value. The checker guarantees
  /// base types match and approximate values never reach precise slots,
  /// so no conversion is ever needed here.
  void emitStore(const SlotInfo &Info, const RegValue *IndexReg,
                 const RegValue &Value) {
    assert(Value.IsFp == Info.IsFp && "base type mismatch survived checking");
    assert((!Value.Approx || Info.Approx) &&
           "approximate value reached a precise slot");
    std::string Op =
        std::string(Info.IsFp ? "fsw" : "sw") + (Info.Approx ? ".a" : "");
    emit(Op + " " + reg(Value) + ", " + (IndexReg ? reg(*IndexReg) : "r0") +
         ", " + addressImm(Info));
  }

  /// Widens \p Value to (IsFp, Approx); frees the input register and
  /// allocates the output (which must be requested in the same breath —
  /// the value must be the top of its pool).
  RegValue coerce(RegValue Value, bool IsFp, bool Approx) {
    if (Value.IsFp == IsFp && Value.Approx == Approx)
      return Value;
    if (Value.Approx && !Approx)
      throw Unsupported{"internal: implicit approx-to-precise coercion"};
    unsigned Phys = Value.Reg;
    bool SrcFp = Value.IsFp;
    freeReg(Value);
    RegValue Out = allocValue(IsFp, Approx);
    if (SrcFp == IsFp) {
      // Plain precision widening: a precise source moving into an
      // approximate register is always legal.
      emitMove(IsFp, reg(Out), rn(IsFp, Phys));
      return Out;
    }
    std::string Suffix = Approx ? ".a" : "";
    emit(std::string(IsFp ? "cvt" : "cvti") + Suffix + " " + reg(Out) +
         ", " + rn(SrcFp, Phys));
    return Out;
  }

  std::string Body;
  std::vector<std::unordered_map<std::string, SlotInfo>> Scopes;
  unsigned Depths[2][2] = {{0, 0}, {0, 0}};
  uint64_t PreciseWords = 0;
  uint64_t ApproxWords = 0;
  int LabelCounter = 0;

  /// The precise region is reserved up front so approximate addresses
  /// are known while emitting.
  static constexpr uint64_t PreciseReserve = 4096;
};

TypeInfo Codegen::infer(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::ArrayLength:
  case ExprKind::While:
    return {false, false};
  case ExprKind::FloatLit:
    return {true, false};
  case ExprKind::VarRef: {
    const auto &Var = static_cast<const VarRefExpr &>(E);
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Var.Name);
      if (Found != It->end())
        return {Found->second.IsFp, Found->second.Approx};
    }
    return {false, false};
  }
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    TypeInfo L = infer(*Bin.Lhs);
    TypeInfo R = infer(*Bin.Rhs);
    switch (Bin.Op) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::And:
    case BinaryOp::Or:
      return {false, L.Approx || R.Approx}; // Booleans live in int regs.
    default:
      return {L.IsFp || R.IsFp, L.Approx || R.Approx};
    }
  }
  case ExprKind::Unary:
    return infer(*static_cast<const UnaryExpr &>(E).Value);
  case ExprKind::Endorse: {
    TypeInfo Inner = infer(*static_cast<const EndorseExpr &>(E).Value);
    return {Inner.IsFp, false};
  }
  case ExprKind::Cast: {
    const auto &Cast = static_cast<const CastExpr &>(E);
    TypeInfo Inner = infer(*Cast.Value);
    return {Cast.Target.Base == BaseKind::Float,
            Cast.Target.Q == Qual::Approx || Inner.Approx};
  }
  case ExprKind::ArrayRead: {
    const auto &Read = static_cast<const ArrayReadExpr &>(E);
    return infer(*Read.Array);
  }
  case ExprKind::AssignLocal: {
    const auto &Assign = static_cast<const AssignLocalExpr &>(E);
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Assign.Name);
      if (Found != It->end())
        return {Found->second.IsFp, Found->second.Approx};
    }
    return {false, false};
  }
  case ExprKind::ArrayWrite:
    return infer(*static_cast<const ArrayWriteExpr &>(E).Value);
  case ExprKind::If: {
    const auto &If = static_cast<const IfExpr &>(E);
    TypeInfo T = infer(*If.Then);
    TypeInfo F = infer(*If.Else);
    return {T.IsFp || F.IsFp, T.Approx || F.Approx};
  }
  case ExprKind::Block: {
    const auto &Block = static_cast<const BlockExpr &>(E);
    if (Block.Items.empty())
      return {false, false};
    // Walk the block with a shadow scope so lets resolve correctly; the
    // dummy slots carry only type facts and are popped before codegen.
    Scopes.emplace_back();
    TypeInfo Last{false, false};
    for (const BlockExpr::Item &Item : Block.Items) {
      Last = infer(*Item.Value);
      if (Item.IsLet) {
        SlotInfo Dummy;
        Dummy.IsFp = (Item.LetType.isArray() ? Item.LetType.Elem
                                             : Item.LetType.Base) ==
                     BaseKind::Float;
        Dummy.Approx = (Item.LetType.isArray() ? Item.LetType.ElemQual
                                               : Item.LetType.Q) ==
                       Qual::Approx;
        Dummy.IsArray = Item.LetType.isArray();
        Scopes.back()[Item.LetName] = Dummy;
        Last = {Dummy.IsFp, Dummy.Approx};
      }
    }
    Scopes.pop_back();
    return Last;
  }
  default:
    throw Unsupported{"construct not supported by the ISA code generator"};
  }
}

void Codegen::genComparison(const BinaryExpr &Bin, bool EndorseOperands,
                            const std::string &FalseLabel) {
  RegValue L = genExpr(*Bin.Lhs);
  RegValue R = genExpr(*Bin.Rhs);
  bool IsFp = L.IsFp || R.IsFp; // Checker guarantees they agree.
  if ((L.Approx || R.Approx) && !EndorseOperands)
    throw Unsupported{"internal: approximate condition reached codegen"};
  // Endorse approximate operands into the precise scratch registers —
  // branch operands must be precise (Section 2.4 at the ISA level).
  std::string Lhs = reg(L), Rhs = reg(R);
  if (L.Approx) {
    emit(std::string(IsFp ? "fendorse " : "endorse ") + rn(IsFp, 2) +
         ", " + Lhs);
    Lhs = rn(IsFp, 2);
  }
  if (R.Approx) {
    emit(std::string(IsFp ? "fendorse " : "endorse ") + rn(IsFp, 3) +
         ", " + Rhs);
    Rhs = rn(IsFp, 3);
  }
  if (!IsFp) {
    // Integers: branch on the negation to FalseLabel; fall through when
    // true.
    switch (Bin.Op) {
    case BinaryOp::Eq:
      emit("bne " + Lhs + ", " + Rhs + ", " + FalseLabel);
      break;
    case BinaryOp::Ne:
      emit("beq " + Lhs + ", " + Rhs + ", " + FalseLabel);
      break;
    case BinaryOp::Lt:
      emit("ble " + Rhs + ", " + Lhs + ", " + FalseLabel);
      break;
    case BinaryOp::Le:
      emit("blt " + Rhs + ", " + Lhs + ", " + FalseLabel);
      break;
    case BinaryOp::Gt:
      emit("ble " + Lhs + ", " + Rhs + ", " + FalseLabel);
      break;
    case BinaryOp::Ge:
      emit("blt " + Lhs + ", " + Rhs + ", " + FalseLabel);
      break;
    default:
      assert(false && "not a comparison");
    }
  } else {
    // Floats: negated FP comparisons mishandle NaN (!(a < b) must be
    // TRUE on NaN), so branch on the *positive* condition instead.
    std::string TrueLabel = freshLabel();
    switch (Bin.Op) {
    case BinaryOp::Eq:
      emit("fbeq " + Lhs + ", " + Rhs + ", " + TrueLabel);
      break;
    case BinaryOp::Ne:
      emit("fbne " + Lhs + ", " + Rhs + ", " + TrueLabel);
      break;
    case BinaryOp::Lt:
      emit("fblt " + Lhs + ", " + Rhs + ", " + TrueLabel);
      break;
    case BinaryOp::Le:
      emit("fble " + Lhs + ", " + Rhs + ", " + TrueLabel);
      break;
    case BinaryOp::Gt:
      emit("fblt " + Rhs + ", " + Lhs + ", " + TrueLabel);
      break;
    case BinaryOp::Ge:
      emit("fble " + Rhs + ", " + Lhs + ", " + TrueLabel);
      break;
    default:
      assert(false && "not a comparison");
    }
    emit("jmp " + FalseLabel);
    placeLabel(TrueLabel);
  }
  freeReg(R);
  freeReg(L);
}

void Codegen::genCondition(const Expr &E, const std::string &FalseLabel) {
  switch (E.kind()) {
  case ExprKind::BoolLit:
    if (!static_cast<const BoolLitExpr &>(E).Value)
      emit("jmp " + FalseLabel);
    return;

  case ExprKind::If: {
    // A conditional *as* a condition: branch into whichever arm applies
    // and treat that arm as the condition.
    const auto &If = static_cast<const IfExpr &>(E);
    std::string ElseLabel = freshLabel();
    std::string TrueLabel = freshLabel();
    genCondition(*If.Cond, ElseLabel);
    genCondition(*If.Then, FalseLabel);
    emit("jmp " + TrueLabel);
    placeLabel(ElseLabel);
    genCondition(*If.Else, FalseLabel);
    placeLabel(TrueLabel);
    return;
  }

  case ExprKind::Block: {
    // { e1; ...; cond }: evaluate the prefix for effect, condition on
    // the last item. (Lets of boolean conditions are not supported.)
    const auto &Block = static_cast<const BlockExpr &>(E);
    if (Block.Items.empty() || Block.Items.back().IsLet)
      break;
    Scopes.emplace_back();
    for (size_t Item = 0; Item + 1 < Block.Items.size(); ++Item) {
      if (Block.Items[Item].IsLet)
        throw Unsupported{"let inside a condition block is not supported "
                          "by the ISA code generator"};
      freeReg(genExpr(*Block.Items[Item].Value));
    }
    genCondition(*Block.Items.back().Value, FalseLabel);
    Scopes.pop_back();
    return;
  }

  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(E);
    if (Un.Op != UnaryOp::Not)
      break;
    std::string TrueLabel = freshLabel();
    genCondition(*Un.Value, TrueLabel); // Falls through when C true...
    emit("jmp " + FalseLabel);          // ...so !C is false: bail.
    placeLabel(TrueLabel);
    return;
  }

  case ExprKind::Endorse: {
    // endorse(x < y): the ISA's branches are precise, so the operands
    // are endorsed right before the compare.
    const auto &End = static_cast<const EndorseExpr &>(E);
    if (End.Value->kind() == ExprKind::Binary) {
      const auto &Bin = static_cast<const BinaryExpr &>(*End.Value);
      switch (Bin.Op) {
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        genComparison(Bin, /*EndorseOperands=*/true, FalseLabel);
        return;
      default:
        break;
      }
    }
    break;
  }

  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    switch (Bin.Op) {
    case BinaryOp::And:
      genCondition(*Bin.Lhs, FalseLabel);
      genCondition(*Bin.Rhs, FalseLabel);
      return;
    case BinaryOp::Or: {
      std::string TrueLabel = freshLabel();
      std::string TryRhs = freshLabel();
      genCondition(*Bin.Lhs, TryRhs);
      emit("jmp " + TrueLabel);
      placeLabel(TryRhs);
      genCondition(*Bin.Rhs, FalseLabel);
      placeLabel(TrueLabel);
      return;
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      genComparison(Bin, /*EndorseOperands=*/false, FalseLabel);
      return;
    default:
      break;
    }
    break;
  }
  default:
    break;
  }
  // General fallback: materialize the boolean value (0/1 in an integer
  // register; the checker guarantees conditions are precise, and
  // genExpr(Endorse) already lowers endorsements) and compare with zero.
  {
    RegValue Value = genExpr(E);
    if (Value.IsFp || Value.Approx)
      throw Unsupported{"internal: non-precise condition value at " +
                        E.loc().str()};
    emit("beq " + reg(Value) + ", r0, " + FalseLabel);
    freeReg(Value);
  }
}

RegValue Codegen::genExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::IntLit: {
    RegValue Out = allocValue(false, false);
    emit("li " + reg(Out) + ", " +
         std::to_string(static_cast<const IntLitExpr &>(E).Value));
    return Out;
  }
  case ExprKind::FloatLit: {
    RegValue Out = allocValue(true, false);
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%.17g",
                  static_cast<const FloatLitExpr &>(E).Value);
    emit("lfi " + reg(Out) + ", " + std::string(Buffer));
    return Out;
  }
  case ExprKind::BoolLit: {
    RegValue Out = allocValue(false, false);
    emit("li " + reg(Out) + ", " +
         (static_cast<const BoolLitExpr &>(E).Value ? "1" : "0"));
    return Out;
  }

  case ExprKind::VarRef: {
    SlotInfo &Info =
        lookup(static_cast<const VarRefExpr &>(E).Name, E.loc());
    if (Info.IsArray)
      throw Unsupported{"array references as values are not supported by "
                        "the ISA code generator"};
    return loadSlot(Info, nullptr);
  }

  case ExprKind::ArrayRead: {
    const auto &Read = static_cast<const ArrayReadExpr &>(E);
    if (Read.Array->kind() != ExprKind::VarRef)
      throw Unsupported{"computed array expressions are not supported"};
    SlotInfo Info = lookup(
        static_cast<const VarRefExpr &>(*Read.Array).Name, E.loc());
    RegValue Index = genExpr(*Read.Index);
    RegValue Value = loadSlot(Info, &Index);
    return normalize(Value, Index);
  }

  case ExprKind::ArrayWrite: {
    const auto &Write = static_cast<const ArrayWriteExpr &>(E);
    if (Write.Array->kind() != ExprKind::VarRef)
      throw Unsupported{"computed array expressions are not supported"};
    SlotInfo Info = lookup(
        static_cast<const VarRefExpr &>(*Write.Array).Name, E.loc());
    RegValue Index = genExpr(*Write.Index);
    RegValue Value = genExpr(*Write.Value);
    emitStore(Info, &Index, Value);
    // The expression's value is the stored value; sink it past Index.
    return normalize(Value, Index);
  }

  case ExprKind::ArrayLength: {
    const auto &Len = static_cast<const ArrayLengthExpr &>(E);
    if (Len.Array->kind() != ExprKind::VarRef)
      throw Unsupported{"computed array expressions are not supported"};
    SlotInfo &Info =
        lookup(static_cast<const VarRefExpr &>(*Len.Array).Name, E.loc());
    RegValue Out = allocValue(false, false);
    emit("li " + reg(Out) + ", " + std::to_string(Info.Length));
    return Out;
  }

  case ExprKind::Endorse: {
    RegValue Inner = genExpr(*static_cast<const EndorseExpr &>(E).Value);
    if (!Inner.Approx)
      return Inner; // Identity on precise data.
    unsigned Phys = Inner.Reg;
    bool IsFp = Inner.IsFp;
    freeReg(Inner);
    RegValue Out = allocValue(IsFp, false);
    emit(std::string(IsFp ? "fendorse" : "endorse") + " " + reg(Out) +
         ", " + rn(IsFp, Phys));
    return Out;
  }

  case ExprKind::Cast: {
    const auto &Cast = static_cast<const CastExpr &>(E);
    RegValue Inner = genExpr(*Cast.Value);
    bool WantFp = Cast.Target.Base == BaseKind::Float;
    bool WantApprox = Cast.Target.Q == Qual::Approx || Inner.Approx;
    return coerce(Inner, WantFp, WantApprox);
  }

  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(E);
    if (Un.Op != UnaryOp::Not && Un.Op != UnaryOp::Neg)
      break;
    if (Un.Op == UnaryOp::Not) {
      RegValue Inner = genExpr(*Un.Value);
      std::string Op = Inner.Approx ? "seq.a" : "seq";
      unsigned Phys = Inner.Reg;
      bool Approx = Inner.Approx;
      freeReg(Inner);
      RegValue Out = allocValue(false, Approx);
      emit(Op + " " + reg(Out) + ", r" + std::to_string(Phys) + ", r0");
      return Out;
    }
    RegValue Inner = genExpr(*Un.Value);
    // 0 - x, computed into a register allocated above Inner, then sunk.
    RegValue Zero = allocValue(Inner.IsFp, Inner.Approx);
    emit(Inner.IsFp ? ("lfi " + reg(Zero) + ", 0.0")
                    : ("li " + reg(Zero) + ", 0"));
    std::string Suffix = Inner.Approx ? ".a" : "";
    emit(std::string(Inner.IsFp ? "fsub" : "sub") + Suffix + " " +
         reg(Zero) + ", " + reg(Zero) + ", " + reg(Inner));
    return normalize(Zero, Inner);
  }

  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    switch (Bin.Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      break;
    case BinaryOp::And:
    case BinaryOp::Or: {
      // Boolean values are 0/1 integers; non-short-circuiting, like the
      // interpreter.
      RegValue L = genExpr(*Bin.Lhs);
      RegValue R = genExpr(*Bin.Rhs);
      bool Approx = L.Approx || R.Approx;
      std::string Lhs = reg(L), Rhs = reg(R);
      freeReg(R);
      freeReg(L);
      RegValue Out = allocValue(false, Approx);
      emit(std::string(Bin.Op == BinaryOp::And ? "and" : "or") +
           (Approx ? ".a " : " ") + reg(Out) + ", " + Lhs + ", " + Rhs);
      return Out;
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      RegValue L = genExpr(*Bin.Lhs);
      RegValue R = genExpr(*Bin.Rhs);
      bool Approx = L.Approx || R.Approx;
      if (L.IsFp || R.IsFp) {
        // No FP set-instructions: materialize through an FP branch, which
        // requires precise operands. (An approximate FP comparison value
        // would need a compiler-inserted endorsement — refused: only the
        // programmer may pierce the isolation.)
        if (Approx)
          throw Unsupported{
              "approximate floating-point comparisons as values are not "
              "supported by the ISA code generator; endorse them in a "
              "condition instead"};
        std::string Lhs = reg(L), Rhs = reg(R);
        freeReg(R);
        freeReg(L);
        RegValue Out = allocValue(false, false);
        std::string DoneLabel = freshLabel();
        emit("li " + reg(Out) + ", 1");
        switch (Bin.Op) {
        case BinaryOp::Eq:
          emit("fbeq " + Lhs + ", " + Rhs + ", " + DoneLabel);
          break;
        case BinaryOp::Ne:
          emit("fbne " + Lhs + ", " + Rhs + ", " + DoneLabel);
          break;
        case BinaryOp::Lt:
          emit("fblt " + Lhs + ", " + Rhs + ", " + DoneLabel);
          break;
        case BinaryOp::Le:
          emit("fble " + Lhs + ", " + Rhs + ", " + DoneLabel);
          break;
        case BinaryOp::Gt:
          emit("fblt " + Rhs + ", " + Lhs + ", " + DoneLabel);
          break;
        default:
          emit("fble " + Rhs + ", " + Lhs + ", " + DoneLabel);
          break;
        }
        emit("li " + reg(Out) + ", 0");
        placeLabel(DoneLabel);
        return Out;
      }
      // Integer comparisons materialize with the set instructions; an
      // approximate comparison stays on the approximate unit (data path
      // only — no control flow involved).
      std::string Op;
      std::string Lhs = reg(L), Rhs = reg(R);
      bool Swap = false;
      switch (Bin.Op) {
      case BinaryOp::Eq:
        Op = "seq";
        break;
      case BinaryOp::Ne:
        Op = "sne";
        break;
      case BinaryOp::Lt:
        Op = "slt";
        break;
      case BinaryOp::Le:
        Op = "sle";
        break;
      case BinaryOp::Gt:
        Op = "slt";
        Swap = true;
        break;
      default:
        Op = "sle";
        Swap = true;
        break;
      }
      if (Swap)
        std::swap(Lhs, Rhs);
      if (Approx)
        Op += ".a";
      freeReg(R);
      freeReg(L);
      RegValue Out = allocValue(false, Approx);
      emit(Op + " " + reg(Out) + ", " + Lhs + ", " + Rhs);
      return Out;
    }
    }
    RegValue L = genExpr(*Bin.Lhs);
    RegValue R = genExpr(*Bin.Rhs);
    bool IsFp = L.IsFp || R.IsFp; // Checker guarantees they agree.
    bool Approx = L.Approx || R.Approx;
    std::string Op;
    switch (Bin.Op) {
    case BinaryOp::Add:
      Op = IsFp ? "fadd" : "add";
      break;
    case BinaryOp::Sub:
      Op = IsFp ? "fsub" : "sub";
      break;
    case BinaryOp::Mul:
      Op = IsFp ? "fmul" : "mul";
      break;
    case BinaryOp::Div:
      Op = IsFp ? "fdiv" : "div";
      break;
    case BinaryOp::Mod:
      Op = "rem";
      break;
    default:
      break;
    }
    if (Approx)
      Op += ".a";
    // The result register: free both operands (R is above L per pool),
    // then allocate the destination; the operand registers still hold
    // their values for the single instruction emitted next. An `.a`
    // destination is approximate by construction; a precise op only ever
    // sees precise operands (checker) — the verifier stays happy.
    std::string Lhs = reg(L), Rhs = reg(R);
    freeReg(R);
    freeReg(L);
    RegValue Out = allocValue(IsFp, Approx);
    emit(Op + " " + reg(Out) + ", " + Lhs + ", " + Rhs);
    return Out;
  }

  case ExprKind::If: {
    const auto &If = static_cast<const IfExpr &>(E);
    TypeInfo Result = infer(E);
    std::string Park = rn(Result.IsFp, Result.Approx ? 28u : 2u);
    std::string ElseLabel = freshLabel();
    std::string EndLabel = freshLabel();
    genCondition(*If.Cond, ElseLabel);
    RegValue Then = coerce(genExpr(*If.Then), Result.IsFp, Result.Approx);
    emitMove(Result.IsFp, Park, reg(Then));
    freeReg(Then);
    emit("jmp " + EndLabel);
    placeLabel(ElseLabel);
    RegValue Else = coerce(genExpr(*If.Else), Result.IsFp, Result.Approx);
    emitMove(Result.IsFp, Park, reg(Else));
    freeReg(Else);
    placeLabel(EndLabel);
    RegValue Out = allocValue(Result.IsFp, Result.Approx);
    emitMove(Result.IsFp, reg(Out), Park);
    return Out;
  }

  case ExprKind::While: {
    const auto &While = static_cast<const WhileExpr &>(E);
    std::string Head = freshLabel();
    std::string Exit = freshLabel();
    placeLabel(Head);
    genCondition(*While.Cond, Exit);
    freeReg(genExpr(*While.Body));
    emit("jmp " + Head);
    placeLabel(Exit);
    RegValue Out = allocValue(false, false);
    emit("li " + reg(Out) + ", 0");
    return Out;
  }

  case ExprKind::Block: {
    const auto &Block = static_cast<const BlockExpr &>(E);
    Scopes.emplace_back();
    RegValue Last = allocValue(false, false);
    emit("li " + reg(Last) + ", 0");
    for (const BlockExpr::Item &Item : Block.Items) {
      freeReg(Last);
      if (!Item.IsLet) {
        Last = genExpr(*Item.Value);
        continue;
      }
      if (Item.LetType.isClass())
        throw Unsupported{
            "classes are not supported by the ISA code generator"};
      BaseKind Base =
          Item.LetType.isArray() ? Item.LetType.Elem : Item.LetType.Base;
      SlotInfo Info;
      Info.IsFp = Base == BaseKind::Float; // Bools live in integer words.
      Info.Approx = (Item.LetType.isArray() ? Item.LetType.ElemQual
                                            : Item.LetType.Q) ==
                    Qual::Approx;
      if (Item.LetType.isArray()) {
        if (Item.Value->kind() != ExprKind::NewArray)
          throw Unsupported{"array lets must be initialized with a "
                            "new ...[] expression"};
        const auto &New = static_cast<const NewArrayExpr &>(*Item.Value);
        if (New.Length->kind() != ExprKind::IntLit)
          throw Unsupported{"array lengths must be integer literals for "
                            "the ISA code generator"};
        Info.IsArray = true;
        Info.Length = static_cast<const IntLitExpr &>(*New.Length).Value;
        if (Info.Length < 0)
          throw Unsupported{"negative array length"};
        Info.Slot =
            allocWords(Info.Approx, static_cast<uint64_t>(Info.Length));
        Scopes.back()[Item.LetName] = Info;
        Last = allocValue(false, false);
        emit("li " + reg(Last) + ", 0");
        continue;
      }
      Info.Slot = allocWords(Info.Approx, 1);
      Scopes.back()[Item.LetName] = Info;
      RegValue Init = genExpr(*Item.Value);
      emitStore(Info, nullptr, Init);
      freeReg(Init);
      Last = loadSlot(Info, nullptr);
    }
    Scopes.pop_back();
    return Last;
  }

  case ExprKind::AssignLocal: {
    const auto &Assign = static_cast<const AssignLocalExpr &>(E);
    SlotInfo Info = lookup(Assign.Name, E.loc());
    if (Info.IsArray)
      throw Unsupported{"reassigning arrays is not supported"};
    RegValue Value = genExpr(*Assign.Value);
    emitStore(Info, nullptr, Value);
    return Value;
  }

  default:
    break;
  }
  throw Unsupported{
      "construct not supported by the ISA code generator at " +
      E.loc().str()};
}

CodegenResult Codegen::run(const Program &Prog) {
  CodegenResult Result;
  if (!Prog.Classes.empty()) {
    Result.Error =
        "the ISA code generator supports class-free programs only";
    return Result;
  }
  try {
    Scopes.emplace_back();
    RegValue Final = genExpr(*Prog.Main);
    // Driver convention: the result lands, endorsed, in r1/f1.
    if (Final.Approx)
      emit(std::string(Final.IsFp ? "fendorse" : "endorse") + " " +
           rn(Final.IsFp, 1) + ", " + reg(Final));
    else
      emitMove(Final.IsFp, rn(Final.IsFp, 1), reg(Final));
    freeReg(Final);
    emit("halt");
    if (PreciseWords > PreciseReserve)
      throw Unsupported{"precise data exceeds the reserved region (" +
                        std::to_string(PreciseWords) + " words)"};
  } catch (const Unsupported &U) {
    Result.Error = U.Message;
    return Result;
  }
  Result.Assembly = ".data " + std::to_string(PreciseReserve) + "\n" +
                    ".adata " + std::to_string(ApproxWords) + "\n" + Body;
  Result.Ok = true;
  return Result;
}

} // namespace

CodegenResult enerj::fenerj::compileToIsa(const Program &Prog) {
  return Codegen().run(Prog);
}
