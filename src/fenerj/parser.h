//===- fenerj/parser.h - FEnerJ parser --------------------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for FEnerJ. The concrete grammar (see
/// ast.h and the DESIGN.md inventory):
///
///   program   := classDecl* expr
///   classDecl := "class" ID ("extends" ID)? "{" member* "}"
///   member    := type ID ";"
///              | type ID "(" (type ID ("," type ID)*)? ")"
///                ("approx" | "precise")? block
///   type      := ("@approx"|"@precise"|"@top"|"@context")?
///                ("int"|"float"|"bool"|ID) ("[" "]")?
///   block     := "{" (("let" type ID "=" expr | expr) ";")* "}"
///
/// plus the usual C-style expression grammar with: field write `e.f := e`,
/// array write `a[i] := e`, `endorse(e)`, `cast<T>(e)`, `new @q C()`,
/// `new @q int[n]`, `a.length`, if/else and while with block bodies.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_PARSER_H
#define ENERJ_FENERJ_PARSER_H

#include "fenerj/ast.h"
#include "fenerj/diag.h"

#include <optional>
#include <string_view>

namespace enerj {
namespace fenerj {

/// Parses a complete program. Returns nullopt (with diagnostics) on any
/// syntax error.
std::optional<Program> parseProgram(std::string_view Source,
                                    DiagnosticEngine &Diags);

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_PARSER_H
