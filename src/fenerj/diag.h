//===- fenerj/diag.h - Source locations and diagnostics ---------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and the diagnostic sink shared by the FEnerJ lexer,
/// parser, and type checker. Each diagnostic carries a stable code so
/// tests can assert *which* rule rejected a program, not just that one did.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_DIAG_H
#define ENERJ_FENERJ_DIAG_H

#include <string>
#include <vector>

namespace enerj {
namespace fenerj {

/// A position in the source text (1-based line and column).
struct SourceLoc {
  int Line = 0;
  int Column = 0;

  bool valid() const { return Line > 0; }
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

/// Stable identifiers for every rule that can reject a program.
enum class DiagCode {
  // Lexing / parsing.
  UnexpectedChar,
  UnterminatedLiteral,
  ExpectedToken,
  DuplicateClass,
  DuplicateMember,
  // Name resolution.
  UnknownClass,
  UnknownField,
  UnknownMethod,
  UnknownVariable,
  CyclicInheritance,
  // The type system (Section 2 / Section 3 rules).
  ImplicitFlow,      ///< approx value flowing into a precise context.
  ApproxCondition,   ///< approximate value steering control flow (2.4).
  ApproxIndex,       ///< approximate array subscript (2.6).
  ApproxArrayLength, ///< array length must be precise (2.6).
  LostAssignment,    ///< writing a field whose adapted type lost context.
  BadEndorse,        ///< endorsing a non-approximate or non-primitive value.
  BadOperand,        ///< operator applied to incompatible types.
  BadArgument,       ///< call argument incompatible with parameter.
  ArityMismatch,     ///< wrong number of call arguments.
  BadCast,           ///< cast not permitted by the qualifier lattice.
  BadReceiver,       ///< member access on a non-class value.
  ContextOutsideClass, ///< @context used outside a class body.
  ReturnMismatch,    ///< method body incompatible with declared return.
  // Runtime (checked semantics).
  RuntimeTrap,
};

/// Human-readable name of a code ("ImplicitFlow" etc.).
const char *diagCodeName(DiagCode Code);

/// One reported problem.
struct Diagnostic {
  DiagCode Code;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics; never throws.
class DiagnosticEngine {
public:
  void report(DiagCode Code, SourceLoc Loc, std::string Message) {
    Diags.push_back({Code, Loc, std::move(Message)});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// True when some diagnostic carries \p Code (for tests).
  bool has(DiagCode Code) const;

  /// All diagnostics joined by newlines.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_DIAG_H
