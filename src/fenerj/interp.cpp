//===- fenerj/interp.cpp - FEnerJ big-step interpreter --------------------===//

#include "fenerj/interp.h"

#include "support/bits.h"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

using namespace enerj;
using namespace enerj::fenerj;

std::string Value::str() const {
  char Buffer[64];
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Int:
    std::snprintf(Buffer, sizeof(Buffer), "%" PRId64, I);
    break;
  case Kind::Float:
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", F);
    break;
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Ref:
    std::snprintf(Buffer, sizeof(Buffer), "ref:%u", Ref);
    break;
  }
  return Buffer;
}

int64_t RandomPerturber::perturbInt(int64_t V) {
  if (!R.nextBernoulli(Probability))
    return V;
  return static_cast<int64_t>(R.next());
}

double RandomPerturber::perturbFloat(double V) {
  if (!R.nextBernoulli(Probability))
    return V;
  // A random finite double drawn from a wide range.
  return (R.nextDouble() * 2.0 - 1.0) * 1e6;
}

bool RandomPerturber::perturbBool(bool V) {
  if (!R.nextBernoulli(Probability))
    return V;
  return R.nextBernoulli(0.5);
}

namespace {

/// Slot kinds for checked stores.
enum SlotKind : uint8_t { SlotPrecise = 0, SlotApprox = 1, SlotDynamic = 2 };

SlotKind resolveSlot(Qual Declared, bool InstanceApprox) {
  switch (Declared) {
  case Qual::Precise:
    return SlotPrecise;
  case Qual::Approx:
    return SlotApprox;
  case Qual::Context:
    return InstanceApprox ? SlotApprox : SlotPrecise;
  case Qual::Top:
  case Qual::Lost:
    return SlotDynamic;
  }
  assert(false && "unknown qualifier");
  return SlotDynamic;
}

struct Binding {
  Value V;
  SlotKind Slot = SlotDynamic;
};

class RuntimeEnv {
public:
  void push() { Scopes.emplace_back(); }
  void pop() { Scopes.pop_back(); }
  void bind(const std::string &Name, Binding B) {
    Scopes.back()[Name] = std::move(B);
  }
  Binding *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

private:
  std::vector<std::unordered_map<std::string, Binding>> Scopes;
};

} // namespace

namespace enerj {
namespace fenerj {

class EvalVisitor {
public:
  EvalVisitor(Interpreter &I) : I(I), Fuel(I.Options.Fuel) {}

  EvalResult runMain() {
    RuntimeEnv Env;
    Env.push();
    Value Result = eval(*I.Prog.Main, Env, /*InstanceApprox=*/false);
    EvalResult Out;
    Out.Trapped = Trapped;
    Out.TrapMessage = TrapMessage;
    Out.Result = Result;
    return Out;
  }

private:
  Value trap(SourceLoc Loc, std::string Message) {
    if (!Trapped) {
      Trapped = true;
      TrapMessage = Loc.valid() ? Loc.str() + ": " + Message
                                : std::move(Message);
    }
    return Value::makeNull();
  }

  /// Applies the perturber to an approximate value (the approximate-
  /// execution rule: any approximate value may become any other value of
  /// its type).
  Value perturb(Value V) {
    if (!V.Approx || !I.Options.Perturb)
      return V;
    switch (V.K) {
    case Value::Kind::Int:
      V.I = I.Options.Perturb->perturbInt(V.I);
      break;
    case Value::Kind::Float:
      V.F = I.Options.Perturb->perturbFloat(V.F);
      break;
    case Value::Kind::Bool:
      V.B = I.Options.Perturb->perturbBool(V.B);
      break;
    case Value::Kind::Null:
    case Value::Kind::Ref:
      break; // References are never approximate.
    }
    return V;
  }

  /// Tags a value on its way into a storage slot, enforcing the checked
  /// semantics: precise slots accept only precise-tagged values.
  Value storeInto(SlotKind Slot, Value V, SourceLoc Loc, const char *What) {
    switch (Slot) {
    case SlotPrecise:
      if (I.Options.Checked && V.Approx)
        return trap(Loc, std::string("checked-semantics violation: "
                                     "approximate value reached precise ") +
                             What);
      V.Approx = false;
      return V;
    case SlotApprox:
      if (V.K != Value::Kind::Null && V.K != Value::Kind::Ref)
        V.Approx = true; // Subsumption: precise data becomes approximate.
      return V;
    case SlotDynamic:
      return V;
    }
    assert(false && "unknown slot kind");
    return V;
  }

  Value eval(const Expr &E, RuntimeEnv &Env, bool InstanceApprox);

  Interpreter &I;
  uint64_t Fuel;
  uint32_t CallDepth = 0;
  bool Trapped = false;
  std::string TrapMessage;

  friend class ::enerj::fenerj::Interpreter;
};

Value EvalVisitor::eval(const Expr &E, RuntimeEnv &Env, bool InstanceApprox) {
  if (Trapped)
    return Value::makeNull();
  if (Fuel == 0)
    return trap(E.loc(), "evaluation fuel exhausted (infinite loop?)");
  --Fuel;

  switch (E.kind()) {
  case ExprKind::NullLit:
    return Value::makeNull();
  case ExprKind::IntLit:
    return Value::makeInt(static_cast<const IntLitExpr &>(E).Value, false);
  case ExprKind::FloatLit:
    return Value::makeFloat(static_cast<const FloatLitExpr &>(E).Value,
                            false);
  case ExprKind::BoolLit:
    return Value::makeBool(static_cast<const BoolLitExpr &>(E).Value, false);

  case ExprKind::VarRef: {
    const auto &Var = static_cast<const VarRefExpr &>(E);
    Binding *B = Env.lookup(Var.Name);
    if (!B)
      return trap(E.loc(), "unbound variable '" + Var.Name + "'");
    // Reading an approximate local goes through approximate storage.
    return perturb(B->V);
  }

  case ExprKind::New: {
    const auto &New = static_cast<const NewExpr &>(E);
    HeapCell Cell;
    Cell.ClassName = New.ClassName;
    Cell.InstanceApprox = New.Q == Qual::Approx ||
                          (New.Q == Qual::Context && InstanceApprox);
    for (const FieldDeclAst *Field : I.Table.allFields(New.ClassName)) {
      SlotKind Slot =
          resolveSlot(Field->DeclaredType.Q, Cell.InstanceApprox);
      Cell.FieldSlotKind[Field->Name] = Slot;
      Value Default;
      switch (Field->DeclaredType.Base) {
      case BaseKind::Int:
        Default = Value::makeInt(0, Slot == SlotApprox);
        break;
      case BaseKind::Float:
        Default = Value::makeFloat(0.0, Slot == SlotApprox);
        break;
      case BaseKind::Bool:
        Default = Value::makeBool(false, Slot == SlotApprox);
        break;
      case BaseKind::Class:
      case BaseKind::Array:
      case BaseKind::Null:
        Default = Value::makeNull();
        break;
      }
      Cell.Fields[Field->Name] = Default;
    }
    I.Heap.push_back(std::move(Cell));
    return Value::makeRef(static_cast<uint32_t>(I.Heap.size() - 1));
  }

  case ExprKind::NewArray: {
    const auto &New = static_cast<const NewArrayExpr &>(E);
    Value Len = eval(*New.Length, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    if (Len.K != Value::Kind::Int)
      return trap(E.loc(), "array length is not an int");
    if (I.Options.Checked && Len.Approx)
      return trap(E.loc(), "checked-semantics violation: approximate array "
                           "length");
    if (Len.I < 0)
      return trap(E.loc(), "negative array length");
    HeapCell Cell;
    Cell.IsArray = true;
    Cell.Elem = New.Elem;
    Cell.ElemApprox = New.ElemQual == Qual::Approx ||
                      (New.ElemQual == Qual::Context && InstanceApprox);
    Value Default;
    switch (New.Elem) {
    case BaseKind::Int:
      Default = Value::makeInt(0, Cell.ElemApprox);
      break;
    case BaseKind::Float:
      Default = Value::makeFloat(0.0, Cell.ElemApprox);
      break;
    default:
      Default = Value::makeBool(false, Cell.ElemApprox);
      break;
    }
    Cell.Elements.assign(static_cast<size_t>(Len.I), Default);
    I.Heap.push_back(std::move(Cell));
    return Value::makeRef(static_cast<uint32_t>(I.Heap.size() - 1));
  }

  case ExprKind::FieldRead: {
    const auto &Read = static_cast<const FieldReadExpr &>(E);
    Value Recv = eval(*Read.Receiver, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    if (Recv.K != Value::Kind::Ref)
      return trap(E.loc(), "field read on " + Recv.str());
    HeapCell &Cell = I.Heap[Recv.Ref];
    auto It = Cell.Fields.find(Read.Field);
    if (It == Cell.Fields.end())
      return trap(E.loc(), "object has no field '" + Read.Field + "'");
    return perturb(It->second);
  }

  case ExprKind::FieldWrite: {
    const auto &Write = static_cast<const FieldWriteExpr &>(E);
    Value Recv = eval(*Write.Receiver, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    if (Recv.K != Value::Kind::Ref)
      return trap(E.loc(), "field write on " + Recv.str());
    Value V = eval(*Write.Value, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    HeapCell &Cell = I.Heap[Recv.Ref];
    auto It = Cell.Fields.find(Write.Field);
    if (It == Cell.Fields.end())
      return trap(E.loc(), "object has no field '" + Write.Field + "'");
    SlotKind Slot = static_cast<SlotKind>(Cell.FieldSlotKind[Write.Field]);
    Value Stored = storeInto(Slot, V, E.loc(), "field");
    if (Trapped)
      return Value::makeNull();
    It->second = Stored;
    return V;
  }

  case ExprKind::ArrayRead: {
    const auto &Read = static_cast<const ArrayReadExpr &>(E);
    Value Arr = eval(*Read.Array, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    Value Idx = eval(*Read.Index, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    if (Arr.K != Value::Kind::Ref || !I.Heap[Arr.Ref].IsArray)
      return trap(E.loc(), "subscript on " + Arr.str());
    if (I.Options.Checked && Idx.Approx)
      return trap(E.loc(),
                  "checked-semantics violation: approximate array index");
    HeapCell &Cell = I.Heap[Arr.Ref];
    if (Idx.I < 0 || static_cast<size_t>(Idx.I) >= Cell.Elements.size())
      return trap(E.loc(), "array index out of bounds");
    return perturb(Cell.Elements[static_cast<size_t>(Idx.I)]);
  }

  case ExprKind::ArrayWrite: {
    const auto &Write = static_cast<const ArrayWriteExpr &>(E);
    Value Arr = eval(*Write.Array, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    Value Idx = eval(*Write.Index, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    Value V = eval(*Write.Value, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    if (Arr.K != Value::Kind::Ref || !I.Heap[Arr.Ref].IsArray)
      return trap(E.loc(), "subscript on " + Arr.str());
    if (I.Options.Checked && Idx.Approx)
      return trap(E.loc(),
                  "checked-semantics violation: approximate array index");
    HeapCell &Cell = I.Heap[Arr.Ref];
    if (Idx.I < 0 || static_cast<size_t>(Idx.I) >= Cell.Elements.size())
      return trap(E.loc(), "array index out of bounds");
    Value Stored = storeInto(Cell.ElemApprox ? SlotApprox : SlotPrecise, V,
                             E.loc(), "array element");
    if (Trapped)
      return Value::makeNull();
    Cell.Elements[static_cast<size_t>(Idx.I)] = Stored;
    return V;
  }

  case ExprKind::ArrayLength: {
    const auto &Len = static_cast<const ArrayLengthExpr &>(E);
    Value Arr = eval(*Len.Array, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    if (Arr.K != Value::Kind::Ref || !I.Heap[Arr.Ref].IsArray)
      return trap(E.loc(), ".length on " + Arr.str());
    return Value::makeInt(
        static_cast<int64_t>(I.Heap[Arr.Ref].Elements.size()), false);
  }

  case ExprKind::MethodCall: {
    const auto &Call = static_cast<const MethodCallExpr &>(E);
    Value Recv = eval(*Call.Receiver, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    if (Recv.K != Value::Kind::Ref || I.Heap[Recv.Ref].IsArray)
      return trap(E.loc(), "method call on " + Recv.str());
    // Dispatch on the instance's dynamic qualifier (Section 2.5.2): an
    // approximate instance prefers the approx variant.
    bool RecvApprox = I.Heap[Recv.Ref].InstanceApprox;
    const MethodDecl *Method = I.Table.lookupMethod(
        I.Heap[Recv.Ref].ClassName, Call.Method,
        RecvApprox ? Qual::Approx : Qual::Precise);
    if (!Method)
      return trap(E.loc(), "no method '" + Call.Method + "' on class '" +
                               I.Heap[Recv.Ref].ClassName + "'");
    if (Method->Params.size() != Call.Args.size())
      return trap(E.loc(), "wrong argument count for '" + Call.Method + "'");
    // The evaluator recurses on the host stack; bound it before the
    // fuel counter would catch a runaway recursion.
    if (CallDepth >= I.Options.MaxCallDepth)
      return trap(E.loc(), "method-call depth limit exceeded");
    RuntimeEnv Callee;
    Callee.push();
    Callee.bind("this", {Recv, SlotPrecise});
    for (size_t Idx = 0; Idx != Call.Args.size(); ++Idx) {
      Value Arg = eval(*Call.Args[Idx], Env, InstanceApprox);
      if (Trapped)
        return Value::makeNull();
      SlotKind Slot =
          resolveSlot(Method->Params[Idx].DeclaredType.Q, RecvApprox);
      Value Stored = storeInto(Slot, Arg, Call.Args[Idx]->loc(), "parameter");
      if (Trapped)
        return Value::makeNull();
      Callee.bind(Method->Params[Idx].Name, {Stored, Slot});
    }
    ++CallDepth;
    Value Returned = eval(*Method->Body, Callee, RecvApprox);
    --CallDepth;
    return Returned;
  }

  case ExprKind::Cast: {
    const auto &Cast = static_cast<const CastExpr &>(E);
    Value V = eval(*Cast.Value, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    const Type &To = Cast.Target;
    if (To.isClass()) {
      if (V.K == Value::Kind::Null)
        return V;
      if (V.K != Value::Kind::Ref || I.Heap[V.Ref].IsArray ||
          !I.Table.isSubclassOf(I.Heap[V.Ref].ClassName, To.ClassName))
        return trap(E.loc(), "bad class cast");
      return V;
    }
    if (To.isPrimitive()) {
      // Numeric conversion if needed, then re-tag per the target qualifier
      // (the checker guarantees the qualifier transition is legal).
      Value Out = V;
      if (To.Base == BaseKind::Int && V.K == Value::Kind::Float)
        Out = Value::makeInt(static_cast<int64_t>(V.F), V.Approx);
      else if (To.Base == BaseKind::Float && V.K == Value::Kind::Int)
        Out = Value::makeFloat(static_cast<double>(V.I), V.Approx);
      if (To.Q == Qual::Approx)
        Out.Approx = true;
      return Out;
    }
    return V;
  }

  case ExprKind::Endorse: {
    const auto &End = static_cast<const EndorseExpr &>(E);
    Value V = eval(*End.Value, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    V.Approx = false; // The programmer-sanctioned gate (Section 2.2).
    return V;
  }

  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    Value L = eval(*Bin.Lhs, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    // Both operands always evaluate: && and || do not short-circuit, so
    // an approximate operand can never decide whether effects happen.
    Value R = eval(*Bin.Rhs, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    // Bidirectional typing (Section 2.3): ops in an approximate context
    // run on the approximate unit even with precise operands.
    bool Approx = L.Approx || R.Approx ||
                  (I.Options.ContextApproxOps &&
                   I.Options.ContextApproxOps->count(&E));

    // Reference equality.
    if ((Bin.Op == BinaryOp::Eq || Bin.Op == BinaryOp::Ne) &&
        (L.K == Value::Kind::Ref || L.K == Value::Kind::Null) &&
        (R.K == Value::Kind::Ref || R.K == Value::Kind::Null)) {
      bool Same = L.K == R.K && (L.K != Value::Kind::Ref || L.Ref == R.Ref);
      return Value::makeBool(Bin.Op == BinaryOp::Eq ? Same : !Same, false);
    }

    // Operation accounting, by operand unit and selected precision.
    if (L.K == Value::Kind::Float)
      (Approx ? I.Ops.ApproxFp : I.Ops.PreciseFp) += 1;
    else
      (Approx ? I.Ops.ApproxInt : I.Ops.PreciseInt) += 1;

    switch (Bin.Op) {
    case BinaryOp::And:
      return perturb(Value::makeBool(L.B && R.B, Approx));
    case BinaryOp::Or:
      return perturb(Value::makeBool(L.B || R.B, Approx));
    default:
      break;
    }

    if (L.K == Value::Kind::Int && R.K == Value::Kind::Int) {
      // Integer arithmetic wraps (Java-style two's complement): perturbed
      // approximate operands can be arbitrary bit patterns.
      int64_t A = L.I, B = R.I;
      switch (Bin.Op) {
      case BinaryOp::Add:
        return perturb(Value::makeInt(wrapAdd(A, B), Approx));
      case BinaryOp::Sub:
        return perturb(Value::makeInt(wrapSub(A, B), Approx));
      case BinaryOp::Mul:
        return perturb(Value::makeInt(wrapMul(A, B), Approx));
      case BinaryOp::Div:
        if (B == 0)
          // Approximate division never traps (Section 5.2); precise
          // division by zero is a genuine error.
          return Approx ? perturb(Value::makeInt(0, true))
                        : trap(E.loc(), "division by zero");
        return perturb(Value::makeInt(wrapDiv(A, B), Approx));
      case BinaryOp::Mod:
        if (B == 0)
          return Approx ? perturb(Value::makeInt(0, true))
                        : trap(E.loc(), "modulo by zero");
        return perturb(Value::makeInt(wrapRem(A, B), Approx));
      case BinaryOp::Eq:
        return perturb(Value::makeBool(A == B, Approx));
      case BinaryOp::Ne:
        return perturb(Value::makeBool(A != B, Approx));
      case BinaryOp::Lt:
        return perturb(Value::makeBool(A < B, Approx));
      case BinaryOp::Le:
        return perturb(Value::makeBool(A <= B, Approx));
      case BinaryOp::Gt:
        return perturb(Value::makeBool(A > B, Approx));
      case BinaryOp::Ge:
        return perturb(Value::makeBool(A >= B, Approx));
      default:
        break;
      }
    }
    if (L.K == Value::Kind::Float && R.K == Value::Kind::Float) {
      double A = L.F, B = R.F;
      switch (Bin.Op) {
      case BinaryOp::Add:
        return perturb(Value::makeFloat(A + B, Approx));
      case BinaryOp::Sub:
        return perturb(Value::makeFloat(A - B, Approx));
      case BinaryOp::Mul:
        return perturb(Value::makeFloat(A * B, Approx));
      case BinaryOp::Div:
        if (B == 0.0 && Approx)
          return perturb(Value::makeFloat(
              std::numeric_limits<double>::quiet_NaN(), true));
        return perturb(Value::makeFloat(A / B, Approx));
      case BinaryOp::Eq:
        return perturb(Value::makeBool(A == B, Approx));
      case BinaryOp::Ne:
        return perturb(Value::makeBool(A != B, Approx));
      case BinaryOp::Lt:
        return perturb(Value::makeBool(A < B, Approx));
      case BinaryOp::Le:
        return perturb(Value::makeBool(A <= B, Approx));
      case BinaryOp::Gt:
        return perturb(Value::makeBool(A > B, Approx));
      case BinaryOp::Ge:
        return perturb(Value::makeBool(A >= B, Approx));
      default:
        break;
      }
    }
    return trap(E.loc(), "bad operands " + L.str() + ", " + R.str());
  }

  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(E);
    Value V = eval(*Un.Value, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    bool Approx = V.Approx || (I.Options.ContextApproxOps &&
                               I.Options.ContextApproxOps->count(&E));
    if (V.K == Value::Kind::Float)
      (Approx ? I.Ops.ApproxFp : I.Ops.PreciseFp) += 1;
    else
      (Approx ? I.Ops.ApproxInt : I.Ops.PreciseInt) += 1;
    if (Un.Op == UnaryOp::Neg) {
      if (V.K == Value::Kind::Int)
        return perturb(Value::makeInt(wrapNeg(V.I), Approx));
      if (V.K == Value::Kind::Float)
        return perturb(Value::makeFloat(-V.F, Approx));
      return trap(E.loc(), "bad operand for '-': " + V.str());
    }
    if (V.K != Value::Kind::Bool)
      return trap(E.loc(), "bad operand for '!': " + V.str());
    return perturb(Value::makeBool(!V.B, Approx));
  }

  case ExprKind::If: {
    const auto &If = static_cast<const IfExpr &>(E);
    Value Cond = eval(*If.Cond, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    if (Cond.K != Value::Kind::Bool)
      return trap(E.loc(), "condition is not a boolean");
    if (I.Options.Checked && Cond.Approx)
      return trap(E.loc(),
                  "checked-semantics violation: approximate condition");
    return eval(Cond.B ? *If.Then : *If.Else, Env, InstanceApprox);
  }

  case ExprKind::While: {
    const auto &While = static_cast<const WhileExpr &>(E);
    for (;;) {
      Value Cond = eval(*While.Cond, Env, InstanceApprox);
      if (Trapped)
        return Value::makeNull();
      if (Cond.K != Value::Kind::Bool)
        return trap(E.loc(), "loop condition is not a boolean");
      if (I.Options.Checked && Cond.Approx)
        return trap(E.loc(),
                    "checked-semantics violation: approximate condition");
      if (!Cond.B)
        return Value::makeInt(0, false);
      eval(*While.Body, Env, InstanceApprox);
      if (Trapped)
        return Value::makeNull();
    }
  }

  case ExprKind::Block: {
    const auto &Block = static_cast<const BlockExpr &>(E);
    Env.push();
    Value Last = Value::makeInt(0, false);
    for (const BlockExpr::Item &Item : Block.Items) {
      Value V = eval(*Item.Value, Env, InstanceApprox);
      if (Trapped) {
        Env.pop();
        return Value::makeNull();
      }
      if (Item.IsLet) {
        SlotKind Slot = resolveSlot(Item.LetType.Q, InstanceApprox);
        // Reference types keep dynamic slots (their tags are precise).
        if (!Item.LetType.isPrimitive())
          Slot = SlotDynamic;
        Value Stored = storeInto(Slot, V, Item.Value->loc(), "local");
        if (Trapped) {
          Env.pop();
          return Value::makeNull();
        }
        Env.bind(Item.LetName, {Stored, Slot});
        Last = Stored;
      } else {
        Last = V;
      }
    }
    Env.pop();
    return Last;
  }

  case ExprKind::AssignLocal: {
    const auto &Assign = static_cast<const AssignLocalExpr &>(E);
    Value V = eval(*Assign.Value, Env, InstanceApprox);
    if (Trapped)
      return Value::makeNull();
    Binding *B = Env.lookup(Assign.Name);
    if (!B)
      return trap(E.loc(), "unbound variable '" + Assign.Name + "'");
    Value Stored = storeInto(B->Slot, V, E.loc(), "local");
    if (Trapped)
      return Value::makeNull();
    B->V = Stored;
    return Stored;
  }
  }
  assert(false && "unknown expression kind");
  return Value::makeNull();
}

} // namespace fenerj
} // namespace enerj

EvalResult Interpreter::run() {
  Heap.clear();
  Ops = OperationStats();
  if (!Prog.Main) {
    EvalResult Out;
    Out.Trapped = true;
    Out.TrapMessage = "program has no main expression";
    return Out;
  }
  EvalVisitor Visitor(*this);
  return Visitor.runMain();
}

std::string Interpreter::preciseProjection(const EvalResult &Result) const {
  std::string Out;
  if (Result.Trapped) {
    Out += "trap:";
    Out += Result.TrapMessage;
    Out += '\n';
    return Out;
  }
  if (!Result.Result.Approx) {
    Out += "result=";
    Out += Result.Result.str();
    Out += '\n';
  }
  for (size_t Index = 0; Index != Heap.size(); ++Index) {
    const HeapCell &Cell = Heap[Index];
    Out += '#';
    Out += std::to_string(Index);
    Out += ' ';
    if (Cell.IsArray) {
      Out += "array len=";
      Out += std::to_string(Cell.Elements.size());
      if (!Cell.ElemApprox)
        for (const Value &V : Cell.Elements) {
          Out += ' ';
          Out += V.str();
        }
      Out += '\n';
      continue;
    }
    Out += Cell.ClassName;
    Out += Cell.InstanceApprox ? "(approx)" : "(precise)";
    // Deterministic order: walk declared fields, superclass-first.
    for (const FieldDeclAst *Field : Table.allFields(Cell.ClassName)) {
      auto Slot = Cell.FieldSlotKind.find(Field->Name);
      if (Slot == Cell.FieldSlotKind.end() || Slot->second != SlotPrecise)
        continue;
      auto V = Cell.Fields.find(Field->Name);
      Out += ' ';
      Out += Field->Name;
      Out += '=';
      Out += V == Cell.Fields.end() ? "?" : V->second.str();
    }
    Out += '\n';
  }
  return Out;
}
