//===- fenerj/generator.h - Random well-typed program generator -*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generator of random *well-typed*, *endorse-free*, *terminating*
/// FEnerJ programs, used by the property tests:
///
///  * type soundness — every generated program must pass the checker, and
///    evaluating it under the checked semantics must never trap;
///  * non-interference — evaluating it under two different perturbers must
///    produce identical precise projections.
///
/// Generated programs mix precise and approximate computation through
/// fields (including @context fields on both precise and approximate
/// instances), method calls (including approx-receiver overloads), arrays,
/// bounded while loops, and conditionals — but never endorse, so the
/// theorem of Section 3.3 applies in full.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_GENERATOR_H
#define ENERJ_FENERJ_GENERATOR_H

#include <cstdint>
#include <string>

namespace enerj {
namespace fenerj {

struct GeneratorOptions {
  uint64_t Seed = 1;
  int NumClasses = 2;      ///< Classes to generate (>= 1).
  int FieldsPerClass = 3;  ///< Upper bound on fields per class.
  int MethodsPerClass = 2; ///< Upper bound on methods per class.
  int MainStatements = 8;  ///< Statements in the main block.
  int MaxDepth = 3;        ///< Expression recursion depth.
  /// Allow endorse() in generated programs (including endorsed
  /// approximate conditions). Endorsement pierces the isolation, so the
  /// non-interference property no longer applies — endorse-ful programs
  /// are used for the type-soundness corpus only.
  bool AllowEndorse = false;
  /// Generate bool-typed locals and fields. The ISA code generator's
  /// differential corpus turns this off (booleans exist only in
  /// conditions there).
  bool AllowBools = true;
};

/// Produces the source text of a random program.
std::string generateProgram(const GeneratorOptions &Options);

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_GENERATOR_H
