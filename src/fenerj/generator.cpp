//===- fenerj/generator.cpp - Random well-typed program generator ---------===//

#include "fenerj/generator.h"

#include "support/rng.h"

#include <cassert>
#include <string>
#include <vector>

using namespace enerj;
using namespace enerj::fenerj;

namespace {

enum class GBase { Int, Float, Bool };
enum class GQual { Precise, Approx, Context };

const char *baseName(GBase B) {
  switch (B) {
  case GBase::Int:
    return "int";
  case GBase::Float:
    return "float";
  case GBase::Bool:
    return "bool";
  }
  return "?";
}

const char *qualAnnotation(GQual Q) {
  switch (Q) {
  case GQual::Precise:
    return "@precise";
  case GQual::Approx:
    return "@approx";
  case GQual::Context:
    return "@context";
  }
  return "?";
}

struct GField {
  GQual Q;
  GBase B;
  std::string Name;
};

struct GMethod {
  GQual ParamQ;
  GBase ParamB;
  GQual RetQ; // Precise or Approx only.
  GBase RetB;
  std::string Name;
  bool HasApproxVariant;
};

struct GClass {
  std::string Name;
  std::vector<GField> Fields;
  std::vector<GMethod> Methods;
};

struct GLocal {
  std::string Name;
  GQual Q; // Precise or Approx.
  GBase B;
};

struct GObject {
  std::string Name;
  int ClassIndex;
  bool ApproxInstance;
};

/// Generates expressions of a requested (qualifier, base) pair, well typed
/// by construction. Inside method bodies, Context-qualified slots are
/// usable wherever the target is Approx *or* Context; precise values flow
/// anywhere (primitive subtyping).
class ProgramGen {
public:
  explicit ProgramGen(const GeneratorOptions &Options)
      : Options(Options), R(Options.Seed) {}

  std::string run();

private:
  std::string freshName(const char *Prefix) {
    return std::string(Prefix) + std::to_string(Counter++);
  }

  GBase randomBase() {
    switch (R.nextBelow(Options.AllowBools ? 3 : 2)) {
    case 0:
      return GBase::Int;
    case 1:
      return GBase::Float;
    default:
      return GBase::Bool;
    }
  }

  GQual randomFieldQual() {
    switch (R.nextBelow(3)) {
    case 0:
      return GQual::Precise;
    case 1:
      return GQual::Approx;
    default:
      return GQual::Context;
    }
  }

  std::string literal(GBase B) {
    switch (B) {
    case GBase::Int:
      return std::to_string(R.nextInRange(-20, 20));
    case GBase::Float: {
      char Buffer[32];
      std::snprintf(Buffer, sizeof(Buffer), "%d.%02d",
                    static_cast<int>(R.nextInRange(-9, 9)),
                    static_cast<int>(R.nextBelow(100)));
      return Buffer;
    }
    case GBase::Bool:
      return R.nextBernoulli(0.5) ? "true" : "false";
    }
    return "0";
  }

  /// Whether a value of (Q, B) may flow into a target of (TQ, B).
  /// Precise flows anywhere; approx flows to approx; context flows to
  /// context (and, inside a method body, to approx is NOT allowed since
  /// the instance may be precise — but context-to-approx *is* legal
  /// by subsumption? No: context is not <= approx in the lattice).
  static bool flowsInto(GQual Q, GQual Target) {
    if (Q == GQual::Precise)
      return true;
    return Q == Target;
  }

  /// An expression of exactly-compatible type for (Q, B). \p InMethod
  /// enables 'this' field access and the method parameter.
  std::string expr(GQual Q, GBase B, int Depth, const GClass *InMethod,
                   const GMethod *Param);

  /// A terminal (depth-0) expression.
  std::string terminal(GQual Q, GBase B, const GClass *InMethod,
                       const GMethod *Param);

  std::string binaryOf(GQual Q, GBase B, int Depth, const GClass *InMethod,
                       const GMethod *Param);

  const GeneratorOptions Options;
  Rng R;
  int Counter = 0;
  std::vector<GClass> Classes;
  std::vector<GLocal> MainLocals;   ///< Locals in the main block.
  std::vector<GObject> MainObjects; ///< Objects in the main block.
};

std::string ProgramGen::terminal(GQual Q, GBase B, const GClass *InMethod,
                                 const GMethod *Param) {
  // Collect candidate atoms.
  std::vector<std::string> Atoms;
  Atoms.push_back(literal(B)); // Precise literal: flows anywhere.
  if (InMethod) {
    if (Param && Param->ParamB == B && flowsInto(Param->ParamQ, Q))
      Atoms.push_back("p");
    for (const GField &F : InMethod->Fields)
      if (F.B == B && flowsInto(F.Q, Q))
        Atoms.push_back("this." + F.Name);
  } else {
    for (const GLocal &L : MainLocals)
      if (L.B == B && flowsInto(L.Q, Q))
        Atoms.push_back(L.Name);
    // Field reads on main-block objects: the adapted qualifier of a
    // @context field is the instance's qualifier.
    for (const GObject &Obj : MainObjects) {
      for (const GField &F : Classes[Obj.ClassIndex].Fields) {
        if (F.B != B)
          continue;
        GQual Adapted = F.Q == GQual::Context
                            ? (Obj.ApproxInstance ? GQual::Approx
                                                  : GQual::Precise)
                            : F.Q;
        if (flowsInto(Adapted, Q))
          Atoms.push_back(Obj.Name + "." + F.Name);
      }
    }
  }
  return Atoms[R.nextBelow(Atoms.size())];
}

std::string ProgramGen::binaryOf(GQual Q, GBase B, int Depth,
                                 const GClass *InMethod,
                                 const GMethod *Param) {
  // Operand qualifiers must combine to at most Q: target precise needs
  // precise operands; target approx/context may mix in precise ones.
  auto OperandQual = [&]() {
    if (Q == GQual::Precise)
      return GQual::Precise;
    return R.nextBernoulli(0.5) ? GQual::Precise : Q;
  };
  // Ensure at least one operand carries Q so the result is representative
  // (precise operands alone would still be a legal subtype).
  GQual LQ = OperandQual(), RQ = OperandQual();
  if (B == GBase::Bool) {
    // Half the boolean expressions are comparisons over numeric operands
    // (the comparison result carries the combined operand qualifier, so
    // operands follow the same rule as the connectives). Approximate
    // comparisons stay on integers: approximate *float* comparisons as
    // values are outside the ISA code generator's subset.
    if (R.nextBernoulli(0.5)) {
      GBase Operand = Q != GQual::Precise || R.nextBernoulli(0.5)
                          ? GBase::Int
                          : GBase::Float;
      const char *Cmps[] = {"<", "<=", ">", ">=", "==", "!="};
      return "(" + expr(LQ, Operand, Depth - 1, InMethod, Param) + " " +
             Cmps[R.nextBelow(6)] + " " +
             expr(RQ, Operand, Depth - 1, InMethod, Param) + ")";
    }
    const char *Ops[] = {"&&", "||"};
    return "(" + expr(LQ, GBase::Bool, Depth - 1, InMethod, Param) + " " +
           Ops[R.nextBelow(2)] + " " +
           expr(RQ, GBase::Bool, Depth - 1, InMethod, Param) + ")";
  }
  const char *Ops[] = {"+", "-", "*"};
  return "(" + expr(LQ, B, Depth - 1, InMethod, Param) + " " +
         Ops[R.nextBelow(3)] + " " +
         expr(RQ, B, Depth - 1, InMethod, Param) + ")";
}

std::string ProgramGen::expr(GQual Q, GBase B, int Depth,
                             const GClass *InMethod, const GMethod *Param) {
  if (Depth <= 0)
    return terminal(Q, B, InMethod, Param);
  // Endorsement: the only approximate-to-precise gate. Only generated
  // when the options allow it (it voids non-interference).
  if (Options.AllowEndorse && Q == GQual::Precise && R.nextBernoulli(0.2))
    return "endorse(" + expr(GQual::Approx, B, Depth - 1, InMethod, Param) +
           ")";
  switch (R.nextBelow(InMethod ? 4 : 5)) {
  case 0:
    return terminal(Q, B, InMethod, Param);
  case 1:
  case 2:
    return binaryOf(Q, B, Depth, InMethod, Param);
  case 3: {
    // Conditional: the condition must be precise — either natively or
    // through an explicit endorsement of an approximate comparison.
    std::string Cond;
    if (Options.AllowEndorse && R.nextBernoulli(0.3))
      Cond = "endorse(" +
             expr(GQual::Approx, GBase::Bool, Depth - 1, InMethod, Param) +
             ")";
    else
      Cond = expr(GQual::Precise, GBase::Bool, Depth - 1, InMethod, Param);
    std::string Then = expr(Q, B, Depth - 1, InMethod, Param);
    std::string Else = expr(Q, B, Depth - 1, InMethod, Param);
    return "if (" + Cond + ") { " + Then + " } else { " + Else + " }";
  }
  default: {
    // Method call on a main-block object whose (adapted) return type
    // flows into the target.
    std::vector<std::string> Calls;
    for (const GObject &Obj : MainObjects) {
      for (const GMethod &M : Classes[Obj.ClassIndex].Methods) {
        if (M.RetB != B || !flowsInto(M.RetQ, Q))
          continue;
        GQual ArgTarget = M.ParamQ == GQual::Context
                              ? (Obj.ApproxInstance ? GQual::Approx
                                                    : GQual::Precise)
                              : M.ParamQ;
        Calls.push_back(Obj.Name + "." + M.Name + "(" +
                        expr(ArgTarget, M.ParamB, Depth - 1, nullptr,
                             nullptr) +
                        ")");
      }
    }
    if (Calls.empty())
      return binaryOf(Q, B, Depth, InMethod, Param);
    return Calls[R.nextBelow(Calls.size())];
  }
  }
}

std::string ProgramGen::run() {
  std::string Out;

  // --- Classes. ---
  for (int C = 0; C != Options.NumClasses; ++C) {
    GClass Cls;
    Cls.Name = "C" + std::to_string(C);
    int NumFields = 1 + static_cast<int>(R.nextBelow(Options.FieldsPerClass));
    for (int F = 0; F != NumFields; ++F)
      Cls.Fields.push_back(
          {randomFieldQual(), randomBase(), "f" + std::to_string(F)});
    int NumMethods =
        1 + static_cast<int>(R.nextBelow(Options.MethodsPerClass));
    for (int M = 0; M != NumMethods; ++M) {
      GMethod Method;
      Method.Name = "m" + std::to_string(M);
      Method.ParamQ = randomFieldQual();
      Method.ParamB = randomBase();
      Method.RetQ = R.nextBernoulli(0.5) ? GQual::Precise : GQual::Approx;
      Method.RetB = randomBase();
      Method.HasApproxVariant = R.nextBernoulli(0.3);
      Cls.Methods.push_back(Method);
    }
    Classes.push_back(std::move(Cls));
  }

  for (const GClass &Cls : Classes) {
    Out += "class " + Cls.Name + " {\n";
    for (const GField &F : Cls.Fields)
      Out += std::string("  ") + qualAnnotation(F.Q) + " " + baseName(F.B) +
             " " + F.Name + ";\n";
    for (const GMethod &M : Cls.Methods) {
      auto EmitBody = [&](bool ApproxVariant) {
        // The body: write one compatible field, then return a value of
        // the declared return type. Field writes must respect the
        // adapted slot type; inside a body the receiver is 'context', so
        // @context fields accept context-compatible values only. To stay
        // well typed for *any* instantiation we write precise data into
        // context fields and matching data otherwise.
        Out += " {\n";
        for (const GField &F : Cls.Fields) {
          if (!R.nextBernoulli(0.5))
            continue;
          GQual ValueQ = F.Q == GQual::Approx && R.nextBernoulli(0.5)
                             ? GQual::Approx
                             : GQual::Precise;
          Out += "    this." + F.Name + " := " +
                 expr(ValueQ, F.B, 1, &Cls, &M) + ";\n";
        }
        // A variant marker so the two overloads differ observably in
        // approximate state only.
        (void)ApproxVariant;
        GQual BodyQ = M.RetQ;
        Out += "    " + expr(BodyQ, M.RetB, Options.MaxDepth, &Cls, &M) +
               ";\n  }\n";
      };
      std::string Sig = std::string("  ") +
                        (M.RetQ == GQual::Approx ? "@approx " : "") +
                        baseName(M.RetB) + " " + M.Name + "(" +
                        qualAnnotation(M.ParamQ) + " " + baseName(M.ParamB) +
                        " p)";
      Out += Sig;
      EmitBody(false);
      if (M.HasApproxVariant) {
        Out += Sig + " approx";
        EmitBody(true);
      }
    }
    Out += "}\n\n";
  }

  // --- Main block. ---
  Out += "{\n";
  // Create a few objects, both precise and approximate instances.
  int NumObjects =
      Classes.empty() ? 0 : 2 + static_cast<int>(R.nextBelow(3));
  for (int Obj = 0; Obj != NumObjects; ++Obj) {
    GObject Object;
    Object.Name = freshName("o");
    Object.ClassIndex = static_cast<int>(R.nextBelow(Classes.size()));
    Object.ApproxInstance = R.nextBernoulli(0.5);
    Out += "  let " +
           std::string(Object.ApproxInstance ? "@approx " : "@precise ") +
           Classes[Object.ClassIndex].Name + " " + Object.Name + " = new " +
           (Object.ApproxInstance ? "@approx " : "@precise ") +
           Classes[Object.ClassIndex].Name + "();\n";
    MainObjects.push_back(Object);
  }
  // A few locals of both precisions.
  for (int L = 0; L != 3; ++L) {
    GLocal Local;
    Local.Name = freshName("v");
    Local.B = randomBase();
    Local.Q = R.nextBernoulli(0.5) ? GQual::Precise : GQual::Approx;
    Out += "  let " +
           std::string(Local.Q == GQual::Approx ? "@approx " : "") +
           baseName(Local.B) + " " + Local.Name + " = " +
           expr(Local.Q, Local.B, 2, nullptr, nullptr) + ";\n";
    MainLocals.push_back(Local);
  }
  // Statements: field writes, local assignments, a bounded loop.
  for (int S = 0; S != Options.MainStatements; ++S) {
    switch (R.nextBelow(MainObjects.empty() ? 2 : 3) +
            (MainObjects.empty() ? 1 : 0)) {
    case 0: {
      const GObject &Obj = MainObjects[R.nextBelow(MainObjects.size())];
      const GClass &Cls = Classes[Obj.ClassIndex];
      const GField &F = Cls.Fields[R.nextBelow(Cls.Fields.size())];
      GQual Adapted = F.Q == GQual::Context
                          ? (Obj.ApproxInstance ? GQual::Approx
                                                : GQual::Precise)
                          : F.Q;
      GQual ValueQ =
          Adapted == GQual::Precise || R.nextBernoulli(0.4) ? GQual::Precise
                                                            : Adapted;
      Out += "  " + Obj.Name + "." + F.Name + " := " +
             expr(ValueQ, F.B, Options.MaxDepth, nullptr, nullptr) + ";\n";
      break;
    }
    case 1: {
      const GLocal &L = MainLocals[R.nextBelow(MainLocals.size())];
      GQual ValueQ = L.Q == GQual::Precise || R.nextBernoulli(0.4)
                         ? GQual::Precise
                         : L.Q;
      Out += "  " + L.Name + " = " +
             expr(ValueQ, L.B, Options.MaxDepth, nullptr, nullptr) + ";\n";
      break;
    }
    default: {
      // A bounded loop over a fresh precise counter.
      std::string Counter = freshName("i");
      int Bound = 1 + static_cast<int>(R.nextBelow(4));
      Out += "  let int " + Counter + " = 0;\n";
      Out += "  while (" + Counter + " < " + std::to_string(Bound) +
             ") {\n    " + Counter + " = " + Counter + " + 1;\n";
      if (!MainLocals.empty()) {
        const GLocal &L = MainLocals[R.nextBelow(MainLocals.size())];
        GQual ValueQ = L.Q == GQual::Precise ? GQual::Precise : L.Q;
        Out += "    " + L.Name + " = " + expr(ValueQ, L.B, 1, nullptr,
                                              nullptr) + ";\n";
      }
      Out += "  };\n";
      break;
    }
    }
  }
  // The final, precise result.
  Out += "  " + expr(GQual::Precise, GBase::Int, Options.MaxDepth, nullptr,
                     nullptr) +
         ";\n}\n";
  return Out;
}

} // namespace

std::string enerj::fenerj::generateProgram(const GeneratorOptions &Options) {
  return ProgramGen(Options).run();
}
