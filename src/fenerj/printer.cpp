//===- fenerj/printer.cpp - FEnerJ pretty printer -------------------------===//

#include "fenerj/printer.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

using namespace enerj::fenerj;

namespace {

const char *binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  assert(false && "unknown binary operator");
  return "?";
}

std::string printQualPrefix(Qual Q) {
  switch (Q) {
  case Qual::Precise:
    return "@precise ";
  case Qual::Approx:
    return "@approx ";
  case Qual::Top:
    return "@top ";
  case Qual::Context:
    return "@context ";
  case Qual::Lost:
    assert(false && "'lost' never appears in source");
    return "/*lost*/ ";
  }
  return "";
}

const char *primName(BaseKind Base) {
  switch (Base) {
  case BaseKind::Int:
    return "int";
  case BaseKind::Float:
    return "float";
  case BaseKind::Bool:
    return "bool";
  default:
    assert(false && "not a primitive");
    return "?";
  }
}

class PrinterImpl {
public:
  std::string expr(const Expr &E);
  std::string block(const Expr &E, int Indent);

private:
  std::string indentOf(int Indent) { return std::string(Indent * 2, ' '); }
};

std::string PrinterImpl::block(const Expr &E, int Indent) {
  // Bodies of methods / if / while are always rendered as blocks.
  if (E.kind() != ExprKind::Block)
    return "{ " + expr(E) + "; }";
  const auto &Block = static_cast<const BlockExpr &>(E);
  std::string Out = "{\n";
  for (const BlockExpr::Item &Item : Block.Items) {
    Out += indentOf(Indent + 1);
    if (Item.IsLet)
      Out += "let " + printType(Item.LetType) + " " + Item.LetName + " = ";
    Out += expr(*Item.Value);
    Out += ";\n";
  }
  Out += indentOf(Indent) + "}";
  return Out;
}

std::string PrinterImpl::expr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::NullLit:
    return "null";
  case ExprKind::IntLit: {
    int64_t Value = static_cast<const IntLitExpr &>(E).Value;
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%" PRId64, Value);
    // Negative literals re-parse as unary minus over a positive literal;
    // parenthesize so the shape stays locally unambiguous.
    if (Value < 0)
      return std::string("(") + Buffer + ")";
    return Buffer;
  }
  case ExprKind::FloatLit: {
    char Buffer[64];
    double Value = static_cast<const FloatLitExpr &>(E).Value;
    // %g may print integers without a decimal point, which would re-lex
    // as an int literal; force a fractional form.
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
    std::string Text = Buffer;
    if (Text.find('.') == std::string::npos &&
        Text.find('e') == std::string::npos &&
        Text.find("inf") == std::string::npos &&
        Text.find("nan") == std::string::npos)
      Text += ".0";
    if (Value < 0)
      return "(" + Text + ")";
    return Text;
  }
  case ExprKind::BoolLit:
    return static_cast<const BoolLitExpr &>(E).Value ? "true" : "false";
  case ExprKind::VarRef:
    return static_cast<const VarRefExpr &>(E).Name;
  case ExprKind::New: {
    const auto &New = static_cast<const NewExpr &>(E);
    return "new " + printQualPrefix(New.Q) + New.ClassName + "()";
  }
  case ExprKind::NewArray: {
    const auto &New = static_cast<const NewArrayExpr &>(E);
    return "new " + printQualPrefix(New.ElemQual) + primName(New.Elem) +
           "[" + expr(*New.Length) + "]";
  }
  case ExprKind::FieldRead: {
    const auto &Read = static_cast<const FieldReadExpr &>(E);
    return expr(*Read.Receiver) + "." + Read.Field;
  }
  case ExprKind::FieldWrite: {
    const auto &Write = static_cast<const FieldWriteExpr &>(E);
    return "(" + expr(*Write.Receiver) + "." + Write.Field + " := " +
           expr(*Write.Value) + ")";
  }
  case ExprKind::ArrayRead: {
    const auto &Read = static_cast<const ArrayReadExpr &>(E);
    return expr(*Read.Array) + "[" + expr(*Read.Index) + "]";
  }
  case ExprKind::ArrayWrite: {
    const auto &Write = static_cast<const ArrayWriteExpr &>(E);
    return "(" + expr(*Write.Array) + "[" + expr(*Write.Index) + "] := " +
           expr(*Write.Value) + ")";
  }
  case ExprKind::ArrayLength:
    return expr(*static_cast<const ArrayLengthExpr &>(E).Array) + ".length";
  case ExprKind::MethodCall: {
    const auto &Call = static_cast<const MethodCallExpr &>(E);
    std::string Out = expr(*Call.Receiver) + "." + Call.Method + "(";
    for (size_t I = 0; I < Call.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += expr(*Call.Args[I]);
    }
    return Out + ")";
  }
  case ExprKind::Cast: {
    const auto &Cast = static_cast<const CastExpr &>(E);
    return "cast<" + printType(Cast.Target) + ">(" + expr(*Cast.Value) +
           ")";
  }
  case ExprKind::Endorse:
    return "endorse(" +
           expr(*static_cast<const EndorseExpr &>(E).Value) + ")";
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    return "(" + expr(*Bin.Lhs) + " " + binaryOpSpelling(Bin.Op) + " " +
           expr(*Bin.Rhs) + ")";
  }
  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(E);
    return std::string(Un.Op == UnaryOp::Neg ? "(-" : "(!") +
           expr(*Un.Value) + ")";
  }
  case ExprKind::If: {
    const auto &If = static_cast<const IfExpr &>(E);
    return "if (" + expr(*If.Cond) + ") " + block(*If.Then, 0) + " else " +
           block(*If.Else, 0);
  }
  case ExprKind::While: {
    const auto &While = static_cast<const WhileExpr &>(E);
    return "while (" + expr(*While.Cond) + ") " + block(*While.Body, 0);
  }
  case ExprKind::Block:
    return block(E, 0);
  case ExprKind::AssignLocal: {
    const auto &Assign = static_cast<const AssignLocalExpr &>(E);
    // Parenthesized assignments would not re-parse (assignment is only
    // recognized at statement level), so print bare; blocks put each
    // item in statement position anyway.
    return Assign.Name + " = " + expr(*Assign.Value);
  }
  }
  assert(false && "unknown expression kind");
  return "?";
}

} // namespace

std::string enerj::fenerj::printType(const Type &T) {
  if (T.isArray())
    return printQualPrefix(T.ElemQual) + std::string(primName(T.Elem)) +
           "[]";
  if (T.isClass())
    return printQualPrefix(T.Q) + T.ClassName;
  if (T.isNull())
    return "null";
  return printQualPrefix(T.Q) + primName(T.Base);
}

std::string enerj::fenerj::printExpr(const Expr &E) {
  return PrinterImpl().expr(E);
}

std::string enerj::fenerj::printProgram(const Program &Prog) {
  PrinterImpl Printer;
  std::string Out;
  for (const ClassDecl &Cls : Prog.Classes) {
    Out += "class " + Cls.Name;
    if (Cls.SuperName != "Object")
      Out += " extends " + Cls.SuperName;
    Out += " {\n";
    for (const FieldDeclAst &Field : Cls.Fields)
      Out += "  " + printType(Field.DeclaredType) + " " + Field.Name +
             ";\n";
    for (const MethodDecl &Method : Cls.Methods) {
      Out += "  " + printType(Method.ReturnType) + " " + Method.Name + "(";
      for (size_t I = 0; I < Method.Params.size(); ++I) {
        if (I)
          Out += ", ";
        Out += printType(Method.Params[I].DeclaredType) + " " +
               Method.Params[I].Name;
      }
      Out += ")";
      if (Method.ReceiverPrecision == Qual::Approx)
        Out += " approx";
      else if (Method.ReceiverPrecision == Qual::Precise)
        Out += " precise";
      Out += " " + Printer.block(*Method.Body, 1) + "\n";
    }
    Out += "}\n\n";
  }
  Out += Printer.block(*Prog.Main, 0);
  Out += "\n";
  return Out;
}
