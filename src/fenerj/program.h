//===- fenerj/program.h - Class table and member lookup ---------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The class table: name resolution over a parsed Program. It validates
/// the class hierarchy (unknown superclasses, cycles, duplicate members),
/// answers subclassing queries for the subtype relation, and performs the
/// FType / MSig lookups of Section 3.1 — walking the superclass chain and
/// selecting the receiver-precision overload (the _APPROX convention of
/// Section 2.5.2) for method calls.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_PROGRAM_H
#define ENERJ_FENERJ_PROGRAM_H

#include "fenerj/ast.h"
#include "fenerj/diag.h"
#include "fenerj/types.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace enerj {
namespace fenerj {

/// Resolved member lookups over a Program. The table borrows the Program;
/// the Program must outlive it.
class ClassTable : public SubclassOracle {
public:
  /// Builds the table, reporting hierarchy problems. Returns false when
  /// the table is unusable (duplicate/unknown classes, cycles).
  bool build(const Program &Prog, DiagnosticEngine &Diags);

  /// The declaration of \p Name, or null for unknown classes / "Object".
  const ClassDecl *lookup(const std::string &Name) const;

  bool isKnownClass(const std::string &Name) const {
    return Name == "Object" || lookup(Name) != nullptr;
  }

  bool isSubclassOf(const std::string &Sub,
                    const std::string &Super) const override;

  /// Declared (unadapted) type of field \p Field of \p ClassName, walking
  /// the superclass chain.
  std::optional<Type> fieldType(const std::string &ClassName,
                                const std::string &Field) const;

  /// All fields of \p ClassName including inherited ones, superclass
  /// fields first (the layout order of Section 4.1).
  std::vector<const FieldDeclAst *>
  allFields(const std::string &ClassName) const;

  /// Resolves a method for a receiver with qualifier \p ReceiverQual,
  /// walking the chain from \p ClassName upward. Within each class, a
  /// precise receiver selects the 'precise' variant, an approximate
  /// receiver the 'approx' variant, each falling back to the unmarked
  /// (context-polymorphic) variant; context/top/lost receivers use only
  /// the polymorphic variant. Returns null when no callable variant
  /// exists — a variant checked for the other precision is not callable,
  /// which is what keeps the non-interference guarantee airtight.
  const MethodDecl *lookupMethod(const std::string &ClassName,
                                 const std::string &Method,
                                 Qual ReceiverQual) const;

private:
  struct ClassInfo {
    const ClassDecl *Decl = nullptr;
  };
  std::unordered_map<std::string, ClassInfo> Classes;
};

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_PROGRAM_H
