//===- fenerj/program.cpp - Class table and member lookup -----------------===//

#include "fenerj/program.h"

#include <cassert>
#include <unordered_set>

using namespace enerj::fenerj;

bool ClassTable::build(const Program &Prog, DiagnosticEngine &Diags) {
  bool Ok = true;
  Classes.clear();
  for (const ClassDecl &Cls : Prog.Classes) {
    if (Cls.Name == "Object" || Classes.count(Cls.Name)) {
      Diags.report(DiagCode::DuplicateClass, Cls.Loc,
                   "duplicate class '" + Cls.Name + "'");
      Ok = false;
      continue;
    }
    Classes[Cls.Name] = {&Cls};
  }

  for (const ClassDecl &Cls : Prog.Classes) {
    if (Cls.SuperName != "Object" && !Classes.count(Cls.SuperName)) {
      Diags.report(DiagCode::UnknownClass, Cls.Loc,
                   "class '" + Cls.Name + "' extends unknown class '" +
                       Cls.SuperName + "'");
      Ok = false;
    }
    // Duplicate members within one class. Methods may share a name only
    // when their receiver precisions differ (the _APPROX overload).
    std::unordered_set<std::string> FieldNames;
    for (const FieldDeclAst &Field : Cls.Fields)
      if (!FieldNames.insert(Field.Name).second) {
        Diags.report(DiagCode::DuplicateMember, Field.Loc,
                     "duplicate field '" + Field.Name + "' in class '" +
                         Cls.Name + "'");
        Ok = false;
      }
    std::unordered_set<std::string> MethodKeys;
    for (const MethodDecl &Method : Cls.Methods) {
      std::string Key = Method.Name;
      switch (Method.ReceiverPrecision) {
      case Qual::Approx:
        Key += "#approx";
        break;
      case Qual::Precise:
        Key += "#precise";
        break;
      default:
        Key += "#context";
        break;
      }
      if (!MethodKeys.insert(Key).second) {
        Diags.report(DiagCode::DuplicateMember, Method.Loc,
                     "duplicate method '" + Method.Name + "' in class '" +
                         Cls.Name + "'");
        Ok = false;
      }
    }
  }
  if (!Ok)
    return false;

  // Cycle detection over the superclass relation.
  for (const ClassDecl &Cls : Prog.Classes) {
    std::unordered_set<std::string> Seen;
    const ClassDecl *Walk = &Cls;
    while (Walk) {
      if (!Seen.insert(Walk->Name).second) {
        Diags.report(DiagCode::CyclicInheritance, Cls.Loc,
                     "cyclic inheritance involving class '" + Cls.Name + "'");
        return false;
      }
      Walk = lookup(Walk->SuperName);
    }
  }
  return true;
}

const ClassDecl *ClassTable::lookup(const std::string &Name) const {
  auto It = Classes.find(Name);
  return It == Classes.end() ? nullptr : It->second.Decl;
}

bool ClassTable::isSubclassOf(const std::string &Sub,
                              const std::string &Super) const {
  if (Super == "Object")
    return true;
  const ClassDecl *Walk = lookup(Sub);
  std::string Name = Sub;
  while (true) {
    if (Name == Super)
      return true;
    if (!Walk)
      return false;
    Name = Walk->SuperName;
    Walk = lookup(Name);
    if (Name == "Object")
      return Super == "Object";
  }
}

std::optional<Type> ClassTable::fieldType(const std::string &ClassName,
                                          const std::string &Field) const {
  const ClassDecl *Walk = lookup(ClassName);
  while (Walk) {
    for (const FieldDeclAst &F : Walk->Fields)
      if (F.Name == Field)
        return F.DeclaredType;
    Walk = lookup(Walk->SuperName);
  }
  return std::nullopt;
}

std::vector<const FieldDeclAst *>
ClassTable::allFields(const std::string &ClassName) const {
  // Collect the chain root-first so superclass fields come first.
  std::vector<const ClassDecl *> Chain;
  const ClassDecl *Walk = lookup(ClassName);
  while (Walk) {
    Chain.push_back(Walk);
    Walk = lookup(Walk->SuperName);
  }
  std::vector<const FieldDeclAst *> Fields;
  for (auto It = Chain.rbegin(), E = Chain.rend(); It != E; ++It)
    for (const FieldDeclAst &F : (*It)->Fields)
      Fields.push_back(&F);
  return Fields;
}

const MethodDecl *ClassTable::lookupMethod(const std::string &ClassName,
                                           const std::string &Method,
                                           Qual ReceiverQual) const {
  const ClassDecl *Walk = lookup(ClassName);
  while (Walk) {
    const MethodDecl *Exact = nullptr;
    const MethodDecl *Polymorphic = nullptr;
    for (const MethodDecl &M : Walk->Methods) {
      if (M.Name != Method)
        continue;
      if (M.ReceiverPrecision == Qual::Context)
        Polymorphic = &M;
      else if (M.ReceiverPrecision == ReceiverQual)
        Exact = &M;
    }
    if (Exact)
      return Exact;
    if (Polymorphic)
      return Polymorphic;
    Walk = lookup(Walk->SuperName);
  }
  return nullptr;
}
