//===- fenerj/lexer.h - FEnerJ lexer ----------------------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for FEnerJ. Produces the whole token stream up
/// front; errors go to the DiagnosticEngine and lexing continues so the
/// parser can still report its own problems.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_LEXER_H
#define ENERJ_FENERJ_LEXER_H

#include "fenerj/diag.h"
#include "fenerj/token.h"

#include <string_view>
#include <vector>

namespace enerj {
namespace fenerj {

/// Lexes \p Source completely. The returned vector always ends with an
/// Eof token.
std::vector<Token> lex(std::string_view Source, DiagnosticEngine &Diags);

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_LEXER_H
