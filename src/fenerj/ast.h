//===- fenerj/ast.h - FEnerJ abstract syntax --------------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax of FEnerJ (Figure 1), extended with the constructs
/// needed to write the Section 6 style programs: blocks with local
/// variables, local assignment, while loops, arrays, and endorse. Nodes
/// are tagged with an ExprKind; consumers switch on the kind and
/// static_cast (the codebase does not use RTTI).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_AST_H
#define ENERJ_FENERJ_AST_H

#include "fenerj/diag.h"
#include "fenerj/types.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace enerj {
namespace fenerj {

enum class ExprKind {
  NullLit,
  IntLit,
  FloatLit,
  BoolLit,
  VarRef, // Includes 'this'.
  New,
  NewArray,
  FieldRead,
  FieldWrite,
  ArrayRead,
  ArrayWrite,
  ArrayLength,
  MethodCall,
  Cast,
  Endorse,
  Binary,
  Unary,
  If,
  While,
  Block,
  AssignLocal,
};

enum class BinaryOp { Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt, Ge, And, Or };
enum class UnaryOp { Neg, Not };

/// Base of all expression nodes.
struct Expr {
  explicit Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

private:
  ExprKind Kind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

struct NullLitExpr : Expr {
  explicit NullLitExpr(SourceLoc Loc) : Expr(ExprKind::NullLit, Loc) {}
};

struct IntLitExpr : Expr {
  IntLitExpr(SourceLoc Loc, int64_t Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  int64_t Value;
};

struct FloatLitExpr : Expr {
  FloatLitExpr(SourceLoc Loc, double Value)
      : Expr(ExprKind::FloatLit, Loc), Value(Value) {}
  double Value;
};

struct BoolLitExpr : Expr {
  BoolLitExpr(SourceLoc Loc, bool Value)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
  bool Value;
};

struct VarRefExpr : Expr {
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}
  std::string Name;
};

/// new q C()
struct NewExpr : Expr {
  NewExpr(SourceLoc Loc, Qual Q, std::string ClassName)
      : Expr(ExprKind::New, Loc), Q(Q), ClassName(std::move(ClassName)) {}
  Qual Q;
  std::string ClassName;
};

/// new q P[length]
struct NewArrayExpr : Expr {
  NewArrayExpr(SourceLoc Loc, Qual ElemQual, BaseKind Elem, ExprPtr Length)
      : Expr(ExprKind::NewArray, Loc), ElemQual(ElemQual), Elem(Elem),
        Length(std::move(Length)) {}
  Qual ElemQual;
  BaseKind Elem;
  ExprPtr Length;
};

struct FieldReadExpr : Expr {
  FieldReadExpr(SourceLoc Loc, ExprPtr Receiver, std::string Field)
      : Expr(ExprKind::FieldRead, Loc), Receiver(std::move(Receiver)),
        Field(std::move(Field)) {}
  ExprPtr Receiver;
  std::string Field;
};

/// e.f := e
struct FieldWriteExpr : Expr {
  FieldWriteExpr(SourceLoc Loc, ExprPtr Receiver, std::string Field,
                 ExprPtr Value)
      : Expr(ExprKind::FieldWrite, Loc), Receiver(std::move(Receiver)),
        Field(std::move(Field)), Value(std::move(Value)) {}
  ExprPtr Receiver;
  std::string Field;
  ExprPtr Value;
};

struct ArrayReadExpr : Expr {
  ArrayReadExpr(SourceLoc Loc, ExprPtr Array, ExprPtr Index)
      : Expr(ExprKind::ArrayRead, Loc), Array(std::move(Array)),
        Index(std::move(Index)) {}
  ExprPtr Array;
  ExprPtr Index;
};

/// a[i] := e
struct ArrayWriteExpr : Expr {
  ArrayWriteExpr(SourceLoc Loc, ExprPtr Array, ExprPtr Index, ExprPtr Value)
      : Expr(ExprKind::ArrayWrite, Loc), Array(std::move(Array)),
        Index(std::move(Index)), Value(std::move(Value)) {}
  ExprPtr Array;
  ExprPtr Index;
  ExprPtr Value;
};

struct ArrayLengthExpr : Expr {
  ArrayLengthExpr(SourceLoc Loc, ExprPtr Array)
      : Expr(ExprKind::ArrayLength, Loc), Array(std::move(Array)) {}
  ExprPtr Array;
};

struct MethodCallExpr : Expr {
  MethodCallExpr(SourceLoc Loc, ExprPtr Receiver, std::string Method,
                 std::vector<ExprPtr> Args)
      : Expr(ExprKind::MethodCall, Loc), Receiver(std::move(Receiver)),
        Method(std::move(Method)), Args(std::move(Args)) {}
  ExprPtr Receiver;
  std::string Method;
  std::vector<ExprPtr> Args;
};

/// cast<T>(e)
struct CastExpr : Expr {
  CastExpr(SourceLoc Loc, Type Target, ExprPtr Value)
      : Expr(ExprKind::Cast, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
  Type Target;
  ExprPtr Value;
};

struct EndorseExpr : Expr {
  EndorseExpr(SourceLoc Loc, ExprPtr Value)
      : Expr(ExprKind::Endorse, Loc), Value(std::move(Value)) {}
  ExprPtr Value;
};

struct BinaryExpr : Expr {
  BinaryExpr(SourceLoc Loc, BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

struct UnaryExpr : Expr {
  UnaryExpr(SourceLoc Loc, UnaryOp Op, ExprPtr Value)
      : Expr(ExprKind::Unary, Loc), Op(Op), Value(std::move(Value)) {}
  UnaryOp Op;
  ExprPtr Value;
};

struct IfExpr : Expr {
  IfExpr(SourceLoc Loc, ExprPtr Cond, ExprPtr Then, ExprPtr Else)
      : Expr(ExprKind::If, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  ExprPtr Cond;
  ExprPtr Then;
  ExprPtr Else;
};

/// while (cond) { body }; evaluates to precise int 0.
struct WhileExpr : Expr {
  WhileExpr(SourceLoc Loc, ExprPtr Cond, ExprPtr Body)
      : Expr(ExprKind::While, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  ExprPtr Cond;
  ExprPtr Body;
};

/// { let T x = e; e2; e3 } — lets bind for the remainder of the block;
/// the block's value is its last element's value.
struct BlockExpr : Expr {
  struct Item {
    bool IsLet = false;
    Type LetType;        ///< For lets.
    std::string LetName; ///< For lets.
    SourceLoc LetLoc;    ///< Declaration site of the let (for lets).
    ExprPtr Value;       ///< Initializer (for lets) or the expression.
  };

  BlockExpr(SourceLoc Loc, std::vector<Item> Items)
      : Expr(ExprKind::Block, Loc), Items(std::move(Items)) {}
  std::vector<Item> Items;
};

/// x = e (assignment to a local variable; evaluates to the new value).
struct AssignLocalExpr : Expr {
  AssignLocalExpr(SourceLoc Loc, std::string Name, ExprPtr Value)
      : Expr(ExprKind::AssignLocal, Loc), Name(std::move(Name)),
        Value(std::move(Value)) {}
  std::string Name;
  ExprPtr Value;
};

/// --- Declarations. ---

struct FieldDeclAst {
  Type DeclaredType;
  std::string Name;
  SourceLoc Loc;
};

struct ParamDecl {
  Type DeclaredType;
  std::string Name;
  /// Declaration site of the parameter itself (not the method). Gives
  /// whole-program analyses a per-declaration anchor so two parameters of
  /// one method never collapse onto the same location.
  SourceLoc Loc;
};

struct MethodDecl {
  Type ReturnType;
  std::string Name;
  std::vector<ParamDecl> Params;
  /// Receiver precision (the paper's method precision qualifier q):
  /// Context for unmarked methods — polymorphic over the instance
  /// qualifier, checked with `this : @context C`; Precise or Approx for
  /// the explicitly marked variants of Section 2.5.2, checked with `this`
  /// at that precision and selected by the receiver's qualifier.
  Qual ReceiverPrecision = Qual::Context;
  ExprPtr Body;
  SourceLoc Loc;
};

struct ClassDecl {
  std::string Name;
  std::string SuperName = "Object";
  std::vector<FieldDeclAst> Fields;
  std::vector<MethodDecl> Methods;
  SourceLoc Loc;
};

/// A whole program: classes plus the main expression.
struct Program {
  std::vector<ClassDecl> Classes;
  ExprPtr Main;
};

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_AST_H
