//===- fenerj/types.h - Precision qualifiers and types ----------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The precision-qualifier lattice and type representation of Section 3:
///
///   ordering:   q <: q    q <: top    q <: lost (q != top)
///   (precise, approx, and context are mutually unrelated)
///
///   context adaptation (q |> q'): replaces 'context' with the receiver's
///   qualifier when reading a field or calling a method; when the receiver
///   qualifier is top or lost, the information is not expressible and
///   adapts to 'lost'.
///
/// Types are a qualifier plus a base: a primitive (int/float/bool), a
/// class, an array of a qualified primitive, or null. Subtyping combines
/// qualifier ordering with subclassing, plus the primitive-only rule
/// "precise P <: approx P" (Section 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_TYPES_H
#define ENERJ_FENERJ_TYPES_H

#include <string>

namespace enerj {
namespace fenerj {

/// The five precision qualifiers. Lost is internal: it appears only as the
/// result of adaptation, never in source.
enum class Qual { Precise, Approx, Top, Context, Lost };

const char *qualName(Qual Q);

/// The qualifier ordering <:q of Section 3.1.
bool subQual(Qual Sub, Qual Super);

/// Context adaptation q |> q' (Section 3.1).
Qual adaptQual(Qual Receiver, Qual Declared);

/// Base types.
enum class BaseKind { Int, Float, Bool, Class, Array, Null };

/// A qualified type. Arrays are one-dimensional arrays of qualified
/// primitives: Elem holds the element base kind and ElemQual its
/// qualifier; the array reference itself (its length, its identity) is
/// always precise (Section 2.6).
struct Type {
  Qual Q = Qual::Precise;
  BaseKind Base = BaseKind::Int;
  std::string ClassName;        ///< For BaseKind::Class.
  BaseKind Elem = BaseKind::Int; ///< For BaseKind::Array.
  Qual ElemQual = Qual::Precise; ///< For BaseKind::Array.

  bool isPrimitive() const {
    return Base == BaseKind::Int || Base == BaseKind::Float ||
           Base == BaseKind::Bool;
  }
  bool isNumeric() const {
    return Base == BaseKind::Int || Base == BaseKind::Float;
  }
  bool isClass() const { return Base == BaseKind::Class; }
  bool isArray() const { return Base == BaseKind::Array; }
  bool isNull() const { return Base == BaseKind::Null; }

  /// True when 'lost' occurs anywhere in the type (the field-write rule
  /// requires lost-free adapted types).
  bool mentionsLost() const {
    return Q == Qual::Lost || (isArray() && ElemQual == Qual::Lost);
  }

  /// True when 'context' occurs anywhere in the type.
  bool mentionsContext() const {
    return Q == Qual::Context || (isArray() && ElemQual == Qual::Context);
  }

  std::string str() const;

  bool operator==(const Type &Other) const {
    return Q == Other.Q && Base == Other.Base &&
           ClassName == Other.ClassName && Elem == Other.Elem &&
           ElemQual == Other.ElemQual;
  }

  static Type makePrim(Qual Q, BaseKind Base) {
    Type T;
    T.Q = Q;
    T.Base = Base;
    return T;
  }
  static Type makeClass(Qual Q, std::string Name) {
    Type T;
    T.Q = Q;
    T.Base = BaseKind::Class;
    T.ClassName = std::move(Name);
    return T;
  }
  static Type makeArray(Qual ElemQual, BaseKind Elem) {
    Type T;
    T.Q = Qual::Precise; // The reference/length is precise.
    T.Base = BaseKind::Array;
    T.Elem = Elem;
    T.ElemQual = ElemQual;
    return T;
  }
  static Type makeNull() {
    Type T;
    T.Base = BaseKind::Null;
    return T;
  }
};

/// Adapts every qualifier in \p Declared by the receiver qualifier
/// (extends adaptQual over whole types, like the paper's |> on types).
Type adaptType(Qual Receiver, const Type &Declared);

/// Resolves subclassing queries for subtype checks.
class SubclassOracle {
public:
  virtual ~SubclassOracle() = default;
  /// True when \p Sub is \p Super or a (transitive) subclass.
  virtual bool isSubclassOf(const std::string &Sub,
                            const std::string &Super) const = 0;
};

/// Full subtyping judgment (Section 3.1): qualifier ordering and
/// subclassing for class types; qualifier ordering plus the special
/// precise<:approx rule for primitives; null is a subtype of every class
/// and array type; array types are invariant in their element type.
bool isSubtype(const Type &Sub, const Type &Super,
               const SubclassOracle &Classes);

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_TYPES_H
