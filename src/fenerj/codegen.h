//===- fenerj/codegen.h - FEnerJ-to-approximate-ISA compiler ----*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A code generator from a FEnerJ subset to the Section 4 ISA — the
/// paper's complete story in one pipeline: the programmer annotates
/// types, the checker guarantees isolation, and "the system
/// automatically maps approximate variables to low-power storage [and]
/// uses low-power operations":
///
///  * precise locals/arrays are placed in the precise data region and
///    manipulated with precise instructions and registers;
///  * approximate locals/arrays go to the reduced-refresh region, their
///    arithmetic is emitted as `.a` instructions targeting approximate
///    (low-voltage) registers;
///  * endorse() compiles to the explicit `endorse`/`fendorse`
///    instructions — the only approx-to-precise moves in the output;
///  * conditions compile to branches (integer and FP forms), whose
///    operands the ISA requires to be precise — endorsed approximate
///    comparisons endorse their operands right before the compare; FP
///    comparisons branch on the positive condition so NaN semantics
///    match the interpreter.
///
/// Supported subset: a main expression (no classes/methods) over int and
/// float locals and constant-length arrays, arithmetic, comparisons and
/// logical operators in conditions, if/while, assignments, casts, and
/// endorse. The generated assembly always passes the ISA Verifier — a
/// property the tests check — and running it on a fault-free machine
/// agrees with the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_FENERJ_CODEGEN_H
#define ENERJ_FENERJ_CODEGEN_H

#include "fenerj/ast.h"
#include "fenerj/program.h"

#include <optional>
#include <string>

namespace enerj {
namespace fenerj {

/// Result of compilation: assembly text for the ISA assembler, or an
/// error describing the unsupported construct.
struct CodegenResult {
  bool Ok = false;
  std::string Assembly;
  std::string Error;
};

/// Compiles \p Prog (which must already be type-checked). The final
/// value of the main expression, if it is an int or float, is left in
/// r1 / f1.
CodegenResult compileToIsa(const Program &Prog);

} // namespace fenerj
} // namespace enerj

#endif // ENERJ_FENERJ_CODEGEN_H
