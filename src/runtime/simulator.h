//===- runtime/simulator.h - Approximation-aware machine -------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate of Section 4, as a library: a Simulator owns the
/// logical clock, the byte-second ledger, the Table 2 fault models, and the
/// operation counters. The enerj:: data types (Approx<T>, ApproxArray<T>,
/// Precise<T>) route every load, store and arithmetic operation through the
/// active simulator, which injects faults and records statistics.
///
/// A thread-local "current simulator" mirrors the paper's ambient-hardware
/// model: code written against the EnerJ API runs unchanged under any
/// simulator, and with no simulator installed it executes precisely — the
/// paper's observation that ignoring all annotations is a valid execution.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_RUNTIME_SIMULATOR_H
#define ENERJ_RUNTIME_SIMULATOR_H

#include "arch/memory.h"
#include "arch/stats.h"
#include "fault/config.h"
#include "fault/models.h"
#include "support/bits.h"
#include "support/rng.h"

#include <type_traits>

namespace enerj {

/// One approximation-aware machine. Not thread-safe; use one per thread.
class Simulator {
public:
  explicit Simulator(const FaultConfig &Config)
      : Config(Config), R(Config.Seed), Sram(this->Config),
        Dram(this->Config), FpWidth(this->Config), IntTiming(this->Config),
        FpTiming(this->Config) {}

  Simulator(const Simulator &) = delete;
  Simulator &operator=(const Simulator &) = delete;

  const FaultConfig &config() const { return Config; }
  Rng &rng() { return R; }
  MemoryLedger &ledger() { return Ledger; }
  uint64_t now() const { return Ledger.now(); }

  /// --- Arithmetic operations. Each counts one dynamic op and advances
  /// --- the clock by one cycle.

  /// Records a precise integer operation (no fault injection).
  void countPreciseInt() {
    ++Ops.PreciseInt;
    Ledger.tick();
  }

  /// Records a precise FP operation (no fault injection).
  void countPreciseFp() {
    ++Ops.PreciseFp;
    Ledger.tick();
  }

  /// Finishes an approximate operation producing \p Correct: counts one
  /// dynamic op on the integer or FP unit (per \p IsFp — chosen by the
  /// *operand* type, so an FP comparison is an FP op even though its result
  /// is a bool) and possibly corrupts the result via that unit's timing
  /// model. Operand narrowing is done separately (narrowOperand) before
  /// the host computes \p Correct.
  template <typename ResultT> ResultT opResult(ResultT Correct, bool IsFp) {
    if (IsFp)
      ++Ops.ApproxFp;
    else
      ++Ops.ApproxInt;
    Ledger.tick();
    TimingModel &Unit = IsFp ? FpTiming : IntTiming;
    return fromBits<ResultT>(
        Unit.onResult(toBits(Correct), bitWidth<ResultT>(), R));
  }

  /// Finishes an approximate integer operation.
  template <typename T> T intResult(T Correct) {
    static_assert(std::is_integral_v<T>, "intResult takes integers");
    return opResult(Correct, /*IsFp=*/false);
  }

  /// Finishes an approximate FP operation.
  template <typename T> T fpResult(T Correct) {
    static_assert(std::is_floating_point_v<T>, "fpResult takes FP values");
    return opResult(Correct, /*IsFp=*/true);
  }

  /// Narrows one FP operand to the configured mantissa width.
  float narrowOperand(float Value) { return FpWidth.narrow(Value); }
  double narrowOperand(double Value) { return FpWidth.narrow(Value); }
  /// Integer operands pass through unchanged (width reduction is FP-only).
  template <typename T>
  std::enable_if_t<std::is_integral_v<T>, T> narrowOperand(T Value) {
    return Value;
  }

  /// --- Approximate storage. SRAM models registers and cached stack data;
  /// --- DRAM models heap data decaying since its last access.

  template <typename T> T sramRead(T Stored) {
    return fromBits<T>(Sram.onRead(toBits(Stored), bitWidth<T>(), R));
  }

  template <typename T> T sramWrite(T Value) {
    return fromBits<T>(Sram.onWrite(toBits(Value), bitWidth<T>(), R));
  }

  /// Applies DRAM decay to \p Stored given the cycle of its last access,
  /// then advances the clock (an access is a memory operation).
  template <typename T> T dramAccess(T Stored, uint64_t LastAccessCycle) {
    uint64_t Elapsed = now() - LastAccessCycle;
    T Result =
        fromBits<T>(Dram.onAccess(toBits(Stored), bitWidth<T>(), Elapsed, R));
    Ledger.tick();
    return Result;
  }

  /// Statistics snapshot, including live storage leases priced to now().
  RunStats stats() const {
    RunStats Result;
    Result.Ops = Ops;
    Result.Ops.TimingErrors = IntTiming.errorCount() + FpTiming.errorCount();
    Result.Storage = Ledger.snapshot();
    return Result;
  }

  /// The simulator the enerj:: types currently route through (may be null:
  /// then all annotated code executes precisely and nothing is recorded).
  static Simulator *current() { return Current; }

private:
  friend class SimulatorScope;
  static thread_local Simulator *Current;

  FaultConfig Config;
  Rng R;
  MemoryLedger Ledger;
  OperationStats Ops;
  SramModel Sram;
  DramModel Dram;
  FpWidthModel FpWidth;
  TimingModel IntTiming;
  TimingModel FpTiming;
};

/// RAII installer for the thread-local current simulator.
class SimulatorScope {
public:
  explicit SimulatorScope(Simulator &Sim) : Saved(Simulator::Current) {
    Simulator::Current = &Sim;
  }
  ~SimulatorScope() { Simulator::Current = Saved; }
  SimulatorScope(const SimulatorScope &) = delete;
  SimulatorScope &operator=(const SimulatorScope &) = delete;

private:
  Simulator *Saved;
};

} // namespace enerj

#endif // ENERJ_RUNTIME_SIMULATOR_H
