//===- runtime/simulator.h - Approximation-aware machine -------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate of Section 4, as a library: a Simulator owns the
/// logical clock, the byte-second ledger, the Table 2 fault models, and the
/// operation counters. The enerj:: data types (Approx<T>, ApproxArray<T>,
/// Precise<T>) route every load, store and arithmetic operation through the
/// active simulator, which injects faults and records statistics.
///
/// A thread-local "current simulator" mirrors the paper's ambient-hardware
/// model: code written against the EnerJ API runs unchanged under any
/// simulator, and with no simulator installed it executes precisely — the
/// paper's observation that ignoring all annotations is a valid execution.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_RUNTIME_SIMULATOR_H
#define ENERJ_RUNTIME_SIMULATOR_H

#include "arch/memory.h"
#include "arch/stats.h"
#include "env/power.h"
#include "fault/config.h"
#include "fault/models.h"
#include "obs/telemetry.h"
#include "support/bits.h"
#include "support/rng.h"

#include <atomic>
#include <cassert>
#include <thread>
#include <type_traits>

namespace enerj {

/// One approximation-aware machine. Not thread-safe; use one per thread.
///
/// The one-per-thread contract is enforced: installing a simulator
/// (SimulatorScope) while it is installed on a *different* thread aborts
/// with a diagnostic in every build mode, and debug builds additionally
/// assert on every operation that the calling thread is the installing
/// one. Sequential handoff — install, uninstall, then install on another
/// thread — is allowed (the caller is responsible for the synchronization
/// that makes the handoff itself safe).
class Simulator {
public:
  explicit Simulator(const FaultConfig &Config)
      : Config(Config), R(Config.Seed), Sram(this->Config),
        Dram(this->Config), FpWidth(this->Config), IntTiming(this->Config),
        FpTiming(this->Config), OpBudget(this->Config.OpBudgetOps) {}

  Simulator(const Simulator &) = delete;
  Simulator &operator=(const Simulator &) = delete;

  const FaultConfig &config() const { return Config; }
  Rng &rng() { return R; }
  MemoryLedger &ledger() { return Ledger; }
  uint64_t now() const { return Ledger.now(); }

  /// --- Telemetry (src/obs). Null by default; the harness attaches one
  /// --- per attempt. Every instrumented path below reports into it with
  /// --- a single pointer test when disabled, and fault detection is a
  /// --- bit comparison (no RNG), so attaching telemetry never changes
  /// --- what the simulated machine computes.

  /// Attaches \p T for the rest of this simulator's life (or nullptr to
  /// detach). Enables per-region storage tagging in the ledger, so attach
  /// before the first lease for complete attribution.
  void attachTelemetry(obs::Telemetry *T) {
    Tel = T;
    if (T)
      Ledger.enableTagging();
  }
  obs::Telemetry *telemetry() const { return Tel; }

  /// --- Power environment (src/env). Null by default; the harness
  /// --- attaches one per attempt when a power trace is armed. The meter
  /// --- only *accounts* — it draws no randomness and never changes what
  /// --- the simulated machine computes — so a power-armed run's measured
  /// --- results are bitwise identical to the always-on path.

  void attachPowerMeter(env::PowerMeter *M) { Power = M; }
  env::PowerMeter *powerMeter() const { return Power; }

  /// The attribution tag for a storage lease taken now: the telemetry
  /// layer's current region, or 0 (the root region) with none attached.
  uint32_t storageTag() const {
    return Tel ? Tel->Metrics.currentRegion() : 0;
  }

  /// True when telemetry's forced-precise probe is active for the current
  /// region: every approximate path executes precisely (the profiler's
  /// "what if this site were @Precise" measurement).
  bool forcedPrecise() const { return Tel && Tel->forcedPrecise(); }

  /// --- Arithmetic operations. Each counts one dynamic op and advances
  /// --- the clock by one cycle.

  /// Records a precise integer operation (no fault injection).
  void countPreciseInt() {
    checkOwner();
    ++Ops.PreciseInt;
    Ledger.tick();
    watchdog();
    powerTick(env::PowerOpClass::PreciseInt);
    if (Tel)
      Tel->onOp(obs::OpKind::PreciseInt, 0, Ledger.now());
  }

  /// Records a precise FP operation (no fault injection).
  void countPreciseFp() {
    checkOwner();
    ++Ops.PreciseFp;
    Ledger.tick();
    watchdog();
    powerTick(env::PowerOpClass::PreciseFp);
    if (Tel)
      Tel->onOp(obs::OpKind::PreciseFp, 0, Ledger.now());
  }

  /// Finishes an approximate operation producing \p Correct: counts one
  /// dynamic op on the integer or FP unit (per \p IsFp — chosen by the
  /// *operand* type, so an FP comparison is an FP op even though its result
  /// is a bool) and possibly corrupts the result via that unit's timing
  /// model. Operand narrowing is done separately (narrowOperand) before
  /// the host computes \p Correct.
  template <typename ResultT> ResultT opResult(ResultT Correct, bool IsFp) {
    checkOwner();
    if (forcedPrecise()) {
      // The probe executes this op on the precise unit: count it as
      // precise, skip the timing model entirely (no RNG draw).
      if (IsFp)
        ++Ops.PreciseFp;
      else
        ++Ops.PreciseInt;
      Ledger.tick();
      watchdog();
      powerTick(IsFp ? env::PowerOpClass::PreciseFp
                     : env::PowerOpClass::PreciseInt);
      Tel->onOp(IsFp ? obs::OpKind::PreciseFp : obs::OpKind::PreciseInt, 0,
                Ledger.now());
      return Correct;
    }
    if (IsFp)
      ++Ops.ApproxFp;
    else
      ++Ops.ApproxInt;
    Ledger.tick();
    watchdog();
    powerTick(IsFp ? env::PowerOpClass::ApproxFp
                   : env::PowerOpClass::ApproxInt);
    TimingModel &Unit = IsFp ? FpTiming : IntTiming;
    uint64_t CorrectBits = toBits(Correct);
    uint64_t ResultBits = Unit.onResult(CorrectBits, bitWidth<ResultT>(), R);
    if (Tel)
      Tel->onOp(IsFp ? obs::OpKind::ApproxFp : obs::OpKind::ApproxInt,
                countFlippedBits(CorrectBits, ResultBits,
                                 bitWidth<ResultT>()),
                Ledger.now());
    return fromBits<ResultT>(ResultBits);
  }

  /// Finishes an approximate integer operation.
  template <typename T> T intResult(T Correct) {
    static_assert(std::is_integral_v<T>, "intResult takes integers");
    return opResult(Correct, /*IsFp=*/false);
  }

  /// Finishes an approximate FP operation.
  template <typename T> T fpResult(T Correct) {
    static_assert(std::is_floating_point_v<T>, "fpResult takes FP values");
    return opResult(Correct, /*IsFp=*/true);
  }

  /// Narrows one FP operand to the configured mantissa width.
  float narrowOperand(float Value) {
    return forcedPrecise() ? Value : FpWidth.narrow(Value);
  }
  double narrowOperand(double Value) {
    return forcedPrecise() ? Value : FpWidth.narrow(Value);
  }
  /// Integer operands pass through unchanged (width reduction is FP-only).
  template <typename T>
  std::enable_if_t<std::is_integral_v<T>, T> narrowOperand(T Value) {
    return Value;
  }

  /// --- Approximate storage. SRAM models registers and cached stack data;
  /// --- DRAM models heap data decaying since its last access.

  template <typename T> T sramRead(T Stored) {
    checkOwner();
    if (forcedPrecise()) {
      Tel->onOp(obs::OpKind::SramRead, 0, Ledger.now());
      return Stored;
    }
    uint64_t StoredBits = toBits(Stored);
    uint64_t ResultBits = Sram.onRead(StoredBits, bitWidth<T>(), R);
    if (Tel)
      Tel->onOp(obs::OpKind::SramRead,
                countFlippedBits(StoredBits, ResultBits, bitWidth<T>()),
                Ledger.now());
    return fromBits<T>(ResultBits);
  }

  template <typename T> T sramWrite(T Value) {
    checkOwner();
    if (forcedPrecise()) {
      Tel->onOp(obs::OpKind::SramWrite, 0, Ledger.now());
      return Value;
    }
    uint64_t ValueBits = toBits(Value);
    uint64_t ResultBits = Sram.onWrite(ValueBits, bitWidth<T>(), R);
    if (Tel)
      Tel->onOp(obs::OpKind::SramWrite,
                countFlippedBits(ValueBits, ResultBits, bitWidth<T>()),
                Ledger.now());
    return fromBits<T>(ResultBits);
  }

  /// Applies DRAM decay to \p Stored given the cycle of its last access,
  /// then advances the clock (an access is a memory operation).
  template <typename T> T dramAccess(T Stored, uint64_t LastAccessCycle) {
    checkOwner();
    uint64_t Elapsed = now() - LastAccessCycle;
    if (forcedPrecise()) {
      Ledger.tick();
      watchdog();
      powerTick(env::PowerOpClass::Mem);
      Tel->onOp(obs::OpKind::DramLoad, 0, Ledger.now());
      return Stored;
    }
    uint64_t StoredBits = toBits(Stored);
    uint64_t ResultBits =
        Dram.onAccess(StoredBits, bitWidth<T>(), Elapsed, R);
    Ledger.tick();
    watchdog();
    powerTick(env::PowerOpClass::Mem);
    if (Tel) {
      Tel->Metrics.recordDramGap(Elapsed);
      Tel->onOp(obs::OpKind::DramLoad,
                countFlippedBits(StoredBits, ResultBits, bitWidth<T>()),
                Ledger.now());
    }
    return fromBits<T>(ResultBits);
  }

  /// Completes a DRAM store (ApproxArray::set): a memory operation that
  /// advances the clock through the watchdog. Stores refresh rather than
  /// corrupt, so there is no fault path — but the tick must go through
  /// here, not straight into the ledger, or the op budget and telemetry
  /// would miss it.
  void dramStore() {
    checkOwner();
    Ledger.tick();
    watchdog();
    powerTick(env::PowerOpClass::Mem);
    if (Tel)
      Tel->onOp(obs::OpKind::DramStore, 0, Ledger.now());
  }

  /// Statistics snapshot, including live storage leases priced to now().
  RunStats stats() const {
    RunStats Result;
    Result.Ops = Ops;
    Result.Ops.TimingErrors = IntTiming.errorCount() + FpTiming.errorCount();
    Result.Storage = Ledger.snapshot();
    return Result;
  }

  /// The simulator the enerj:: types currently route through (may be null:
  /// then all annotated code executes precisely and nothing is recorded).
  static Simulator *current() { return Current; }

private:
  friend class SimulatorScope;
  static thread_local Simulator *Current;

  /// Claims this simulator for the calling thread. Aborts (all build
  /// modes) if it is currently claimed by a different thread — that is a
  /// concurrent cross-thread install, which would silently corrupt the
  /// counters and the fault stream. Returns true if this call made the
  /// claim (false for a nested scope on the same thread), so the
  /// outermost scope releases it.
  bool attachCurrentThread() {
    std::thread::id Previous =
        Owner.exchange(std::this_thread::get_id(), std::memory_order_acq_rel);
    if (Previous == std::thread::id())
      return true;
    if (Previous != std::this_thread::get_id())
      failCrossThreadInstall();
    return false;
  }

  /// Releases the claim, allowing a (properly synchronized) sequential
  /// handoff to another thread.
  void detachCurrentThread() {
    Owner.store(std::thread::id(), std::memory_order_release);
  }

  /// Debug-mode check that the calling thread installed this simulator.
  /// An unclaimed simulator (direct use without a SimulatorScope, as in
  /// unit tests) is exempt. Compiles to nothing under NDEBUG.
  void checkOwner() const {
#ifndef NDEBUG
    std::thread::id O = Owner.load(std::memory_order_relaxed);
    assert((O == std::thread::id() || O == std::this_thread::get_id()) &&
           "Simulator used from a thread other than the installing one");
#endif
  }

  /// Prints a diagnostic and aborts; out of line so the header stays
  /// free of <cstdio>.
  [[noreturn]] void failCrossThreadInstall() const;

  /// Watchdog: aborts the run with resilience::TrialAbort once the clock
  /// passes the configured operation budget (FaultConfig::OpBudgetOps;
  /// 0 = unarmed). Called after every clock tick. Disarms itself before
  /// throwing, so destructors running during unwinding — and any code
  /// that catches the abort and keeps using this simulator, e.g. to
  /// snapshot the partial stats — can tick freely without rethrowing.
  void watchdog() {
    if (OpBudget != 0 && Ledger.now() > OpBudget)
      overBudget();
  }

  /// Out of line: disarms the watchdog and throws resilience::TrialAbort.
  [[noreturn]] void overBudget();

  /// Power-environment metering: one pointer test when disarmed, pure
  /// accounting when armed (never perturbs the run).
  void powerTick(env::PowerOpClass C) {
    if (Power)
      Power->onOp(C);
  }

  std::atomic<std::thread::id> Owner{};

  env::PowerMeter *Power = nullptr;
  obs::Telemetry *Tel = nullptr;
  FaultConfig Config;
  Rng R;
  MemoryLedger Ledger;
  OperationStats Ops;
  SramModel Sram;
  DramModel Dram;
  FpWidthModel FpWidth;
  TimingModel IntTiming;
  TimingModel FpTiming;
  uint64_t OpBudget = 0;
};

/// RAII installer for the thread-local current simulator.
class SimulatorScope {
public:
  explicit SimulatorScope(Simulator &Sim)
      : Installed(&Sim), Saved(Simulator::Current),
        Claimed(Sim.attachCurrentThread()) {
    Simulator::Current = &Sim;
  }
  ~SimulatorScope() {
    Simulator::Current = Saved;
    if (Claimed)
      Installed->detachCurrentThread();
  }
  SimulatorScope(const SimulatorScope &) = delete;
  SimulatorScope &operator=(const SimulatorScope &) = delete;

private:
  Simulator *Installed;
  Simulator *Saved;
  bool Claimed;
};

} // namespace enerj

#endif // ENERJ_RUNTIME_SIMULATOR_H
