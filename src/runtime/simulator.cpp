//===- runtime/simulator.cpp - Approximation-aware machine ---------------===//

#include "runtime/simulator.h"

#include "resilience/trial_abort.h"

#include <cstdio>
#include <cstdlib>

namespace enerj {

thread_local Simulator *Simulator::Current = nullptr;

void Simulator::overBudget() {
  uint64_t Budget = OpBudget;
  // Disarm first: operations executed while unwinding (or after a caller
  // catches the abort to snapshot partial stats) must not rethrow.
  OpBudget = 0;
  throw resilience::TrialAbort(Budget, Ledger.now());
}

void Simulator::failCrossThreadInstall() const {
  std::fprintf(stderr,
               "enerj: fatal: Simulator installed on a second thread while "
               "still installed on another\n"
               "enerj: a Simulator is one-per-thread; give each worker its "
               "own (see TrialRunner)\n");
  std::abort();
}

} // namespace enerj
