//===- runtime/simulator.cpp - Approximation-aware machine ---------------===//

#include "runtime/simulator.h"

namespace enerj {
thread_local Simulator *Simulator::Current = nullptr;
} // namespace enerj
