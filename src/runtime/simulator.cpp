//===- runtime/simulator.cpp - Approximation-aware machine ---------------===//

#include "runtime/simulator.h"

#include <cstdio>
#include <cstdlib>

namespace enerj {

thread_local Simulator *Simulator::Current = nullptr;

void Simulator::failCrossThreadInstall() const {
  std::fprintf(stderr,
               "enerj: fatal: Simulator installed on a second thread while "
               "still installed on another\n"
               "enerj: a Simulator is one-per-thread; give each worker its "
               "own (see TrialRunner)\n");
  std::abort();
}

} // namespace enerj
