//===- harness/stats.h - Per-cell trial statistics --------------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics over the workload seeds of one evaluation cell:
/// mean, sample standard deviation, min/max, and a 95% confidence
/// half-width. The paper reports per-cell means ("mean error over 20
/// runs"); the harness additionally reports spread so a figure's noise
/// floor is visible.
///
/// Determinism matters more than numerical elegance here: the mean is a
/// plain left-to-right sum in sample order, so it is bitwise identical to
/// the historical serial accumulation loops regardless of how the trials
/// producing the samples were scheduled.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_HARNESS_STATS_H
#define ENERJ_HARNESS_STATS_H

#include <vector>

namespace enerj {
namespace harness {

/// Aggregate of one metric over the seeds of an evaluation cell.
struct TrialStats {
  int Count = 0;
  double Mean = 0.0;
  double Stddev = 0.0;  ///< Sample (n-1) standard deviation; 0 when n < 2.
  double Min = 0.0;
  double Max = 0.0;
  double Ci95Half = 0.0; ///< 1.96 * Stddev / sqrt(n) (normal approximation).

  /// Aggregates \p Samples in order. An empty input yields the
  /// all-zero default; a single sample has zero spread.
  static TrialStats over(const std::vector<double> &Samples);
};

} // namespace harness
} // namespace enerj

#endif // ENERJ_HARNESS_STATS_H
