//===- harness/stats.cpp - Per-cell trial statistics ----------------------===//

#include "harness/stats.h"

#include <cmath>

using namespace enerj;
using namespace enerj::harness;

TrialStats TrialStats::over(const std::vector<double> &Samples) {
  TrialStats Result;
  if (Samples.empty())
    return Result;

  Result.Count = static_cast<int>(Samples.size());
  Result.Min = Samples[0];
  Result.Max = Samples[0];
  // Left-to-right sum: bitwise equal to the historical serial loops.
  double Sum = 0.0;
  for (double S : Samples) {
    Sum += S;
    if (S < Result.Min)
      Result.Min = S;
    if (S > Result.Max)
      Result.Max = S;
  }
  Result.Mean = Sum / Result.Count;

  if (Result.Count > 1) {
    double SqDevSum = 0.0;
    for (double S : Samples) {
      double Dev = S - Result.Mean;
      SqDevSum += Dev * Dev;
    }
    Result.Stddev = std::sqrt(SqDevSum / (Result.Count - 1));
    Result.Ci95Half = 1.96 * Result.Stddev / std::sqrt(Result.Count);
  }
  return Result;
}
