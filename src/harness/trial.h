//===- harness/trial.h - Parallel evaluation trial runner -------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement unit of the Section 6 evaluation: one *trial* runs one
/// application once under one FaultConfig for one workload seed and
/// records the QoS error, the operation/storage statistics, and the
/// priced energy report. Every figure and table harness is a set of
/// trials plus a per-cell aggregation.
///
/// TrialRunner fans a trial list out over a fixed-size pool of
/// std::threads. The hot path is lock-free: workers claim trial indices
/// from a single atomic counter and write results into preallocated,
/// disjoint slots. Each trial constructs its own Simulator (installed
/// thread-locally via SimulatorScope — the "one per thread" contract),
/// and its fault stream is seeded purely from (config seed, workload
/// seed) through support/rng's mixSeed, so the result of a trial depends
/// only on the trial's identity. Consequently the runner's output is
/// bitwise identical for any thread count and any scheduling — the
/// determinism suite pins this for all nine apps at all three levels.
///
/// The runner is fault tolerant. Exceptions are caught at the trial
/// boundary and reported as a failed trial (TrialOutcome::Aborted) —
/// a throwing application can never tear down the pool. Under an active
/// resilience::ResiliencePolicy a trial additionally becomes a recovery
/// process: attempts that miss the QoS SLO, fail the output sanity
/// check, or trip the simulator's op-budget watchdog are re-executed
/// with retry fault streams keyed by mixSeed(config seed, attempt) —
/// then mixSeed(·, workload seed) — and, when retries are exhausted,
/// stepped down the deterministic degradation ladder. Every attempt is
/// charged to EffectiveEnergyFactor, so re-execution honestly shrinks
/// the claimed savings. Because the retry seeds are pure functions of
/// the trial identity and the attempt number, the whole recovery process
/// stays bitwise deterministic at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_HARNESS_TRIAL_H
#define ENERJ_HARNESS_TRIAL_H

#include "apps/app.h"
#include "energy/model.h"
#include "env/power.h"
#include "fault/config.h"
#include "obs/telemetry.h"
#include "resilience/policy.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace enerj {

namespace exec {
struct CompiledKernel;
class ProgramCache;
} // namespace exec

namespace harness {

/// One (application, configuration, workload seed) measurement.
struct Trial {
  const apps::Application *App = nullptr;
  FaultConfig Config;
  uint64_t WorkloadSeed = 1;
  /// What telemetry to collect (default: none — the zero-cost path,
  /// byte-identical to the pre-telemetry harness). Collection never
  /// perturbs the measured run; only ForceRegionPrecise does, by design.
  obs::TelemetryRequest Obs;
  /// Non-null selects the compiled execution path: the trial runs this
  /// verified ISA kernel on the batched-fault FastMachine instead of
  /// interpreting the application. The kernel must belong to the
  /// trial's (app, level) cell and outlive the run.
  const exec::CompiledKernel *Kernel = nullptr;
  /// Non-null arms the intermittent-supply environment: every attempt is
  /// metered against the trace, losses are charged (checkpoint/restore/
  /// re-execution) into EffectiveEnergyFactor, and an attempt the supply
  /// never lets complete becomes TrialOutcome::PowerFailed. Null keeps
  /// the always-on behavior, byte for byte.
  const env::PowerEnv *Power = nullptr;
  /// Program store for the compiled recovery loop: a policy walking the
  /// ladder on the compiled path fetches each rung's kernel from here.
  /// Required when a policy with Degrade is armed on a compiled trial.
  exec::ProgramCache *Kernels = nullptr;
};

/// Everything one trial measures. Stats/Energy/QosError describe the
/// *recorded* run: the first accepted attempt under a policy, or the
/// last attempt when every permitted attempt failed.
struct TrialResult {
  /// QoS error against the precise run of the same workload. An aborted
  /// or insane (non-finite / out-of-bound) attempt scores 1.
  double QosError = 0.0;
  /// Operation and storage statistics of the recorded approximate run
  /// (partial up to the abort point for aborted attempts).
  RunStats Stats;
  /// The statistics priced at the recorded attempt's config (Server).
  EnergyReport Energy;

  /// How the trial concluded (always Ok when no policy is active).
  resilience::TrialOutcome Outcome = resilience::TrialOutcome::Ok;
  /// Executions charged, >= 1 (1 = no re-execution).
  int Attempts = 1;
  /// Level of the recorded run — lower than the trial's configured level
  /// when the degradation ladder was walked.
  ApproxLevel FinalLevel = ApproxLevel::None;
  /// Energy factor with re-execution charged: the sum of every attempt's
  /// TotalFactor (== Energy.TotalFactor for a single-attempt trial).
  double EffectiveEnergyFactor = 1.0;
  /// Message of the contained exception, when one was caught.
  std::string Error;

  /// The simulator's logical clock when the recorded attempt ended
  /// (MemoryLedger::now(): one tick per dynamic op / DRAM access). Only
  /// filled on the instrumented path — 0 when no telemetry was
  /// requested.
  uint64_t ClockCycles = 0;
  /// Per-site metrics of the *recorded* attempt (parallel to Stats).
  /// Empty unless the trial's TelemetryRequest asked for metrics.
  obs::MetricsRegistry Metrics;
  /// Structured events across *all* attempts — the recovery timeline,
  /// including the rejected attempts that Stats/Metrics do not cover —
  /// with harness markers (attempt begin/end, retry, degrade, abort)
  /// interleaved. Empty unless tracing was requested. Region ids refer
  /// to Metrics.
  std::vector<obs::TrialTraceEvent> Trace;
  /// Events shed by the per-attempt ring buffers, summed.
  uint64_t TraceDropped = 0;

  /// Power-environment accounting summed over *all* attempts (losses,
  /// checkpoints, re-executed ops, off ticks); Survived reflects the
  /// recorded attempt. All-zero / true when no environment was armed.
  env::PowerStats Power;
};

/// Runs trial lists over a fixed-size thread pool.
class TrialRunner {
public:
  /// \p Threads worker threads; 0 means hardware_concurrency() (at
  /// least 1). A single-thread runner executes inline without spawning.
  explicit TrialRunner(unsigned Threads = 0);

  unsigned threads() const { return Threads; }

  /// Runs one trial on the calling thread with no policy. May propagate
  /// application exceptions; run() contains them at the trial boundary.
  static TrialResult runOne(const Trial &T);

  /// Runs one trial under \p Policy: the SLO / sanity / watchdog checks
  /// plus the retry-and-degrade recovery loop described in the header.
  /// A disabled policy reduces to runOne(T), byte for byte.
  static TrialResult runOne(const Trial &T,
                            const resilience::ResiliencePolicy &Policy);

  /// Runs all trials, returning results in trial order. The output is a
  /// pure function of the trial list — thread count and scheduling do
  /// not affect it. Exceptions escaping a trial are contained and
  /// reported as TrialOutcome::Aborted; they never kill the process.
  std::vector<TrialResult> run(const std::vector<Trial> &Trials) const;

  /// Same, with every trial executed under \p Policy.
  std::vector<TrialResult>
  run(const std::vector<Trial> &Trials,
      const resilience::ResiliencePolicy &Policy) const;

  /// Completion observer: called once per finished trial with the number
  /// of trials completed so far and that trial's result. Calls are
  /// serialized (never concurrent) but arrive in *completion* order, not
  /// trial order — an observer that only counts and tallies outcomes sees
  /// a deterministic multiset either way. The observer has no way to
  /// influence results; the returned vector stays a pure function of the
  /// trial list.
  using ProgressFn = std::function<void(size_t Done, const TrialResult &Last)>;

  /// Same, notifying \p Progress (when non-null) after every trial.
  std::vector<TrialResult>
  run(const std::vector<Trial> &Trials,
      const resilience::ResiliencePolicy &Policy,
      const ProgressFn &Progress) const;

private:
  unsigned Threads;
};

} // namespace harness
} // namespace enerj

#endif // ENERJ_HARNESS_TRIAL_H
