//===- harness/trial.h - Parallel evaluation trial runner -------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement unit of the Section 6 evaluation: one *trial* runs one
/// application once under one FaultConfig for one workload seed and
/// records the QoS error, the operation/storage statistics, and the
/// priced energy report. Every figure and table harness is a set of
/// trials plus a per-cell aggregation.
///
/// TrialRunner fans a trial list out over a fixed-size pool of
/// std::threads. The hot path is lock-free: workers claim trial indices
/// from a single atomic counter and write results into preallocated,
/// disjoint slots. Each trial constructs its own Simulator (installed
/// thread-locally via SimulatorScope — the "one per thread" contract),
/// and its fault stream is seeded purely from (config seed, workload
/// seed) through support/rng's mixSeed, so the result of a trial depends
/// only on the trial's identity. Consequently the runner's output is
/// bitwise identical for any thread count and any scheduling — the
/// determinism suite pins this for all nine apps at all three levels.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_HARNESS_TRIAL_H
#define ENERJ_HARNESS_TRIAL_H

#include "apps/app.h"
#include "energy/model.h"
#include "fault/config.h"

#include <cstdint>
#include <vector>

namespace enerj {
namespace harness {

/// One (application, configuration, workload seed) measurement.
struct Trial {
  const apps::Application *App = nullptr;
  FaultConfig Config;
  uint64_t WorkloadSeed = 1;
};

/// Everything one trial measures.
struct TrialResult {
  /// QoS error against the precise run of the same workload.
  double QosError = 0.0;
  /// Operation and storage statistics of the approximate run.
  RunStats Stats;
  /// The statistics priced at the trial's own config (Server setting).
  EnergyReport Energy;
};

/// Runs trial lists over a fixed-size thread pool.
class TrialRunner {
public:
  /// \p Threads worker threads; 0 means hardware_concurrency() (at
  /// least 1). A single-thread runner executes inline without spawning.
  explicit TrialRunner(unsigned Threads = 0);

  unsigned threads() const { return Threads; }

  /// Runs one trial on the calling thread.
  static TrialResult runOne(const Trial &T);

  /// Runs all trials, returning results in trial order. The output is a
  /// pure function of the trial list — thread count and scheduling do
  /// not affect it.
  std::vector<TrialResult> run(const std::vector<Trial> &Trials) const;

private:
  unsigned Threads;
};

} // namespace harness
} // namespace enerj

#endif // ENERJ_HARNESS_TRIAL_H
