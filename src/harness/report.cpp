//===- harness/report.cpp - Eval-grid renderers ---------------------------===//
//
// The JSON layout is part of the tool's contract with CI (like the lint
// JSON): key names and key order are pinned by harness_stats_test and
// only change with a version bump. Version 2 added the resilience layer:
// the top-level "policy" object and the per-cell "effectiveEnergy"
// (re-execution charged), "outcomes", and "retries" fields. Version 3 is
// emitted only when the grid ran with metrics collection (eval
// --metrics) and appends a "metrics" object to every cell; a grid run
// without collection still renders as version 2, byte for byte.
// Version 4 is emitted only when the grid's options asked to echo the
// execution mode (eval --exec-mode, either value): it inserts a
// top-level "execMode" right after "seeds" and keeps the metrics block
// when collected; without the flag the historical schemas are
// byte-identical. Version 5 is emitted only for power-armed grids (eval
// --power-trace): a top-level "power" echo (trace name, checkpoint spec)
// after "seeds"/"execMode", a "powerFailed" key in every cell's outcome
// counts, and a per-cell "power" block (losses, checkpoints, re-executed
// ops, survival) after storage/metrics. Doubles
// render with %.17g so every value round-trips exactly; the grid's JSON
// is identical at any thread count.
//
//===----------------------------------------------------------------------===//

#include "harness/eval.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>

using namespace enerj;
using namespace enerj::harness;

namespace {

void appendDouble(std::string &Out, double Value) {
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  Out += Buffer;
}

void appendU64(std::string &Out, uint64_t Value) {
  char Buffer[24];
  std::snprintf(Buffer, sizeof(Buffer), "%" PRIu64, Value);
  Out += Buffer;
}

void appendStats(std::string &Out, const char *Key, const TrialStats &S) {
  Out += '"';
  Out += Key;
  Out += "\":{\"count\":";
  appendU64(Out, static_cast<uint64_t>(S.Count));
  Out += ",\"mean\":";
  appendDouble(Out, S.Mean);
  Out += ",\"stddev\":";
  appendDouble(Out, S.Stddev);
  Out += ",\"min\":";
  appendDouble(Out, S.Min);
  Out += ",\"max\":";
  appendDouble(Out, S.Max);
  Out += ",\"ci95\":";
  appendDouble(Out, S.Ci95Half);
  Out += '}';
}

void appendBool(std::string &Out, bool Value) {
  Out += Value ? "true" : "false";
}

void appendEscaped(std::string &Out, const std::string &Text) {
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
}

void appendPolicy(std::string &Out, const resilience::ResiliencePolicy &P) {
  Out += "\"policy\":{\"enabled\":";
  appendBool(Out, P.Enabled);
  Out += ",\"slo\":";
  appendDouble(Out, P.Slo);
  Out += ",\"outputBound\":";
  appendDouble(Out, P.OutputAbsBound);
  Out += ",\"maxRetries\":";
  appendU64(Out, static_cast<uint64_t>(P.MaxRetries));
  Out += ",\"opBudget\":";
  appendU64(Out, P.OpBudget);
  Out += ",\"degrade\":";
  appendBool(Out, P.Degrade);
  Out += '}';
}

void appendSite(std::string &Out, const obs::MetricsRegistry &M,
                size_t Site) {
  obs::SiteKey Key = M.siteKey(Site);
  const obs::SiteCounters &C = M.site(Site);
  Out += "{\"region\":\"";
  Out += M.regionName(Key.Region);
  Out += "\",\"kind\":\"";
  Out += obs::opKindName(Key.Kind);
  Out += "\",\"class\":\"";
  Out += obs::storageClassName(obs::storageClassOf(Key.Kind));
  Out += "\",\"count\":";
  appendU64(Out, C.Count);
  Out += ",\"faults\":";
  appendU64(Out, C.Faults);
  Out += ",\"flippedBits\":";
  appendU64(Out, C.FlippedBits);
  Out += '}';
}

void appendMetrics(std::string &Out, const obs::MetricsRegistry &M) {
  Out += ",\"metrics\":{\"ticks\":";
  appendU64(Out, M.totalTicks());
  Out += ",\"ops\":";
  appendU64(Out, M.totalOps());
  Out += ",\"faults\":";
  appendU64(Out, M.totalFaults());
  // Sites sorted by (region name, kind) so the rendering never depends
  // on interning or merge order.
  std::vector<size_t> Order(M.siteCount());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::sort(Order.begin(), Order.end(), [&M](size_t A, size_t B) {
    obs::SiteKey KA = M.siteKey(A), KB = M.siteKey(B);
    const std::string &NA = M.regionName(KA.Region);
    const std::string &NB = M.regionName(KB.Region);
    if (NA != NB)
      return NA < NB;
    return static_cast<unsigned>(KA.Kind) < static_cast<unsigned>(KB.Kind);
  });
  Out += ",\"sites\":[";
  for (size_t I = 0; I < Order.size(); ++I) {
    if (I)
      Out += ',';
    appendSite(Out, M, Order[I]);
  }
  Out += "]}";
}

void appendCell(std::string &Out, const EvalCell &Cell, bool WithMetrics,
                bool WithPower, int Seeds) {
  Out += "{\"level\":\"";
  Out += approxLevelName(Cell.Level);
  Out += "\",";
  appendStats(Out, "qos", Cell.Qos);
  Out += ',';
  appendStats(Out, "energy", Cell.EnergyFactor);
  Out += ',';
  appendStats(Out, "effectiveEnergy", Cell.EffectiveEnergy);
  Out += ",\"outcomes\":{\"ok\":";
  appendU64(Out, Cell.Outcomes.Ok);
  Out += ",\"sloViolated\":";
  appendU64(Out, Cell.Outcomes.SloViolated);
  Out += ",\"aborted\":";
  appendU64(Out, Cell.Outcomes.Aborted);
  Out += ",\"retried\":";
  appendU64(Out, Cell.Outcomes.Retried);
  Out += ",\"degraded\":";
  appendU64(Out, Cell.Outcomes.Degraded);
  if (WithPower) {
    Out += ",\"powerFailed\":";
    appendU64(Out, Cell.Outcomes.PowerFailed);
  }
  Out += "},\"retries\":";
  appendU64(Out, Cell.Retries);
  const OperationStats &Ops = Cell.Seed1.Stats.Ops;
  Out += ",\"ops\":{\"preciseInt\":";
  appendU64(Out, Ops.PreciseInt);
  Out += ",\"approxInt\":";
  appendU64(Out, Ops.ApproxInt);
  Out += ",\"preciseFp\":";
  appendU64(Out, Ops.PreciseFp);
  Out += ",\"approxFp\":";
  appendU64(Out, Ops.ApproxFp);
  Out += ",\"timingErrors\":";
  appendU64(Out, Ops.TimingErrors);
  const StorageStats &Storage = Cell.Seed1.Stats.Storage;
  Out += "},\"storage\":{\"sramPrecise\":";
  appendDouble(Out, Storage.SramPrecise);
  Out += ",\"sramApprox\":";
  appendDouble(Out, Storage.SramApprox);
  Out += ",\"dramPrecise\":";
  appendDouble(Out, Storage.DramPrecise);
  Out += ",\"dramApprox\":";
  appendDouble(Out, Storage.DramApprox);
  Out += '}';
  if (WithMetrics)
    appendMetrics(Out, Cell.Metrics);
  if (WithPower) {
    Out += ",\"power\":{\"losses\":";
    appendU64(Out, Cell.PowerLosses);
    Out += ",\"checkpoints\":";
    appendU64(Out, Cell.PowerCheckpoints);
    Out += ",\"reExecutedOps\":";
    appendU64(Out, Cell.PowerReExecutedOps);
    Out += ",\"survived\":";
    appendU64(Out, Cell.PowerSurvived);
    Out += ",\"survivalRate\":";
    appendDouble(Out, Seeds > 0
                          ? static_cast<double>(Cell.PowerSurvived) / Seeds
                          : 1.0);
    Out += '}';
  }
  Out += '}';
}

} // namespace

std::string enerj::harness::renderEvalJson(const EvalResult &Result) {
  std::string Out = "{\"tool\":\"enerj-eval\",\"version\":";
  Out += Result.PowerArmed          ? '5'
         : Result.EchoExecMode      ? '4'
         : Result.MetricsCollected  ? '3'
                                    : '2';
  Out += ",\"seeds\":";
  appendU64(Out, static_cast<uint64_t>(Result.Seeds));
  if (Result.EchoExecMode) {
    Out += ",\"execMode\":\"";
    Out += execModeName(Result.Exec);
    Out += '"';
  }
  if (Result.PowerArmed) {
    Out += ",\"power\":{\"trace\":\"";
    appendEscaped(Out, Result.Power.Trace.Name);
    Out += "\",\"checkpoint\":\"";
    appendEscaped(Out, Result.Power.Checkpoint.Spec);
    Out += "\"}";
  }
  Out += ',';
  appendPolicy(Out, Result.Policy);
  Out += ",\"levels\":[";
  for (size_t I = 0; I < Result.Levels.size(); ++I) {
    if (I)
      Out += ',';
    Out += '"';
    Out += approxLevelName(Result.Levels[I]);
    Out += '"';
  }
  Out += "],\"apps\":[";
  for (size_t A = 0; A < Result.Apps.size(); ++A) {
    if (A)
      Out += ',';
    Out += "{\"name\":\"";
    Out += Result.Apps[A]->name();
    Out += "\",\"cells\":[";
    for (size_t L = 0; L < Result.Levels.size(); ++L) {
      if (L)
        Out += ',';
      appendCell(Out, Result.Cells[A * Result.Levels.size() + L],
                 Result.MetricsCollected, Result.PowerArmed, Result.Seeds);
    }
    Out += "]}";
  }
  Out += "]}";
  return Out;
}

std::string enerj::harness::renderEvalText(const EvalResult &Result) {
  char Line[200];
  std::snprintf(Line, sizeof(Line),
                "Evaluation grid: %zu app(s) x %zu level(s) x %d seed(s)\n\n",
                Result.Apps.size(), Result.Levels.size(), Result.Seeds);
  std::string Out = Line;
  bool Resilient = Result.Policy.Enabled;
  if (Resilient) {
    std::snprintf(Line, sizeof(Line),
                  "Resilience policy: slo %.4g, max retries %d, op budget "
                  "%" PRIu64 ", degradation %s\n\n",
                  Result.Policy.Slo, Result.Policy.MaxRetries,
                  Result.Policy.OpBudget,
                  Result.Policy.Degrade ? "on" : "off");
    Out += Line;
  }
  bool Powered = Result.PowerArmed;
  if (Powered) {
    std::snprintf(Line, sizeof(Line),
                  "Power environment: trace %s, checkpoint %s\n\n",
                  Result.Power.Trace.Name.c_str(),
                  Result.Power.Checkpoint.Spec.c_str());
    Out += Line;
  }
  std::snprintf(Line, sizeof(Line), "%-14s %-11s %10s %10s %10s %10s",
                "Application", "level", "qos mean", "stddev", "+/-95%",
                "energy");
  Out += Line;
  if (Resilient) {
    std::snprintf(Line, sizeof(Line), " %10s %7s %-22s", "eff.energy",
                  "retries", " outcomes ok/ret/deg/fail");
    Out += Line;
  }
  if (Powered) {
    std::snprintf(Line, sizeof(Line), " %9s %7s %8s", "survival",
                  "losses", "ckpts");
    Out += Line;
  }
  Out += '\n';
  Out += std::string((Resilient ? 113 : 70) + (Powered ? 27 : 0), '-');
  Out += '\n';
  for (const EvalCell &Cell : Result.Cells) {
    std::snprintf(Line, sizeof(Line),
                  "%-14s %-11s %10.4f %10.4f %10.4f %10.3f",
                  Cell.App->name(), approxLevelName(Cell.Level),
                  Cell.Qos.Mean, Cell.Qos.Stddev, Cell.Qos.Ci95Half,
                  Cell.EnergyFactor.Mean);
    Out += Line;
    if (Resilient) {
      std::snprintf(Line, sizeof(Line),
                    " %10.3f %7" PRIu64 "  %" PRIu64 "/%" PRIu64 "/%" PRIu64
                    "/%" PRIu64,
                    Cell.EffectiveEnergy.Mean, Cell.Retries,
                    Cell.Outcomes.Ok, Cell.Outcomes.Retried,
                    Cell.Outcomes.Degraded,
                    Cell.Outcomes.SloViolated + Cell.Outcomes.Aborted);
      Out += Line;
    }
    if (Powered) {
      std::snprintf(Line, sizeof(Line),
                    " %5" PRIu64 "/%-3d %7" PRIu64 " %8" PRIu64,
                    Cell.PowerSurvived, Result.Seeds, Cell.PowerLosses,
                    Cell.PowerCheckpoints);
      Out += Line;
    }
    Out += '\n';
  }
  return Out;
}
