//===- harness/eval.h - The Section 6 evaluation grid -----------*- C++ -*-===//
//
// Part of the EnerJ reproduction. MIT licensed; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The (application x ApproxLevel x workload seed) grid that Figures 3-5
/// and Tables 2-3 are sliced from. runEval enumerates the grid, fans the
/// trials out through TrialRunner, and aggregates each (app, level) cell:
/// TrialStats over seeds for QoS error and the total energy factor, plus
/// the full seed-1 trial for the op/storage-mix columns that the paper
/// measures from a single run.
///
/// Cell aggregation consumes results in seed order, so every aggregate is
/// bitwise identical to the historical serial loops at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef ENERJ_HARNESS_EVAL_H
#define ENERJ_HARNESS_EVAL_H

#include "harness/stats.h"
#include "harness/trial.h"

#include <string>
#include <vector>

namespace enerj {
namespace harness {

/// The three approximation levels of the evaluation, in Table 2 order.
const std::vector<ApproxLevel> &evalLevels();

/// How the grid's trials execute. Interp is the historical authoritative
/// path: the annotated C++ application runs under the Simulator.
/// Compiled lowers each (app, level) cell's ISA kernel through the
/// FEnerJ compiler + validated optimizer once, then dispatches every
/// seed of the cell onto the cached binary with batched fault injection
/// (exec::FastMachine).
enum class ExecMode { Interp, Compiled };

/// "interp" / "compiled", as echoed by the version-4 JSON.
const char *execModeName(ExecMode Mode);

/// What to enumerate. Empty Apps/Levels mean "all nine" / "the three
/// Table 2 levels".
struct EvalOptions {
  std::vector<const apps::Application *> Apps;
  std::vector<ApproxLevel> Levels;
  int Seeds = 20;       ///< Workload seeds 1..Seeds per cell.
  unsigned Threads = 0; ///< TrialRunner thread count (0 = hardware).
  /// Resilience contract every trial runs under; disabled by default,
  /// which reproduces the historical measurements byte for byte.
  resilience::ResiliencePolicy Policy;
  /// Collect per-site metrics for every trial and merge them per cell.
  /// Off by default: the default grid (and its version-2 JSON) stays
  /// bitwise identical to the pre-telemetry harness. Turning it on bumps
  /// the JSON to version 3 with a "metrics" block per cell.
  bool Metrics = false;
  /// Execution path for every trial of the grid. Compiled requires
  /// KernelDir and throws std::runtime_error if any cell's kernel fails
  /// to compile or verify. A policy on the compiled path dispatches the
  /// recovery ladder onto cached per-level kernels.
  ExecMode Exec = ExecMode::Interp;
  /// Echo the execution mode in the JSON (version 4, "execMode" after
  /// "seeds"). Off by default so existing version-2/3 output stays byte
  /// identical; the CLI sets it whenever --exec-mode is given
  /// explicitly, for either mode.
  bool EchoExecMode = false;
  /// Directory of <app>.fej ISA kernels (Compiled only).
  std::string KernelDir;
  /// Intermittent-supply environment for every trial. Only consulted
  /// when PowerArmed; the default (disarmed) grid is byte-identical to
  /// the always-on harness. Arming bumps the JSON to version 5 with a
  /// top-level "power" echo and per-cell power counters.
  env::PowerEnv Power;
  bool PowerArmed = false;
  /// Arm the flight recorder: every trial runs with the structured trace
  /// attached, and EvalResult::Journaled carries a TrialRecord for every
  /// non-Ok trial plus a deterministic sample of Ok trials. Off by
  /// default — the disarmed grid (and its JSON) is byte-identical to the
  /// recorder-less harness; arming never perturbs measured results
  /// (telemetry is zero-perturbation) and never changes the eval JSON.
  bool Journal = false;
  /// Ok-trial sampling stride: seeds with (seed - 1) % stride == 0 are
  /// journaled even when the trial ends Ok, so every cell keeps at least
  /// its seed-1 record. <= 0 journals non-Ok trials only.
  int JournalOkSampleEvery = 8;
  /// Emit a stderr heartbeat (trials done, trials/sec, ETA, running
  /// outcome tallies) while the grid runs. Purely cosmetic: stdout and
  /// every aggregate are byte-identical with the flag on or off.
  bool Progress = false;
};

/// One journaled trial, copied out at the trial boundary: everything the
/// flight recorder needs to rebuild and re-execute the trial without the
/// grid that produced it. Selection is by (app, level, seed) identity,
/// so the record set — like every harness aggregate — is a pure function
/// of the options, independent of thread count.
struct TrialRecord {
  std::string AppName;
  ApproxLevel Level = ApproxLevel::None;
  uint64_t WorkloadSeed = 1;
  FaultConfig Config;          ///< The trial's full fault configuration.
  obs::TelemetryRequest Obs;   ///< The telemetry the trial ran with.
  TrialResult Result;          ///< The recorded outcome, timeline included.
};

/// One (application, level) cell of the grid.
struct EvalCell {
  const apps::Application *App = nullptr;
  ApproxLevel Level = ApproxLevel::None;
  TrialStats Qos;          ///< QoS error over the cell's seeds.
  TrialStats EnergyFactor; ///< Total energy factor over the cell's seeds.
  /// Energy factor with re-execution charged (== EnergyFactor when no
  /// trial in the cell was re-executed).
  TrialStats EffectiveEnergy;
  /// How the cell's trials concluded under the policy (all Ok when the
  /// policy is disabled).
  resilience::OutcomeCounts Outcomes;
  /// Total re-executions charged across the cell's trials.
  uint64_t Retries = 0;
  TrialResult Seed1;       ///< The workload-seed-1 trial in full.
  /// Per-site metrics merged over the cell's seeds, in seed order
  /// (empty unless EvalOptions::Metrics).
  obs::MetricsRegistry Metrics;
  /// Power-environment counters summed over the cell's seeds (all
  /// attempts); zero unless the grid ran power-armed.
  uint64_t PowerLosses = 0;
  uint64_t PowerCheckpoints = 0;
  uint64_t PowerReExecutedOps = 0;
  /// Seeds whose recorded trial the supply let complete.
  uint64_t PowerSurvived = 0;
};

/// The whole grid, cells in app-major, level-minor order.
struct EvalResult {
  std::vector<const apps::Application *> Apps;
  std::vector<ApproxLevel> Levels;
  int Seeds = 0;
  resilience::ResiliencePolicy Policy; ///< The policy the grid ran under.
  bool MetricsCollected = false; ///< Grid ran with EvalOptions::Metrics.
  ExecMode Exec = ExecMode::Interp; ///< How the trials executed.
  bool EchoExecMode = false; ///< Render the mode (version-4 JSON).
  env::PowerEnv Power;       ///< The environment the grid ran under.
  bool PowerArmed = false;   ///< Render the power blocks (version 5).
  std::vector<EvalCell> Cells;
  /// Flight-recorder captures (empty unless EvalOptions::Journal): every
  /// non-Ok trial plus the Ok sample, in grid (app-major, level-minor,
  /// seed-ascending) order.
  std::vector<TrialRecord> Journaled;

  /// The cell for (\p App, \p Level); null if not in the grid.
  const EvalCell *cell(const apps::Application &App, ApproxLevel Level) const;
};

/// Runs the grid described by \p Options.
EvalResult runEval(const EvalOptions &Options);

/// Mean QoS error over workload seeds [1, Runs] for every (app, config)
/// pair — the ablation harnesses' shape, where the columns differ by
/// more than the level. All trials fan out over one TrialRunner; the
/// result is indexed [app][config] and, like every harness aggregate,
/// is independent of the thread count.
std::vector<std::vector<double>>
meanQosGrid(const std::vector<const apps::Application *> &Apps,
            const std::vector<FaultConfig> &Configs, int Runs,
            unsigned Threads = 0);

/// Renders \p Result as one line of stable JSON (schema version 2,
/// pinned by harness_stats_test, versioned like the lint JSON): the
/// policy the grid ran under, and per cell the outcome counts, total
/// retries, and the effective energy with re-execution charged. Thread
/// count is deliberately absent: the JSON for a grid is identical at
/// any parallelism. A grid run with metrics collection renders as
/// version 3, which appends a "metrics" object to every cell; without
/// collection the output is byte-identical to the version-2 schema.
/// A grid whose options asked to echo the execution mode renders as
/// version 4, which inserts "execMode" after "seeds" (cells keep the
/// version-3 metrics block when collected). A power-armed grid renders
/// as version 5: a top-level "power" object (trace name, checkpoint
/// spec) after "seeds"/"execMode", a per-cell "power" block (losses,
/// checkpoints, re-executed ops, survival), and a "powerFailed" key in
/// the outcome counts.
std::string renderEvalJson(const EvalResult &Result);

/// Renders \p Result as a fixed-width text table.
std::string renderEvalText(const EvalResult &Result);

} // namespace harness
} // namespace enerj

#endif // ENERJ_HARNESS_EVAL_H
