//===- harness/trial.cpp - Parallel evaluation trial runner ---------------===//

#include "harness/trial.h"

#include <atomic>
#include <thread>

using namespace enerj;
using namespace enerj::harness;

TrialRunner::TrialRunner(unsigned Threads) : Threads(Threads) {
  if (this->Threads == 0) {
    this->Threads = std::thread::hardware_concurrency();
    if (this->Threads == 0)
      this->Threads = 1;
  }
}

TrialResult TrialRunner::runOne(const Trial &T) {
  // Same sequence as the historical serial path (apps::qosUnder followed
  // by energy pricing): precise reference first, then the approximate run
  // on a fresh Simulator whose seed mixSeed derives from the trial alone.
  apps::AppOutput Reference = apps::runPrecise(*T.App, T.WorkloadSeed);
  apps::AppRun Run = apps::runApproximate(*T.App, T.Config, T.WorkloadSeed);
  TrialResult Result;
  Result.QosError = T.App->qosError(Reference, Run.Output);
  Result.Stats = Run.Stats;
  Result.Energy = computeEnergy(Run.Stats, T.Config);
  return Result;
}

std::vector<TrialResult> TrialRunner::run(
    const std::vector<Trial> &Trials) const {
  std::vector<TrialResult> Results(Trials.size());
  unsigned Workers = Threads;
  if (Workers > Trials.size())
    Workers = static_cast<unsigned>(Trials.size());

  if (Workers <= 1) {
    for (size_t I = 0; I < Trials.size(); ++I)
      Results[I] = runOne(Trials[I]);
    return Results;
  }

  // Lock-free work queue: one atomic ticket counter; each worker owns the
  // disjoint result slots of the trials it claims, so no further
  // synchronization is needed until join.
  std::atomic<size_t> Next{0};
  auto Worker = [&Trials, &Results, &Next]() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Trials.size())
        return;
      Results[I] = runOne(Trials[I]);
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}
